//===- bench/micro_allocators.cpp - Allocator throughput ----------------------===//
//
// Part of the PDGC project.
//
// Google-benchmark microbenchmarks: wall-clock throughput of each
// allocator over a representative generated function, and the cost of
// building the preference-directed allocator's two data structures (RPG
// and CPG). The paper argues its approach is far cheaper than the integer-
// programming allocators of Section 7; these numbers document the actual
// compile-time overhead over Chaitin-style baselines.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "analysis/CostModel.h"
#include "core/ColoringPrecedenceGraph.h"
#include "core/RegisterPreferenceGraph.h"
#include "ir/PhiElimination.h"
#include "regalloc/BatchDriver.h"
#include "regalloc/Driver.h"
#include "regalloc/Simplifier.h"
#include "support/Arena.h"
#include "support/Tracing.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

using namespace pdgc;

namespace {

GeneratorParams mediumFunction(std::uint64_t Seed) {
  GeneratorParams P;
  P.Name = "micro";
  P.Seed = Seed;
  P.FragmentBudget = 30;
  P.CallPercent = 25;
  P.PairedLoadPercent = 15;
  P.FpPercent = 25;
  P.PressureValues = 8;
  return P;
}

void allocatorBench(benchmark::State &State, const char *Name) {
  TargetDesc Target = makeTarget(24);
  GeneratorParams P = mediumFunction(42);
  unsigned VRegs = 0;
  for (auto _ : State) {
    (void)_;
    State.PauseTiming();
    std::unique_ptr<Function> F = generateFunction(P, Target);
    std::unique_ptr<AllocatorBase> Alloc = makeAllocatorByName(Name);
    DriverOptions Options;
    Options.VerifyAssignment = false;
    State.ResumeTiming();
    AllocationOutcome Out = allocate(*F, Target, *Alloc, Options);
    benchmark::DoNotOptimize(Out.Assignment.data());
    VRegs = F->numVRegs();
  }
  State.counters["vregs"] = VRegs;
}

// The build benchmarks time the production shape: graphs carve from an
// arena held across rounds and reset between builds (AnalysisContext does
// exactly this each refresh), so iteration 2+ runs against warm chunks.
void BM_BuildRpg(benchmark::State &State) {
  TargetDesc Target = makeTarget(24);
  std::unique_ptr<Function> F = generateFunction(mediumFunction(42), Target);
  eliminatePhis(*F);
  Liveness LV = Liveness::compute(*F);
  LoopInfo LI = LoopInfo::compute(*F);
  LiveRangeCosts Costs = LiveRangeCosts::compute(*F, LV, LI);
  Arena Mem;
  for (auto _ : State) {
    (void)_;
    Mem.reset();
    RegisterPreferenceGraph RPG =
        RegisterPreferenceGraph::build(*F, LV, LI, Costs, Target, Mem);
    benchmark::DoNotOptimize(RPG.numPreferences());
  }
}
BENCHMARK(BM_BuildRpg);

void cpgBench(benchmark::State &State, const GeneratorParams &P) {
  TargetDesc Target = makeTarget(24);
  std::unique_ptr<Function> F = generateFunction(P, Target);
  eliminatePhis(*F);
  Liveness LV = Liveness::compute(*F);
  LoopInfo LI = LoopInfo::compute(*F);
  LiveRangeCosts Costs = LiveRangeCosts::compute(*F, LV, LI);
  InterferenceGraph IG = InterferenceGraph::build(*F, LV, LI);
  SimplifyResult SR = simplifyGraph(
      IG, Target, [&](unsigned N) { return Costs.spillMetric(VReg(N)); },
      /*Optimistic=*/true);
  Arena Mem;
  for (auto _ : State) {
    (void)_;
    Mem.reset();
    ColoringPrecedenceGraph CPG =
        ColoringPrecedenceGraph::build(IG, Target, SR, Mem);
    benchmark::DoNotOptimize(CPG.numEdges());
  }
  State.counters["vregs"] = F->numVRegs();
}

void BM_BuildCpg(benchmark::State &State) {
  cpgBench(State, mediumFunction(42));
}
BENCHMARK(BM_BuildCpg);

// The CSR/arena layout matters most where node counts are large; this is
// the ~10^4-vreg outlier profile from src/workloads.
void BM_BuildCpgMega(benchmark::State &State) {
  cpgBench(State, megaFunctionProfile());
}
BENCHMARK(BM_BuildCpgMega)
    ->Name("BM_BuildCpg/mega")
    ->Unit(benchmark::kMillisecond);

void BM_BuildInterference(benchmark::State &State) {
  TargetDesc Target = makeTarget(24);
  std::unique_ptr<Function> F = generateFunction(mediumFunction(42), Target);
  eliminatePhis(*F);
  Liveness LV = Liveness::compute(*F);
  LoopInfo LI = LoopInfo::compute(*F);
  for (auto _ : State) {
    (void)_;
    InterferenceGraph IG = InterferenceGraph::build(*F, LV, LI);
    benchmark::DoNotOptimize(IG.numNodes());
  }
}
BENCHMARK(BM_BuildInterference);

// The path the driver actually takes on round 2+: rebuild into an already
// sized graph, reusing the half-matrix and adjacency storage.
void BM_RebuildInterference(benchmark::State &State) {
  TargetDesc Target = makeTarget(24);
  std::unique_ptr<Function> F = generateFunction(mediumFunction(42), Target);
  eliminatePhis(*F);
  Liveness LV = Liveness::compute(*F);
  LoopInfo LI = LoopInfo::compute(*F);
  InterferenceGraph IG = InterferenceGraph::build(*F, LV, LI);
  for (auto _ : State) {
    (void)_;
    IG.rebuild(*F, LV, LI);
    benchmark::DoNotOptimize(IG.numNodes());
  }
}
BENCHMARK(BM_RebuildInterference);

// Whole-suite batch allocation through the fallback pipeline at various
// job counts. Real time, not CPU time: the submitting thread blocks in
// wait() while the workers run.
void BM_BatchSuite(benchmark::State &State) {
  const unsigned Jobs = static_cast<unsigned>(State.range(0));
  TargetDesc Target = makeTarget(24);
  // Seed the allocator registries before any worker thread looks them up.
  makeAllocatorByName("full-preferences");
  const WorkloadSuite Suite = suiteByName("javac");
  const DriverOptions Options;
  BatchDriver Driver(Jobs);
  unsigned Functions = 0;
  for (auto _ : State) {
    (void)_;
    State.PauseTiming();
    std::vector<std::unique_ptr<Function>> Owned(Suite.Functions.size());
    std::vector<Function *> Fns(Suite.Functions.size());
    for (unsigned I = 0; I != Owned.size(); ++I) {
      Owned[I] = Suite.generate(I, Target);
      Fns[I] = Owned[I].get();
    }
    State.ResumeTiming();
    std::vector<BatchItemResult> Results = Driver.run(Fns, Target, Options);
    benchmark::DoNotOptimize(Results.data());
    Functions = static_cast<unsigned>(Results.size());
  }
  State.counters["functions"] = Functions;
  State.counters["jobs"] = Jobs;
}
BENCHMARK(BM_BatchSuite)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

} // namespace

BENCHMARK_CAPTURE(allocatorBench, chaitin, "chaitin");
BENCHMARK_CAPTURE(allocatorBench, briggs, "briggs+aggressive");
BENCHMARK_CAPTURE(allocatorBench, iterated, "iterated");
BENCHMARK_CAPTURE(allocatorBench, priority, "priority");
BENCHMARK_CAPTURE(allocatorBench, optimistic, "optimistic");
BENCHMARK_CAPTURE(allocatorBench, callcost, "aggressive+volatility");
BENCHMARK_CAPTURE(allocatorBench, pdgc_full, "full-preferences");

// Expanded BENCHMARK_MAIN with an observability sidecar: when
// PDGC_STATS_OUT names a file, the allocator-wide counter/timer report is
// written there after the benchmarks finish. An environment variable keeps
// google-benchmark's flag parser out of the picture.
int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  if (std::getenv("PDGC_STATS_OUT") != nullptr)
    pdgc::setTimersEnabled(true);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (const char *StatsOut = std::getenv("PDGC_STATS_OUT")) {
    std::string Error;
    if (!pdgc::writeObservabilityReport(StatsOut, &Error)) {
      std::fprintf(stderr, "micro_allocators: %s\n", Error.c_str());
      return 1;
    }
  }
  return 0;
}
