//===- bench/fig10_preferences.cpp - Figure 10 reproduction ------------------===//
//
// Part of the PDGC project.
//
// Figure 10 of the paper: the impact of honoring preferences for the
// irregular registers. Simulated execution cost (the stand-in for the
// paper's elapsed seconds; see DESIGN.md) of SPECjvm98-like suites under
// three allocators — ours restricted to coalescing, Park–Moon optimistic
// coalescing (both given the fixed non-volatile-first register heuristic,
// as in Section 6.2), and our full-featured preference-directed coloring —
// at (a) 16, (b) 24 and (c) 32 registers.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "support/Statistics.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace pdgc;

namespace {

void runPanel(char Label, unsigned Regs) {
  TargetDesc Target = makeTarget(Regs);
  TablePrinter Table("Figure 10(" + std::string(1, Label) +
                     "): simulated execution cost, " + std::to_string(Regs) +
                     " registers (lower is better)");
  Table.setHeader({"test", "only coalescing", "optimistic",
                   "full preferences", "full/coalescing"});

  const char *const Algos[] = {"only-coalescing", "optimistic#nvf",
                               "full-preferences"};
  std::vector<double> Improvement;
  for (const WorkloadSuite &Suite : specJvmLikeSuites()) {
    double Costs[3];
    for (unsigned A = 0; A != 3; ++A) {
      std::unique_ptr<AllocatorBase> Alloc = makeAllocatorByName(Algos[A]);
      Costs[A] = runSuiteAllocation(Suite, Target, *Alloc).Cost.total();
    }
    Improvement.push_back(Costs[2] / Costs[0]);
    Table.addRow({Suite.Name, formatDouble(Costs[0], 0),
                  formatDouble(Costs[1], 0), formatDouble(Costs[2], 0),
                  formatDouble(Costs[2] / Costs[0], 3)});
  }
  Table.addRow({"geo. mean", "", "", "", formatDouble(geomean(Improvement),
                                                      3)});
  Table.print();
}

} // namespace

int main() {
  std::printf(
      "Reproduction of Figure 10 (Section 6.2, preference impacts).\n"
      "Simulated cost substitutes for elapsed time; the coalescing-only\n"
      "algorithms use the paper's non-volatile-first register heuristic.\n");
  runPanel('a', 16);
  runPanel('b', 24);
  runPanel('c', 32);
  return 0;
}
