//===- bench/fig9_coalescing.cpp - Figure 9 reproduction ---------------------===//
//
// Part of the PDGC project.
//
// Figure 9 of the paper: coalescing capability and spill suppression of
// the partial-order-based allocator (coalesce preferences only) against
// Park–Moon optimistic coalescing and Briggs-style coloring with
// aggressive coalescing, relative to Chaitin's allocator (the base), at 16
// and 32 registers:
//   (a) ratio of eliminated move instructions, 16 registers
//   (b) ratio of generated spill instructions, 16 registers
//   (c) ratio of eliminated move instructions, 32 registers
//   (d) ratio of generated spill instructions, 32 registers
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "support/Statistics.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace pdgc;

namespace {

// The fourth column is not in the paper's figure: it is the extension
// Section 6.1 proposes ("aggressively coalesce non spill-causing nodes"),
// included to show it recovers the coalescing that deferred-only
// resolution misses.
const char *const Algorithms[] = {"only-coalescing", "optimistic",
                                  "briggs+aggressive",
                                  "only-coalescing+pre"};
constexpr unsigned NumAlgorithms = 4;

void runPanel(char Label, unsigned Regs, bool SpillPanel) {
  TargetDesc Target = makeTarget(Regs);
  std::string Metric = SpillPanel ? "generated spill instructions"
                                  : "eliminated moves by coalescing";
  TablePrinter Table("Figure 9(" + std::string(1, Label) + "): ratio of " +
                     Metric + " vs. Chaitin, " + std::to_string(Regs) +
                     " registers");
  Table.setHeader({"test", "chaitin", "only coalescing", "ratio",
                   "optimistic", "ratio", "briggs+aggressive", "ratio",
                   "ours+precoalesce", "ratio"});

  std::vector<std::vector<double>> Ratios(NumAlgorithms);
  for (const WorkloadSuite &Suite : specJvmLikeSuites()) {
    std::unique_ptr<AllocatorBase> Base = makeAllocatorByName("chaitin");
    SuiteResult BaseRes = runSuiteAllocation(Suite, Target, *Base);
    double BaseVal = SpillPanel
                         ? static_cast<double>(BaseRes.SpillInstructions)
                         : static_cast<double>(BaseRes.EliminatedMoves);

    std::vector<std::string> Row{Suite.Name,
                                 formatDouble(BaseVal, 0)};
    for (unsigned A = 0; A != NumAlgorithms; ++A) {
      std::unique_ptr<AllocatorBase> Alloc =
          makeAllocatorByName(Algorithms[A]);
      SuiteResult Res = runSuiteAllocation(Suite, Target, *Alloc);
      double Val = SpillPanel ? static_cast<double>(Res.SpillInstructions)
                              : static_cast<double>(Res.EliminatedMoves);
      // Ratio to the base; when both are zero the algorithms agree (1.0).
      double Ratio = BaseVal > 0 ? Val / BaseVal : (Val > 0 ? 2.0 : 1.0);
      Ratios[A].push_back(Ratio);
      Row.push_back(formatDouble(Val, 0));
      Row.push_back(formatDouble(Ratio, 3));
    }
    Table.addRow(std::move(Row));
  }

  std::vector<std::string> Geo{"geo. mean", ""};
  for (unsigned A = 0; A != NumAlgorithms; ++A) {
    Geo.push_back("");
    Geo.push_back(formatDouble(geomean(Ratios[A]), 3));
  }
  Table.addRow(std::move(Geo));
  Table.print();
}

} // namespace

int main() {
  std::printf("Reproduction of Figure 9 (Section 6.1, coalescing "
              "capability).\nBase algorithm: Chaitin-style coloring with "
              "aggressive coalescing.\n");
  runPanel('a', 16, /*SpillPanel=*/false);
  runPanel('b', 16, /*SpillPanel=*/true);
  runPanel('c', 32, /*SpillPanel=*/false);
  runPanel('d', 32, /*SpillPanel=*/true);
  return 0;
}
