//===- bench/BenchCommon.cpp - Shared benchmark harness ---------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "core/PDGCRegistration.h"
#include "regalloc/AllocatorRegistry.h"
#include "regalloc/BriggsAllocator.h"
#include "regalloc/Driver.h"
#include "regalloc/OptimisticCoalescingAllocator.h"
#include "support/Debug.h"

using namespace pdgc;

std::unique_ptr<AllocatorBase>
pdgc::makeAllocatorByName(const std::string &FullName) {
  registerPDGCAllocators();

  std::string Name = FullName;
  bool NonVolatileFirst = false;
  if (auto Pos = Name.find("#nvf"); Pos != std::string::npos) {
    NonVolatileFirst = true;
    Name.erase(Pos);
  }

  // The #nvf variants are constructed directly; everything else resolves
  // through the allocator registry (which the fallback driver and the
  // fuzzer also use).
  if (NonVolatileFirst) {
    if (Name == "briggs+aggressive")
      return std::make_unique<BriggsAllocator>(/*BiasedColoring=*/false,
                                               /*NonVolatileFirst=*/true);
    if (Name == "briggs+biased")
      return std::make_unique<BriggsAllocator>(/*BiasedColoring=*/true,
                                               /*NonVolatileFirst=*/true);
    if (Name == "optimistic")
      return std::make_unique<OptimisticCoalescingAllocator>(
          /*NonVolatileFirst=*/true);
  }
  std::unique_ptr<AllocatorBase> Allocator = createRegisteredAllocator(Name);
  pdgc_check(Allocator != nullptr,
             ("unknown allocator name: " + FullName).c_str());
  return Allocator;
}

SuiteResult pdgc::runSuiteAllocation(const WorkloadSuite &Suite,
                                     const TargetDesc &Target,
                                     AllocatorBase &Allocator) {
  SuiteResult R;
  for (unsigned I = 0, E = Suite.Functions.size(); I != E; ++I) {
    std::unique_ptr<Function> F = Suite.generate(I, Target);
    AllocationOutcome Out = allocate(*F, Target, Allocator);
    ++R.Functions;
    R.OriginalMoves += Out.OriginalMoves;
    R.RemainingMoves += Out.remainingMoves();
    R.EliminatedMoves += Out.eliminatedMoves();
    R.SpillInstructions += Out.SpillInstructions;
    R.SpilledRanges += Out.SpilledRanges;
    R.Rounds += Out.Rounds;
    R.Cost += simulateCost(*F, Target, Out.Assignment);
  }
  return R;
}
