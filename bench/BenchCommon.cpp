//===- bench/BenchCommon.cpp - Shared benchmark harness ---------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "core/PreferenceDirectedAllocator.h"
#include "regalloc/BriggsAllocator.h"
#include "regalloc/CallCostAllocator.h"
#include "regalloc/ChaitinAllocator.h"
#include "regalloc/Driver.h"
#include "regalloc/IteratedCoalescingAllocator.h"
#include "regalloc/OptimisticCoalescingAllocator.h"
#include "regalloc/PriorityAllocator.h"
#include "support/Debug.h"

using namespace pdgc;

std::unique_ptr<AllocatorBase>
pdgc::makeAllocatorByName(const std::string &FullName) {
  std::string Name = FullName;
  bool NonVolatileFirst = false;
  if (auto Pos = Name.find("#nvf"); Pos != std::string::npos) {
    NonVolatileFirst = true;
    Name.erase(Pos);
  }

  if (Name == "chaitin")
    return std::make_unique<ChaitinAllocator>();
  if (Name == "briggs+aggressive")
    return std::make_unique<BriggsAllocator>(/*BiasedColoring=*/false,
                                             NonVolatileFirst);
  if (Name == "briggs+biased")
    return std::make_unique<BriggsAllocator>(/*BiasedColoring=*/true,
                                             NonVolatileFirst);
  if (Name == "iterated")
    return std::make_unique<IteratedCoalescingAllocator>();
  if (Name == "priority")
    return std::make_unique<PriorityAllocator>();
  if (Name == "optimistic")
    return std::make_unique<OptimisticCoalescingAllocator>(NonVolatileFirst);
  if (Name == "aggressive+volatility")
    return std::make_unique<CallCostAllocator>();
  if (Name == "full-preferences")
    return std::make_unique<PreferenceDirectedAllocator>(pdgcFullOptions());
  if (Name == "only-coalescing")
    return std::make_unique<PreferenceDirectedAllocator>(
        pdgcCoalesceOnlyOptions());

  if (Name == "pdgc-stack-order") {
    PDGCOptions O = pdgcFullOptions();
    O.UseCPG = false;
    O.Name = "pdgc-stack-order";
    return std::make_unique<PreferenceDirectedAllocator>(O);
  }
  if (Name == "pdgc-no-lookahead") {
    PDGCOptions O = pdgcFullOptions();
    O.PendingLookahead = false;
    O.Name = "pdgc-no-lookahead";
    return std::make_unique<PreferenceDirectedAllocator>(O);
  }
  if (Name == "pdgc-no-active-spill") {
    PDGCOptions O = pdgcFullOptions();
    O.ActiveSpill = false;
    O.Name = "pdgc-no-active-spill";
    return std::make_unique<PreferenceDirectedAllocator>(O);
  }
  if (Name == "pdgc-no-sequential") {
    PDGCOptions O = pdgcFullOptions();
    O.SequentialPreferences = false;
    O.Name = "pdgc-no-sequential";
    return std::make_unique<PreferenceDirectedAllocator>(O);
  }
  if (Name == "pdgc-no-volatility") {
    PDGCOptions O = pdgcFullOptions();
    O.VolatilityPreferences = false;
    O.Name = "pdgc-no-volatility";
    return std::make_unique<PreferenceDirectedAllocator>(O);
  }
  if (Name == "pdgc-no-restricted") {
    PDGCOptions O = pdgcFullOptions();
    O.RestrictedPreferences = false;
    O.Name = "pdgc-no-restricted";
    return std::make_unique<PreferenceDirectedAllocator>(O);
  }
  if (Name == "pdgc-precoalesce") {
    PDGCOptions O = pdgcFullOptions();
    O.PreCoalesce = true;
    O.Name = "pdgc-precoalesce";
    return std::make_unique<PreferenceDirectedAllocator>(O);
  }
  if (Name == "only-coalescing+pre") {
    PDGCOptions O = pdgcCoalesceOnlyOptions();
    O.PreCoalesce = true;
    O.Name = "only-coalescing+pre";
    return std::make_unique<PreferenceDirectedAllocator>(O);
  }
  pdgc_check(false, ("unknown allocator name: " + FullName).c_str());
  return nullptr;
}

SuiteResult pdgc::runSuiteAllocation(const WorkloadSuite &Suite,
                                     const TargetDesc &Target,
                                     AllocatorBase &Allocator) {
  SuiteResult R;
  for (unsigned I = 0, E = Suite.Functions.size(); I != E; ++I) {
    std::unique_ptr<Function> F = Suite.generate(I, Target);
    AllocationOutcome Out = allocate(*F, Target, Allocator);
    ++R.Functions;
    R.OriginalMoves += Out.OriginalMoves;
    R.RemainingMoves += Out.remainingMoves();
    R.EliminatedMoves += Out.eliminatedMoves();
    R.SpillInstructions += Out.SpillInstructions;
    R.SpilledRanges += Out.SpilledRanges;
    R.Rounds += Out.Rounds;
    R.Cost += simulateCost(*F, Target, Out.Assignment);
  }
  return R;
}
