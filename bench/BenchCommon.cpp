//===- bench/BenchCommon.cpp - Shared benchmark harness ---------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "core/PDGCRegistration.h"
#include "regalloc/AllocatorRegistry.h"
#include "regalloc/BriggsAllocator.h"
#include "regalloc/Driver.h"
#include "regalloc/OptimisticCoalescingAllocator.h"
#include "support/Debug.h"
#include "support/ThreadPool.h"

using namespace pdgc;

std::unique_ptr<AllocatorBase>
pdgc::makeAllocatorByName(const std::string &FullName) {
  registerPDGCAllocators();

  std::string Name = FullName;
  bool NonVolatileFirst = false;
  if (auto Pos = Name.find("#nvf"); Pos != std::string::npos) {
    NonVolatileFirst = true;
    Name.erase(Pos);
  }

  // The #nvf variants are constructed directly; everything else resolves
  // through the allocator registry (which the fallback driver and the
  // fuzzer also use).
  if (NonVolatileFirst) {
    if (Name == "briggs+aggressive")
      return std::make_unique<BriggsAllocator>(/*BiasedColoring=*/false,
                                               /*NonVolatileFirst=*/true);
    if (Name == "briggs+biased")
      return std::make_unique<BriggsAllocator>(/*BiasedColoring=*/true,
                                               /*NonVolatileFirst=*/true);
    if (Name == "optimistic")
      return std::make_unique<OptimisticCoalescingAllocator>(
          /*NonVolatileFirst=*/true);
  }
  std::unique_ptr<AllocatorBase> Allocator = createRegisteredAllocator(Name);
  pdgc_check(Allocator != nullptr,
             ("unknown allocator name: " + FullName).c_str());
  return Allocator;
}

namespace {

void foldOutcome(SuiteResult &R, const AllocationOutcome &Out,
                 const SimulatedCost &Cost) {
  ++R.Functions;
  R.OriginalMoves += Out.OriginalMoves;
  R.RemainingMoves += Out.remainingMoves();
  R.EliminatedMoves += Out.eliminatedMoves();
  R.SpillInstructions += Out.SpillInstructions;
  R.SpilledRanges += Out.SpilledRanges;
  R.Rounds += Out.Rounds;
  R.Cost += Cost;
}

} // namespace

SuiteResult pdgc::runSuiteAllocation(const WorkloadSuite &Suite,
                                     const TargetDesc &Target,
                                     AllocatorBase &Allocator) {
  SuiteResult R;
  for (unsigned I = 0, E = Suite.Functions.size(); I != E; ++I) {
    std::unique_ptr<Function> F = Suite.generate(I, Target);
    AllocationOutcome Out = allocate(*F, Target, Allocator);
    foldOutcome(R, Out, simulateCost(*F, Target, Out.Assignment));
  }
  return R;
}

SuiteResult pdgc::runSuiteAllocation(const WorkloadSuite &Suite,
                                     const TargetDesc &Target,
                                     const std::string &AllocatorName,
                                     unsigned Jobs) {
  const unsigned N = static_cast<unsigned>(Suite.Functions.size());

  // Everything shared is prepared sequentially up front: the functions
  // (the generator is not specified to be thread-safe) and one allocator
  // per item (makeAllocatorByName seeds the registries, which must not
  // race with worker-side lookups).
  std::vector<std::unique_ptr<Function>> Fns(N);
  std::vector<std::unique_ptr<AllocatorBase>> Allocs(N);
  for (unsigned I = 0; I != N; ++I) {
    Fns[I] = Suite.generate(I, Target);
    Allocs[I] = makeAllocatorByName(AllocatorName);
  }

  struct ItemResult {
    AllocationOutcome Out;
    SimulatedCost Cost;
  };
  std::vector<ItemResult> Items(N);

  ThreadPool Pool(Jobs);
  Pool.parallelFor(N, [&](unsigned I) {
    Items[I].Out = allocate(*Fns[I], Target, *Allocs[I]);
    Items[I].Cost = simulateCost(*Fns[I], Target, Items[I].Out.Assignment);
  });

  // Folding in index order keeps the aggregate — including the
  // floating-point cost sum — identical across job counts.
  SuiteResult R;
  for (const ItemResult &Item : Items)
    foldOutcome(R, Item.Out, Item.Cost);
  return R;
}
