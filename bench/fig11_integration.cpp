//===- bench/fig11_integration.cpp - Figure 11 reproduction ------------------===//
//
// Part of the PDGC project.
//
// Figure 11 of the paper: the value of *integrating* the register
// allocation actions. Relative simulated execution time (full preferences
// = 1.0) at the middle-pressure model (24 registers) for the three
// coalescing-only allocators, the Lueh–Gross-style call-cost directed
// allocator ("aggressive+volatility"), and our full-featured coloring.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "support/Statistics.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace pdgc;

int main() {
  std::printf(
      "Reproduction of Figure 11 (Section 6.3, performance evaluation).\n"
      "Relative simulated time, full-preferences = 1.00; 24 registers.\n");

  TargetDesc Target = makeTarget(24);
  const char *const Algos[] = {"only-coalescing", "optimistic#nvf",
                               "briggs+aggressive#nvf",
                               "aggressive+volatility", "full-preferences"};
  constexpr unsigned NumAlgos = 5;

  TablePrinter Table(
      "Figure 11: relative simulated time vs. full preferences, 24 regs");
  Table.setHeader({"test", "only coalescing", "optimistic",
                   "briggs+aggressive", "aggressive+volatility",
                   "full preferences"});

  std::vector<std::vector<double>> Rel(NumAlgos);
  for (const WorkloadSuite &Suite : specJvmLikeSuites()) {
    double Costs[NumAlgos];
    for (unsigned A = 0; A != NumAlgos; ++A) {
      std::unique_ptr<AllocatorBase> Alloc = makeAllocatorByName(Algos[A]);
      Costs[A] = runSuiteAllocation(Suite, Target, *Alloc).Cost.total();
    }
    std::vector<std::string> Row{Suite.Name};
    for (unsigned A = 0; A != NumAlgos; ++A) {
      double Ratio = Costs[A] / Costs[NumAlgos - 1];
      Rel[A].push_back(Ratio);
      Row.push_back(formatDouble(Ratio, 3));
    }
    Table.addRow(std::move(Row));
  }
  std::vector<std::string> Geo{"geo. mean"};
  for (unsigned A = 0; A != NumAlgos; ++A)
    Geo.push_back(formatDouble(geomean(Rel[A]), 3));
  Table.addRow(std::move(Geo));
  Table.print();

  std::printf("\nPaper's headline: 'aggressive+volatility' loses to full\n"
              "preferences on most tests (best case jess ~16%%, worst case\n"
              "db ~4%% the other way); coalescing-only allocators trail\n"
              "both.\n");
  return 0;
}
