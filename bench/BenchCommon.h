//===- bench/BenchCommon.h - Shared benchmark harness -----------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the figure-reproduction benchmarks: an allocator
/// factory keyed by the names used in the paper's figures, and a runner
/// that allocates a whole workload suite and aggregates the metrics each
/// figure reports (eliminated moves, generated spill instructions,
/// simulated execution cost).
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_BENCH_BENCHCOMMON_H
#define PDGC_BENCH_BENCHCOMMON_H

#include "regalloc/AllocatorBase.h"
#include "sim/CostSimulator.h"
#include "workloads/Suites.h"

#include <memory>
#include <string>

namespace pdgc {

/// Creates an allocator by figure name. Known names:
///   chaitin            — Chaitin, aggressive coalescing (Figure 9 base)
///   briggs+aggressive  — Briggs optimistic coloring
///   iterated           — George–Appel iterated coalescing
///   optimistic         — Park–Moon optimistic coalescing
///   aggressive+volatility — Lueh–Gross-style call-cost directed
///   only-coalescing    — ours, coalesce preferences only (Section 6.1)
///   full-preferences   — ours, all preferences (Section 6.2/6.3)
///   pdgc-stack-order / pdgc-no-lookahead / pdgc-no-active-spill /
///   pdgc-no-sequential / pdgc-no-volatility — ablations
///   pdgc-precoalesce / only-coalescing+pre — the Section 6.1 extension:
///   conservative pre-coalescing of non-spill-causing copies
/// Names may be suffixed with "#nvf" to select non-volatile-first register
/// picking for the preference-unaware allocators (Section 6.2's heuristic).
std::unique_ptr<AllocatorBase> makeAllocatorByName(const std::string &Name);

/// Aggregated metrics of one (suite, target, allocator) run.
struct SuiteResult {
  unsigned Functions = 0;
  unsigned OriginalMoves = 0;
  unsigned RemainingMoves = 0;
  unsigned EliminatedMoves = 0;
  unsigned SpillInstructions = 0;
  unsigned SpilledRanges = 0;
  unsigned Rounds = 0;
  SimulatedCost Cost; ///< Summed simulated execution cost.
};

/// Generates every function of \p Suite, allocates it with \p Allocator on
/// \p Target, and aggregates the metrics.
SuiteResult runSuiteAllocation(const WorkloadSuite &Suite,
                               const TargetDesc &Target,
                               AllocatorBase &Allocator);

/// Parallel variant: allocates the suite's functions on \p Jobs worker
/// threads, each item with its own allocator instance created from
/// \p AllocatorName (makeAllocatorByName semantics, so "#nvf" suffixes
/// work). Functions are generated up front and metrics are folded in
/// suite index order, so the result is identical for every \p Jobs value
/// (including the floating-point simulated cost, whose summation order is
/// fixed). \p Jobs of 0 or 1 runs inline on the calling thread.
SuiteResult runSuiteAllocation(const WorkloadSuite &Suite,
                               const TargetDesc &Target,
                               const std::string &AllocatorName,
                               unsigned Jobs);

} // namespace pdgc

#endif // PDGC_BENCH_BENCHCOMMON_H
