//===- bench/fig7_example.cpp - Figure 7 walkthrough --------------------------===//
//
// Part of the PDGC project.
//
// Prints every artifact of the paper's Figure 7: the sample code (a), the
// interference graph (b), the Register Preference Graph with its strengths
// (c), the simplification stack (d), the Coloring Precedence Graph for
// three registers (e) and for four (f), the register-selected assignment
// (g) and the final code (h).
//
//===----------------------------------------------------------------------===//

#include "analysis/CostModel.h"
#include "analysis/InterferenceGraph.h"
#include "core/ColoringPrecedenceGraph.h"
#include "core/PreferenceDirectedAllocator.h"
#include "core/RegisterPreferenceGraph.h"
#include "ir/IRPrinter.h"
#include "regalloc/Driver.h"
#include "regalloc/Simplifier.h"
#include "workloads/Figure7.h"

#include <cstdio>
#include <map>
#include <string>

using namespace pdgc;

namespace {

std::string nodeName(const Figure7Regs &R, unsigned Id) {
  std::map<unsigned, std::string> Names{
      {R.Arg0.id(), "arg0"}, {R.V0.id(), "v0"},     {R.V1.id(), "v1"},
      {R.V2.id(), "v2"},     {R.V3.id(), "v3"},     {R.V4.id(), "v4"},
      {R.CallArg.id(), "arg0'"}};
  auto It = Names.find(Id);
  return It != Names.end() ? It->second : "v" + std::to_string(Id);
}

std::string targetName(const Figure7Regs &R, const TargetDesc &T,
                       const PrefTarget &PT) {
  switch (PT.Kind) {
  case PrefTarget::LiveRange:
    return nodeName(R, PT.Value);
  case PrefTarget::Register:
    return T.regName(static_cast<PhysReg>(PT.Value));
  case PrefTarget::VolatileClass:
    return "<volatile>";
  case PrefTarget::NonVolatileClass:
    return "<non-volatile>";
  case PrefTarget::NarrowRegisters:
    return "<narrow>";
  }
  return "?";
}

} // namespace

int main() {
  TargetDesc Target = makeFigure7Target();
  Figure7Regs R;
  auto F = makeFigure7Function(Target, &R);

  std::printf("===== Figure 7(a): sample code =====\n%s\n",
              printFunction(*F).c_str());

  Liveness LV = Liveness::compute(*F);
  LoopInfo LI = LoopInfo::compute(*F);
  LiveRangeCosts Costs = LiveRangeCosts::compute(*F, LV, LI);
  InterferenceGraph IG = InterferenceGraph::build(*F, LV, LI);

  std::printf("===== Figure 7(b): interference graph =====\n");
  for (unsigned A = 0, E = IG.numNodes(); A != E; ++A)
    for (unsigned B = A + 1; B != E; ++B)
      if (IG.interferes(A, B))
        std::printf("  %s -- %s\n", nodeName(R, A).c_str(),
                    nodeName(R, B).c_str());

  RegisterPreferenceGraph RPG =
      RegisterPreferenceGraph::build(*F, LV, LI, Costs, Target);
  std::printf("\n===== Figure 7(c): register preference graph =====\n");
  for (unsigned V = 0, E = F->numVRegs(); V != E; ++V)
    for (const Preference &P : RPG.preferencesOf(VReg(V))) {
      std::printf("  %-5s -[%s]-> %-14s", nodeName(R, V).c_str(),
                  prefKindName(P.Kind),
                  targetName(R, Target, P.Target).c_str());
      if (P.Target.Kind == PrefTarget::LiveRange ||
          P.Target.Kind == PrefTarget::Register)
        std::printf("  strength vol:%.0f n-vol:%.0f\n",
                    RPG.strength(P, 1), RPG.strength(P, 2));
      else
        std::printf("  strength %.0f\n", RPG.bestStrength(P));
    }

  SimplifyResult SR = simplifyGraph(
      IG, Target, [&](unsigned N) { return Costs.spillMetric(VReg(N)); },
      /*Optimistic=*/true);
  std::printf("\n===== Figure 7(d): simplification stack (bottom->top) "
              "=====\n  ");
  for (unsigned N : SR.Stack)
    std::printf("%s ", nodeName(R, N).c_str());
  std::printf("\n");

  ColoringPrecedenceGraph CPG =
      ColoringPrecedenceGraph::build(IG, Target, SR);
  std::printf("\n===== Figure 7(e): coloring precedence graph (K=3) "
              "=====\n");
  for (unsigned N : SR.Stack) {
    if (CPG.predecessors(N).empty())
      std::printf("  top -> %s\n", nodeName(R, N).c_str());
    for (unsigned S : CPG.successors(N))
      std::printf("  %s -> %s\n", nodeName(R, N).c_str(),
                  nodeName(R, S).c_str());
  }

  {
    TargetDesc Wide("fig7wide", 4, 4, 2, 2, PairingRule::Adjacent);
    auto F4 = makeFigure7Function(Wide, nullptr);
    Liveness LV4 = Liveness::compute(*F4);
    LoopInfo LI4 = LoopInfo::compute(*F4);
    LiveRangeCosts C4 = LiveRangeCosts::compute(*F4, LV4, LI4);
    InterferenceGraph IG4 = InterferenceGraph::build(*F4, LV4, LI4);
    SimplifyResult SR4 = simplifyGraph(
        IG4, Wide, [&](unsigned N) { return C4.spillMetric(VReg(N)); },
        true);
    ColoringPrecedenceGraph CPG4 =
        ColoringPrecedenceGraph::build(IG4, Wide, SR4);
    std::printf("\n===== Figure 7(f): CPG with K>=4: %u edges (all nodes "
                "ready) =====\n",
                CPG4.numEdges());
  }

  PreferenceDirectedAllocator Alloc(pdgcFullOptions());
  AllocationOutcome Out = allocate(*F, Target, Alloc);
  std::printf("\n===== Figure 7(g): assignment =====\n");
  for (unsigned V = 0, E = F->numVRegs(); V != E; ++V)
    if (Out.Assignment[V] >= 0)
      std::printf("  %-5s -> %s%s\n", nodeName(R, V).c_str(),
                  Target.regName(static_cast<PhysReg>(Out.Assignment[V]))
                      .c_str(),
                  Target.isVolatile(static_cast<PhysReg>(Out.Assignment[V]))
                      ? " (volatile)"
                      : " (non-volatile)");

  std::printf("\n===== Figure 7(h): final code (moves with equal operands "
              "vanish) =====\n%s\n",
              printFunction(*F).c_str());
  std::printf("moves eliminated: %u of %u; paired load fuses: %s\n",
              Out.Moves.Eliminated, Out.Moves.Total,
              Out.Assignment[R.V2.id()] == Out.Assignment[R.V1.id()] + 1
                  ? "yes"
                  : "no");
  return 0;
}
