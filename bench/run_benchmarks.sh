#!/usr/bin/env bash
#===- bench/run_benchmarks.sh - Reproducible benchmark runner ------------===#
#
# Part of the PDGC project.
#
# Builds (if needed) and runs the google-benchmark microbenchmarks,
# writing the JSON report to BENCH_pr3.json at the repository root so
# performance PRs can commit the numbers they claim.
#
# Usage:
#   bench/run_benchmarks.sh [output.json]
#
# Environment:
#   BUILD_DIR  build tree to use (default: <repo>/build)
#   REPS       repetitions per benchmark (default: 3)
#   MIN_TIME   --benchmark_min_time per repetition, seconds as a plain
#              double (default: 0.2)
#   FILTER     --benchmark_filter regex (default: all benchmarks)
#
# Alongside the benchmark JSON, a counters+timers sidecar is written to
# <output>.stats.json (see docs/OBSERVABILITY.md).
#
#===----------------------------------------------------------------------===#
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
OUT="${1:-$ROOT/BENCH_pr3.json}"

if [ ! -x "$BUILD/bench/micro_allocators" ]; then
  echo "run_benchmarks.sh: building micro_allocators in $BUILD" >&2
  cmake -B "$BUILD" -S "$ROOT" >/dev/null
  cmake --build "$BUILD" --target micro_allocators -j"$(nproc)" >/dev/null
fi

STATS_OUT="${OUT%.json}.stats.json"

PDGC_STATS_OUT="$STATS_OUT" "$BUILD/bench/micro_allocators" \
  --benchmark_filter="${FILTER:-.}" \
  --benchmark_repetitions="${REPS:-3}" \
  --benchmark_min_time="${MIN_TIME:-0.2}" \
  --benchmark_report_aggregates_only=true \
  --benchmark_out_format=json \
  --benchmark_out="$OUT"

echo "run_benchmarks.sh: wrote $OUT and $STATS_OUT" >&2
