#!/usr/bin/env bash
#===- bench/run_benchmarks.sh - Reproducible benchmark runner ------------===#
#
# Part of the PDGC project.
#
# Builds (if needed) and runs the google-benchmark microbenchmarks,
# writing the JSON report to BENCH_pr8.json at the repository root so
# performance PRs can commit the numbers they claim.
#
# The script refuses to record numbers from anything but a Release build:
# the BENCH_pr3 baseline was accidentally recorded from a tree configured
# with an *empty* CMAKE_BUILD_TYPE (no optimization at all), which made
# every later comparison meaningless. The build type is read from the
# build tree's CMakeCache.txt — not from google-benchmark's
# `library_build_type` field, which describes how the *benchmark library*
# was compiled (the distro package always says "debug") — and stamped
# into the output JSON as `pdgc_build_type` so a committed report carries
# its own provenance.
#
# Usage:
#   bench/run_benchmarks.sh [output.json] [--allow-debug]
#
# Environment:
#   BUILD_DIR  build tree to use (default: <repo>/build-rel, configured
#              Release automatically if missing)
#   REPS       repetitions per benchmark (default: 3)
#   MIN_TIME   --benchmark_min_time per repetition, seconds as a plain
#              double (default: 0.2)
#   FILTER     --benchmark_filter regex (default: all benchmarks)
#
# Alongside the benchmark JSON, a counters+timers sidecar is written to
# <output>.stats.json (see docs/OBSERVABILITY.md).
#
#===----------------------------------------------------------------------===#
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build-rel}"

OUT="$ROOT/BENCH_pr8.json"
ALLOW_DEBUG=0
for Arg in "$@"; do
  case "$Arg" in
  --allow-debug) ALLOW_DEBUG=1 ;;
  *) OUT="$Arg" ;;
  esac
done

# Configure a Release tree if the build directory does not exist yet.
if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  echo "run_benchmarks.sh: configuring Release build in $BUILD" >&2
  cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
fi

# Read CMAKE_BUILD_TYPE out of the cache. An absent or empty value means
# no optimization flags at all — worse than Debug for benchmarking.
BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD/CMakeCache.txt")"
BUILD_TYPE="${BUILD_TYPE:-<empty>}"
case "$BUILD_TYPE" in
Release | RelWithDebInfo) ;;
*)
  if [ "$ALLOW_DEBUG" -ne 1 ]; then
    echo "run_benchmarks.sh: refusing to benchmark a '$BUILD_TYPE' build" >&2
    echo "  build tree:   $BUILD" >&2
    echo "  numbers from unoptimized builds are not comparable; pass" >&2
    echo "  --allow-debug to override, or point BUILD_DIR at a tree" >&2
    echo "  configured with -DCMAKE_BUILD_TYPE=Release." >&2
    exit 2
  fi
  echo "run_benchmarks.sh: WARNING benchmarking a '$BUILD_TYPE' build" >&2
  ;;
esac

if [ ! -x "$BUILD/bench/micro_allocators" ]; then
  echo "run_benchmarks.sh: building micro_allocators in $BUILD" >&2
  cmake --build "$BUILD" --target micro_allocators -j"$(nproc)" >/dev/null
fi

STATS_OUT="${OUT%.json}.stats.json"

PDGC_STATS_OUT="$STATS_OUT" "$BUILD/bench/micro_allocators" \
  --benchmark_filter="${FILTER:-.}" \
  --benchmark_repetitions="${REPS:-3}" \
  --benchmark_min_time="${MIN_TIME:-0.2}" \
  --benchmark_report_aggregates_only=true \
  --benchmark_out_format=json \
  --benchmark_out="$OUT"

# Stamp our build type into the report's context block, next to
# google-benchmark's own (library-describing) `library_build_type`.
python3 - "$OUT" "$BUILD_TYPE" <<'EOF'
import json
import sys

Path, BuildType = sys.argv[1], sys.argv[2]
with open(Path) as F:
    Report = json.load(F)
Report.setdefault("context", {})["pdgc_build_type"] = BuildType
with open(Path, "w") as F:
    json.dump(Report, F, indent=1)
    F.write("\n")
EOF

echo "run_benchmarks.sh: wrote $OUT and $STATS_OUT ($BUILD_TYPE)" >&2
