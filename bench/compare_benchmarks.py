#!/usr/bin/env python3
"""Compare two google-benchmark JSON reports and enforce perf gates.

Part of the PDGC project.

Reads a *before* and an *after* report (as written by
bench/run_benchmarks.sh), picks one representative time per benchmark
(the `median` aggregate when repetitions were run, the plain entry
otherwise), and applies two kinds of gates:

  --guard NAME            benchmark NAME must not regress by more than
                          --max-regress-pct (repeatable)
  --require-speedup NAME:RATIO
                          after must be at least RATIO times faster than
                          before on NAME (repeatable)

With --forbid-debug, a report whose `pdgc_build_type` stamp is missing
or not Release/RelWithDebInfo fails the comparison outright — numbers
from unoptimized builds gate nothing (see run_benchmarks.sh).

Exit status: 0 when every gate holds, 1 otherwise.

Example (the CI bench-smoke gate):

  bench/compare_benchmarks.py BENCH_pr8_before.json BENCH_pr8.json \
      --guard BM_BuildRpg --guard BM_RebuildInterference \
      --max-regress-pct 2 --require-speedup BM_BuildCpg:2.0
"""

import argparse
import json
import sys


def load_times(path):
    """Returns {benchmark name: real_time in ns} plus the context block."""
    with open(path) as f:
        report = json.load(f)
    unit_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    medians = {}
    plains = {}
    for entry in report.get("benchmarks", []):
        scale = unit_ns.get(entry.get("time_unit", "ns"), 1.0)
        time_ns = entry["real_time"] * scale
        aggregate = entry.get("aggregate_name")
        if aggregate == "median":
            medians[entry["run_name"]] = time_ns
        elif aggregate is None:
            plains[entry["name"]] = time_ns
    # Median aggregates win; plain entries cover REPS=1 runs.
    times = dict(plains)
    times.update(medians)
    return times, report.get("context", {})


def check_build_type(path, context, failures):
    build_type = context.get("pdgc_build_type")
    if build_type not in ("Release", "RelWithDebInfo"):
        failures.append(
            f"{path}: pdgc_build_type is {build_type!r}, want Release "
            "(re-record with bench/run_benchmarks.sh)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("before")
    parser.add_argument("after")
    parser.add_argument("--guard", action="append", default=[],
                        metavar="NAME",
                        help="benchmark that must not regress")
    parser.add_argument("--max-regress-pct", type=float, default=2.0,
                        help="allowed regression on guards (default 2)")
    parser.add_argument("--require-speedup", action="append", default=[],
                        metavar="NAME:RATIO",
                        help="after must beat before by RATIO on NAME")
    parser.add_argument("--forbid-debug", action="store_true",
                        help="fail unless both reports are Release-stamped")
    args = parser.parse_args()

    before, before_ctx = load_times(args.before)
    after, after_ctx = load_times(args.after)

    failures = []
    if args.forbid_debug:
        check_build_type(args.before, before_ctx, failures)
        check_build_type(args.after, after_ctx, failures)

    def lookup(times, path, name):
        if name not in times:
            failures.append(f"{path}: no entry for benchmark {name!r}")
            return None
        return times[name]

    for name in args.guard:
        b = lookup(before, args.before, name)
        a = lookup(after, args.after, name)
        if b is None or a is None:
            continue
        delta_pct = (a - b) / b * 100.0
        status = "ok"
        if delta_pct > args.max_regress_pct:
            failures.append(
                f"{name}: regressed {delta_pct:+.1f}% "
                f"({b:.0f}ns -> {a:.0f}ns), limit "
                f"{args.max_regress_pct:.1f}%")
            status = "FAIL"
        print(f"guard    {name}: {b:.0f}ns -> {a:.0f}ns "
              f"({delta_pct:+.1f}%) {status}")

    for spec in args.require_speedup:
        name, _, ratio_text = spec.partition(":")
        ratio = float(ratio_text) if ratio_text else 1.0
        b = lookup(before, args.before, name)
        a = lookup(after, args.after, name)
        if b is None or a is None:
            continue
        speedup = b / a if a > 0 else float("inf")
        status = "ok"
        if speedup < ratio:
            failures.append(
                f"{name}: speedup {speedup:.2f}x below required "
                f"{ratio:.2f}x ({b:.0f}ns -> {a:.0f}ns)")
            status = "FAIL"
        print(f"speedup  {name}: {b:.0f}ns -> {a:.0f}ns "
              f"({speedup:.2f}x, need {ratio:.2f}x) {status}")

    for failure in failures:
        print(f"compare_benchmarks: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
