//===- bench/ablation_pdgc.cpp - PDGC design-choice ablation ------------------===//
//
// Part of the PDGC project.
//
// Not a paper figure: isolates the contribution of each design choice of
// the preference-directed allocator, per the ablation plan in DESIGN.md:
//
//  * pdgc-stack-order     — select over the plain simplification stack
//                           instead of the CPG partial order (removes the
//                           Section 5.2 contribution);
//  * pdgc-no-lookahead    — drop step 4.3 (pending-preference screening);
//  * pdgc-no-active-spill — drop the Section 5.4 active spilling;
//  * pdgc-no-sequential   — ignore paired-load preferences;
//  * pdgc-no-volatility   — ignore volatile/non-volatile preferences.
//
// Reported as simulated-cost ratios relative to the full configuration
// (higher than 1.0 means the removed feature was helping), plus move and
// spill deltas, at all three pressure models.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "support/Statistics.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace pdgc;

int main() {
  std::printf("PDGC ablation: simulated-cost ratio vs. full-preferences "
              "(geomean over the seven suites).\n");

  const char *const Variants[] = {"pdgc-stack-order", "pdgc-no-lookahead",
                                  "pdgc-no-active-spill",
                                  "pdgc-no-sequential",
                                  "pdgc-no-volatility",
                                  "pdgc-no-restricted",
                                  "pdgc-precoalesce"};

  for (unsigned Regs : {16u, 24u, 32u}) {
    TargetDesc Target = makeTarget(Regs);
    TablePrinter Table("Ablation at " + std::to_string(Regs) +
                       " registers (cost ratio vs. full; >1 = feature "
                       "helps)");
    Table.setHeader({"variant", "cost ratio", "moves left", "full",
                     "spill instrs", "full"});

    // Full configuration baseline per suite.
    std::vector<double> FullCosts;
    unsigned FullMoves = 0, FullSpills = 0;
    std::vector<WorkloadSuite> Suites = specJvmLikeSuites();
    for (const WorkloadSuite &Suite : Suites) {
      std::unique_ptr<AllocatorBase> Alloc =
          makeAllocatorByName("full-preferences");
      SuiteResult Res = runSuiteAllocation(Suite, Target, *Alloc);
      FullCosts.push_back(Res.Cost.total());
      FullMoves += Res.RemainingMoves;
      FullSpills += Res.SpillInstructions;
    }

    for (const char *Variant : Variants) {
      std::vector<double> Ratios;
      unsigned Moves = 0, Spills = 0;
      for (unsigned S = 0; S != Suites.size(); ++S) {
        std::unique_ptr<AllocatorBase> Alloc = makeAllocatorByName(Variant);
        SuiteResult Res = runSuiteAllocation(Suites[S], Target, *Alloc);
        Ratios.push_back(Res.Cost.total() / FullCosts[S]);
        Moves += Res.RemainingMoves;
        Spills += Res.SpillInstructions;
      }
      Table.addRow({Variant, formatDouble(geomean(Ratios), 3),
                    std::to_string(Moves), std::to_string(FullMoves),
                    std::to_string(Spills), std::to_string(FullSpills)});
    }
    Table.print();
  }
  return 0;
}
