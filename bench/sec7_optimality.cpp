//===- bench/sec7_optimality.cpp - Near-optimality vs. search cost -------------===//
//
// Part of the PDGC project.
//
// Section 7 of the paper positions preference-directed coloring against
// the integer-programming allocators (Goodwin/Wilken, Kong/Wilken, Appel/
// George): "we believe we can extend our algorithm for those cases with
// comparable results and much less compilation time." This harness makes
// that claim concrete on inputs small enough for exhaustive optimization:
// for a corpus of tiny functions on a 4-register machine it reports, per
// function, the true optimal simulated cost (branch-and-bound over every
// valid spill-free assignment) against the preference-directed heuristic's
// cost and the wall-clock time of both.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "core/PreferenceDirectedAllocator.h"
#include "ir/PhiElimination.h"
#include "regalloc/Driver.h"
#include "regalloc/OptimalAllocator.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"

#include <chrono>
#include <cstdio>

using namespace pdgc;

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

int main() {
  std::printf(
      "Section 7 check: heuristic vs. exhaustive-optimal assignment on\n"
      "tiny functions (4 registers/class; spill-free cases only).\n");

  TargetDesc Target("t4", 4, 4, 2, 2, PairingRule::Adjacent);
  TablePrinter Table("Preference-directed vs. optimal (tiny corpus)");
  Table.setHeader({"seed", "vregs", "optimal cost", "pdgc cost", "ratio",
                   "optimal ms", "pdgc ms", "search nodes"});

  std::vector<double> Ratios, OptTimes, HeurTimes;
  for (std::uint64_t Seed = 1300; Seed != 1340; ++Seed) {
    GeneratorParams P;
    P.Seed = Seed;
    P.FragmentBudget = 3;
    P.OpsPerFragment = 2;
    P.NumParams = 1;
    P.PressureValues = 1;
    P.Accumulators = 1;
    P.CallPercent = 25;
    P.CopyPercent = 30;
    P.LoopPercent = 25;
    P.PairedLoadPercent = 15;

    std::unique_ptr<Function> F = generateFunction(P, Target);
    eliminatePhis(*F);
    if (F->numVRegs() > 16)
      continue;

    auto T0 = std::chrono::steady_clock::now();
    OptimalResult Optimal = findOptimalAssignment(*F, Target);
    double OptMs = msSince(T0);
    if (!Optimal.Found || Optimal.BudgetExhausted)
      continue;

    std::unique_ptr<Function> F2 = generateFunction(P, Target);
    PreferenceDirectedAllocator Alloc(pdgcFullOptions());
    auto T1 = std::chrono::steady_clock::now();
    AllocationOutcome Out = allocate(*F2, Target, Alloc);
    double HeurMs = msSince(T1);
    if (Out.SpilledRanges > 0)
      continue;
    double Heuristic = simulateCost(*F2, Target, Out.Assignment).total();

    double Ratio = Heuristic / Optimal.Cost;
    Ratios.push_back(Ratio);
    OptTimes.push_back(OptMs);
    HeurTimes.push_back(HeurMs);
    Table.addRow({std::to_string(Seed), std::to_string(F->numVRegs()),
                  formatDouble(Optimal.Cost, 0), formatDouble(Heuristic, 0),
                  formatDouble(Ratio, 3), formatDouble(OptMs, 2),
                  formatDouble(HeurMs, 2),
                  std::to_string(Optimal.NodesVisited)});
  }
  Table.print();
  std::printf("\ncomparable cases: %zu;  cost ratio geomean %.3f;  "
              "heuristic is %.0fx faster on average\n",
              Ratios.size(), geomean(Ratios),
              mean(OptTimes) / (mean(HeurTimes) > 0 ? mean(HeurTimes) : 1));
  return 0;
}
