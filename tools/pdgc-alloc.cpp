//===- tools/pdgc-alloc.cpp - Command-line register allocator -----------------===//
//
// Part of the PDGC project.
//
// Allocates registers for a textual IR function and prints the result.
//
//   pdgc-alloc [options] [input.ir]
//
//   --allocator=NAME   chaitin | briggs+aggressive | iterated |
//                      optimistic | aggressive+volatility |
//                      only-coalescing | full-preferences (default) | ...
//   --regs=N           registers per class: 16 | 24 (default) | 32 | any
//   --pairing=RULE     adjacent (default) | oddeven
//   --remat            rematerialize spilled constants
//   --emit-sample=SEED print a generated sample function and exit (useful
//                      for producing fixtures)
//   --batch=DIR        allocate every *.ir file in DIR (sorted by name)
//                      instead of a single input; prints one summary line
//                      per file plus an aggregate
//   --jobs=N           worker threads for --batch (default 1; 0 = one per
//                      hardware thread)
//   --time-budget-ms=N wall-clock budget per fallback tier (0 = unlimited);
//                      enforced cooperatively inside rounds, so a stuck
//                      phase returns BUDGET_EXCEEDED instead of hanging
//   --max-rounds=N     cap on spill rounds per tier
//   --batch-budget-ms=N  one deadline across a whole --batch run; once it
//                      passes, remaining items degrade straight to the
//                      guarantee tier (ignored outside --batch)
//   --manifest=FILE    with --batch, write a JSON manifest with one entry
//                      per input file: label, status (ok | degraded |
//                      failed), served-by tier, error detail, wall-ms.
//                      Files that fail parse/verify appear as "failed"
//   --quiet            print only the summary line(s)
//   --stats            print "; stat" counter lines (deterministic across
//                      --jobs values) and "; timer" phase wall times
//   --trace-json=FILE  write a Chrome trace-event JSON of the run (open in
//                      chrome://tracing or https://ui.perfetto.dev)
//   --report-json=FILE write a machine-readable counters+timers report
//
// Reads from stdin when no input file is given.
//
// The PDGC_FAULTS environment variable installs a deterministic fault plan
// (see support/FaultInjection.h for the grammar); a malformed spec is a
// usage error.
//
// Exit codes (docs/ROBUSTNESS.md):
//   0  every input allocated by the requested allocator
//   2  allocated, but at least one input was served by a fallback tier
//   1  total failure: parse/verify error, or some input got no allocation
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "regalloc/BatchDriver.h"
#include "regalloc/Driver.h"
#include "sim/CostSimulator.h"
#include "support/Debug.h"
#include "support/FaultInjection.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "support/Tracing.h"
#include "workloads/Generator.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <iostream>
#include <sstream>

using namespace pdgc;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: pdgc-alloc [--allocator=NAME] [--regs=N] "
      "[--pairing=adjacent|oddeven]\n"
      "                  [--remat] [--quiet] [--no-fallback] "
      "[--emit-sample=SEED]\n"
      "                  [--batch=DIR] [--jobs=N] [--manifest=FILE] "
      "[--stats]\n"
      "                  [--time-budget-ms=N] [--max-rounds=N] "
      "[--batch-budget-ms=N]\n"
      "                  [--trace-json=FILE] [--report-json=FILE] "
      "[input.ir]\n");
}

/// Parses a strictly numeric decimal option value into [\p Min, \p Max].
/// Returns false on garbage or overflow instead of letting std::stoul
/// throw out of main.
bool parseNumericOption(const std::string &Value, unsigned long Min,
                        unsigned long Max, unsigned long &Out) {
  if (Value.empty() || Value.size() > 10)
    return false;
  unsigned long V = 0;
  for (char C : Value) {
    if (!std::isdigit(static_cast<unsigned char>(C)))
      return false;
    V = V * 10 + static_cast<unsigned long>(C - '0');
  }
  if (V < Min || V > Max)
    return false;
  Out = V;
  return true;
}

/// The observability outputs requested on the command line. `finish` runs
/// on the successful exit paths: it flushes the requested files and prints
/// the stats block, forwarding (or overriding, on I/O failure) the exit
/// code.
struct ObservabilityOptions {
  bool Stats = false;
  std::string TraceJsonPath;
  std::string ReportJsonPath;

  bool any() const {
    return Stats || !TraceJsonPath.empty() || !ReportJsonPath.empty();
  }

  int finish(int ExitCode) const {
    if (!TraceJsonPath.empty()) {
      trace::stop();
      std::string Error;
      if (!trace::writeJson(TraceJsonPath, &Error)) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        ExitCode = ExitCode ? ExitCode : 1;
      }
    }
    if (!ReportJsonPath.empty()) {
      std::string Error;
      if (!writeObservabilityReport(ReportJsonPath, &Error)) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        ExitCode = ExitCode ? ExitCode : 1;
      }
    }
    if (Stats) {
      // Counters are sums of relaxed atomic increments, so the "; stat"
      // block is byte-identical for any --jobs value. Timer lines carry
      // wall time and are reported separately: comparable in shape, not
      // in duration.
      std::fputs(StatRegistry::get().snapshot().toText("; stat ").c_str(),
                 stdout);
      std::fputs(timersToText("; timer ").c_str(), stdout);
    }
    return ExitCode;
  }
};

} // namespace

int main(int argc, char **argv) {
  std::string AllocatorName = "full-preferences";
  unsigned Regs = 24;
  PairingRule Pairing = PairingRule::Adjacent;
  bool Remat = false;
  bool Quiet = false;
  bool NoFallback = false;
  long EmitSample = -1;
  std::string BatchDir;
  unsigned Jobs = 1;
  unsigned TimeBudgetMs = 0;
  unsigned MaxRounds = 0; // 0 = keep the DriverOptions default
  unsigned BatchBudgetMs = 0;
  std::string ManifestPath;
  ObservabilityOptions Obs;
  std::string InputPath;

  // A malformed fault plan is a usage error, caught before any work runs.
  {
    std::string FaultError;
    if (!fault::installPlanFromEnv(&FaultError)) {
      std::fprintf(stderr, "error: PDGC_FAULTS: %s\n", FaultError.c_str());
      return 1;
    }
  }

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--allocator=", 0) == 0) {
      AllocatorName = Arg.substr(12);
    } else if (Arg.rfind("--regs=", 0) == 0) {
      unsigned long Value = 0;
      if (!parseNumericOption(Arg.substr(7), 2, 4096, Value)) {
        std::fprintf(stderr,
                     "error: --regs expects a number in [2, 4096], got '%s'\n",
                     Arg.substr(7).c_str());
        usage();
        return 1;
      }
      Regs = static_cast<unsigned>(Value);
    } else if (Arg.rfind("--pairing=", 0) == 0) {
      std::string Rule = Arg.substr(10);
      if (Rule == "adjacent")
        Pairing = PairingRule::Adjacent;
      else if (Rule == "oddeven")
        Pairing = PairingRule::OddEven;
      else {
        std::fprintf(stderr, "error: unknown pairing rule '%s'\n",
                     Rule.c_str());
        return 1;
      }
    } else if (Arg.rfind("--batch=", 0) == 0) {
      BatchDir = Arg.substr(8);
      if (BatchDir.empty()) {
        std::fprintf(stderr, "error: --batch expects a directory\n");
        usage();
        return 1;
      }
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      unsigned long Value = 0;
      if (!parseNumericOption(Arg.substr(7), 0, 1024, Value)) {
        std::fprintf(stderr,
                     "error: --jobs expects a number in [0, 1024], got '%s'\n",
                     Arg.substr(7).c_str());
        usage();
        return 1;
      }
      Jobs = Value == 0 ? ThreadPool::defaultJobs()
                        : static_cast<unsigned>(Value);
    } else if (Arg.rfind("--time-budget-ms=", 0) == 0) {
      unsigned long Value = 0;
      if (!parseNumericOption(Arg.substr(17), 0, 3600000, Value)) {
        std::fprintf(stderr,
                     "error: --time-budget-ms expects a number in "
                     "[0, 3600000], got '%s'\n",
                     Arg.substr(17).c_str());
        usage();
        return 1;
      }
      TimeBudgetMs = static_cast<unsigned>(Value);
    } else if (Arg.rfind("--max-rounds=", 0) == 0) {
      unsigned long Value = 0;
      if (!parseNumericOption(Arg.substr(13), 1, 100000, Value)) {
        std::fprintf(stderr,
                     "error: --max-rounds expects a number in [1, 100000], "
                     "got '%s'\n",
                     Arg.substr(13).c_str());
        usage();
        return 1;
      }
      MaxRounds = static_cast<unsigned>(Value);
    } else if (Arg.rfind("--batch-budget-ms=", 0) == 0) {
      unsigned long Value = 0;
      if (!parseNumericOption(Arg.substr(18), 0, 3600000, Value)) {
        std::fprintf(stderr,
                     "error: --batch-budget-ms expects a number in "
                     "[0, 3600000], got '%s'\n",
                     Arg.substr(18).c_str());
        usage();
        return 1;
      }
      BatchBudgetMs = static_cast<unsigned>(Value);
    } else if (Arg.rfind("--manifest=", 0) == 0) {
      ManifestPath = Arg.substr(11);
      if (ManifestPath.empty()) {
        std::fprintf(stderr, "error: --manifest expects a file path\n");
        usage();
        return 1;
      }
    } else if (Arg == "--remat") {
      Remat = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--stats") {
      Obs.Stats = true;
    } else if (Arg.rfind("--trace-json=", 0) == 0) {
      Obs.TraceJsonPath = Arg.substr(13);
      if (Obs.TraceJsonPath.empty()) {
        std::fprintf(stderr, "error: --trace-json expects a file path\n");
        usage();
        return 1;
      }
    } else if (Arg.rfind("--report-json=", 0) == 0) {
      Obs.ReportJsonPath = Arg.substr(14);
      if (Obs.ReportJsonPath.empty()) {
        std::fprintf(stderr, "error: --report-json expects a file path\n");
        usage();
        return 1;
      }
    } else if (Arg == "--no-fallback") {
      NoFallback = true;
    } else if (Arg.rfind("--emit-sample=", 0) == 0) {
      unsigned long Value = 0;
      if (!parseNumericOption(Arg.substr(14), 0, 999999999, Value)) {
        std::fprintf(
            stderr,
            "error: --emit-sample expects a numeric seed, got '%s'\n",
            Arg.substr(14).c_str());
        usage();
        return 1;
      }
      EmitSample = static_cast<long>(Value);
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      usage();
      return 1;
    } else {
      InputPath = Arg;
    }
  }

  if (Regs < 2) {
    std::fprintf(stderr, "error: at least two registers per class\n");
    return 1;
  }
  if (!ManifestPath.empty() && BatchDir.empty()) {
    std::fprintf(stderr, "error: --manifest requires --batch\n");
    usage();
    return 1;
  }
  TargetDesc Target = makeTarget(Regs, Pairing);

  // Flip the observability machinery on before any allocation work so the
  // first phase is already covered. Tracing implies timers (a trace with
  // no spans would be empty).
  if (Obs.any())
    setTimersEnabled(true);
  if (!Obs.TraceJsonPath.empty())
    trace::start();

  if (!BatchDir.empty()) {
    namespace fs = std::filesystem;
    std::error_code EC;
    if (!fs::is_directory(BatchDir, EC)) {
      std::fprintf(stderr, "error: '%s' is not a directory\n",
                   BatchDir.c_str());
      return 1;
    }

    // Validate the allocator name (and seed the registries) on the main
    // thread before any worker looks them up.
    try {
      ScopedErrorTrap Trap;
      makeAllocatorByName(AllocatorName);
    } catch (const std::exception &E) {
      std::fprintf(stderr, "error: %s\n", E.what());
      return 1;
    }

    std::vector<std::string> Paths;
    for (const fs::directory_entry &Entry : fs::directory_iterator(BatchDir))
      if (Entry.is_regular_file() && Entry.path().extension() == ".ir")
        Paths.push_back(Entry.path().string());
    std::sort(Paths.begin(), Paths.end());
    if (Paths.empty()) {
      std::fprintf(stderr, "error: no .ir files in '%s'\n", BatchDir.c_str());
      return 1;
    }

    // Parse and verify sequentially; only clean functions enter the batch.
    // The manifest keeps one slot per input path, in path order, so
    // pre-batch failures and batch results land in their own rows.
    bool AnyFailed = false;
    std::vector<BatchManifestEntry> Manifest(Paths.size());
    std::vector<std::unique_ptr<Function>> Owned;
    std::vector<Function *> Fns;
    std::vector<unsigned> FnPath; // index into Paths per batch item
    for (unsigned I = 0; I != Paths.size(); ++I) {
      std::ifstream In(Paths[I]);
      std::ostringstream SS;
      SS << In.rdbuf();
      std::string ParseError;
      std::unique_ptr<Function> F = parseFunction(SS.str(), ParseError);
      if (!F) {
        std::printf("%s: error: %s\n", Paths[I].c_str(), ParseError.c_str());
        Manifest[I] = BatchManifestEntry::failed(Paths[I], ParseError);
        AnyFailed = true;
        continue;
      }
      std::vector<std::string> VerifyErrors;
      if (!verifyFunction(*F, VerifyErrors)) {
        std::printf("%s: error: invalid IR: %s\n", Paths[I].c_str(),
                    VerifyErrors.front().c_str());
        Manifest[I] = BatchManifestEntry::failed(
            Paths[I], "invalid IR: " + VerifyErrors.front());
        AnyFailed = true;
        continue;
      }
      Owned.push_back(std::move(F));
      Fns.push_back(Owned.back().get());
      FnPath.push_back(I);
    }

    DriverOptions Options;
    Options.Rematerialize = Remat;
    Options.TimeBudgetMs = TimeBudgetMs;
    if (MaxRounds != 0)
      Options.MaxRounds = MaxRounds;
    if (NoFallback)
      Options.FallbackChain = {
          {AllocatorName, [&] { return makeAllocatorByName(AllocatorName); }}};
    else
      Options.FallbackChain = {
          {AllocatorName, [&] { return makeAllocatorByName(AllocatorName); }},
          {"briggs+aggressive", nullptr},
          {"spill-everything", nullptr}};

    // Degradation warnings come from the batch layer as each item
    // completes (serialized behind its mutex), labelled with the file.
    BatchLimits Limits;
    Limits.BatchBudgetMs = BatchBudgetMs;
    Limits.WarnDegraded = !Quiet;
    for (unsigned I = 0; I != Fns.size(); ++I)
      Limits.Labels.push_back(Paths[FnPath[I]]);

    BatchDriver Driver(Jobs);
    std::vector<BatchItemResult> Results =
        Driver.run(Fns, Target, Options, Limits);

    SimulatedCost TotalCost;
    bool AnyDegraded = false;
    unsigned Succeeded = 0, TotalSpills = 0, TotalEliminated = 0;
    for (unsigned I = 0; I != Results.size(); ++I) {
      const char *Path = Paths[FnPath[I]].c_str();
      Manifest[FnPath[I]] = BatchManifestEntry::fromResult(
          Paths[FnPath[I]], Results[I], AllocatorName);
      if (!Results[I].ok()) {
        std::printf("%s: error: %s\n", Path,
                    Results[I].S.toString().c_str());
        AnyFailed = true;
        continue;
      }
      const AllocationOutcome &Out = Results[I].Out;
      AnyDegraded |= Out.Degradation.Degraded;
      SimulatedCost Cost = simulateCost(*Fns[I], Target, Out.Assignment);
      ++Succeeded;
      TotalSpills += Out.SpillInstructions;
      TotalEliminated += Out.eliminatedMoves();
      TotalCost += Cost;
      if (!Quiet)
        std::printf("%s: served-by=%s rounds=%u spilled=%u spill-insts=%u "
                    "eliminated=%u cost=%.0f\n",
                    Path,
                    Out.Degradation.ServedBy.empty()
                        ? AllocatorName.c_str()
                        : Out.Degradation.ServedBy.c_str(),
                    Out.Rounds, Out.SpilledRanges, Out.SpillInstructions,
                    Out.eliminatedMoves(), Cost.total());
    }
    std::printf("; batch: %u/%zu allocated (jobs=%u) spill-insts=%u "
                "eliminated=%u cost=%.0f\n",
                Succeeded, Paths.size(), Jobs, TotalSpills, TotalEliminated,
                TotalCost.total());
    if (!ManifestPath.empty()) {
      std::string ManifestError;
      if (!writeBatchManifest(ManifestPath, Manifest, &ManifestError)) {
        std::fprintf(stderr, "error: %s\n", ManifestError.c_str());
        return Obs.finish(1);
      }
    }
    (void)AnyFailed;
    (void)AnyDegraded;
    return Obs.finish(batchExitCode(Manifest));
  }

  if (EmitSample >= 0) {
    GeneratorParams P;
    P.Seed = static_cast<std::uint64_t>(EmitSample);
    P.Name = "sample" + std::to_string(EmitSample);
    P.CallPercent = 30;
    P.PairedLoadPercent = 15;
    P.NarrowLoadPercent = 10;
    P.FpPercent = 25;
    std::unique_ptr<Function> F = generateFunction(P, Target);
    std::fputs(printFunction(*F).c_str(), stdout);
    return 0;
  }

  std::string Text;
  if (InputPath.empty()) {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    Text = SS.str();
  } else {
    std::ifstream In(InputPath);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", InputPath.c_str());
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Text = SS.str();
  }

  std::string ParseError;
  std::unique_ptr<Function> F = parseFunction(Text, ParseError);
  if (!F) {
    std::fprintf(stderr, "error: %s\n", ParseError.c_str());
    return 1;
  }
  std::vector<std::string> VerifyErrors;
  if (!verifyFunction(*F, VerifyErrors)) {
    std::fprintf(stderr, "error: invalid IR: %s\n",
                 VerifyErrors.front().c_str());
    return 1;
  }

  std::unique_ptr<AllocatorBase> Allocator;
  try {
    ScopedErrorTrap Trap;
    Allocator = makeAllocatorByName(AllocatorName);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "error: %s\n", E.what());
    return 1;
  }

  DriverOptions Options;
  Options.Rematerialize = Remat;
  Options.TimeBudgetMs = TimeBudgetMs;
  if (MaxRounds != 0)
    Options.MaxRounds = MaxRounds;
  AllocationOutcome Out;
  if (NoFallback) {
    StatusOr<AllocationOutcome> Result =
        tryAllocate(*F, Target, *Allocator, Options);
    if (!Result.ok()) {
      std::fprintf(stderr, "error: %s\n", Result.status().toString().c_str());
      return 1;
    }
    Out = std::move(Result.value());
  } else {
    // The requested allocator leads the chain; Briggs and the
    // spill-everything baseline stand behind it, so the tool always emits
    // a checker-valid allocation.
    Options.FallbackChain = {
        {AllocatorName, [&] { return makeAllocatorByName(AllocatorName); }},
        {"briggs+aggressive", nullptr},
        {"spill-everything", nullptr}};
    StatusOr<AllocationOutcome> Result =
        allocateWithFallback(*F, Target, Options);
    if (!Result.ok()) {
      std::fprintf(stderr, "error: %s\n", Result.status().toString().c_str());
      return 1;
    }
    Out = std::move(Result.value());
    if (Out.Degradation.Degraded) {
      std::fprintf(stderr, "warning: '%s' failed; allocation served by "
                           "fallback tier %u ('%s')\n",
                   AllocatorName.c_str(), Out.Degradation.TierIndex,
                   Out.Degradation.ServedBy.c_str());
      for (const std::string &Failure : Out.Degradation.FailedTiers)
        std::fprintf(stderr, "warning:   failed tier: %s\n", Failure.c_str());
    }
  }
  SimulatedCost Cost = simulateCost(*F, Target, Out.Assignment);

  // When a fallback tier served the request, label the output with the
  // tier that actually produced the assignment, not the requested one.
  const std::string ServedBy = Out.Degradation.ServedBy.empty()
                                   ? std::string(Allocator->name())
                                   : Out.Degradation.ServedBy;

  if (!Quiet) {
    std::printf("; allocated with %s on %s (%u regs/class)\n",
                ServedBy.c_str(), Target.name().c_str(),
                Target.numRegs(RegClass::GPR));
    std::fputs(printFunction(*F).c_str(), stdout);
    std::printf("\n; assignment:\n");
    for (unsigned V = 0, E = F->numVRegs(); V != E; ++V)
      if (Out.Assignment[V] >= 0)
        std::printf(";   v%-4u -> %s\n", V,
                    Target.regName(static_cast<PhysReg>(Out.Assignment[V]))
                        .c_str());
  }
  std::printf(
      "; %s: rounds=%u spilled=%u spill-insts=%u moves=%u eliminated=%u "
      "cost=%.0f (ops=%.0f moves=%.0f spill=%.0f caller-save=%.0f "
      "callee-save=%.0f fixups=%.0f) pairs=%u/%u\n",
      ServedBy.c_str(), Out.Rounds, Out.SpilledRanges,
      Out.SpillInstructions, Out.OriginalMoves, Out.eliminatedMoves(),
      Cost.total(), Cost.OpCost, Cost.MoveCost, Cost.SpillCost,
      Cost.CallerSaveCost, Cost.CalleeSaveCost, Cost.NarrowFixupCost,
      Cost.FusedPairs, Cost.FusedPairs + Cost.MissedPairs);
  return Obs.finish(Out.Degradation.Degraded ? 2 : 0);
}
