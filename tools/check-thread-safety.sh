#!/bin/sh
# check-thread-safety.sh [clang++] [repo-root]
#
# Proves the clang thread-safety gate is live, in both directions:
#   1. the positive fixture (correct lock discipline) compiles clean, and
#   2. the negative fixture (three discipline violations) FAILS with
#      thread-safety diagnostics.
# A gate that cannot fail is no gate — (2) is what catches a macro
# regression that silently turns the annotations into no-ops.
#
# Exit: 0 ok, 1 gate broken, 77 skipped (no clang here; ctest marks the
# test SKIPPED via SKIP_RETURN_CODE, and CI's static-analysis job always
# has clang).

set -u

CXX="${1:-clang++}"
REPO="${2:-$(dirname "$0")/..}"

if ! command -v "$CXX" >/dev/null 2>&1; then
    echo "check-thread-safety: '$CXX' not found; skipping (GCC cannot run" \
         "the analysis — CI's static-analysis job covers it)"
    exit 77
fi

FLAGS="-std=c++20 -fsyntax-only -I$REPO/src \
       -Wthread-safety -Werror=thread-safety-analysis"

if ! "$CXX" $FLAGS "$REPO/tests/fixtures/thread_safety_positive.cpp"; then
    echo "check-thread-safety: FAIL: the positive fixture (correct lock" \
         "discipline) did not compile — see diagnostics above"
    exit 1
fi

ERRLOG="$(mktemp)"
trap 'rm -f "$ERRLOG"' EXIT
if "$CXX" $FLAGS "$REPO/tests/fixtures/thread_safety_negative.cpp" \
        2>"$ERRLOG"; then
    echo "check-thread-safety: FAIL: the negative fixture compiled — the" \
         "thread-safety gate is not rejecting violations"
    exit 1
fi
if ! grep -q "thread-safety" "$ERRLOG"; then
    echo "check-thread-safety: FAIL: the negative fixture failed for a" \
         "reason other than thread-safety analysis:"
    cat "$ERRLOG"
    exit 1
fi

echo "check-thread-safety: OK (positive clean, negative rejected)"
exit 0
