#!/usr/bin/env bash
# End-to-end smoke of the serving story (docs/SERVING.md): boot pdgc-serve
# on an ephemeral port, hammer it with pdgc-loadgen, then SIGTERM and hold
# the drain contract — summary line printed, exit 0, within budget.
#
# Knobs (environment):
#   BUILD_DIR      cmake build tree holding the tools        (default: build)
#   CORPUS         .ir directory the loadgen replays         (default: tests/corpus)
#   CONCURRENCY    concurrent loadgen clients                (default: 8)
#   REQUESTS       total requests                            (default: 200)
#   WORKERS        server worker threads                     (default: 4)
#   SERVE_FAULTS   PDGC_FAULTS spec armed in the server only (default: none)
#   LOADGEN_FLAGS  extra loadgen flags, e.g. --chaos         (default: none)
set -euo pipefail

BUILD_DIR=${BUILD_DIR:-build}
CORPUS=${CORPUS:-tests/corpus}
CONCURRENCY=${CONCURRENCY:-8}
REQUESTS=${REQUESTS:-200}
WORKERS=${WORKERS:-4}
SERVE_FAULTS=${SERVE_FAULTS:-}
LOADGEN_FLAGS=${LOADGEN_FLAGS:-}

LOG=$(mktemp)
cleanup() {
  status=$?
  if [ $status -ne 0 ]; then
    echo "--- pdgc-serve log ---"
    cat "$LOG"
  fi
  kill "${SERVE_PID:-0}" 2>/dev/null || true
  rm -f "$LOG"
  exit $status
}
trap cleanup EXIT

env ${SERVE_FAULTS:+PDGC_FAULTS="$SERVE_FAULTS"} \
  "$BUILD_DIR/tools/pdgc-serve" --port=0 --workers="$WORKERS" \
  >"$LOG" 2>&1 &
SERVE_PID=$!

PORT=""
for _ in $(seq 100); do
  PORT=$(sed -n 's/.*listening on port \([0-9][0-9]*\).*/\1/p' "$LOG")
  [ -n "$PORT" ] && break
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "FAIL: pdgc-serve died before binding" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "FAIL: pdgc-serve never reported its port" >&2
  exit 1
fi
echo "serve_smoke: server pid=$SERVE_PID port=$PORT faults='${SERVE_FAULTS}'"

# shellcheck disable=SC2086  # LOADGEN_FLAGS is intentionally word-split
SUMMARY=$("$BUILD_DIR/tools/pdgc-loadgen" --port="$PORT" \
  --concurrency="$CONCURRENCY" --requests="$REQUESTS" \
  --corpus-dir="$CORPUS" --seed=42 --quiet $LOADGEN_FLAGS)
echo "$SUMMARY"

echo "$SUMMARY" | grep -q 'p99-us=[0-9]' || {
  echo "FAIL: loadgen summary has no p99" >&2
  exit 1
}
case " $LOADGEN_FLAGS " in
*" --chaos "*) ;; # dropped connections are the point; skip the zero check
*)
  echo "$SUMMARY" | grep -q 'transport-errors=0 ' || {
    echo "FAIL: transport errors on a fault-free server" >&2
    exit 1
  }
  ;;
esac

if ! kill -0 "$SERVE_PID" 2>/dev/null; then
  echo "FAIL: server died under load" >&2
  exit 1
fi

kill -TERM "$SERVE_PID"
DRAIN_RC=0
wait "$SERVE_PID" || DRAIN_RC=$?
if [ "$DRAIN_RC" -ne 0 ]; then
  echo "FAIL: drain exited $DRAIN_RC (3 = drain budget overrun)" >&2
  exit 1
fi
grep -q 'drained within budget' "$LOG" || {
  echo "FAIL: no drain summary in server log" >&2
  exit 1
}
grep 'drained within budget' "$LOG"
echo "serve_smoke: OK"
