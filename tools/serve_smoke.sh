#!/usr/bin/env bash
# End-to-end smoke of the serving story (docs/SERVING.md): boot pdgc-serve
# on an ephemeral port, hammer it with pdgc-loadgen, scrape the HTTP
# observability plane on the same port (curl /healthz /readyz /metrics
# /requests, with the Prometheus exposition validated and counters checked
# monotone across two scrapes), then SIGTERM and hold the drain contract —
# summary line printed, exit 0, within budget, and the --trace-json
# capture carrying the per-request `req` correlation args.
#
# Knobs (environment):
#   BUILD_DIR      cmake build tree holding the tools        (default: build)
#   CORPUS         .ir directory the loadgen replays         (default: tests/corpus)
#   CONCURRENCY    concurrent loadgen clients                (default: 8)
#   REQUESTS       total requests                            (default: 200)
#   WORKERS        server worker threads                     (default: 4)
#   SERVE_FAULTS   PDGC_FAULTS spec armed in the server only (default: none)
#   LOADGEN_FLAGS  extra loadgen flags, e.g. --chaos         (default: none)
set -euo pipefail

BUILD_DIR=${BUILD_DIR:-build}
CORPUS=${CORPUS:-tests/corpus}
CONCURRENCY=${CONCURRENCY:-8}
REQUESTS=${REQUESTS:-200}
WORKERS=${WORKERS:-4}
SERVE_FAULTS=${SERVE_FAULTS:-}
LOADGEN_FLAGS=${LOADGEN_FLAGS:-}

LOG=$(mktemp)
SCRAPE1=$(mktemp)
SCRAPE2=$(mktemp)
BODY=$(mktemp)
TRACE=$(mktemp)
cleanup() {
  status=$?
  if [ $status -ne 0 ]; then
    echo "--- pdgc-serve log ---"
    cat "$LOG"
  fi
  kill "${SERVE_PID:-0}" 2>/dev/null || true
  rm -f "$LOG" "$SCRAPE1" "$SCRAPE2" "$BODY" "$TRACE"
  exit $status
}
trap cleanup EXIT

env ${SERVE_FAULTS:+PDGC_FAULTS="$SERVE_FAULTS"} \
  "$BUILD_DIR/tools/pdgc-serve" --port=0 --workers="$WORKERS" \
  --trace-json="$TRACE" \
  >"$LOG" 2>&1 &
SERVE_PID=$!

PORT=""
for _ in $(seq 100); do
  PORT=$(sed -n 's/.*listening on port \([0-9][0-9]*\).*/\1/p' "$LOG")
  [ -n "$PORT" ] && break
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "FAIL: pdgc-serve died before binding" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "FAIL: pdgc-serve never reported its port" >&2
  exit 1
fi
echo "serve_smoke: server pid=$SERVE_PID port=$PORT faults='${SERVE_FAULTS}'"

# shellcheck disable=SC2086  # LOADGEN_FLAGS is intentionally word-split
SUMMARY=$("$BUILD_DIR/tools/pdgc-loadgen" --port="$PORT" \
  --concurrency="$CONCURRENCY" --requests="$REQUESTS" \
  --corpus-dir="$CORPUS" --seed=42 --quiet $LOADGEN_FLAGS)
echo "$SUMMARY"

echo "$SUMMARY" | grep -q 'p99-us=[0-9]' || {
  echo "FAIL: loadgen summary has no p99" >&2
  exit 1
}
case " $LOADGEN_FLAGS " in
*" --chaos "*) ;; # dropped connections are the point; skip the zero check
*)
  echo "$SUMMARY" | grep -q 'transport-errors=0 ' || {
    echo "FAIL: transport errors on a fault-free server" >&2
    exit 1
  }
  ;;
esac

if ! kill -0 "$SERVE_PID" 2>/dev/null; then
  echo "FAIL: server died under load" >&2
  exit 1
fi

# --- HTTP observability plane, on the same port (docs/OBSERVABILITY.md).
# Under SERVE_FAULTS a server.* plan also arms the server.http.* sites, so
# individual scrapes may be refused or dropped by design; the plane's
# contract is that a retry is always served.
http_get() { # $1 = path, $2 = output file
  for _ in $(seq 20); do
    if curl -fsS --max-time 5 "http://127.0.0.1:$PORT$1" -o "$2"; then
      return 0
    fi
    sleep 0.1
  done
  echo "FAIL: GET $1 never answered" >&2
  return 1
}

http_get /healthz "$BODY"
grep -qx 'ok' "$BODY" || { echo "FAIL: /healthz said: $(cat "$BODY")" >&2; exit 1; }
http_get /readyz "$BODY"
grep -qx 'ready' "$BODY" || { echo "FAIL: /readyz said: $(cat "$BODY")" >&2; exit 1; }

http_get /metrics "$SCRAPE1"
http_get '/requests?n=16' "$BODY"
python3 - "$BODY" <<'EOF'
import json, sys
flight = json.load(open(sys.argv[1]))
assert flight["recorded"] > 0, flight
assert flight["requests"], "flight recorder is empty after a load run"
row = flight["requests"][0]
for key in ("id", "kind", "peer", "target", "status", "wall-us"):
    assert key in row, row
print("serve_smoke: flight recorder holds", len(flight["requests"]),
      "of", flight["recorded"], "recorded requests")
EOF
http_get /metrics "$SCRAPE2"
python3 tools/check_metrics.py "$SCRAPE1" "$SCRAPE2"

kill -TERM "$SERVE_PID"
DRAIN_RC=0
wait "$SERVE_PID" || DRAIN_RC=$?
if [ "$DRAIN_RC" -ne 0 ]; then
  echo "FAIL: drain exited $DRAIN_RC (3 = drain budget overrun)" >&2
  exit 1
fi
grep -q 'drained within budget' "$LOG" || {
  echo "FAIL: no drain summary in server log" >&2
  exit 1
}
grep 'drained within budget' "$LOG"

# The drain summary prints the flight recorder's last-requests table.
grep -q 'last requests (newest first)' "$LOG" || {
  echo "FAIL: no flight-recorder table in drain output" >&2
  exit 1
}

# The --trace-json capture must carry the request correlation: alloc spans
# tagged with the same `req` ids the flight recorder reported.
python3 - "$TRACE" <<'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
assert events, "empty trace"
tagged = [e for e in events if "req" in e.get("args", {})]
assert tagged, "no trace event carries a req arg"
ids = {e["args"]["req"] for e in tagged}
print(f"serve_smoke: {len(tagged)} trace events correlated across "
      f"{len(ids)} request ids")
EOF
echo "serve_smoke: OK"
