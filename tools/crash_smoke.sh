#!/usr/bin/env bash
# End-to-end smoke of crash containment (docs/ROBUSTNESS.md, "Crash
# containment"): boot pdgc-serve with --isolate-workers and a real-abort
# fault armed (worker.abort raises an actual SIGABRT inside sandbox
# children), drive it with pdgc-loadgen --expect-crashes, and hold the
# containment contract — the daemon survives every crash, answers typed
# CRASHED for the struck requests and OK for the rest, respawns its
# workers (visible in /metrics), writes crash dossiers, and drains
# cleanly. Finally, round-trip one dossier through
# `pdgc-fuzz --reduce-file` with the in-process replay plan armed.
#
# Knobs (environment):
#   BUILD_DIR      cmake build tree holding the tools   (default: build)
#   CONCURRENCY    concurrent loadgen clients           (default: 8)
#   REQUESTS       total requests                       (default: 200)
#   ISOLATE        sandbox worker processes             (default: 2)
#   CRASH_EVERY    every Nth request per child aborts   (default: 7)
set -euo pipefail

BUILD_DIR=${BUILD_DIR:-build}
CONCURRENCY=${CONCURRENCY:-8}
REQUESTS=${REQUESTS:-200}
ISOLATE=${ISOLATE:-2}
CRASH_EVERY=${CRASH_EVERY:-7}

LOG=$(mktemp)
SCRAPE=$(mktemp)
CRASH_DIR=$(mktemp -d)
cleanup() {
  status=$?
  if [ $status -ne 0 ]; then
    echo "--- pdgc-serve log ---"
    cat "$LOG"
  fi
  kill "${SERVE_PID:-0}" 2>/dev/null || true
  rm -rf "$LOG" "$SCRAPE" "$CRASH_DIR"
  exit $status
}
trap cleanup EXIT

# Quarantine is effectively off (the loadgen round-robins 8 bodies, so a
# repeat-crasher breaker would starve the run); the breaker has its own
# unit and e2e coverage in tests/test_worker.cpp.
PDGC_FAULTS="worker.abort:fatal@every=$CRASH_EVERY" \
  "$BUILD_DIR/tools/pdgc-serve" --port=0 --isolate-workers="$ISOLATE" \
  --crash-dir="$CRASH_DIR" --quarantine-crashes=1000 \
  >"$LOG" 2>&1 &
SERVE_PID=$!

PORT=""
for _ in $(seq 100); do
  PORT=$(sed -n 's/.*listening on port \([0-9][0-9]*\).*/\1/p' "$LOG")
  [ -n "$PORT" ] && break
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "FAIL: pdgc-serve died before binding" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "FAIL: pdgc-serve never reported its port" >&2
  exit 1
fi
grep -q "isolating allocations in $ISOLATE worker" "$LOG" || {
  echo "FAIL: no isolation banner in server log" >&2
  exit 1
}
echo "crash_smoke: server pid=$SERVE_PID port=$PORT isolate=$ISOLATE" \
  "abort-every=$CRASH_EVERY"

# Generated bodies (no corpus): every request is valid IR, so every
# dossier body is replayable by the reduction step below. --expect-crashes
# makes the exit code assert both directions: CRASHED responses arrived,
# and nothing else went wrong (transport errors still fail the run).
SUMMARY=$("$BUILD_DIR/tools/pdgc-loadgen" --port="$PORT" \
  --concurrency="$CONCURRENCY" --requests="$REQUESTS" \
  --seed=42 --retries=12 --expect-crashes --quiet)
echo "$SUMMARY"

if ! kill -0 "$SERVE_PID" 2>/dev/null; then
  echo "FAIL: server died under crash load — containment failed" >&2
  exit 1
fi

# Every request that was not struck by the fault must have been served:
# no internal errors, no timeouts, no transport errors, and a healthy
# majority of OK answers.
python3 - "$SUMMARY" <<'EOF'
import sys
fields = dict(kv.split("=") for kv in sys.argv[1].split()[1:])
sent, ok, crashed = int(fields["sent"]), int(fields["ok"]), int(fields["crashed"])
assert crashed > 0, "no CRASHED responses despite the armed abort plan"
assert ok > 0, "no OK responses — the pool never recovered"
assert int(fields["internal"]) == 0, f"internal errors: {fields['internal']}"
assert int(fields["timeout"]) == 0, f"timeouts: {fields['timeout']}"
assert int(fields["transport-errors"]) == 0, "transport errors leaked through"
assert ok + crashed + int(fields["degraded"]) == sent, fields
print(f"crash_smoke: {sent} sent = {ok} ok + {crashed} crashed "
      f"(+{fields['degraded']} degraded), zero collateral failures")
EOF

# /metrics on the surviving daemon: crashes and respawns both moved, and
# the isolation gauges are exposed.
for _ in $(seq 20); do
  if curl -fsS --max-time 5 "http://127.0.0.1:$PORT/metrics" -o "$SCRAPE"; then
    break
  fi
  sleep 0.1
done
python3 - "$SCRAPE" <<'EOF'
import sys
stats = {}
for line in open(sys.argv[1]):
    if line.startswith("#") or not line.strip():
        continue
    name, _, value = line.rpartition(" ")
    stats[name] = float(value)
crashes = stats.get('pdgc_stat_total{stat="worker.crashes"}', 0)
respawns = stats.get('pdgc_stat_total{stat="worker.respawns"}', 0)
assert crashes > 0, "worker.crashes never moved"
assert respawns > 0, "worker.respawns never moved"
assert "pdgc_server_workers_live" in stats, "no workers_live gauge"
print(f"crash_smoke: /metrics shows crashes={crashes:.0f} "
      f"respawns={respawns:.0f} live={stats['pdgc_server_workers_live']:.0f}")
EOF

# Dossiers: one .pir per crash, replayable offline. Round-trip the first
# through the reducer with the in-process replay plan armed (the child
# died of a real SIGABRT; in-process the equivalent total failure is
# every fallback tier dying, which reproduces as a pipeline finding).
DOSSIER=$(ls "$CRASH_DIR"/crash-*.pir 2>/dev/null | head -1 || true)
if [ -z "$DOSSIER" ]; then
  echo "FAIL: no crash dossier written under --crash-dir" >&2
  exit 1
fi
grep -q '; wait-status: signal 6 (SIGABRT)' "$DOSSIER" || {
  echo "FAIL: dossier does not record the SIGABRT wait status" >&2
  exit 1
}
PDGC_FAULTS='fallback.tier:fatal@every=1' \
  "$BUILD_DIR/tools/pdgc-fuzz" --reduce-file="$DOSSIER"
[ -s "$DOSSIER.reduced" ] || {
  echo "FAIL: reduction produced no output file" >&2
  exit 1
}
echo "crash_smoke: dossier $(basename "$DOSSIER") reduced to" \
  "$(wc -l <"$DOSSIER.reduced") lines"

kill -TERM "$SERVE_PID"
DRAIN_RC=0
wait "$SERVE_PID" || DRAIN_RC=$?
if [ "$DRAIN_RC" -ne 0 ]; then
  echo "FAIL: drain exited $DRAIN_RC (3 = drain budget overrun)" >&2
  exit 1
fi
grep -q 'drained within budget' "$LOG" || {
  echo "FAIL: no drain summary in server log" >&2
  exit 1
}
grep -q 'pdgc-serve: workers: spawns=' "$LOG" || {
  echo "FAIL: no worker summary line in drain output" >&2
  exit 1
}
grep 'pdgc-serve: workers:' "$LOG"
echo "crash_smoke: OK"
