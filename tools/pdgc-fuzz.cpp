//===- tools/pdgc-fuzz.cpp - Differential allocation fuzzer -------------------===//
//
// Part of the PDGC project.
//
// Differential fuzzing of the whole allocation pipeline, in the spirit of
// randomized CSP-instance stress testing: seeded random IR generation
// (reusing workloads/Generator) plus structural mutation of the textual
// form, run through every registered allocator, with three oracles:
//
//   1. the independent AssignmentChecker must accept every produced
//      assignment (the driver runs it on every tier);
//   2. observable behaviour must not change: the reference interpreter's
//      (return value, store digest) of the allocated function must equal
//      the virtual-register execution of the original;
//   3. the cost simulator must run and produce finite, non-negative costs.
//
// Mutated inputs that no longer parse or verify must be *rejected* (error
// string, nonzero status) — any crash or abort is a finding. A SIGALRM
// guard bounds each case; the case being executed is written to the corpus
// directory beforehand, so a hang or crash leaves the reproducer behind.
// Failures are greedily reduced (line removal) and persisted under the
// corpus directory, which the test suite replays via test_corpus_replay.
//
//   pdgc-fuzz [--runs=N] [--seed=S] [--corpus-dir=PATH] [--timeout=SECS]
//             [--mutate-percent=P] [--kill-tier=NAME] [--max-save=N]
//             [--jobs=N] [--quiet] [--stats] [--chaos]
//             [--reduce-file=F.pir]
//
// --reduce-file runs the greedy line-removal reduction on one saved
// reproducer instead of fuzzing — typically a crash dossier written by
// `pdgc-serve --crash-dir` (docs/ROBUSTNESS.md "Crash dossiers"). The
// dossier's `; fault-plan:` header names the PDGC_FAULTS spec that killed
// the worker; export it before reducing and the crash reproduces
// in-process as a pipeline finding, which becomes the reduction
// predicate. The reduced input is written to F.pir.reduced.
//
// --chaos switches to fault-injection sweeping instead of random-input
// fuzzing: the corpus (plus a seeded generated supplement) is replayed
// through the batch pipeline while every registered fault site
// (support/FaultInjection.h) is triggered in turn — fatal, status, and
// delay actions, then whole-pipeline probability plans — asserting the
// three hard invariants on every item: the process never aborts, a total
// failure leaves the input byte-identical, and any success passes the
// independent AssignmentChecker. Each sweep's fault plan is printed in
// PDGC_FAULTS syntax, so any finding reproduces outside the fuzzer (see
// docs/ROBUSTNESS.md).
//
// --stats appends the allocator-wide "; stat" counter block to stdout.
// Counters are sums of relaxed atomic increments, so for a fixed seed and
// run count the allocator/driver/analysis counters fold to the same
// values at every --jobs value; only the "threadpool" group differs, since
// the sequential mode never touches the pool.
//
// --jobs=N (N > 1) runs cases on a worker pool in deterministic chunks:
// inputs are pre-generated sequentially (same rng stream as --jobs=1, so a
// seed reproduces the same corpus at any job count), workers run the
// case pipeline, and findings are reduced and saved in case order. The
// SIGALRM guard is per-process (siglongjmp is not thread-safe), so
// parallel mode bounds runaway cases with the driver's wall-clock budget
// instead of --timeout; write-ahead reproducers are inflight-<case>.ir.
//
// Exits 0 when no findings, 1 on findings, 2 on bad usage.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "core/PDGCRegistration.h"
#include "ir/Clone.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "regalloc/AllocatorRegistry.h"
#include "regalloc/AssignmentChecker.h"
#include "regalloc/BatchDriver.h"
#include "regalloc/Driver.h"
#include "sim/CostSimulator.h"
#include "sim/Interpreter.h"
#include "support/FaultInjection.h"
#include "support/Rng.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "workloads/Generator.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <csetjmp>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

using namespace pdgc;

namespace {

sigjmp_buf TimeoutJmp;
volatile sig_atomic_t TimedOut = 0;

void onAlarm(int) {
  TimedOut = 1;
  siglongjmp(TimeoutJmp, 1);
}

struct FuzzConfig {
  unsigned long Runs = 1000;
  std::uint64_t Seed = 1;
  std::string CorpusDir = "tests/corpus";
  unsigned TimeoutSecs = 20;
  unsigned MutatePercent = 30;
  std::string KillTier;
  unsigned long MaxSave = 16;
  unsigned Jobs = 1;
  std::string ReduceFile;
  bool Quiet = false;
  bool PrintStats = false;
  bool Chaos = false;
};

struct FuzzStats {
  unsigned long Cases = 0;
  unsigned long ParseRejects = 0;
  unsigned long VerifyRejects = 0;
  unsigned long Allocations = 0;
  unsigned long Degradations = 0;
  unsigned long BudgetStops = 0;
  unsigned long TierFailures = 0;
  unsigned long Failures = 0;
  unsigned long Timeouts = 0;

  FuzzStats &operator+=(const FuzzStats &O) {
    Cases += O.Cases;
    ParseRejects += O.ParseRejects;
    VerifyRejects += O.VerifyRejects;
    Allocations += O.Allocations;
    Degradations += O.Degradations;
    BudgetStops += O.BudgetStops;
    TierFailures += O.TierFailures;
    Failures += O.Failures;
    Timeouts += O.Timeouts;
    return *this;
  }
};

/// One detected finding, before reduction.
struct Finding {
  std::string Kind;      ///< "checker-mismatch", "behavior-divergence", ...
  std::string Allocator; ///< Allocator (or "pipeline") that produced it.
  std::string Detail;
};

bool parseNumeric(const std::string &Value, unsigned long Max,
                  unsigned long &Out) {
  if (Value.empty() || Value.size() > 10)
    return false;
  unsigned long V = 0;
  for (char C : Value) {
    if (!std::isdigit(static_cast<unsigned char>(C)))
      return false;
    V = V * 10 + static_cast<unsigned long>(C - '0');
  }
  if (V > Max)
    return false;
  Out = V;
  return true;
}

void usage() {
  std::fprintf(stderr,
               "usage: pdgc-fuzz [--runs=N] [--seed=S] [--corpus-dir=PATH] "
               "[--timeout=SECS]\n"
               "                 [--mutate-percent=P] [--kill-tier=NAME] "
               "[--max-save=N]\n"
               "                 [--jobs=N] [--quiet] [--stats] [--chaos]\n"
               "                 [--reduce-file=F.pir]\n");
}

/// Random generator parameters: spans tiny straight-line functions up to
/// deep loop nests under heavy pressure.
GeneratorParams randomParams(Rng &R, std::uint64_t CaseSeed,
                             const TargetDesc &Target) {
  GeneratorParams P;
  P.Seed = CaseSeed;
  P.Name = "fuzz" + std::to_string(CaseSeed);
  unsigned MaxParams = Target.maxParamRegs() < 4 ? Target.maxParamRegs() : 4;
  P.NumParams = static_cast<unsigned>(R.nextBelow(MaxParams + 1));
  P.FragmentBudget = 2 + static_cast<unsigned>(R.nextBelow(36));
  P.OpsPerFragment = 1 + static_cast<unsigned>(R.nextBelow(7));
  P.LoopPercent = static_cast<unsigned>(R.nextBelow(60));
  P.MaxLoopDepth = 1 + static_cast<unsigned>(R.nextBelow(3));
  P.BranchPercent = static_cast<unsigned>(R.nextBelow(60));
  P.CallPercent = static_cast<unsigned>(R.nextBelow(50));
  P.CopyPercent = static_cast<unsigned>(R.nextBelow(60));
  P.PairedLoadPercent = static_cast<unsigned>(R.nextBelow(40));
  P.NarrowLoadPercent = static_cast<unsigned>(R.nextBelow(30));
  P.StorePercent = static_cast<unsigned>(R.nextBelow(40));
  P.FpPercent = static_cast<unsigned>(R.nextBelow(50));
  P.Accumulators = static_cast<unsigned>(R.nextBelow(4));
  P.PressureValues = static_cast<unsigned>(R.nextBelow(12));
  return P;
}

/// Structural text mutation: line-level edits plus token/byte noise. The
/// result frequently fails to parse or verify — exactly the point.
std::string mutateText(const std::string &Text, Rng &R) {
  std::vector<std::string> Lines;
  {
    std::istringstream In(Text);
    std::string Line;
    while (std::getline(In, Line))
      Lines.push_back(Line);
  }
  unsigned Edits = 1 + static_cast<unsigned>(R.nextBelow(4));
  for (unsigned I = 0; I != Edits && !Lines.empty(); ++I) {
    switch (R.nextBelow(6)) {
    case 0: // Delete a random line.
      Lines.erase(Lines.begin() +
                  static_cast<long>(R.nextBelow(Lines.size())));
      break;
    case 1: { // Duplicate a random line.
      size_t At = R.nextBelow(Lines.size());
      Lines.insert(Lines.begin() + static_cast<long>(At), Lines[At]);
      break;
    }
    case 2: { // Swap two lines.
      size_t A = R.nextBelow(Lines.size());
      size_t B = R.nextBelow(Lines.size());
      std::swap(Lines[A], Lines[B]);
      break;
    }
    case 3: // Truncate the function.
      Lines.resize(1 + R.nextBelow(Lines.size()));
      break;
    case 4: { // Perturb one character.
      std::string &L = Lines[R.nextBelow(Lines.size())];
      if (!L.empty()) {
        static const char Alphabet[] = "v0123456789frb@(),;:= ";
        L[R.nextBelow(L.size())] =
            Alphabet[R.nextBelow(sizeof(Alphabet) - 1)];
      }
      break;
    }
    case 5: { // Blow up a number token (id/immediate out-of-range probes).
      std::string &L = Lines[R.nextBelow(Lines.size())];
      size_t Digit = L.find_first_of("0123456789");
      if (Digit != std::string::npos)
        L.insert(Digit, std::to_string(R.next()));
      break;
    }
    }
  }
  std::string Out;
  for (const std::string &L : Lines)
    Out += L + "\n";
  return Out;
}

std::vector<std::int64_t> interpreterArgs(const Function &F) {
  std::vector<std::int64_t> Args;
  for (unsigned I = 0, E = F.numParams(); I != E; ++I)
    Args.push_back(static_cast<std::int64_t>(I) * 7 + 3);
  return Args;
}

/// Runs one allocator over a clone of \p F and applies the oracles.
/// Returns a finding kind ("" = clean). Structured failures are not
/// findings on their own — BudgetExceeded and AllocatorInternal are
/// honest capitulations the fallback chain exists to absorb (the chain is
/// probed separately per case, and losing every tier IS a finding); they
/// are reported back through \p BudgetStop / \p TierFailed for the stats.
/// CheckerMismatch stays a finding: the allocator produced a *wrong*
/// assignment on verified input, which is an allocator bug regardless of
/// the checker netting it.
std::string runOneAllocator(const Function &F, const TargetDesc &Target,
                            const std::string &Name,
                            const ExecutionResult &Reference,
                            bool &BudgetStop, bool &TierFailed) {
  std::unique_ptr<AllocatorBase> Allocator = createRegisteredAllocator(Name);
  if (!Allocator)
    return "unregistered-allocator";

  std::unique_ptr<Function> Work = cloneFunction(F);
  DriverOptions Options;
  Options.MaxRounds = 64;
  Options.TimeBudgetMs = 10000;
  StatusOr<AllocationOutcome> Result =
      tryAllocate(*Work, Target, *Allocator, Options);
  if (!Result.ok()) {
    if (Result.code() == ErrorCode::BudgetExceeded) {
      BudgetStop = true;
      return "";
    }
    if (Result.code() == ErrorCode::AllocatorInternal) {
      TierFailed = true;
      return "";
    }
    // A mutant can carry pins that verify structurally but lie outside
    // this target's register file; the driver rejects those up front.
    if (Result.code() == ErrorCode::VerifyError)
      return "";
    return Result.code() == ErrorCode::CheckerMismatch ? "checker-mismatch"
                                                       : "allocator-internal";
  }

  // Oracle 2: observable behaviour is preserved by allocation.
  ExecutionResult Allocated =
      runAllocated(*Work, Target, Result->Assignment, interpreterArgs(F));
  if (Reference.Completed && !(Allocated == Reference))
    return "behavior-divergence";

  // Oracle 3: the cost model accepts the result.
  SimulatedCost Cost = simulateCost(*Work, Target, Result->Assignment);
  if (!std::isfinite(Cost.total()) || Cost.total() < 0)
    return "cost-model-anomaly";
  return "";
}

/// Runs the full per-case pipeline over IR text. Findings are appended;
/// returns false when the text was (acceptably) rejected by parser or
/// verifier. \p ChainBudgetMs bounds each fallback-chain tier's wall
/// clock (0 = unlimited); parallel mode uses it in place of the
/// process-wide SIGALRM guard.
bool runCase(const std::string &Text, const TargetDesc &Target,
             const std::vector<std::string> &Allocators,
             const std::string &KillTier, FuzzStats &Stats,
             std::vector<Finding> &Findings, unsigned ChainBudgetMs = 0) {
  std::string ParseError;
  std::unique_ptr<Function> F = parseFunction(Text, ParseError);
  if (!F) {
    ++Stats.ParseRejects;
    return false;
  }
  std::vector<std::string> VerifyErrors;
  bool Verified = false;
  try {
    ScopedErrorTrap Trap;
    Verified = verifyFunction(*F, VerifyErrors);
  } catch (const std::exception &) {
    Verified = false;
  }
  if (!Verified) {
    ++Stats.VerifyRejects;
    // The hardened pipeline must reject it too, not crash.
    DriverOptions Options;
    std::unique_ptr<Function> Copy = cloneFunction(*F);
    StatusOr<AllocationOutcome> Result =
        allocateWithFallback(*Copy, Target, Options);
    if (Result.ok() || Result.code() != ErrorCode::VerifyError)
      Findings.push_back({"verify-escape", "pipeline",
                          "unverifiable function was not rejected with "
                          "VERIFY_ERROR"});
    return false;
  }

  ExecutionResult Reference = runVirtual(*F, interpreterArgs(*F));

  for (const std::string &Name : Allocators) {
    bool BudgetStop = false, TierFailed = false;
    std::string Kind = runOneAllocator(*F, Target, Name, Reference,
                                       BudgetStop, TierFailed);
    ++Stats.Allocations;
    if (BudgetStop)
      ++Stats.BudgetStops;
    if (TierFailed)
      ++Stats.TierFailures;
    if (!Kind.empty())
      Findings.push_back({Kind, Name, "allocator " + Name + " on " +
                                          Target.name()});
  }

  // Exercise the fallback chain end to end, optionally killing a tier via
  // the injection hook: the pipeline must still serve a checker-valid
  // assignment.
  DriverOptions ChainOptions;
  ChainOptions.TimeBudgetMs = ChainBudgetMs;
  if (!KillTier.empty())
    ChainOptions.FailTierHook = [&](const std::string &Tier) {
      return Tier == KillTier;
    };
  std::unique_ptr<Function> ChainF = cloneFunction(*F);
  StatusOr<AllocationOutcome> ChainResult =
      allocateWithFallback(*ChainF, Target, ChainOptions);
  if (!ChainResult.ok()) {
    if (ChainResult.code() == ErrorCode::VerifyError)
      ++Stats.VerifyRejects; // target-incompatible pins, rejected cleanly
    else
      Findings.push_back({"fallback-exhausted", "pipeline",
                          ChainResult.status().toString()});
  }
  else if (ChainResult->Degradation.Degraded && KillTier.empty())
    ++Stats.Degradations;
  return true;
}

/// Greedy line-removal reduction: keeps removing lines while the failure
/// (same finding kind) reproduces. The predicate re-runs the full case.
std::string reduceCase(const std::string &Text, const TargetDesc &Target,
                       const std::vector<std::string> &Allocators,
                       const std::string &KillTier,
                       const std::string &Kind) {
  auto Reproduces = [&](const std::string &Candidate) {
    // An armed PDGC_FAULTS plan (--reduce-file on a crash dossier) must
    // fire identically for every candidate, so per-site hit counters
    // restart per run; no-op when no plan is armed.
    fault::resetSiteCounters();
    FuzzStats ScratchStats;
    std::vector<Finding> ScratchFindings;
    runCase(Candidate, Target, Allocators, KillTier, ScratchStats,
            ScratchFindings);
    for (const Finding &F : ScratchFindings)
      if (F.Kind == Kind)
        return true;
    return false;
  };

  std::vector<std::string> Lines;
  {
    std::istringstream In(Text);
    std::string Line;
    while (std::getline(In, Line))
      Lines.push_back(Line);
  }
  bool Shrunk = true;
  while (Shrunk && Lines.size() > 1) {
    Shrunk = false;
    for (size_t I = 0; I < Lines.size(); ++I) {
      std::vector<std::string> Candidate = Lines;
      Candidate.erase(Candidate.begin() + static_cast<long>(I));
      std::string Joined;
      for (const std::string &L : Candidate)
        Joined += L + "\n";
      if (Reproduces(Joined)) {
        Lines = std::move(Candidate);
        Shrunk = true;
        break;
      }
    }
  }
  std::string Out;
  for (const std::string &L : Lines)
    Out += L + "\n";
  return Out;
}

/// --reduce-file: greedy line-removal reduction of one saved reproducer,
/// typically a crash dossier written by `pdgc-serve --crash-dir`. The
/// dossier's `; regs:` header reconstructs the serving target; the crash
/// predicate is the normal case pipeline with the PDGC_FAULTS plan from
/// the environment re-armed per candidate (the dossier's `; fault-plan:`
/// header records the spec that killed the worker, and in-process a
/// fatal fault surfaces as a fallback-exhausted finding). Writes the
/// reduced input next to the original as `<file>.reduced`. Exit 0 on a
/// successful reduction, 1 when the input does not reproduce, 2 on I/O.
int runReduceFile(const FuzzConfig &Config) {
  registerPDGCAllocators();
  const std::vector<std::string> Allocators = registeredAllocatorNames();

  std::ifstream In(Config.ReduceFile);
  if (!In) {
    std::fprintf(stderr, "error: cannot read '%s'\n",
                 Config.ReduceFile.c_str());
    return 2;
  }
  std::string Text;
  {
    std::ostringstream SS;
    SS << In.rdbuf();
    Text = SS.str();
  }

  {
    std::string FaultError;
    if (!fault::installPlanFromEnv(&FaultError)) {
      std::fprintf(stderr, "error: PDGC_FAULTS: %s\n", FaultError.c_str());
      return 2;
    }
  }

  // Dossiers record the serving target's register count; default to the
  // server's default when the header is absent (hand-written inputs).
  unsigned Regs = 24;
  {
    std::istringstream Lines(Text);
    std::string Line;
    while (std::getline(Lines, Line)) {
      const std::string Prefix = "; regs: ";
      if (Line.rfind(Prefix, 0) == 0) {
        unsigned long V = 0;
        if (parseNumeric(Line.substr(Prefix.size()), 4096, V) && V >= 2)
          Regs = static_cast<unsigned>(V);
        break;
      }
      if (Line.rfind(";", 0) != 0)
        break; // headers stop at the first non-comment line
    }
  }
  const TargetDesc Target = makeTarget(Regs, PairingRule::Adjacent);

  FuzzStats Stats;
  std::vector<Finding> Findings;
  fault::resetSiteCounters();
  runCase(Text, Target, Allocators, Config.KillTier, Stats, Findings);
  if (Findings.empty()) {
    std::fprintf(stderr,
                 "pdgc-fuzz: '%s' does not reproduce a finding (export the "
                 "dossier's fault-plan header via PDGC_FAULTS first?)\n",
                 Config.ReduceFile.c_str());
    return 1;
  }
  const std::string Kind = Findings.front().Kind;

  auto countLines = [](const std::string &S) {
    unsigned long N = 0;
    for (char C : S)
      N += C == '\n';
    return N;
  };
  const std::string Reduced =
      reduceCase(Text, Target, Allocators, Config.KillTier, Kind);

  const std::string OutPath = Config.ReduceFile + ".reduced";
  std::ofstream Out(OutPath);
  Out << Reduced;
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath.c_str());
    return 2;
  }
  std::printf("pdgc-fuzz: reduced '%s' (%s, %lu -> %lu lines) -> '%s'\n",
              Config.ReduceFile.c_str(), Kind.c_str(), countLines(Text),
              countLines(Reduced), OutPath.c_str());
  return 0;
}

/// Runs \p Body under a SIGALRM guard; returns false when the alarm fired.
/// Keeping the sigsetjmp frame out of main() avoids -Wclobbered on loop
/// state. The longjmp skips destructors of whatever Body had live — fine
/// for a fuzzer's timeout path, where the case is abandoned anyway.
template <typename Fn> bool withAlarmGuard(unsigned Secs, Fn &&Body) {
  if (sigsetjmp(TimeoutJmp, 1) == 0) {
    alarm(Secs);
    Body();
    alarm(0);
    return true;
  }
  alarm(0);
  return false;
}

void saveCorpusFile(const std::string &Dir, const std::string &FileName,
                    const std::string &Header, const std::string &Text) {
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  std::ofstream Out(Dir + "/" + FileName);
  Out << "; " << Header << "\n" << Text;
}

/// One fully generated fuzz input, ready to run.
struct CaseInput {
  unsigned long Index;
  TargetDesc Target;
  std::string Text;
  std::string Header;
};

/// Draws the next case from \p Root. Consumes exactly one Root value per
/// case, so the generated corpus for a seed is identical at every job
/// count.
CaseInput makeCase(unsigned long Case, Rng &Root, const FuzzConfig &Config) {
  static const unsigned RegChoices[] = {6, 8, 16, 24, 32};
  std::uint64_t CaseSeed = Root.next();
  Rng R(CaseSeed);
  CaseInput In{Case,
               makeTarget(RegChoices[R.nextBelow(sizeof(RegChoices) /
                                                 sizeof(RegChoices[0]))],
                          R.roll(50) ? PairingRule::Adjacent
                                     : PairingRule::OddEven),
               "", ""};
  {
    GeneratorParams P = randomParams(R, CaseSeed, In.Target);
    std::unique_ptr<Function> F = generateFunction(P, In.Target);
    In.Text = printFunction(*F);
  }
  bool Mutated = R.roll(Config.MutatePercent);
  if (Mutated)
    In.Text = mutateText(In.Text, R);
  In.Header = "pdgc-fuzz case seed=" + std::to_string(Config.Seed) +
              " case=" + std::to_string(Case) + " target=" +
              In.Target.name() + (Mutated ? " mutated" : "");
  return In;
}

//===----------------------------------------------------------------------===//
// Chaos mode: fault-plan sweeping over a fixed probe set
//===----------------------------------------------------------------------===//

/// One chaos probe: a parsed master function and its pristine printed form
/// (the byte-identity baseline for the untouched-on-total-failure check).
struct ChaosProbe {
  std::string Name;
  std::unique_ptr<Function> Master;
  std::string Pristine;
};

/// One broken chaos invariant. Plan is the PDGC_FAULTS spec that was
/// installed, so the finding reproduces outside the fuzzer.
struct ChaosViolation {
  std::string Plan;
  std::string Input;
  std::string Detail;
};

/// Runs the chaos sweeps; returns the process exit code. The sweep space
/// is deterministic for a seed: the probe set, the site list (discovered
/// by a fault-free pass), the per-site plans, and the probability plans
/// are all derived from --seed and the corpus directory contents.
int runChaos(const FuzzConfig &Config) {
  if (!fault::compiledIn()) {
    std::fprintf(stderr,
                 "error: --chaos requires fault injection, but this binary "
                 "was built with -DPDGC_DISABLE_FAULTS=ON\n");
    return 2;
  }
  registerPDGCAllocators();

  // A scarce register file pushes probes through the spill rounds and
  // fallback tiers that most fault sites guard.
  const TargetDesc Target = makeTarget(8, PairingRule::Adjacent);

  // Probe set: parseable corpus files (reproducers and write-ahead
  // leftovers excluded) plus a seeded generated supplement. Unverifiable
  // corpus files stay in — their clean rejection under faults is a path
  // worth sweeping. Mutants are not generated: they rarely get past the
  // verifier, and chaos wants deep pipelines, not parser probes.
  std::vector<ChaosProbe> Probes;
  {
    std::vector<std::string> Paths;
    std::error_code EC;
    if (std::filesystem::is_directory(Config.CorpusDir, EC))
      for (const auto &Entry :
           std::filesystem::directory_iterator(Config.CorpusDir, EC)) {
        const std::string Base = Entry.path().filename().string();
        if (Entry.is_regular_file() && Entry.path().extension() == ".ir" &&
            Base.rfind("fail-", 0) != 0 && Base.rfind("chaos-", 0) != 0 &&
            Base.rfind("inflight", 0) != 0)
          Paths.push_back(Entry.path().string());
      }
    std::sort(Paths.begin(), Paths.end());
    for (const std::string &P : Paths) {
      std::ifstream In(P);
      std::ostringstream SS;
      SS << In.rdbuf();
      std::string ParseError;
      std::unique_ptr<Function> F = parseFunction(SS.str(), ParseError);
      if (!F)
        continue; // Parse rejects happen below the pipeline under test.
      std::string Pristine = printFunction(*F);
      Probes.push_back({std::filesystem::path(P).filename().string(),
                        std::move(F), std::move(Pristine)});
    }
  }
  Rng Root(Config.Seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  const unsigned long Gen = std::min<unsigned long>(Config.Runs, 12);
  for (unsigned long I = 0; I != Gen; ++I) {
    std::uint64_t CaseSeed = Root.next();
    Rng R(CaseSeed);
    GeneratorParams P = randomParams(R, CaseSeed, Target);
    std::unique_ptr<Function> F = generateFunction(P, Target);
    std::string Pristine = printFunction(*F);
    Probes.push_back(
        {"gen-" + std::to_string(I), std::move(F), std::move(Pristine)});
  }
  if (Probes.empty()) {
    std::fprintf(stderr, "error: --chaos found no probe inputs\n");
    return 2;
  }

  std::vector<ChaosViolation> Violations;
  std::map<std::string, std::uint64_t> TotalFires;
  unsigned long Saved = 0;
  unsigned long Sweeps = 0;

  auto recordViolation = [&](const std::string &Spec, long ProbeIdx,
                             const std::string &Detail) {
    const std::string Input =
        ProbeIdx < 0 ? "-" : Probes[static_cast<size_t>(ProbeIdx)].Name;
    Violations.push_back({Spec, Input, Detail});
    if (ProbeIdx >= 0 && Saved < Config.MaxSave) {
      saveCorpusFile(Config.CorpusDir,
                     "chaos-fail-" + std::to_string(Config.Seed) + "-" +
                         std::to_string(Violations.size()) + ".ir",
                     "pdgc-fuzz chaos seed=" + std::to_string(Config.Seed) +
                         " plan=" + Spec + " input=" + Input,
                     Probes[static_cast<size_t>(ProbeIdx)].Pristine);
      ++Saved;
    }
  };

  // One sweep: install the plan, run every probe through the batch
  // pipeline, and assert the three chaos invariants — no exception escapes
  // the pipeline, a served assignment passes the independent checker, and
  // a failed item is byte-identical to its pristine text. \p Lead names
  // the allocator heading the fallback chain ("" = the default chain);
  // sweeping different leads is what reaches the per-allocator sites.
  auto sweep = [&](const std::string &Spec, unsigned ItemBudgetMs,
                   const std::string &Lead) {
    ++Sweeps;
    fault::FaultPlan Plan;
    const std::string SpecError = fault::parseFaultSpec(Spec, Plan);
    if (!SpecError.empty()) {
      recordViolation(Spec, -1,
                      "internal: sweep spec did not parse: " + SpecError);
      return;
    }
    std::vector<std::unique_ptr<Function>> Clones;
    std::vector<Function *> Ptrs;
    BatchLimits Limits;
    for (const ChaosProbe &P : Probes) {
      Clones.push_back(cloneFunction(*P.Master));
      Ptrs.push_back(Clones.back().get());
      Limits.Labels.push_back(P.Name);
    }
    DriverOptions Options;
    Options.MaxRounds = 64;
    if (!Lead.empty() && Lead != "spill-everything")
      Options.FallbackChain = {
          {Lead, nullptr}, {"spill-everything", nullptr}};
    else if (Lead == "spill-everything")
      Options.FallbackChain = {{Lead, nullptr}};
    Limits.ItemBudgetMs = ItemBudgetMs != 0 ? ItemBudgetMs : 10000;

    fault::resetSiteCounters();
    fault::installPlan(Plan);
    std::vector<BatchItemResult> Results;
    bool Escaped = false;
    try {
      BatchDriver Driver(Config.Jobs);
      Results = Driver.run(Ptrs, Target, Options, Limits);
    } catch (const std::exception &E) {
      Escaped = true;
      recordViolation(Spec, -1,
                      std::string("exception escaped the batch pipeline: ") +
                          E.what());
    }
    fault::clearPlan();
    for (const fault::SiteInfo &S : fault::siteSnapshot())
      TotalFires[S.Name] += S.Fires;
    if (Escaped)
      return;

    for (size_t I = 0; I != Probes.size(); ++I) {
      if (Results[I].ok()) {
        std::vector<std::string> Errors =
            checkAssignment(*Ptrs[I], Target, Results[I].Out.Assignment);
        if (!Errors.empty())
          recordViolation(Spec, static_cast<long>(I),
                          "checker rejected a served assignment: " +
                              Errors.front());
      } else if (printFunction(*Ptrs[I]) != Probes[I].Pristine) {
        recordViolation(Spec, static_cast<long>(I),
                        "failed item was modified (" +
                            Results[I].S.toString() + ")");
      }
    }
  };

  // Discovery passes: the plan arms every site (hits are only counted
  // while armed) but its pattern matches no site, so nothing fires and
  // every reachable site self-registers with an honest hit count. One
  // pass per registered allocator as chain lead, because the default
  // chain alone never executes the other allocators' phase sites; each
  // site is mapped to the first lead whose pipeline reaches it.
  std::vector<std::string> Sites;
  std::map<std::string, std::string> SiteLead;
  for (const std::string &Lead : registeredAllocatorNames()) {
    sweep("__chaos-discovery__:status@n=1", 0, Lead);
    for (const fault::SiteInfo &S : fault::siteSnapshot())
      if (S.Hits != 0 && SiteLead.find(S.Name) == SiteLead.end()) {
        SiteLead[S.Name] = Lead;
        Sites.push_back(S.Name);
      }
  }
  std::sort(Sites.begin(), Sites.end());
  if (!Config.Quiet)
    std::fprintf(stderr,
                 "pdgc-fuzz --chaos: %zu probes, %zu sites discovered\n",
                 Probes.size(), Sites.size());

  // Targeted sweeps: each site takes a fatal and a structured failure on
  // its first hit, then a bounded stall under a tight per-item deadline
  // (the delay outlives the budget, so the stalled tier must degrade).
  for (const std::string &S : Sites) {
    sweep(S + ":fatal@n=1", 0, SiteLead[S]);
    sweep(S + ":status@n=1", 0, SiteLead[S]);
    sweep(S + ":delay=50@n=1", 20, SiteLead[S]);
  }

  // Total-failure sweeps: every fallback tier dies, so every item must
  // come back failed AND byte-identical (the untouched-on-total-failure
  // contract).
  sweep("fallback.tier:fatal@every=1", 0, "");
  sweep("fallback.tier:status@every=1", 0, "");

  // Probability chaos: plan-wide random faulting, deterministic per seed,
  // over the default chain.
  sweep("*:status@p=3,seed=" + std::to_string(Config.Seed), 0, "");
  sweep("*:fatal@p=2,seed=" + std::to_string(Config.Seed + 1), 0, "");
  sweep("*:delay=5@p=10,seed=" + std::to_string(Config.Seed + 2), 25, "");

  // Coverage gate: every discovered site fired at least once across the
  // sweeps (its own n=1 sweeps reach it on an unperturbed path, so a zero
  // here means the injection machinery itself regressed).
  unsigned long Unfired = 0;
  for (const std::string &S : Sites)
    if (TotalFires[S] == 0) {
      ++Unfired;
      recordViolation("(coverage)", -1,
                      "site " + S + " never fired in any sweep");
    }

  for (const ChaosViolation &V : Violations)
    std::fprintf(stderr, "FAIL chaos plan='%s' input=%s %s\n", V.Plan.c_str(),
                 V.Input.c_str(), V.Detail.c_str());

  std::printf("pdgc-fuzz --chaos: %zu probes, %zu sites, %lu sweeps, "
              "%lu unfired-sites, %zu violations\n",
              Probes.size(), Sites.size(), Sweeps, Unfired,
              Violations.size());
  if (Config.PrintStats)
    std::fputs(StatRegistry::get().snapshot().toText("; stat ").c_str(),
               stdout);
  return Violations.empty() ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  FuzzConfig Config;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    unsigned long Value = 0;
    if (Arg.rfind("--runs=", 0) == 0 &&
        parseNumeric(Arg.substr(7), 100000000, Value)) {
      Config.Runs = Value;
    } else if (Arg.rfind("--seed=", 0) == 0 &&
               parseNumeric(Arg.substr(7), 999999999, Value)) {
      Config.Seed = Value;
    } else if (Arg.rfind("--corpus-dir=", 0) == 0) {
      Config.CorpusDir = Arg.substr(13);
    } else if (Arg.rfind("--timeout=", 0) == 0 &&
               parseNumeric(Arg.substr(10), 3600, Value)) {
      Config.TimeoutSecs = static_cast<unsigned>(Value);
    } else if (Arg.rfind("--mutate-percent=", 0) == 0 &&
               parseNumeric(Arg.substr(17), 100, Value)) {
      Config.MutatePercent = static_cast<unsigned>(Value);
    } else if (Arg.rfind("--kill-tier=", 0) == 0) {
      Config.KillTier = Arg.substr(12);
    } else if (Arg.rfind("--reduce-file=", 0) == 0) {
      Config.ReduceFile = Arg.substr(14);
      if (Config.ReduceFile.empty()) {
        std::fprintf(stderr, "error: --reduce-file expects a path\n");
        return 2;
      }
    } else if (Arg.rfind("--max-save=", 0) == 0 &&
               parseNumeric(Arg.substr(11), 10000, Value)) {
      Config.MaxSave = Value;
    } else if (Arg.rfind("--jobs=", 0) == 0 &&
               parseNumeric(Arg.substr(7), 1024, Value)) {
      Config.Jobs = Value == 0 ? ThreadPool::defaultJobs()
                               : static_cast<unsigned>(Value);
    } else if (Arg == "--quiet") {
      Config.Quiet = true;
    } else if (Arg == "--stats") {
      Config.PrintStats = true;
    } else if (Arg == "--chaos") {
      Config.Chaos = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: bad argument '%s'\n", Arg.c_str());
      usage();
      return 2;
    }
  }

  if (Config.Chaos)
    return runChaos(Config);
  if (!Config.ReduceFile.empty())
    return runReduceFile(Config);

  registerPDGCAllocators();
  const std::vector<std::string> Allocators = registeredAllocatorNames();

  struct sigaction SA = {};
  SA.sa_handler = onAlarm;
  sigemptyset(&SA.sa_mask);
  sigaction(SIGALRM, &SA, nullptr);

  FuzzStats Stats;
  unsigned long Saved = 0;
  Rng Root(Config.Seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);

  // Shared by both modes: report findings, reduce, and persist them —
  // always on the main thread, in case order.
  auto processFindings = [&](const CaseInput &In,
                             const std::vector<Finding> &Findings) {
    for (const Finding &F : Findings) {
      ++Stats.Failures;
      std::fprintf(stderr, "FAIL case=%lu kind=%s allocator=%s %s\n",
                   In.Index, F.Kind.c_str(), F.Allocator.c_str(),
                   F.Detail.c_str());
      if (Saved < Config.MaxSave && F.Kind != "timeout") {
        std::string Reduced = reduceCase(In.Text, In.Target, Allocators,
                                         Config.KillTier, F.Kind);
        saveCorpusFile(Config.CorpusDir,
                       "fail-" + std::to_string(Config.Seed) + "-" +
                           std::to_string(In.Index) + "-" + F.Kind + ".ir",
                       In.Header + " kind=" + F.Kind, Reduced);
        ++Saved;
      }
    }
  };
  auto progress = [&](unsigned long Done) {
    if (!Config.Quiet && Done % 200 == 0)
      std::fprintf(stderr,
                   "pdgc-fuzz: %lu/%lu cases, %lu allocations, "
                   "%lu parse-rejects, %lu verify-rejects, %lu failures\n",
                   Done, Config.Runs, Stats.Allocations, Stats.ParseRejects,
                   Stats.VerifyRejects, Stats.Failures);
  };

  if (Config.Jobs <= 1) {
    for (unsigned long Case = 0; Case != Config.Runs; ++Case) {
      CaseInput In = makeCase(Case, Root, Config);

      // Write-ahead: if this case hangs or crashes the process, the
      // reproducer is already on disk.
      saveCorpusFile(Config.CorpusDir, "inflight.ir", In.Header, In.Text);

      std::vector<Finding> Findings;
      bool Finished = withAlarmGuard(Config.TimeoutSecs, [&] {
        runCase(In.Text, In.Target, Allocators, Config.KillTier, Stats,
                Findings);
      });
      if (!Finished) {
        ++Stats.Timeouts;
        Findings.push_back({"timeout", "pipeline",
                            "case exceeded " +
                                std::to_string(Config.TimeoutSecs) + "s"});
      }
      ++Stats.Cases;
      processFindings(In, Findings);
      progress(Case + 1);
    }
  } else {
    // Parallel mode: deterministic chunks. Each chunk is generated
    // sequentially (one Root draw per case, same stream as --jobs=1) and
    // written ahead, then the cases run on the pool; stats are merged and
    // findings processed in case order, so output and saved corpus files
    // are reproducible. Runaway cases are bounded by the per-tier
    // wall-clock budget instead of SIGALRM.
    ThreadPool Pool(Config.Jobs);
    const unsigned ChainBudgetMs = Config.TimeoutSecs * 1000;
    const unsigned long ChunkSize = 256;
    for (unsigned long Start = 0; Start < Config.Runs; Start += ChunkSize) {
      const unsigned long N = std::min(ChunkSize, Config.Runs - Start);
      std::vector<CaseInput> Chunk;
      Chunk.reserve(N);
      for (unsigned long I = 0; I != N; ++I) {
        Chunk.push_back(makeCase(Start + I, Root, Config));
        saveCorpusFile(Config.CorpusDir,
                       "inflight-" + std::to_string(Start + I) + ".ir",
                       Chunk.back().Header, Chunk.back().Text);
      }

      std::vector<FuzzStats> CaseStats(N);
      std::vector<std::vector<Finding>> CaseFindings(N);
      Pool.parallelFor(static_cast<unsigned>(N), [&](unsigned I) {
        runCase(Chunk[I].Text, Chunk[I].Target, Allocators, Config.KillTier,
                CaseStats[I], CaseFindings[I], ChainBudgetMs);
      });

      for (unsigned long I = 0; I != N; ++I) {
        Stats += CaseStats[I];
        ++Stats.Cases;
        processFindings(Chunk[I], CaseFindings[I]);
        std::error_code EC;
        std::filesystem::remove(Config.CorpusDir + "/inflight-" +
                                    std::to_string(Chunk[I].Index) + ".ir",
                                EC);
        progress(Start + I + 1);
      }
    }
  }

  std::error_code EC;
  std::filesystem::remove(Config.CorpusDir + "/inflight.ir", EC);

  std::printf("pdgc-fuzz: %lu cases (%lu parse-rejects, %lu verify-rejects), "
              "%lu allocations, %lu budget-stops, %lu tier-failures, "
              "%lu degradations, %lu timeouts, %lu failures\n",
              Stats.Cases, Stats.ParseRejects, Stats.VerifyRejects,
              Stats.Allocations, Stats.BudgetStops, Stats.TierFailures,
              Stats.Degradations, Stats.Timeouts, Stats.Failures);
  if (Config.PrintStats)
    std::fputs(StatRegistry::get().snapshot().toText("; stat ").c_str(),
               stdout);
  return Stats.Failures == 0 ? 0 : 1;
}
