#!/usr/bin/env python3
"""pdgc-lint: repository-convention linter for the PDGC tree.

Checks that the conventions the docs promise actually hold in the code:

  fault-sites   Every PDGC_FAULT_POINT name matches the `group.name`
                grammar, and every production site (src/, tools/) is
                listed in docs/ROBUSTNESS.md's fault-site catalog.
  stats         Every PDGC_STAT group/name matches the grammar, and every
                production counter is documented in docs/OBSERVABILITY.md.
  raw-mutex     No raw std::mutex / std::condition_variable / lock
                wrappers outside src/support/ThreadAnnotations.h — all
                locking goes through the annotated pdgc::Mutex wrappers
                so clang -Wthread-safety sees every acquisition.
  includes      Header guards match the file's path
                (src/server/Server.h -> PDGC_SERVER_SERVER_H), project
                includes use quotes and resolve to real files, system
                includes use angle brackets.

Exit status: 0 clean, 1 findings, 2 usage/internal error.

Run from anywhere: paths are resolved relative to --repo (default: the
repository containing this script). `--self-test` exercises the checks
against known-bad fixtures in a temp directory and is wired into ctest.
"""

import argparse
import os
import re
import sys
import tempfile

# group.name, with dotted sub-groups allowed (server.http.parse): every
# dot-separated segment is lower_snake, and there are at least two.
NAME_GRAMMAR = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")
FAULT_POINT = re.compile(r'PDGC_FAULT_POINT\(\s*"([^"]*)"\s*\)')
STAT = re.compile(r'PDGC_STAT\(\s*"([^"]*)"\s*,\s*"([^"]*)"\s*\)')
# Single-line tokens only, so ``` code fences cannot desynchronize the
# backtick pairing and swallow half the document.
BACKTICKED = re.compile(r"`([^`\n]+)`")

# Directories scanned for C++ sources, and the subset whose PDGC_STAT /
# PDGC_FAULT_POINT names must be documented (tests and benches may plant
# fixture sites like `test.probe`; they still must obey the grammar).
SOURCE_DIRS = ("src", "tools", "tests", "bench", "examples")
PRODUCTION_DIRS = ("src", "tools")

# The one file allowed to name raw standard-library locking primitives:
# it wraps them in the clang-annotated pdgc::Mutex family.
MUTEX_WRAPPER = "src/support/ThreadAnnotations.h"
RAW_MUTEX = re.compile(
    r"std::(mutex|timed_mutex|recursive_mutex|shared_mutex|"
    r"condition_variable(_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b|#\s*include\s*<(mutex|condition_variable|shared_mutex)>"
)


def cxx_files(repo):
    for top in SOURCE_DIRS:
        root = os.path.join(repo, top)
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if name.endswith((".h", ".cpp")):
                    yield os.path.relpath(os.path.join(dirpath, name), repo)


def read(repo, rel):
    with open(os.path.join(repo, rel), encoding="utf-8") as f:
        return f.read()


def strip_comments(text):
    """Drop // and /* */ comments so commented-out code cannot trip or
    satisfy a check. Keeps line structure so line numbers stay right."""
    out = []
    i, n = 0, len(text)
    while i < n:
        if text.startswith("//", i):
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            out.append("\n" * text.count("\n", i, n if j < 0 else j))
            i = n if j < 0 else j + 2
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def documented_names(repo, doc_rel):
    try:
        doc = read(repo, doc_rel)
    except OSError:
        return None
    return {m for m in BACKTICKED.findall(doc) if NAME_GRAMMAR.match(m)}


def is_production(rel):
    return rel.split(os.sep, 1)[0] in PRODUCTION_DIRS


def check_registry_macro(repo, findings, macro_re, names_of, doc_rel, kind):
    """Shared engine for the fault-site and stat checks."""
    documented = documented_names(repo, doc_rel)
    if documented is None:
        findings.append(f"{doc_rel}: missing — the {kind} catalog lives here")
        return
    for rel in cxx_files(repo):
        text = strip_comments(read(repo, rel))
        for m in macro_re.finditer(text):
            where = f"{rel}:{line_of(text, m.start())}"
            for name in names_of(m):
                if not NAME_GRAMMAR.match(name):
                    findings.append(
                        f"{where}: {kind} '{name}' does not match the "
                        f"group.name grammar "
                        f"[a-z][a-z0-9_]*(.[a-z][a-z0-9_]*)+ — rename it "
                        f"(dot-separated lower_snake segments, two or more)"
                    )
                elif is_production(rel) and name not in documented:
                    findings.append(
                        f"{where}: {kind} '{name}' is not documented in "
                        f"{doc_rel} — add a `{name}` table row describing it"
                    )


def check_fault_sites(repo, findings):
    check_registry_macro(
        repo, findings, FAULT_POINT, lambda m: [m.group(1)],
        "docs/ROBUSTNESS.md", "fault site")


def check_stats(repo, findings):
    check_registry_macro(
        repo, findings, STAT, lambda m: [f"{m.group(1)}.{m.group(2)}"],
        "docs/OBSERVABILITY.md", "stat counter")


def check_raw_mutex(repo, findings):
    for rel in cxx_files(repo):
        if rel.replace(os.sep, "/") == MUTEX_WRAPPER:
            continue
        text = strip_comments(read(repo, rel))
        for m in RAW_MUTEX.finditer(text):
            findings.append(
                f"{rel}:{line_of(text, m.start())}: raw '{m.group(0)}' "
                f"outside {MUTEX_WRAPPER} — use pdgc::Mutex / MutexLock / "
                f"CondVar so clang -Wthread-safety sees the acquisition"
            )


GUARD_DIRECTIVE = re.compile(
    r"#ifndef\s+(\S+)\s*\n\s*#define\s+(\S+)", re.MULTILINE)
INCLUDE = re.compile(r'^\s*#\s*include\s+(<[^>]+>|"[^"]+")', re.MULTILINE)


def expected_guard(rel):
    parts = rel.replace(os.sep, "/").split("/")
    if parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)[: -len(".h")]
    return "PDGC_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H"


def check_includes(repo, findings):
    src_root = os.path.join(repo, "src")
    for rel in cxx_files(repo):
        text = read(repo, rel)
        if rel.endswith(".h") and rel.replace(os.sep, "/").startswith("src/"):
            want = expected_guard(rel)
            m = GUARD_DIRECTIVE.search(strip_comments(text))
            if not m:
                findings.append(
                    f"{rel}: no #ifndef/#define header guard — "
                    f"guard it with {want}")
            elif m.group(1) != m.group(2):
                findings.append(
                    f"{rel}: header-guard mismatch: #ifndef {m.group(1)} "
                    f"but #define {m.group(2)}")
            elif m.group(1) != want:
                findings.append(
                    f"{rel}: header guard {m.group(1)} does not match the "
                    f"file path — expected {want}")
        for m in INCLUDE.finditer(strip_comments(text)):
            inc = m.group(1)
            if inc.startswith('"'):
                target = inc.strip('"')
                if not (os.path.exists(os.path.join(src_root, target))
                        or os.path.exists(os.path.join(repo, target))):
                    findings.append(
                        f"{rel}:{line_of(text, m.start())}: quoted include "
                        f'"{target}" resolves under neither src/ nor the '
                        f"repo root — project includes are rooted there "
                        f"(system headers use <...>)")


CHECKS = {
    "fault-sites": check_fault_sites,
    "stats": check_stats,
    "raw-mutex": check_raw_mutex,
    "includes": check_includes,
}


def run_checks(repo, names):
    findings = []
    for name in names:
        CHECKS[name](repo, findings)
    return findings


# --------------------------------------------------------------------------
# Self-test: plant known-bad fixtures and assert each check both fires with
# an actionable message and stays quiet on a matching clean fixture.

def write(root, rel, text):
    path = os.path.join(root, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)


def expect(errors, label, findings, *needles):
    hits = [f for f in findings if all(n in f for n in needles)]
    if not hits:
        errors.append(
            f"{label}: expected a finding containing {needles!r}, got:\n  "
            + ("\n  ".join(findings) if findings else "(no findings)"))


def expect_clean(errors, label, findings):
    if findings:
        errors.append(f"{label}: expected no findings, got:\n  "
                      + "\n  ".join(findings))


def self_test():
    errors = []
    with tempfile.TemporaryDirectory(prefix="pdgc-lint-") as root:
        write(root, "docs/ROBUSTNESS.md",
              "Catalog: `driver.round` is the only documented site.\n")
        write(root, "docs/OBSERVABILITY.md",
              "| `driver.rounds` | documented |\n")

        # Undocumented production fault site -> finding names the doc.
        write(root, "src/a.cpp", 'PDGC_FAULT_POINT("driver.mystery");\n')
        f = run_checks(root, ["fault-sites"])
        expect(errors, "undocumented fault site", f,
               "src/a.cpp:1", "driver.mystery", "ROBUSTNESS.md")

        # Documented site + fixture site in tests/ -> clean.
        write(root, "src/a.cpp", 'PDGC_FAULT_POINT("driver.round");\n')
        write(root, "tests/t.cpp", 'PDGC_FAULT_POINT("test.probe");\n')
        expect_clean(errors, "documented fault site",
                     run_checks(root, ["fault-sites"]))

        # Dotted sub-group names (server.http.parse) are grammatical; an
        # undocumented one is still flagged, a documented one is clean.
        write(root, "src/a.cpp", 'PDGC_FAULT_POINT("server.http.parse");\n')
        f = run_checks(root, ["fault-sites"])
        expect(errors, "undocumented sub-group site", f,
               "src/a.cpp:1", "server.http.parse", "ROBUSTNESS.md")
        write(root, "docs/ROBUSTNESS.md",
              "Catalog: `driver.round` and `server.http.parse`.\n")
        expect_clean(errors, "documented sub-group site",
                     run_checks(root, ["fault-sites"]))
        write(root, "src/a.cpp", 'PDGC_FAULT_POINT("driver.round");\n')

        # Malformed stat name -> grammar finding even in tests/.
        write(root, "tests/t.cpp", 'PDGC_STAT("Driver", "Rounds!").inc();\n')
        f = run_checks(root, ["stats"])
        expect(errors, "malformed stat name", f,
               "tests/t.cpp:1", "Driver.Rounds!", "grammar")

        # Undocumented production stat -> finding; documented -> clean.
        write(root, "tests/t.cpp", "")
        write(root, "src/a.cpp", 'PDGC_STAT("driver", "widgets").inc();\n')
        expect(errors, "undocumented stat", run_checks(root, ["stats"]),
               "src/a.cpp:1", "driver.widgets", "OBSERVABILITY.md")
        write(root, "src/a.cpp", 'PDGC_STAT("driver", "rounds").inc();\n')
        expect_clean(errors, "documented stat", run_checks(root, ["stats"]))

        # Raw mutex use -> finding pointing at the wrapper; commented-out
        # use and the wrapper itself -> clean.
        write(root, "src/b.cpp", "#include <mutex>\nstd::mutex M;\n")
        f = run_checks(root, ["raw-mutex"])
        expect(errors, "raw include", f, "src/b.cpp:1", "ThreadAnnotations.h")
        expect(errors, "raw mutex", f, "src/b.cpp:2", "std::mutex")
        write(root, "src/b.cpp", "// std::mutex M; (historical)\n")
        write(root, "src/support/ThreadAnnotations.h",
              "#ifndef PDGC_SUPPORT_THREADANNOTATIONS_H\n"
              "#define PDGC_SUPPORT_THREADANNOTATIONS_H\n"
              "#include <mutex>\nstd::mutex M;\n#endif\n")
        expect_clean(errors, "wrapper exemption",
                     run_checks(root, ["raw-mutex"]))

        # Header-guard and include hygiene.
        write(root, "src/server/Thing.h",
              "#ifndef WRONG_H\n#define WRONG_H\n#endif\n")
        write(root, "src/c.cpp", '#include "server/Missing.h"\n')
        f = run_checks(root, ["includes"])
        expect(errors, "wrong guard", f,
               "Thing.h", "WRONG_H", "PDGC_SERVER_THING_H")
        expect(errors, "dangling include", f,
               "src/c.cpp:1", "server/Missing.h")
        write(root, "src/server/Thing.h",
              "#ifndef PDGC_SERVER_THING_H\n#define PDGC_SERVER_THING_H\n"
              "#endif\n")
        write(root, "src/c.cpp", '#include "server/Thing.h"\n#include <map>\n')
        expect_clean(errors, "clean includes", run_checks(root, ["includes"]))

    if errors:
        print("pdgc-lint self-test FAILED:", file=sys.stderr)
        for e in errors:
            print("  " + e.replace("\n", "\n  "), file=sys.stderr)
        return 1
    print("pdgc-lint self-test OK")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(prog="pdgc-lint", description=__doc__)
    parser.add_argument("--repo", default=None,
                        help="repository root (default: this script's repo)")
    parser.add_argument("--check", action="append", choices=sorted(CHECKS),
                        help="run only this check (repeatable; default all)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter's own fixture tests and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    repo = args.repo or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(repo, "src")):
        print(f"pdgc-lint: '{repo}' has no src/ — pass --repo",
              file=sys.stderr)
        return 2

    findings = run_checks(repo, args.check or sorted(CHECKS))
    for f in findings:
        print(f, file=sys.stderr)
    if findings:
        print(f"pdgc-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
