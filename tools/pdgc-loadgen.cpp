//===- tools/pdgc-loadgen.cpp - Concurrent load generator ------------------===//
//
// Part of the PDGC project.
//
// Drives a running pdgc-serve with concurrent clients and reports latency
// percentiles plus a per-status breakdown — the "N concurrent clients,
// p50/p99" report the ROADMAP's serving story asks for, and the assertion
// harness the chaos CI job leans on.
//
//   pdgc-loadgen --port=N [options]
//
//   --port=N           server port on 127.0.0.1 (required)
//   --concurrency=N    concurrent client connections (default 4)
//   --requests=N       total ALLOC requests across all clients (default 64)
//   --corpus-dir=DIR   send every *.ir file from DIR round-robin; absent,
//                      clients send generated functions (--seed)
//   --budget-ms=N      per-request budget header (default 0 = server's)
//   --allocator=NAME   allocator header on every request (default none)
//   --seed=S           seed for generated functions + backoff jitter
//   --retries=N        max attempts per request incl. backoff (default 8)
//   --chaos            tolerate dropped connections (the server is being
//                      fault-injected): reconnect and retry instead of
//                      counting a transport error
//   --expect-drain     treat REJECTED("draining") and dropped connections
//                      near shutdown as success (for SIGTERM drain tests)
//   --expect-crashes   the server is running with --isolate-workers and a
//                      crash fault armed: CRASHED responses are expected
//                      (exit 1 if none arrive); without this flag any
//                      CRASHED response is a finding (exit 1)
//   --max-elapsed-ms=N wall-clock retry budget per request, passed to the
//                      client retry policy (default 0 = attempts only)
//   --quiet            print only the final report
//
// Exit codes:
//   0  every request got a typed response (or an allowed drain outcome)
//   1  transport errors outside chaos mode, an invalid response, or a
//      crash-expectation mismatch (see --expect-crashes)
//   2  usage / connect failure
//
// The final report line is machine-parseable:
//   pdgc-loadgen: sent=N ok=N degraded=N rejected=N timeout=N malformed=N
//     internal=N crashed=N transport-errors=N retries=N p50-us=N p99-us=N
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"
#include "machine/TargetDesc.h"
#include "server/Client.h"
#include "server/LatencyHistogram.h"
#include "support/ThreadAnnotations.h"
#include "workloads/Generator.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace pdgc;
using namespace pdgc::server;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: pdgc-loadgen --port=N [--concurrency=N] "
               "[--requests=N] [--corpus-dir=DIR]\n"
               "                    [--budget-ms=N] [--allocator=NAME] "
               "[--seed=S] [--retries=N]\n"
               "                    [--max-elapsed-ms=N] [--chaos] "
               "[--expect-drain] [--expect-crashes]\n"
               "                    [--quiet]\n");
}

bool parseNumericOption(const std::string &Value, unsigned long Min,
                        unsigned long Max, unsigned long &Out) {
  if (Value.empty() || Value.size() > 10)
    return false;
  unsigned long V = 0;
  for (char C : Value) {
    if (!std::isdigit(static_cast<unsigned char>(C)))
      return false;
    V = V * 10 + static_cast<unsigned long>(C - '0');
  }
  if (V < Min || V > Max)
    return false;
  Out = V;
  return true;
}

struct Totals {
  std::atomic<std::uint64_t> Sent{0}, Ok{0}, Degraded{0}, Rejected{0},
      Timeout{0}, Malformed{0}, Internal{0}, Crashed{0},
      TransportErrors{0}, DrainRejects{0}, Retries{0}, Invalid{0};
};

} // namespace

int main(int argc, char **argv) {
  unsigned long Port = 0;
  unsigned Concurrency = 4;
  unsigned Requests = 64;
  unsigned BudgetMs = 0;
  unsigned MaxAttempts = 8;
  unsigned MaxElapsedMs = 0;
  std::uint64_t Seed = 1;
  std::string CorpusDir;
  std::string Allocator;
  bool Chaos = false;
  bool ExpectDrain = false;
  bool ExpectCrashes = false;
  bool Quiet = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    unsigned long V = 0;
    if (Arg.rfind("--port=", 0) == 0 &&
        parseNumericOption(Arg.substr(7), 1, 65535, V)) {
      Port = V;
    } else if (Arg.rfind("--concurrency=", 0) == 0 &&
               parseNumericOption(Arg.substr(14), 1, 512, V)) {
      Concurrency = static_cast<unsigned>(V);
    } else if (Arg.rfind("--requests=", 0) == 0 &&
               parseNumericOption(Arg.substr(11), 1, 10000000, V)) {
      Requests = static_cast<unsigned>(V);
    } else if (Arg.rfind("--budget-ms=", 0) == 0 &&
               parseNumericOption(Arg.substr(12), 1, 3600000, V)) {
      BudgetMs = static_cast<unsigned>(V);
    } else if (Arg.rfind("--retries=", 0) == 0 &&
               parseNumericOption(Arg.substr(10), 1, 100, V)) {
      MaxAttempts = static_cast<unsigned>(V);
    } else if (Arg.rfind("--max-elapsed-ms=", 0) == 0 &&
               parseNumericOption(Arg.substr(17), 1, 3600000, V)) {
      MaxElapsedMs = static_cast<unsigned>(V);
    } else if (Arg.rfind("--seed=", 0) == 0 &&
               parseNumericOption(Arg.substr(7), 0, 999999999, V)) {
      Seed = V;
    } else if (Arg.rfind("--corpus-dir=", 0) == 0) {
      CorpusDir = Arg.substr(13);
    } else if (Arg.rfind("--allocator=", 0) == 0) {
      Allocator = Arg.substr(12);
    } else if (Arg == "--chaos") {
      Chaos = true;
    } else if (Arg == "--expect-drain") {
      ExpectDrain = true;
    } else if (Arg == "--expect-crashes") {
      ExpectCrashes = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: bad option '%s'\n", Arg.c_str());
      usage();
      return 2;
    }
  }
  if (Port == 0) {
    std::fprintf(stderr, "error: --port is required\n");
    usage();
    return 2;
  }

  // A server that hangs up mid-write must not kill the generator.
  std::signal(SIGPIPE, SIG_IGN);

  // Build the request bodies up front so every worker thread only does
  // network I/O: either the corpus files (including the intentionally
  // malformed fuzzer reproducers — MALFORMED is a *correct* answer for
  // those) or seeded generated functions.
  std::vector<std::string> Bodies;
  if (!CorpusDir.empty()) {
    namespace fs = std::filesystem;
    std::error_code EC;
    std::vector<std::string> Paths;
    for (const fs::directory_entry &Entry :
         fs::directory_iterator(CorpusDir, EC))
      if (Entry.is_regular_file() && Entry.path().extension() == ".ir")
        Paths.push_back(Entry.path().string());
    if (EC || Paths.empty()) {
      std::fprintf(stderr, "error: no .ir files in '%s'\n",
                   CorpusDir.c_str());
      return 2;
    }
    std::sort(Paths.begin(), Paths.end());
    for (const std::string &P : Paths) {
      std::ifstream In(P);
      std::ostringstream SS;
      SS << In.rdbuf();
      Bodies.push_back(SS.str());
    }
  } else {
    TargetDesc Target = makeTarget(24, PairingRule::Adjacent);
    for (unsigned I = 0; I != 8; ++I) {
      GeneratorParams P;
      P.Seed = Seed + I;
      P.Name = "load" + std::to_string(I);
      P.CallPercent = 30;
      P.PairedLoadPercent = 10;
      Bodies.push_back(printFunction(*generateFunction(P, Target)));
    }
  }

  Totals T;
  LatencyHistogram Latency;
  std::atomic<unsigned> NextRequest{0};
  pdgc::Mutex LogMutex;

  auto ClientMain = [&](unsigned ClientId) {
    ClientConnection Conn;
    for (;;) {
      unsigned Idx = NextRequest.fetch_add(1, std::memory_order_relaxed);
      if (Idx >= Requests)
        return;
      Request Req;
      Req.Type = RequestType::Alloc;
      Req.BudgetMs = BudgetMs;
      Req.Allocator = Allocator;
      Req.Body = Bodies[Idx % Bodies.size()];

      auto Start = std::chrono::steady_clock::now();
      Response Resp;
      unsigned Retries = 0;
      TransportError E = Conn.callWithRetry(
          Req, Resp, static_cast<std::uint16_t>(Port), MaxAttempts,
          /*RetryTransport=*/Chaos || ExpectDrain,
          Seed * 1000 + ClientId * 131 + Idx, &Retries, MaxElapsedMs);
      T.Sent.fetch_add(1);
      T.Retries.fetch_add(Retries);
      std::uint64_t Micros = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - Start)
              .count());

      if (E != TransportError::None) {
        // Under --expect-drain / --chaos a vanished server is an
        // expected terminal state, not a finding.
        if (ExpectDrain || Chaos)
          T.DrainRejects.fetch_add(1);
        else {
          T.TransportErrors.fetch_add(1);
          if (!Quiet) {
            pdgc::MutexLock Lock(LogMutex);
            std::fprintf(stderr, "client %u: request %u: transport: %s\n",
                         ClientId, Idx, transportErrorName(E));
          }
        }
        continue;
      }

      Latency.record(Micros);
      switch (Resp.Status) {
      case ResponseStatus::Ok:
        T.Ok.fetch_add(1);
        break;
      case ResponseStatus::Degraded:
        T.Degraded.fetch_add(1);
        break;
      case ResponseStatus::Rejected:
        if (Resp.Error == "draining")
          T.DrainRejects.fetch_add(1);
        T.Rejected.fetch_add(1);
        break;
      case ResponseStatus::Timeout:
        T.Timeout.fetch_add(1);
        break;
      case ResponseStatus::Malformed:
        T.Malformed.fetch_add(1);
        break;
      case ResponseStatus::Internal:
        T.Internal.fetch_add(1);
        break;
      case ResponseStatus::Crashed:
        T.Crashed.fetch_add(1);
        break;
      }
      // Status-correctness assertions: a successful allocation must
      // carry a serving tier and an assignment-shaped body.
      if (Resp.Status == ResponseStatus::Ok ||
          Resp.Status == ResponseStatus::Degraded) {
        if (Resp.ServedBy.empty()) {
          T.Invalid.fetch_add(1);
          pdgc::MutexLock Lock(LogMutex);
          std::fprintf(stderr,
                       "client %u: request %u: %s response without "
                       "served-by\n",
                       ClientId, Idx, responseStatusName(Resp.Status));
        }
      } else if (Resp.Error.empty()) {
        T.Invalid.fetch_add(1);
        pdgc::MutexLock Lock(LogMutex);
        std::fprintf(stderr,
                     "client %u: request %u: %s response without error "
                     "detail\n",
                     ClientId, Idx, responseStatusName(Resp.Status));
      }
    }
  };

  std::vector<std::thread> Clients;
  for (unsigned C = 0; C != Concurrency; ++C)
    Clients.emplace_back(ClientMain, C);
  for (std::thread &C : Clients)
    C.join();

  std::printf("pdgc-loadgen: sent=%llu ok=%llu degraded=%llu "
              "rejected=%llu timeout=%llu malformed=%llu internal=%llu "
              "crashed=%llu "
              "transport-errors=%llu retries=%llu p50-us=%llu p99-us=%llu\n",
              static_cast<unsigned long long>(T.Sent.load()),
              static_cast<unsigned long long>(T.Ok.load()),
              static_cast<unsigned long long>(T.Degraded.load()),
              static_cast<unsigned long long>(T.Rejected.load()),
              static_cast<unsigned long long>(T.Timeout.load()),
              static_cast<unsigned long long>(T.Malformed.load()),
              static_cast<unsigned long long>(T.Internal.load()),
              static_cast<unsigned long long>(T.Crashed.load()),
              static_cast<unsigned long long>(T.TransportErrors.load()),
              static_cast<unsigned long long>(T.Retries.load()),
              static_cast<unsigned long long>(Latency.quantile(0.50)),
              static_cast<unsigned long long>(Latency.quantile(0.99)));

  if (T.Invalid.load() != 0)
    return 1;
  if (!Chaos && !ExpectDrain && T.TransportErrors.load() != 0)
    return 1;
  // Crash-expectation contract: CRASHED responses are findings unless
  // the harness armed a crash fault, in which case seeing *none* means
  // the fault plan never fired and the run proved nothing.
  if (!ExpectCrashes && T.Crashed.load() != 0) {
    std::fprintf(stderr, "pdgc-loadgen: unexpected CRASHED responses "
                         "(run with --expect-crashes if intended)\n");
    return 1;
  }
  if (ExpectCrashes && T.Crashed.load() == 0) {
    std::fprintf(stderr, "pdgc-loadgen: --expect-crashes but no CRASHED "
                         "response arrived\n");
    return 1;
  }
  return 0;
}
