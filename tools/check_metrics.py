#!/usr/bin/env python3
"""Validate pdgc-serve's /metrics output as Prometheus text exposition 0.0.4.

Two modes, both used by tools/serve_smoke.sh:

  check_metrics.py SCRAPE            validate one scrape file
  check_metrics.py SCRAPE1 SCRAPE2   additionally check counter monotonicity
                                     between two scrapes of the same process
                                     (SCRAPE1 taken first)

What "valid" means here, in the order it is checked:

  * Every non-comment line parses as `name{labels} value` or `name value`,
    with a float value (Prometheus accepts NaN; we forbid it — no pdgc
    metric is ever NaN).
  * Every sample's family (the name minus `_sum`/`_count`/`_total` etc. is
    NOT stripped — the family is what the preceding # TYPE names) was
    declared by a `# TYPE` line earlier in the file: untyped samples are
    how scrapes silently rot.
  * Declared types are limited to counter | gauge | summary.
  * The families this repo promises are present: pdgc_stat_total,
    pdgc_request_latency_microseconds, and the liveness gauges.
  * Summary quantiles are ordered: q0.5 <= q0.9 <= q0.99, and _count *
    q-values are consistent (all zero when _count is zero).
  * With two scrapes: every counter sample present in both must not
    decrease, and pdgc_server_uptime_seconds must not go backwards.

Exit 0 on success; exit 1 with one line per violation on stderr.
"""

import re
import sys

SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+"
    r"([-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|NaN|[-+]?Inf)$"
)
TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary)$")
HELP_RE = re.compile(r"^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$")

REQUIRED_FAMILIES = [
    "pdgc_stat_total",
    "pdgc_request_latency_microseconds",
    "pdgc_server_queue_depth",
    "pdgc_server_draining",
    "pdgc_server_uptime_seconds",
    "pdgc_flight_recorded_total",
]


def family_of(name, types):
    """Maps a sample name to the # TYPE family that owns it.

    Summary families own `<family>{quantile=...}`, `<family>_sum` and
    `<family>_count`; counters and gauges own their exact name.
    """
    if name in types:
        return name
    for suffix in ("_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def parse(path, errors):
    """Returns {sample_key: float} plus {family: type}; appends to errors."""
    types = {}
    samples = {}
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                if line.startswith("# TYPE "):
                    m = TYPE_RE.match(line)
                    if not m:
                        errors.append(f"{path}:{lineno}: malformed TYPE: {line}")
                        continue
                    if m.group(1) in types:
                        errors.append(f"{path}:{lineno}: duplicate TYPE {m.group(1)}")
                    types[m.group(1)] = m.group(2)
                elif line.startswith("# HELP "):
                    if not HELP_RE.match(line):
                        errors.append(f"{path}:{lineno}: malformed HELP: {line}")
                # Other comments are legal and ignored.
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                errors.append(f"{path}:{lineno}: unparseable sample: {line}")
                continue
            name, labels, value = m.group(1), m.group(2) or "", m.group(3)
            try:
                v = float(value)
            except ValueError:
                errors.append(f"{path}:{lineno}: bad value {value!r}")
                continue
            if v != v:  # NaN
                errors.append(f"{path}:{lineno}: NaN value for {name}")
                continue
            fam = family_of(name, types)
            if fam is None:
                errors.append(
                    f"{path}:{lineno}: sample {name} has no preceding # TYPE"
                )
                continue
            key = name + labels
            if key in samples:
                errors.append(f"{path}:{lineno}: duplicate sample {key}")
            samples[key] = v
    return samples, types


def check_one(path, samples, types, errors):
    for fam in REQUIRED_FAMILIES:
        if fam not in types:
            errors.append(f"{path}: required family {fam} missing")

    lat = "pdgc_request_latency_microseconds"
    if types.get(lat) == "summary":
        q = {
            p: samples.get(lat + '{quantile="%s"}' % p)
            for p in ("0.5", "0.9", "0.99")
        }
        count = samples.get(lat + "_count")
        if None in q.values() or count is None or samples.get(lat + "_sum") is None:
            errors.append(f"{path}: {lat} summary is missing quantiles/_sum/_count")
        else:
            if not (q["0.5"] <= q["0.9"] <= q["0.99"]):
                errors.append(f"{path}: {lat} quantiles not ordered: {q}")
            if count == 0 and any(v != 0 for v in q.values()):
                errors.append(f"{path}: {lat} has quantiles but _count is 0")

    # Counters cannot be negative even within one scrape.
    for key, v in samples.items():
        fam = family_of(key.split("{", 1)[0], types)
        if types.get(fam) == "counter" and v < 0:
            errors.append(f"{path}: negative counter {key} = {v}")


def check_monotone(path1, s1, path2, s2, types, errors):
    shared = sorted(set(s1) & set(s2))
    if not shared:
        errors.append(f"{path1}/{path2}: no shared samples to compare")
    compared = 0
    for key in shared:
        fam = family_of(key.split("{", 1)[0], types)
        if types.get(fam) != "counter":
            continue
        compared += 1
        if s2[key] < s1[key]:
            errors.append(
                f"counter {key} went backwards: {s1[key]} -> {s2[key]}"
            )
    if compared == 0:
        errors.append(f"{path1}/{path2}: no counters in common")
    up = "pdgc_server_uptime_seconds"
    if up in s1 and up in s2 and s2[up] < s1[up]:
        errors.append(f"{up} went backwards: {s1[up]} -> {s2[up]}")
    print(f"check_metrics: {compared} counters monotone across scrapes")


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    errors = []
    s1, t1 = parse(argv[1], errors)
    check_one(argv[1], s1, t1, errors)
    print(f"check_metrics: {argv[1]}: {len(s1)} samples, {len(t1)} families")
    if len(argv) == 3:
        s2, t2 = parse(argv[2], errors)
        check_one(argv[2], s2, t2, errors)
        print(f"check_metrics: {argv[2]}: {len(s2)} samples, {len(t2)} families")
        check_monotone(argv[1], s1, argv[2], s2, t2, errors)
    for e in errors:
        print(f"check_metrics: FAIL: {e}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
