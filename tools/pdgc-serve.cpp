//===- tools/pdgc-serve.cpp - Allocation-as-a-service daemon ---------------===//
//
// Part of the PDGC project.
//
// Long-running register-allocation service on a loopback TCP port. Speaks
// the length-prefixed PDGC/1 protocol (docs/SERVING.md): clients send
// textual IR plus per-request options, the server answers with a typed
// status (OK / DEGRADED / REJECTED / TIMEOUT / MALFORMED / INTERNAL /
// CRASHED), an assignment, and degradation records.
//
//   pdgc-serve [options]
//
//   --port=N             port on 127.0.0.1 (default 0 = ephemeral; the
//                        bound port is printed as "listening on port N")
//   --workers=N          allocation worker threads (default 2; 0 = one
//                        per hardware thread)
//   --queue-depth=N      admission queue high watermark (default 64)
//   --queue-low=N        watermark shedding stops at (default 3/4 depth)
//   --max-connections=N  concurrent connections (default 64)
//   --budget-ms=N        default per-request wall budget (default 2000)
//   --max-budget-ms=N    ceiling a request may ask for (default 60000)
//   --retry-after-ms=N   backoff hint on REJECTED (default 50)
//   --drain-budget-ms=N  budget for finishing in-flight work on
//                        SIGTERM/SIGINT (default 5000)
//   --max-frame-bytes=N  frame payload cap (default 4194304)
//   --regs=N             registers per class of the target (default 24)
//   --allocator=NAME     default leading tier (default full-preferences)
//   --http-max-conns=N   concurrent HTTP-plane connections (default 16)
//   --flight-records=N   flight-recorder capacity (default 128)
//   --trace-json=FILE    collect trace spans and write Chrome trace JSON
//                        at exit (spans carry `req` ids that join the
//                        flight recorder / GET /requests output)
//   --isolate-workers=N  run each allocation in one of N supervised
//                        sandbox child processes (default 0 = in-process;
//                        docs/ROBUSTNESS.md "Crash containment"). Crashed
//                        children answer CRASHED and are respawned.
//   --crash-dir=DIR      write a crash dossier (input + wait status) per
//                        worker crash under DIR
//   --quarantine-crashes=K  quarantine an input after K crashes
//                        (default 3); quarantined inputs get an instant
//                        REJECTED("quarantined")
//   --quarantine-ttl-ms=N   forget a quarantine entry after N ms
//                        (default 0 = never)
//   --worker-grace-ms=N  watchdog SIGKILL grace past the request
//                        deadline (default 500)
//   --worker-as-mb=N     worker RLIMIT_AS cap in MiB (default 0 = off)
//   --worker-cpu-secs=N  worker RLIMIT_CPU cap in seconds (default 0 =
//                        off)
//   --verbose            log connection events to stderr
//
// The same port also answers HTTP/1.1 (plane picked from the first byte;
// docs/SERVING.md "HTTP plane"): GET /healthz, /readyz, /metrics
// (Prometheus 0.0.4), /stats, /requests?n=K.
//
// SIGTERM/SIGINT begin a graceful drain: stop accepting, refuse new work
// with REJECTED("draining"), finish or degrade the backlog within the
// drain budget, then exit after printing a summary (requests by status,
// shed count, p50/p99 latency, the flight recorder's tail). Exit 0 when
// the drain met its budget, 3 when it overran. A second signal exits
// immediately.
//
// PDGC_FAULTS is honored (the server.* sites cover accept/frame/parse/
// enqueue/respond); a malformed spec is a usage error.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"
#include "support/FaultInjection.h"
#include "support/ThreadPool.h"
#include "support/Tracing.h"

#include <atomic>
#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace pdgc;
using namespace pdgc::server;

namespace {

Server *GServer = nullptr;
std::atomic<int> GSignalCount{0};

// Async-signal-safe: requestStop() is one write() on a self-pipe.
void onSignal(int) {
  if (GSignalCount.fetch_add(1, std::memory_order_relaxed) > 0)
    std::_Exit(1); // Second signal: the operator means it.
  if (GServer)
    GServer->requestStop();
}

void usage() {
  std::fprintf(stderr,
               "usage: pdgc-serve [--port=N] [--workers=N] "
               "[--queue-depth=N] [--queue-low=N]\n"
               "                  [--max-connections=N] [--budget-ms=N] "
               "[--max-budget-ms=N]\n"
               "                  [--retry-after-ms=N] "
               "[--drain-budget-ms=N] [--max-frame-bytes=N]\n"
               "                  [--regs=N] [--allocator=NAME] "
               "[--http-max-conns=N]\n"
               "                  [--flight-records=N] [--trace-json=FILE]\n"
               "                  [--isolate-workers=N] [--crash-dir=DIR] "
               "[--quarantine-crashes=K]\n"
               "                  [--quarantine-ttl-ms=N] "
               "[--worker-grace-ms=N] [--worker-as-mb=N]\n"
               "                  [--worker-cpu-secs=N] [--verbose]\n");
}

bool parseNumericOption(const std::string &Value, unsigned long Min,
                        unsigned long Max, unsigned long &Out) {
  if (Value.empty() || Value.size() > 10)
    return false;
  unsigned long V = 0;
  for (char C : Value) {
    if (!std::isdigit(static_cast<unsigned char>(C)))
      return false;
    V = V * 10 + static_cast<unsigned long>(C - '0');
  }
  if (V < Min || V > Max)
    return false;
  Out = V;
  return true;
}

/// Matches `--NAME=value` numeric flags; exits via \p Bad on a value
/// outside [Min, Max].
bool numericArg(const std::string &Arg, const char *Prefix,
                unsigned long Min, unsigned long Max, unsigned long &Out,
                bool &BadValue) {
  if (Arg.rfind(Prefix, 0) != 0)
    return false;
  if (!parseNumericOption(Arg.substr(std::string(Prefix).size()), Min, Max,
                          Out)) {
    std::fprintf(stderr, "error: %s expects a number in [%lu, %lu]\n",
                 Prefix, Min, Max);
    BadValue = true;
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  ServerOptions Opts;
  bool QueueLowSet = false;
  std::string TraceJsonPath;

  {
    std::string FaultError;
    if (!fault::installPlanFromEnv(&FaultError)) {
      std::fprintf(stderr, "error: PDGC_FAULTS: %s\n", FaultError.c_str());
      return 1;
    }
  }

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    unsigned long V = 0;
    bool Bad = false;
    if (numericArg(Arg, "--port=", 0, 65535, V, Bad))
      Opts.Port = static_cast<std::uint16_t>(V);
    else if (numericArg(Arg, "--workers=", 0, 256, V, Bad))
      Opts.Workers = V == 0 ? ThreadPool::defaultJobs()
                            : static_cast<unsigned>(V);
    else if (numericArg(Arg, "--queue-depth=", 1, 100000, V, Bad))
      Opts.QueueCapacity = static_cast<unsigned>(V);
    else if (numericArg(Arg, "--queue-low=", 0, 100000, V, Bad)) {
      Opts.QueueLowWatermark = static_cast<unsigned>(V);
      QueueLowSet = true;
    } else if (numericArg(Arg, "--max-connections=", 1, 4096, V, Bad))
      Opts.MaxConnections = static_cast<unsigned>(V);
    else if (numericArg(Arg, "--budget-ms=", 1, 3600000, V, Bad))
      Opts.DefaultBudgetMs = static_cast<unsigned>(V);
    else if (numericArg(Arg, "--max-budget-ms=", 1, 3600000, V, Bad))
      Opts.MaxBudgetMs = static_cast<unsigned>(V);
    else if (numericArg(Arg, "--retry-after-ms=", 1, 60000, V, Bad))
      Opts.RetryAfterMs = static_cast<unsigned>(V);
    else if (numericArg(Arg, "--drain-budget-ms=", 1, 3600000, V, Bad))
      Opts.DrainBudgetMs = static_cast<unsigned>(V);
    else if (numericArg(Arg, "--max-frame-bytes=", 64, 1u << 30, V, Bad))
      Opts.MaxFrameBytes = static_cast<std::uint32_t>(V);
    else if (numericArg(Arg, "--regs=", 2, 4096, V, Bad))
      Opts.Regs = static_cast<unsigned>(V);
    else if (numericArg(Arg, "--http-max-conns=", 1, 4096, V, Bad))
      Opts.HttpMaxConns = static_cast<unsigned>(V);
    else if (numericArg(Arg, "--flight-records=", 1, 1000000, V, Bad))
      Opts.FlightRecords = static_cast<std::size_t>(V);
    else if (numericArg(Arg, "--isolate-workers=", 0, 256, V, Bad))
      Opts.IsolateWorkers = static_cast<unsigned>(V);
    else if (numericArg(Arg, "--quarantine-crashes=", 1, 1000000, V, Bad))
      Opts.QuarantineCrashes = static_cast<unsigned>(V);
    else if (numericArg(Arg, "--quarantine-ttl-ms=", 0, 3600000, V, Bad))
      Opts.QuarantineTtlMs = static_cast<unsigned>(V);
    else if (numericArg(Arg, "--worker-grace-ms=", 1, 3600000, V, Bad))
      Opts.WorkerGraceMs = static_cast<unsigned>(V);
    else if (numericArg(Arg, "--worker-as-mb=", 0, 1048576, V, Bad))
      Opts.WorkerAddressSpaceMb = static_cast<unsigned>(V);
    else if (numericArg(Arg, "--worker-cpu-secs=", 0, 86400, V, Bad))
      Opts.WorkerCpuSeconds = static_cast<unsigned>(V);
    else if (Arg.rfind("--crash-dir=", 0) == 0) {
      Opts.CrashDir = Arg.substr(12);
      if (Opts.CrashDir.empty()) {
        std::fprintf(stderr, "error: --crash-dir expects a path\n");
        return 1;
      }
    } else if (Arg.rfind("--trace-json=", 0) == 0) {
      TraceJsonPath = Arg.substr(13);
      if (TraceJsonPath.empty()) {
        std::fprintf(stderr, "error: --trace-json expects a path\n");
        return 1;
      }
    } else if (Arg.rfind("--allocator=", 0) == 0) {
      Opts.DefaultAllocator = Arg.substr(12);
      if (Opts.DefaultAllocator.empty()) {
        std::fprintf(stderr, "error: --allocator expects a name\n");
        return 1;
      }
    } else if (Arg == "--verbose") {
      Opts.Verbose = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      usage();
      return 1;
    }
    if (Bad) {
      usage();
      return 1;
    }
  }

  if (!QueueLowSet)
    Opts.QueueLowWatermark = Opts.QueueCapacity - Opts.QueueCapacity / 4;
  if (Opts.QueueLowWatermark >= Opts.QueueCapacity) {
    std::fprintf(stderr, "error: --queue-low must be below --queue-depth\n");
    return 1;
  }

  // Start collecting before the first request so every span carries its
  // `req` id; the buffer is written at exit.
  if (!TraceJsonPath.empty())
    trace::start();

  Server S(Opts);
  std::string Error;
  if (!S.start(&Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  GServer = &S;
  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);

  // Scripts and tests parse this line to find an ephemeral port; flush so
  // it is visible before the first request.
  std::printf("pdgc-serve: listening on port %u (workers=%u queue=%u/%u "
              "drain-budget-ms=%u)\n",
              S.port(), Opts.Workers, Opts.QueueLowWatermark,
              Opts.QueueCapacity, Opts.DrainBudgetMs);
  if (Opts.IsolateWorkers > 0)
    std::printf("pdgc-serve: isolating allocations in %u worker "
                "process%s (grace-ms=%u quarantine-crashes=%u)\n",
                Opts.IsolateWorkers, Opts.IsolateWorkers == 1 ? "" : "es",
                Opts.WorkerGraceMs, Opts.QuarantineCrashes);
  std::fflush(stdout);

  ServerSummary Sum = S.run();
  GServer = nullptr;

  std::printf("pdgc-serve: drained %s budget: accepted=%llu requests=%llu "
              "ok=%llu degraded=%llu rejected=%llu timeout=%llu "
              "malformed=%llu internal=%llu crashed=%llu "
              "transport-errors=%llu p50-us=%llu p99-us=%llu\n",
              Sum.DrainedInBudget ? "within" : "OVER",
              static_cast<unsigned long long>(Sum.Accepted),
              static_cast<unsigned long long>(Sum.Requests),
              static_cast<unsigned long long>(Sum.Ok),
              static_cast<unsigned long long>(Sum.Degraded),
              static_cast<unsigned long long>(Sum.Rejected),
              static_cast<unsigned long long>(Sum.Timeout),
              static_cast<unsigned long long>(Sum.Malformed),
              static_cast<unsigned long long>(Sum.Internal),
              static_cast<unsigned long long>(Sum.Crashed),
              static_cast<unsigned long long>(Sum.TransportErrors),
              static_cast<unsigned long long>(Sum.P50Micros),
              static_cast<unsigned long long>(Sum.P99Micros));
  if (Opts.IsolateWorkers > 0)
    std::printf("pdgc-serve: workers: spawns=%llu respawns=%llu "
                "crashes=%llu kills=%llu replays=%llu quarantined=%llu\n",
                static_cast<unsigned long long>(Sum.WorkerSpawns),
                static_cast<unsigned long long>(Sum.WorkerRespawns),
                static_cast<unsigned long long>(Sum.WorkerCrashes),
                static_cast<unsigned long long>(Sum.WorkerKills),
                static_cast<unsigned long long>(Sum.WorkerReplays),
                static_cast<unsigned long long>(Sum.WorkerQuarantined));
  if (!Sum.RecentRequests.empty()) {
    std::printf("pdgc-serve: last requests (newest first):\n%s",
                Sum.RecentRequests.c_str());
  }

  if (!TraceJsonPath.empty()) {
    trace::stop();
    std::string TraceError;
    if (!trace::writeJson(TraceJsonPath, &TraceError))
      std::fprintf(stderr, "warning: --trace-json: %s\n", TraceError.c_str());
  }
  return Sum.DrainedInBudget ? 0 : 3;
}
