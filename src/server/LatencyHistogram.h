//===- server/LatencyHistogram.h - Lock-free latency percentiles -*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-footprint latency histogram for the serving path: `record` is
/// one relaxed atomic increment (safe from every worker and connection
/// thread, never a lock), and `percentile` walks the buckets at report
/// time. Buckets are geometric — powers of two of microseconds, each
/// split into four linear sub-buckets — so the relative quantile error is
/// bounded at ~12.5% across the whole 1µs..~1hour range while the entire
/// histogram stays 128 counters, cheap enough to keep always-on.
///
/// This is the same design trade HdrHistogram-style recorders make: the
/// service cares that p99 moved from 2ms to 40ms, not whether it is
/// 40.0ms or 41.3ms. Exact order statistics would need per-request
/// samples, which is an unbounded allocation on the request path — the
/// thing pdgc-serve categorically refuses to do.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SERVER_LATENCYHISTOGRAM_H
#define PDGC_SERVER_LATENCYHISTOGRAM_H

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace pdgc {
namespace server {

class LatencyHistogram {
public:
  /// 32 power-of-two decades x 4 linear sub-buckets.
  static constexpr unsigned NumBuckets = 128;

  /// Records one sample (relaxed; callable from any thread).
  void record(std::uint64_t Micros) {
    Buckets[bucketFor(Micros)].fetch_add(1, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
    SumMicros.fetch_add(Micros, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    return Count.load(std::memory_order_relaxed);
  }

  /// Mean in microseconds (0 with no samples).
  std::uint64_t meanMicros() const {
    std::uint64_t N = count();
    return N ? SumMicros.load(std::memory_order_relaxed) / N : 0;
  }

  /// Sum of all recorded samples in microseconds (for exposition _sum).
  std::uint64_t sumMicros() const {
    return SumMicros.load(std::memory_order_relaxed);
  }

  /// The \p Q-th quantile (Q in [0, 1]) in microseconds, estimated by
  /// linear interpolation of the quantile's rank across the matched
  /// bucket's [lower, upper] range; 0 with no samples. This is the one
  /// shared implementation of the bucket math — pdgc-loadgen's report
  /// and the daemon's /metrics exposition both call it, so a scrape and
  /// a load test always agree to within one bucket's resolution.
  std::uint64_t quantile(double Q) const;

  /// Upper bound of the bucket holding the \p P-th percentile sample
  /// (P in [0, 100]), in microseconds; 0 with no samples. Kept for
  /// callers that want the conservative bucket ceiling rather than the
  /// interpolated estimate of quantile().
  std::uint64_t percentileMicros(double P) const;

  /// {"count":N,"mean-us":M,"p50-us":...,"p90-us":...,"p99-us":...}
  std::string toJson() const;

private:
  static unsigned bucketFor(std::uint64_t Micros);
  static std::uint64_t bucketUpperBound(unsigned Bucket);
  static std::uint64_t bucketLowerBound(unsigned Bucket);

  std::array<std::atomic<std::uint64_t>, NumBuckets> Buckets{};
  std::atomic<std::uint64_t> Count{0};
  std::atomic<std::uint64_t> SumMicros{0};
};

} // namespace server
} // namespace pdgc

#endif // PDGC_SERVER_LATENCYHISTOGRAM_H
