//===- server/Server.h - Allocation-as-a-service daemon core ----*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-running allocation service behind `pdgc-serve`. One `Server`
/// owns a listening TCP socket, a thread per live connection, and a
/// fixed pool of allocation workers fed through an `AdmissionQueue`. The
/// design goal is the ROADMAP's serving story: the process must stay up
/// — and answer with a *typed* status — under overload, chaos injection,
/// malformed input, and shutdown, never trading robustness for a crash.
///
/// Request life cycle:
///
///   accept -> read frame -> parse message ----------------+
///     |            |             |                        |
///     |        MALFORMED     MALFORMED            STATUS/STATS/PING
///     |        (+close on    (answer, keep        answered inline
///     |         framing)      connection)                 |
///     v                                                   v
///   tryPush -> Shed: REJECTED + retry-after    Closed: REJECTED draining
///     |
///   worker: parse IR -> verify -> allocateWithFallback under the
///   request deadline -> OK | DEGRADED | TIMEOUT | MALFORMED | INTERNAL
///
/// Robustness mechanics, each mapped to an existing primitive:
///
///  * **admission control / shedding** — AdmissionQueue watermarks; a
///    full queue answers REJECTED *now* instead of growing latency debt;
///  * **per-request deadline** — the budget starts at admission, so
///    queue wait counts against it; workers install it as
///    DriverOptions::CancelAt (+ per-tier TimeBudgetMs), and the
///    guarantee-tier exemption means an expired request usually still
///    gets a DEGRADED spill-everything answer — a bounded-cost result,
///    not a dropped one;
///  * **request isolation** — every per-request stage runs under
///    ScopedErrorTrap with a catch-all: parser/verifier rejects become
///    MALFORMED, injected faults and fatal checks become INTERNAL, and
///    only the one request dies;
///  * **graceful drain** — requestStop() (async-signal-safe: one write
///    to a self-pipe) stops the acceptor, closes the queue, arms a drain
///    deadline that tightens every in-flight request, and run() returns
///    once the backlog is served;
///  * **introspection** — STATUS/STATS answer from the Stats registry,
///    the queue gauges, and a lock-free latency histogram (p50/p99).
///
/// **HTTP observability plane.** The same port also answers HTTP/1.1:
/// a connection's first byte picks its plane (uppercase ASCII = an HTTP
/// method; anything else = a binary frame length — see
/// server/Http.h). Endpoints: `/healthz` (liveness), `/readyz` (503
/// while draining or shedding), `/metrics` (Prometheus text exposition
/// 0.0.4), `/stats` (the observability-report JSON), and `/requests?n=K`
/// (the flight recorder — see server/FlightRecorder.h). Every request on
/// either plane is stamped with a monotonic request id that the flight
/// recorder, the drain summary, and the `req` argument on trace spans
/// all share, so "which request, which tier, why" is answerable from a
/// curl and a trace capture alone.
///
/// **Crash containment** (`IsolateWorkers > 0`): ALLOCs execute in a
/// supervised pool of forked sandbox subprocesses (server/WorkerPool.h)
/// instead of on the worker threads, so a hard fault — a real SIGSEGV,
/// `std::bad_alloc`, a loop that never polls its deadline — kills one
/// worker and earns a typed CRASHED response while the daemon, and every
/// other request, survives. Comes with a watchdog (SIGKILL past deadline
/// + grace), crash dossiers under CrashDir, and a per-input circuit
/// breaker (REJECTED `quarantined` after QuarantineCrashes hits). The
/// default (0) keeps the in-process path byte-identical to before.
///
/// Chaos surface: PDGC_FAULT_POINT sites `server.accept`,
/// `server.frame`, `server.parse`, `server.enqueue`, `server.respond`,
/// `server.http.parse`, `server.http.respond`
/// cover the connection path the way the `driver.*`/allocator sites
/// already cover the compute path; tests/test_server.cpp sweeps them.
/// With isolation on, `worker.spawn/dispatch/collect` cover the
/// supervisor and `worker.abort` raises a genuine SIGABRT in the child.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SERVER_SERVER_H
#define PDGC_SERVER_SERVER_H

#include "server/Protocol.h"

#include <cstdint>
#include <string>

#include <memory>

namespace pdgc {
namespace server {

/// Tuning knobs; the defaults serve a loopback smoke test out of the box.
struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back with Server::port()).
  std::uint16_t Port = 0;
  /// Allocation worker threads.
  unsigned Workers = 2;
  /// Admission queue high watermark (hard depth bound).
  unsigned QueueCapacity = 64;
  /// Depth shedding stops at (watermark hysteresis); must be < capacity.
  unsigned QueueLowWatermark = 48;
  /// Concurrent connections; one past the cap is answered REJECTED and
  /// closed.
  unsigned MaxConnections = 64;
  /// Per-request wall budget when the request does not carry budget-ms.
  unsigned DefaultBudgetMs = 2000;
  /// Hard ceiling a request's budget-ms may ask for.
  unsigned MaxBudgetMs = 60000;
  /// Backoff hint attached to REJECTED responses.
  unsigned RetryAfterMs = 50;
  /// Wall budget for finishing in-flight work after requestStop().
  unsigned DrainBudgetMs = 5000;
  /// Frame payload cap (see server/FrameCodec.h). Also bounds the bodies
  /// the server itself emits (STATS, /metrics, /requests).
  std::uint32_t MaxFrameBytes = 4u << 20;
  /// Concurrent HTTP-plane connections (a scraper plus a few curls);
  /// one past the cap is answered 503 and closed. Counted separately
  /// from MaxConnections so a misbehaving dashboard cannot starve the
  /// allocation plane of connection slots, nor vice versa.
  unsigned HttpMaxConns = 16;
  /// Flight-recorder capacity: the last N completed requests held for
  /// /requests, the drain summary, and post-mortems. 0 keeps one slot.
  std::size_t FlightRecords = 128;
  /// Registers per class of the service's target machine.
  unsigned Regs = 24;
  /// Leading allocator tier when a request does not name one.
  std::string DefaultAllocator = "full-preferences";
  /// Crash containment: number of forked sandbox worker processes that
  /// execute ALLOCs out-of-process. 0 (default) = in-process execution,
  /// byte-identical to the pre-isolation server. When set, it also
  /// determines the dispatcher thread count (Workers is ignored).
  unsigned IsolateWorkers = 0;
  /// Crash-dossier directory (empty = dossiers off). Isolation only.
  std::string CrashDir;
  /// Circuit breaker: crashes of one input before it is quarantined.
  unsigned QuarantineCrashes = 3;
  /// Quarantine expiry in ms since the input's last crash (0 = never).
  unsigned QuarantineTtlMs = 0;
  /// Watchdog grace past the request deadline before a worker SIGKILL.
  unsigned WorkerGraceMs = 500;
  /// Worker RLIMIT_AS in MiB (0 = off; keep off under sanitizers).
  unsigned WorkerAddressSpaceMb = 0;
  /// Worker RLIMIT_CPU in seconds (0 = off).
  unsigned WorkerCpuSeconds = 0;
  /// Log one line per connection/drain event to stderr.
  bool Verbose = false;
};

/// Counters the daemon prints at exit (live values are also served by
/// STATUS/STATS; these are the lifetime totals).
struct ServerSummary {
  std::uint64_t Accepted = 0;       ///< Connections accepted.
  std::uint64_t Requests = 0;       ///< Frames that parsed into requests.
  std::uint64_t Ok = 0;             ///< ALLOC answered OK.
  std::uint64_t Degraded = 0;       ///< ALLOC answered DEGRADED.
  std::uint64_t Rejected = 0;       ///< Shed + refused-while-draining.
  std::uint64_t Timeout = 0;        ///< ALLOC answered TIMEOUT.
  std::uint64_t Malformed = 0;      ///< Bad frames/messages/IR.
  std::uint64_t Internal = 0;       ///< Faults + trapped fatal checks.
  std::uint64_t Crashed = 0;        ///< ALLOC answered CRASHED (isolation).
  std::uint64_t TransportErrors = 0; ///< Truncated/failed reads & writes.
  std::uint64_t HttpRequests = 0;   ///< HTTP-plane requests served.
  /// Worker-pool lifetime totals (all zero when IsolateWorkers == 0).
  std::uint64_t WorkerSpawns = 0;
  std::uint64_t WorkerRespawns = 0;
  std::uint64_t WorkerCrashes = 0;
  std::uint64_t WorkerKills = 0;
  std::uint64_t WorkerReplays = 0;
  std::uint64_t WorkerQuarantined = 0;
  std::uint64_t P50Micros = 0;      ///< Executed-ALLOC latency percentiles.
  std::uint64_t P99Micros = 0;
  bool DrainedInBudget = true;      ///< Drain met DrainBudgetMs.
  /// Flight-recorder tail (text table, newest first) captured at drain —
  /// the daemon prints it so a post-mortem of a SIGTERM'd process starts
  /// with its last requests already on the console.
  std::string RecentRequests;
};

class Server {
public:
  explicit Server(const ServerOptions &Options);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds and listens on 127.0.0.1, spawns the workers and the
  /// acceptor. Returns false (and fills \p Error) when the socket layer
  /// refuses — the only failure this class cannot degrade around.
  bool start(std::string *Error = nullptr);

  /// The bound port (valid after start(); the way ephemeral-port tests
  /// and scripts find the server).
  std::uint16_t port() const;

  /// Begins graceful drain: stop accepting, refuse new work, finish the
  /// backlog within DrainBudgetMs. Async-signal-safe (one write() on a
  /// pre-opened pipe) — call it straight from a SIGTERM/SIGINT handler.
  void requestStop();

  /// Blocks until drain completes and every thread is joined. Returns
  /// the lifetime summary. Safe to call once after start().
  ServerSummary run();

  /// True once requestStop() was observed.
  bool draining() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace server
} // namespace pdgc

#endif // PDGC_SERVER_SERVER_H
