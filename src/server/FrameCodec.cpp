//===- server/FrameCodec.cpp - Length-prefixed frame transport -------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "server/FrameCodec.h"

#include <cerrno>
#include <limits>
#include <unistd.h>

using namespace pdgc;
using namespace pdgc::server;

const char *server::frameResultName(FrameResult R) {
  switch (R) {
  case FrameResult::Ok:
    return "ok";
  case FrameResult::ClosedClean:
    return "closed";
  case FrameResult::Truncated:
    return "truncated";
  case FrameResult::Oversized:
    return "oversized";
  case FrameResult::IoError:
    return "io-error";
  }
  return "io-error";
}

namespace {

/// Reads exactly \p Len bytes. Returns Ok, or ClosedClean when EOF hits
/// before the *first* byte, Truncated when it hits later, IoError on a
/// failing read.
FrameResult readFull(int Fd, unsigned char *Buf, size_t Len) {
  size_t Got = 0;
  while (Got < Len) {
    ssize_t N = ::read(Fd, Buf + Got, Len - Got);
    if (N > 0) {
      Got += static_cast<size_t>(N);
      continue;
    }
    if (N == 0)
      return Got == 0 ? FrameResult::ClosedClean : FrameResult::Truncated;
    if (errno == EINTR)
      continue;
    return FrameResult::IoError;
  }
  return FrameResult::Ok;
}

bool writeFull(int Fd, const unsigned char *Buf, size_t Len) {
  size_t Sent = 0;
  while (Sent < Len) {
    ssize_t N = ::write(Fd, Buf + Sent, Len - Sent);
    if (N > 0) {
      Sent += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    return false;
  }
  return true;
}

} // namespace

FrameResult server::readFrame(int Fd, std::string &Payload,
                              std::uint32_t MaxBytes) {
  unsigned char Header[4];
  FrameResult R = readFull(Fd, Header, sizeof Header);
  if (R != FrameResult::Ok)
    // Mid-header EOF is Truncated already; a clean EOF stays clean.
    return R;
  std::uint32_t Len = (static_cast<std::uint32_t>(Header[0]) << 24) |
                      (static_cast<std::uint32_t>(Header[1]) << 16) |
                      (static_cast<std::uint32_t>(Header[2]) << 8) |
                      static_cast<std::uint32_t>(Header[3]);
  // The cap check runs before the allocation — the whole point.
  if (Len > MaxBytes)
    return FrameResult::Oversized;
  Payload.resize(Len);
  if (Len == 0)
    return FrameResult::Ok;
  R = readFull(Fd, reinterpret_cast<unsigned char *>(Payload.data()), Len);
  // EOF anywhere inside a promised payload is truncation, even at byte 0.
  if (R == FrameResult::ClosedClean)
    return FrameResult::Truncated;
  return R;
}

bool server::writeFrame(int Fd, const std::string &Payload) {
  if (Payload.size() > std::numeric_limits<std::uint32_t>::max())
    return false;
  std::uint32_t Len = static_cast<std::uint32_t>(Payload.size());
  unsigned char Header[4] = {static_cast<unsigned char>(Len >> 24),
                             static_cast<unsigned char>(Len >> 16),
                             static_cast<unsigned char>(Len >> 8),
                             static_cast<unsigned char>(Len)};
  // One buffer, one write: a separate 4-byte header write makes every
  // frame eat a Nagle + delayed-ACK round trip (~40-200ms) on real TCP.
  std::string Wire;
  Wire.reserve(sizeof Header + Payload.size());
  Wire.append(reinterpret_cast<const char *>(Header), sizeof Header);
  Wire.append(Payload);
  return writeFull(Fd,
                   reinterpret_cast<const unsigned char *>(Wire.data()),
                   Wire.size());
}
