//===- server/AdmissionQueue.h - Bounded queue with load shedding -*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The admission-control heart of pdgc-serve: a bounded MPMC queue whose
/// producers never block. `tryPush` either admits the item or answers
/// *now* with `Shed` (the caller turns that into REJECTED plus a
/// retry-after hint) — queuing unboundedly is exactly the failure mode a
/// loaded service must not have, because memory, latency, and deadline
/// debt all grow with the backlog.
///
/// Shedding uses high/low watermark hysteresis rather than a single
/// threshold: once depth reaches the high watermark the queue sheds
/// *until depth falls back to the low watermark*, not until one slot
/// frees up. A single threshold flaps — admit one, shed one, admit one —
/// which keeps the queue pinned at its worst-case latency; hysteresis
/// converts an overload episode into one burst of fast rejections
/// followed by recovery headroom.
///
/// `close()` flips the queue into drain mode: producers get `Closed`
/// (REJECTED, "draining"), consumers keep popping until the backlog is
/// empty and then `pop` returns false. That is precisely the SIGTERM
/// contract — stop admitting, finish what was promised.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SERVER_ADMISSIONQUEUE_H
#define PDGC_SERVER_ADMISSIONQUEUE_H

#include <condition_variable>
#include <deque>
#include <mutex>

namespace pdgc {
namespace server {

/// tryPush verdicts.
enum class Admission {
  Admitted, ///< Item enqueued.
  Shed,     ///< Over the high watermark (or still above low): rejected.
  Closed,   ///< Queue is draining/closed: rejected.
};

template <typename T> class AdmissionQueue {
public:
  /// \p Capacity is the high watermark (and the hard bound); \p Low is
  /// the depth shedding stops at. Low >= Capacity degenerates to a
  /// single-threshold bound.
  AdmissionQueue(std::size_t Capacity, std::size_t Low)
      : Capacity(Capacity ? Capacity : 1),
        Low(Low < this->Capacity ? Low : this->Capacity - 1) {}

  Admission tryPush(T Item) {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (IsClosed)
      return Admission::Closed;
    if (Shedding) {
      if (Items.size() > Low)
        return Admission::Shed;
      Shedding = false; // Recovered to the low watermark; admit again.
    } else if (Items.size() >= Capacity) {
      Shedding = true;
      return Admission::Shed;
    }
    Items.push_back(std::move(Item));
    Available.notify_one();
    return Admission::Admitted;
  }

  /// Blocks until an item is available (true) or the queue is closed and
  /// empty (false).
  bool pop(T &Out) {
    std::unique_lock<std::mutex> Lock(Mutex);
    Available.wait(Lock, [this] { return IsClosed || !Items.empty(); });
    if (Items.empty())
      return false;
    Out = std::move(Items.front());
    Items.pop_front();
    return true;
  }

  /// Stops admitting; wakes every blocked consumer so they can drain the
  /// backlog and exit.
  void close() {
    std::lock_guard<std::mutex> Lock(Mutex);
    IsClosed = true;
    Available.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return IsClosed;
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Items.size();
  }

  /// True while the hysteresis has the queue in shed mode.
  bool shedding() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Shedding;
  }

  std::size_t capacity() const { return Capacity; }
  std::size_t lowWatermark() const { return Low; }

private:
  const std::size_t Capacity;
  const std::size_t Low;
  mutable std::mutex Mutex;
  std::condition_variable Available;
  std::deque<T> Items;
  bool IsClosed = false;
  bool Shedding = false;
};

} // namespace server
} // namespace pdgc

#endif // PDGC_SERVER_ADMISSIONQUEUE_H
