//===- server/AdmissionQueue.h - Bounded queue with load shedding -*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The admission-control heart of pdgc-serve: a bounded MPMC queue whose
/// producers never block. `tryPush` either admits the item or answers
/// *now* with `Shed` (the caller turns that into REJECTED plus a
/// retry-after hint) — queuing unboundedly is exactly the failure mode a
/// loaded service must not have, because memory, latency, and deadline
/// debt all grow with the backlog.
///
/// Shedding uses high/low watermark hysteresis rather than a single
/// threshold: once depth reaches the high watermark the queue sheds
/// *until depth falls back to the low watermark*, not until one slot
/// frees up. A single threshold flaps — admit one, shed one, admit one —
/// which keeps the queue pinned at its worst-case latency; hysteresis
/// converts an overload episode into one burst of fast rejections
/// followed by recovery headroom.
///
/// `close()` flips the queue into drain mode: producers get `Closed`
/// (REJECTED, "draining"), consumers keep popping until the backlog is
/// empty and then `pop` returns false. That is precisely the SIGTERM
/// contract — stop admitting, finish what was promised.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SERVER_ADMISSIONQUEUE_H
#define PDGC_SERVER_ADMISSIONQUEUE_H

#include "support/ThreadAnnotations.h"

#include <deque>

namespace pdgc {
namespace server {

/// tryPush verdicts.
enum class Admission {
  Admitted, ///< Item enqueued.
  Shed,     ///< Over the high watermark (or still above low): rejected.
  Closed,   ///< Queue is draining/closed: rejected.
};

template <typename T> class AdmissionQueue {
public:
  /// \p CapacityIn is the high watermark (and the hard bound); \p LowIn
  /// is the depth shedding stops at. Low >= Capacity degenerates to a
  /// single-threshold bound.
  AdmissionQueue(std::size_t CapacityIn, std::size_t LowIn)
      : Capacity(CapacityIn ? CapacityIn : 1),
        Low(LowIn < this->Capacity ? LowIn : this->Capacity - 1) {}

  Admission tryPush(T Item) {
    MutexLock Lock(Mu);
    if (IsClosed)
      return Admission::Closed;
    if (Shedding) {
      if (Items.size() > Low)
        return Admission::Shed;
      Shedding = false; // Recovered to the low watermark; admit again.
    } else if (Items.size() >= Capacity) {
      Shedding = true;
      return Admission::Shed;
    }
    Items.push_back(std::move(Item));
    Available.notify_one();
    return Admission::Admitted;
  }

  /// Blocks until an item is available (true) or the queue is closed and
  /// empty (false).
  bool pop(T &Out) {
    MutexLock Lock(Mu);
    while (!IsClosed && Items.empty())
      Available.wait(Lock);
    if (Items.empty())
      return false;
    Out = std::move(Items.front());
    Items.pop_front();
    return true;
  }

  /// Stops admitting; wakes every blocked consumer so they can drain the
  /// backlog and exit.
  void close() {
    MutexLock Lock(Mu);
    IsClosed = true;
    Available.notify_all();
  }

  bool closed() const {
    MutexLock Lock(Mu);
    return IsClosed;
  }

  std::size_t depth() const {
    MutexLock Lock(Mu);
    return Items.size();
  }

  /// True while the hysteresis has the queue in shed mode.
  bool shedding() const {
    MutexLock Lock(Mu);
    return Shedding;
  }

  std::size_t capacity() const { return Capacity; }
  std::size_t lowWatermark() const { return Low; }

private:
  const std::size_t Capacity;
  const std::size_t Low;
  mutable Mutex Mu;
  CondVar Available;
  std::deque<T> Items PDGC_GUARDED_BY(Mu);
  bool IsClosed PDGC_GUARDED_BY(Mu) = false;
  bool Shedding PDGC_GUARDED_BY(Mu) = false;
};

} // namespace server
} // namespace pdgc

#endif // PDGC_SERVER_ADMISSIONQUEUE_H
