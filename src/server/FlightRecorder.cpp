//===- server/FlightRecorder.cpp - Last-N request ring buffer --------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "server/FlightRecorder.h"

#include "support/Stats.h"
#include "support/Tracing.h"

#include <algorithm>
#include <cstdio>

using namespace pdgc;
using namespace pdgc::server;

FlightRecorder::FlightRecorder(std::size_t Capacity)
    : Cap(Capacity < 1 ? 1 : Capacity), Slots(new Slot[Cap]) {}

void FlightRecorder::record(const FlightRecord &R) {
  const std::uint64_t Index = Next.fetch_add(1, std::memory_order_relaxed);
  Slot &S = Slots[Index % Cap];

  std::uint64_t Seq = S.Seq.load(std::memory_order_acquire);
  // Odd means another writer lapped the whole ring and is mid-copy in
  // this very slot. Waiting would make the recorder a contention point
  // on the hot respond path; dropping one forensic record is cheaper.
  if ((Seq & 1) != 0 ||
      !S.Seq.compare_exchange_strong(Seq, Seq + 1, std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
    PDGC_STAT("flight", "contended").inc();
    return;
  }
  S.Rec = R;
  S.Seq.store(Seq + 2, std::memory_order_release);
  PDGC_STAT("flight", "recorded").inc();
}

std::vector<FlightRecord> FlightRecorder::lastN(std::size_t N) const {
  const std::uint64_t End = Next.load(std::memory_order_acquire);
  const std::uint64_t Have = End < Cap ? End : Cap;
  const std::uint64_t Want = N < Have ? N : Have;

  std::vector<FlightRecord> Out;
  Out.reserve(Want);
  for (std::uint64_t I = 0; I < Have && Out.size() < Want; ++I) {
    const Slot &S = Slots[(End - 1 - I) % Cap];
    const std::uint64_t Before = S.Seq.load(std::memory_order_acquire);
    if ((Before & 1) != 0 || Before == 0)
      continue; // Mid-write or never written.
    FlightRecord Copy = S.Rec;
    const std::uint64_t After = S.Seq.load(std::memory_order_acquire);
    if (After != Before)
      continue; // Torn: a writer got in between the two loads.
    Out.push_back(Copy);
  }
  return Out;
}

std::string pdgc::server::flightRecordJson(const FlightRecord &R) {
  std::string J = "{";
  J += "\"id\":" + std::to_string(R.Id);
  J += ",\"kind\":\"" + trace::jsonEscape(R.Kind) + "\"";
  J += ",\"peer\":\"" + trace::jsonEscape(R.Peer) + "\"";
  J += ",\"target\":\"" + trace::jsonEscape(R.Target) + "\"";
  J += ",\"status\":\"" + trace::jsonEscape(R.Status) + "\"";
  J += ",\"bytes-in\":" + std::to_string(R.BytesIn);
  J += ",\"bytes-out\":" + std::to_string(R.BytesOut);
  J += ",\"queue-us\":" + std::to_string(R.QueueMicros);
  J += ",\"wall-us\":" + std::to_string(R.WallMicros);
  J += ",\"detail\":\"" + trace::jsonEscape(R.Detail) + "\"";
  J += "}";
  return J;
}

std::string FlightRecorder::toJson(std::size_t N) const {
  const std::vector<FlightRecord> Records = lastN(N);
  std::string J = "{\"recorded\":" + std::to_string(recordedCount()) +
                  ",\"capacity\":" + std::to_string(Cap) + ",\"requests\":[";
  for (std::size_t I = 0; I < Records.size(); ++I) {
    if (I)
      J += ",";
    J += flightRecordJson(Records[I]);
  }
  J += "]}";
  return J;
}

std::string FlightRecorder::renderText(std::size_t N) const {
  const std::vector<FlightRecord> Records = lastN(N);
  std::string Out;
  if (Records.empty())
    return Out;
  char Line[256];
  std::snprintf(Line, sizeof(Line), "  %6s %-6s %-21s %-18s %-9s %9s %9s  %s\n",
                "id", "kind", "peer", "target", "status", "queue-us",
                "wall-us", "detail");
  Out += Line;
  for (const FlightRecord &R : Records) {
    std::snprintf(Line, sizeof(Line),
                  "  %6llu %-6s %-21s %-18s %-9s %9llu %9llu  %s\n",
                  static_cast<unsigned long long>(R.Id), R.Kind, R.Peer,
                  R.Target, R.Status,
                  static_cast<unsigned long long>(R.QueueMicros),
                  static_cast<unsigned long long>(R.WallMicros), R.Detail);
    Out += Line;
  }
  return Out;
}
