//===- server/Protocol.cpp - pdgc-serve wire protocol ----------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

#include <cctype>

using namespace pdgc;
using namespace pdgc::server;

const char *server::requestTypeName(RequestType T) {
  switch (T) {
  case RequestType::Alloc:
    return "ALLOC";
  case RequestType::Status:
    return "STATUS";
  case RequestType::Stats:
    return "STATS";
  case RequestType::Ping:
    return "PING";
  }
  return "PING";
}

const char *server::responseStatusName(ResponseStatus S) {
  switch (S) {
  case ResponseStatus::Ok:
    return "OK";
  case ResponseStatus::Degraded:
    return "DEGRADED";
  case ResponseStatus::Rejected:
    return "REJECTED";
  case ResponseStatus::Timeout:
    return "TIMEOUT";
  case ResponseStatus::Malformed:
    return "MALFORMED";
  case ResponseStatus::Internal:
    return "INTERNAL";
  case ResponseStatus::Crashed:
    return "CRASHED";
  }
  return "INTERNAL";
}

namespace {

/// Splits the header section of \p Payload into first line + key/value
/// pairs, leaving everything after the first empty line in \p Body.
/// Returns false when there is no first line or a header lacks a colon.
struct ParsedMessage {
  std::string FirstLine;
  std::vector<std::pair<std::string, std::string>> Headers;
  std::string Body;
};

std::string trim(const std::string &S) {
  size_t B = 0, E = S.size();
  while (B != E && std::isspace(static_cast<unsigned char>(S[B])))
    ++B;
  while (E != B && std::isspace(static_cast<unsigned char>(S[E - 1])))
    --E;
  return S.substr(B, E - B);
}

bool splitMessage(const std::string &Payload, ParsedMessage &Out,
                  std::string &Error) {
  size_t Pos = 0;
  bool First = true;
  while (Pos <= Payload.size()) {
    size_t Nl = Payload.find('\n', Pos);
    std::string Line = Nl == std::string::npos
                           ? Payload.substr(Pos)
                           : Payload.substr(Pos, Nl - Pos);
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    Pos = Nl == std::string::npos ? Payload.size() + 1 : Nl + 1;
    if (First) {
      if (Line.empty()) {
        Error = "empty message";
        return false;
      }
      Out.FirstLine = Line;
      First = false;
      continue;
    }
    if (Line.empty()) {
      // End of headers; the rest is the body, verbatim.
      if (Pos <= Payload.size())
        Out.Body = Payload.substr(Pos);
      return true;
    }
    size_t Colon = Line.find(':');
    if (Colon == std::string::npos) {
      Error = "header line without ':': " + Line;
      return false;
    }
    Out.Headers.emplace_back(trim(Line.substr(0, Colon)),
                             trim(Line.substr(Colon + 1)));
  }
  return true; // Headers ran to EOF; empty body.
}

/// Strict bounded decimal parse for header values; rejects garbage
/// instead of wrapping or throwing.
bool parseHeaderNumber(const std::string &Value, unsigned long Max,
                       unsigned &Out) {
  if (Value.empty() || Value.size() > 9)
    return false;
  unsigned long V = 0;
  for (char C : Value) {
    if (!std::isdigit(static_cast<unsigned char>(C)))
      return false;
    V = V * 10 + static_cast<unsigned long>(C - '0');
  }
  if (V > Max)
    return false;
  Out = static_cast<unsigned>(V);
  return true;
}

/// "PDGC/1 VERB" -> VERB; empty on mismatch.
std::string verbOf(const std::string &FirstLine, std::string &Error) {
  const std::string Magic = std::string(ProtocolMagic) + " ";
  if (FirstLine.rfind(Magic, 0) != 0) {
    Error = "bad magic: expected '" + std::string(ProtocolMagic) +
            " <verb>', got '" + FirstLine + "'";
    return "";
  }
  return trim(FirstLine.substr(Magic.size()));
}

} // namespace

std::string server::serializeRequest(const Request &R) {
  std::string Out = std::string(ProtocolMagic) + " " +
                    requestTypeName(R.Type) + "\n";
  if (R.BudgetMs != 0)
    Out += "budget-ms: " + std::to_string(R.BudgetMs) + "\n";
  if (R.MaxRounds != 0)
    Out += "max-rounds: " + std::to_string(R.MaxRounds) + "\n";
  if (!R.Allocator.empty())
    Out += "allocator: " + R.Allocator + "\n";
  Out += "\n";
  Out += R.Body;
  return Out;
}

bool server::parseRequest(const std::string &Payload, Request &Out,
                          std::string &Error) {
  ParsedMessage M;
  if (!splitMessage(Payload, M, Error))
    return false;
  std::string Verb = verbOf(M.FirstLine, Error);
  if (Verb.empty())
    return false;
  if (Verb == "ALLOC")
    Out.Type = RequestType::Alloc;
  else if (Verb == "STATUS")
    Out.Type = RequestType::Status;
  else if (Verb == "STATS")
    Out.Type = RequestType::Stats;
  else if (Verb == "PING")
    Out.Type = RequestType::Ping;
  else {
    Error = "unknown request verb '" + Verb + "'";
    return false;
  }
  for (const auto &[Key, Value] : M.Headers) {
    if (Key == "budget-ms") {
      if (!parseHeaderNumber(Value, 3600000, Out.BudgetMs)) {
        Error = "bad budget-ms value '" + Value + "'";
        return false;
      }
    } else if (Key == "max-rounds") {
      if (!parseHeaderNumber(Value, 100000, Out.MaxRounds)) {
        Error = "bad max-rounds value '" + Value + "'";
        return false;
      }
    } else if (Key == "allocator") {
      if (Value.empty() || Value.size() > 128) {
        Error = "bad allocator value";
        return false;
      }
      Out.Allocator = Value;
    }
    // Unknown headers are ignored so the protocol can grow.
  }
  Out.Body = std::move(M.Body);
  return true;
}

std::string server::serializeResponse(const Response &R) {
  std::string Out = std::string(ProtocolMagic) + " " +
                    responseStatusName(R.Status) + "\n";
  if (R.RetryAfterMs != 0)
    Out += "retry-after-ms: " + std::to_string(R.RetryAfterMs) + "\n";
  if (!R.ServedBy.empty())
    Out += "served-by: " + R.ServedBy + "\n";
  if (R.Rounds != 0)
    Out += "rounds: " + std::to_string(R.Rounds) + "\n";
  Out += "wall-ms: " + std::to_string(R.WallMs) + "\n";
  if (!R.Error.empty()) {
    // Keep the diagnostic one header line long.
    std::string OneLine = R.Error;
    for (char &C : OneLine)
      if (C == '\n' || C == '\r')
        C = ' ';
    Out += "error: " + OneLine + "\n";
  }
  Out += "\n";
  Out += R.Body;
  return Out;
}

bool server::parseResponse(const std::string &Payload, Response &Out,
                           std::string &Error) {
  ParsedMessage M;
  if (!splitMessage(Payload, M, Error))
    return false;
  std::string Word = verbOf(M.FirstLine, Error);
  if (Word.empty())
    return false;
  bool Known = false;
  for (ResponseStatus S :
       {ResponseStatus::Ok, ResponseStatus::Degraded, ResponseStatus::Rejected,
        ResponseStatus::Timeout, ResponseStatus::Malformed,
        ResponseStatus::Internal, ResponseStatus::Crashed})
    if (Word == responseStatusName(S)) {
      Out.Status = S;
      Known = true;
      break;
    }
  if (!Known) {
    Error = "unknown response status '" + Word + "'";
    return false;
  }
  for (const auto &[Key, Value] : M.Headers) {
    if (Key == "retry-after-ms") {
      if (!parseHeaderNumber(Value, 3600000, Out.RetryAfterMs)) {
        Error = "bad retry-after-ms value '" + Value + "'";
        return false;
      }
    } else if (Key == "served-by") {
      Out.ServedBy = Value;
    } else if (Key == "rounds") {
      if (!parseHeaderNumber(Value, 1000000, Out.Rounds)) {
        Error = "bad rounds value '" + Value + "'";
        return false;
      }
    } else if (Key == "wall-ms") {
      if (!parseHeaderNumber(Value, 3600000, Out.WallMs)) {
        Error = "bad wall-ms value '" + Value + "'";
        return false;
      }
    } else if (Key == "error") {
      Out.Error = Value;
    }
  }
  Out.Body = std::move(M.Body);
  return true;
}
