//===- server/AllocRunner.cpp - Shared ALLOC execution core ---------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "server/AllocRunner.h"

#include "ir/IRParser.h"
#include "ir/Verifier.h"
#include "machine/TargetDesc.h"
#include "regalloc/BatchDriver.h"
#include "support/Debug.h"
#include "support/Stats.h"
#include "support/Tracing.h"

#include <chrono>
#include <memory>
#include <new>
#include <vector>

using namespace pdgc;
using namespace pdgc::server;

Response pdgc::server::executeAllocRequest(const Request &Req,
                                           const AllocEnv &Env) {
  ScopedTimer Timer("server.alloc", "server");
  Response R;

  // Parse and verify inside the worker: input cost is request cost, and
  // a hostile function text must burn worker time, not connection time.
  std::string ParseError;
  std::unique_ptr<Function> F;
  {
    ScopedErrorTrap Trap;
    F = parseFunction(Req.Body, ParseError);
  }
  if (!F) {
    R.Status = ResponseStatus::Malformed;
    R.Error = "parse: " + ParseError;
    return R;
  }
  std::vector<std::string> VerifyErrors;
  if (!verifyFunction(*F, VerifyErrors)) {
    R.Status = ResponseStatus::Malformed;
    R.Error = "verify: " + VerifyErrors.front();
    return R;
  }

  TargetDesc Target = makeTarget(Env.Regs, PairingRule::Adjacent);
  DriverOptions Options;
  // The request deadline started at admission, so queue wait already
  // counts against it. CancelAt degrades to the guarantee tier on
  // expiry; TimeBudgetMs additionally bounds each tier. (In-process the
  // server passes an admission deadline possibly tightened by drain; an
  // isolated child derives it from the remaining-budget stamp.)
  Deadline Cancel =
      Env.CancelAt.isSet() ? Env.CancelAt : Deadline::afterMs(Req.BudgetMs);
  Deadline RequestDl = Env.RequestDeadline.isSet() ? Env.RequestDeadline
                                                   : Cancel;
  Options.CancelAt = Cancel;
  Options.TimeBudgetMs = Req.BudgetMs;
  if (Req.MaxRounds != 0)
    Options.MaxRounds = Req.MaxRounds;
  std::string Leading =
      Req.Allocator.empty() ? Env.DefaultAllocator : Req.Allocator;
  Options.FallbackChain = {{Leading, nullptr},
                           {"briggs+aggressive", nullptr},
                           {"spill-everything", nullptr}};

  // One request is a one-item batch: same hardened path, same fault
  // sites, same per-item exception backstop as `pdgc-alloc --batch`.
  std::vector<Function *> Fns{F.get()};
  std::vector<BatchItemResult> Results =
      BatchDriver(1).run(Fns, Target, Options);
  const BatchItemResult &Item = Results.front();

  if (!Item.ok()) {
    switch (Item.S.code()) {
    case ErrorCode::BudgetExceeded:
      R.Status = ResponseStatus::Timeout;
      break;
    case ErrorCode::ParseError:
    case ErrorCode::VerifyError:
      R.Status = ResponseStatus::Malformed;
      break;
    default:
      // An exhausted fallback chain reports ALLOCATOR_INTERNAL even when
      // every tier died of budget expiry; past the request deadline, the
      // deadline is the diagnosis the client can act on.
      R.Status = RequestDl.expired() ? ResponseStatus::Timeout
                                     : ResponseStatus::Internal;
      break;
    }
    R.Error = Item.S.toString();
    return R;
  }

  const AllocationOutcome &Out = Item.Out;
  R.Status = Out.Degradation.Degraded ? ResponseStatus::Degraded
                                      : ResponseStatus::Ok;
  R.ServedBy = Out.Degradation.ServedBy.empty()
                   ? Leading
                   : Out.Degradation.ServedBy;
  R.Rounds = Out.Rounds;
  for (const std::string &Failure : Out.Degradation.FailedTiers)
    R.Body += "; failed-tier: " + Failure + "\n";
  for (unsigned V = 0; V != Out.Assignment.size(); ++V)
    if (Out.Assignment[V] >= 0)
      R.Body += "v" + std::to_string(V) + " -> " +
                Target.regName(static_cast<PhysReg>(Out.Assignment[V])) +
                "\n";
  return R;
}

Response pdgc::server::runAllocGuarded(const std::function<Response()> &Body) {
  // Absolute backstop: no request may take a worker down, and every
  // failure mode — including allocation failure on a mega-function and
  // non-std::exception throws, which previously reached std::terminate —
  // becomes a typed INTERNAL the client can act on.
  try {
    return Body();
  } catch (const std::bad_alloc &) {
    PDGC_STAT("server", "worker_backstop").inc();
    Response R;
    R.Status = ResponseStatus::Internal;
    R.Error = "worker failed: out of memory (std::bad_alloc)";
    return R;
  } catch (const std::exception &E) {
    PDGC_STAT("server", "worker_backstop").inc();
    Response R;
    R.Status = ResponseStatus::Internal;
    R.Error = std::string("worker failed: ") + E.what();
    return R;
  } catch (...) {
    PDGC_STAT("server", "worker_backstop").inc();
    Response R;
    R.Status = ResponseStatus::Internal;
    R.Error = "worker failed: unknown exception";
    return R;
  }
}
