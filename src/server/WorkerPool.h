//===- server/WorkerPool.h - Supervised sandbox worker pool -----*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash containment for pdgc-serve (docs/ROBUSTNESS.md, "Crash
/// containment"): a pool of forked sandbox subprocesses
/// (support/Subprocess.h) that execute ALLOC requests out-of-process, so
/// a hard fault in the allocator — a real SIGSEGV, `std::bad_alloc` on a
/// mega-function, a loop that never reaches a `pollDeadline()` site —
/// kills one worker and one request instead of the daemon and every
/// in-flight request with it.
///
/// Supervision model (the worker lifecycle state machine):
///
/// \verbatim
///            spawn ok                dispatch
///   DEAD ---------------> IDLE <----------------+
///    ^  <--------------- /    \                 |
///    |    idle death    /      \                v
///    |                 reap     +------------> BUSY
///    |                  ^                       |
///    |                  |  pipe EOF / frame err |
///    +------ REAPING <--+-----------------------+
///      backoff                (watchdog SIGKILL while BUSY)
/// \endverbatim
///
///  - **Dispatch**: a server worker thread acquires an IDLE slot (bounded
///    by the request deadline), stamps the remaining budget onto the wire
///    request, writes one frame, and blocks reading the response frame.
///  - **Death detection**: a broken response read is the signal; the
///    dispatcher reaps via waitpid and classifies the wait status. Exits
///    with the transport codes are infrastructure deaths and earn one
///    replay on a fresh worker; everything else (signals, rlimit kills,
///    unknown exits) is a genuine crash and maps to a typed CRASHED
///    response. A `SIGCHLD` handler (installed without SA_RESTART, so
///    EINTR stays a tested code path) pokes a self-pipe the watchdog
///    drains, keeping reaping prompt even for idle deaths.
///  - **Watchdog**: a supervisor thread SIGKILLs any worker still BUSY
///    past its request deadline plus a grace factor — wedged loops no
///    longer require cooperative polling — and respawns DEAD slots once
///    their exponential backoff expires.
///  - **Crash dossiers**: every crash/kill writes the input `.pir`, wait
///    status, armed fault plan, and request metadata under CrashDir, in a
///    form `pdgc-fuzz --reduce-file` can replay and minimize.
///  - **Circuit breaker**: a content-hash breaker quarantines inputs that
///    have crashed workers K times; further attempts are answered
///    `REJECTED quarantined` instantly instead of burning another worker.
///    Entries expire after QuarantineTtlMs (0 = never).
///
/// Chaos surface: `worker.spawn`, `worker.dispatch`, `worker.collect`
/// fire in the supervisor; `worker.abort` fires *in the child* and is
/// converted into a genuine `std::abort()`, producing a real SIGABRT
/// corpse for the supervision machinery to contain. Fault plans propagate
/// to children by fork inheritance: arm the plan before start() (or
/// before a respawn) and every child carries it with fresh hit counters.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SERVER_WORKERPOOL_H
#define PDGC_SERVER_WORKERPOOL_H

#include "server/Protocol.h"
#include "support/Deadline.h"

#include <cstdint>
#include <memory>
#include <string>

namespace pdgc {
namespace server {

struct WorkerPoolOptions {
  /// Number of sandbox subprocesses.
  unsigned Workers = 2;
  /// Register-file size the children allocate against.
  unsigned Regs = 24;
  /// Fallback-chain head when requests name no allocator.
  std::string DefaultAllocator = "full-preferences";
  /// Frame cap on the worker pipes (mirrors the server's wire cap).
  std::uint32_t MaxFrameBytes = 4u << 20;
  /// Child RLIMIT_AS in MiB (0 = off; keep off under sanitizers).
  unsigned AddressSpaceMb = 0;
  /// Child RLIMIT_CPU in seconds (0 = off).
  unsigned CpuSeconds = 0;
  /// Watchdog grace past the request deadline before SIGKILL.
  unsigned GraceMs = 500;
  /// Respawn backoff: base doubles per consecutive failure, capped.
  unsigned RespawnBackoffMs = 10;
  unsigned MaxRespawnBackoffMs = 1000;
  /// Crashes of one input before the circuit breaker quarantines it.
  unsigned QuarantineCrashes = 3;
  /// Quarantine expiry in ms since the input's last crash (0 = never).
  unsigned QuarantineTtlMs = 0;
  /// Directory for crash dossiers (empty = dossiers off).
  std::string CrashDir;
};

/// What execute() hands back beyond the wire response.
struct WorkerExecResult {
  Response R;
  bool Crashed = false;     ///< A worker died executing this request.
  bool Replayed = false;    ///< Served by a second worker after an
                            ///< infrastructure death of the first.
  bool Quarantined = false; ///< Rejected by the circuit breaker.
};

/// Monotonic pool counters, snapshot for /metrics, STATUS, and the drain
/// summary. Mirrors the `worker.*` stat registry counters but survives
/// as a per-pool value (the registry is process-global).
struct WorkerPoolStats {
  std::uint64_t Spawns = 0;   ///< Children forked (initial + respawns).
  std::uint64_t Respawns = 0; ///< Spawns that replaced a dead worker.
  std::uint64_t Crashes = 0;  ///< Genuine crashes (signals, bad exits).
  std::uint64_t Kills = 0;    ///< Watchdog SIGKILLs of deadline overshoot.
  std::uint64_t Replays = 0;  ///< Requests replayed after infra deaths.
  std::uint64_t Quarantined = 0; ///< Requests rejected by the breaker.
  unsigned Live = 0;             ///< Workers currently idle or busy.
  std::size_t QuarantinedInputs = 0; ///< Distinct inputs under quarantine.
};

class WorkerPool {
public:
  explicit WorkerPool(const WorkerPoolOptions &OptsIn);
  ~WorkerPool();
  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  /// Forks the initial workers and starts the watchdog. Lenient about
  /// individual spawn failures (the watchdog keeps retrying with
  /// backoff); returns false only if the supervisor itself cannot start.
  bool start(std::string *Error = nullptr);

  /// Kills and reaps every child, stops the watchdog. Idempotent. No
  /// execute() may be in flight (the server joins its worker threads
  /// first).
  void stop();

  /// Executes one ALLOC on an isolated worker, blocking until a response,
  /// a crash verdict, or the deadline. Never throws; every failure mode
  /// is a typed response. \p DeadlineAt is the admission deadline
  /// (possibly drain-tightened); the watchdog kills at it plus GraceMs.
  WorkerExecResult execute(const Request &Req,
                           Deadline::Clock::time_point DeadlineAt);

  WorkerPoolStats stats() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

/// FNV-1a 64 over the request body — the circuit breaker's content hash,
/// exposed for tests and dossier naming.
std::uint64_t contentHash(const std::string &Body);

} // namespace server
} // namespace pdgc

#endif // PDGC_SERVER_WORKERPOOL_H
