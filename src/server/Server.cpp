//===- server/Server.cpp - Allocation-as-a-service daemon core -------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include "core/PDGCRegistration.h"
#include "server/AdmissionQueue.h"
#include "server/AllocRunner.h"
#include "server/FlightRecorder.h"
#include "server/FrameCodec.h"
#include "server/Http.h"
#include "server/LatencyHistogram.h"
#include "server/WorkerPool.h"
#include "support/FaultInjection.h"
#include "support/Stats.h"
#include "support/ThreadAnnotations.h"
#include "support/Tracing.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

using namespace pdgc;
using namespace pdgc::server;

namespace {

using SteadyClock = std::chrono::steady_clock;

std::uint64_t microsSince(SteadyClock::time_point Start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          SteadyClock::now() - Start)
          .count());
}

/// What the worker hands back to the waiting connection thread: the
/// wire response plus the forensics the flight recorder wants but the
/// protocol does not carry.
struct AllocDone {
  Response R;
  std::uint64_t QueueMicros = 0; ///< Admission-to-pop wait.
};

/// One admitted ALLOC request on its way to a worker. The connection
/// thread waits on the future; the worker must fulfill the promise on
/// every path (a lost promise would wedge the connection forever).
struct AllocJob {
  Request Req;
  /// Monotonic request id; joins the flight recorder, /requests, and the
  /// `req` argument on trace spans.
  std::uint64_t Id = 0;
  SteadyClock::time_point Arrived;
  /// Absolute wall deadline: admission time + the request's budget.
  SteadyClock::time_point DeadlineAt;
  std::promise<AllocDone> Done;
};

/// "ip:port" of the socket's peer, for the flight recorder.
std::string peerString(int Fd) {
  sockaddr_in Addr{};
  socklen_t Len = sizeof Addr;
  if (::getpeername(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0 ||
      Addr.sin_family != AF_INET)
    return "?";
  char Ip[INET_ADDRSTRLEN] = {0};
  if (!::inet_ntop(AF_INET, &Addr.sin_addr, Ip, sizeof Ip))
    return "?";
  return std::string(Ip) + ":" + std::to_string(ntohs(Addr.sin_port));
}

/// Writes the whole buffer (HTTP responses are raw bytes, not frames).
bool sendAll(int Fd, const std::string &Data) {
  std::size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off, 0);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<std::size_t>(N);
  }
  return true;
}

} // namespace

struct Server::Impl {
  ServerOptions Opts;

  int ListenFd = -1;
  std::uint16_t BoundPort = 0;
  /// Self-pipe: requestStop() writes one byte (async-signal-safe); the
  /// acceptor's poll() watches the read end.
  int StopPipe[2] = {-1, -1};

  std::thread Acceptor;
  std::vector<std::thread> WorkerThreads;
  mutable Mutex ConnMutex;
  /// Live connection threads, keyed by connection id. A thread that
  /// finishes moves its own handle into FinishedConns (it cannot join
  /// itself); the acceptor reaps that list on every wakeup so a
  /// long-running daemon never accumulates joinable-but-dead threads.
  std::unordered_map<std::uint64_t, std::thread> ConnThreads
      PDGC_GUARDED_BY(ConnMutex);
  std::vector<std::thread> FinishedConns PDGC_GUARDED_BY(ConnMutex);
  std::uint64_t NextConnId PDGC_GUARDED_BY(ConnMutex) = 0;
  std::unordered_set<int> OpenFds PDGC_GUARDED_BY(ConnMutex);

  AdmissionQueue<std::unique_ptr<AllocJob>> Queue;
  LatencyHistogram Latency;
  FlightRecorder Flight;
  /// Monotonic id handed to every request on either plane. Starts at 1
  /// so 0 can mean "no request" in the trace thread-local.
  std::atomic<std::uint64_t> NextRequestId{1};
  std::atomic<unsigned> HttpConns{0};

  std::atomic<bool> StopRequested{false};
  std::atomic<bool> Draining{false};
  /// Armed (before the Draining release-store) when drain begins; read
  /// by workers under a Draining acquire-load. Queued jobs finish under
  /// min(their own budget, this).
  Deadline DrainDeadline;
  std::atomic<unsigned> Connections{0};
  std::atomic<unsigned> InFlight{0};
  SteadyClock::time_point StartedAt{};

  // Lifetime totals for the exit summary (the Stats registry carries the
  // same counters process-wide; these stay per-server so tests can run
  // several servers in one process).
  std::atomic<std::uint64_t> NAccepted{0}, NRequests{0}, NOk{0},
      NDegraded{0}, NRejected{0}, NTimeout{0}, NMalformed{0}, NInternal{0},
      NCrashed{0}, NTransportErrors{0}, NHttpRequests{0};

  /// Crash containment: non-null iff Opts.IsolateWorkers > 0. ALLOCs are
  /// dispatched to forked sandbox subprocesses instead of running on the
  /// worker threads (which become dispatchers).
  std::unique_ptr<WorkerPool> Pool;

  bool Started = false;
  bool RunDone = false;
  ServerSummary Summary;

  explicit Impl(const ServerOptions &O)
      : Opts(O), Queue(O.QueueCapacity, O.QueueLowWatermark),
        Flight(O.FlightRecords) {}

  void acceptLoop();
  void reapFinishedConns();
  void workerLoop();
  void connectionLoop(int Fd, std::uint64_t ConnId);
  void binaryLoop(int Fd, const std::string &Peer);
  void httpLoop(int Fd, const std::string &Peer);
  /// Serves one parsed HTTP request; returns false when the connection
  /// must close (write failure or Connection: close).
  bool handleHttpRequest(int Fd, const HttpRequest &Req,
                         const std::string &Peer);
  Response executeAlloc(AllocJob &Job);
  Response statusResponse() const;
  Response statsResponse() const;
  std::string metricsText() const;
  /// Caps a self-generated body the way inbound frames are capped: the
  /// server must not emit what it would refuse to read.
  std::string capBody(std::string Body, const char *What) const;
  bool respond(int Fd, Response R, SteadyClock::time_point Arrived,
               bool RecordLatency, const std::string &Peer,
               std::uint64_t ReqId, const char *Kind, const char *Target,
               std::uint32_t BytesIn, std::uint64_t QueueMicros = 0);
  void finishRun();
};

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

Server::Server(const ServerOptions &Options)
    : I(std::make_unique<Impl>(Options)) {}

Server::~Server() {
  if (I->Started && !I->RunDone) {
    requestStop();
    run();
  }
}

bool Server::start(std::string *Error) {
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg + ": " + std::strerror(errno);
    if (I->ListenFd >= 0)
      ::close(I->ListenFd);
    for (int Fd : I->StopPipe)
      if (Fd >= 0)
        ::close(Fd);
    I->ListenFd = I->StopPipe[0] = I->StopPipe[1] = -1;
    return false;
  };

  // A peer that hangs up mid-response must surface as a write error on
  // this thread, not a process-wide SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  // Workers resolve allocator tiers through the registry; seed it before
  // any of them runs.
  registerPDGCAllocators();

  if (::pipe(I->StopPipe) != 0)
    return Fail("pipe");

  I->ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (I->ListenFd < 0)
    return Fail("socket");
  int One = 1;
  ::setsockopt(I->ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof One);

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(I->Opts.Port);
  if (::bind(I->ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof Addr) != 0)
    return Fail("bind");
  if (::listen(I->ListenFd, 64) != 0)
    return Fail("listen");

  socklen_t Len = sizeof Addr;
  if (::getsockname(I->ListenFd, reinterpret_cast<sockaddr *>(&Addr),
                    &Len) != 0)
    return Fail("getsockname");
  I->BoundPort = ntohs(Addr.sin_port);

  I->StartedAt = SteadyClock::now();
  if (I->Opts.IsolateWorkers > 0) {
    // Crash containment: fork the sandbox pool BEFORE the dispatcher
    // threads so any armed fault plan is inherited by the first
    // generation of children exactly as by respawns.
    WorkerPoolOptions PO;
    PO.Workers = I->Opts.IsolateWorkers;
    PO.Regs = I->Opts.Regs;
    PO.DefaultAllocator = I->Opts.DefaultAllocator;
    PO.MaxFrameBytes = I->Opts.MaxFrameBytes;
    PO.AddressSpaceMb = I->Opts.WorkerAddressSpaceMb;
    PO.CpuSeconds = I->Opts.WorkerCpuSeconds;
    PO.GraceMs = I->Opts.WorkerGraceMs;
    PO.QuarantineCrashes = I->Opts.QuarantineCrashes;
    PO.QuarantineTtlMs = I->Opts.QuarantineTtlMs;
    PO.CrashDir = I->Opts.CrashDir;
    I->Pool = std::make_unique<WorkerPool>(PO);
    I->Pool->start();
  }
  // With isolation on, one dispatcher thread per sandbox worker; each
  // blocks on its child's response pipe, so more would only contend.
  const unsigned NWorkerThreads = I->Opts.IsolateWorkers > 0
                                      ? I->Opts.IsolateWorkers
                                      : std::max(1u, I->Opts.Workers);
  for (unsigned W = 0; W != NWorkerThreads; ++W)
    I->WorkerThreads.emplace_back([this] { I->workerLoop(); });
  I->Acceptor = std::thread([this] { I->acceptLoop(); });
  I->Started = true;
  return true;
}

std::uint16_t Server::port() const { return I->BoundPort; }

void Server::requestStop() {
  // Only async-signal-safe calls here: this runs inside SIGTERM/SIGINT
  // handlers. The acceptor does the actual teardown.
  I->StopRequested.store(true, std::memory_order_relaxed);
  char Byte = 's';
  [[maybe_unused]] ssize_t N = ::write(I->StopPipe[1], &Byte, 1);
}

bool Server::draining() const {
  return I->Draining.load(std::memory_order_relaxed);
}

ServerSummary Server::run() {
  if (!I->Started || I->RunDone)
    return I->Summary;
  I->finishRun();
  return I->Summary;
}

void Server::Impl::finishRun() {
  Acceptor.join();

  // Drain: no new admissions; workers serve out the backlog. Queued jobs
  // run under min(their own budget, the drain deadline); jobs already
  // executing are bounded by their per-request budgets.
  SteadyClock::time_point DrainStart = SteadyClock::now();
  DrainDeadline = Deadline::afterMs(Opts.DrainBudgetMs);
  Draining.store(true, std::memory_order_release);
  Queue.close();
  for (std::thread &W : WorkerThreads)
    W.join();

  // Dispatchers are parked; tear down the sandbox pool and bank its
  // lifetime totals for the drain summary before the counters vanish.
  if (Pool) {
    const WorkerPoolStats WS = Pool->stats();
    Summary.WorkerSpawns = WS.Spawns;
    Summary.WorkerRespawns = WS.Respawns;
    Summary.WorkerCrashes = WS.Crashes;
    Summary.WorkerKills = WS.Kills;
    Summary.WorkerReplays = WS.Replays;
    Summary.WorkerQuarantined = WS.Quarantined;
    Pool->stop();
  }

  // The backlog is answered, but a connection thread may still be
  // between Done.get() and writeFrame for the last admitted request.
  // SHUT_RD wakes readers blocked on their next frame with EOF while
  // leaving the write side open, so every executed request still gets
  // its response on the wire — the drain contract — instead of a
  // spurious transport error from a torn-down socket.
  {
    MutexLock Lock(ConnMutex);
    for (int Fd : OpenFds)
      ::shutdown(Fd, SHUT_RD);
  }
  // Join every connection thread: live ones still in the map plus any
  // already self-retired into FinishedConns. Joining a live thread's
  // handle is fine — it finds its map entry gone at retirement and
  // simply returns. Don't hold ConnMutex across the joins: retiring
  // threads need it.
  std::vector<std::thread> ToJoin;
  {
    MutexLock Lock(ConnMutex);
    for (auto &Entry : ConnThreads)
      ToJoin.push_back(std::move(Entry.second));
    ConnThreads.clear();
    for (std::thread &T : FinishedConns)
      ToJoin.push_back(std::move(T));
    FinishedConns.clear();
  }
  for (std::thread &T : ToJoin)
    T.join();

  Summary.DrainedInBudget =
      SteadyClock::now() - DrainStart <=
      std::chrono::milliseconds(Opts.DrainBudgetMs);
  Summary.Accepted = NAccepted.load();
  Summary.Requests = NRequests.load();
  Summary.Ok = NOk.load();
  Summary.Degraded = NDegraded.load();
  Summary.Rejected = NRejected.load();
  Summary.Timeout = NTimeout.load();
  Summary.Malformed = NMalformed.load();
  Summary.Internal = NInternal.load();
  Summary.Crashed = NCrashed.load();
  Summary.TransportErrors = NTransportErrors.load();
  Summary.HttpRequests = NHttpRequests.load();
  Summary.P50Micros = Latency.quantile(0.50);
  Summary.P99Micros = Latency.quantile(0.99);
  // The drain summary doubles as a post-mortem: capture the recorder's
  // tail so the operator's console already shows the last requests.
  Summary.RecentRequests = Flight.renderText(16);

  for (int Fd : StopPipe)
    if (Fd >= 0)
      ::close(Fd);
  StopPipe[0] = StopPipe[1] = -1;
  RunDone = true;
}

//===----------------------------------------------------------------------===//
// Acceptor
//===----------------------------------------------------------------------===//

void Server::Impl::reapFinishedConns() {
  std::vector<std::thread> ToJoin;
  {
    MutexLock Lock(ConnMutex);
    ToJoin.swap(FinishedConns);
  }
  // Each handle here was retired by its own thread moments before that
  // thread returned, so these joins complete immediately.
  for (std::thread &T : ToJoin)
    T.join();
}

void Server::Impl::acceptLoop() {
  for (;;) {
    reapFinishedConns();
    pollfd Fds[2] = {{ListenFd, POLLIN, 0}, {StopPipe[0], POLLIN, 0}};
    int N = ::poll(Fds, 2, -1);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break; // poll() itself broke; treat as a stop.
    }
    if (Fds[1].revents != 0 || StopRequested.load(std::memory_order_relaxed))
      break;
    if ((Fds[0].revents & POLLIN) == 0)
      continue;

    int Fd;
    do {
      // EINTR is routine here once worker isolation is on: the SIGCHLD
      // handler is installed without SA_RESTART, so a child's death can
      // interrupt accept(). A retry, not an accept_errors count.
      Fd = ::accept(ListenFd, nullptr, nullptr);
    } while (Fd < 0 && errno == EINTR);
    if (Fd >= 0) {
      // Frames are small request/response pairs; latency beats batching.
      int One = 1;
      ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof One);
      // Bound every response write: a peer that stops reading must not
      // park a connection thread forever — and, because drain shuts
      // sockets down read-side only (writes are allowed to finish), it
      // must not be able to hold the final join hostage either. The
      // timed-out write fails like any transport error and the
      // connection dies.
      unsigned TimeoutMs = std::max(1u, Opts.DrainBudgetMs);
      timeval SendTimeout{};
      SendTimeout.tv_sec = TimeoutMs / 1000;
      SendTimeout.tv_usec = static_cast<suseconds_t>(TimeoutMs % 1000) * 1000;
      ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &SendTimeout,
                   sizeof SendTimeout);
    }
    if (Fd < 0) {
      // EMFILE/ENFILE and friends: shed at the OS edge and keep serving
      // the connections we already hold.
      PDGC_STAT("server", "accept_errors").inc();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }

    try {
      PDGC_FAULT_POINT("server.accept");
    } catch (const std::exception &) {
      // Injected accept failure: this connection dies, the server does
      // not. The client sees a drop and retries.
      PDGC_STAT("server", "accept_faults").inc();
      ::close(Fd);
      continue;
    }

    if (Connections.load(std::memory_order_relaxed) >=
        Opts.MaxConnections) {
      // Connection-level shedding mirrors queue-level shedding: answer
      // typed and fast instead of letting the backlog grow.
      Response R;
      R.Status = ResponseStatus::Rejected;
      R.RetryAfterMs = Opts.RetryAfterMs;
      R.Error = "connection limit reached";
      writeFrame(Fd, serializeResponse(R));
      NRejected.fetch_add(1);
      PDGC_STAT("server", "conn_shed").inc();
      ::close(Fd);
      continue;
    }

    NAccepted.fetch_add(1);
    PDGC_STAT("server", "accepted").inc();
    Connections.fetch_add(1, std::memory_order_relaxed);
    // Hold ConnMutex across thread creation AND map insertion: the new
    // thread's self-retirement also takes ConnMutex, so it cannot look
    // up its own entry before the entry exists.
    MutexLock Lock(ConnMutex);
    OpenFds.insert(Fd);
    std::uint64_t ConnId = NextConnId++;
    ConnThreads.emplace(
        ConnId, std::thread([this, Fd, ConnId] { connectionLoop(Fd, ConnId); }));
  }
  ::close(ListenFd);
  ListenFd = -1;
}

//===----------------------------------------------------------------------===//
// Connections
//===----------------------------------------------------------------------===//

bool Server::Impl::respond(int Fd, Response R,
                           SteadyClock::time_point Arrived,
                           bool RecordLatency, const std::string &Peer,
                           std::uint64_t ReqId, const char *Kind,
                           const char *Target, std::uint32_t BytesIn,
                           std::uint64_t QueueMicros) {
  R.WallMs = static_cast<unsigned>(microsSince(Arrived) / 1000);
  switch (R.Status) {
  case ResponseStatus::Ok:
    NOk.fetch_add(1);
    PDGC_STAT("server", "resp_ok").inc();
    break;
  case ResponseStatus::Degraded:
    NDegraded.fetch_add(1);
    PDGC_STAT("server", "resp_degraded").inc();
    break;
  case ResponseStatus::Rejected:
    NRejected.fetch_add(1);
    PDGC_STAT("server", "resp_rejected").inc();
    break;
  case ResponseStatus::Timeout:
    NTimeout.fetch_add(1);
    PDGC_STAT("server", "resp_timeout").inc();
    break;
  case ResponseStatus::Malformed:
    NMalformed.fetch_add(1);
    PDGC_STAT("server", "resp_malformed").inc();
    break;
  case ResponseStatus::Internal:
    NInternal.fetch_add(1);
    PDGC_STAT("server", "resp_internal").inc();
    break;
  case ResponseStatus::Crashed:
    NCrashed.fetch_add(1);
    PDGC_STAT("server", "resp_crashed").inc();
    break;
  }
  // Only executed allocations belong in the histogram: counting
  // microsecond-fast shed/drain rejections would drag the reported
  // p50/p99 down exactly when the service is overloaded and the latency
  // numbers matter most.
  if (RecordLatency)
    Latency.record(microsSince(Arrived));

  const std::string Wire = serializeResponse(R);

  // Flight-record before the write attempt: a request whose response
  // write failed is exactly the kind the post-mortem wants to see.
  FlightRecord FR;
  FR.Id = ReqId;
  FR.QueueMicros = QueueMicros;
  FR.WallMicros = microsSince(Arrived);
  FR.BytesIn = BytesIn;
  FR.BytesOut = static_cast<std::uint32_t>(Wire.size());
  setFlightField(FR.Status, responseStatusName(R.Status));
  setFlightField(FR.Kind, Kind);
  setFlightField(FR.Peer, Peer);
  setFlightField(FR.Target, !R.ServedBy.empty() ? std::string_view(R.ServedBy)
                 : Target && *Target ? std::string_view(Target)
                                     : std::string_view(Kind));
  setFlightField(FR.Detail, R.Error);
  Flight.record(FR);

  try {
    PDGC_FAULT_POINT("server.respond");
  } catch (const std::exception &) {
    // Injected send failure: drop the connection; the response counters
    // above already recorded the request's true outcome.
    PDGC_STAT("server", "respond_faults").inc();
    return false;
  }
  if (!writeFrame(Fd, Wire)) {
    NTransportErrors.fetch_add(1);
    PDGC_STAT("server", "transport_errors").inc();
    return false;
  }
  return true;
}

void Server::Impl::connectionLoop(int Fd, std::uint64_t ConnId) {
  // Plane sniffing: one MSG_PEEK'd byte decides the connection's
  // protocol for life (see server/Http.h — an uppercase ASCII first byte
  // cannot begin a valid binary frame). The byte stays in the socket, so
  // whichever loop runs reads an untouched stream.
  unsigned char FirstByte = 0;
  ssize_t Peeked;
  do {
    Peeked = ::recv(Fd, &FirstByte, 1, MSG_PEEK);
  } while (Peeked < 0 && errno == EINTR);
  if (Peeked == 1) {
    const std::string Peer = peerString(Fd);
    if (sniffPlane(FirstByte) == Plane::Http)
      httpLoop(Fd, Peer);
    else
      binaryLoop(Fd, Peer);
  }

  // Deregister BEFORE close: the kernel may hand the closed fd number to
  // a concurrent accept() immediately, and erasing after close would
  // knock the new connection's entry out of OpenFds — finishRun's
  // shutdown sweep would then miss a live socket and the drain join
  // could hang on its blocked reader.
  {
    MutexLock Lock(ConnMutex);
    OpenFds.erase(Fd);
  }
  ::close(Fd);
  Connections.fetch_sub(1, std::memory_order_relaxed);

  // Self-retire: move our own handle out of the live map so the acceptor
  // (or finishRun) can join it. A thread cannot join itself, but it can
  // hand its handle to someone who will.
  {
    MutexLock Lock(ConnMutex);
    auto It = ConnThreads.find(ConnId);
    if (It != ConnThreads.end()) {
      FinishedConns.push_back(std::move(It->second));
      ConnThreads.erase(It);
    }
  }
}

void Server::Impl::binaryLoop(int Fd, const std::string &Peer) {
  for (;;) {
    std::string Payload;
    FrameResult FR = readFrame(Fd, Payload, Opts.MaxFrameBytes);
    SteadyClock::time_point Arrived = SteadyClock::now();
    if (FR == FrameResult::ClosedClean)
      break;
    if (FR == FrameResult::Truncated || FR == FrameResult::IoError) {
      // During drain the server itself shuts sockets down mid-read;
      // that is teardown, not a peer misbehaving.
      if (!Draining.load(std::memory_order_relaxed)) {
        NTransportErrors.fetch_add(1);
        PDGC_STAT("server", "transport_errors").inc();
      }
      break;
    }
    if (FR == FrameResult::Oversized) {
      // The length header is untrustworthy, so the stream cannot be
      // resynced: answer typed, then hang up.
      Response R;
      R.Status = ResponseStatus::Malformed;
      R.Error = "frame exceeds max-frame-bytes (" +
                std::to_string(Opts.MaxFrameBytes) + ")";
      respond(Fd, std::move(R), Arrived, false, Peer,
              NextRequestId.fetch_add(1, std::memory_order_relaxed), "meta",
              "", 0);
      break;
    }

    const std::uint64_t ReqId =
        NextRequestId.fetch_add(1, std::memory_order_relaxed);
    const std::uint32_t BytesIn = static_cast<std::uint32_t>(Payload.size());

    bool FrameFault = false;
    try {
      PDGC_FAULT_POINT("server.frame");
    } catch (const std::exception &) {
      PDGC_STAT("server", "frame_faults").inc();
      FrameFault = true;
    }
    if (FrameFault)
      break; // Injected transport failure: abort this connection only.

    Request Req;
    {
      Response Early;
      bool Parsed = false;
      std::string ParseError;
      try {
        PDGC_FAULT_POINT("server.parse");
        Parsed = parseRequest(Payload, Req, ParseError);
      } catch (const std::exception &E) {
        // Injected parser failure: the request dies typed, the
        // connection survives.
        PDGC_STAT("server", "parse_faults").inc();
        Early.Status = ResponseStatus::Internal;
        Early.Error = std::string("request parsing failed: ") + E.what();
        if (!respond(Fd, std::move(Early), Arrived, false, Peer, ReqId,
                     "meta", "", BytesIn))
          break;
        continue;
      }
      if (!Parsed) {
        Early.Status = ResponseStatus::Malformed;
        Early.Error = ParseError;
        if (!respond(Fd, std::move(Early), Arrived, false, Peer, ReqId,
                     "meta", "", BytesIn))
          break;
        continue;
      }
    }
    NRequests.fetch_add(1);
    PDGC_STAT("server", "requests").inc();

    // Introspection verbs answer inline — they must work *especially*
    // when the allocation queue is saturated.
    if (Req.Type == RequestType::Ping) {
      if (!respond(Fd, Response(), Arrived, false, Peer, ReqId, "meta",
                   "ping", BytesIn))
        break;
      continue;
    }
    if (Req.Type == RequestType::Status) {
      // Operator polling, distinguishable from alloc traffic.
      PDGC_STAT("server", "meta_requests").inc();
      if (!respond(Fd, statusResponse(), Arrived, false, Peer, ReqId, "meta",
                   "status", BytesIn))
        break;
      continue;
    }
    if (Req.Type == RequestType::Stats) {
      PDGC_STAT("server", "meta_requests").inc();
      if (!respond(Fd, statsResponse(), Arrived, false, Peer, ReqId, "meta",
                   "stats", BytesIn))
        break;
      continue;
    }

    // ALLOC: admission control, then hand off to a worker.
    unsigned BudgetMs = Req.BudgetMs == 0 ? Opts.DefaultBudgetMs
                                          : Req.BudgetMs;
    BudgetMs = std::min(BudgetMs, Opts.MaxBudgetMs);
    auto Job = std::make_unique<AllocJob>();
    Job->Req = std::move(Req);
    Job->Id = ReqId;
    Job->Arrived = Arrived;
    Job->DeadlineAt = Arrived + std::chrono::milliseconds(BudgetMs);
    Job->Req.BudgetMs = BudgetMs;
    std::future<AllocDone> Done = Job->Done.get_future();

    Admission A = Admission::Closed;
    bool EnqueueFault = false;
    try {
      PDGC_FAULT_POINT("server.enqueue");
      A = Draining.load(std::memory_order_relaxed)
              ? Admission::Closed
              : Queue.tryPush(std::move(Job));
    } catch (const std::exception &E) {
      PDGC_STAT("server", "enqueue_faults").inc();
      EnqueueFault = true;
      Response R;
      R.Status = ResponseStatus::Internal;
      R.Error = std::string("admission failed: ") + E.what();
      if (!respond(Fd, std::move(R), Arrived, false, Peer, ReqId, "alloc",
                   "", BytesIn))
        break;
    }
    if (EnqueueFault)
      continue;

    if (A == Admission::Shed) {
      PDGC_STAT("server", "shed").inc();
      Response R;
      R.Status = ResponseStatus::Rejected;
      R.RetryAfterMs = Opts.RetryAfterMs;
      R.Error = "queue full (depth " + std::to_string(Queue.depth()) +
                "/" + std::to_string(Queue.capacity()) + ")";
      if (!respond(Fd, std::move(R), Arrived, false, Peer, ReqId, "alloc",
                   "", BytesIn))
        break;
      continue;
    }
    if (A == Admission::Closed) {
      PDGC_STAT("server", "drain_rejects").inc();
      Response R;
      R.Status = ResponseStatus::Rejected;
      R.RetryAfterMs = Opts.RetryAfterMs;
      R.Error = "draining";
      if (!respond(Fd, std::move(R), Arrived, false, Peer, ReqId, "alloc",
                   "", BytesIn))
        break;
      continue;
    }

    // Admitted: the worker fulfills the promise on every path, so this
    // wait is bounded by the request deadline plus the guarantee tier.
    AllocDone R = Done.get();
    if (!respond(Fd, std::move(R.R), Arrived, true, Peer, ReqId, "alloc", "",
                 BytesIn, R.QueueMicros))
      break;
  }
}

//===----------------------------------------------------------------------===//
// Workers
//===----------------------------------------------------------------------===//

void Server::Impl::workerLoop() {
  std::unique_ptr<AllocJob> Job;
  while (Queue.pop(Job)) {
    InFlight.fetch_add(1, std::memory_order_relaxed);
    AllocDone Done;
    Done.QueueMicros = microsSince(Job->Arrived);
    if (timersEnabled())
      addTimerSample("server.queue_wait", Done.QueueMicros * 1000);
    {
      // The request id rides a thread-local into every span this thread
      // emits — including BatchDriver's `batch.item` and the `tier.*`
      // spans, which run inline here (a one-item batch never hands work
      // to another thread) — so a trace capture joins against the
      // flight recorder on `req`.
      trace::RequestScope Scope(Job->Id);
      // runAllocGuarded is the absolute backstop: no request may take a
      // worker down (std::bad_alloc and non-std exceptions included),
      // and no promise may be abandoned (the connection thread waits).
      AllocJob &JobRef = *Job;
      Done.R = runAllocGuarded([this, &JobRef] { return executeAlloc(JobRef); });
    }
    Job->Done.set_value(std::move(Done));
    Job.reset();
    InFlight.fetch_sub(1, std::memory_order_relaxed);
  }
}

Response Server::Impl::executeAlloc(AllocJob &Job) {
  // The request deadline started at admission, so queue wait already
  // counts against it. During drain the drain deadline tightens whatever
  // remains. The compute itself lives in server/AllocRunner.cpp, shared
  // byte-for-byte between this in-process path and the sandbox children.
  Deadline Cancel{Job.DeadlineAt};
  if (Draining.load(std::memory_order_acquire))
    Cancel = Cancel.sooner(DrainDeadline);

  if (Pool) {
    WorkerExecResult ER = Pool->execute(Job.Req, Cancel.time());
    return std::move(ER.R);
  }

  AllocEnv Env;
  Env.Regs = Opts.Regs;
  Env.DefaultAllocator = Opts.DefaultAllocator;
  Env.CancelAt = Cancel;
  Env.RequestDeadline = Deadline{Job.DeadlineAt};
  return executeAllocRequest(Job.Req, Env);
}

//===----------------------------------------------------------------------===//
// Introspection
//===----------------------------------------------------------------------===//

Response Server::Impl::statusResponse() const {
  // Registry size = live connection threads + finished-but-unreaped
  // handles; a leak here (threads joined only at shutdown) is exactly
  // what the reaper exists to prevent, so expose it to monitoring.
  std::size_t ConnThreadCount = 0;
  {
    MutexLock Lock(ConnMutex);
    ConnThreadCount = ConnThreads.size() + FinishedConns.size();
  }
  Response R;
  R.Body = "{";
  R.Body += "\"draining\": ";
  R.Body += Draining.load(std::memory_order_relaxed) ? "true" : "false";
  R.Body += ", \"queue-depth\": " + std::to_string(Queue.depth());
  R.Body += ", \"queue-capacity\": " + std::to_string(Queue.capacity());
  R.Body += ", \"low-watermark\": " + std::to_string(Queue.lowWatermark());
  R.Body += ", \"shedding\": ";
  R.Body += Queue.shedding() ? "true" : "false";
  R.Body += ", \"connections\": " +
            std::to_string(Connections.load(std::memory_order_relaxed));
  R.Body += ", \"conn-threads\": " + std::to_string(ConnThreadCount);
  R.Body += ", \"inflight\": " +
            std::to_string(InFlight.load(std::memory_order_relaxed));
  R.Body += ", \"uptime-ms\": " +
            std::to_string(microsSince(StartedAt) / 1000);
  if (Pool) {
    // Worker-pool state is appended only in isolation mode so the
    // default server's STATUS body stays byte-identical.
    const WorkerPoolStats WS = Pool->stats();
    R.Body += ", \"isolate-workers\": " + std::to_string(Opts.IsolateWorkers);
    R.Body += ", \"workers-live\": " + std::to_string(WS.Live);
    R.Body += ", \"worker-crashes\": " + std::to_string(WS.Crashes);
    R.Body += ", \"quarantined-inputs\": " +
              std::to_string(WS.QuarantinedInputs);
  }
  R.Body += "}\n";
  return R;
}

std::string Server::Impl::capBody(std::string Body, const char *What) const {
  // The server refuses inbound frames above MaxFrameBytes; emitting a
  // bigger body itself would be the same unbounded-buffer bug in the
  // other direction (the registry grows with every new counter site).
  if (Body.size() <= Opts.MaxFrameBytes)
    return Body;
  PDGC_STAT("server", "body_truncated").inc();
  return std::string("{\"error\": \"") + What +
         " exceeds max-frame-bytes (" + std::to_string(Opts.MaxFrameBytes) +
         ")\"}\n";
}

Response Server::Impl::statsResponse() const {
  Response R;
  R.Body = capBody("{\"latency\": " + Latency.toJson() +
                       ", \"counters\": " +
                       StatRegistry::get().snapshot().toJson() + "}\n",
                   "stats body");
  return R;
}

//===----------------------------------------------------------------------===//
// HTTP plane
//===----------------------------------------------------------------------===//

std::string Server::Impl::metricsText() const {
  std::string Out;
  Out.reserve(8192);

  // Counters. One family with a `stat` label keeps the exposition stable
  // as counter sites come and go — dashboards key on the label value.
  Out += "# HELP pdgc_stat_total Process-wide PDGC_STAT counters.\n";
  Out += "# TYPE pdgc_stat_total counter\n";
  for (const auto &[Key, Value] : StatRegistry::get().snapshot().Counters)
    Out += "pdgc_stat_total{stat=\"" + prometheusEscape(Key) + "\"} " +
           std::to_string(Value) + "\n";

  // Phase timers (wall time; only populated when timers are enabled).
  const std::vector<TimerStat> Timers = timerSnapshot();
  if (!Timers.empty()) {
    Out += "# HELP pdgc_timer_count_total Scopes entered per phase timer.\n";
    Out += "# TYPE pdgc_timer_count_total counter\n";
    for (const TimerStat &T : Timers)
      Out += "pdgc_timer_count_total{phase=\"" + prometheusEscape(T.Phase) +
             "\"} " + std::to_string(T.Count) + "\n";
    Out += "# HELP pdgc_timer_nanoseconds_total Summed wall time per phase "
           "timer.\n";
    Out += "# TYPE pdgc_timer_nanoseconds_total counter\n";
    for (const TimerStat &T : Timers)
      Out += "pdgc_timer_nanoseconds_total{phase=\"" +
             prometheusEscape(T.Phase) + "\"} " + std::to_string(T.TotalNs) +
             "\n";
  }

  // Executed-ALLOC latency as a summary: the same LatencyHistogram
  // quantiles pdgc-loadgen reports, so a scrape and a load test agree.
  Out += "# HELP pdgc_request_latency_microseconds Executed-ALLOC request "
         "latency.\n";
  Out += "# TYPE pdgc_request_latency_microseconds summary\n";
  Out += "pdgc_request_latency_microseconds{quantile=\"0.5\"} " +
         std::to_string(Latency.quantile(0.5)) + "\n";
  Out += "pdgc_request_latency_microseconds{quantile=\"0.9\"} " +
         std::to_string(Latency.quantile(0.9)) + "\n";
  Out += "pdgc_request_latency_microseconds{quantile=\"0.99\"} " +
         std::to_string(Latency.quantile(0.99)) + "\n";
  Out += "pdgc_request_latency_microseconds_sum " +
         std::to_string(Latency.sumMicros()) + "\n";
  Out += "pdgc_request_latency_microseconds_count " +
         std::to_string(Latency.count()) + "\n";

  // Live service gauges.
  auto Gauge = [&Out](const char *Name, const char *Help,
                      std::uint64_t Value) {
    Out += std::string("# HELP ") + Name + " " + Help + "\n";
    Out += std::string("# TYPE ") + Name + " gauge\n";
    Out += std::string(Name) + " " + std::to_string(Value) + "\n";
  };
  Gauge("pdgc_server_queue_depth", "Admission queue depth.", Queue.depth());
  Gauge("pdgc_server_queue_capacity", "Admission queue high watermark.",
        Queue.capacity());
  Gauge("pdgc_server_shedding", "1 while the admission queue sheds.",
        Queue.shedding() ? 1 : 0);
  Gauge("pdgc_server_connections", "Live connections (both planes).",
        Connections.load(std::memory_order_relaxed));
  Gauge("pdgc_server_http_connections", "Live HTTP-plane connections.",
        HttpConns.load(std::memory_order_relaxed));
  Gauge("pdgc_server_inflight", "ALLOC requests executing in workers.",
        InFlight.load(std::memory_order_relaxed));
  Gauge("pdgc_server_draining", "1 once graceful drain began.",
        Draining.load(std::memory_order_relaxed) ? 1 : 0);
  Gauge("pdgc_server_uptime_seconds", "Seconds since start().",
        microsSince(StartedAt) / 1000000);
  Gauge("pdgc_flight_recorded_total",
        "Requests published to the flight recorder.",
        Flight.recordedCount());
  if (Pool) {
    // Isolation-only gauges (the worker.* counters surface through
    // pdgc_stat_total automatically); gated so the default exposition
    // is unchanged.
    const WorkerPoolStats WS = Pool->stats();
    Gauge("pdgc_server_workers_live", "Sandbox workers idle or busy.",
          WS.Live);
    Gauge("pdgc_server_quarantined_inputs",
          "Inputs currently quarantined by the crash circuit breaker.",
          WS.QuarantinedInputs);
  }
  return Out;
}

bool Server::Impl::handleHttpRequest(int Fd, const HttpRequest &Req,
                                     const std::string &Peer) {
  SteadyClock::time_point Arrived = SteadyClock::now();
  const std::uint64_t ReqId =
      NextRequestId.fetch_add(1, std::memory_order_relaxed);
  NHttpRequests.fetch_add(1);
  PDGC_STAT("server.http", "requests").inc();
  PDGC_STAT("server", "meta_requests").inc();

  int Code = 200;
  std::string Body;
  std::string ContentType = "text/plain; charset=utf-8";
  std::vector<std::string> Extra;
  // Set when the connection cannot serve another request even though
  // this response is typed — the unread request body is still in the
  // stream, so the next head would be parsed out of its middle.
  bool ForceClose = false;

  if (Req.Method != "GET" && Req.Method != "HEAD") {
    Code = 405;
    Body = "only GET and HEAD are served here\n";
    Extra.push_back("Allow: GET, HEAD");
  } else if (!Req.header("content-length").empty() ||
             !Req.header("transfer-encoding").empty()) {
    // An observability plane that accepts uploads is an attack surface.
    Code = 400;
    Body = "request bodies are not accepted\n";
    ForceClose = true;
  } else if (Req.Path == "/healthz") {
    Body = "ok\n";
  } else if (Req.Path == "/readyz") {
    // Readiness is the load balancer's signal, so it must flip *before*
    // requests start failing: draining refuses new work outright and
    // shedding is already refusing at the queue.
    if (StopRequested.load(std::memory_order_relaxed) ||
        Draining.load(std::memory_order_relaxed)) {
      Code = 503;
      Body = "draining\n";
    } else if (Queue.shedding()) {
      Code = 503;
      Body = "shedding\n";
    } else {
      Body = "ready\n";
    }
  } else if (Req.Path == "/metrics") {
    Body = capBody(metricsText(), "metrics body");
    ContentType = "text/plain; version=0.0.4; charset=utf-8";
  } else if (Req.Path == "/stats") {
    Body = capBody(observabilityReportJson() + "\n", "stats body");
    ContentType = "application/json";
  } else if (Req.Path == "/requests") {
    std::size_t N = 32;
    const std::string Param = queryParam(Req.Query, "n");
    if (!Param.empty()) {
      char *End = nullptr;
      unsigned long V = std::strtoul(Param.c_str(), &End, 10);
      if (End && *End == '\0' && V > 0)
        N = static_cast<std::size_t>(V);
    }
    Body = capBody(Flight.toJson(std::min(N, Flight.capacity())) + "\n",
                   "requests body");
    ContentType = "application/json";
  } else {
    Code = 404;
    Body = "unknown path (try /healthz /readyz /metrics /stats /requests)\n";
  }

  if (Code != 200)
    PDGC_STAT("server.http", "errors").inc();

  const bool KeepAlive = Req.KeepAlive && !ForceClose;
  const std::string Wire = renderHttpResponse(
      Code, ContentType, Body, KeepAlive, Req.Method == "HEAD", Extra);

  FlightRecord FR;
  FR.Id = ReqId;
  FR.WallMicros = microsSince(Arrived);
  FR.BytesIn = static_cast<std::uint32_t>(Req.HeadBytes);
  FR.BytesOut = static_cast<std::uint32_t>(Wire.size());
  setFlightField(FR.Status, std::to_string(Code));
  setFlightField(FR.Kind, "http");
  setFlightField(FR.Peer, Peer);
  setFlightField(FR.Target, Req.Path);
  setFlightField(FR.Detail, Req.Method + " " +
                                (Req.Query.empty() ? Req.Path
                                                   : Req.Path + "?" +
                                                         Req.Query));
  Flight.record(FR);

  try {
    PDGC_FAULT_POINT("server.http.respond");
  } catch (const std::exception &) {
    // Injected send failure: this HTTP connection dies, the daemon (and
    // the alloc plane) do not.
    PDGC_STAT("server.http", "respond_faults").inc();
    return false;
  }
  if (!sendAll(Fd, Wire)) {
    NTransportErrors.fetch_add(1);
    PDGC_STAT("server", "transport_errors").inc();
    return false;
  }
  return KeepAlive;
}

void Server::Impl::httpLoop(int Fd, const std::string &Peer) {
  // A scraper plus a few curls is the intended population; cap it so a
  // runaway dashboard cannot occupy every connection slot.
  if (HttpConns.fetch_add(1, std::memory_order_relaxed) + 1 >
      Opts.HttpMaxConns) {
    PDGC_STAT("server.http", "conn_shed").inc();
    sendAll(Fd, renderHttpResponse(
                    503, "text/plain; charset=utf-8",
                    "http connection limit reached\n", false, false,
                    {"Retry-After: " +
                     std::to_string(std::max(1u, Opts.RetryAfterMs / 1000))}));
    HttpConns.fetch_sub(1, std::memory_order_relaxed);
    return;
  }

  const HttpLimits Limits; // Defaults; far under MaxFrameBytes.
  std::string Buf;
  char Chunk[4096];
  bool Alive = true;
  while (Alive) {
    ssize_t N = ::recv(Fd, Chunk, sizeof Chunk, 0);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      break; // EOF or error (drain's SHUT_RD lands here too).
    }
    Buf.append(Chunk, static_cast<std::size_t>(N));

    // Serve every complete head already buffered — pipelined requests
    // are answered in order on the same socket.
    while (Alive) {
      HttpRequest Req;
      std::string ParseError;
      HttpParse PR;
      try {
        PDGC_FAULT_POINT("server.http.parse");
        PR = parseHttpRequest(Buf, Req, ParseError, Limits);
      } catch (const std::exception &E) {
        // Injected parser failure: answer typed and drop the connection
        // (the buffer offset is no longer trustworthy).
        PDGC_STAT("server.http", "parse_faults").inc();
        sendAll(Fd, renderHttpResponse(500, "text/plain; charset=utf-8",
                                       std::string("parse failed: ") +
                                           E.what() + "\n",
                                       false));
        Alive = false;
        break;
      }
      if (PR == HttpParse::NeedMore)
        break;
      if (PR == HttpParse::Bad || PR == HttpParse::TooLarge) {
        // The stream cannot be resynced past a bad head: answer typed,
        // then hang up — the HTTP mirror of the oversized-frame rule.
        PDGC_STAT("server.http", "parse_errors").inc();
        const int Code = PR == HttpParse::Bad ? 400 : 431;
        sendAll(Fd, renderHttpResponse(Code, "text/plain; charset=utf-8",
                                       ParseError + "\n", false));
        Alive = false;
        break;
      }
      Buf.erase(0, Req.HeadBytes);
      Alive = handleHttpRequest(Fd, Req, Peer);
    }
  }
  HttpConns.fetch_sub(1, std::memory_order_relaxed);
}
