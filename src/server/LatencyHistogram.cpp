//===- server/LatencyHistogram.cpp - Lock-free latency percentiles ---------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "server/LatencyHistogram.h"

#include <algorithm>
#include <cmath>

using namespace pdgc;
using namespace pdgc::server;

// Layout: values 0..7 get their own linear bucket; from 8 up, each
// power-of-two decade [2^d, 2^(d+1)) splits into 4 linear sub-buckets.
// 8 + (32 - 3) * 4 = 124 < 128, so the top bucket absorbs everything
// past ~2.4 hours.

unsigned LatencyHistogram::bucketFor(std::uint64_t Micros) {
  if (Micros < 8)
    return static_cast<unsigned>(Micros);
  unsigned D = 63 - static_cast<unsigned>(__builtin_clzll(Micros));
  unsigned Sub = static_cast<unsigned>((Micros >> (D - 2)) & 3);
  unsigned Bucket = 8 + (D - 3) * 4 + Sub;
  return std::min(Bucket, NumBuckets - 1);
}

std::uint64_t LatencyHistogram::bucketUpperBound(unsigned Bucket) {
  if (Bucket < 8)
    return Bucket;
  unsigned Rel = Bucket - 8;
  unsigned D = 3 + Rel / 4;
  unsigned Sub = Rel % 4;
  return (1ull << D) + (static_cast<std::uint64_t>(Sub) + 1)
                           * (1ull << (D - 2)) - 1;
}

std::uint64_t LatencyHistogram::bucketLowerBound(unsigned Bucket) {
  if (Bucket < 8)
    return Bucket;
  unsigned Rel = Bucket - 8;
  unsigned D = 3 + Rel / 4;
  unsigned Sub = Rel % 4;
  return (1ull << D) + static_cast<std::uint64_t>(Sub) * (1ull << (D - 2));
}

std::uint64_t LatencyHistogram::quantile(double Q) const {
  std::uint64_t N = count();
  if (N == 0)
    return 0;
  Q = std::min(1.0, std::max(0.0, Q));
  std::uint64_t Target = static_cast<std::uint64_t>(
      std::ceil(Q * static_cast<double>(N)));
  if (Target == 0)
    Target = 1;
  std::uint64_t Seen = 0;
  for (unsigned B = 0; B != NumBuckets; ++B) {
    std::uint64_t InBucket = Buckets[B].load(std::memory_order_relaxed);
    if (Seen + InBucket < Target) {
      Seen += InBucket;
      continue;
    }
    // The quantile sample lands in bucket B. Interpolate its rank
    // linearly across the bucket's value range — samples are assumed
    // uniform within a bucket, the standard histogram_quantile estimate.
    const double Lower = static_cast<double>(bucketLowerBound(B));
    const double Upper = static_cast<double>(bucketUpperBound(B));
    const double Frac =
        static_cast<double>(Target - Seen) / static_cast<double>(InBucket);
    return static_cast<std::uint64_t>(Lower + Frac * (Upper - Lower) + 0.5);
  }
  return bucketUpperBound(NumBuckets - 1);
}

std::uint64_t LatencyHistogram::percentileMicros(double P) const {
  std::uint64_t N = count();
  if (N == 0)
    return 0;
  P = std::min(100.0, std::max(0.0, P));
  // The rank of the percentile sample, 1-based, nearest-rank definition.
  std::uint64_t Target = static_cast<std::uint64_t>(
      std::ceil(P / 100.0 * static_cast<double>(N)));
  if (Target == 0)
    Target = 1;
  std::uint64_t Seen = 0;
  for (unsigned B = 0; B != NumBuckets; ++B) {
    Seen += Buckets[B].load(std::memory_order_relaxed);
    if (Seen >= Target)
      return bucketUpperBound(B);
  }
  return bucketUpperBound(NumBuckets - 1);
}

std::string LatencyHistogram::toJson() const {
  std::string Out = "{";
  Out += "\"count\": " + std::to_string(count());
  Out += ", \"mean-us\": " + std::to_string(meanMicros());
  Out += ", \"p50-us\": " + std::to_string(quantile(0.50));
  Out += ", \"p90-us\": " + std::to_string(quantile(0.90));
  Out += ", \"p99-us\": " + std::to_string(quantile(0.99));
  Out += "}";
  return Out;
}
