//===- server/Protocol.h - pdgc-serve wire protocol -------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request/response message layer of the allocation service. Messages
/// travel inside length-prefixed frames (server/FrameCodec.h); the payload
/// itself is line-oriented text so a wedged request can be read straight
/// out of a packet capture:
///
/// \code
///   PDGC/1 ALLOC
///   budget-ms: 200
///   allocator: full-preferences
///
///   func f() { ... }          <- textual IR, verbatim
/// \endcode
///
/// The first line is the magic plus a verb (ALLOC runs an allocation;
/// STATUS and STATS are the health/introspection endpoints; PING is a
/// liveness no-op). Header lines are `key: value` pairs; an empty line
/// ends the headers and everything after it is the body. Responses have
/// the same shape with a status word instead of a verb:
///
///   OK        allocation served by the requested tier
///   DEGRADED  served, but by a fallback tier (details in headers/body)
///   REJECTED  shed by admission control or refused while draining; the
///             `retry-after-ms` header is the client's backoff hint
///   TIMEOUT   the per-request deadline expired before any tier finished
///   MALFORMED the frame, message, or IR failed to parse/verify
///   INTERNAL  an invariant broke (or a fault was injected) server-side;
///             the request died, the server did not
///   CRASHED   the isolated worker process executing the request died
///             (signal, rlimit overrun, or watchdog kill); the request
///             is gone, the server — and every other request — survived
///
/// Parsing is strict about the first line and permissive about unknown
/// headers (ignored), so the protocol can grow fields without breaking
/// old peers. Everything here is pure in-memory transformation — no I/O,
/// no sockets — which is what makes it unit-testable byte for byte.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SERVER_PROTOCOL_H
#define PDGC_SERVER_PROTOCOL_H

#include <cstdint>
#include <string>
#include <vector>

namespace pdgc {
namespace server {

/// Protocol magic of every message's first line.
inline constexpr const char *ProtocolMagic = "PDGC/1";

/// What the client asked the server to do.
enum class RequestType {
  Alloc,  ///< Run an allocation over the body's textual IR.
  Status, ///< Health probe: queue depth, shed state, uptime, draining.
  Stats,  ///< Introspection: counter registry + latency percentiles.
  Ping,   ///< Liveness no-op; answered OK with an empty body.
};

const char *requestTypeName(RequestType T);

/// Terminal status of one request. Order matters: higher values are
/// "worse", and worstOf() folds a batch to its most severe member.
enum class ResponseStatus {
  Ok = 0,
  Degraded,
  Rejected,
  Timeout,
  Malformed,
  Internal,
  /// An isolated worker died executing the request (signal, rlimit
  /// overrun, watchdog kill). Worst severity: the input provably took a
  /// process down, which INTERNAL does not imply.
  Crashed,
};

const char *responseStatusName(ResponseStatus S);

/// worstOf(OK, DEGRADED) == DEGRADED, etc.
inline ResponseStatus worstOf(ResponseStatus A, ResponseStatus B) {
  return static_cast<int>(A) >= static_cast<int>(B) ? A : B;
}

/// One parsed request message.
struct Request {
  RequestType Type = RequestType::Ping;
  /// Wall-clock budget for the whole request (queue wait included);
  /// 0 means "use the server default".
  unsigned BudgetMs = 0;
  /// Spill-round cap per tier; 0 keeps the driver default.
  unsigned MaxRounds = 0;
  /// Leading allocator tier; empty keeps the server default chain.
  std::string Allocator;
  /// Textual IR for ALLOC; ignored otherwise.
  std::string Body;
};

/// One response message. Optional numeric fields use 0 / empty string as
/// "absent" and are serialized only when set.
struct Response {
  ResponseStatus Status = ResponseStatus::Ok;
  /// Client backoff hint, REJECTED only.
  unsigned RetryAfterMs = 0;
  /// Name of the serving tier (ALLOC successes).
  std::string ServedBy;
  /// Spill rounds the serving tier ran.
  unsigned Rounds = 0;
  /// Wall time the server spent on the request, queue wait included.
  unsigned WallMs = 0;
  /// Diagnostic for REJECTED/TIMEOUT/MALFORMED/INTERNAL.
  std::string Error;
  /// Assignment text, degradation records, or health/stats payload.
  std::string Body;
};

/// Serializes \p R into a frame payload.
std::string serializeRequest(const Request &R);

/// Parses a frame payload into \p Out. Returns true on success; on
/// failure \p Error gets a one-line diagnostic and \p Out is unspecified.
bool parseRequest(const std::string &Payload, Request &Out,
                  std::string &Error);

std::string serializeResponse(const Response &R);

bool parseResponse(const std::string &Payload, Response &Out,
                   std::string &Error);

} // namespace server
} // namespace pdgc

#endif // PDGC_SERVER_PROTOCOL_H
