//===- server/FrameCodec.h - Length-prefixed frame transport ----*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte layer under server/Protocol.h: every message travels as a
/// 4-byte big-endian length followed by exactly that many payload bytes.
/// The codec is deliberately paranoid about the length header, because it
/// is the only field an attacker fully controls before any validation
/// runs:
///
///  * a header larger than the configured cap fails with `Oversized`
///    *before* any payload buffer is allocated — a hostile 0xFFFFFFFF
///    header costs the server four bytes of reads, not 4 GiB of heap;
///  * a connection that ends mid-header or mid-payload fails with
///    `Truncated` (distinct from `ClosedClean`, the EOF exactly on a
///    frame boundary that marks a polite hang-up);
///  * zero-length frames are valid *frames* (the payload is empty) — it
///    is the message layer's job to call an empty message malformed.
///
/// Reads and writes retry on EINTR and loop over short transfers, so the
/// callers see whole frames or a typed error, never a partial. Everything
/// works on plain file descriptors (sockets, socketpairs, pipes), which
/// is how the unit tests drive the edge cases without a network.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SERVER_FRAMECODEC_H
#define PDGC_SERVER_FRAMECODEC_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace pdgc {
namespace server {

/// Default cap on one frame's payload (4 MiB) — far above any plausible
/// function text, far below anything that could wedge the host.
inline constexpr std::uint32_t DefaultMaxFrameBytes = 4u << 20;

/// Why a frame read ended.
enum class FrameResult {
  Ok = 0,      ///< A whole frame was read into the payload buffer.
  ClosedClean, ///< EOF exactly on a frame boundary (no bytes of a frame).
  Truncated,   ///< EOF mid-header or mid-payload.
  Oversized,   ///< Length header exceeds the cap; nothing was allocated.
  IoError,     ///< read()/write() failed (errno-level problem).
};

const char *frameResultName(FrameResult R);

/// Reads one frame from \p Fd into \p Payload (replaced, not appended).
/// \p MaxBytes bounds the allocation; an oversized header leaves the
/// stream positioned after the header (the connection should be closed —
/// the payload length can no longer be trusted for resync).
FrameResult readFrame(int Fd, std::string &Payload,
                      std::uint32_t MaxBytes = DefaultMaxFrameBytes);

/// Writes \p Payload as one frame. Returns false on any write failure
/// (including a payload larger than 2^32 - 1 bytes).
bool writeFrame(int Fd, const std::string &Payload);

} // namespace server
} // namespace pdgc

#endif // PDGC_SERVER_FRAMECODEC_H
