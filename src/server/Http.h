//===- server/Http.h - Minimal HTTP/1.1 observability plane -----*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The HTTP half of pdgc-serve's dual-plane port. The daemon's primary
/// protocol is binary (length-prefixed PDGC/1 frames); this module adds a
/// dependency-free HTTP/1.1 *responder* — just enough of RFC 9112 to let
/// `curl`, a browser, or a Prometheus scraper hit the observability
/// endpoints (`/healthz`, `/readyz`, `/metrics`, `/stats`, `/requests`)
/// without a client library. It is a responder, not a general server:
///
///  * **GET/HEAD only.** Every endpoint is a read; anything else answers
///    405 with an `Allow` header. Request bodies are refused (400) — an
///    observability plane that accepts uploads is an attack surface.
///  * **Strict size caps.** The request line and header block are bounded
///    (`HttpLimits`) *before* parsing; an oversized head answers 431 and
///    closes, mirroring the frame codec's refuse-before-allocate rule.
///  * **Keep-alive.** HTTP/1.1 defaults to keep-alive, `Connection:
///    close` (or HTTP/1.0 without `keep-alive`) is honored, and pipelined
///    requests already sitting in the buffer are served in order.
///  * **Typed failure.** 400 malformed / 404 unknown path / 405 method /
///    431 oversized head / 503 draining-or-shedding — the same
///    "every request dies typed" contract as the binary plane.
///
/// Everything here is a pure in-memory transformation (no sockets, no
/// I/O), which is what makes the edge cases unit-testable byte for byte;
/// `server/Server.cpp` owns the socket loop.
///
/// **Plane sniffing.** One port serves both protocols. The first byte a
/// connection sends decides its plane for life: every HTTP method begins
/// with an uppercase ASCII letter (0x41..0x5A), while a binary frame
/// begins with the high byte of a 4-byte big-endian length that the frame
/// cap (`--max-frame-bytes`, hard ceiling 1 GiB = 0x40000000) keeps below
/// 0x41. A "frame" whose length bytes spell ASCII therefore *is* an
/// impossible frame — it would claim >= 1.09 GiB — and is deterministically
/// parsed as HTTP instead, where a garbage request line answers 400. The
/// planes cannot collide; see sniffPlane().
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SERVER_HTTP_H
#define PDGC_SERVER_HTTP_H

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace pdgc {
namespace server {

/// Which protocol a connection's first byte announces.
enum class Plane {
  Binary, ///< Length-prefixed PDGC/1 frames.
  Http,   ///< HTTP/1.1 observability requests.
};

/// Decides a connection's plane from its first byte (see the file
/// comment: uppercase ASCII cannot begin a valid binary frame).
Plane sniffPlane(unsigned char FirstByte);

/// Parser size caps, applied before any header is materialized.
struct HttpLimits {
  /// Longest accepted request line ("GET /path?query HTTP/1.1").
  std::size_t MaxRequestLine = 4096;
  /// Cap on the whole head (request line + headers + blank line).
  std::size_t MaxHeadBytes = 8192;
  /// Cap on the number of header fields.
  unsigned MaxHeaders = 64;
};

/// One parsed request head. Field names are lower-cased; values are
/// trimmed of surrounding whitespace.
struct HttpRequest {
  std::string Method;  ///< Verbatim (method names are case-sensitive).
  std::string Path;    ///< Request target up to '?', no decoding.
  std::string Query;   ///< Everything after '?' (may be empty).
  std::string Version; ///< "HTTP/1.0" or "HTTP/1.1".
  std::vector<std::pair<std::string, std::string>> Headers;
  /// Whether the connection should serve another request afterwards
  /// (HTTP/1.1 default, overridden by Connection: close / keep-alive).
  bool KeepAlive = true;
  /// Bytes of \p Buffer the head consumed (valid when parse returns Ok);
  /// the caller erases them to find pipelined successors.
  std::size_t HeadBytes = 0;

  /// First value of \p Name (case-insensitive), or "" when absent.
  const std::string &header(const std::string &Name) const;
};

/// Outcome of parseHttpRequest.
enum class HttpParse {
  Ok,       ///< A complete head was parsed.
  NeedMore, ///< The buffer ends before the blank line; read more bytes.
  Bad,      ///< Malformed head — answer 400 and close.
  TooLarge, ///< A cap tripped — answer 431 and close.
};

/// Parses one request head from the front of \p Buffer. On Bad/TooLarge
/// \p Error carries a one-line diagnostic. NeedMore is only returned
/// while the buffer is still under the caps — a head that exceeds them
/// without finishing answers TooLarge, so a hostile peer cannot grow the
/// buffer unboundedly.
HttpParse parseHttpRequest(const std::string &Buffer, HttpRequest &Out,
                           std::string &Error,
                           const HttpLimits &Limits = HttpLimits());

/// Value of \p Key in a query string ("n=32&x=1"), or "" when absent.
/// No percent-decoding — the observability endpoints take numbers only.
std::string queryParam(const std::string &Query, const std::string &Key);

/// Reason phrase for the status codes this plane emits (500 otherwise).
const char *httpStatusText(int Code);

/// Renders a full response (status line, Content-Type/Length, Connection,
/// optional extra header lines, body). \p KeepAlive controls the
/// Connection header; \p HeadOnly (HEAD requests) omits the body while
/// keeping the true Content-Length.
std::string renderHttpResponse(int Code, const std::string &ContentType,
                               const std::string &Body, bool KeepAlive,
                               bool HeadOnly = false,
                               const std::vector<std::string> &ExtraHeaders =
                                   {});

/// Escapes a Prometheus label value (backslash, double quote, newline).
std::string prometheusEscape(const std::string &S);

} // namespace server
} // namespace pdgc

#endif // PDGC_SERVER_HTTP_H
