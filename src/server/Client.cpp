//===- server/Client.cpp - pdgc-serve client connection --------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"

#include "server/FrameCodec.h"

#include <chrono>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace pdgc;
using namespace pdgc::server;

const char *server::transportErrorName(TransportError E) {
  switch (E) {
  case TransportError::None:
    return "none";
  case TransportError::ConnectFailed:
    return "connect-failed";
  case TransportError::SendFailed:
    return "send-failed";
  case TransportError::RecvFailed:
    return "recv-failed";
  case TransportError::BadResponse:
    return "bad-response";
  }
  return "none";
}

ClientConnection::~ClientConnection() { close(); }

void ClientConnection::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool ClientConnection::connect(std::uint16_t Port) {
  // A signal may interrupt connect() (EINTR audit: tests arm timer
  // signals; servers reap children). POSIX leaves the old socket
  // connecting asynchronously after EINTR, so retry on a *fresh* socket
  // rather than re-calling connect() on the same fd (that would report
  // EALREADY, not progress).
  for (int Tries = 0; Tries != 4; ++Tries) {
    close();
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0)
      return false;
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    Addr.sin_port = htons(Port);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) ==
        0) {
      int One = 1;
      ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof One);
      return true;
    }
    if (errno != EINTR)
      break;
  }
  close();
  return false;
}

TransportError ClientConnection::call(const Request &Req, Response &Out) {
  if (Fd < 0)
    return TransportError::ConnectFailed;
  if (!writeFrame(Fd, serializeRequest(Req))) {
    close();
    return TransportError::SendFailed;
  }
  std::string Payload;
  if (readFrame(Fd, Payload) != FrameResult::Ok) {
    close();
    return TransportError::RecvFailed;
  }
  Response R;
  std::string Error;
  if (!parseResponse(Payload, R, Error)) {
    close();
    return TransportError::BadResponse;
  }
  Out = std::move(R);
  return TransportError::None;
}

TransportError ClientConnection::callWithRetry(
    const Request &Req, Response &Out, std::uint16_t Port,
    unsigned MaxAttempts, bool RetryTransport, std::uint64_t Seed,
    unsigned *Retries, unsigned MaxElapsedMs) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point Start = Clock::now();
  // Remaining wall budget in ms; ~0ull means unbounded (the policy's
  // MaxElapsedMs == 0). Every backoff sleep is clipped to it, so the
  // loop can never owe more sleep than the budget allows.
  auto RemainingMs = [&]() -> std::uint64_t {
    if (MaxElapsedMs == 0)
      return ~0ull;
    std::uint64_t Spent = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                              Start)
            .count());
    return Spent >= MaxElapsedMs ? 0 : MaxElapsedMs - Spent;
  };
  auto BackoffClipped = [&](std::uint64_t SleepMs) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::min(SleepMs, RemainingMs())));
  };

  TransportError Last = TransportError::ConnectFailed;
  for (unsigned Attempt = 0; Attempt < MaxAttempts; ++Attempt) {
    if (Attempt != 0 && RemainingMs() == 0)
      return Last; // the retry policy's wall budget is spent
    if (Attempt != 0 && Retries)
      ++*Retries;
    if (!connected() && !connect(Port)) {
      Last = TransportError::ConnectFailed;
      if (!RetryTransport)
        return Last;
      // The server may be mid-overload or mid-accept-fault; back off
      // like a shed request would.
      BackoffClipped(5u << std::min(Attempt, 6u));
      continue;
    }
    Last = call(Req, Out);
    if (Last == TransportError::None) {
      if (Out.Status != ResponseStatus::Rejected)
        return TransportError::None;
      // Shed: honor the server's hint, doubled per attempt, with a
      // deterministic jitter so a fleet of clients does not stampede
      // back in lockstep.
      unsigned Base = Out.RetryAfterMs ? Out.RetryAfterMs : 10;
      std::uint64_t H = Seed * 0x9E3779B97F4A7C15ull + Attempt + 1;
      H ^= H >> 33;
      unsigned Jitter = static_cast<unsigned>(H % (Base + 1));
      unsigned SleepMs = std::min(
          Base * (1u << std::min(Attempt, 6u)) + Jitter, 2000u);
      BackoffClipped(SleepMs);
      continue;
    }
    if (!RetryTransport)
      return Last;
    BackoffClipped(5u << std::min(Attempt, 6u));
  }
  return Last == TransportError::None ? TransportError::None : Last;
}
