//===- server/FlightRecorder.h - Last-N request ring buffer -----*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size, lock-free ring buffer holding the last N *completed*
/// requests the daemon served — the "flight recorder" an operator reads
/// after something went wrong. Each record is a small POD (fixed char
/// arrays, no heap) so writers never allocate and a crashed process's
/// core dump still contains the ring intact.
///
/// Concurrency is a per-slot seqlock: a writer claims the next slot with
/// a single fetch_add, flips the slot's sequence odd, copies the record,
/// and flips it even again. Readers copy the record between two sequence
/// loads and discard the copy when the numbers differ (torn read) or the
/// slot is mid-write (odd). Writers never wait on readers and readers
/// never block writers; the cost of that is that a reader may miss a
/// record that is being overwritten at that instant, which for a
/// forensics buffer is the right trade.
///
/// The recorder is engaged from the server's respond path (every request
/// on either plane — binary alloc/meta frames and HTTP endpoint hits —
/// lands here) and surfaces in three places: `GET /requests?n=K` (JSON),
/// the SIGTERM drain summary (text), and, joined on the `Id` field, the
/// `req` argument stamped on `batch.item` / `tier.*` trace spans.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SERVER_FLIGHTRECORDER_H
#define PDGC_SERVER_FLIGHTRECORDER_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace pdgc {
namespace server {

/// One completed request. POD with inline storage only — writers must
/// not allocate. String fields are NUL-terminated and truncated to fit.
struct FlightRecord {
  std::uint64_t Id = 0;          ///< Monotonic per-process request id.
  std::uint64_t QueueMicros = 0; ///< Admission-queue wait (0 for meta/HTTP).
  std::uint64_t WallMicros = 0;  ///< Arrival to response write.
  std::uint32_t BytesIn = 0;     ///< Request frame/head size.
  std::uint32_t BytesOut = 0;    ///< Response frame/body size.
  char Status[16] = {0};         ///< "ok", "degraded", "timeout", "404", ...
  char Kind[12] = {0};           ///< "alloc", "meta", "http".
  char Peer[48] = {0};           ///< "ip:port" of the client.
  char Target[32] = {0};         ///< Tier served by, or HTTP path.
  char Detail[64] = {0};         ///< Degradations, fault sites, error text.
};

/// Copies \p Src into a fixed record field, truncating and always
/// NUL-terminating.
template <std::size_t N> void setFlightField(char (&Dst)[N], std::string_view Src) {
  const std::size_t Len = Src.size() < N - 1 ? Src.size() : N - 1;
  for (std::size_t I = 0; I < Len; ++I)
    Dst[I] = Src[I];
  Dst[Len] = '\0';
}

class FlightRecorder {
public:
  /// \p Capacity is rounded up to at least 1. Memory is Capacity *
  /// sizeof(Slot) (~256 B/slot), allocated once here.
  explicit FlightRecorder(std::size_t Capacity);

  /// Publishes one completed request. Lock-free; safe from any thread.
  /// Under writer-writer contention on the same slot the record is
  /// dropped (counted in `flight.contended`) rather than waited on.
  void record(const FlightRecord &R);

  /// Snapshot of the most recent \p N records, newest first. Skips slots
  /// that are mid-write. Lock-free readers; O(min(N, capacity)).
  std::vector<FlightRecord> lastN(std::size_t N) const;

  /// `lastN(N)` rendered as a JSON array (newest first).
  std::string toJson(std::size_t N) const;

  /// `lastN(N)` rendered as an aligned text table for the drain summary.
  std::string renderText(std::size_t N) const;

  /// Total records published since construction (not capped at capacity).
  std::uint64_t recordedCount() const {
    return Next.load(std::memory_order_relaxed);
  }

  std::size_t capacity() const { return Cap; }

private:
  struct Slot {
    /// Even: stable; odd: a writer is copying. Starts 0 = empty+stable.
    std::atomic<std::uint64_t> Seq{0};
    FlightRecord Rec;
  };

  const std::size_t Cap;
  std::unique_ptr<Slot[]> Slots;
  /// Next record index; slot = Next % Cap. Doubles as the publish count.
  std::atomic<std::uint64_t> Next{0};
};

/// Renders one record as a JSON object (shared by toJson and tests).
std::string flightRecordJson(const FlightRecord &R);

} // namespace server
} // namespace pdgc

#endif // PDGC_SERVER_FLIGHTRECORDER_H
