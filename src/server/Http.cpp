//===- server/Http.cpp - Minimal HTTP/1.1 observability plane --------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "server/Http.h"

#include <algorithm>
#include <cctype>

using namespace pdgc;
using namespace pdgc::server;

namespace {

bool isUpperAscii(unsigned char C) { return C >= 'A' && C <= 'Z'; }

std::string toLower(std::string S) {
  std::transform(S.begin(), S.end(), S.begin(), [](unsigned char C) {
    return static_cast<char>(std::tolower(C));
  });
  return S;
}

std::string trim(const std::string &S) {
  std::size_t B = S.find_first_not_of(" \t");
  if (B == std::string::npos)
    return "";
  std::size_t E = S.find_last_not_of(" \t");
  return S.substr(B, E - B + 1);
}

/// A header field name per RFC 9110 "token": no spaces, no separators.
bool validFieldName(const std::string &Name) {
  if (Name.empty())
    return false;
  for (unsigned char C : Name) {
    if (std::isalnum(C) || C == '-' || C == '_')
      continue;
    return false;
  }
  return true;
}

bool validMethodToken(const std::string &M) {
  if (M.empty() || M.size() > 16)
    return false;
  for (unsigned char C : M)
    if (!isUpperAscii(C))
      return false;
  return true;
}

} // namespace

Plane pdgc::server::sniffPlane(unsigned char FirstByte) {
  // Every HTTP method token starts with an uppercase ASCII letter. A
  // binary frame starts with the most-significant byte of its big-endian
  // length; the frame cap tops out at 1 GiB (0x40000000), so a valid
  // frame's first byte is at most 0x40 < 'A'. The byte that would make
  // the planes ambiguous would also make the frame impossibly large.
  return isUpperAscii(FirstByte) ? Plane::Http : Plane::Binary;
}

const std::string &HttpRequest::header(const std::string &Name) const {
  static const std::string Empty;
  const std::string Key = toLower(Name);
  for (const auto &[K, V] : Headers)
    if (K == Key)
      return V;
  return Empty;
}

HttpParse pdgc::server::parseHttpRequest(const std::string &Buffer,
                                         HttpRequest &Out,
                                         std::string &Error,
                                         const HttpLimits &Limits) {
  Out = HttpRequest();

  const std::size_t HeadEnd = Buffer.find("\r\n\r\n");
  if (HeadEnd == std::string::npos) {
    // Refuse-before-parse: a head that has already outgrown the cap will
    // never finish inside it, so fail now instead of buffering forever.
    if (Buffer.size() > Limits.MaxHeadBytes) {
      Error = "request head exceeds " + std::to_string(Limits.MaxHeadBytes) +
              " bytes";
      return HttpParse::TooLarge;
    }
    const std::size_t LineEnd = Buffer.find("\r\n");
    if (LineEnd == std::string::npos && Buffer.size() > Limits.MaxRequestLine) {
      Error = "request line exceeds " +
              std::to_string(Limits.MaxRequestLine) + " bytes";
      return HttpParse::TooLarge;
    }
    return HttpParse::NeedMore;
  }
  if (HeadEnd + 4 > Limits.MaxHeadBytes) {
    Error = "request head exceeds " + std::to_string(Limits.MaxHeadBytes) +
            " bytes";
    return HttpParse::TooLarge;
  }

  // --- Request line: METHOD SP TARGET SP VERSION ---
  const std::size_t LineEnd = Buffer.find("\r\n");
  if (LineEnd > Limits.MaxRequestLine) {
    Error = "request line exceeds " + std::to_string(Limits.MaxRequestLine) +
            " bytes";
    return HttpParse::TooLarge;
  }
  const std::string Line = Buffer.substr(0, LineEnd);
  const std::size_t Sp1 = Line.find(' ');
  const std::size_t Sp2 = Line.rfind(' ');
  if (Sp1 == std::string::npos || Sp2 == Sp1) {
    Error = "malformed request line (want 'METHOD TARGET HTTP/1.x')";
    return HttpParse::Bad;
  }
  Out.Method = Line.substr(0, Sp1);
  std::string Target = Line.substr(Sp1 + 1, Sp2 - Sp1 - 1);
  Out.Version = Line.substr(Sp2 + 1);
  if (!validMethodToken(Out.Method)) {
    Error = "malformed method token";
    return HttpParse::Bad;
  }
  if (Out.Version != "HTTP/1.1" && Out.Version != "HTTP/1.0") {
    Error = "unsupported protocol version '" + Out.Version + "'";
    return HttpParse::Bad;
  }
  if (Target.empty() || Target[0] != '/' ||
      Target.find(' ') != std::string::npos) {
    Error = "malformed request target";
    return HttpParse::Bad;
  }
  const std::size_t Q = Target.find('?');
  Out.Path = Target.substr(0, Q);
  Out.Query = Q == std::string::npos ? "" : Target.substr(Q + 1);

  // --- Header fields ---
  std::size_t Pos = LineEnd + 2;
  while (Pos < HeadEnd + 2) {
    std::size_t End = Buffer.find("\r\n", Pos);
    const std::string Field = Buffer.substr(Pos, End - Pos);
    Pos = End + 2;
    if (Field.empty())
      break;
    if (Out.Headers.size() == Limits.MaxHeaders) {
      Error = "more than " + std::to_string(Limits.MaxHeaders) +
              " header fields";
      return HttpParse::TooLarge;
    }
    const std::size_t Colon = Field.find(':');
    if (Colon == std::string::npos) {
      Error = "header field without ':'";
      return HttpParse::Bad;
    }
    std::string Name = Field.substr(0, Colon);
    if (!validFieldName(Name)) {
      Error = "malformed header field name";
      return HttpParse::Bad;
    }
    Out.Headers.emplace_back(toLower(Name), trim(Field.substr(Colon + 1)));
  }

  // --- Connection persistence ---
  const std::string Conn = toLower(Out.header("connection"));
  if (Out.Version == "HTTP/1.0")
    Out.KeepAlive = Conn == "keep-alive";
  else
    Out.KeepAlive = Conn != "close";

  Out.HeadBytes = HeadEnd + 4;
  return HttpParse::Ok;
}

std::string pdgc::server::queryParam(const std::string &Query,
                                     const std::string &Key) {
  std::size_t Pos = 0;
  while (Pos <= Query.size()) {
    std::size_t End = Query.find('&', Pos);
    if (End == std::string::npos)
      End = Query.size();
    const std::size_t Eq = Query.find('=', Pos);
    if (Eq != std::string::npos && Eq < End &&
        Query.compare(Pos, Eq - Pos, Key) == 0)
      return Query.substr(Eq + 1, End - Eq - 1);
    Pos = End + 1;
  }
  return "";
}

const char *pdgc::server::httpStatusText(int Code) {
  switch (Code) {
  case 200:
    return "OK";
  case 400:
    return "Bad Request";
  case 404:
    return "Not Found";
  case 405:
    return "Method Not Allowed";
  case 431:
    return "Request Header Fields Too Large";
  case 503:
    return "Service Unavailable";
  default:
    return "Internal Server Error";
  }
}

std::string pdgc::server::renderHttpResponse(
    int Code, const std::string &ContentType, const std::string &Body,
    bool KeepAlive, bool HeadOnly,
    const std::vector<std::string> &ExtraHeaders) {
  std::string Out = "HTTP/1.1 " + std::to_string(Code) + " " +
                    httpStatusText(Code) + "\r\n";
  Out += "Content-Type: " + ContentType + "\r\n";
  Out += "Content-Length: " + std::to_string(Body.size()) + "\r\n";
  Out += KeepAlive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const std::string &H : ExtraHeaders)
    Out += H + "\r\n";
  Out += "\r\n";
  if (!HeadOnly)
    Out += Body;
  return Out;
}

std::string pdgc::server::prometheusEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}
