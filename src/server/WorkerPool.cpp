//===- server/WorkerPool.cpp - Supervised sandbox worker pool -------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "server/WorkerPool.h"

#include "core/PDGCRegistration.h"
#include "server/AllocRunner.h"
#include "server/FrameCodec.h"
#include "support/FaultInjection.h"
#include "support/Stats.h"
#include "support/Subprocess.h"
#include "support/ThreadAnnotations.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace pdgc;
using namespace pdgc::server;

std::uint64_t pdgc::server::contentHash(const std::string &Body) {
  // FNV-1a 64: cheap, stable across runs, good enough to key a breaker
  // map (an adversarial collision buys the attacker a quarantine entry,
  // not an escape from one).
  std::uint64_t H = 14695981039346656037ull;
  for (unsigned char C : Body) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

namespace {

using Clock = Deadline::Clock;

/// Child exit codes that mean "the worker runtime failed, not the
/// request": clean request-pipe EOF and a broken response pipe. These are
/// infrastructure deaths — the input is innocent, so the supervisor
/// replays it once on a fresh worker instead of reporting CRASHED.
constexpr int ChildExitClean = 0;
constexpr int ChildExitTransport = 10;

/// SIGCHLD self-pipe. The handler only writes one byte (async-signal-
/// safe); the watchdog drains it. Installed once per process, without
/// SA_RESTART — EINTR must stay a real, exercised code path in every
/// read/write loop (the audit in docs/ROBUSTNESS.md), not something a
/// flag papers over.
int GSigChldPipe[2] = {-1, -1};

void sigChldHandler(int) {
  int Saved = errno;
  char B = 'c';
  (void)!::write(GSigChldPipe[1], &B, 1);
  errno = Saved;
}

void installSigChldOnce() {
  // Magic-static once: <mutex> (std::call_once) is lint-banned outside
  // the annotation wrapper, and this needs no capability tracking.
  static const bool Installed = [] {
    if (::pipe(GSigChldPipe) != 0)
      return false;
    ::fcntl(GSigChldPipe[0], F_SETFL, O_NONBLOCK);
    ::fcntl(GSigChldPipe[1], F_SETFL, O_NONBLOCK);
    struct sigaction SA;
    std::memset(&SA, 0, sizeof SA);
    SA.sa_handler = sigChldHandler;
    sigemptyset(&SA.sa_mask);
    SA.sa_flags = SA_NOCLDSTOP; // deliberately no SA_RESTART
    ::sigaction(SIGCHLD, &SA, nullptr);
    return true;
  }();
  (void)Installed;
}

void drainSigChldPipe() {
  if (GSigChldPipe[0] < 0)
    return;
  char Buf[64];
  while (::read(GSigChldPipe[0], Buf, sizeof Buf) > 0) {
  }
}

enum class SlotState {
  Dead,    ///< No child; NextSpawnAt gates the respawn.
  Idle,    ///< Live child awaiting a dispatch.
  Busy,    ///< A dispatcher owns the pipes; watchdog may SIGKILL.
  Reaping, ///< The dispatcher is wait()ing on the corpse; hands off.
};

/// One worker seat. State-machine fields are guarded by the pool mutex;
/// `Proc` itself is deliberately unannotated — its pipes and reaping are
/// owned by exactly one thread at a time (the dispatcher while
/// Busy/Reaping, the watchdog otherwise), which the State field
/// serializes under the lock.
struct Slot {
  Subprocess Proc;
  SlotState State = SlotState::Dead;
  pid_t Pid = -1; ///< Snapshot for the watchdog's kill (never reaps).
  Clock::time_point KillAt{};
  Clock::time_point NextSpawnAt{};
  bool WatchdogKilled = false;
  bool EverSpawned = false;
  unsigned ConsecutiveFailures = 0;
};

struct BreakerEntry {
  unsigned Crashes = 0;
  Clock::time_point LastCrash{};
};

} // namespace

struct WorkerPool::Impl {
  const WorkerPoolOptions Opts;

  mutable Mutex Mu;
  CondVar IdleCV;     ///< Signaled when a slot turns Idle.
  CondVar WatchdogCV; ///< Signaled on retire/stop to shorten the tick.
  std::vector<std::unique_ptr<Slot>> Slots; ///< Fixed size after ctor.
  bool Stopping PDGC_GUARDED_BY(Mu) = false;
  bool Started PDGC_GUARDED_BY(Mu) = false;
  std::unordered_map<std::uint64_t, BreakerEntry> Breaker PDGC_GUARDED_BY(Mu);

  // Pool-local mirrors of the worker.* registry counters (the registry
  // is process-global; tests run many pools per process).
  std::uint64_t NSpawns PDGC_GUARDED_BY(Mu) = 0;
  std::uint64_t NRespawns PDGC_GUARDED_BY(Mu) = 0;
  std::uint64_t NCrashes PDGC_GUARDED_BY(Mu) = 0;
  std::uint64_t NKills PDGC_GUARDED_BY(Mu) = 0;
  std::uint64_t NReplays PDGC_GUARDED_BY(Mu) = 0;
  std::uint64_t NQuarantined PDGC_GUARDED_BY(Mu) = 0;

  std::thread Watchdog;

  explicit Impl(const WorkerPoolOptions &OptsIn) : Opts(OptsIn) {
    for (unsigned N = std::max(1u, Opts.Workers); N != 0; --N)
      Slots.push_back(std::make_unique<Slot>());
  }

  bool start(std::string *Error);
  void stop();
  WorkerExecResult execute(const Request &Req, Clock::time_point DeadlineAt,
                           bool IsReplay);
  WorkerPoolStats stats() const;

  int childServantLoop(int InFd, int OutFd) const;
  bool spawnLocked(Slot &S) PDGC_REQUIRES(Mu);
  void scheduleRespawnLocked(Slot &S) PDGC_REQUIRES(Mu);
  Slot *acquireIdle(Clock::time_point DeadlineAt);
  void release(Slot *S);
  void retireSlot(Slot *S);
  bool quarantinedLocked(std::uint64_t Hash, unsigned *RetryMs)
      PDGC_REQUIRES(Mu);
  void recordCrash(std::uint64_t Hash, const Request &Req,
                   const WaitStatus &WS, bool Killed);
  void writeDossier(std::uint64_t Hash, unsigned CrashCount,
                    const Request &Req, const WaitStatus &WS,
                    bool Killed) const;
  void watchdogLoop();
};

//===----------------------------------------------------------------------===//
// Child side
//===----------------------------------------------------------------------===//

int WorkerPool::Impl::childServantLoop(int InFd, int OutFd) const {
  for (;;) {
    std::string Payload;
    FrameResult FR = readFrame(InFd, Payload, Opts.MaxFrameBytes);
    if (FR == FrameResult::ClosedClean)
      return ChildExitClean; // supervisor closed the request pipe
    if (FR != FrameResult::Ok)
      return ChildExitTransport;
    Request Req;
    std::string ParseError;
    Response R;
    if (!parseRequest(Payload, Req, ParseError)) {
      R.Status = ResponseStatus::Malformed;
      R.Error = "worker: " + ParseError;
    } else {
      // The real-abort chaos site: an armed rule firing here becomes a
      // genuine std::abort(), i.e. an authentic SIGABRT corpse for the
      // supervisor to contain — not a simulated error value. Plans are
      // inherited at fork with fresh per-site hit counters, so
      // `worker.abort:fatal@n=1` crashes each new child's first request
      // and `every=7` each child's every seventh.
      try {
        PDGC_FAULT_POINT("worker.abort");
      } catch (...) {
        std::abort();
      }
      AllocEnv Env;
      Env.Regs = Opts.Regs;
      Env.DefaultAllocator = Opts.DefaultAllocator;
      // CancelAt/RequestDeadline left unset: derived from the
      // remaining-budget stamp the supervisor put on the wire request.
      R = runAllocGuarded([&] { return executeAllocRequest(Req, Env); });
    }
    if (!writeFrame(OutFd, serializeResponse(R)))
      return ChildExitTransport;
  }
}

//===----------------------------------------------------------------------===//
// Spawning and supervision
//===----------------------------------------------------------------------===//

bool WorkerPool::Impl::spawnLocked(Slot &S) {
  try {
    PDGC_FAULT_POINT("worker.spawn");
  } catch (const std::exception &) {
    PDGC_STAT("worker", "spawn_faults").inc();
    scheduleRespawnLocked(S);
    return false;
  }
  SubprocessLimits Limits;
  Limits.AddressSpaceMb = Opts.AddressSpaceMb;
  Limits.CpuSeconds = Opts.CpuSeconds;
  std::string Err;
  // fork() from a multithreaded supervisor: the child runs only
  // async-fork-tame code (frame I/O + the allocator, single-threaded).
  // The one residual hazard — another thread holding a process-global
  // registry lock at fork — wedges that child, which the watchdog then
  // kills at deadline+grace: contained, not fatal.
  if (!S.Proc.spawn(Limits,
                    [this](int InFd, int OutFd) {
                      return childServantLoop(InFd, OutFd);
                    },
                    &Err)) {
    scheduleRespawnLocked(S);
    return false;
  }
  S.State = SlotState::Idle;
  S.Pid = S.Proc.pid();
  S.WatchdogKilled = false;
  ++NSpawns;
  PDGC_STAT("worker", "spawns").inc();
  if (S.EverSpawned) {
    ++NRespawns;
    PDGC_STAT("worker", "respawns").inc();
  }
  S.EverSpawned = true;
  IdleCV.notify_one();
  return true;
}

void WorkerPool::Impl::scheduleRespawnLocked(Slot &S) {
  ++S.ConsecutiveFailures;
  unsigned Shift = std::min(S.ConsecutiveFailures - 1, 10u);
  std::uint64_t Backoff =
      std::min<std::uint64_t>(static_cast<std::uint64_t>(Opts.RespawnBackoffMs)
                                  << Shift,
                              Opts.MaxRespawnBackoffMs);
  S.State = SlotState::Dead;
  S.Pid = -1;
  S.NextSpawnAt = Clock::now() + std::chrono::milliseconds(Backoff);
}

bool WorkerPool::Impl::start(std::string *Error) {
  (void)Error;
  registerPDGCAllocators();
  // A worker dying mid-dispatch must surface as EPIPE on the write loop,
  // not kill the supervisor.
  ::signal(SIGPIPE, SIG_IGN);
  installSigChldOnce();
  if (!Opts.CrashDir.empty())
    (void)::mkdir(Opts.CrashDir.c_str(), 0755); // best effort; may exist
  {
    MutexLock Lock(Mu);
    Started = true;
    Stopping = false;
    for (std::unique_ptr<Slot> &SP : Slots)
      (void)spawnLocked(*SP); // lenient: the watchdog retries failures
  }
  Watchdog = std::thread([this] { watchdogLoop(); });
  return true;
}

void WorkerPool::Impl::stop() {
  {
    MutexLock Lock(Mu);
    if (!Started || Stopping)
      return;
    Stopping = true;
    WatchdogCV.notify_all();
    IdleCV.notify_all();
  }
  if (Watchdog.joinable())
    Watchdog.join();
  MutexLock Lock(Mu);
  for (std::unique_ptr<Slot> &SP : Slots) {
    Slot &S = *SP;
    if (S.State == SlotState::Idle || S.State == SlotState::Busy) {
      // Pipe EOF lets a responsive child exit 0; SIGKILL covers the rest.
      // No execute() is in flight (the server joins dispatchers first),
      // so owning Proc here is safe.
      S.Proc.closePipes();
      S.Proc.kill(SIGKILL);
      (void)S.Proc.wait();
      S.State = SlotState::Dead;
      S.Pid = -1;
    }
  }
}

void WorkerPool::Impl::watchdogLoop() {
  MutexLock Lock(Mu);
  while (!Stopping) {
    Clock::time_point Now = Clock::now();
    for (std::unique_ptr<Slot> &SP : Slots) {
      Slot &S = *SP;
      switch (S.State) {
      case SlotState::Busy:
        if (!S.WatchdogKilled && Now >= S.KillAt) {
          // Wedged past deadline + grace: no cooperative poll is coming.
          S.WatchdogKilled = true;
          ++NKills;
          PDGC_STAT("worker", "kills").inc();
          if (S.Pid > 0)
            (void)::kill(S.Pid, SIGKILL);
        }
        break;
      case SlotState::Idle: {
        // Reap idle deaths (rlimit kill between requests, external
        // signal) so the seat respawns instead of failing its next
        // dispatch. Safe to touch Proc: no dispatcher owns an Idle slot.
        WaitStatus WS = S.Proc.tryWait();
        if (WS.State != WaitStatus::Running) {
          S.Proc.closePipes();
          scheduleRespawnLocked(S);
        }
        break;
      }
      case SlotState::Dead:
        if (Now >= S.NextSpawnAt)
          (void)spawnLocked(S);
        break;
      case SlotState::Reaping:
        break; // a dispatcher owns the corpse
      }
    }
    drainSigChldPipe();
    WatchdogCV.waitForMs(Lock, 10);
  }
}

//===----------------------------------------------------------------------===//
// Dispatch
//===----------------------------------------------------------------------===//

Slot *WorkerPool::Impl::acquireIdle(Clock::time_point DeadlineAt) {
  MutexLock Lock(Mu);
  for (;;) {
    if (Stopping)
      return nullptr;
    for (std::unique_ptr<Slot> &SP : Slots) {
      if (SP->State == SlotState::Idle) {
        SP->State = SlotState::Busy;
        SP->WatchdogKilled = false;
        SP->KillAt = DeadlineAt + std::chrono::milliseconds(Opts.GraceMs);
        return SP.get();
      }
    }
    Clock::time_point Now = Clock::now();
    if (Now >= DeadlineAt)
      return nullptr;
    std::int64_t RemainMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(DeadlineAt - Now)
            .count() +
        1;
    IdleCV.waitForMs(Lock,
                     static_cast<unsigned>(std::min<std::int64_t>(RemainMs, 50)));
  }
}

void WorkerPool::Impl::release(Slot *S) {
  MutexLock Lock(Mu);
  S->State = SlotState::Idle;
  S->ConsecutiveFailures = 0;
  // If the watchdog killed this worker after it answered (a photo-finish
  // with the deadline), the idle-reap in the next watchdog tick notices
  // the corpse and respawns the seat.
  IdleCV.notify_one();
}

void WorkerPool::Impl::retireSlot(Slot *S) {
  MutexLock Lock(Mu);
  S->Proc.closePipes();
  scheduleRespawnLocked(*S);
  WatchdogCV.notify_all();
}

bool WorkerPool::Impl::quarantinedLocked(std::uint64_t Hash,
                                         unsigned *RetryMs) {
  auto It = Breaker.find(Hash);
  if (It == Breaker.end())
    return false;
  if (Opts.QuarantineTtlMs != 0) {
    Clock::time_point Expiry =
        It->second.LastCrash + std::chrono::milliseconds(Opts.QuarantineTtlMs);
    Clock::time_point Now = Clock::now();
    if (Now >= Expiry) {
      Breaker.erase(It); // served its sentence; counts start over
      return false;
    }
    if (RetryMs)
      *RetryMs = static_cast<unsigned>(
          std::chrono::duration_cast<std::chrono::milliseconds>(Expiry - Now)
              .count() +
          1);
  }
  return It->second.Crashes >= Opts.QuarantineCrashes;
}

void WorkerPool::Impl::recordCrash(std::uint64_t Hash, const Request &Req,
                                   const WaitStatus &WS, bool Killed) {
  unsigned CrashCount = 0;
  {
    MutexLock Lock(Mu);
    ++NCrashes;
    BreakerEntry &E = Breaker[Hash];
    ++E.Crashes;
    E.LastCrash = Clock::now();
    CrashCount = E.Crashes;
  }
  PDGC_STAT("worker", "crashes").inc();
  writeDossier(Hash, CrashCount, Req, WS, Killed);
}

void WorkerPool::Impl::writeDossier(std::uint64_t Hash, unsigned CrashCount,
                                    const Request &Req, const WaitStatus &WS,
                                    bool Killed) const {
  if (Opts.CrashDir.empty())
    return;
  char Name[64];
  std::snprintf(Name, sizeof Name, "crash-%016llx-%u.pir",
                static_cast<unsigned long long>(Hash), CrashCount);
  std::string Path = Opts.CrashDir + "/" + Name;
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return;
  // `;` lines are IR comments, so the dossier replays as-is through
  // every tool that reads .pir — including `pdgc-fuzz --reduce-file`.
  const char *Plan = std::getenv("PDGC_FAULTS");
  std::fprintf(F, "; pdgc crash dossier\n");
  std::fprintf(F, "; wait-status: %s%s\n", WS.toString().c_str(),
               Killed ? " (watchdog kill)" : "");
  std::fprintf(F, "; content-hash: %016llx\n",
               static_cast<unsigned long long>(Hash));
  std::fprintf(F, "; crash-count: %u\n", CrashCount);
  std::fprintf(F, "; regs: %u\n", Opts.Regs);
  std::fprintf(F, "; allocator: %s\n",
               Req.Allocator.empty() ? Opts.DefaultAllocator.c_str()
                                     : Req.Allocator.c_str());
  std::fprintf(F, "; budget-ms: %u\n", Req.BudgetMs);
  std::fprintf(F, "; fault-plan: %s\n", Plan ? Plan : "(none)");
  std::fwrite(Req.Body.data(), 1, Req.Body.size(), F);
  if (Req.Body.empty() || Req.Body.back() != '\n')
    std::fputc('\n', F);
  std::fclose(F);
}

WorkerExecResult WorkerPool::Impl::execute(const Request &Req,
                                           Clock::time_point DeadlineAt,
                                           bool IsReplay) {
  WorkerExecResult Res;
  const std::uint64_t Hash = contentHash(Req.Body);

  if (!IsReplay) {
    MutexLock Lock(Mu);
    unsigned RetryMs = Opts.QuarantineTtlMs;
    if (quarantinedLocked(Hash, &RetryMs)) {
      ++NQuarantined;
      PDGC_STAT("worker", "quarantined").inc();
      Res.Quarantined = true;
      Res.R.Status = ResponseStatus::Rejected;
      Res.R.RetryAfterMs = Opts.QuarantineTtlMs ? RetryMs : 0;
      Res.R.Error = "quarantined: input crashed " +
                    std::to_string(Opts.QuarantineCrashes) +
                    " isolated workers";
      return Res;
    }
  }

  Slot *S = acquireIdle(DeadlineAt);
  if (!S) {
    bool WasStopping;
    {
      MutexLock Lock(Mu);
      WasStopping = Stopping;
    }
    Res.R.Status =
        WasStopping ? ResponseStatus::Internal : ResponseStatus::Timeout;
    Res.R.Error = WasStopping
                      ? "worker pool stopped"
                      : "no isolated worker available within the request "
                        "budget";
    return Res;
  }

  bool DispatchFault = false;
  std::string FaultWhat;
  try {
    PDGC_FAULT_POINT("worker.dispatch");
  } catch (const std::exception &E) {
    PDGC_STAT("worker", "dispatch_faults").inc();
    DispatchFault = true;
    FaultWhat = E.what();
  }
  if (DispatchFault) {
    release(S);
    Res.R.Status = ResponseStatus::Internal;
    Res.R.Error = "injected dispatch fault: " + FaultWhat;
    return Res;
  }

  // Stamp the *remaining* budget onto the wire request: queue wait and
  // slot wait must count against the child's deadline, mirroring the
  // in-process admission deadline that starts at admission time.
  Request Wire = Req;
  Clock::time_point Now = Clock::now();
  std::int64_t RemainMs =
      Now >= DeadlineAt
          ? 1
          : std::chrono::duration_cast<std::chrono::milliseconds>(DeadlineAt -
                                                                  Now)
                .count();
  Wire.BudgetMs = static_cast<unsigned>(std::max<std::int64_t>(1, RemainMs));

  bool Sent = writeFrame(S->Proc.writeFd(), serializeRequest(Wire));
  std::string Payload;
  FrameResult FR = FrameResult::IoError;
  if (Sent)
    FR = readFrame(S->Proc.readFd(), Payload, Opts.MaxFrameBytes);

  if (!Sent || FR != FrameResult::Ok) {
    // The response stream broke: the worker is dead or unusable. Take
    // over the corpse (Reaping keeps the watchdog's hands off a pid we
    // are about to recycle-proof by reaping), make death certain, and
    // classify the wait status.
    bool Killed;
    {
      MutexLock Lock(Mu);
      Killed = S->WatchdogKilled;
      S->State = SlotState::Reaping;
    }
    S->Proc.kill(SIGKILL);
    WaitStatus WS = S->Proc.wait();
    retireSlot(S);

    bool Infra = !Killed && WS.State == WaitStatus::Exited &&
                 (WS.Code == ChildExitClean || WS.Code == ChildExitTransport);
    if (Infra) {
      if (!IsReplay) {
        {
          MutexLock Lock(Mu);
          ++NReplays;
        }
        PDGC_STAT("worker", "replays").inc();
        WorkerExecResult Second = execute(Req, DeadlineAt, /*IsReplay=*/true);
        Second.Replayed = true;
        return Second;
      }
      Res.R.Status = ResponseStatus::Internal;
      Res.R.Error =
          "worker infrastructure failure after replay (" + WS.toString() + ")";
      return Res;
    }

    recordCrash(Hash, Req, WS, Killed);
    Res.Crashed = true;
    Res.R.Status = ResponseStatus::Crashed;
    Res.R.Error = Killed ? "worker killed by watchdog past the request "
                           "deadline (" +
                               WS.toString() + ")"
                         : "worker crashed (" + WS.toString() + ")";
    return Res;
  }

  Response R;
  std::string ParseError;
  if (!parseResponse(Payload, R, ParseError)) {
    // The stream answered but cannot be trusted to be in sync again;
    // retire the worker rather than risk cross-request frame skew.
    {
      MutexLock Lock(Mu);
      S->State = SlotState::Reaping;
    }
    S->Proc.kill(SIGKILL);
    (void)S->Proc.wait();
    retireSlot(S);
    Res.R.Status = ResponseStatus::Internal;
    Res.R.Error = "unparsable response from worker: " + ParseError;
    return Res;
  }

  bool CollectFault = false;
  try {
    PDGC_FAULT_POINT("worker.collect");
  } catch (const std::exception &E) {
    PDGC_STAT("worker", "collect_faults").inc();
    CollectFault = true;
    FaultWhat = E.what();
  }
  release(S);
  if (CollectFault) {
    Res.R.Status = ResponseStatus::Internal;
    Res.R.Error = "injected collect fault: " + FaultWhat;
    return Res;
  }
  Res.R = std::move(R);
  return Res;
}

WorkerPoolStats WorkerPool::Impl::stats() const {
  MutexLock Lock(Mu);
  WorkerPoolStats S;
  S.Spawns = NSpawns;
  S.Respawns = NRespawns;
  S.Crashes = NCrashes;
  S.Kills = NKills;
  S.Replays = NReplays;
  S.Quarantined = NQuarantined;
  for (const std::unique_ptr<Slot> &SP : Slots)
    if (SP->State == SlotState::Idle || SP->State == SlotState::Busy)
      ++S.Live;
  Clock::time_point Now = Clock::now();
  for (const auto &KV : Breaker) {
    if (KV.second.Crashes < Opts.QuarantineCrashes)
      continue;
    if (Opts.QuarantineTtlMs != 0 &&
        Now >= KV.second.LastCrash +
                   std::chrono::milliseconds(Opts.QuarantineTtlMs))
      continue; // expired, just not reaped yet
    ++S.QuarantinedInputs;
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Public surface
//===----------------------------------------------------------------------===//

WorkerPool::WorkerPool(const WorkerPoolOptions &OptsIn)
    : I(std::make_unique<Impl>(OptsIn)) {}

WorkerPool::~WorkerPool() { stop(); }

bool WorkerPool::start(std::string *Error) { return I->start(Error); }

void WorkerPool::stop() { I->stop(); }

WorkerExecResult WorkerPool::execute(const Request &Req,
                                     Deadline::Clock::time_point DeadlineAt) {
  return I->execute(Req, DeadlineAt, /*IsReplay=*/false);
}

WorkerPoolStats WorkerPool::stats() const { return I->stats(); }
