//===- server/AllocRunner.h - Shared ALLOC execution core -------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parse → verify → hardened-driver → wire-response pipeline behind
/// every ALLOC, factored out of `Server::Impl` so the exact same code
/// runs in two process models:
///
///  - **In-process** (default): a server worker thread calls
///    `executeAllocRequest` directly, passing the admission-derived
///    deadlines through `AllocEnv`.
///  - **Isolated** (`--isolate-workers=N`): a forked sandbox child runs
///    the same function over its request pipe; deadlines are derived
///    from the remaining-budget stamp the supervisor put on the wire.
///
/// `runAllocGuarded` wraps a body with the worker exception backstop: no
/// request may take a worker (thread or child) down, and every failure
/// maps to a typed INTERNAL response — including `std::bad_alloc` and
/// exceptions that are not `std::exception` at all, which previously
/// escaped to `std::terminate`.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SERVER_ALLOCRUNNER_H
#define PDGC_SERVER_ALLOCRUNNER_H

#include "server/Protocol.h"
#include "support/Deadline.h"

#include <functional>
#include <string>

namespace pdgc {
namespace server {

/// Everything executeAllocRequest needs beyond the request itself.
struct AllocEnv {
  /// Register-file size for makeTarget (PairingRule::Adjacent).
  unsigned Regs = 24;
  /// Fallback-chain head when the request names no allocator.
  std::string DefaultAllocator = "full-preferences";
  /// Cooperative cancellation deadline handed to the driver. Unset:
  /// derived as afterMs(Req.BudgetMs) — the isolated-worker case, where
  /// the supervisor stamps the remaining budget onto the wire request.
  Deadline CancelAt;
  /// The *request* deadline, used only to diagnose an exhausted fallback
  /// chain as TIMEOUT rather than INTERNAL once it has passed. Unset:
  /// same as the resolved CancelAt. In-process this is the raw admission
  /// deadline, deliberately not tightened by drain.
  Deadline RequestDeadline;
};

/// Runs one ALLOC to a wire response: parse, verify, one-item hardened
/// batch with the three-tier fallback chain, status mapping, assignment
/// body. Throws only what the driver's backstop lets escape — callers
/// that must survive anything wrap it in runAllocGuarded.
Response executeAllocRequest(const Request &Req, const AllocEnv &Env);

/// The worker exception backstop as a value: runs \p Body and returns
/// its response, mapping std::bad_alloc, std::exception, and unknown
/// throws to typed INTERNAL responses (counter: `server.worker_backstop`).
Response runAllocGuarded(const std::function<Response()> &Body);

} // namespace server
} // namespace pdgc

#endif // PDGC_SERVER_ALLOCRUNNER_H
