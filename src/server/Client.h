//===- server/Client.h - pdgc-serve client connection -----------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal synchronous client for the pdgc-serve protocol, shared by
/// `pdgc-loadgen` and the server tests. One `ClientConnection` is one TCP
/// connection doing frame-at-a-time request/response; errors are typed
/// (`TransportError`) rather than thrown, because under chaos testing a
/// dropped connection is an *expected* event the caller counts and
/// retries, not an exception.
///
/// `callWithRetry` implements the protocol's client half of load
/// shedding: on REJECTED it sleeps the server's `retry-after-ms` hint
/// scaled by exponential backoff with deterministic per-attempt jitter,
/// reconnecting as needed. That is the loop that turns an overloaded
/// server's fast rejections into smoothed client-side latency instead of
/// a retry stampede.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SERVER_CLIENT_H
#define PDGC_SERVER_CLIENT_H

#include "server/Protocol.h"

#include <cstdint>
#include <string>

namespace pdgc {
namespace server {

/// What went wrong at the byte layer (Protocol-level problems come back
/// as parse failures instead).
enum class TransportError {
  None = 0,
  ConnectFailed,
  SendFailed,
  RecvFailed,   ///< Truncated, oversized, or failed frame read.
  BadResponse,  ///< Frame arrived but did not parse as a response.
};

const char *transportErrorName(TransportError E);

class ClientConnection {
public:
  ClientConnection() = default;
  ~ClientConnection();

  ClientConnection(const ClientConnection &) = delete;
  ClientConnection &operator=(const ClientConnection &) = delete;

  /// Connects to 127.0.0.1:\p Port. Returns false on refusal.
  bool connect(std::uint16_t Port);

  bool connected() const { return Fd >= 0; }
  void close();

  /// Sends \p Req and blocks for the response. On failure the connection
  /// is closed and the error is reported; \p Out is untouched.
  TransportError call(const Request &Req, Response &Out);

  /// call() plus the shedding contract: REJECTED responses are retried
  /// up to \p MaxAttempts times with exponential backoff seeded from the
  /// server's retry-after hint; dropped connections are re-dialed when
  /// \p RetryTransport (the chaos-mode setting) is true. \p Seed makes
  /// the backoff jitter deterministic per client. \p MaxElapsedMs is the
  /// retry policy's overall wall-clock budget, honored across redials
  /// and backoff sleeps (each sleep is clipped to what remains): a
  /// crash-looping or quarantine-rejecting server then costs a bounded
  /// wait, not MaxAttempts full backoffs. 0 = attempts alone bound the
  /// loop, exactly the old behavior.
  TransportError callWithRetry(const Request &Req, Response &Out,
                               std::uint16_t Port, unsigned MaxAttempts,
                               bool RetryTransport, std::uint64_t Seed,
                               unsigned *Retries = nullptr,
                               unsigned MaxElapsedMs = 0);

private:
  int Fd = -1;
};

} // namespace server
} // namespace pdgc

#endif // PDGC_SERVER_CLIENT_H
