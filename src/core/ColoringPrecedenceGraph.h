//===- core/ColoringPrecedenceGraph.h - CPG ---------------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Coloring Precedence Graph (Section 5.2): a partial order over live
/// ranges, derived from the simplification result, such that *any*
/// topological order preserves the colorability that simplification
/// established. Chaitin's select phase walks the stack — one specific
/// linearization — whereas the preference-directed select phase may pick
/// any ready node, which is what creates the extra chances for honoring
/// preferences.
///
/// Construction (the paper's nine-step algorithm): nodes are examined in
/// the order simplification removed them; when node N is removed from the
/// working interference graph, any remaining neighbor that is not yet
/// "ready" (not yet of low degree) must be colored before N, yielding an
/// edge neighbor -> N. Edges that become transitive are dropped. Nodes the
/// simplifier pushed as optimistic potential spills start out non-ready.
///
/// An edge A -> B therefore means "A must be colored before B". The
/// conventional top/bottom nodes of the paper are kept implicit: the
/// successors of `top` are exactly the nodes with no incoming edge.
///
/// Storage: the builder works on mutable arena rows (support/CsrGraph.h)
/// — its scratch (Removed/Deg/Ready/VisitEpoch/DfsStack) is carved from
/// the same arena instead of fresh heap vectors — and the settled graph is
/// compacted into immutable packed CSR arrays that the select phase
/// iterates. Reachability queries, during construction and afterwards,
/// share one epoch-marked DFS over whichever row form is current.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_CORE_COLORINGPRECEDENCEGRAPH_H
#define PDGC_CORE_COLORINGPRECEDENCEGRAPH_H

#include "analysis/InterferenceGraph.h"
#include "machine/TargetDesc.h"
#include "regalloc/Simplifier.h"
#include "support/Arena.h"
#include "support/CsrGraph.h"
#include "support/Span.h"

#include <memory>
#include <vector>

namespace pdgc {

/// The Coloring Precedence Graph over stacked (non-precolored) nodes.
class ColoringPrecedenceGraph {
  CsrArray<unsigned> Succs; ///< A -> B: color A before B.
  CsrArray<unsigned> Preds;
  const char *InGraph = nullptr; ///< Node participates (was on the stack).
  unsigned NumNodes = 0;

  /// Epoch-marked DFS scratch, carved once at build time and shared by
  /// every subsequent reachability query (the former per-query Seen/Work
  /// heap allocations dominated query cost).
  unsigned *VisitEpoch = nullptr;
  unsigned *DfsStack = nullptr;
  mutable unsigned Epoch = 0;

  /// Private storage for the compat overloads without an arena.
  std::unique_ptr<Arena> OwnedMem;

  /// One DFS for build-time and post-build reachability: \p SuccOf maps a
  /// node to its current successor row (mutable rows while building, the
  /// compacted arrays afterwards).
  template <typename SuccOfFn>
  bool reachableImpl(unsigned From, unsigned To, SuccOfFn SuccOf) const {
    if (From == To)
      return true;
    ++Epoch;
    unsigned Top = 0;
    DfsStack[Top++] = From;
    VisitEpoch[From] = Epoch;
    while (Top != 0) {
      const unsigned Cur = DfsStack[--Top];
      for (unsigned S : SuccOf(Cur)) {
        if (S == To)
          return true;
        if (VisitEpoch[S] != Epoch) {
          VisitEpoch[S] = Epoch;
          DfsStack[Top++] = S;
        }
      }
    }
    return false;
  }

  /// Carves the InGraph flags and the DFS scratch, shared by both
  /// construction paths.
  void initScratch(Arena &Mem, unsigned N, const SimplifyResult &SR);

public:
  /// True when a directed path \p From -> ... -> \p To exists (reflexive:
  /// a node reaches itself). Queries share the epoch-marked DFS scratch
  /// carved at build time, so repeated calls allocate nothing.
  bool reachable(unsigned From, unsigned To) const {
    return reachableImpl(From, To,
                         [this](unsigned N) { return Succs.row(N); });
  }

  /// Builds the CPG from \p IG and the stack produced by \p SR, carving
  /// edges and builder scratch from \p Mem (which must outlive the graph).
  static ColoringPrecedenceGraph build(const InterferenceGraph &IG,
                                       const TargetDesc &Target,
                                       const SimplifyResult &SR, Arena &Mem);

  /// Convenience overload for standalone uses: the graph owns a private
  /// arena.
  static ColoringPrecedenceGraph build(const InterferenceGraph &IG,
                                       const TargetDesc &Target,
                                       const SimplifyResult &SR);

  /// Builds the degenerate total order that reproduces Chaitin's
  /// stack-driven select: each node must be colored exactly in pop order.
  /// Used by the ablation benchmark to isolate the CPG's contribution.
  static ColoringPrecedenceGraph linearFromStack(const InterferenceGraph &IG,
                                                 const SimplifyResult &SR,
                                                 Arena &Mem);

  /// Self-owned-arena overload of linearFromStack.
  static ColoringPrecedenceGraph linearFromStack(const InterferenceGraph &IG,
                                                 const SimplifyResult &SR);

  unsigned numNodes() const { return NumNodes; }

  bool contains(unsigned N) const { return InGraph[N] != 0; }

  Span<const unsigned> successors(unsigned N) const { return Succs.row(N); }
  Span<const unsigned> predecessors(unsigned N) const { return Preds.row(N); }

  /// Nodes with no predecessors: the successors of the implicit top node,
  /// i.e. the initially ready-to-color set.
  std::vector<unsigned> roots() const;

  /// True if an edge \p A -> \p B exists (for tests).
  bool hasEdge(unsigned A, unsigned B) const;

  unsigned numEdges() const { return Succs.numEdges(); }

  /// Verifies the defining property on \p IG: every topological
  /// linearization respecting this partial order keeps each node's
  /// already-colored same-class neighbor count below K when the node is
  /// reached — checked constructively for the worst case by counting, for
  /// each non-optimistic node, neighbors not ordered after it. Returns
  /// true when the property holds (used by property tests).
  bool preservesColorability(const InterferenceGraph &IG,
                             const TargetDesc &Target,
                             const SimplifyResult &SR) const;
};

} // namespace pdgc

#endif // PDGC_CORE_COLORINGPRECEDENCEGRAPH_H
