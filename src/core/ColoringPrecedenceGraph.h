//===- core/ColoringPrecedenceGraph.h - CPG ---------------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Coloring Precedence Graph (Section 5.2): a partial order over live
/// ranges, derived from the simplification result, such that *any*
/// topological order preserves the colorability that simplification
/// established. Chaitin's select phase walks the stack — one specific
/// linearization — whereas the preference-directed select phase may pick
/// any ready node, which is what creates the extra chances for honoring
/// preferences.
///
/// Construction (the paper's nine-step algorithm): nodes are examined in
/// the order simplification removed them; when node N is removed from the
/// working interference graph, any remaining neighbor that is not yet
/// "ready" (not yet of low degree) must be colored before N, yielding an
/// edge neighbor -> N. Edges that become transitive are dropped. Nodes the
/// simplifier pushed as optimistic potential spills start out non-ready.
///
/// An edge A -> B therefore means "A must be colored before B". The
/// conventional top/bottom nodes of the paper are kept implicit: the
/// successors of `top` are exactly the nodes with no incoming edge.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_CORE_COLORINGPRECEDENCEGRAPH_H
#define PDGC_CORE_COLORINGPRECEDENCEGRAPH_H

#include "analysis/InterferenceGraph.h"
#include "machine/TargetDesc.h"
#include "regalloc/Simplifier.h"

#include <vector>

namespace pdgc {

/// The Coloring Precedence Graph over stacked (non-precolored) nodes.
class ColoringPrecedenceGraph {
  std::vector<std::vector<unsigned>> Succs; ///< A -> B: color A before B.
  std::vector<std::vector<unsigned>> Preds;
  std::vector<char> InGraph; ///< Node participates (was on the stack).

  bool reachable(unsigned From, unsigned To) const;

public:
  /// Builds the CPG from \p IG and the stack produced by \p SR.
  static ColoringPrecedenceGraph build(const InterferenceGraph &IG,
                                       const TargetDesc &Target,
                                       const SimplifyResult &SR);

  /// Builds the degenerate total order that reproduces Chaitin's
  /// stack-driven select: each node must be colored exactly in pop order.
  /// Used by the ablation benchmark to isolate the CPG's contribution.
  static ColoringPrecedenceGraph linearFromStack(const InterferenceGraph &IG,
                                                 const SimplifyResult &SR);

  unsigned numNodes() const { return static_cast<unsigned>(Succs.size()); }

  bool contains(unsigned N) const { return InGraph[N] != 0; }

  const std::vector<unsigned> &successors(unsigned N) const {
    return Succs[N];
  }
  const std::vector<unsigned> &predecessors(unsigned N) const {
    return Preds[N];
  }

  /// Nodes with no predecessors: the successors of the implicit top node,
  /// i.e. the initially ready-to-color set.
  std::vector<unsigned> roots() const;

  /// True if an edge \p A -> \p B exists (for tests).
  bool hasEdge(unsigned A, unsigned B) const;

  unsigned numEdges() const;

  /// Verifies the defining property on \p IG: every topological
  /// linearization respecting this partial order keeps each node's
  /// already-colored same-class neighbor count below K when the node is
  /// reached — checked constructively for the worst case by counting, for
  /// each non-optimistic node, neighbors not ordered after it. Returns
  /// true when the property holds (used by property tests).
  bool preservesColorability(const InterferenceGraph &IG,
                             const TargetDesc &Target,
                             const SimplifyResult &SR) const;
};

} // namespace pdgc

#endif // PDGC_CORE_COLORINGPRECEDENCEGRAPH_H
