//===- core/PreferenceDirectedAllocator.cpp - PDGC --------------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "core/PreferenceDirectedAllocator.h"

#include "core/ColoringPrecedenceGraph.h"
#include "core/RegisterPreferenceGraph.h"
#include "regalloc/Coalescer.h"
#include "regalloc/Rewriter.h"
#include "regalloc/SelectState.h"
#include "regalloc/Simplifier.h"
#include "support/Deadline.h"
#include "support/Debug.h"
#include "support/FaultInjection.h"
#include "support/Tracing.h"
#include "support/UnionFind.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

using namespace pdgc;

PDGCOptions pdgc::pdgcFullOptions() {
  PDGCOptions O;
  O.Name = "full-preferences";
  return O;
}

PDGCOptions pdgc::pdgcCoalesceOnlyOptions() {
  PDGCOptions O;
  O.SequentialPreferences = false;
  O.VolatilityPreferences = false;
  // Without volatility preferences there is no memory-versus-register
  // benefit reasoning either: spill decisions fall back to the shared
  // graph-coloring heuristics, as in the Section 6.1 comparison.
  O.ActiveSpill = false;
  // The paper gives the coalescing-only algorithms a fixed heuristic for
  // register kinds: non-volatile first, then volatile (Section 6.2).
  O.NonVolatileFirst = true;
  O.Name = "only-coalescing";
  return O;
}

namespace {

/// One honorable preference with its screening mask.
struct ScoredPref {
  double Strength;
  BitVector Mask; ///< Registers honoring it (not yet intersected w/ avail).
};

/// The integrated select phase of Section 5.3.
class PDGCSelect {
  AllocContext &Ctx;
  const PDGCOptions &Opt;
  RegisterPreferenceGraph RPG;
  ColoringPrecedenceGraph CPG;
  SelectState SS;
  std::vector<char> Spilled;
  std::vector<char> Done;
  std::vector<unsigned> InDeg;
  std::vector<unsigned> Queue;

public:
  std::vector<unsigned> Spills;

  PDGCSelect(AllocContext &CtxIn, const PDGCOptions &OptIn,
             const SimplifyResult &SR)
      : Ctx(CtxIn), Opt(OptIn),
        RPG([&] {
          ScopedTimer Timer("pdgc.rpg_build", "allocator");
          PDGC_FAULT_POINT("pdgc.rpg_build");
          return RegisterPreferenceGraph::build(CtxIn.F, CtxIn.LV, CtxIn.LI,
                                                CtxIn.Costs, CtxIn.Target,
                                                CtxIn.Mem);
        }()),
        CPG([&] {
          ScopedTimer Timer("pdgc.cpg_build", "allocator");
          PDGC_FAULT_POINT("pdgc.cpg_build");
          return OptIn.UseCPG
                     ? ColoringPrecedenceGraph::build(CtxIn.IG, CtxIn.Target,
                                                      SR, CtxIn.Mem)
                     : ColoringPrecedenceGraph::linearFromStack(CtxIn.IG, SR,
                                                                CtxIn.Mem);
        }()),
        SS(CtxIn.IG, CtxIn.Target), Spilled(CtxIn.IG.numNodes(), 0),
        Done(CtxIn.IG.numNodes(), 0), InDeg(CtxIn.IG.numNodes(), 0) {
    for (unsigned N = 0, E = CPG.numNodes(); N != E; ++N)
      if (CPG.contains(N))
        InDeg[N] =
            static_cast<unsigned>(CPG.predecessors(N).size());
    Queue = CPG.roots();
  }

  const SelectState &selectState() const { return SS; }

  bool prefEnabled(const Preference &P) const {
    switch (P.Kind) {
    case PrefKind::Coalesce:
      return Opt.CoalescePreferences;
    case PrefKind::SequentialPlus:
    case PrefKind::SequentialMinus:
      return Opt.SequentialPreferences;
    case PrefKind::Prefers:
      return Opt.VolatilityPreferences;
    case PrefKind::Restricted:
      return Opt.RestrictedPreferences;
    }
    pdgc_unreachable("unknown preference kind");
  }

  /// Registers that can be the *second* of a pair whose first is \p First.
  BitVector pairAfter(PhysReg First) const {
    BitVector M(Ctx.Target.numRegs());
    RegClass RC = Ctx.Target.regClass(First);
    PhysReg Base = Ctx.Target.firstReg(RC);
    for (unsigned I = 0, E = Ctx.Target.numRegs(RC); I != E; ++I)
      if (Ctx.Target.pairFuses(First, Base + I))
        M.set(Base + I);
    return M;
  }

  /// Registers that can be the *first* of a pair whose second is \p Second.
  BitVector pairBefore(PhysReg Second) const {
    BitVector M(Ctx.Target.numRegs());
    RegClass RC = Ctx.Target.regClass(Second);
    PhysReg Base = Ctx.Target.firstReg(RC);
    for (unsigned I = 0, E = Ctx.Target.numRegs(RC); I != E; ++I)
      if (Ctx.Target.pairFuses(Base + I, Second))
        M.set(Base + I);
    return M;
  }

  /// Mask of registers of \p RC with the requested volatility.
  BitVector volatilityMask(RegClass RC, bool Volatile) const {
    BitVector M(Ctx.Target.numRegs());
    PhysReg Base = Ctx.Target.firstReg(RC);
    for (unsigned I = 0, E = Ctx.Target.numRegs(RC); I != E; ++I)
      if (Ctx.Target.isVolatile(Base + I) == Volatile)
        M.set(Base + I);
    return M;
  }

  /// Mask of the narrow-capable registers of \p RC.
  BitVector narrowMask(RegClass RC) const {
    BitVector M(Ctx.Target.numRegs());
    PhysReg Base = Ctx.Target.firstReg(RC);
    for (unsigned I = 0, E = Ctx.Target.numRegs(RC); I != E; ++I)
      if (Ctx.Target.isNarrowCapable(Base + I))
        M.set(Base + I);
    return M;
  }

  /// Steps 2.1–2.3: the preferences of \p Q that are honorable now, given
  /// prior selections and the available set.
  std::vector<ScoredPref> honorablePrefs(unsigned Q,
                                         const BitVector &Avail) const {
    std::vector<ScoredPref> Result;
    for (const Preference &P : RPG.preferencesOf(VReg(Q))) {
      if (!prefEnabled(P))
        continue;
      BitVector Mask(Ctx.Target.numRegs());
      double Strength = 0.0;
      switch (P.Target.Kind) {
      case PrefTarget::LiveRange: {
        unsigned B = P.Target.Value;
        if (Spilled[B] || !SS.hasColor(B))
          continue; // Dropped (2.1) or deferred to the pending set (2.2).
        PhysReg C = static_cast<PhysReg>(SS.color(B));
        if (P.Kind == PrefKind::Coalesce)
          Mask.set(C);
        else if (P.Kind == PrefKind::SequentialPlus)
          Mask = pairAfter(C);
        else
          Mask = pairBefore(C);
        // Strength at the best register the mask still allows.
        Strength = -std::numeric_limits<double>::infinity();
        BitVector Usable = Mask;
        Usable &= Avail;
        for (unsigned R : Usable.setBits()) {
          double S = RPG.strength(P, static_cast<PhysReg>(R));
          if (S > Strength)
            Strength = S;
        }
        break;
      }
      case PrefTarget::Register:
        Mask.set(P.Target.Value);
        Strength = RPG.strength(P, static_cast<PhysReg>(P.Target.Value));
        break;
      case PrefTarget::VolatileClass:
        Mask = volatilityMask(Ctx.F.regClass(VReg(Q)), /*Volatile=*/true);
        Strength = Ctx.Costs.registerBenefit(VReg(Q), /*VolatileReg=*/true);
        break;
      case PrefTarget::NonVolatileClass:
        Mask = volatilityMask(Ctx.F.regClass(VReg(Q)), /*Volatile=*/false);
        Strength =
            Ctx.Costs.registerBenefit(VReg(Q), /*VolatileReg=*/false);
        break;
      case PrefTarget::NarrowRegisters:
        Mask = narrowMask(Ctx.F.regClass(VReg(Q)));
        Strength = RPG.bestStrength(P);
        break;
      }
      BitVector Usable = Mask;
      Usable &= Avail;
      if (Usable.none())
        continue; // Cannot be honored any more (step 2.1).
      Result.push_back(ScoredPref{Strength, std::move(Mask)});
    }
    return Result;
  }

  /// Step 3's key: the strength differential between the strongest and
  /// weakest honorable preference — how much is at stake if this node gets
  /// its worst remaining placement instead of its best.
  double differential(unsigned Q) const {
    BitVector Avail = SS.availableFor(Q);
    if (Avail.none())
      return 0.0; // Will be spilled whenever chosen.
    std::vector<ScoredPref> Prefs = honorablePrefs(Q, Avail);
    if (Prefs.empty())
      return 0.0;
    double Strongest = -std::numeric_limits<double>::infinity();
    double Weakest = std::numeric_limits<double>::infinity();
    for (const ScoredPref &P : Prefs) {
      Strongest = std::max(Strongest, P.Strength);
      Weakest = std::min(Weakest, P.Strength);
    }
    // A node with a single honorable preference has no weaker fallback:
    // the stake of deferring it is the preference itself.
    if (Prefs.size() == 1)
      return Strongest > 0.0 ? Strongest : 0.0;
    return Strongest - Weakest;
  }

  /// Step 4.3: registers to keep so that still-pending preferences (of
  /// this node, or of uncolored nodes targeting it) stay honorable.
  std::vector<ScoredPref> pendingConstraints(unsigned Q) const {
    std::vector<ScoredPref> Result;
    auto AvailTo = [&](unsigned X) { return SS.availableFor(X); };

    // This node's own preferences toward uncolored partners.
    for (const Preference &P : RPG.preferencesOf(VReg(Q))) {
      if (!prefEnabled(P) || P.Target.Kind != PrefTarget::LiveRange)
        continue;
      unsigned B = P.Target.Value;
      if (Spilled[B] || SS.hasColor(B) || Ctx.IG.interferes(Q, B))
        continue;
      BitVector PartnerAvail = AvailTo(B);
      BitVector Keep(Ctx.Target.numRegs());
      for (unsigned R : PartnerAvail.setBits()) {
        switch (P.Kind) {
        case PrefKind::Coalesce:
          Keep.set(R); // q should take a register b can share.
          break;
        case PrefKind::SequentialPlus:
          // q is the second; b (first) will take R, q pairs after it.
          Keep |= pairAfter(static_cast<PhysReg>(R));
          break;
        case PrefKind::SequentialMinus:
          // q is the first; b (second) will take R, q pairs before it.
          Keep |= pairBefore(static_cast<PhysReg>(R));
          break;
        case PrefKind::Prefers:
        case PrefKind::Restricted:
          break;
        }
      }
      if (Keep.any())
        Result.push_back(ScoredPref{RPG.bestStrength(P), std::move(Keep)});
    }

    // Preferences of uncolored nodes targeting this node.
    for (const Preference &P : RPG.preferencesTargeting(VReg(Q))) {
      if (!prefEnabled(P))
        continue;
      unsigned X = P.Source;
      if (X == Q || Spilled[X] || SS.hasColor(X) ||
          Ctx.IG.interferes(Q, X))
        continue;
      BitVector SourceAvail = AvailTo(X);
      BitVector Keep(Ctx.Target.numRegs());
      switch (P.Kind) {
      case PrefKind::Coalesce:
        Keep = SourceAvail; // Pick a register x can copy onto.
        break;
      case PrefKind::SequentialPlus:
        // x is the second of the pair, q the first: keep q's registers R
        // such that some register pairing after R is open for x.
        for (unsigned R : SourceAvail.setBits())
          Keep |= pairBefore(static_cast<PhysReg>(R));
        break;
      case PrefKind::SequentialMinus:
        for (unsigned R : SourceAvail.setBits())
          Keep |= pairAfter(static_cast<PhysReg>(R));
        break;
      case PrefKind::Prefers:
      case PrefKind::Restricted:
        break;
      }
      if (Keep.any())
        Result.push_back(ScoredPref{RPG.bestStrength(P), std::move(Keep)});
    }
    return Result;
  }

  void spill(unsigned Q) {
    pdgc_check(!Ctx.Costs.isInfinite(VReg(Q)),
               "preference-directed select had to spill an unspillable "
               "live range");
    Spilled[Q] = 1;
    Spills.push_back(Q);
  }

  /// Step 4: find a suitable register (or spill) for the chosen node.
  void colorNode(unsigned Q) {
    BitVector Avail = SS.availableFor(Q);
    if (Avail.none()) {
      spill(Q);
      return;
    }

    std::vector<ScoredPref> Prefs = honorablePrefs(Q, Avail);
    std::stable_sort(Prefs.begin(), Prefs.end(),
                     [](const ScoredPref &A, const ScoredPref &B) {
                       return A.Strength > B.Strength;
                     });

    if (Opt.ActiveSpill && !Ctx.Costs.isInfinite(VReg(Q))) {
      // Section 5.4: when memory is the strongest preference, spill now
      // rather than hold a register at a loss. The best achievable benefit
      // is the strongest preference, or plain register residence.
      double Best = -std::numeric_limits<double>::infinity();
      for (const ScoredPref &P : Prefs)
        Best = std::max(Best, P.Strength);
      bool HasVol = false, HasNonVol = false;
      for (unsigned R : Avail.setBits())
        (Ctx.Target.isVolatile(static_cast<PhysReg>(R)) ? HasVol
                                                        : HasNonVol) = true;
      if (HasVol)
        Best = std::max(
            Best, Ctx.Costs.registerBenefit(VReg(Q), /*VolatileReg=*/true));
      if (HasNonVol)
        Best = std::max(Best, Ctx.Costs.registerBenefit(
                                  VReg(Q), /*VolatileReg=*/false));
      if (Best < 0.0) {
        spill(Q);
        return;
      }
    }

    // Step 4.2: honor preferences from strongest to weakest; each honored
    // preference screens the candidate set for the weaker ones.
    BitVector Screened = Avail;
    for (const ScoredPref &P : Prefs) {
      BitVector Narrowed = Screened;
      Narrowed &= P.Mask;
      if (Narrowed.any())
        Screened = std::move(Narrowed);
    }

    // Step 4.3: avoid registers that would block pending preferences.
    if (Opt.PendingLookahead) {
      std::vector<ScoredPref> Pending = pendingConstraints(Q);
      std::stable_sort(Pending.begin(), Pending.end(),
                       [](const ScoredPref &A, const ScoredPref &B) {
                         return A.Strength > B.Strength;
                       });
      for (const ScoredPref &P : Pending) {
        BitVector Narrowed = Screened;
        Narrowed &= P.Mask;
        if (Narrowed.any())
          Screened = std::move(Narrowed);
      }
    }

    // Step 4.4: allocate. Without stronger guidance fall back to the
    // configured partition order.
    int Pick = -1;
    if (Opt.NonVolatileFirst) {
      for (unsigned R : Screened.setBits())
        if (!Ctx.Target.isVolatile(static_cast<PhysReg>(R))) {
          Pick = static_cast<int>(R);
          break;
        }
    }
    if (Pick < 0)
      Pick = Screened.findFirst();
    assert(Pick >= 0 && "screened set became empty");
    SS.setColor(Q, Pick);
  }

  /// Runs the whole select phase. Differentials are cached per node and
  /// recomputed only when a decision could have changed them: a node's
  /// available set moves when a neighbor is colored, and its honorable
  /// preferences move when one of its live-range targets is decided.
  void run() {
    std::vector<double> Cached(Ctx.IG.numNodes(),
                               std::numeric_limits<double>::quiet_NaN());
    auto Invalidate = [&](unsigned N) {
      Cached[N] = std::numeric_limits<double>::quiet_NaN();
    };

    while (!Queue.empty()) {
      pollDeadline();
      // Step 3: choose the queued node with the largest differential.
      unsigned BestIdx = 0;
      double BestDiff = -std::numeric_limits<double>::infinity();
      for (unsigned I = 0, E = Queue.size(); I != E; ++I) {
        unsigned N = Queue[I];
        if (std::isnan(Cached[N]))
          Cached[N] = differential(N);
        if (Cached[N] > BestDiff) {
          BestDiff = Cached[N];
          BestIdx = I;
        }
      }
      unsigned Q = Queue[BestIdx];
      Queue.erase(Queue.begin() + BestIdx);

      colorNode(Q);
      Done[Q] = 1;

      // Invalidate what this decision may have changed.
      for (unsigned M : Ctx.IG.neighbors(Q))
        if (!Done[M])
          Invalidate(M);
      for (const Preference &P : RPG.preferencesTargeting(VReg(Q)))
        if (!Done[P.Source])
          Invalidate(P.Source);

      // Step 5: release successors whose predecessors are all processed.
      for (unsigned S : CPG.successors(Q)) {
        assert(InDeg[S] > 0 && "CPG in-degree underflow");
        if (--InDeg[S] == 0)
          Queue.push_back(S);
      }
    }
  }
};

} // namespace

RoundResult PreferenceDirectedAllocator::allocateRound(AllocContext &Ctx) {
  const unsigned N = Ctx.F.numVRegs();
  RoundResult RR = RoundResult::make(N);

  // Optional pre-coalescing (the Section 6.1 extension): merge copy pairs
  // that the conservative tests prove non-spill-causing, reflect the
  // merges in the code, and rebuild the analyses over the smaller
  // function. Deferred coalescing then only has to handle the risky
  // copies.
  AllocContext *Active = &Ctx;
  std::optional<AllocContext> Rebuilt;
  ScopedTimer CoalesceTimer("pdgc.precoalesce", "allocator");
  PDGC_FAULT_POINT("pdgc.precoalesce");
  if (Options.PreCoalesce) {
    UnionFind UF(N);
    if (conservativeCoalesce(Ctx.IG, UF, Ctx.Target) != 0) {
      std::vector<unsigned> RepOf(N);
      for (unsigned V = 0; V != N; ++V)
        RepOf[V] = UF.find(V);
      rewriteCoalesced(Ctx.F, RepOf);
      for (unsigned V = 0; V != N; ++V)
        RR.CoalesceMap[V] = RepOf[V];
      Rebuilt.emplace(Ctx.F, Ctx.Target, Ctx.Costs.params());
      Active = &*Rebuilt;
    }
  }
  CoalesceTimer.finish();

  ScopedTimer SimplifyTimer("pdgc.simplify", "allocator");
  PDGC_FAULT_POINT("pdgc.simplify");
  SimplifyResult SR = simplifyGraph(
      Active->IG, Active->Target,
      [&](unsigned Node) { return Active->Costs.spillMetric(VReg(Node)); },
      /*Optimistic=*/true);
  SimplifyTimer.finish();

  // PDGCSelect's constructor builds the RPG and CPG (timed separately as
  // pdgc.rpg_build / pdgc.cpg_build); run() is the precedence-ordered
  // select walk.
  PDGCSelect Select(*Active, Options, SR);
  {
    ScopedTimer SelectTimer("pdgc.select", "allocator");
    PDGC_FAULT_POINT("pdgc.select");
    Select.run();
  }

  if (!Select.Spills.empty()) {
    RR.Spilled = std::move(Select.Spills);
    return RR;
  }

  RR.Color = Select.selectState().colors();
  return RR;
}
