//===- core/PreferenceDirectedAllocator.h - PDGC ----------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's contribution: preference-directed graph coloring
/// (Sections 5.3 and 5.4). The allocator performs optimistic
/// simplification, builds the Coloring Precedence Graph from the result,
/// and then selects registers by repeatedly choosing — among the CPG-ready
/// nodes — the one with the largest strength differential between its
/// strongest and weakest honorable preferences, assigning it the most
/// preferred available register. All preference-resolving actions
/// (coalescing, dedicated/limited/volatility preferences, paired-register
/// constraints, spill decisions) happen together in this phase:
///
///  * coalescing is deferred: copy-related nodes are never merged, they are
///    biased onto one register through coalesce preferences, so a harmful
///    coalescence can simply fail to happen (Section 4's examples);
///  * registers are screened preference-by-preference, strongest first
///    (step 4.2), then thinned so as not to block still-pending
///    preferences of this node or of nodes targeting it (step 4.3 — the
///    lookahead that picks r2 for v1 in Figure 7 so v2 can pair later);
///  * a node whose strongest preference is memory is actively spilled,
///    which removes the known drawback of optimistic coloring
///    (Section 5.4).
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_CORE_PREFERENCEDIRECTEDALLOCATOR_H
#define PDGC_CORE_PREFERENCEDIRECTEDALLOCATOR_H

#include "regalloc/AllocatorBase.h"

namespace pdgc {

/// Feature switches, used to reproduce the paper's reduced variants and
/// for the ablation benchmarks.
struct PDGCOptions {
  /// Honor coalesce preferences (live-range-to-live-range and to dedicated
  /// registers).
  bool CoalescePreferences = true;
  /// Honor sequential+/- (paired-load) preferences.
  bool SequentialPreferences = true;
  /// Honor volatile/non-volatile class preferences.
  bool VolatilityPreferences = true;
  /// Honor limited-register-usage ("restricted") preferences of narrow
  /// operations.
  bool RestrictedPreferences = true;
  /// Select over the CPG partial order; false falls back to the
  /// simplification stack order (ablation of Section 5.2's contribution).
  bool UseCPG = true;
  /// Spill nodes whose strongest preference is memory (Section 5.4).
  bool ActiveSpill = true;
  /// Fallback picking order when no preference constrains the choice:
  /// non-volatile registers first (the "simple heuristic" the paper gives
  /// the coalescing-only algorithms in Section 6.2).
  bool NonVolatileFirst = false;
  /// Step 4.3 lookahead for unresolved preferences; ablation switch.
  bool PendingLookahead = true;
  /// The extension Section 6.1 proposes for the cases deferred coalescing
  /// misses: conservatively merge non-spill-causing copy pairs (Briggs /
  /// George tests, so colorability is never hurt) before building the CPG,
  /// and run the preference-directed selection on the shrunken graph.
  bool PreCoalesce = false;

  const char *Name = "pdgc-full";
};

/// Returns the paper's full-featured configuration ("full preferences").
PDGCOptions pdgcFullOptions();

/// Returns the Section 6.1 configuration: only coalesce preferences, with
/// the non-volatile-first fallback the paper gives coalescing-only
/// algorithms ("only coalescing").
PDGCOptions pdgcCoalesceOnlyOptions();

/// The preference-directed graph coloring allocator.
class PreferenceDirectedAllocator : public AllocatorBase {
  PDGCOptions Options;

public:
  explicit PreferenceDirectedAllocator(PDGCOptions OptionsIn = PDGCOptions())
      : Options(OptionsIn) {}

  const char *name() const override { return Options.Name; }
  const PDGCOptions &options() const { return Options; }

  RoundResult allocateRound(AllocContext &Ctx) override;
};

} // namespace pdgc

#endif // PDGC_CORE_PREFERENCEDIRECTEDALLOCATOR_H
