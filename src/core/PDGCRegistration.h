//===- core/PDGCRegistration.h - Registry hookup ----------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registers the preference-directed allocator family (full-preferences,
/// only-coalescing, the ablations) in the regalloc AllocatorRegistry. The
/// registry lives one layer below core, so registration is an explicit,
/// idempotent call rather than a static initializer the linker could drop;
/// the benchmark harness, the tools and the tests that resolve allocators
/// by name call it first.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_CORE_PDGCREGISTRATION_H
#define PDGC_CORE_PDGCREGISTRATION_H

namespace pdgc {

/// Registers every preference-directed allocator variant by its benchmark
/// name. Idempotent and cheap; call before resolving chain tiers or
/// enumerating the registry.
void registerPDGCAllocators();

} // namespace pdgc

#endif // PDGC_CORE_PDGCREGISTRATION_H
