//===- core/RegisterPreferenceGraph.h - RPG ---------------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Register Preference Graph (Section 5.1): a directed graph whose
/// nodes are live ranges, physical registers and register classes, and
/// whose edges record register preferences weighted by the benefit of
/// honoring them. Four preference kinds are modeled, exactly the paper's:
///
///  * `coalesce`       — use the same register as the destination node
///                        (from copies, including calling-convention glue
///                        to pinned argument/parameter/return registers);
///  * `sequential+`    — this node is the *second* destination of a paired
///                        load; its register must pair after the first's;
///  * `sequential-`    — this node is the *first* destination; its register
///                        must pair before the second's;
///  * `prefers`        — use a register from a class (volatile or
///                        non-volatile), driven by call-crossing liveness.
///
/// Strengths follow the Appendix: Str(V,P) = Mem_Cost(V) - Ideal_Cost(V,P),
/// where Ideal_Cost depends on the volatility of the candidate register and
/// on the instruction savings the preference unlocks (an eliminated move, a
/// fused paired load). Because the volatility part depends on the concrete
/// register, strengths are exposed as a function of the candidate register,
/// with a register-independent upper bound for ordering decisions — this is
/// the paper's "strengths evaluation functions can have a parameter".
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_CORE_REGISTERPREFERENCEGRAPH_H
#define PDGC_CORE_REGISTERPREFERENCEGRAPH_H

#include "analysis/CostModel.h"
#include "ir/Function.h"
#include "machine/TargetDesc.h"
#include "support/Arena.h"
#include "support/CsrGraph.h"
#include "support/Span.h"

#include <memory>

namespace pdgc {

/// Kind of a preference edge.
enum class PrefKind {
  Coalesce,       ///< Same register as the target.
  SequentialPlus, ///< Register pairing after the target's (second of pair).
  SequentialMinus,///< Register pairing before the target's (first of pair).
  Prefers,        ///< Any register of the target class.
  Restricted,     ///< "Limited register usage": a narrow-capable register
                  ///< avoids a fixup instruction (Section 3.1, type 2).
};

/// Returns "coalesce", "sequential+", "sequential-" or "prefers".
const char *prefKindName(PrefKind K);

/// Target of a preference edge.
struct PrefTarget {
  enum TargetKind {
    LiveRange,        ///< Another live range (Value = vreg id).
    Register,         ///< A specific physical register (Value = reg id).
    VolatileClass,    ///< Any volatile register of the source's class.
    NonVolatileClass, ///< Any non-volatile register of the source's class.
    NarrowRegisters,  ///< The narrow-capable subset of the source's class.
  } Kind;
  unsigned Value = 0;

  static PrefTarget liveRange(unsigned VRegId) {
    return {LiveRange, VRegId};
  }
  static PrefTarget reg(PhysReg R) { return {Register, R}; }
  static PrefTarget volatileClass() { return {VolatileClass, 0}; }
  static PrefTarget nonVolatileClass() { return {NonVolatileClass, 0}; }
  static PrefTarget narrowRegisters() { return {NarrowRegisters, 0}; }

  bool operator==(const PrefTarget &RHS) const {
    return Kind == RHS.Kind && Value == RHS.Value;
  }
};

/// One preference edge out of a live range.
struct Preference {
  unsigned Source;    ///< Source live range (vreg id).
  PrefKind Kind;
  PrefTarget Target;
  /// Frequency-weighted instruction-cost savings when honored: the copies
  /// that disappear (coalesce) or the load that fuses away (sequential).
  double Savings = 0.0;
};

/// The Register Preference Graph. Preference rows are CSR slices packed
/// into an Arena by a two-pass (count emissions, then fill with merge)
/// sweep over the instructions; accessors hand out views over the packed
/// rows, valid until the next build into (or reset of) the arena.
class RegisterPreferenceGraph {
  const Function *F = nullptr;
  const TargetDesc *Target = nullptr;
  const LiveRangeCosts *Costs = nullptr;
  CsrRows<Preference> Out; ///< Per source vreg id.
  CsrRows<Preference> In;  ///< Live-range-target reverse index, per
                           ///< target vreg id.
  /// Private storage for the compat build() overload without an arena.
  std::unique_ptr<Arena> OwnedMem;

  void addPreference(Arena &Mem, Preference P);

public:
  /// Builds the RPG for phi-free \p F by scanning the code for copies,
  /// paired-load candidates and call-crossing live ranges, carving the
  /// preference rows from \p Mem (which must outlive the graph).
  static RegisterPreferenceGraph build(const Function &F,
                                       const Liveness &LV, const LoopInfo &LI,
                                       const LiveRangeCosts &Costs,
                                       const TargetDesc &Target, Arena &Mem);

  /// Convenience overload for standalone uses (tests, examples): the graph
  /// owns a private arena.
  static RegisterPreferenceGraph build(const Function &F,
                                       const Liveness &LV, const LoopInfo &LI,
                                       const LiveRangeCosts &Costs,
                                       const TargetDesc &Target);

  /// Outgoing preferences of live range \p V.
  Span<const Preference> preferencesOf(VReg V) const {
    return Out.row(V.id());
  }

  /// Preferences of *other* live ranges that target \p V (used by the
  /// select phase's lookahead, step 4.3).
  Span<const Preference> preferencesTargeting(VReg V) const {
    return In.row(V.id());
  }

  /// Str(V, P) evaluated for a concrete candidate register \p R of the
  /// source's class.
  double strength(const Preference &P, PhysReg R) const;

  /// Register-independent upper bound of strength: the best value over the
  /// volatility choices consistent with the preference.
  double bestStrength(const Preference &P) const;

  /// Total number of preference edges (for tests and statistics).
  unsigned numPreferences() const;
};

} // namespace pdgc

#endif // PDGC_CORE_REGISTERPREFERENCEGRAPH_H
