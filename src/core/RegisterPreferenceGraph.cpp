//===- core/RegisterPreferenceGraph.cpp - RPG -------------------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "core/RegisterPreferenceGraph.h"

#include "ir/PhiElimination.h"
#include "support/Debug.h"

using namespace pdgc;

const char *pdgc::prefKindName(PrefKind K) {
  switch (K) {
  case PrefKind::Coalesce:
    return "coalesce";
  case PrefKind::SequentialPlus:
    return "sequential+";
  case PrefKind::SequentialMinus:
    return "sequential-";
  case PrefKind::Prefers:
    return "prefers";
  case PrefKind::Restricted:
    return "restricted";
  }
  pdgc_unreachable("unknown preference kind");
}

namespace {

/// Replays the paper's preference-emission sequence — copies, limited
/// register usage, paired loads, then the volatility edges — invoking
/// \p Emit for every raw (pre-merge) preference in emission order. Both
/// build passes run through this one function so the count pass and the
/// fill pass cannot drift apart.
template <typename EmitFn>
void forEachEmittedPreference(const Function &F, const LoopInfo &LI,
                              const LiveRangeCosts &Costs, EmitFn Emit) {
  const CostParams &CP = Costs.params();

  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B) {
    const BasicBlock *BB = F.block(B);
    const double Freq = LI.frequency(BB);

    for (unsigned I = 0, IE = BB->size(); I != IE; ++I) {
      const Instruction &Inst = BB->inst(I);

      if (Inst.isCopy()) {
        VReg Dst = Inst.def(), Src = Inst.use(0);
        double Savings = CP.DefaultInstCost * Freq;
        // A copy whose endpoints land in one register disappears; each
        // unpinned endpoint records a coalesce preference toward the other
        // (pinned endpoints have no choice to make).
        auto TargetOf = [&](VReg R) {
          return F.isPinned(R)
                     ? PrefTarget::reg(static_cast<PhysReg>(F.pinnedReg(R)))
                     : PrefTarget::liveRange(R.id());
        };
        if (!F.isPinned(Dst) && Dst != Src)
          Emit(Preference{Dst.id(), PrefKind::Coalesce, TargetOf(Src),
                          Savings});
        if (!F.isPinned(Src) && Dst != Src)
          Emit(Preference{Src.id(), PrefKind::Coalesce, TargetOf(Dst),
                          Savings});
        continue;
      }

      if (Inst.isNarrowDef() && Inst.hasDef() &&
          !F.isPinned(Inst.def())) {
        // Limited register usage: a narrow-capable destination avoids the
        // fixup instruction this operation otherwise needs.
        Emit(Preference{Inst.def().id(), PrefKind::Restricted,
                        PrefTarget::narrowRegisters(),
                        CP.DefaultInstCost * Freq});
      }

      if (Inst.isPairHead()) {
        // `First` and the next instruction's `Second` fuse into one machine
        // load when their registers satisfy the pairing rule; each side
        // then sees its own load cost vanish (Appendix: Ideal_Inst_Cost =
        // 0 for the paired-load candidate loading V).
        assert(I + 1 < IE && "pair head without a mate");
        const Instruction &Mate = BB->inst(I + 1);
        assert(Mate.opcode() == Opcode::Load && "pair mate must be a load");
        VReg First = Inst.def(), Second = Mate.def();
        double Savings = CP.LoadInstCost * Freq;
        if (!F.isPinned(First))
          Emit(Preference{First.id(), PrefKind::SequentialMinus,
                          PrefTarget::liveRange(Second.id()), Savings});
        if (!F.isPinned(Second))
          Emit(Preference{Second.id(), PrefKind::SequentialPlus,
                          PrefTarget::liveRange(First.id()), Savings});
      }
    }
  }

  // Volatility preferences: every live range carries edges to both the
  // volatile and the non-volatile class of its register file; the
  // strengths order themselves (a call-crossing range scores higher on the
  // non-volatile side, a call-free range on the volatile side). Having
  // both present is what gives the select phase its strength differential:
  // the gap between a range's best and worst placement is exactly what is
  // at stake when coloring it (Section 5.3, step 3; the Figure 7
  // walkthrough orders v3 before v4 before v1/v2 this way).
  for (unsigned V = 0, E = F.numVRegs(); V != E; ++V) {
    VReg R(V);
    if (F.isPinned(R))
      continue;
    if (Costs.numDefs(R) == 0 && Costs.numUses(R) == 0)
      continue; // Dead register: no preferences.
    Emit(Preference{V, PrefKind::Prefers, PrefTarget::volatileClass(), 0.0});
    Emit(Preference{V, PrefKind::Prefers, PrefTarget::nonVolatileClass(),
                    0.0});
  }
}

} // namespace

void RegisterPreferenceGraph::addPreference(Arena &Mem, Preference P) {
  // Merge with an existing edge of the same kind and target: several copies
  // between the same two ranges accumulate their savings.
  for (Preference &Existing : Out.mutableRow(P.Source)) {
    if (Existing.Kind == P.Kind && Existing.Target == P.Target) {
      Existing.Savings += P.Savings;
      if (P.Target.Kind == PrefTarget::LiveRange)
        for (Preference &R : In.mutableRow(P.Target.Value))
          if (R.Source == P.Source && R.Kind == P.Kind)
            R.Savings += P.Savings;
      return;
    }
  }
  Out.push(Mem, P.Source, P);
  if (P.Target.Kind == PrefTarget::LiveRange)
    In.push(Mem, P.Target.Value, P);
}

RegisterPreferenceGraph
RegisterPreferenceGraph::build(const Function &F, const Liveness &LV,
                               const LoopInfo &LI,
                               const LiveRangeCosts &Costs,
                               const TargetDesc &Target, Arena &Mem) {
  (void)LV;
  assert(!hasPhis(F) && "RPG requires phi-free IR");

  RegisterPreferenceGraph G;
  G.F = &F;
  G.Target = &Target;
  G.Costs = &Costs;

  const unsigned N = F.numVRegs();

  // Pass 1 (count): tally raw emissions per row. Merging can only shrink a
  // row below its emission count, so these are exact capacities — the fill
  // pass never relocates.
  unsigned *OutCount = Mem.allocateZeroed<unsigned>(N);
  unsigned *InCount = Mem.allocateZeroed<unsigned>(N);
  forEachEmittedPreference(F, LI, Costs, [&](const Preference &P) {
    ++OutCount[P.Source];
    if (P.Target.Kind == PrefTarget::LiveRange)
      ++InCount[P.Target.Value];
  });

  // Pass 2 (fill): replay the same emission sequence through the merging
  // insert, into rows packed back to back in the arena.
  G.Out.init(Mem, N, OutCount, /*Slack=*/0);
  G.In.init(Mem, N, InCount, /*Slack=*/0);
  forEachEmittedPreference(
      F, LI, Costs, [&](const Preference &P) { G.addPreference(Mem, P); });

  return G;
}

RegisterPreferenceGraph
RegisterPreferenceGraph::build(const Function &F, const Liveness &LV,
                               const LoopInfo &LI,
                               const LiveRangeCosts &Costs,
                               const TargetDesc &Target) {
  auto Mem = std::make_unique<Arena>();
  RegisterPreferenceGraph G = build(F, LV, LI, Costs, Target, *Mem);
  G.OwnedMem = std::move(Mem);
  return G;
}

double RegisterPreferenceGraph::strength(const Preference &P,
                                         PhysReg R) const {
  VReg V(P.Source);
  bool Vol = Target->isVolatile(R);
  double IdealOp = Costs->opCost(V) - P.Savings;
  return Costs->memCost(V) - (Costs->callCost(V, Vol) + IdealOp);
}

double RegisterPreferenceGraph::bestStrength(const Preference &P) const {
  VReg V(P.Source);
  double IdealOp = Costs->opCost(V) - P.Savings;
  double Best = 0;
  switch (P.Target.Kind) {
  case PrefTarget::Register:
    return strength(P, static_cast<PhysReg>(P.Target.Value));
  case PrefTarget::VolatileClass:
    Best = Costs->callCost(V, /*VolatileReg=*/true);
    break;
  case PrefTarget::NonVolatileClass:
    Best = Costs->callCost(V, /*VolatileReg=*/false);
    break;
  case PrefTarget::LiveRange: {
    // The partner's register could be of either volatility: take the best.
    double CV = Costs->callCost(V, /*VolatileReg=*/true);
    double CN = Costs->callCost(V, /*VolatileReg=*/false);
    Best = CV < CN ? CV : CN;
    break;
  }
  case PrefTarget::NarrowRegisters:
    // The narrow subset is the low quarter of the class, which lies in
    // the volatile partition under this repository's conventions.
    Best = Costs->callCost(V, /*VolatileReg=*/true);
    break;
  }
  return Costs->memCost(V) - (Best + IdealOp);
}

unsigned RegisterPreferenceGraph::numPreferences() const {
  unsigned N = 0;
  for (unsigned V = 0, E = Out.numNodes(); V != E; ++V)
    N += Out.size(V);
  return N;
}
