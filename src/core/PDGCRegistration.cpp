//===- core/PDGCRegistration.cpp - Registry hookup -------------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "core/PDGCRegistration.h"

#include "core/PreferenceDirectedAllocator.h"
#include "regalloc/AllocatorRegistry.h"

using namespace pdgc;

namespace {

void registerVariant(const std::string &Name, PDGCOptions Options) {
  registerAllocatorFactory(Name, [Options] {
    return std::make_unique<PreferenceDirectedAllocator>(Options);
  });
}

} // namespace

void pdgc::registerPDGCAllocators() {
  static const bool Once = [] {
    registerVariant("full-preferences", pdgcFullOptions());
    registerVariant("only-coalescing", pdgcCoalesceOnlyOptions());

    PDGCOptions O = pdgcFullOptions();
    O.UseCPG = false;
    O.Name = "pdgc-stack-order";
    registerVariant(O.Name, O);

    O = pdgcFullOptions();
    O.PendingLookahead = false;
    O.Name = "pdgc-no-lookahead";
    registerVariant(O.Name, O);

    O = pdgcFullOptions();
    O.ActiveSpill = false;
    O.Name = "pdgc-no-active-spill";
    registerVariant(O.Name, O);

    O = pdgcFullOptions();
    O.SequentialPreferences = false;
    O.Name = "pdgc-no-sequential";
    registerVariant(O.Name, O);

    O = pdgcFullOptions();
    O.VolatilityPreferences = false;
    O.Name = "pdgc-no-volatility";
    registerVariant(O.Name, O);

    O = pdgcFullOptions();
    O.RestrictedPreferences = false;
    O.Name = "pdgc-no-restricted";
    registerVariant(O.Name, O);

    O = pdgcFullOptions();
    O.PreCoalesce = true;
    O.Name = "pdgc-precoalesce";
    registerVariant(O.Name, O);

    O = pdgcCoalesceOnlyOptions();
    O.PreCoalesce = true;
    O.Name = "only-coalescing+pre";
    registerVariant(O.Name, O);
    return true;
  }();
  (void)Once;
}
