//===- core/ColoringPrecedenceGraph.cpp - CPG --------------------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "core/ColoringPrecedenceGraph.h"

#include "support/Debug.h"

#include <algorithm>

using namespace pdgc;

bool ColoringPrecedenceGraph::reachable(unsigned From, unsigned To) const {
  if (From == To)
    return true;
  std::vector<char> Seen(numNodes(), 0);
  std::vector<unsigned> Work{From};
  Seen[From] = 1;
  while (!Work.empty()) {
    unsigned N = Work.back();
    Work.pop_back();
    for (unsigned S : Succs[N]) {
      if (S == To)
        return true;
      if (!Seen[S]) {
        Seen[S] = 1;
        Work.push_back(S);
      }
    }
  }
  return false;
}

ColoringPrecedenceGraph
ColoringPrecedenceGraph::build(const InterferenceGraph &IG,
                               const TargetDesc &Target,
                               const SimplifyResult &SR) {
  const unsigned N = IG.numNodes();
  ColoringPrecedenceGraph G;
  G.Succs.assign(N, {});
  G.Preds.assign(N, {});
  G.InGraph.assign(N, 0);
  for (unsigned Node : SR.Stack)
    G.InGraph[Node] = 1;

  // Working interference graph. Precolored nodes are permanent: they keep
  // contributing to degrees (and thus to readiness) until the end, exactly
  // as they did during simplification.
  std::vector<char> Removed(N, 0);
  std::vector<unsigned> Deg(N, 0);
  for (unsigned Node = 0; Node != N; ++Node) {
    if (IG.isMerged(Node)) {
      Removed[Node] = 1;
      continue;
    }
    Deg[Node] = IG.degree(Node);
  }

  // A node is ready once it is of low degree in the working graph; the
  // simplifier's optimistic potential spills were removed while still of
  // significant degree, so they start non-ready by construction.
  std::vector<char> Ready(N, 0);
  auto K = [&](unsigned Node) { return Target.numRegs(IG.regClass(Node)); };
  for (unsigned Node : SR.Stack)
    if (Deg[Node] < K(Node))
      Ready[Node] = 1;

  // Reachability with an epoch-marked scratch buffer: AddEdge runs once
  // per (neighbor, pop) pair, so the per-query O(N) allocation of a fresh
  // visited set would dominate construction time on larger functions.
  std::vector<unsigned> VisitEpoch(N, 0);
  std::vector<unsigned> DfsStack;
  unsigned Epoch = 0;
  auto Reachable = [&](unsigned From, unsigned To) {
    if (From == To)
      return true;
    ++Epoch;
    DfsStack.clear();
    DfsStack.push_back(From);
    VisitEpoch[From] = Epoch;
    while (!DfsStack.empty()) {
      unsigned Cur = DfsStack.back();
      DfsStack.pop_back();
      for (unsigned S : G.Succs[Cur]) {
        if (S == To)
          return true;
        if (VisitEpoch[S] != Epoch) {
          VisitEpoch[S] = Epoch;
          DfsStack.push_back(S);
        }
      }
    }
    return false;
  };

  auto AddEdge = [&](unsigned A, unsigned B) {
    // A must be colored before B. Skip edges that are already implied.
    if (Reachable(A, B))
      return;
    G.Succs[A].push_back(B);
    G.Preds[B].push_back(A);
    // Drop edges of A that the new path just made transitive.
    for (unsigned I = 0; I < G.Succs[A].size();) {
      unsigned X = G.Succs[A][I];
      if (X != B && Reachable(B, X)) {
        G.Succs[A].erase(G.Succs[A].begin() + I);
        auto It = std::find(G.Preds[X].begin(), G.Preds[X].end(), A);
        assert(It != G.Preds[X].end() && "asymmetric CPG edge");
        G.Preds[X].erase(It);
        continue;
      }
      ++I;
    }
  };

  // Examine nodes in removal order (the reverse of the coloring stack).
  for (unsigned Node : SR.Stack) {
    // Remaining non-ready neighbors must be colored before this node.
    for (unsigned M : IG.neighbors(Node)) {
      if (Removed[M] || !G.InGraph[M])
        continue;
      if (!Ready[M])
        AddEdge(M, Node);
    }
    // Remove from the working graph and update readiness.
    Removed[Node] = 1;
    for (unsigned M : IG.neighbors(Node)) {
      if (Removed[M])
        continue;
      assert(Deg[M] > 0 && "degree underflow");
      --Deg[M];
      if (G.InGraph[M] && Deg[M] < K(M))
        Ready[M] = 1;
    }
  }
  return G;
}

ColoringPrecedenceGraph
ColoringPrecedenceGraph::linearFromStack(const InterferenceGraph &IG,
                                         const SimplifyResult &SR) {
  const unsigned N = IG.numNodes();
  ColoringPrecedenceGraph G;
  G.Succs.assign(N, {});
  G.Preds.assign(N, {});
  G.InGraph.assign(N, 0);
  for (unsigned Node : SR.Stack)
    G.InGraph[Node] = 1;
  // Pop order colors Stack.back() first: chain Stack[i+1] -> Stack[i].
  for (unsigned I = 0; I + 1 < SR.Stack.size(); ++I) {
    G.Succs[SR.Stack[I + 1]].push_back(SR.Stack[I]);
    G.Preds[SR.Stack[I]].push_back(SR.Stack[I + 1]);
  }
  return G;
}

std::vector<unsigned> ColoringPrecedenceGraph::roots() const {
  std::vector<unsigned> R;
  for (unsigned N = 0, E = numNodes(); N != E; ++N)
    if (InGraph[N] && Preds[N].empty())
      R.push_back(N);
  return R;
}

bool ColoringPrecedenceGraph::hasEdge(unsigned A, unsigned B) const {
  return std::find(Succs[A].begin(), Succs[A].end(), B) != Succs[A].end();
}

unsigned ColoringPrecedenceGraph::numEdges() const {
  unsigned E = 0;
  for (const auto &S : Succs)
    E += static_cast<unsigned>(S.size());
  return E;
}

bool ColoringPrecedenceGraph::preservesColorability(
    const InterferenceGraph &IG, const TargetDesc &Target,
    const SimplifyResult &SR) const {
  // For a non-optimistic node N, any linearization may color before N: its
  // precolored neighbors plus every stacked neighbor that is not ordered
  // strictly after N. Colorability requires that count to stay below K.
  for (unsigned N : SR.Stack) {
    if (SR.OptimisticallySpilled[N])
      continue; // No guarantee was ever made for potential spills.
    unsigned WorstBefore = 0;
    for (unsigned M : IG.neighbors(N)) {
      if (IG.isPrecolored(M)) {
        ++WorstBefore;
        continue;
      }
      if (!InGraph[M])
        continue;
      if (!reachable(N, M))
        ++WorstBefore; // Unordered or before: may precede N.
    }
    if (WorstBefore >= Target.numRegs(IG.regClass(N)))
      return false;
  }
  return true;
}
