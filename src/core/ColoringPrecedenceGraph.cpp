//===- core/ColoringPrecedenceGraph.cpp - CPG --------------------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "core/ColoringPrecedenceGraph.h"

#include "support/Debug.h"

using namespace pdgc;

void ColoringPrecedenceGraph::initScratch(Arena &Mem, unsigned N,
                                          const SimplifyResult &SR) {
  NumNodes = N;
  char *Flags = Mem.allocateZeroed<char>(N);
  for (unsigned Node : SR.Stack)
    Flags[Node] = 1;
  InGraph = Flags;
  VisitEpoch = Mem.allocateZeroed<unsigned>(N);
  DfsStack = Mem.allocateArray<unsigned>(N);
  Epoch = 0;
}

ColoringPrecedenceGraph
ColoringPrecedenceGraph::build(const InterferenceGraph &IG,
                               const TargetDesc &Target,
                               const SimplifyResult &SR, Arena &Mem) {
  const unsigned N = IG.numNodes();
  ColoringPrecedenceGraph G;
  G.initScratch(Mem, N, SR);

  CsrRows<unsigned> SuccR, PredR;
  SuccR.initEmpty(Mem, N);
  PredR.initEmpty(Mem, N);

  // Working interference graph. Precolored nodes are permanent: they keep
  // contributing to degrees (and thus to readiness) until the end, exactly
  // as they did during simplification.
  char *Removed = Mem.allocateZeroed<char>(N);
  unsigned *Deg = Mem.allocateZeroed<unsigned>(N);
  for (unsigned Node = 0; Node != N; ++Node) {
    if (IG.isMerged(Node)) {
      Removed[Node] = 1;
      continue;
    }
    Deg[Node] = IG.degree(Node);
  }

  // A node is ready once it is of low degree in the working graph; the
  // simplifier's optimistic potential spills were removed while still of
  // significant degree, so they start non-ready by construction.
  char *Ready = Mem.allocateZeroed<char>(N);
  auto K = [&](unsigned Node) { return Target.numRegs(IG.regClass(Node)); };
  for (unsigned Node : SR.Stack)
    if (Deg[Node] < K(Node))
      Ready[Node] = 1;

  // Every edge added while popping a node points *at* that node, and the
  // transitive-reduction erasures below never change the reachability
  // relation (an erased A -> X is always re-routed A -> Node -> ... -> X).
  // Two facts follow, and they turn the former per-candidate DFS into two
  // amortized traversals per pop:
  //
  //  * the set of nodes the popped node reaches is invariant for the
  //    whole pop (its out-edges never change mid-pop), so one forward DFS
  //    up front answers every "did the new path make this edge
  //    transitive?" erasure test in O(1);
  //  * the set of nodes *reaching* the popped node only grows by the
  //    ancestors of each newly linked source, so marking those by reverse
  //    DFS — skipping already-marked nodes — answers every "is this edge
  //    already implied?" test in O(1) at O(V+E) total per pop.
  //
  // Both sets are epoch-stamped per pop; the arrays are never cleared.
  unsigned *ReachesNode = Mem.allocateZeroed<unsigned>(N);
  unsigned *NodeReaches = Mem.allocateZeroed<unsigned>(N);
  unsigned *Stack = G.DfsStack; // Build-time use only; queries come later.
  unsigned PopEpoch = 0;

  // Examine nodes in removal order (the reverse of the coloring stack).
  for (unsigned Node : SR.Stack) {
    ++PopEpoch;
    ReachesNode[Node] = PopEpoch;

    // Forward sweep: everything Node currently reaches.
    unsigned Top = 0;
    NodeReaches[Node] = PopEpoch;
    Stack[Top++] = Node;
    while (Top != 0) {
      const unsigned Cur = Stack[--Top];
      for (unsigned S : SuccR.row(Cur))
        if (NodeReaches[S] != PopEpoch) {
          NodeReaches[S] = PopEpoch;
          Stack[Top++] = S;
        }
    }

    // Remaining non-ready neighbors must be colored before this node.
    for (unsigned M : IG.neighbors(Node)) {
      if (Removed[M] || !G.InGraph[M] || Ready[M])
        continue;
      // Skip edges that are already implied.
      if (ReachesNode[M] == PopEpoch)
        continue;
      SuccR.push(Mem, M, Node);
      PredR.push(Mem, Node, M);
      // Drop edges of M that the new path just made transitive. Both
      // erases preserve row order (the select queue's tie-breaking
      // depends on it).
      for (unsigned I = 0; I < SuccR.size(M);) {
        unsigned X = SuccR.row(M)[I];
        if (X != Node && NodeReaches[X] == PopEpoch) {
          SuccR.eraseAt(M, I);
          Span<const unsigned> PX = PredR.row(X);
          unsigned J = 0;
          while (J != PX.size() && PX[J] != M)
            ++J;
          assert(J != PX.size() && "asymmetric CPG edge");
          PredR.eraseAt(X, J);
          continue;
        }
        ++I;
      }
      // Reverse sweep from M: its ancestors now reach Node too.
      Top = 0;
      ReachesNode[M] = PopEpoch;
      Stack[Top++] = M;
      while (Top != 0) {
        const unsigned Cur = Stack[--Top];
        for (unsigned P : PredR.row(Cur))
          if (ReachesNode[P] != PopEpoch) {
            ReachesNode[P] = PopEpoch;
            Stack[Top++] = P;
          }
      }
    }
    // Remove from the working graph and update readiness.
    Removed[Node] = 1;
    for (unsigned M : IG.neighbors(Node)) {
      if (Removed[M])
        continue;
      assert(Deg[M] > 0 && "degree underflow");
      --Deg[M];
      if (G.InGraph[M] && Deg[M] < K(M))
        Ready[M] = 1;
    }
  }

  // The edge set is settled: pack it for the select phase's iteration.
  G.Succs = CsrArray<unsigned>::compact(Mem, SuccR);
  G.Preds = CsrArray<unsigned>::compact(Mem, PredR);
  return G;
}

ColoringPrecedenceGraph
ColoringPrecedenceGraph::build(const InterferenceGraph &IG,
                               const TargetDesc &Target,
                               const SimplifyResult &SR) {
  auto Mem = std::make_unique<Arena>();
  ColoringPrecedenceGraph G = build(IG, Target, SR, *Mem);
  G.OwnedMem = std::move(Mem);
  return G;
}

ColoringPrecedenceGraph
ColoringPrecedenceGraph::linearFromStack(const InterferenceGraph &IG,
                                         const SimplifyResult &SR,
                                         Arena &Mem) {
  const unsigned N = IG.numNodes();
  ColoringPrecedenceGraph G;
  G.initScratch(Mem, N, SR);

  // Pop order colors Stack.back() first: chain Stack[i+1] -> Stack[i].
  // Counts are exact (one successor/predecessor per chain link).
  unsigned *SuccCount = Mem.allocateZeroed<unsigned>(N);
  unsigned *PredCount = Mem.allocateZeroed<unsigned>(N);
  for (unsigned I = 0; I + 1 < SR.Stack.size(); ++I) {
    ++SuccCount[SR.Stack[I + 1]];
    ++PredCount[SR.Stack[I]];
  }
  CsrRows<unsigned> SuccR, PredR;
  SuccR.init(Mem, N, SuccCount, /*Slack=*/0);
  PredR.init(Mem, N, PredCount, /*Slack=*/0);
  for (unsigned I = 0; I + 1 < SR.Stack.size(); ++I) {
    SuccR.push(Mem, SR.Stack[I + 1], SR.Stack[I]);
    PredR.push(Mem, SR.Stack[I], SR.Stack[I + 1]);
  }
  G.Succs = CsrArray<unsigned>::compact(Mem, SuccR);
  G.Preds = CsrArray<unsigned>::compact(Mem, PredR);
  return G;
}

ColoringPrecedenceGraph
ColoringPrecedenceGraph::linearFromStack(const InterferenceGraph &IG,
                                         const SimplifyResult &SR) {
  auto Mem = std::make_unique<Arena>();
  ColoringPrecedenceGraph G = linearFromStack(IG, SR, *Mem);
  G.OwnedMem = std::move(Mem);
  return G;
}

std::vector<unsigned> ColoringPrecedenceGraph::roots() const {
  std::vector<unsigned> R;
  for (unsigned N = 0, E = numNodes(); N != E; ++N)
    if (InGraph[N] && Preds.row(N).empty())
      R.push_back(N);
  return R;
}

bool ColoringPrecedenceGraph::hasEdge(unsigned A, unsigned B) const {
  for (unsigned S : Succs.row(A))
    if (S == B)
      return true;
  return false;
}

bool ColoringPrecedenceGraph::preservesColorability(
    const InterferenceGraph &IG, const TargetDesc &Target,
    const SimplifyResult &SR) const {
  // For a non-optimistic node N, any linearization may color before N: its
  // precolored neighbors plus every stacked neighbor that is not ordered
  // strictly after N. Colorability requires that count to stay below K.
  for (unsigned N : SR.Stack) {
    if (SR.OptimisticallySpilled[N])
      continue; // No guarantee was ever made for potential spills.
    unsigned WorstBefore = 0;
    for (unsigned M : IG.neighbors(N)) {
      if (IG.isPrecolored(M)) {
        ++WorstBefore;
        continue;
      }
      if (!InGraph[M])
        continue;
      if (!reachable(N, M))
        ++WorstBefore; // Unordered or before: may precede N.
    }
    if (WorstBefore >= Target.numRegs(IG.regClass(N)))
      return false;
  }
  return true;
}
