//===- sim/Interpreter.cpp - Reference IR interpreter -----------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "sim/Interpreter.h"

#include "support/Debug.h"

#include <bit>

using namespace pdgc;

namespace {

/// Deterministic 64-bit mixer (SplitMix64 finalizer).
std::uint64_t mix64(std::uint64_t X) {
  X ^= X >> 30;
  X *= 0xBF58476D1CE4E5B9ULL;
  X ^= X >> 27;
  X *= 0x94D049BB133111EBULL;
  X ^= X >> 31;
  return X;
}

/// Register/slot storage for both interpretation modes.
class MachineState {
  const Function &F;
  const TargetDesc *Target; ///< Null in virtual mode.
  const std::vector<int> *Assignment;
  std::vector<std::int64_t> IntRegs;
  std::vector<double> FpRegs;
  std::vector<std::int64_t> IntSlots;
  std::vector<double> FpSlots;

  unsigned indexOf(VReg R) const {
    if (!Target)
      return R.id();
    assert(R.id() < Assignment->size() && (*Assignment)[R.id()] >= 0 &&
           "executing a register with no assignment");
    return static_cast<unsigned>((*Assignment)[R.id()]);
  }

public:
  MachineState(const Function &Fn, const TargetDesc *TargetIn,
               const std::vector<int> *AssignmentIn, unsigned MaxSlots)
      : F(Fn), Target(TargetIn), Assignment(AssignmentIn) {
    unsigned NumRegs = TargetIn ? TargetIn->numRegs() : Fn.numVRegs();
    IntRegs.assign(NumRegs, 0);
    FpRegs.assign(NumRegs, 0.0);
    IntSlots.assign(MaxSlots, 0);
    FpSlots.assign(MaxSlots, 0.0);
  }

  std::int64_t readInt(VReg R) const { return IntRegs[indexOf(R)]; }
  double readFp(VReg R) const { return FpRegs[indexOf(R)]; }

  void writeInt(VReg R, std::int64_t V) { IntRegs[indexOf(R)] = V; }
  void writeFp(VReg R, double V) { FpRegs[indexOf(R)] = V; }

  /// Reads register \p R as raw bits of its class's value.
  std::uint64_t readBits(VReg R) const {
    if (F.regClass(R) == RegClass::GPR)
      return static_cast<std::uint64_t>(readInt(R));
    return std::bit_cast<std::uint64_t>(readFp(R));
  }

  std::int64_t &intSlot(unsigned S) {
    pdgc_check(S < IntSlots.size(), "spill slot out of range");
    return IntSlots[S];
  }
  double &fpSlot(unsigned S) {
    pdgc_check(S < FpSlots.size(), "spill slot out of range");
    return FpSlots[S];
  }
};

class Interpreter {
  const Function &F;
  const InterpreterOptions &Options;
  MachineState State;
  std::vector<std::int64_t> IntHeap;
  std::vector<double> FpHeap;
  ExecutionResult Result;

  unsigned heapIndex(std::int64_t Addr) const {
    std::uint64_t U = static_cast<std::uint64_t>(Addr);
    return static_cast<unsigned>(U % Options.HeapWords);
  }

  void digestStore(unsigned Tag, unsigned Index, std::uint64_t Bits) {
    // FNV-1a over the (tag, index, value) triple.
    std::uint64_t H = Result.StoreDigest ? Result.StoreDigest
                                         : 0xCBF29CE484222325ULL;
    auto Step = [&H](std::uint64_t V) {
      for (unsigned B = 0; B != 8; ++B) {
        H ^= (V >> (8 * B)) & 0xFF;
        H *= 0x100000001B3ULL;
      }
    };
    Step(Tag);
    Step(Index);
    Step(Bits);
    Result.StoreDigest = H;
  }

public:
  Interpreter(const Function &Fn, const TargetDesc *Target,
              const std::vector<int> *Assignment,
              const InterpreterOptions &OptionsIn)
      : F(Fn), Options(OptionsIn),
        State(Fn, Target, Assignment, OptionsIn.MaxSpillSlots) {
    IntHeap.resize(Options.HeapWords);
    FpHeap.resize(Options.HeapWords);
    for (unsigned I = 0; I != Options.HeapWords; ++I) {
      IntHeap[I] = static_cast<std::int64_t>(mix64(I + 1));
      FpHeap[I] =
          static_cast<double>(static_cast<std::int64_t>(mix64(I + 101)) %
                              65536) /
          16.0;
    }
  }

  ExecutionResult run(const std::vector<std::int64_t> &Args) {
    // Materialize the arguments into the parameter registers.
    const std::vector<VReg> &Params = F.params();
    for (unsigned I = 0, E = Params.size(); I != E; ++I) {
      std::int64_t V = I < Args.size() ? Args[I] : 0;
      if (F.regClass(Params[I]) == RegClass::GPR)
        State.writeInt(Params[I], V);
      else
        State.writeFp(Params[I], static_cast<double>(V));
    }

    const BasicBlock *BB = F.entry();
    const BasicBlock *Prev = nullptr;
    while (Result.Steps < Options.MaxSteps) {
      const BasicBlock *Next = executeBlock(BB, Prev);
      if (!Next)
        return Result; // Returned (Completed set) or out of fuel.
      Prev = BB;
      BB = Next;
    }
    return Result;
  }

private:
  /// Executes \p BB (entered from \p Prev) and returns the successor, or
  /// null when the function returned or fuel ran out.
  const BasicBlock *executeBlock(const BasicBlock *BB,
                                 const BasicBlock *Prev) {
    unsigned I = 0;
    const unsigned E = BB->size();

    // Phis are a parallel assignment at block entry.
    if (E != 0 && BB->inst(0).isPhi()) {
      unsigned PredIdx = BB->predecessorIndex(Prev);
      std::vector<std::uint64_t> Incoming;
      unsigned NumPhis = 0;
      while (NumPhis < E && BB->inst(NumPhis).isPhi()) {
        Incoming.push_back(State.readBits(BB->inst(NumPhis).use(PredIdx)));
        ++NumPhis;
      }
      for (unsigned P = 0; P != NumPhis; ++P) {
        VReg D = BB->inst(P).def();
        if (F.regClass(D) == RegClass::GPR)
          State.writeInt(D, static_cast<std::int64_t>(Incoming[P]));
        else
          State.writeFp(D, std::bit_cast<double>(Incoming[P]));
        ++Result.Steps;
      }
      I = NumPhis;
    }

    for (; I != E; ++I) {
      if (Result.Steps++ >= Options.MaxSteps)
        return nullptr;
      const Instruction &Inst = BB->inst(I);
      switch (Inst.opcode()) {
      case Opcode::LoadImm:
        if (F.regClass(Inst.def()) == RegClass::GPR)
          State.writeInt(Inst.def(), Inst.imm());
        else
          State.writeFp(Inst.def(), static_cast<double>(Inst.imm()));
        break;
      case Opcode::Move:
        if (F.regClass(Inst.def()) == RegClass::GPR)
          State.writeInt(Inst.def(), State.readInt(Inst.use(0)));
        else
          State.writeFp(Inst.def(), State.readFp(Inst.use(0)));
        break;
      case Opcode::Load: {
        unsigned Idx = heapIndex(State.readInt(Inst.use(0)) + Inst.imm());
        if (F.regClass(Inst.def()) == RegClass::GPR)
          State.writeInt(Inst.def(), IntHeap[Idx]);
        else
          State.writeFp(Inst.def(), FpHeap[Idx]);
        break;
      }
      case Opcode::Store: {
        unsigned Idx = heapIndex(State.readInt(Inst.use(1)) + Inst.imm());
        if (F.regClass(Inst.use(0)) == RegClass::GPR) {
          IntHeap[Idx] = State.readInt(Inst.use(0));
          digestStore(1, Idx, static_cast<std::uint64_t>(IntHeap[Idx]));
        } else {
          FpHeap[Idx] = State.readFp(Inst.use(0));
          digestStore(2, Idx, std::bit_cast<std::uint64_t>(FpHeap[Idx]));
        }
        break;
      }
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
        if (F.regClass(Inst.def()) == RegClass::GPR) {
          std::int64_t A = State.readInt(Inst.use(0));
          std::int64_t B = State.readInt(Inst.use(1));
          std::int64_t R = Inst.opcode() == Opcode::Add   ? A + B
                           : Inst.opcode() == Opcode::Sub ? A - B
                                                          : A * B;
          State.writeInt(Inst.def(), R);
        } else {
          double A = State.readFp(Inst.use(0));
          double B = State.readFp(Inst.use(1));
          double R = Inst.opcode() == Opcode::Add   ? A + B
                     : Inst.opcode() == Opcode::Sub ? A - B
                                                    : A * B;
          State.writeFp(Inst.def(), R);
        }
        break;
      case Opcode::AddImm:
        if (F.regClass(Inst.def()) == RegClass::GPR)
          State.writeInt(Inst.def(), State.readInt(Inst.use(0)) + Inst.imm());
        else
          State.writeFp(Inst.def(), State.readFp(Inst.use(0)) +
                                        static_cast<double>(Inst.imm()));
        break;
      case Opcode::CmpLT:
      case Opcode::CmpEQ: {
        bool R;
        if (F.regClass(Inst.use(0)) == RegClass::GPR) {
          std::int64_t A = State.readInt(Inst.use(0));
          std::int64_t B = State.readInt(Inst.use(1));
          R = Inst.opcode() == Opcode::CmpLT ? A < B : A == B;
        } else {
          double A = State.readFp(Inst.use(0));
          double B = State.readFp(Inst.use(1));
          R = Inst.opcode() == Opcode::CmpLT ? A < B : A == B;
        }
        State.writeInt(Inst.def(), R ? 1 : 0);
        break;
      }
      case Opcode::Branch:
        return BB->successors()[0];
      case Opcode::CondBranch:
        return State.readInt(Inst.use(0)) != 0 ? BB->successors()[0]
                                               : BB->successors()[1];
      case Opcode::Call: {
        // Deterministic external function of (callee, arguments).
        std::uint64_t H = mix64(0x9E3779B97F4A7C15ULL ^ Inst.callee());
        for (unsigned U = 0, UE = Inst.numUses(); U != UE; ++U)
          H = mix64(H ^ State.readBits(Inst.use(U)));
        if (Inst.hasDef()) {
          if (F.regClass(Inst.def()) == RegClass::GPR)
            State.writeInt(Inst.def(), static_cast<std::int64_t>(H));
          else
            State.writeFp(Inst.def(),
                          static_cast<double>(static_cast<std::int64_t>(
                              H % 65536)) /
                              16.0);
        }
        break;
      }
      case Opcode::Ret:
        Result.Completed = true;
        if (Inst.numUses() == 1) {
          if (F.regClass(Inst.use(0)) == RegClass::GPR)
            Result.ReturnValue = State.readInt(Inst.use(0));
          else
            Result.ReturnValue =
                std::bit_cast<std::int64_t>(State.readFp(Inst.use(0)));
        }
        return nullptr;
      case Opcode::Phi:
        pdgc_unreachable("phi past the block head");
      case Opcode::SpillLoad: {
        unsigned S = static_cast<unsigned>(Inst.imm());
        if (F.regClass(Inst.def()) == RegClass::GPR)
          State.writeInt(Inst.def(), State.intSlot(S));
        else
          State.writeFp(Inst.def(), State.fpSlot(S));
        break;
      }
      case Opcode::SpillStore: {
        unsigned S = static_cast<unsigned>(Inst.imm());
        if (F.regClass(Inst.use(0)) == RegClass::GPR)
          State.intSlot(S) = State.readInt(Inst.use(0));
        else
          State.fpSlot(S) = State.readFp(Inst.use(0));
        break;
      }
      }
    }
    pdgc_unreachable("block fell through without a terminator");
  }
};

} // namespace

ExecutionResult pdgc::runVirtual(const Function &F,
                                 const std::vector<std::int64_t> &Args,
                                 const InterpreterOptions &Options) {
  return Interpreter(F, nullptr, nullptr, Options).run(Args);
}

ExecutionResult pdgc::runAllocated(const Function &F,
                                   const TargetDesc &Target,
                                   const std::vector<int> &Assignment,
                                   const std::vector<std::int64_t> &Args,
                                   const InterpreterOptions &Options) {
  return Interpreter(F, &Target, &Assignment, Options).run(Args);
}
