//===- sim/CostSimulator.cpp - Execution-cost estimation --------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "sim/CostSimulator.h"

#include "analysis/LoopInfo.h"
#include "analysis/Liveness.h"
#include "support/BitVector.h"
#include "support/Debug.h"

using namespace pdgc;

SimulatedCost pdgc::simulateCost(const Function &F, const TargetDesc &Target,
                                 const std::vector<int> &Assignment,
                                 const CostParams &Params) {
  SimulatedCost Cost;
  LoopInfo LI = LoopInfo::compute(F, Params.LoopFreqFactor);
  Liveness LV = Liveness::compute(F);

  auto ColorOf = [&](VReg V) {
    assert(V.id() < Assignment.size() && Assignment[V.id()] >= 0 &&
           "cost simulation of an incompletely allocated function");
    return static_cast<PhysReg>(Assignment[V.id()]);
  };

  BitVector NonVolatileUsed(Target.numRegs());

  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B) {
    const BasicBlock *BB = F.block(B);
    const double Freq = LI.frequency(BB);

    // Track which load indices fused away as pair seconds.
    std::vector<char> Fused(BB->size(), 0);
    for (unsigned I = 0, IE = BB->size(); I != IE; ++I) {
      const Instruction &Inst = BB->inst(I);
      if (!Inst.isPairHead())
        continue;
      assert(I + 1 < IE && "pair head without a mate");
      const Instruction &Mate = BB->inst(I + 1);
      if (Target.pairFuses(ColorOf(Inst.def()), ColorOf(Mate.def()))) {
        Fused[I + 1] = 1;
        ++Cost.FusedPairs;
      } else {
        ++Cost.MissedPairs;
      }
    }

    LV.forEachInstReverse(BB, [&](unsigned I, const BitVector &LiveAfter) {
      const Instruction &Inst = BB->inst(I);

      // Record non-volatile register usage.
      auto Note = [&](VReg V) {
        PhysReg R = ColorOf(V);
        if (!Target.isVolatile(R))
          NonVolatileUsed.set(R);
      };
      if (Inst.hasDef())
        Note(Inst.def());
      for (unsigned U = 0, UE = Inst.numUses(); U != UE; ++U)
        Note(Inst.use(U));

      // Narrow operations pay a fixup instruction when their result
      // landed outside the narrow-capable registers.
      if (Inst.isNarrowDef() && Inst.hasDef() &&
          !Target.isNarrowCapable(ColorOf(Inst.def()))) {
        Cost.NarrowFixupCost += Params.DefaultInstCost * Freq;
        ++Cost.NarrowFixups;
      }

      switch (Inst.opcode()) {
      case Opcode::Move:
        if (ColorOf(Inst.def()) != ColorOf(Inst.use(0)))
          Cost.MoveCost += Params.DefaultInstCost * Freq;
        break;
      case Opcode::SpillLoad:
        Cost.SpillCost += Params.LoadInstCost * Freq;
        break;
      case Opcode::SpillStore:
        Cost.SpillCost += Params.StoreCost * Freq;
        break;
      case Opcode::Load:
        if (!Fused[I])
          Cost.OpCost += Params.LoadInstCost * Freq;
        break;
      case Opcode::Call: {
        // Caller-side save/restore of live-across values sitting in
        // volatile registers.
        BitVector VolatileLive(Target.numRegs());
        for (unsigned L : LiveAfter.setBits()) {
          if (Inst.hasDef() && Inst.def().id() == L)
            continue;
          PhysReg R = ColorOf(VReg(L));
          if (Target.isVolatile(R))
            VolatileLive.set(R);
        }
        Cost.CallerSaveCost +=
            Params.SaveRestoreCost * Freq * VolatileLive.count();
        break;
      }
      case Opcode::Phi:
        pdgc_unreachable("cost simulation requires phi-free IR");
      default:
        Cost.OpCost += Params.DefaultInstCost * Freq;
        break;
      }
    });
  }

  Cost.CalleeSaveCost =
      Params.CalleeSaveCost * static_cast<double>(NonVolatileUsed.count());
  return Cost;
}
