//===- sim/Interpreter.h - Reference IR interpreter -------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reference interpreter for the PDGC IR, runnable in two modes:
///
///  * virtual mode — registers are virtual registers; this defines the
///    semantics of a function;
///  * allocated mode — every register access goes through the physical
///    register assigned by an allocator, and spill loads/stores go through
///    stack slots.
///
/// The two modes must produce identical observable results (return value
/// and a digest of all stores) for any valid allocation; the property tests
/// run every allocator's output through this check, so aliasing bugs in an
/// allocator show up as semantic divergence, exactly as a miscompiled
/// program would crash.
///
/// External calls are deterministic: callee `k` applied to arguments
/// `a1..an` returns a fixed mixing function of (k, a1..an). Volatile
/// registers are preserved across calls — the save/restore code a real
/// compiler would emit is implied, and its cost is charged by the cost
/// simulator rather than simulated instruction by instruction.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SIM_INTERPRETER_H
#define PDGC_SIM_INTERPRETER_H

#include "ir/Function.h"
#include "machine/TargetDesc.h"

#include <cstdint>
#include <vector>

namespace pdgc {

/// Observable outcome of executing a function.
struct ExecutionResult {
  bool Completed = false;       ///< False when the step budget ran out.
  std::int64_t ReturnValue = 0; ///< 0 when the function returns nothing.
  std::uint64_t StoreDigest = 0; ///< FNV-1a digest over (address, value)
                                 ///< of every executed store, in order.
  std::uint64_t Steps = 0;       ///< Instructions executed.

  bool operator==(const ExecutionResult &RHS) const {
    return Completed == RHS.Completed && ReturnValue == RHS.ReturnValue &&
           StoreDigest == RHS.StoreDigest;
  }
};

/// Interpreter configuration.
struct InterpreterOptions {
  std::uint64_t MaxSteps = 2'000'000; ///< Fuel limit.
  unsigned HeapWords = 4096;          ///< Heap size per value class.
  unsigned MaxSpillSlots = 4096;      ///< Spill-slot array size.
};

/// Executes \p F on virtual registers with the given integer arguments
/// (floating-point parameters receive `double(arg)`).
ExecutionResult runVirtual(const Function &F,
                           const std::vector<std::int64_t> &Args,
                           const InterpreterOptions &Options = {});

/// Executes \p F routing every register access through \p Assignment
/// (physical register per virtual-register id).
ExecutionResult runAllocated(const Function &F, const TargetDesc &Target,
                             const std::vector<int> &Assignment,
                             const std::vector<std::int64_t> &Args,
                             const InterpreterOptions &Options = {});

} // namespace pdgc

#endif // PDGC_SIM_INTERPRETER_H
