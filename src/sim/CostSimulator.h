//===- sim/CostSimulator.h - Execution-cost estimation ----------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Estimates the execution cost of an allocated function under the paper's
/// Appendix cost model, weighted by loop frequencies. This plays the role
/// of the paper's elapsed-time measurements (Figures 10 and 11): the
/// substrate is a simulator rather than an Itanium, so absolute numbers are
/// not comparable, but the allocator-to-allocator *shape* is, because the
/// charged costs are precisely the quantities the allocators trade off:
///
///  * each instruction costs its Inst_Cost (loads 2, others 1);
///  * a move whose operands share a register costs nothing (eliminated);
///  * the second load of a paired-load candidate costs nothing when the
///    assigned registers satisfy the target's pairing rule (fused);
///  * every call charges Save_Restore_Cost (3) per live-across value held
///    in a volatile register — the implied caller save/restore;
///  * every distinct non-volatile register used charges a flat
///    Callee_Save_Cost (2) — the implied prologue/epilogue save.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SIM_COSTSIMULATOR_H
#define PDGC_SIM_COSTSIMULATOR_H

#include "analysis/CostModel.h"
#include "ir/Function.h"
#include "machine/TargetDesc.h"

#include <vector>

namespace pdgc {

/// Cost breakdown of one allocated function.
struct SimulatedCost {
  double OpCost = 0;         ///< Plain instructions (loads, arithmetic...).
  double MoveCost = 0;       ///< Surviving register-to-register copies.
  double SpillCost = 0;      ///< Spill loads/stores.
  double CallerSaveCost = 0; ///< Volatile saves/restores around calls.
  double CalleeSaveCost = 0; ///< Non-volatile prologue/epilogue saves.
  unsigned FusedPairs = 0;   ///< Paired loads fused by register selection.
  unsigned MissedPairs = 0;  ///< Paired-load candidates left unfused.
  double NarrowFixupCost = 0; ///< Fixups after narrow ops whose result
                              ///< landed outside the narrow registers.
  unsigned NarrowFixups = 0;

  double total() const {
    return OpCost + MoveCost + SpillCost + CallerSaveCost + CalleeSaveCost +
           NarrowFixupCost;
  }

  SimulatedCost &operator+=(const SimulatedCost &R) {
    OpCost += R.OpCost;
    MoveCost += R.MoveCost;
    SpillCost += R.SpillCost;
    CallerSaveCost += R.CallerSaveCost;
    CalleeSaveCost += R.CalleeSaveCost;
    FusedPairs += R.FusedPairs;
    MissedPairs += R.MissedPairs;
    NarrowFixupCost += R.NarrowFixupCost;
    NarrowFixups += R.NarrowFixups;
    return *this;
  }
};

/// Simulates the cost of \p F under \p Assignment.
SimulatedCost simulateCost(const Function &F, const TargetDesc &Target,
                           const std::vector<int> &Assignment,
                           const CostParams &Params = CostParams());

} // namespace pdgc

#endif // PDGC_SIM_COSTSIMULATOR_H
