//===- machine/TargetDesc.cpp - Machine register model ---------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "machine/TargetDesc.h"

using namespace pdgc;

TargetDesc pdgc::makeTarget(unsigned RegsPerClass, PairingRule Pairing) {
  unsigned Volatile = RegsPerClass / 2;
  unsigned Params = Volatile < 8 ? Volatile : 8;
  return TargetDesc("target" + std::to_string(RegsPerClass), RegsPerClass,
                    RegsPerClass, Volatile, Params, Pairing);
}

TargetDesc pdgc::makeHighPressureTarget() { return makeTarget(16); }

TargetDesc pdgc::makeMiddlePressureTarget() { return makeTarget(24); }

TargetDesc pdgc::makeLowPressureTarget() { return makeTarget(32); }
