//===- machine/TargetDesc.h - Machine register model ------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A parametric machine description: a register file split into general-
/// purpose and floating-point classes, a volatile/non-volatile partition, a
/// parameter/return convention, and a paired-load register rule. The three
/// canned models (16/24/32 registers per class) mirror the paper's high-,
/// middle- and low-pressure register usage models (Section 6), with half of
/// each class volatile, up to eight parameter registers, and register 0 of
/// each class doubling as the return register — the conventions the paper
/// describes for its IA-64 measurements, reduced to their essentials.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_MACHINE_TARGETDESC_H
#define PDGC_MACHINE_TARGETDESC_H

#include "ir/VReg.h"
#include "support/Debug.h"

#include <string>
#include <vector>

namespace pdgc {

/// A physical register id; GPRs occupy [0, numGPRs), FPRs follow.
using PhysReg = unsigned;

/// Register rule a paired load must satisfy to be fused into one machine
/// operation (Section 3.1, "dependent register usage").
enum class PairingRule {
  Adjacent, ///< Second destination register = first + 1 (S/390, Power).
  OddEven,  ///< Destinations must have different parity (IA-64 flavour).
};

/// Immutable description of a machine's register file and conventions.
class TargetDesc {
  std::string Name;
  unsigned GPRs;
  unsigned FPRs;
  unsigned VolatilePerClass; ///< Registers [0, V) of each class are volatile.
  unsigned MaxParamRegs;     ///< Parameter registers per class.
  PairingRule Pairing;

public:
  TargetDesc(std::string NameIn, unsigned GPRsIn, unsigned FPRsIn,
             unsigned VolatilePerClassIn, unsigned MaxParamRegsIn,
             PairingRule PairingIn)
      : Name(std::move(NameIn)), GPRs(GPRsIn), FPRs(FPRsIn),
        VolatilePerClass(VolatilePerClassIn), MaxParamRegs(MaxParamRegsIn),
        Pairing(PairingIn) {
    assert(VolatilePerClass <= GPRs && VolatilePerClass <= FPRs &&
           "volatile partition exceeds class size");
    assert(MaxParamRegs <= VolatilePerClass &&
           "parameter registers must be volatile");
  }

  const std::string &name() const { return Name; }

  unsigned numRegs() const { return GPRs + FPRs; }
  unsigned numRegs(RegClass RC) const {
    return RC == RegClass::GPR ? GPRs : FPRs;
  }

  /// First physical register of class \p RC.
  PhysReg firstReg(RegClass RC) const {
    return RC == RegClass::GPR ? 0 : GPRs;
  }

  RegClass regClass(PhysReg R) const {
    assert(R < numRegs() && "physical register out of range");
    return R < GPRs ? RegClass::GPR : RegClass::FPR;
  }

  /// Index of \p R within its class (0-based).
  unsigned classIndex(PhysReg R) const {
    return R < GPRs ? R : R - GPRs;
  }

  /// Returns the register of \p R's class with class index \p Idx, or -1 if
  /// \p Idx is out of range. Used by sequential-preference lookahead.
  int regAtClassIndex(RegClass RC, int Idx) const {
    if (Idx < 0 || Idx >= static_cast<int>(numRegs(RC)))
      return -1;
    return static_cast<int>(firstReg(RC)) + Idx;
  }

  /// Volatile registers are caller-saved: a value kept in one across a call
  /// costs a save/restore at every crossing call. Non-volatile registers
  /// are callee-saved: the first use of one costs a flat prologue/epilogue
  /// save.
  bool isVolatile(PhysReg R) const {
    return classIndex(R) < VolatilePerClass;
  }

  unsigned numVolatile(RegClass RC) const {
    (void)RC;
    return VolatilePerClass;
  }
  unsigned numNonVolatile(RegClass RC) const {
    return numRegs(RC) - VolatilePerClass;
  }

  /// Physical register carrying parameter \p Idx of class \p RC; parameters
  /// beyond maxParamRegs() would be passed in memory, which the workload
  /// generator never emits.
  PhysReg paramReg(RegClass RC, unsigned Idx) const {
    assert(Idx < MaxParamRegs && "parameter index beyond register parameters");
    return firstReg(RC) + Idx;
  }

  unsigned maxParamRegs() const { return MaxParamRegs; }

  /// Register holding a function's return value (register 0 of the class,
  /// which is also the first parameter register — as in the paper's
  /// convention "r1: arg0, return, volatile").
  PhysReg returnReg(RegClass RC) const { return firstReg(RC); }

  PairingRule pairingRule() const { return Pairing; }

  /// Number of narrow-capable registers per class: the low quarter of the
  /// file (at least one). Narrow operations (quarter-word loads and the
  /// like — Section 3.1's "limited register usage") execute without a
  /// fixup only in these registers.
  unsigned numNarrowRegs(RegClass RC) const {
    unsigned Quarter = numRegs(RC) / 4;
    return Quarter == 0 ? 1 : Quarter;
  }

  /// True when \p R can hold the result of a narrow operation directly.
  bool isNarrowCapable(PhysReg R) const {
    return classIndex(R) < numNarrowRegs(regClass(R));
  }

  /// Returns true when a paired load writing \p First then \p Second can be
  /// fused into one machine operation.
  bool pairFuses(PhysReg First, PhysReg Second) const {
    if (regClass(First) != regClass(Second))
      return false;
    unsigned A = classIndex(First), B = classIndex(Second);
    switch (Pairing) {
    case PairingRule::Adjacent:
      return B == A + 1;
    case PairingRule::OddEven:
      return (A & 1) != (B & 1);
    }
    pdgc_unreachable("unknown pairing rule");
  }

  /// Printable name: r0..rN for GPRs, f0..fN for FPRs.
  std::string regName(PhysReg R) const {
    return (regClass(R) == RegClass::GPR ? "r" : "f") +
           std::to_string(classIndex(R));
  }
};

/// The paper's high-pressure model: 16 registers per class.
TargetDesc makeHighPressureTarget();

/// The paper's middle-pressure model: 24 registers per class.
TargetDesc makeMiddlePressureTarget();

/// The paper's low-pressure model: 32 registers per class.
TargetDesc makeLowPressureTarget();

/// A model with \p RegsPerClass registers per class, half volatile, up to
/// eight parameter registers, and the given pairing rule.
TargetDesc makeTarget(unsigned RegsPerClass,
                      PairingRule Pairing = PairingRule::Adjacent);

} // namespace pdgc

#endif // PDGC_MACHINE_TARGETDESC_H
