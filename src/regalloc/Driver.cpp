//===- regalloc/Driver.cpp - Build-color-spill iteration -------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "regalloc/Driver.h"

#include "ir/PhiElimination.h"
#include "regalloc/AssignmentChecker.h"
#include "regalloc/Rewriter.h"
#include "regalloc/SpillCodeInserter.h"
#include "support/Debug.h"

using namespace pdgc;

AllocationOutcome pdgc::allocate(Function &F, const TargetDesc &Target,
                                 AllocatorBase &Allocator,
                                 const DriverOptions &Options) {
  AllocationOutcome Out;
  if (hasPhis(F))
    eliminatePhis(F);
  Out.OriginalMoves = countMoves(F);

  unsigned NextSlot = 0;
  for (unsigned Round = 0; Round != Options.MaxRounds; ++Round) {
    AllocContext Ctx(F, Target, Options.Costs);
    RoundResult RR = Allocator.allocateRound(Ctx);
    ++Out.Rounds;

    assert(RR.Color.size() == F.numVRegs() && "result size mismatch");
    assert(RR.CoalesceMap.size() == F.numVRegs() && "map size mismatch");

    if (RR.anySpill()) {
      Out.SpilledRanges += static_cast<unsigned>(RR.Spilled.size());
      insertSpillCode(F, RR.Spilled, NextSlot, Options.Rematerialize,
                      Options.Granularity);
      continue;
    }

    // Success: expand colors through the coalesce map.
    Out.Assignment.assign(F.numVRegs(), -1);
    for (unsigned V = 0, E = F.numVRegs(); V != E; ++V) {
      unsigned Rep = RR.CoalesceMap[V];
      assert(Rep < RR.Color.size() && "bad coalesce representative");
      Out.Assignment[V] = RR.Color[Rep];
    }

    Out.StackSlots = NextSlot;
    Out.SpillInstructions = countSpillInstructions(F);
    Out.Moves = moveStats(F, Out.Assignment, Ctx.LI);

    if (Options.VerifyAssignment) {
      std::vector<std::string> Errors =
          checkAssignment(F, Target, Out.Assignment);
      if (!Errors.empty())
        pdgc_check(false, (std::string(Allocator.name()) +
                           " produced an invalid allocation: " +
                           Errors.front())
                              .c_str());
    }
    return Out;
  }
  pdgc_check(false, "register allocation did not converge");
  return Out;
}
