//===- regalloc/Driver.cpp - Build-color-spill iteration -------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "regalloc/Driver.h"

#include "ir/Clone.h"
#include "ir/PhiElimination.h"
#include "ir/Verifier.h"
#include "regalloc/AllocatorRegistry.h"
#include "regalloc/AssignmentChecker.h"
#include "regalloc/Rewriter.h"
#include "regalloc/SpillCodeInserter.h"
#include "support/Deadline.h"
#include "support/Debug.h"
#include "support/FaultInjection.h"
#include "support/Stats.h"
#include "support/Tracing.h"

#include <optional>

using namespace pdgc;

namespace {

/// Validates the shape of a round result against the allocator contract;
/// returns a non-empty message on violation.
std::string roundResultError(const RoundResult &RR, const Function &F,
                             const TargetDesc &Target) {
  const unsigned N = F.numVRegs();
  if (RR.Color.size() != N)
    return "color vector size mismatch";
  if (RR.CoalesceMap.size() != N)
    return "coalesce map size mismatch";
  for (unsigned V = 0; V != N; ++V)
    if (RR.CoalesceMap[V] >= N)
      return "coalesce representative out of range";
  for (int C : RR.Color)
    if (C >= 0 && static_cast<unsigned>(C) >= Target.numRegs())
      return "color out of range";
  for (unsigned V : RR.Spilled) {
    if (V >= N)
      return "spilled register out of range";
    if (F.isPinned(VReg(V)))
      return "spilled a pinned register";
    if (F.isSpillTemp(VReg(V)) && !F.isRespillableTemp(VReg(V)))
      return "spilled an unspillable fragment";
  }
  return "";
}

/// A pin outside the target's register file (or in the wrong class) makes
/// the instance unsatisfiable before any allocator runs — e.g. a fixture
/// generated for 24 registers per class fed to an 8-register target.
/// Catching it up front turns "every tier failed with color out of range"
/// into one actionable diagnostic.
std::string pinTargetError(const Function &F, const TargetDesc &Target) {
  for (unsigned V = 0, E = F.numVRegs(); V != E; ++V) {
    const VReg R(V);
    if (!F.isPinned(R))
      continue;
    const int Pin = F.pinnedReg(R);
    if (Pin < 0 || static_cast<unsigned>(Pin) >= Target.numRegs())
      return "v" + std::to_string(V) + " is pinned to r" +
             std::to_string(Pin) + ", outside the target's " +
             std::to_string(Target.numRegs()) + " registers";
    if (Target.regClass(static_cast<PhysReg>(Pin)) != F.regClass(R))
      return "v" + std::to_string(V) + " is pinned to r" +
             std::to_string(Pin) + " of the wrong register class";
  }
  return "";
}

} // namespace

std::vector<FallbackTier> pdgc::defaultFallbackChain() {
  return {{"full-preferences", nullptr},
          {"briggs+aggressive", nullptr},
          {"spill-everything", nullptr}};
}

StatusOr<AllocationOutcome> pdgc::tryAllocate(Function &F,
                                              const TargetDesc &Target,
                                              AllocatorBase &Allocator,
                                              const DriverOptions &Options,
                                              Arena *AnalysisMem) {
  if (std::string PinErr = pinTargetError(F, Target); !PinErr.empty())
    return Status::error(ErrorCode::VerifyError, PinErr);

  const Deadline Budget =
      Deadline::afterMs(Options.TimeBudgetMs).sooner(Options.CancelAt);

  PDGC_STAT("driver", "allocations").inc();
  AllocationOutcome Out;
  // Everything under the trap converts fatal checks into FatalError, so a
  // buggy allocator (or analysis fed garbage) surfaces as a structured
  // error instead of killing the process. The ScopedDeadline makes Budget
  // the thread's ambient deadline, which the hot loops downstream
  // (simplify, select, optimal search, analysis rebuilds) poll — a
  // DeadlineExceeded lands in the catch below as BUDGET_EXCEEDED.
  try {
    ScopedErrorTrap Trap;
    ScopedDeadline Guard(Budget);
    if (hasPhis(F)) {
      ScopedTimer PhiTimer("driver.phi_elimination", "driver");
      PDGC_FAULT_POINT("driver.phi_elim");
      eliminatePhis(F);
    }
    Out.OriginalMoves = countMoves(F);

    // Phi elimination (above) was the last CFG mutation; from here on,
    // spill rounds only insert instructions, so the CFG-derived analyses
    // (RPO, LoopInfo) are computed once and the rest is refreshed into
    // reused buffers each round.
    std::optional<AnalysisContext> Analyses;

    unsigned NextSlot = 0;
    for (unsigned Round = 0; Round != Options.MaxRounds; ++Round) {
      if (Budget.expired()) {
        PDGC_STAT("driver", "time_budget_exceeded").inc();
        return Status::error(ErrorCode::BudgetExceeded,
                             std::string(Allocator.name()) +
                                 ": wall-clock budget exhausted entering "
                                 "round " +
                                 std::to_string(Round + 1));
      }

      ScopedTimer RoundTimer("driver.round", "driver");
      PDGC_FAULT_POINT("driver.round");
      if (!Analyses)
        Analyses.emplace(F, Options.Costs, AnalysisMem);
      else
        Analyses->refresh();
      AllocContext Ctx(F, Target, *Analyses);
      RoundResult RR;
      {
        ScopedTimer AllocTimer(std::string("allocator.") + Allocator.name(),
                               "allocator");
        RR = Allocator.allocateRound(Ctx);
      }
      ++Out.Rounds;
      PDGC_STAT("driver", "rounds").inc();

      std::string Shape = roundResultError(RR, F, Target);
      if (!Shape.empty())
        return Status::error(ErrorCode::AllocatorInternal,
                             std::string(Allocator.name()) + ": " + Shape);

      if (RR.anySpill()) {
        Out.SpilledRanges += static_cast<unsigned>(RR.Spilled.size());
        PDGC_STAT("driver", "spill_rounds").inc();
        PDGC_STAT("driver", "spilled_ranges").add(RR.Spilled.size());
        trace::instant("spill-decision", "driver",
                       "{\"ranges\":" + std::to_string(RR.Spilled.size()) +
                           ",\"round\":" + std::to_string(Round + 1) + "}");
        ScopedTimer SpillTimer("driver.spill_insert", "driver");
        PDGC_FAULT_POINT("driver.spill_insert");
        insertSpillCode(F, RR.Spilled, NextSlot, Options.Rematerialize,
                        Options.Granularity);
        continue;
      }

      // Success: expand colors through the coalesce map.
      Out.Assignment.assign(F.numVRegs(), -1);
      for (unsigned V = 0, E = F.numVRegs(); V != E; ++V)
        Out.Assignment[V] = RR.Color[RR.CoalesceMap[V]];

      Out.StackSlots = NextSlot;
      Out.SpillInstructions = countSpillInstructions(F);
      Out.Moves = moveStats(F, Out.Assignment, Ctx.LI);

      if (Options.VerifyAssignment) {
        ScopedTimer CheckTimer("driver.checker", "driver");
        PDGC_FAULT_POINT("driver.checker");
        std::vector<std::string> Errors =
            checkAssignment(F, Target, Out.Assignment);
        if (!Errors.empty())
          return Status::error(ErrorCode::CheckerMismatch,
                               std::string(Allocator.name()) +
                                   " produced an invalid allocation: " +
                                   Errors.front());
      }
      return Out;
    }
  } catch (const DeadlineExceeded &) {
    // A hot loop polled the ambient deadline past its expiry: the round
    // was cancelled mid-flight rather than allowed to overshoot.
    PDGC_STAT("driver", "deadline_cancelled").inc();
    trace::instant("deadline-cancelled", "driver",
                   "{\"allocator\":\"" + trace::jsonEscape(Allocator.name()) +
                       "\"}");
    return Status::error(ErrorCode::BudgetExceeded,
                         std::string(Allocator.name()) +
                             ": cancelled mid-round by wall-clock deadline");
  } catch (const fault::InjectedFault &E) {
    // Deterministic fault injection asked this stage to fail with a
    // structured error (as opposed to a fatal invariant).
    PDGC_STAT("driver", "injected_faults_trapped").inc();
    return Status::error(ErrorCode::AllocatorInternal,
                         std::string(Allocator.name()) + ": " + E.what());
  } catch (const FatalError &E) {
    // A trapped fatal check is the observability event of record for "an
    // allocator invariant broke but the process survived".
    PDGC_STAT("driver", "fatal_checks_trapped").inc();
    trace::instant("fatal-check-trapped", "driver",
                   "{\"allocator\":\"" +
                       trace::jsonEscape(Allocator.name()) +
                       "\",\"what\":\"" + trace::jsonEscape(E.what()) +
                       "\"}");
    return Status::error(ErrorCode::AllocatorInternal,
                         std::string(Allocator.name()) +
                             ": fatal check: " + E.what());
  } catch (const std::exception &E) {
    PDGC_STAT("driver", "exceptions_trapped").inc();
    return Status::error(ErrorCode::AllocatorInternal,
                         std::string(Allocator.name()) +
                             ": uncaught exception: " + E.what());
  }
  PDGC_STAT("driver", "round_budget_exceeded").inc();
  return Status::error(ErrorCode::BudgetExceeded,
                       std::string(Allocator.name()) +
                           ": register allocation did not converge within " +
                           std::to_string(Options.MaxRounds) + " rounds");
}

AllocationOutcome pdgc::allocate(Function &F, const TargetDesc &Target,
                                 AllocatorBase &Allocator,
                                 const DriverOptions &Options) {
  StatusOr<AllocationOutcome> Result =
      tryAllocate(F, Target, Allocator, Options);
  pdgc_check(Result.ok(), Result.ok() ? "" : Result.status().toString().c_str());
  return std::move(Result.value());
}

StatusOr<AllocationOutcome>
pdgc::allocateWithFallback(Function &F, const TargetDesc &Target,
                           const DriverOptions &Options) {
  {
    std::vector<std::string> Errors;
    ScopedErrorTrap Trap;
    ScopedTimer VerifyTimer("driver.verify", "driver");
    try {
      PDGC_FAULT_POINT("driver.verify");
      if (!verifyFunction(F, Errors))
        return Status::error(ErrorCode::VerifyError,
                             Errors.empty() ? "function does not verify"
                                            : Errors.front());
    } catch (const std::exception &E) {
      return Status::error(ErrorCode::VerifyError,
                           std::string("verifier raised: ") + E.what());
    }
  }
  if (std::string PinErr = pinTargetError(F, Target); !PinErr.empty())
    return Status::error(ErrorCode::VerifyError, PinErr);
  if (Options.FallbackChain.empty())
    return Status::error(ErrorCode::AllocatorInternal,
                         "empty fallback chain");

  // The chain guarantees checker validity even when the caller opted out
  // for the raw entry points.
  DriverOptions TierOptions = Options;
  TierOptions.VerifyAssignment = true;

  PDGC_STAT("fallback", "allocations").inc();
  ScopedTimer ChainTimer("fallback.chain", "tier");

  // One graph arena for the whole chain: each tier's AnalysisContext
  // resets and re-carves it, so a degraded allocation pays the chunk
  // mallocs once instead of once per tier attempted.
  Arena ChainMem;

  DegradationInfo Degradation;
  for (unsigned Tier = 0; Tier != Options.FallbackChain.size(); ++Tier) {
    const FallbackTier &T = Options.FallbackChain[Tier];
    ScopedTimer TierTimer("tier." + T.Name, "tier");

    // The final tier is the guarantee: exempt it from the caller's
    // absolute cancellation point so an expired batch deadline degrades
    // the item to spill-everything instead of failing it outright.
    // TimeBudgetMs still binds every tier (per-tier budget semantics).
    TierOptions.CancelAt = Tier + 1 == Options.FallbackChain.size()
                               ? Deadline()
                               : Options.CancelAt;

    // A site any test can use to fail an arbitrary tier (or all of them)
    // from the environment, with no code hook. Wrapped so an injected
    // fatal here behaves like any other tier failure.
    try {
      PDGC_FAULT_POINT("fallback.tier");
    } catch (const std::exception &E) {
      PDGC_STAT("fallback", "tier_failures").inc();
      Degradation.FailedTiers.push_back(T.Name + ": ALLOCATOR_INTERNAL: " +
                                        E.what());
      continue;
    }

    std::unique_ptr<AllocatorBase> Allocator =
        T.Factory ? T.Factory() : createRegisteredAllocator(T.Name);
    if (!Allocator) {
      Degradation.FailedTiers.push_back(
          T.Name + ": ALLOCATOR_INTERNAL: allocator is not registered "
                   "in this binary");
      continue;
    }
    if (Options.FailTierHook && Options.FailTierHook(T.Name)) {
      Degradation.FailedTiers.push_back(
          T.Name + ": ALLOCATOR_INTERNAL: failure injected by test hook");
      continue;
    }

    // Each tier works on a fresh clone; only the winner is swapped in, so
    // a failed tier never leaves F half-rewritten.
    std::unique_ptr<Function> Work;
    {
      ScopedErrorTrap Trap;
      try {
        PDGC_FAULT_POINT("driver.clone");
        Work = cloneFunction(F);
      } catch (const std::exception &E) {
        return Status::error(ErrorCode::AllocatorInternal,
                             std::string("function clone failed: ") +
                                 E.what());
      }
    }

    StatusOr<AllocationOutcome> Result =
        tryAllocate(*Work, Target, *Allocator, TierOptions, &ChainMem);
    if (Result.ok()) {
      F.swapWith(*Work);
      AllocationOutcome Out = std::move(Result.value());
      Degradation.Degraded = Tier != 0;
      Degradation.ServedBy = T.Name;
      Degradation.TierIndex = Tier;
      if (Degradation.Degraded) {
        PDGC_STAT("fallback", "degraded_allocations").inc();
        trace::instant("degraded", "tier",
                       "{\"served_by\":\"" + trace::jsonEscape(T.Name) +
                           "\",\"tier\":" + std::to_string(Tier) + "}");
      }
      Out.Degradation = std::move(Degradation);
      return Out;
    }
    PDGC_STAT("fallback", "tier_failures").inc();
    trace::instant("tier-failed", "tier",
                   "{\"tier\":\"" + trace::jsonEscape(T.Name) +
                       "\",\"error\":\"" +
                       trace::jsonEscape(Result.status().toString()) +
                       "\"}");
    Degradation.FailedTiers.push_back(T.Name + ": " +
                                      Result.status().toString());
  }

  PDGC_STAT("fallback", "exhausted_chains").inc();
  std::string Summary = "all fallback tiers failed:";
  for (const std::string &Failure : Degradation.FailedTiers)
    Summary += " [" + Failure + "]";
  return Status::error(ErrorCode::AllocatorInternal, Summary);
}
