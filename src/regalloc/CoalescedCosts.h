//===- regalloc/CoalescedCosts.h - Costs of merged classes ------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// When nodes are coalesced, the merged node represents the union of the
/// member live ranges: its spill cost, operation cost and call-crossing
/// weight are the sums over members, and it is unspillable if any member
/// is. This helper aggregates the per-register Appendix costs up to
/// union-find representatives so simplification and benefit queries see
/// class-level numbers.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_REGALLOC_COALESCEDCOSTS_H
#define PDGC_REGALLOC_COALESCEDCOSTS_H

#include "analysis/CostModel.h"
#include "support/UnionFind.h"

#include <limits>
#include <vector>

namespace pdgc {

/// Appendix cost aggregates per coalescing class.
class CoalescedCosts {
  std::vector<double> Spill;
  std::vector<double> Op;
  std::vector<double> CallCross;
  std::vector<char> Infinite;
  const CostParams *Params = nullptr;

public:
  /// Aggregates \p Costs over the classes of \p UF (representatives index
  /// the result; non-representative entries are unspecified).
  CoalescedCosts(const LiveRangeCosts &Costs, const UnionFind &UF);

  double spillCost(unsigned Rep) const { return Spill[Rep]; }
  double opCost(unsigned Rep) const { return Op[Rep]; }
  double memCost(unsigned Rep) const { return Spill[Rep] + Op[Rep]; }
  double callCrossWeight(unsigned Rep) const { return CallCross[Rep]; }
  bool crossesCall(unsigned Rep) const { return CallCross[Rep] > 0.0; }

  double callCost(unsigned Rep, bool VolatileReg) const {
    if (VolatileReg)
      return Params->SaveRestoreCost * CallCross[Rep];
    return Params->CalleeSaveCost;
  }

  /// Mem_Cost - Ideal_Cost with no instruction savings: the benefit of
  /// keeping the class in a register of the given volatility vs memory.
  double registerBenefit(unsigned Rep, bool VolatileReg) const {
    return memCost(Rep) - (callCost(Rep, VolatileReg) + Op[Rep]);
  }

  bool isInfinite(unsigned Rep) const { return Infinite[Rep] != 0; }

  /// Spill-candidate ranking metric: +inf for unspillable classes.
  double spillMetric(unsigned Rep) const {
    if (Infinite[Rep])
      return std::numeric_limits<double>::infinity();
    return Spill[Rep];
  }
};

} // namespace pdgc

#endif // PDGC_REGALLOC_COALESCEDCOSTS_H
