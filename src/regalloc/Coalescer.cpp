//===- regalloc/Coalescer.cpp - Graph coalescing ---------------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "regalloc/Coalescer.h"

#include "support/BitVector.h"
#include "support/Debug.h"

using namespace pdgc;

bool pdgc::canMergePair(const InterferenceGraph &IG, unsigned A, unsigned B) {
  if (A == B || IG.isMerged(A) || IG.isMerged(B))
    return false;
  if (IG.regClass(A) != IG.regClass(B))
    return false;
  if (IG.interferes(A, B))
    return false;
  if (IG.isPrecolored(A) && IG.isPrecolored(B))
    return false;
  // Merging into a precolored node fixes the color now; reject it when the
  // ordinary node already conflicts with another node of that color.
  if (IG.isPrecolored(A) && IG.conflictsWithColor(B, IG.precolor(A)))
    return false;
  if (IG.isPrecolored(B) && IG.conflictsWithColor(A, IG.precolor(B)))
    return false;
  return true;
}

unsigned pdgc::mergePair(InterferenceGraph &IG, UnionFind &UF, unsigned A,
                         unsigned B) {
  assert(canMergePair(IG, A, B) && "illegal merge");
  if (IG.isPrecolored(B))
    std::swap(A, B);
  IG.merge(A, B);
  UF.unionSets(A, B);
  return A;
}

bool pdgc::briggsTestOk(const InterferenceGraph &IG, const TargetDesc &Target,
                        unsigned A, unsigned B) {
  const unsigned K = Target.numRegs(IG.regClass(A));
  // Count distinct neighbors of the would-be merged node whose degree in
  // the merged graph would be >= K. A neighbor adjacent to both A and B
  // loses one edge in the merge, hence the Combined adjustment.
  unsigned Significant = 0;
  auto CountFrom = [&](unsigned N, unsigned Other) {
    for (unsigned M : IG.neighbors(N)) {
      if (M == Other)
        continue;
      bool Both = IG.interferes(M, A) && IG.interferes(M, B);
      if (Both && N == B)
        continue; // Counted once, while scanning A's neighbors.
      unsigned Deg = IG.degree(M);
      if (Both)
        --Deg; // The merge fuses M's two edges into one.
      unsigned MK = Target.numRegs(IG.regClass(M));
      if (IG.isPrecolored(M) || Deg >= MK)
        ++Significant;
    }
  };
  CountFrom(A, B);
  CountFrom(B, A);
  return Significant < K;
}

bool pdgc::georgeTestOk(const InterferenceGraph &IG, const TargetDesc &Target,
                        unsigned A, unsigned B) {
  // Every neighbor T of B must either already interfere with A, or be of
  // insignificant degree (then T can always be simplified first).
  const unsigned K = Target.numRegs(IG.regClass(A));
  for (unsigned T : IG.neighbors(B)) {
    if (T == A || IG.interferes(T, A))
      continue;
    if (!IG.isPrecolored(T) && IG.degree(T) < K)
      continue;
    return false;
  }
  return true;
}

/// Runs \p TryMerge over every copy until a pass performs no merge.
/// Returns the total number of merges.
template <typename PredT>
static unsigned coalesceLoop(InterferenceGraph &IG, UnionFind &UF,
                             PredT ShouldMerge) {
  unsigned Total = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const MoveRecord &MR : IG.moves()) {
      unsigned A = UF.find(MR.Dst);
      unsigned B = UF.find(MR.Src);
      if (!canMergePair(IG, A, B))
        continue;
      if (!ShouldMerge(A, B))
        continue;
      mergePair(IG, UF, A, B);
      ++Total;
      Changed = true;
    }
  }
  return Total;
}

unsigned pdgc::aggressiveCoalesce(InterferenceGraph &IG, UnionFind &UF) {
  return coalesceLoop(IG, UF, [](unsigned, unsigned) { return true; });
}

unsigned pdgc::conservativeCoalesce(InterferenceGraph &IG, UnionFind &UF,
                                    const TargetDesc &Target) {
  return coalesceLoop(IG, UF, [&](unsigned A, unsigned B) {
    if (IG.isPrecolored(A) || IG.isPrecolored(B))
      return georgeTestOk(IG, Target, IG.isPrecolored(A) ? A : B,
                          IG.isPrecolored(A) ? B : A);
    return briggsTestOk(IG, Target, A, B);
  });
}
