//===- regalloc/Rewriter.cpp - Apply coalescing to the IR ------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "regalloc/Rewriter.h"

#include "support/Debug.h"

using namespace pdgc;

unsigned pdgc::rewriteCoalesced(Function &F,
                                const std::vector<unsigned> &RepOf) {
  assert(RepOf.size() == F.numVRegs() && "representative map size mismatch");
  unsigned Deleted = 0;
  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B) {
    BasicBlock *BB = F.block(B);
    std::vector<Instruction> Kept;
    Kept.reserve(BB->size());
    for (Instruction &I : BB->instructions()) {
      if (I.hasDef())
        I.setDef(VReg(RepOf[I.def().id()]));
      for (unsigned U = 0, UE = I.numUses(); U != UE; ++U)
        I.setUse(U, VReg(RepOf[I.use(U).id()]));
      if (I.isCopy() && I.def() == I.use(0)) {
        ++Deleted;
        continue;
      }
      Kept.push_back(std::move(I));
    }
    BB->instructions() = std::move(Kept);
  }
  return Deleted;
}

unsigned pdgc::countMoves(const Function &F) {
  unsigned N = 0;
  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B)
    for (const Instruction &I : F.block(B)->instructions())
      if (I.isCopy())
        ++N;
  return N;
}
