//===- regalloc/CoalescedCosts.cpp - Costs of merged classes ---------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "regalloc/CoalescedCosts.h"

using namespace pdgc;

CoalescedCosts::CoalescedCosts(const LiveRangeCosts &Costs,
                               const UnionFind &UF)
    : Params(&Costs.params()) {
  const unsigned N = UF.size();
  Spill.assign(N, 0.0);
  Op.assign(N, 0.0);
  CallCross.assign(N, 0.0);
  Infinite.assign(N, 0);
  for (unsigned V = 0; V != N; ++V) {
    unsigned Rep = UF.find(V);
    VReg R(V);
    Spill[Rep] += Costs.spillCost(R);
    Op[Rep] += Costs.opCost(R);
    CallCross[Rep] += Costs.callCrossWeight(R);
    if (Costs.isInfinite(R))
      Infinite[Rep] = 1;
  }
}
