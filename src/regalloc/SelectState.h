//===- regalloc/SelectState.h - Select-phase color tracking -----*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tracks colors during the select phase: which physical register each
/// node has received and which registers remain available for a node given
/// its already-colored neighbors. Works against any interference graph
/// (coalesced or pristine), so both the ordinary allocators and the
/// undo-coalescing path of optimistic coalescing reuse it.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_REGALLOC_SELECTSTATE_H
#define PDGC_REGALLOC_SELECTSTATE_H

#include "analysis/InterferenceGraph.h"
#include "machine/TargetDesc.h"
#include "support/BitVector.h"

namespace pdgc {

/// Color bookkeeping for one select phase.
class SelectState {
  const InterferenceGraph &IG;
  const TargetDesc &Target;
  std::vector<int> Colors; ///< Per node id; -1 = uncolored.

public:
  /// Initializes with every precolored node already holding its color.
  SelectState(const InterferenceGraph &IGIn, const TargetDesc &TargetIn)
      : IG(IGIn), Target(TargetIn), Colors(IGIn.numNodes(), -1) {
    for (unsigned N = 0, E = IG.numNodes(); N != E; ++N)
      if (IG.isPrecolored(N))
        Colors[N] = IG.precolor(N);
  }

  int color(unsigned N) const { return Colors[N]; }
  bool hasColor(unsigned N) const { return Colors[N] >= 0; }

  void setColor(unsigned N, int C) {
    assert(C >= 0 && static_cast<unsigned>(C) < Target.numRegs() &&
           "color out of range");
    assert(Target.regClass(static_cast<PhysReg>(C)) == IG.regClass(N) &&
           "color from the wrong register class");
    Colors[N] = C;
  }

  const std::vector<int> &colors() const { return Colors; }

  /// Returns the set of physical registers (as a bit vector over register
  /// ids) that node \p N could take: the registers of N's class minus the
  /// colors of N's already-colored neighbors in the graph.
  BitVector availableFor(unsigned N) const {
    BitVector Avail(Target.numRegs());
    RegClass RC = IG.regClass(N);
    PhysReg First = Target.firstReg(RC);
    for (unsigned I = 0, E = Target.numRegs(RC); I != E; ++I)
      Avail.set(First + I);
    for (unsigned M : IG.neighbors(N))
      if (Colors[M] >= 0)
        Avail.reset(static_cast<unsigned>(Colors[M]));
    return Avail;
  }

  /// Returns the lowest-numbered available register for \p N, or -1.
  int firstAvailable(unsigned N) const {
    return availableFor(N).findFirst();
  }
};

/// Picks a register from \p Avail: the lowest-numbered one, or — with
/// \p NonVolatileFirst — the lowest non-volatile one when any is free (the
/// "simple heuristic to use non-volatile registers first, then volatile"
/// the paper gives preference-unaware allocators in Section 6.2). Returns
/// -1 when \p Avail is empty.
inline int pickAvailable(const BitVector &Avail, const TargetDesc &Target,
                         bool NonVolatileFirst) {
  if (NonVolatileFirst)
    for (unsigned R : Avail.setBits())
      if (!Target.isVolatile(static_cast<PhysReg>(R)))
        return static_cast<int>(R);
  return Avail.findFirst();
}

} // namespace pdgc

#endif // PDGC_REGALLOC_SELECTSTATE_H
