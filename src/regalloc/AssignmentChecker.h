//===- regalloc/AssignmentChecker.h - Allocation validity -------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Independent validity checking of a finished register assignment. This
/// recomputes liveness from scratch and verifies that no two simultaneously
/// live virtual registers share a physical register, that register classes
/// match, and that pinned registers received their pinned color. Every
/// allocator's output is run through this in the test suite (and by the
/// driver when verification is enabled), so an allocator bug cannot
/// silently produce wrong code.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_REGALLOC_ASSIGNMENTCHECKER_H
#define PDGC_REGALLOC_ASSIGNMENTCHECKER_H

#include "ir/Function.h"
#include "machine/TargetDesc.h"

#include <string>
#include <vector>

namespace pdgc {

/// Checks \p Assignment (physical register per virtual-register id) for
/// \p F. Returns human-readable error strings; empty means valid.
std::vector<std::string> checkAssignment(const Function &F,
                                         const TargetDesc &Target,
                                         const std::vector<int> &Assignment);

} // namespace pdgc

#endif // PDGC_REGALLOC_ASSIGNMENTCHECKER_H
