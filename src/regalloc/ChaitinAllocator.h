//===- regalloc/ChaitinAllocator.h - Chaitin's allocator --------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chaitin's original allocator (Figure 1(a) of the paper): aggressive
/// coalescing iteratively reflected in the interference graph, pessimistic
/// simplification (a blocked graph spills the cheapest candidate outright
/// and the whole build phase restarts), and a select phase that assigns
/// each popped node a color distinct from its neighbors. This is the *base*
/// algorithm of Figure 9: eliminated-move and spill ratios of every other
/// allocator are reported relative to it.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_REGALLOC_CHAITINALLOCATOR_H
#define PDGC_REGALLOC_CHAITINALLOCATOR_H

#include "regalloc/AllocatorBase.h"

namespace pdgc {

/// Chaitin-style coloring with aggressive coalescing.
class ChaitinAllocator : public AllocatorBase {
public:
  const char *name() const override { return "chaitin"; }
  RoundResult allocateRound(AllocContext &Ctx) override;
};

} // namespace pdgc

#endif // PDGC_REGALLOC_CHAITINALLOCATOR_H
