//===- regalloc/Simplifier.cpp - Graph simplification ----------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "regalloc/Simplifier.h"

#include "support/Deadline.h"
#include "support/Debug.h"

using namespace pdgc;

namespace {

/// Mutable degree-tracking view of the interference graph during
/// simplification.
class SimplifyState {
public:
  const InterferenceGraph &IG;
  const TargetDesc &Target;
  std::vector<char> Removed;
  std::vector<unsigned> Degree;

  SimplifyState(const InterferenceGraph &IGIn, const TargetDesc &TargetIn)
      : IG(IGIn), Target(TargetIn), Removed(IGIn.numNodes(), 0),
        Degree(IGIn.numNodes(), 0) {
    for (unsigned N = 0, E = IG.numNodes(); N != E; ++N) {
      if (IG.isMerged(N)) {
        Removed[N] = 1;
        continue;
      }
      Degree[N] = IG.degree(N);
    }
  }

  unsigned k(unsigned N) const { return Target.numRegs(IG.regClass(N)); }

  bool isActive(unsigned N) const {
    return !Removed[N] && !IG.isPrecolored(N);
  }

  bool isLowDegree(unsigned N) const { return Degree[N] < k(N); }

  /// Removes \p N from the working graph, decrementing neighbor degrees.
  void remove(unsigned N) {
    assert(!Removed[N] && "node removed twice");
    Removed[N] = 1;
    for (unsigned M : IG.neighbors(N))
      if (!Removed[M])
        --Degree[M];
  }
};

} // namespace

SimplifyResult pdgc::simplifyGraph(
    const InterferenceGraph &IG, const TargetDesc &Target,
    const std::function<double(unsigned)> &SpillMetric, bool Optimistic,
    const std::function<double(unsigned)> &RemovalPriority) {
  SimplifyState S(IG, Target);
  SimplifyResult R;
  R.OptimisticallySpilled.assign(IG.numNodes(), 0);

  unsigned NumActive = 0;
  for (unsigned N = 0, E = IG.numNodes(); N != E; ++N)
    if (S.isActive(N))
      ++NumActive;

  // Low-degree nodes are removed in the order they become removable (a
  // FIFO worklist), which is the order the paper's Figure 7 walkthrough
  // exhibits. With a priority hook, the smallest-priority removable node
  // goes first instead (so that high-priority nodes are popped, i.e.
  // colored, earlier).
  std::vector<unsigned> Worklist;
  std::vector<char> Enqueued(IG.numNodes(), 0);
  size_t Head = 0;
  auto Enqueue = [&](unsigned N) {
    if (!Enqueued[N] && S.isActive(N) && S.isLowDegree(N)) {
      Enqueued[N] = 1;
      Worklist.push_back(N);
    }
  };
  for (unsigned N = 0, E = IG.numNodes(); N != E; ++N)
    Enqueue(N);

  while (NumActive != 0) {
    // Cooperative cancellation: the worklist shrinks by one node per
    // iteration, so on huge graphs this is the loop a wall-clock budget
    // has to be able to interrupt.
    pollDeadline();
    int Pick = -1;
    if (!RemovalPriority) {
      while (Head < Worklist.size()) {
        unsigned N = Worklist[Head++];
        if (S.isActive(N)) {
          Pick = static_cast<int>(N);
          break;
        }
      }
    } else {
      // Compact the worklist and choose the minimum-priority entry.
      double PickPrio = 0.0;
      size_t Out = Head;
      for (size_t I = Head; I != Worklist.size(); ++I) {
        unsigned N = Worklist[I];
        if (!S.isActive(N))
          continue;
        Worklist[Out++] = N;
        double Prio = RemovalPriority(N);
        if (Pick < 0 || Prio < PickPrio) {
          Pick = static_cast<int>(N);
          PickPrio = Prio;
        }
      }
      Worklist.resize(Out);
    }

    if (Pick >= 0) {
      unsigned N = static_cast<unsigned>(Pick);
      S.remove(N);
      R.Stack.push_back(N);
      --NumActive;
      for (unsigned M : IG.neighbors(N))
        Enqueue(M);
      continue;
    }

    // Blocked: every active node is significant-degree. Choose the spill
    // candidate minimizing spill-metric / degree.
    int Candidate = -1;
    double CandidateScore = 0.0;
    for (unsigned N = 0, E = IG.numNodes(); N != E; ++N) {
      if (!S.isActive(N))
        continue;
      assert(S.Degree[N] > 0 && "significant-degree node with no neighbors");
      double Score = SpillMetric(N) / static_cast<double>(S.Degree[N]);
      if (Candidate < 0 || Score < CandidateScore) {
        Candidate = static_cast<int>(N);
        CandidateScore = Score;
      }
    }
    assert(Candidate >= 0 && "no spill candidate in a blocked graph");
    unsigned C = static_cast<unsigned>(Candidate);
    S.remove(C);
    --NumActive;
    for (unsigned M : IG.neighbors(C))
      Enqueue(M);
    if (Optimistic) {
      R.Stack.push_back(C);
      R.OptimisticallySpilled[C] = 1;
    } else {
      R.DefiniteSpills.push_back(C);
    }
  }
  return R;
}
