//===- regalloc/SpillCodeInserter.h - Live-range splitting ------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Spill-code insertion: splits each spilled live range into tiny fragments
/// by storing to a stack slot after every definition and reloading before
/// every use ("spilling out the value after its definitions and spilling in
/// before its uses", Section 2). The fragments are marked as spill temps so
/// the next allocation round never re-spills them, and the inserted
/// instructions carry the spill-code flag that Figure 9(b)/(d) counts.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_REGALLOC_SPILLCODEINSERTER_H
#define PDGC_REGALLOC_SPILLCODEINSERTER_H

#include "ir/Function.h"

#include <vector>

namespace pdgc {

/// Counts of inserted spill instructions.
struct SpillInsertStats {
  unsigned Loads = 0;
  unsigned Stores = 0;
  unsigned Rematerialized = 0; ///< Uses served by recomputation.
};

/// How finely a spilled live range is split.
enum class SpillGranularity {
  /// A fresh reload before every using instruction (Chaitin's scheme,
  /// the default): minimal fragments, maximal spill instructions.
  PerUse,
  /// One reload per basic block, reused by later uses in the same block
  /// (defs still store through immediately): fewer spill instructions,
  /// longer fragments — the classic granularity tradeoff. The fragments
  /// are still unspillable, so prefer this only when registers are not
  /// desperately scarce.
  PerBlock,
};

/// Rewrites \p F so that every virtual register in \p Spilled lives in a
/// stack slot. \p NextSlot is the first free slot number and is advanced.
/// Returns the number of inserted loads/stores.
///
/// With \p Rematerialize set, a spilled register whose every definition is
/// the same constant is never stored: each use recomputes the constant
/// instead (Briggs-style rematerialization — cheaper than a memory load,
/// and the reason conservative coalescing avoids merging such ranges,
/// Section 3.2). The recomputations still carry the spill-code flag so
/// the spill-instruction metrics see them.
SpillInsertStats
insertSpillCode(Function &F, const std::vector<unsigned> &Spilled,
                unsigned &NextSlot, bool Rematerialize = false,
                SpillGranularity Granularity = SpillGranularity::PerUse);

} // namespace pdgc

#endif // PDGC_REGALLOC_SPILLCODEINSERTER_H
