//===- regalloc/Driver.h - Build-color-spill iteration ----------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared allocation driver. It lowers phis (once), then iterates the
/// Chaitin cycle: rebuild the analyses, run the allocator's round, and —
/// when live ranges were spilled — insert spill code and repeat, until a
/// round colors everything. It finally expands coalesced colors to every
/// member and gathers the quality metrics the benchmarks report.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_REGALLOC_DRIVER_H
#define PDGC_REGALLOC_DRIVER_H

#include "regalloc/AllocatorBase.h"
#include "regalloc/Metrics.h"
#include "regalloc/SpillCodeInserter.h"

namespace pdgc {

/// Final result of running an allocator to completion over a function.
struct AllocationOutcome {
  /// Physical register per virtual-register id of the *final* function
  /// (which gained spill temporaries); -1 only for registers that no
  /// longer appear in the code.
  std::vector<int> Assignment;
  unsigned Rounds = 0;          ///< Allocation rounds (1 = no spilling).
  unsigned SpilledRanges = 0;   ///< Live ranges sent to memory, cumulative.
  unsigned SpillInstructions = 0; ///< Spill loads/stores in the final code.
  MoveStats Moves;              ///< Copy elimination statistics.
  unsigned StackSlots = 0;      ///< Spill slots allocated.
  /// Moves present before the first round (after phi lowering). Moves the
  /// rounds deleted while reflecting coalescing count as eliminated:
  ///   eliminated = OriginalMoves - (Moves.Total - Moves.Eliminated).
  unsigned OriginalMoves = 0;

  /// Moves that survive into emitted code (operands in distinct registers).
  unsigned remainingMoves() const { return Moves.Total - Moves.Eliminated; }
  /// Moves removed by coalescing/biased selection relative to the input.
  unsigned eliminatedMoves() const {
    return OriginalMoves - remainingMoves();
  }
};

/// Options controlling the driver.
struct DriverOptions {
  CostParams Costs;
  /// Run the independent assignment checker on the final allocation and
  /// abort on any error. Cheap relative to allocation; on by default.
  bool VerifyAssignment = true;
  /// Safety bound on spill rounds.
  unsigned MaxRounds = 64;
  /// Rematerialize spilled constants instead of storing/reloading them
  /// (Briggs et al.; off by default to match the paper's framework).
  bool Rematerialize = false;
  /// Fragment granularity of spilled ranges. Per-use (the default)
  /// matches the paper's framework; per-block trades fewer spill
  /// instructions for longer — still unspillable — fragments, so use it
  /// only when registers are not desperately scarce.
  SpillGranularity Granularity = SpillGranularity::PerUse;
};

/// Allocates registers for \p F (modified in place: phis lowered, spill
/// code inserted) with \p Allocator on \p Target.
AllocationOutcome allocate(Function &F, const TargetDesc &Target,
                           AllocatorBase &Allocator,
                           const DriverOptions &Options = DriverOptions());

} // namespace pdgc

#endif // PDGC_REGALLOC_DRIVER_H
