//===- regalloc/Driver.h - Build-color-spill iteration ----------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared allocation driver. It lowers phis (once), then iterates the
/// Chaitin cycle: rebuild the analyses, run the allocator's round, and —
/// when live ranges were spilled — insert spill code and repeat, until a
/// round colors everything. It finally expands coalesced colors to every
/// member and gathers the quality metrics the benchmarks report.
///
/// Two entry levels exist:
///
///  * `allocate` — the classic call: aborts on allocator bugs and
///    non-convergence (tests rely on this contract);
///  * `tryAllocate` / `allocateWithFallback` — the hardened pipeline:
///    structured `Status` errors instead of aborts, round and wall-clock
///    budgets, and a fallback chain that degrades tier by tier down to the
///    spill-everything baseline, so allocation *always* terminates with a
///    checker-valid assignment. The `AllocationOutcome::Degradation`
///    record says which tier served the request and why earlier tiers
///    failed.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_REGALLOC_DRIVER_H
#define PDGC_REGALLOC_DRIVER_H

#include "regalloc/AllocatorBase.h"
#include "regalloc/Metrics.h"
#include "regalloc/SpillCodeInserter.h"
#include "support/Deadline.h"
#include "support/Status.h"

#include <functional>
#include <memory>
#include <string>

namespace pdgc {

/// Which fallback tier served an allocation and what happened to the
/// tiers before it.
struct DegradationInfo {
  /// True when a tier other than the first produced the result.
  bool Degraded = false;
  /// Name of the serving allocator ("full-preferences", ...).
  std::string ServedBy;
  /// Index of the serving tier in the fallback chain.
  unsigned TierIndex = 0;
  /// One "name: CODE: message" entry per failed tier, in chain order.
  std::vector<std::string> FailedTiers;
};

/// Final result of running an allocator to completion over a function.
struct AllocationOutcome {
  /// Physical register per virtual-register id of the *final* function
  /// (which gained spill temporaries); -1 only for registers that no
  /// longer appear in the code.
  std::vector<int> Assignment;
  unsigned Rounds = 0;          ///< Allocation rounds (1 = no spilling).
  unsigned SpilledRanges = 0;   ///< Live ranges sent to memory, cumulative.
  unsigned SpillInstructions = 0; ///< Spill loads/stores in the final code.
  MoveStats Moves;              ///< Copy elimination statistics.
  unsigned StackSlots = 0;      ///< Spill slots allocated.
  /// Moves present before the first round (after phi lowering). Moves the
  /// rounds deleted while reflecting coalescing count as eliminated:
  ///   eliminated = OriginalMoves - (Moves.Total - Moves.Eliminated).
  unsigned OriginalMoves = 0;
  /// Filled by allocateWithFallback: which tier served the request.
  DegradationInfo Degradation;

  /// Moves that survive into emitted code (operands in distinct registers).
  unsigned remainingMoves() const { return Moves.Total - Moves.Eliminated; }
  /// Moves removed by coalescing/biased selection relative to the input.
  unsigned eliminatedMoves() const {
    return OriginalMoves - remainingMoves();
  }
};

/// One tier of the fallback chain: a display name plus an optional
/// factory. A null factory resolves \p Name through the allocator
/// registry; unknown names are recorded as failed tiers and skipped, so a
/// binary that never linked an allocator still degrades gracefully.
struct FallbackTier {
  std::string Name;
  std::function<std::unique_ptr<AllocatorBase>()> Factory;
};

/// The default chain: full preferences, then Briggs optimistic coloring,
/// then the spill-everything baseline that essentially cannot fail.
std::vector<FallbackTier> defaultFallbackChain();

/// Options controlling the driver.
struct DriverOptions {
  CostParams Costs;
  /// Run the independent assignment checker on the final allocation and
  /// abort on any error. Cheap relative to allocation; on by default.
  /// (allocateWithFallback always checks, regardless of this flag.)
  bool VerifyAssignment = true;
  /// Safety bound on spill rounds; exceeding it is a BudgetExceeded error.
  unsigned MaxRounds = 64;
  /// Wall-clock budget per tier in milliseconds; 0 means unlimited.
  /// Enforced cooperatively *inside* rounds: the driver installs the
  /// budget as the thread's ambient deadline (support/Deadline.h) and the
  /// hot loops — simplify worklist, select walks, optimal search, the
  /// analysis rebuilds — poll it, so a pathological round is cancelled
  /// mid-flight with BUDGET_EXCEEDED instead of overshooting.
  unsigned TimeBudgetMs = 0;
  /// Absolute cancellation point, combined (sooner wins) with
  /// TimeBudgetMs. BatchDriver uses it to impose one wall-clock deadline
  /// across a whole batch. allocateWithFallback exempts the final
  /// (guarantee) tier so an expired batch degrades to spill-everything
  /// instead of failing outright; TimeBudgetMs, in contrast, binds every
  /// tier.
  Deadline CancelAt;
  /// Rematerialize spilled constants instead of storing/reloading them
  /// (Briggs et al.; off by default to match the paper's framework).
  bool Rematerialize = false;
  /// Fragment granularity of spilled ranges. Per-use (the default)
  /// matches the paper's framework; per-block trades fewer spill
  /// instructions for longer — still unspillable — fragments, so use it
  /// only when registers are not desperately scarce.
  SpillGranularity Granularity = SpillGranularity::PerUse;
  /// Tiers tried in order by allocateWithFallback.
  std::vector<FallbackTier> FallbackChain = defaultFallbackChain();
  /// Failure-injection hook (tests, fuzzing): a tier whose name this
  /// returns true for fails immediately with AllocatorInternal.
  std::function<bool(const std::string &)> FailTierHook;
};

/// Allocates registers for \p F (modified in place: phis lowered, spill
/// code inserted) with \p Allocator on \p Target. Aborts on allocator
/// bugs, checker failures and non-convergence — the historical contract.
AllocationOutcome allocate(Function &F, const TargetDesc &Target,
                           AllocatorBase &Allocator,
                           const DriverOptions &Options = DriverOptions());

/// Hardened single-allocator entry: like allocate, but every failure mode
/// (allocator exception or fatal check, malformed round result, exceeded
/// round or wall-clock budget, checker mismatch) comes back as a Status
/// instead of aborting. On error \p F may be left partially rewritten;
/// use allocateWithFallback when that matters. When \p AnalysisMem is
/// non-null the attempt's AnalysisContext carves its graph storage from it
/// (resetting it first) — allocateWithFallback threads one arena through
/// every tier this way so a degraded allocation reuses warm chunks instead
/// of re-mallocing per tier.
StatusOr<AllocationOutcome> tryAllocate(Function &F, const TargetDesc &Target,
                                        AllocatorBase &Allocator,
                                        const DriverOptions &Options,
                                        Arena *AnalysisMem = nullptr);

/// Fully hardened entry: verifies \p F, then tries each tier of
/// Options.FallbackChain on a fresh clone until one produces a
/// checker-valid assignment, swapping the winning clone into \p F. \p F is
/// only modified on success. The outcome's Degradation record says which
/// tier served and why earlier tiers failed; an error is returned only
/// when the input does not verify or *every* tier failed.
StatusOr<AllocationOutcome>
allocateWithFallback(Function &F, const TargetDesc &Target,
                     const DriverOptions &Options = DriverOptions());

} // namespace pdgc

#endif // PDGC_REGALLOC_DRIVER_H
