//===- regalloc/PriorityAllocator.cpp - Chow-Hennessy style -----------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "regalloc/PriorityAllocator.h"

#include "regalloc/SelectState.h"

#include <limits>
#include "support/Debug.h"
#include "support/FaultInjection.h"
#include "support/Tracing.h"

#include <algorithm>

using namespace pdgc;

RoundResult PriorityAllocator::allocateRound(AllocContext &Ctx) {
  const unsigned N = Ctx.F.numVRegs();
  RoundResult RR = RoundResult::make(N);
  SelectState SS(Ctx.IG, Ctx.Target);

  // Partition into unconstrained (always colorable) and constrained
  // ranges; order the constrained ones by priority.
  ScopedTimer PartitionTimer("priority.partition", "allocator");
  PDGC_FAULT_POINT("priority.partition");
  std::vector<unsigned> Constrained;
  std::vector<unsigned> Unconstrained;
  for (unsigned V = 0; V != N; ++V) {
    if (Ctx.IG.isPrecolored(V) || Ctx.IG.isMerged(V))
      continue;
    unsigned K = Ctx.Target.numRegs(Ctx.IG.regClass(V));
    (Ctx.IG.degree(V) < K ? Unconstrained : Constrained).push_back(V);
  }

  // Priority: the penalty of living in memory, normalized by size — a
  // short hot range outranks a long lukewarm one (Chow's
  // savings-per-unit-length rule, on this repository's cost model).
  auto Priority = [&](unsigned V) {
    unsigned Occurrences =
        Ctx.Costs.numDefs(VReg(V)) + Ctx.Costs.numUses(VReg(V));
    if (Ctx.Costs.isInfinite(VReg(V)))
      return std::numeric_limits<double>::infinity();
    return Ctx.Costs.spillCost(VReg(V)) /
           static_cast<double>(Occurrences ? Occurrences : 1);
  };
  std::stable_sort(Constrained.begin(), Constrained.end(),
                   [&](unsigned A, unsigned B) {
                     double PA = Priority(A), PB = Priority(B);
                     if (PA != PB)
                       return PA > PB;
                     return A < B;
                   });
  PartitionTimer.finish();

  // Color in priority order; failures spill immediately (no later range
  // can evict an earlier, more important one).
  ScopedTimer SelectTimer("priority.select", "allocator");
  PDGC_FAULT_POINT("priority.select");
  std::vector<unsigned> Spills;
  for (unsigned V : Constrained) {
    int Color = SS.firstAvailable(V);
    if (Color < 0) {
      pdgc_check(!Ctx.Costs.isInfinite(VReg(V)),
                 "priority coloring had to spill an unspillable range");
      Spills.push_back(V);
      continue;
    }
    SS.setColor(V, Color);
  }

  if (!Spills.empty()) {
    RR.Spilled = std::move(Spills);
    return RR;
  }

  // Unconstrained ranges are guaranteed a color. Note the difference from
  // Chaitin: no attempt is made to minimize the number of registers used.
  for (unsigned V : Unconstrained) {
    int Color = SS.firstAvailable(V);
    assert(Color >= 0 && "unconstrained range must be colorable");
    SS.setColor(V, Color);
  }

  RR.Color = SS.colors();
  return RR;
}
