//===- regalloc/IteratedCoalescingAllocator.cpp - George-Appel -------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "regalloc/IteratedCoalescingAllocator.h"

#include "regalloc/CoalescedCosts.h"
#include "regalloc/Coalescer.h"
#include "regalloc/SelectState.h"
#include "support/Deadline.h"
#include "support/Debug.h"
#include "support/FaultInjection.h"
#include "support/Tracing.h"

#include <algorithm>

using namespace pdgc;

namespace {

/// The interleaved simplify/coalesce/freeze/spill state machine. Unlike
/// the one-shot Simplifier, degrees here must reflect both node removal
/// and ongoing merges, so the reduced graph is tracked locally.
class IteratedState {
public:
  AllocContext &Ctx;
  InterferenceGraph &IG;
  UnionFind UF;
  std::vector<char> Removed;  ///< Simplified/stacked or merged away.
  std::vector<unsigned> Stack;
  std::vector<char> Optimistic;

  /// Copy candidates; entries are dropped once dead (same class),
  /// constrained (interfering), frozen, or an endpoint left the graph.
  struct MoveEntry {
    unsigned Dst, Src;
    bool Dropped = false;
  };
  std::vector<MoveEntry> MoveList;
  std::vector<char> FrozenNode; ///< Node gave up on coalescing.
  /// Indices into MoveList per current representative (spliced on merge),
  /// so move-relatedness checks touch only a node's own moves.
  std::vector<std::vector<unsigned>> NodeMoves;

  explicit IteratedState(AllocContext &CtxIn)
      : Ctx(CtxIn), IG(CtxIn.IG), UF(IG.numNodes()),
        Removed(IG.numNodes(), 0), Optimistic(IG.numNodes(), 0),
        FrozenNode(IG.numNodes(), 0), NodeMoves(IG.numNodes()) {
    for (const MoveRecord &MR : IG.moves()) {
      unsigned Idx = static_cast<unsigned>(MoveList.size());
      MoveList.push_back({MR.Dst, MR.Src, false});
      NodeMoves[MR.Dst].push_back(Idx);
      if (MR.Src != MR.Dst)
        NodeMoves[MR.Src].push_back(Idx);
    }
    for (unsigned N = 0, E = IG.numNodes(); N != E; ++N)
      if (IG.isMerged(N))
        Removed[N] = 1;
  }

  unsigned k(unsigned N) const {
    return Ctx.Target.numRegs(IG.regClass(N));
  }

  bool isActive(unsigned N) const {
    return !Removed[N] && !IG.isPrecolored(N) && !IG.isMerged(N);
  }

  unsigned degreeOf(unsigned N) const {
    unsigned D = 0;
    for (unsigned M : IG.neighbors(N))
      if (!Removed[M])
        ++D;
    return D;
  }

  /// A move is live when both endpoints are distinct representatives still
  /// in the graph, non-interfering, and neither endpoint is frozen.
  bool moveIsLive(MoveEntry &ME) {
    if (ME.Dropped)
      return false;
    unsigned A = UF.find(ME.Dst), B = UF.find(ME.Src);
    if (A == B || IG.interferes(A, B) || Removed[A] || Removed[B] ||
        (IG.isPrecolored(A) && IG.isPrecolored(B))) {
      ME.Dropped = true;
      return false;
    }
    if (FrozenNode[A] || FrozenNode[B]) {
      ME.Dropped = true;
      return false;
    }
    return true;
  }

  bool moveRelated(unsigned N) {
    for (unsigned Idx : NodeMoves[N])
      if (moveIsLive(MoveList[Idx]))
        return true;
    return false;
  }

  /// Briggs conservative test on the reduced graph.
  bool briggsOk(unsigned A, unsigned B) {
    const unsigned K = k(A);
    unsigned Significant = 0;
    auto Consider = [&](unsigned M, bool FromB) {
      if (Removed[M] || M == A || M == B)
        return;
      bool Both = IG.interferes(M, A) && IG.interferes(M, B);
      if (Both && FromB)
        return; // Counted while scanning A.
      unsigned Deg = degreeOf(M);
      if (Both)
        --Deg;
      if (IG.isPrecolored(M) || Deg >= k(M))
        ++Significant;
    };
    for (unsigned M : IG.neighbors(A))
      Consider(M, false);
    for (unsigned M : IG.neighbors(B))
      Consider(M, true);
    return Significant < K;
  }

  /// George test on the reduced graph (A may be precolored).
  bool georgeOk(unsigned A, unsigned B) {
    for (unsigned T : IG.neighbors(B)) {
      if (Removed[T] || T == A || IG.interferes(T, A))
        continue;
      if (!IG.isPrecolored(T) && degreeOf(T) < k(T))
        continue;
      return false;
    }
    return true;
  }

  void removeAndPush(unsigned N, bool Opt) {
    assert(isActive(N) && "removing an inactive node");
    Removed[N] = 1;
    Stack.push_back(N);
    Optimistic[N] = Opt;
  }

  /// One step of the state machine. Returns false when the graph is empty.
  bool step() {
    // 1. Simplify a non-move-related low-degree node.
    for (unsigned N = 0, E = IG.numNodes(); N != E; ++N) {
      if (!isActive(N) || degreeOf(N) >= k(N))
        continue;
      if (moveRelated(N))
        continue;
      removeAndPush(N, false);
      return true;
    }

    // 2. Conservatively coalesce one live move.
    for (MoveEntry &ME : MoveList) {
      if (!moveIsLive(ME))
        continue;
      unsigned A = UF.find(ME.Dst), B = UF.find(ME.Src);
      if (!canMergePair(IG, A, B)) {
        ME.Dropped = true; // Constrained for good.
        continue;
      }
      bool Ok = (IG.isPrecolored(A) || IG.isPrecolored(B))
                    ? georgeOk(IG.isPrecolored(A) ? A : B,
                               IG.isPrecolored(A) ? B : A)
                    : briggsOk(A, B);
      if (!Ok)
        continue;
      unsigned Survivor = mergePair(IG, UF, A, B);
      unsigned Gone = Survivor == A ? B : A;
      Removed[Gone] = 1; // Gone from the graph; colored via the map.
      NodeMoves[Survivor].insert(NodeMoves[Survivor].end(),
                                 NodeMoves[Gone].begin(),
                                 NodeMoves[Gone].end());
      NodeMoves[Gone].clear();
      ME.Dropped = true;
      return true;
    }

    // 3. Freeze a low-degree move-related node.
    {
      int Pick = -1;
      unsigned PickDeg = 0;
      for (unsigned N = 0, E = IG.numNodes(); N != E; ++N) {
        if (!isActive(N))
          continue;
        unsigned D = degreeOf(N);
        if (D >= k(N) || !moveRelated(N))
          continue;
        if (Pick < 0 || D < PickDeg) {
          Pick = static_cast<int>(N);
          PickDeg = D;
        }
      }
      if (Pick >= 0) {
        FrozenNode[static_cast<unsigned>(Pick)] = 1;
        return true;
      }
    }

    // 4. Potential spill, pushed optimistically.
    {
      int Pick = -1;
      double PickScore = 0.0;
      CoalescedCosts CC(Ctx.Costs, UF);
      for (unsigned N = 0, E = IG.numNodes(); N != E; ++N) {
        if (!isActive(N))
          continue;
        unsigned D = degreeOf(N);
        if (D == 0)
          continue; // Low degree; caught by rule 1 or 3.
        double Score = CC.spillMetric(N) / static_cast<double>(D);
        if (Pick < 0 || Score < PickScore) {
          Pick = static_cast<int>(N);
          PickScore = Score;
        }
      }
      if (Pick >= 0) {
        removeAndPush(static_cast<unsigned>(Pick), true);
        return true;
      }
    }
    return false;
  }
};

} // namespace

RoundResult IteratedCoalescingAllocator::allocateRound(AllocContext &Ctx) {
  const unsigned N = Ctx.F.numVRegs();
  RoundResult RR = RoundResult::make(N);

  // The George-Appel worklist interleaves simplify and conservative
  // coalescing, so both run under one phase span.
  ScopedTimer SimplifyTimer("iterated.simplify_coalesce", "allocator");
  PDGC_FAULT_POINT("iterated.simplify_coalesce");
  IteratedState St(Ctx);
  while (St.step())
    pollDeadline();
  SimplifyTimer.finish();

  // Select, optimistically retrying potential spills.
  ScopedTimer SelectTimer("iterated.select", "allocator");
  PDGC_FAULT_POINT("iterated.select");
  SelectState SS(Ctx.IG, Ctx.Target);
  std::vector<unsigned> SpilledReps;
  for (unsigned I = St.Stack.size(); I-- > 0;) {
    unsigned Node = St.Stack[I];
    int Color = SS.firstAvailable(Node);
    if (Color < 0) {
      assert(St.Optimistic[Node] &&
             "conservatively simplified node must be colorable");
      SpilledReps.push_back(Node);
      continue;
    }
    SS.setColor(Node, Color);
  }

  if (!SpilledReps.empty()) {
    // A spilled representative stands for its whole merged class; spill
    // every (necessarily unpinned) member. The next round rebuilds and
    // re-coalesces from scratch, as George-Appel restarts after spilling.
    std::vector<char> RepSpilled(N, 0);
    for (unsigned Rep : SpilledReps)
      RepSpilled[Rep] = 1;
    for (unsigned V = 0; V != N; ++V)
      if (RepSpilled[St.UF.find(V)])
        RR.Spilled.push_back(V);
    return RR;
  }

  RR.Color = SS.colors();
  for (unsigned V = 0; V != N; ++V)
    RR.CoalesceMap[V] = St.UF.find(V);
  return RR;
}
