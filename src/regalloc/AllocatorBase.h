//===- regalloc/AllocatorBase.h - Allocator interface -----------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface every register allocator in this repository implements,
/// and the per-round context the shared driver hands it: the function, the
/// target description, and freshly computed analyses (liveness, loops,
/// Appendix costs, interference graph).
///
/// The driver (Driver.h) owns the classic Chaitin iteration: analyze, run
/// one allocation round, insert spill code for any spilled live ranges, and
/// repeat until a round colors everything.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_REGALLOC_ALLOCATORBASE_H
#define PDGC_REGALLOC_ALLOCATORBASE_H

#include "analysis/CostModel.h"
#include "analysis/InterferenceGraph.h"
#include "analysis/LoopInfo.h"
#include "analysis/Liveness.h"
#include "ir/Function.h"
#include "machine/TargetDesc.h"

#include <vector>

namespace pdgc {

/// Everything an allocation round may consult or mutate. Rebuilt by the
/// driver after each spill round.
struct AllocContext {
  Function &F;
  const TargetDesc &Target;
  Liveness LV;
  LoopInfo LI;
  LiveRangeCosts Costs;
  InterferenceGraph IG;

  AllocContext(Function &F, const TargetDesc &Target,
               const CostParams &Params);
};

/// The outcome of one allocation round.
struct RoundResult {
  /// Physical register per virtual-register id, or -1. Only coalescing
  /// representatives need entries; the driver propagates colors to merged
  /// members through \ref CoalesceMap.
  std::vector<int> Color;
  /// Virtual registers the round decided to spill (representatives).
  std::vector<unsigned> Spilled;
  /// Union-find style map: virtual register id -> id whose color it shares
  /// (identity when the round did no coalescing).
  std::vector<unsigned> CoalesceMap;

  /// Creates an empty result for \p NumVRegs registers.
  static RoundResult make(unsigned NumVRegs);

  bool anySpill() const { return !Spilled.empty(); }
};

/// Base class of all register allocators.
class AllocatorBase {
public:
  virtual ~AllocatorBase();

  /// Short stable identifier used in benchmark tables ("chaitin",
  /// "optimistic", "pdgc", ...).
  virtual const char *name() const = 0;

  /// Runs one build/color round over \p Ctx. May mutate Ctx.IG (coalescing)
  /// but not the function; the driver applies spills.
  virtual RoundResult allocateRound(AllocContext &Ctx) = 0;
};

} // namespace pdgc

#endif // PDGC_REGALLOC_ALLOCATORBASE_H
