//===- regalloc/AllocatorBase.h - Allocator interface -----------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface every register allocator in this repository implements,
/// and the per-round context the shared driver hands it: the function, the
/// target description, and freshly computed analyses (liveness, loops,
/// Appendix costs, interference graph).
///
/// The driver (Driver.h) owns the classic Chaitin iteration: analyze, run
/// one allocation round, insert spill code for any spilled live ranges, and
/// repeat until a round colors everything.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_REGALLOC_ALLOCATORBASE_H
#define PDGC_REGALLOC_ALLOCATORBASE_H

#include "analysis/AnalysisContext.h"
#include "analysis/CostModel.h"
#include "analysis/InterferenceGraph.h"
#include "analysis/LoopInfo.h"
#include "analysis/Liveness.h"
#include "ir/Function.h"
#include "machine/TargetDesc.h"

#include <memory>
#include <vector>

namespace pdgc {

/// Everything an allocation round may consult or mutate. The analyses live
/// in an AnalysisContext; the driver refreshes that context (reusing its
/// buffers, and the CFG-derived parts outright) after each spill round and
/// hands the allocator this view of it. The members are references so the
/// round code reads exactly as it did when they were values.
struct AllocContext {
  Function &F;
  const TargetDesc &Target;

private:
  /// Owning slot for the standalone constructor; empty when the context
  /// borrows a driver-managed AnalysisContext.
  std::unique_ptr<AnalysisContext> Owned;

public:
  Liveness &LV;
  LoopInfo &LI;
  LiveRangeCosts &Costs;
  InterferenceGraph &IG;
  /// The round's graph arena (AnalysisContext::arena()): IG rows live in
  /// it, and RPG/CPG builds carve from it so everything dies together at
  /// the next refresh.
  Arena &Mem;

  /// Standalone entry: computes (and owns) every analysis for \p F. Used
  /// by tests and by allocators that rebuild mid-round (pre-coalescing).
  AllocContext(Function &F, const TargetDesc &Target,
               const CostParams &Params);

  /// Driver entry: borrows the driver's cached \p Analyses, which must
  /// already be refreshed for \p F's current contents.
  AllocContext(Function &F, const TargetDesc &Target,
               AnalysisContext &Analyses);
};

/// The outcome of one allocation round.
struct RoundResult {
  /// Physical register per virtual-register id, or -1. Only coalescing
  /// representatives need entries; the driver propagates colors to merged
  /// members through \ref CoalesceMap.
  std::vector<int> Color;
  /// Virtual registers the round decided to spill (representatives).
  std::vector<unsigned> Spilled;
  /// Union-find style map: virtual register id -> id whose color it shares
  /// (identity when the round did no coalescing).
  std::vector<unsigned> CoalesceMap;

  /// Creates an empty result for \p NumVRegs registers.
  static RoundResult make(unsigned NumVRegs);

  bool anySpill() const { return !Spilled.empty(); }
};

/// Base class of all register allocators.
class AllocatorBase {
public:
  virtual ~AllocatorBase();

  /// Short stable identifier used in benchmark tables ("chaitin",
  /// "optimistic", "pdgc", ...).
  virtual const char *name() const = 0;

  /// Runs one build/color round over \p Ctx. May mutate Ctx.IG (coalescing)
  /// but not the function; the driver applies spills.
  virtual RoundResult allocateRound(AllocContext &Ctx) = 0;
};

} // namespace pdgc

#endif // PDGC_REGALLOC_ALLOCATORBASE_H
