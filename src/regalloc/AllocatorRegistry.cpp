//===- regalloc/AllocatorRegistry.cpp - Allocator factories ----------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "regalloc/AllocatorRegistry.h"

#include "regalloc/BriggsAllocator.h"
#include "regalloc/CallCostAllocator.h"
#include "regalloc/ChaitinAllocator.h"
#include "regalloc/IteratedCoalescingAllocator.h"
#include "regalloc/OptimisticCoalescingAllocator.h"
#include "regalloc/PriorityAllocator.h"
#include "regalloc/SpillEverythingAllocator.h"

#include <algorithm>
#include <map>

using namespace pdgc;

namespace {

std::map<std::string, AllocatorFactory> &registry() {
  static std::map<std::string, AllocatorFactory> Map = [] {
    // The regalloc-layer allocators seed the registry on first access.
    std::map<std::string, AllocatorFactory> M;
    M["chaitin"] = [] { return std::make_unique<ChaitinAllocator>(); };
    M["briggs+aggressive"] = [] {
      return std::make_unique<BriggsAllocator>(/*BiasedColoring=*/false,
                                               /*NonVolatileFirst=*/false);
    };
    M["briggs+biased"] = [] {
      return std::make_unique<BriggsAllocator>(/*BiasedColoring=*/true,
                                               /*NonVolatileFirst=*/false);
    };
    M["iterated"] = [] {
      return std::make_unique<IteratedCoalescingAllocator>();
    };
    M["priority"] = [] { return std::make_unique<PriorityAllocator>(); };
    M["optimistic"] = [] {
      return std::make_unique<OptimisticCoalescingAllocator>(
          /*NonVolatileFirst=*/false);
    };
    M["aggressive+volatility"] = [] {
      return std::make_unique<CallCostAllocator>();
    };
    M["spill-everything"] = [] {
      return std::make_unique<SpillEverythingAllocator>();
    };
    return M;
  }();
  return Map;
}

} // namespace

bool pdgc::registerAllocatorFactory(const std::string &Name,
                                    AllocatorFactory Factory) {
  return registry().emplace(Name, std::move(Factory)).second;
}

std::unique_ptr<AllocatorBase>
pdgc::createRegisteredAllocator(const std::string &Name) {
  auto &Map = registry();
  auto It = Map.find(Name);
  return It == Map.end() ? nullptr : It->second();
}

std::vector<std::string> pdgc::registeredAllocatorNames() {
  std::vector<std::string> Names;
  for (const auto &[Name, Factory] : registry())
    Names.push_back(Name);
  return Names;
}
