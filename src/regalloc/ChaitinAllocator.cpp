//===- regalloc/ChaitinAllocator.cpp - Chaitin's allocator -----------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "regalloc/ChaitinAllocator.h"

#include "regalloc/CoalescedCosts.h"
#include "regalloc/Coalescer.h"
#include "regalloc/Rewriter.h"
#include "regalloc/SelectState.h"
#include "regalloc/Simplifier.h"
#include "support/Debug.h"
#include "support/FaultInjection.h"
#include "support/Tracing.h"

using namespace pdgc;

RoundResult ChaitinAllocator::allocateRound(AllocContext &Ctx) {
  const unsigned N = Ctx.F.numVRegs();
  RoundResult RR = RoundResult::make(N);

  UnionFind UF(N);
  {
    ScopedTimer Timer("chaitin.coalesce", "allocator");
    PDGC_FAULT_POINT("chaitin.coalesce");
    aggressiveCoalesce(Ctx.IG, UF);
  }
  CoalescedCosts CC(Ctx.Costs, UF);

  ScopedTimer SimplifyTimer("chaitin.simplify", "allocator");
  PDGC_FAULT_POINT("chaitin.simplify");
  SimplifyResult SR =
      simplifyGraph(Ctx.IG, Ctx.Target,
                    [&](unsigned Node) { return CC.spillMetric(Node); },
                    /*Optimistic=*/false);
  SimplifyTimer.finish();

  if (!SR.DefiniteSpills.empty()) {
    // Reflect the coalescing in the code (Chaitin restarts from `renumber`
    // with the shrunken graph), then report the spills.
    std::vector<unsigned> RepOf(N);
    for (unsigned V = 0; V != N; ++V)
      RepOf[V] = UF.find(V);
    rewriteCoalesced(Ctx.F, RepOf);
    RR.Spilled = SR.DefiniteSpills;
    return RR;
  }

  // Select: pop nodes and give each a color distinct from its neighbors.
  // Every stacked node was low-degree at removal, so a color exists.
  ScopedTimer SelectTimer("chaitin.select", "allocator");
  PDGC_FAULT_POINT("chaitin.select");
  SelectState SS(Ctx.IG, Ctx.Target);
  for (unsigned I = SR.Stack.size(); I-- > 0;) {
    unsigned Node = SR.Stack[I];
    int Color = SS.firstAvailable(Node);
    assert(Color >= 0 && "Chaitin stacked node must be colorable");
    SS.setColor(Node, Color);
  }

  RR.Color = SS.colors();
  for (unsigned V = 0; V != N; ++V)
    RR.CoalesceMap[V] = UF.find(V);
  return RR;
}
