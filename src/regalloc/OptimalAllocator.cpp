//===- regalloc/OptimalAllocator.cpp - Exhaustive reference -----------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "regalloc/OptimalAllocator.h"

#include "analysis/InterferenceGraph.h"
#include "analysis/LoopInfo.h"
#include "analysis/Liveness.h"
#include "ir/PhiElimination.h"
#include "sim/CostSimulator.h"
#include "support/Deadline.h"
#include "support/Debug.h"
#include "support/Stats.h"
#include "support/Tracing.h"

#include <algorithm>

using namespace pdgc;

namespace {

class Search {
  const Function &F;
  const TargetDesc &Target;
  InterferenceGraph IG;
  std::vector<unsigned> Order; ///< Variables in decreasing-degree order.
  std::vector<int> Assign;
  OptimalResult Best;
  std::uint64_t Budget;

public:
  Search(const Function &Fn, const TargetDesc &TargetIn,
         std::uint64_t BudgetIn)
      : F(Fn), Target(TargetIn),
        IG([&] {
          Liveness LV = Liveness::compute(Fn);
          LoopInfo LI = LoopInfo::compute(Fn);
          return InterferenceGraph::build(Fn, LV, LI);
        }()),
        Assign(F.numVRegs(), -1), Budget(BudgetIn) {
    // Fixed colors for pinned registers; everything else that appears in
    // the code is a search variable.
    std::vector<char> Appears(F.numVRegs(), 0);
    for (unsigned B = 0, E = F.numBlocks(); B != E; ++B)
      for (const Instruction &I : F.block(B)->instructions()) {
        if (I.hasDef())
          Appears[I.def().id()] = 1;
        for (unsigned U = 0; U != I.numUses(); ++U)
          Appears[I.use(U).id()] = 1;
      }
    for (unsigned V = 0; V != F.numVRegs(); ++V) {
      if (F.isPinned(VReg(V)))
        Assign[V] = F.pinnedReg(VReg(V));
      else if (Appears[V])
        Order.push_back(V);
      else
        Assign[V] = static_cast<int>(Target.firstReg(F.regClass(VReg(V))));
    }
    std::stable_sort(Order.begin(), Order.end(),
                     [&](unsigned A, unsigned B) {
                       return IG.degree(A) > IG.degree(B);
                     });
  }

  void dfs(unsigned Depth) {
    if (Best.NodesVisited++ >= Budget) {
      Best.BudgetExhausted = true;
      return;
    }
    // The node budget bounds work, not wall time; the ambient deadline
    // (when the caller set one) bounds both, one poll per visited node.
    pollDeadline();
    if (Depth == Order.size()) {
      double Cost = simulateCost(F, Target, Assign).total();
      if (!Best.Found || Cost < Best.Cost) {
        Best.Found = true;
        Best.Cost = Cost;
        Best.Assignment = Assign;
      }
      return;
    }
    unsigned V = Order[Depth];
    RegClass RC = F.regClass(VReg(V));
    PhysReg First = Target.firstReg(RC);
    for (unsigned I = 0, E = Target.numRegs(RC); I != E; ++I) {
      int Candidate = static_cast<int>(First + I);
      bool Conflict = false;
      for (unsigned M : IG.neighbors(V))
        if (Assign[M] == Candidate) {
          Conflict = true;
          break;
        }
      if (Conflict)
        continue;
      Assign[V] = Candidate;
      dfs(Depth + 1);
      Assign[V] = -1;
      if (Best.BudgetExhausted)
        return;
    }
  }

  OptimalResult run() {
    dfs(0);
    return std::move(Best);
  }
};

} // namespace

OptimalResult pdgc::findOptimalAssignment(const Function &F,
                                          const TargetDesc &Target,
                                          std::uint64_t NodeBudget) {
  pdgc_check(!hasPhis(F),
             "optimal search requires phi-free IR (run eliminatePhis)");
  ScopedTimer Timer("optimal.search", "allocator");
  OptimalResult Res = Search(F, Target, NodeBudget).run();
  PDGC_STAT("optimal", "nodes_visited").add(Res.NodesVisited);
  if (Res.BudgetExhausted)
    PDGC_STAT("optimal", "budget_exhausted").inc();
  return Res;
}
