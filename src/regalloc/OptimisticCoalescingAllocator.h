//===- regalloc/OptimisticCoalescingAllocator.h - Park-Moon -----*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Park and Moon's optimistic coalescing (Figure 2(b) of the paper): first
/// coalesce aggressively to reap the positive (degree-reducing) effect of
/// coalescing, then — when the select phase finds no color for a coalesced
/// node — *undo* the coalescing: split the node back into its primitive
/// live ranges, color the most valuable colorable primitive now, and defer
/// the rest to the bottom of the stack where each is colored individually
/// or spilled. The paper reports this as the best prior coalescing
/// algorithm and compares against it in Figures 9–11.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_REGALLOC_OPTIMISTICCOALESCINGALLOCATOR_H
#define PDGC_REGALLOC_OPTIMISTICCOALESCINGALLOCATOR_H

#include "regalloc/AllocatorBase.h"

namespace pdgc {

/// Park–Moon optimistic coalescing.
class OptimisticCoalescingAllocator : public AllocatorBase {
  bool NonVolatileFirst;

public:
  explicit OptimisticCoalescingAllocator(bool NonVolatileFirstIn = false)
      : NonVolatileFirst(NonVolatileFirstIn) {}

  const char *name() const override { return "optimistic"; }
  RoundResult allocateRound(AllocContext &Ctx) override;
};

} // namespace pdgc

#endif // PDGC_REGALLOC_OPTIMISTICCOALESCINGALLOCATOR_H
