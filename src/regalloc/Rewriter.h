//===- regalloc/Rewriter.h - Apply coalescing to the IR ---------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rewrites a function so that every coalesced virtual register is replaced
/// by its class representative, deleting the copies that become
/// self-assignments. Chaitin's allocator "iteratively reflects" coalescing
/// in this way before a spill round restarts the build phase; the baseline
/// allocators call this when a round ends in spills.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_REGALLOC_REWRITER_H
#define PDGC_REGALLOC_REWRITER_H

#include "ir/Function.h"

#include <vector>

namespace pdgc {

/// Replaces every register \p V by \p RepOf[V.id()] and removes moves that
/// become `x = move x`. Returns the number of deleted moves.
unsigned rewriteCoalesced(Function &F, const std::vector<unsigned> &RepOf);

/// Counts the move instructions currently in \p F.
unsigned countMoves(const Function &F);

} // namespace pdgc

#endif // PDGC_REGALLOC_REWRITER_H
