//===- regalloc/CallCostAllocator.h - Call-cost directed --------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Lueh–Gross-style call-cost directed allocator (Figure 3 of the paper;
/// the "aggressive+volatility" comparison point of Figure 11). On top of
/// Chaitin-style coloring with aggressive coalescing it adds:
///
///  * benefit-driven simplification: among removable low-degree nodes the
///    lowest-benefit node is pushed first, so higher-benefit nodes are
///    popped — and choose registers — earlier;
///  * the preference decision: for every call site, only the most
///    beneficial R live-across classes (R = number of non-volatile
///    registers) keep their non-volatile preference, the rest are annotated
///    to prefer volatile registers;
///  * a select phase that weighs Mem_Cost against volatile/non-volatile
///    residence costs: it picks a register from the preferred partition and
///    actively spills when memory is the cheapest location.
///
/// Its register selections are volatility-aware but register-selection
/// *independent* (decided before select begins), which is exactly the
/// limitation Section 4 identifies and the preference-directed allocator
/// removes.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_REGALLOC_CALLCOSTALLOCATOR_H
#define PDGC_REGALLOC_CALLCOSTALLOCATOR_H

#include "regalloc/AllocatorBase.h"

namespace pdgc {

/// Call-cost directed coloring ("aggressive+volatility").
class CallCostAllocator : public AllocatorBase {
public:
  const char *name() const override { return "aggressive+volatility"; }
  RoundResult allocateRound(AllocContext &Ctx) override;
};

} // namespace pdgc

#endif // PDGC_REGALLOC_CALLCOSTALLOCATOR_H
