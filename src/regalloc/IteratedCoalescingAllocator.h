//===- regalloc/IteratedCoalescingAllocator.h - George-Appel ----*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// George and Appel's iterated register coalescing (Figure 2(a) of the
/// paper). Simplification removes only non-copy-related low-degree nodes;
/// when it blocks, conservative coalescing (Briggs test, George test
/// against precolored nodes) runs on the reduced graph; when neither
/// applies, a low-degree copy-related node is frozen (its moves give up on
/// coalescing) and simplification resumes; as a last resort a potential
/// spill is pushed optimistically.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_REGALLOC_ITERATEDCOALESCINGALLOCATOR_H
#define PDGC_REGALLOC_ITERATEDCOALESCINGALLOCATOR_H

#include "regalloc/AllocatorBase.h"

namespace pdgc {

/// George–Appel iterated coalescing.
class IteratedCoalescingAllocator : public AllocatorBase {
public:
  const char *name() const override { return "iterated"; }
  RoundResult allocateRound(AllocContext &Ctx) override;
};

} // namespace pdgc

#endif // PDGC_REGALLOC_ITERATEDCOALESCINGALLOCATOR_H
