//===- regalloc/Metrics.h - Allocation quality metrics ----------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static metrics the paper's Figure 9 reports: how many move
/// instructions an allocation eliminates (both operands assigned the same
/// register, so the copy disappears at emission) and how many spill
/// instructions were generated.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_REGALLOC_METRICS_H
#define PDGC_REGALLOC_METRICS_H

#include "analysis/LoopInfo.h"
#include "ir/Function.h"

#include <vector>

namespace pdgc {

/// Move elimination statistics for one allocated function.
struct MoveStats {
  unsigned Total = 0;       ///< Move instructions in the final code.
  unsigned Eliminated = 0;  ///< Moves whose operands share a register.
  double WeightedTotal = 0; ///< Frequency-weighted totals.
  double WeightedEliminated = 0;

  MoveStats &operator+=(const MoveStats &RHS) {
    Total += RHS.Total;
    Eliminated += RHS.Eliminated;
    WeightedTotal += RHS.WeightedTotal;
    WeightedEliminated += RHS.WeightedEliminated;
    return *this;
  }
};

/// Computes move statistics for \p F under \p Assignment (physical register
/// per virtual-register id; -1 allowed only for registers absent from the
/// code).
MoveStats moveStats(const Function &F, const std::vector<int> &Assignment,
                    const LoopInfo &LI);

/// Number of instructions inserted by the spiller (Figure 9(b)/(d) counts
/// these).
unsigned countSpillInstructions(const Function &F);

} // namespace pdgc

#endif // PDGC_REGALLOC_METRICS_H
