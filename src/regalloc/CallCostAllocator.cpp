//===- regalloc/CallCostAllocator.cpp - Call-cost directed -----------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "regalloc/CallCostAllocator.h"

#include "regalloc/CoalescedCosts.h"
#include "regalloc/Coalescer.h"
#include "regalloc/Rewriter.h"
#include "regalloc/SelectState.h"
#include "regalloc/Simplifier.h"
#include "support/Debug.h"
#include "support/FaultInjection.h"
#include "support/Tracing.h"

#include <algorithm>

using namespace pdgc;

namespace {

/// Picks the lowest-numbered available register of the requested
/// volatility, or -1.
int pickInPartition(const TargetDesc &Target, const BitVector &Avail,
                    bool WantVolatile) {
  for (unsigned R : Avail.setBits())
    if (Target.isVolatile(static_cast<PhysReg>(R)) == WantVolatile)
      return static_cast<int>(R);
  return -1;
}

} // namespace

RoundResult CallCostAllocator::allocateRound(AllocContext &Ctx) {
  const unsigned N = Ctx.F.numVRegs();
  RoundResult RR = RoundResult::make(N);

  UnionFind UF(N);
  {
    ScopedTimer Timer("callcost.coalesce", "allocator");
    PDGC_FAULT_POINT("callcost.coalesce");
    aggressiveCoalesce(Ctx.IG, UF);
  }
  CoalescedCosts CC(Ctx.Costs, UF);

  // --- Preference decision (Lueh–Gross). For each call, rank the classes
  // live across it by their non-volatile benefit; only the best R keep a
  // non-volatile preference.
  ScopedTimer PreferenceTimer("callcost.preference", "allocator");
  PDGC_FAULT_POINT("callcost.preference");
  std::vector<char> ForcedVolatile(N, 0);
  for (unsigned B = 0, E = Ctx.F.numBlocks(); B != E; ++B) {
    const BasicBlock *BB = Ctx.F.block(B);
    Ctx.LV.forEachInstReverse(BB, [&](unsigned I, const BitVector &LiveAfter) {
      const Instruction &Inst = BB->inst(I);
      if (!Inst.isCall())
        return;
      // Collect distinct live-across classes, per register class.
      for (RegClass RC : {RegClass::GPR, RegClass::FPR}) {
        std::vector<unsigned> Across;
        for (unsigned L : LiveAfter.setBits()) {
          if (Inst.hasDef() && Inst.def().id() == L)
            continue;
          if (Ctx.F.regClass(VReg(L)) != RC)
            continue;
          unsigned Rep = UF.find(L);
          if (Ctx.IG.isPrecolored(Rep))
            continue;
          if (std::find(Across.begin(), Across.end(), Rep) == Across.end())
            Across.push_back(Rep);
        }
        unsigned R = Ctx.Target.numNonVolatile(RC);
        if (Across.size() <= R)
          continue;
        std::sort(Across.begin(), Across.end(), [&](unsigned A, unsigned C) {
          return CC.registerBenefit(A, /*VolatileReg=*/false) >
                 CC.registerBenefit(C, /*VolatileReg=*/false);
        });
        for (unsigned J = R; J < Across.size(); ++J)
          ForcedVolatile[Across[J]] = 1;
      }
    });
  }
  PreferenceTimer.finish();

  // --- Benefit-driven, pessimistic simplification.
  ScopedTimer SimplifyTimer("callcost.simplify", "allocator");
  PDGC_FAULT_POINT("callcost.simplify");
  auto Benefit = [&](unsigned Node) {
    double BV = CC.registerBenefit(Node, /*VolatileReg=*/true);
    double BN = CC.registerBenefit(Node, /*VolatileReg=*/false);
    return BV > BN ? BV : BN;
  };
  SimplifyResult SR =
      simplifyGraph(Ctx.IG, Ctx.Target,
                    [&](unsigned Node) { return CC.spillMetric(Node); },
                    /*Optimistic=*/false, Benefit);
  SimplifyTimer.finish();

  auto SpillOut = [&](std::vector<unsigned> Spills) {
    std::vector<unsigned> RepOf(N);
    for (unsigned V = 0; V != N; ++V)
      RepOf[V] = UF.find(V);
    rewriteCoalesced(Ctx.F, RepOf);
    RR.Spilled = std::move(Spills);
    return RR;
  };

  if (!SR.DefiniteSpills.empty())
    return SpillOut(SR.DefiniteSpills);

  // --- Volatility-aware select with active spilling.
  ScopedTimer SelectTimer("callcost.select", "allocator");
  PDGC_FAULT_POINT("callcost.select");
  SelectState SS(Ctx.IG, Ctx.Target);
  std::vector<unsigned> ActiveSpills;
  for (unsigned I = SR.Stack.size(); I-- > 0;) {
    unsigned Node = SR.Stack[I];
    double BV = CC.registerBenefit(Node, /*VolatileReg=*/true);
    double BN = CC.registerBenefit(Node, /*VolatileReg=*/false);
    if (!CC.isInfinite(Node) && BV < 0.0 && BN < 0.0) {
      // Memory beats every register kind: spill actively.
      ActiveSpills.push_back(Node);
      continue;
    }
    BitVector Avail = SS.availableFor(Node);
    bool WantVolatile = ForcedVolatile[Node] || BV >= BN;
    int Color = pickInPartition(Ctx.Target, Avail, WantVolatile);
    if (Color < 0)
      Color = pickInPartition(Ctx.Target, Avail, !WantVolatile);
    assert(Color >= 0 && "Chaitin-stacked node must be colorable");
    SS.setColor(Node, Color);
  }
  if (!ActiveSpills.empty())
    return SpillOut(std::move(ActiveSpills));

  RR.Color = SS.colors();
  for (unsigned V = 0; V != N; ++V)
    RR.CoalesceMap[V] = UF.find(V);
  return RR;
}
