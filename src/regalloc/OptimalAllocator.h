//===- regalloc/OptimalAllocator.h - Exhaustive reference -------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An exhaustive, provably optimal register assigner for *tiny* functions.
/// Section 7 of the paper discusses the integer-programming allocators of
/// Goodwin/Wilken and Kong/Wilken, which find optimal combinations of
/// allocation actions at high compile-time cost; the paper claims its
/// heuristic gets comparable results much faster. This reference assigner
/// makes that claim testable on small inputs: it enumerates every valid
/// spill-free assignment (branch-and-bound over the interference graph)
/// and minimizes the same simulated-cost objective the benchmarks report —
/// surviving copies, caller/callee save costs, paired-load fusion and
/// narrow-register fixups.
///
/// Deliberately NOT a production allocator: the search is exponential and
/// guarded by a node budget; it neither spills nor splits. Use it in tests
/// (near-optimality bounds) and compile-time comparisons only.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_REGALLOC_OPTIMALALLOCATOR_H
#define PDGC_REGALLOC_OPTIMALALLOCATOR_H

#include "ir/Function.h"
#include "machine/TargetDesc.h"

#include <vector>

namespace pdgc {

/// Result of the exhaustive search.
struct OptimalResult {
  bool Found = false;            ///< False if uncolorable or out of budget.
  bool BudgetExhausted = false;  ///< Search stopped early; the assignment
                                 ///< (if any) may be suboptimal.
  double Cost = 0.0;             ///< Simulated cost of the best assignment.
  std::vector<int> Assignment;   ///< Physical register per vreg id.
  std::uint64_t NodesVisited = 0;
};

/// Exhaustively searches spill-free assignments of phi-free \p F on
/// \p Target, minimizing the cost-simulator objective. \p NodeBudget
/// bounds the search-tree size.
OptimalResult findOptimalAssignment(const Function &F,
                                    const TargetDesc &Target,
                                    std::uint64_t NodeBudget = 20'000'000);

} // namespace pdgc

#endif // PDGC_REGALLOC_OPTIMALALLOCATOR_H
