//===- regalloc/AllocatorRegistry.h - Allocator factories -------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of allocator factories keyed by stable name.
/// The fallback-chain driver resolves its tier names here, the
/// differential fuzzer enumerates it to run every allocator against the
/// same input, and the benchmark harness's `makeAllocatorByName` is a thin
/// wrapper over it. The regalloc-layer allocators self-register on first
/// use; the preference-directed family registers through
/// `registerPDGCAllocators()` (core layer) so the link-layering stays
/// acyclic.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_REGALLOC_ALLOCATORREGISTRY_H
#define PDGC_REGALLOC_ALLOCATORREGISTRY_H

#include "regalloc/AllocatorBase.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace pdgc {

using AllocatorFactory = std::function<std::unique_ptr<AllocatorBase>()>;

/// Registers \p Factory under \p Name. Returns false (and keeps the
/// existing entry) when the name is already taken, so repeated
/// registration is harmless.
bool registerAllocatorFactory(const std::string &Name,
                              AllocatorFactory Factory);

/// Creates the allocator registered under \p Name, or null when the name
/// is unknown — callers degrade instead of aborting.
std::unique_ptr<AllocatorBase>
createRegisteredAllocator(const std::string &Name);

/// All registered names, sorted.
std::vector<std::string> registeredAllocatorNames();

} // namespace pdgc

#endif // PDGC_REGALLOC_ALLOCATORREGISTRY_H
