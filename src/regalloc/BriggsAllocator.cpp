//===- regalloc/BriggsAllocator.cpp - Briggs optimistic coloring -----------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "regalloc/BriggsAllocator.h"

#include "regalloc/CoalescedCosts.h"
#include "regalloc/Coalescer.h"
#include "regalloc/Rewriter.h"
#include "regalloc/SelectState.h"
#include "regalloc/Simplifier.h"
#include "support/Debug.h"
#include "support/FaultInjection.h"
#include "support/Tracing.h"

using namespace pdgc;

RoundResult BriggsAllocator::allocateRound(AllocContext &Ctx) {
  const unsigned N = Ctx.F.numVRegs();
  RoundResult RR = RoundResult::make(N);

  UnionFind UF(N);
  {
    ScopedTimer Timer("briggs.coalesce", "allocator");
    PDGC_FAULT_POINT("briggs.coalesce");
    aggressiveCoalesce(Ctx.IG, UF);
  }
  CoalescedCosts CC(Ctx.Costs, UF);

  ScopedTimer SimplifyTimer("briggs.simplify", "allocator");
  PDGC_FAULT_POINT("briggs.simplify");
  SimplifyResult SR =
      simplifyGraph(Ctx.IG, Ctx.Target,
                    [&](unsigned Node) { return CC.spillMetric(Node); },
                    /*Optimistic=*/true);
  SimplifyTimer.finish();

  // Select with optimistic retries: uncolorable nodes become real spills.
  ScopedTimer SelectTimer("briggs.select", "allocator");
  PDGC_FAULT_POINT("briggs.select");
  SelectState SS(Ctx.IG, Ctx.Target);
  std::vector<unsigned> ActualSpills;
  for (unsigned I = SR.Stack.size(); I-- > 0;) {
    unsigned Node = SR.Stack[I];
    BitVector Avail = SS.availableFor(Node);
    int Color = pickAvailable(Avail, Ctx.Target, NonVolatileFirst);
    if (Color < 0) {
      assert(!CC.isInfinite(Node) && "unspillable node found no color");
      ActualSpills.push_back(Node);
      continue;
    }
    if (Biased) {
      // Prefer a color already held by a copy-related partner so that the
      // copy is eliminated without having merged the nodes.
      for (const MoveRecord &MR : Ctx.IG.moves()) {
        unsigned A = UF.find(MR.Dst), B = UF.find(MR.Src);
        unsigned Partner;
        if (A == Node)
          Partner = B;
        else if (B == Node)
          Partner = A;
        else
          continue;
        int PC = SS.color(Partner);
        if (PC >= 0 && Avail.test(static_cast<unsigned>(PC))) {
          Color = PC;
          break;
        }
      }
    }
    SS.setColor(Node, Color);
  }

  if (!ActualSpills.empty()) {
    std::vector<unsigned> RepOf(N);
    for (unsigned V = 0; V != N; ++V)
      RepOf[V] = UF.find(V);
    rewriteCoalesced(Ctx.F, RepOf);
    RR.Spilled = std::move(ActualSpills);
    return RR;
  }

  RR.Color = SS.colors();
  for (unsigned V = 0; V != N; ++V)
    RR.CoalesceMap[V] = UF.find(V);
  return RR;
}
