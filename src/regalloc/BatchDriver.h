//===- regalloc/BatchDriver.h - Parallel batch allocation -------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocates registers for many functions concurrently. Each function is an
/// independent job — it owns its IR, its analyses, and a fresh allocator
/// instance per fallback tier — so the batch layer is a thin, deterministic
/// fan-out over `allocateWithFallback`:
///
///  * results are collected into per-index slots, so the output vector is
///    in input order no matter how the scheduler interleaved the jobs;
///  * every job runs the identical sequential pipeline, so `Jobs = 1` and
///    `Jobs = N` produce byte-identical assignments and metrics (asserted
///    by tests/test_batch.cpp, under TSAN in CI);
///  * failures come back as per-item Status values — one bad function never
///    aborts the batch.
///
/// Thread-safety prerequisites (all hold in this repository):
///  * the allocator registry is read-only once seeded. Callers that want
///    the PDGC tiers ("full-preferences", ...) must call
///    `registerPDGCAllocators()` *before* `run` — the core library layers
///    above regalloc, so the batch driver cannot do it for them. The
///    regalloc-layer tiers self-seed on first registry access, which is
///    thread-safe (magic static);
///  * `ScopedErrorTrap` keeps its depth in a thread_local, so fatal-check
///    trapping on one worker does not leak into another;
///  * DriverOptions is shared read-only; each tier copies it.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_REGALLOC_BATCHDRIVER_H
#define PDGC_REGALLOC_BATCHDRIVER_H

#include "regalloc/Driver.h"

#include <vector>

namespace pdgc {

/// Outcome of one batch item. (Not a StatusOr: batch slots need default
/// construction so workers can fill them in any order.)
struct BatchItemResult {
  Status S;              ///< Ok when allocation succeeded.
  AllocationOutcome Out; ///< Meaningful only when S.ok().
  double WallMs = 0.0;   ///< Wall-clock time spent on this item.

  bool ok() const { return S.ok(); }
};

/// Wall-clock limits and reporting knobs for one batch run.
struct BatchLimits {
  /// Per-item wall-clock budget in ms (overrides DriverOptions::
  /// TimeBudgetMs when nonzero). Binds every fallback tier individually.
  unsigned ItemBudgetMs = 0;
  /// One deadline across the whole batch, in ms from run() entry
  /// (0 = none). Installed as DriverOptions::CancelAt, so once it passes,
  /// in-flight and not-yet-started items degrade straight to the final
  /// guarantee tier (which is exempt) instead of failing — one poison
  /// item cannot wedge the pool past the batch's latency contract.
  unsigned BatchBudgetMs = 0;
  /// Per-item display names for warnings (parallel to the Fns vector);
  /// items fall back to their index when absent.
  std::vector<std::string> Labels;
  /// Emit a degradation warning on stderr as each degraded item
  /// completes. Lines are serialized behind a mutex, so `--jobs=N` output
  /// never interleaves mid-line.
  bool WarnDegraded = false;
};

/// Runs allocateWithFallback over a batch of functions on a worker pool.
class BatchDriver {
public:
  /// \p Jobs worker threads; 0 or 1 runs everything inline on the calling
  /// thread (the exact sequential pipeline, not "parallel with one worker").
  explicit BatchDriver(unsigned JobsIn) : Jobs(JobsIn) {}

  /// Allocates every function in \p Fns (each modified in place on
  /// success, exactly as allocateWithFallback would). Returns one result
  /// per input, in input order.
  std::vector<BatchItemResult> run(const std::vector<Function *> &Fns,
                                   const TargetDesc &Target,
                                   const DriverOptions &Options) const;

  /// Same, with wall-clock limits and serialized degradation warnings.
  std::vector<BatchItemResult> run(const std::vector<Function *> &Fns,
                                   const TargetDesc &Target,
                                   const DriverOptions &Options,
                                   const BatchLimits &Limits) const;

  unsigned jobs() const { return Jobs; }

private:
  unsigned Jobs;
};

/// One row of a batch manifest: either a batch item, or a file that
/// failed before allocation (parse/verify error) and never entered the
/// batch. Callers build the failed rows themselves with `failed()`.
struct BatchManifestEntry {
  std::string Label;    ///< Display name (usually the input path).
  std::string StatusId; ///< "ok" | "degraded" | "failed".
  std::string ServedBy; ///< Serving tier; empty for failed entries.
  std::string Error;    ///< Failure detail; empty unless failed.
  double WallMs = 0.0;  ///< Wall-clock time; 0 for pre-batch failures.

  /// Builds a row from a batch item result.
  static BatchManifestEntry fromResult(const std::string &Label,
                                       const BatchItemResult &R,
                                       const std::string &LeadTier);
  /// Builds a "failed" row for an input that never entered the batch.
  static BatchManifestEntry failed(const std::string &Label,
                                   const std::string &Error);
};

/// Writes \p Entries as a JSON array of objects (keys: label, status,
/// served-by, error, wall-ms) to \p Path. Returns false and fills
/// \p Error on I/O failure.
bool writeBatchManifest(const std::string &Path,
                        const std::vector<BatchManifestEntry> &Entries,
                        std::string *Error);

/// Exit code reflecting the worst entry, matching docs/ROBUSTNESS.md:
/// 1 when any entry failed, else 2 when any was degraded, else 0.
int batchExitCode(const std::vector<BatchManifestEntry> &Entries);

} // namespace pdgc

#endif // PDGC_REGALLOC_BATCHDRIVER_H
