//===- regalloc/SpillEverythingAllocator.h - Terminal fallback --*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The spill-everything baseline: round one sends every spillable live
/// range to memory, the next round colors the remaining short spill
/// fragments (plus pinned registers) with a plain optimistic
/// simplify/select. Bouchez, Darte and Rastello identify spill-everywhere
/// as the tractable degenerate case of the spilling problem; here it is
/// the terminal tier of the driver's fallback chain — maximally slow code,
/// but it essentially cannot fail, so the pipeline always terminates with
/// a checker-valid assignment even when every smarter allocator above it
/// misbehaved.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_REGALLOC_SPILLEVERYTHINGALLOCATOR_H
#define PDGC_REGALLOC_SPILLEVERYTHINGALLOCATOR_H

#include "regalloc/AllocatorBase.h"

namespace pdgc {

/// Always-succeeds baseline allocator (see file comment).
class SpillEverythingAllocator : public AllocatorBase {
public:
  const char *name() const override { return "spill-everything"; }
  RoundResult allocateRound(AllocContext &Ctx) override;
};

} // namespace pdgc

#endif // PDGC_REGALLOC_SPILLEVERYTHINGALLOCATOR_H
