//===- regalloc/AllocatorBase.cpp - Allocator interface --------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "regalloc/AllocatorBase.h"

#include <numeric>

using namespace pdgc;

AllocContext::AllocContext(Function &Fn, const TargetDesc &TargetIn,
                           const CostParams &Params)
    : F(Fn), Target(TargetIn),
      Owned(std::make_unique<AnalysisContext>(Fn, Params)), LV(Owned->LV),
      LI(Owned->LI), Costs(Owned->Costs), IG(Owned->IG),
      Mem(Owned->arena()) {}

AllocContext::AllocContext(Function &Fn, const TargetDesc &TargetIn,
                           AnalysisContext &Analyses)
    : F(Fn), Target(TargetIn), LV(Analyses.LV), LI(Analyses.LI),
      Costs(Analyses.Costs), IG(Analyses.IG), Mem(Analyses.arena()) {}

RoundResult RoundResult::make(unsigned NumVRegs) {
  RoundResult R;
  R.Color.assign(NumVRegs, -1);
  R.CoalesceMap.resize(NumVRegs);
  std::iota(R.CoalesceMap.begin(), R.CoalesceMap.end(), 0u);
  return R;
}

AllocatorBase::~AllocatorBase() = default;
