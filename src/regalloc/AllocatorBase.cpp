//===- regalloc/AllocatorBase.cpp - Allocator interface --------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "regalloc/AllocatorBase.h"

#include <numeric>

using namespace pdgc;

AllocContext::AllocContext(Function &F, const TargetDesc &Target,
                           const CostParams &Params)
    : F(F), Target(Target), LV(Liveness::compute(F)),
      LI(LoopInfo::compute(F, Params.LoopFreqFactor)),
      Costs(LiveRangeCosts::compute(F, LV, LI, Params)),
      IG(InterferenceGraph::build(F, LV, LI)) {}

RoundResult RoundResult::make(unsigned NumVRegs) {
  RoundResult R;
  R.Color.assign(NumVRegs, -1);
  R.CoalesceMap.resize(NumVRegs);
  std::iota(R.CoalesceMap.begin(), R.CoalesceMap.end(), 0u);
  return R;
}

AllocatorBase::~AllocatorBase() = default;
