//===- regalloc/AllocatorBase.cpp - Allocator interface --------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "regalloc/AllocatorBase.h"

#include <numeric>

using namespace pdgc;

AllocContext::AllocContext(Function &F, const TargetDesc &Target,
                           const CostParams &Params)
    : F(F), Target(Target),
      Owned(std::make_unique<AnalysisContext>(F, Params)), LV(Owned->LV),
      LI(Owned->LI), Costs(Owned->Costs), IG(Owned->IG) {}

AllocContext::AllocContext(Function &F, const TargetDesc &Target,
                           AnalysisContext &Analyses)
    : F(F), Target(Target), LV(Analyses.LV), LI(Analyses.LI),
      Costs(Analyses.Costs), IG(Analyses.IG) {}

RoundResult RoundResult::make(unsigned NumVRegs) {
  RoundResult R;
  R.Color.assign(NumVRegs, -1);
  R.CoalesceMap.resize(NumVRegs);
  std::iota(R.CoalesceMap.begin(), R.CoalesceMap.end(), 0u);
  return R;
}

AllocatorBase::~AllocatorBase() = default;
