//===- regalloc/BatchDriver.cpp - Parallel batch allocation ----------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "regalloc/BatchDriver.h"

#include "support/FaultInjection.h"
#include "support/Stats.h"
#include "support/ThreadAnnotations.h"
#include "support/ThreadPool.h"
#include "support/Tracing.h"

#include <chrono>
#include <cstdio>
#include <fstream>

using namespace pdgc;

std::vector<BatchItemResult>
BatchDriver::run(const std::vector<Function *> &Fns, const TargetDesc &Target,
                 const DriverOptions &Options) const {
  return run(Fns, Target, Options, BatchLimits());
}

std::vector<BatchItemResult>
BatchDriver::run(const std::vector<Function *> &Fns, const TargetDesc &Target,
                 const DriverOptions &Options,
                 const BatchLimits &Limits) const {
  std::vector<BatchItemResult> Results(Fns.size());
  ThreadPool Pool(Jobs);

  // The batch deadline starts ticking here and rides into every item as
  // DriverOptions::CancelAt; allocateWithFallback exempts its final tier,
  // so expiry degrades items rather than failing them.
  DriverOptions ItemOptions = Options;
  if (Limits.ItemBudgetMs != 0)
    ItemOptions.TimeBudgetMs = Limits.ItemBudgetMs;
  ItemOptions.CancelAt =
      Deadline::afterMs(Limits.BatchBudgetMs).sooner(Options.CancelAt);

  Mutex WarnMutex;

  // Per-index slots keep the output deterministic regardless of which
  // worker finishes first. allocateWithFallback catches everything its
  // pipeline can throw (fatal checks, allocator exceptions, injected
  // faults) and reports it as a Status; the per-item catch below is the
  // batch layer's own backstop — e.g. for the batch.item fault site or an
  // out-of-memory during result bookkeeping — turning a stray throw into
  // a failed item instead of a pool-wide abort.
  PDGC_STAT("batch", "items").add(Fns.size());
  Pool.parallelFor(static_cast<unsigned>(Fns.size()), [&](unsigned I) {
    ScopedTimer ItemTimer("batch.item", "batch");
    auto ItemStart = std::chrono::steady_clock::now();
    try {
      PDGC_FAULT_POINT("batch.item");
      StatusOr<AllocationOutcome> R =
          allocateWithFallback(*Fns[I], Target, ItemOptions);
      if (R.ok())
        Results[I].Out = std::move(R.value());
      else {
        PDGC_STAT("batch", "item_failures").inc();
        Results[I].S = R.status();
      }
    } catch (const std::exception &E) {
      PDGC_STAT("batch", "item_failures").inc();
      PDGC_STAT("batch", "item_exceptions").inc();
      Results[I].S =
          Status::error(ErrorCode::AllocatorInternal,
                        std::string("batch item raised: ") + E.what());
    }
    Results[I].WallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - ItemStart)
            .count();

    if (Limits.WarnDegraded && Results[I].ok() &&
        Results[I].Out.Degradation.Degraded) {
      const DegradationInfo &D = Results[I].Out.Degradation;
      std::string Label = I < Limits.Labels.size()
                              ? Limits.Labels[I]
                              : "item " + std::to_string(I);
      // One lock around the whole warning block: workers report as they
      // finish, and multi-line warnings must not interleave mid-line.
      MutexLock Lock(WarnMutex);
      std::fprintf(stderr,
                   "warning: %s: served by fallback tier %u ('%s')\n",
                   Label.c_str(), D.TierIndex, D.ServedBy.c_str());
      for (const std::string &Failure : D.FailedTiers)
        std::fprintf(stderr, "warning: %s:   failed tier: %s\n",
                     Label.c_str(), Failure.c_str());
    }
  });
  return Results;
}

BatchManifestEntry
BatchManifestEntry::fromResult(const std::string &Label,
                               const BatchItemResult &R,
                               const std::string &LeadTier) {
  BatchManifestEntry E;
  E.Label = Label;
  E.WallMs = R.WallMs;
  if (!R.ok()) {
    E.StatusId = "failed";
    E.Error = R.S.toString();
    return E;
  }
  E.StatusId = R.Out.Degradation.Degraded ? "degraded" : "ok";
  E.ServedBy = R.Out.Degradation.ServedBy.empty()
                   ? LeadTier
                   : R.Out.Degradation.ServedBy;
  return E;
}

BatchManifestEntry BatchManifestEntry::failed(const std::string &Label,
                                              const std::string &Error) {
  BatchManifestEntry E;
  E.Label = Label;
  E.StatusId = "failed";
  E.Error = Error;
  return E;
}

bool pdgc::writeBatchManifest(const std::string &Path,
                              const std::vector<BatchManifestEntry> &Entries,
                              std::string *Error) {
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  Out << "[\n";
  for (size_t I = 0; I != Entries.size(); ++I) {
    const BatchManifestEntry &E = Entries[I];
    char Wall[32];
    std::snprintf(Wall, sizeof Wall, "%.3f", E.WallMs);
    Out << "  {\"label\": \"" << trace::jsonEscape(E.Label)
        << "\", \"status\": \"" << trace::jsonEscape(E.StatusId)
        << "\", \"served-by\": \"" << trace::jsonEscape(E.ServedBy)
        << "\", \"error\": \"" << trace::jsonEscape(E.Error)
        << "\", \"wall-ms\": " << Wall << "}"
        << (I + 1 == Entries.size() ? "\n" : ",\n");
  }
  Out << "]\n";
  Out.flush();
  if (!Out) {
    if (Error)
      *Error = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}

int pdgc::batchExitCode(const std::vector<BatchManifestEntry> &Entries) {
  int Code = 0;
  for (const BatchManifestEntry &E : Entries) {
    if (E.StatusId == "failed")
      return 1;
    if (E.StatusId == "degraded")
      Code = 2;
  }
  return Code;
}
