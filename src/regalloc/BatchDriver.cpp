//===- regalloc/BatchDriver.cpp - Parallel batch allocation ----------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "regalloc/BatchDriver.h"

#include "support/FaultInjection.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "support/Tracing.h"

#include <cstdio>
#include <mutex>

using namespace pdgc;

std::vector<BatchItemResult>
BatchDriver::run(const std::vector<Function *> &Fns, const TargetDesc &Target,
                 const DriverOptions &Options) const {
  return run(Fns, Target, Options, BatchLimits());
}

std::vector<BatchItemResult>
BatchDriver::run(const std::vector<Function *> &Fns, const TargetDesc &Target,
                 const DriverOptions &Options,
                 const BatchLimits &Limits) const {
  std::vector<BatchItemResult> Results(Fns.size());
  ThreadPool Pool(Jobs);

  // The batch deadline starts ticking here and rides into every item as
  // DriverOptions::CancelAt; allocateWithFallback exempts its final tier,
  // so expiry degrades items rather than failing them.
  DriverOptions ItemOptions = Options;
  if (Limits.ItemBudgetMs != 0)
    ItemOptions.TimeBudgetMs = Limits.ItemBudgetMs;
  ItemOptions.CancelAt =
      Deadline::afterMs(Limits.BatchBudgetMs).sooner(Options.CancelAt);

  std::mutex WarnMutex;

  // Per-index slots keep the output deterministic regardless of which
  // worker finishes first. allocateWithFallback catches everything its
  // pipeline can throw (fatal checks, allocator exceptions, injected
  // faults) and reports it as a Status; the per-item catch below is the
  // batch layer's own backstop — e.g. for the batch.item fault site or an
  // out-of-memory during result bookkeeping — turning a stray throw into
  // a failed item instead of a pool-wide abort.
  PDGC_STAT("batch", "items").add(Fns.size());
  Pool.parallelFor(static_cast<unsigned>(Fns.size()), [&](unsigned I) {
    ScopedTimer ItemTimer("batch.item", "batch");
    try {
      PDGC_FAULT_POINT("batch.item");
      StatusOr<AllocationOutcome> R =
          allocateWithFallback(*Fns[I], Target, ItemOptions);
      if (R.ok())
        Results[I].Out = std::move(R.value());
      else {
        PDGC_STAT("batch", "item_failures").inc();
        Results[I].S = R.status();
      }
    } catch (const std::exception &E) {
      PDGC_STAT("batch", "item_failures").inc();
      PDGC_STAT("batch", "item_exceptions").inc();
      Results[I].S =
          Status::error(ErrorCode::AllocatorInternal,
                        std::string("batch item raised: ") + E.what());
    }

    if (Limits.WarnDegraded && Results[I].ok() &&
        Results[I].Out.Degradation.Degraded) {
      const DegradationInfo &D = Results[I].Out.Degradation;
      std::string Label = I < Limits.Labels.size()
                              ? Limits.Labels[I]
                              : "item " + std::to_string(I);
      // One lock around the whole warning block: workers report as they
      // finish, and multi-line warnings must not interleave mid-line.
      std::lock_guard<std::mutex> Lock(WarnMutex);
      std::fprintf(stderr,
                   "warning: %s: served by fallback tier %u ('%s')\n",
                   Label.c_str(), D.TierIndex, D.ServedBy.c_str());
      for (const std::string &Failure : D.FailedTiers)
        std::fprintf(stderr, "warning: %s:   failed tier: %s\n",
                     Label.c_str(), Failure.c_str());
    }
  });
  return Results;
}
