//===- regalloc/BatchDriver.cpp - Parallel batch allocation ----------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "regalloc/BatchDriver.h"

#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "support/Tracing.h"

using namespace pdgc;

std::vector<BatchItemResult>
BatchDriver::run(const std::vector<Function *> &Fns, const TargetDesc &Target,
                 const DriverOptions &Options) const {
  std::vector<BatchItemResult> Results(Fns.size());
  ThreadPool Pool(Jobs);
  // Per-index slots keep the output deterministic regardless of which
  // worker finishes first. allocateWithFallback catches everything its
  // pipeline can throw (fatal checks, allocator exceptions) and reports it
  // as a Status, so the job itself cannot throw — a ThreadPool requirement.
  PDGC_STAT("batch", "items").add(Fns.size());
  Pool.parallelFor(static_cast<unsigned>(Fns.size()), [&](unsigned I) {
    ScopedTimer ItemTimer("batch.item", "batch");
    StatusOr<AllocationOutcome> R =
        allocateWithFallback(*Fns[I], Target, Options);
    if (R.ok())
      Results[I].Out = std::move(R.value());
    else {
      PDGC_STAT("batch", "item_failures").inc();
      Results[I].S = R.status();
    }
  });
  return Results;
}
