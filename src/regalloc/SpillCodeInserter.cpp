//===- regalloc/SpillCodeInserter.cpp - Live-range splitting ---------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "regalloc/SpillCodeInserter.h"

#include "support/Debug.h"

#include <unordered_map>

using namespace pdgc;

namespace {

/// Finds registers in \p Spilled whose every definition is `loadimm C`
/// for one constant C; their uses can recompute C instead of reloading.
std::unordered_map<unsigned, std::int64_t>
findRematerializable(const Function &F,
                     const std::vector<unsigned> &Spilled) {
  std::unordered_map<unsigned, std::int64_t> Constant;
  std::unordered_map<unsigned, char> Disqualified;
  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B) {
    for (const Instruction &I : F.block(B)->instructions()) {
      if (!I.hasDef())
        continue;
      unsigned D = I.def().id();
      if (Disqualified.count(D))
        continue;
      if (I.opcode() != Opcode::LoadImm) {
        Disqualified[D] = 1;
        Constant.erase(D);
        continue;
      }
      auto [It, Inserted] = Constant.try_emplace(D, I.imm());
      if (!Inserted && It->second != I.imm()) {
        Disqualified[D] = 1;
        Constant.erase(D);
      }
    }
  }
  std::unordered_map<unsigned, std::int64_t> Result;
  for (unsigned V : Spilled) {
    auto It = Constant.find(V);
    if (It != Constant.end())
      Result.emplace(V, It->second);
  }
  return Result;
}

} // namespace

SpillInsertStats pdgc::insertSpillCode(Function &F,
                                       const std::vector<unsigned> &Spilled,
                                       unsigned &NextSlot, bool Rematerialize,
                                       SpillGranularity Granularity) {
  SpillInsertStats Stats;
  if (Spilled.empty())
    return Stats;

  std::unordered_map<unsigned, std::int64_t> Remat;
  if (Rematerialize)
    Remat = findRematerializable(F, Spilled);

  // Slot assignment per spilled register (rematerializable ones need no
  // slot).
  std::unordered_map<unsigned, unsigned> SlotOf;
  for (unsigned V : Spilled) {
    assert(!F.isPinned(VReg(V)) && "cannot spill a pinned register");
    assert((!F.isSpillTemp(VReg(V)) || F.isRespillableTemp(VReg(V))) &&
           "re-spilling a per-use spill fragment");
    if (!Remat.count(V))
      SlotOf.emplace(V, NextSlot++);
  }

  // A register spilled per-block may come back; it is then re-split at
  // per-use granularity so its fragments strictly shrink.
  auto UsePerBlock = [&](unsigned V) {
    return Granularity == SpillGranularity::PerBlock &&
           !F.isSpillTemp(VReg(V));
  };

  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B) {
    BasicBlock *BB = F.block(B);
    std::vector<Instruction> NewInsts;
    NewInsts.reserve(BB->size());

    // Per-block mode keeps one fragment per spilled register alive for
    // the whole block; per-use mode clears this map at every instruction.
    std::unordered_map<unsigned, VReg> BlockTemp;

    for (Instruction &I : BB->instructions()) {
      // Rematerializable definitions vanish: every use recomputes.
      if (I.hasDef() && Remat.count(I.def().id())) {
        assert(I.opcode() == Opcode::LoadImm &&
               "rematerializable register with a non-constant definition");
        continue;
      }

      // Reload (or recompute) each distinct spilled register this
      // instruction uses.
      std::unordered_map<unsigned, VReg> PerUseTemp;
      for (unsigned U = 0, UE = I.numUses(); U != UE; ++U) {
        unsigned V = I.use(U).id();
        auto RematIt = Remat.find(V);
        auto SlotIt = SlotOf.find(V);
        if (RematIt == Remat.end() && SlotIt == SlotOf.end())
          continue;
        bool PerBlockV = UsePerBlock(V);
        std::unordered_map<unsigned, VReg> &Reloaded =
            PerBlockV ? BlockTemp : PerUseTemp;
        auto [TmpIt, Inserted] = Reloaded.try_emplace(V, VReg());
        if (Inserted) {
          VReg Tmp = F.createVReg(F.regClass(VReg(V)));
          F.markSpillTemp(Tmp, /*Respillable=*/PerBlockV);
          Instruction Fill =
              RematIt != Remat.end()
                  ? Instruction(Opcode::LoadImm, Tmp, {}, RematIt->second)
                  : Instruction(Opcode::SpillLoad, Tmp, {},
                                static_cast<std::int64_t>(SlotIt->second));
          Fill.setSpillCode(true);
          NewInsts.push_back(std::move(Fill));
          if (RematIt != Remat.end())
            ++Stats.Rematerialized;
          else
            ++Stats.Loads;
          TmpIt->second = Tmp;
        }
        I.setUse(U, TmpIt->second);
      }

      bool DefSpilled = I.hasDef() && SlotOf.count(I.def().id());
      unsigned DefSlot = DefSpilled ? SlotOf[I.def().id()] : 0;
      if (DefSpilled) {
        unsigned V = I.def().id();
        bool PerBlockV = UsePerBlock(V);
        VReg Tmp = F.createVReg(F.regClass(I.def()));
        F.markSpillTemp(Tmp, /*Respillable=*/PerBlockV);
        I.setDef(Tmp);
        NewInsts.push_back(std::move(I));
        Instruction Save(Opcode::SpillStore, VReg(), {Tmp},
                         static_cast<std::int64_t>(DefSlot));
        Save.setSpillCode(true);
        NewInsts.push_back(std::move(Save));
        ++Stats.Stores;
        // In per-block mode, later uses in this block read the freshly
        // defined fragment instead of reloading from the slot.
        if (PerBlockV)
          BlockTemp[V] = Tmp;
        continue;
      }
      NewInsts.push_back(std::move(I));
    }
    BB->instructions() = std::move(NewInsts);

    // Spill code inserted between a paired-load head and its mate breaks
    // the adjacency the fusion needs; drop the candidate flag there.
    for (unsigned Idx = 0, End = BB->size(); Idx != End; ++Idx) {
      Instruction &Head = BB->inst(Idx);
      if (!Head.isPairHead())
        continue;
      if (Idx + 1 == End || BB->inst(Idx + 1).opcode() != Opcode::Load)
        Head.setPairHead(false);
    }
  }
  return Stats;
}
