//===- regalloc/SpillEverythingAllocator.cpp - Terminal fallback -----------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "regalloc/SpillEverythingAllocator.h"

#include "regalloc/SelectState.h"
#include "regalloc/Simplifier.h"
#include "support/Debug.h"
#include "support/FaultInjection.h"
#include "support/Tracing.h"

using namespace pdgc;

RoundResult SpillEverythingAllocator::allocateRound(AllocContext &Ctx) {
  const unsigned N = Ctx.F.numVRegs();
  RoundResult RR = RoundResult::make(N);

  // Round one: every register that occurs in the code and may legally be
  // spilled (not pinned, not already a spill fragment) goes to memory.
  // Registers with no occurrences are skipped — spilling them inserts no
  // code and would loop forever.
  for (unsigned V = 0; V != N; ++V) {
    VReg R(V);
    if (Ctx.F.isPinned(R) || Ctx.F.isSpillTemp(R))
      continue;
    if (Ctx.Costs.numDefs(R) + Ctx.Costs.numUses(R) == 0)
      continue;
    RR.Spilled.push_back(V);
  }
  if (!RR.Spilled.empty())
    return RR;

  // Later rounds: only pinned registers and tiny spill fragments remain,
  // so pressure is minimal. Optimistic simplify/select with no coalescing;
  // an uncolorable respillable fragment is spilled again, an uncolorable
  // unspillable fragment means even spill-everywhere cannot serve this
  // target (e.g. one register per class) — report it as a fatal check so
  // the hardened driver converts it into a structured error.
  ScopedTimer SimplifyTimer("spillall.simplify", "allocator");
  PDGC_FAULT_POINT("spillall.simplify");
  SimplifyResult SR = simplifyGraph(
      Ctx.IG, Ctx.Target,
      [&](unsigned Node) { return Ctx.Costs.spillMetric(VReg(Node)); },
      /*Optimistic=*/true);
  SimplifyTimer.finish();

  ScopedTimer SelectTimer("spillall.select", "allocator");
  PDGC_FAULT_POINT("spillall.select");
  SelectState SS(Ctx.IG, Ctx.Target);
  std::vector<unsigned> Spills;
  for (unsigned I = static_cast<unsigned>(SR.Stack.size()); I-- > 0;) {
    unsigned Node = SR.Stack[I];
    int Color = SS.firstAvailable(Node);
    if (Color >= 0) {
      SS.setColor(Node, Color);
      continue;
    }
    pdgc_check(Ctx.F.isRespillableTemp(VReg(Node)) ||
                   !Ctx.F.isSpillTemp(VReg(Node)),
               "spill-everything: unspillable fragment is uncolorable");
    Spills.push_back(Node);
  }
  if (!Spills.empty()) {
    RR.Spilled = std::move(Spills);
    return RR;
  }

  RR.Color = SS.colors();
  return RR;
}
