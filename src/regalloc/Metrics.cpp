//===- regalloc/Metrics.cpp - Allocation quality metrics -------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "regalloc/Metrics.h"

#include "support/Debug.h"

using namespace pdgc;

MoveStats pdgc::moveStats(const Function &F,
                          const std::vector<int> &Assignment,
                          const LoopInfo &LI) {
  MoveStats S;
  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B) {
    const BasicBlock *BB = F.block(B);
    double Freq = LI.frequency(BB);
    for (const Instruction &I : BB->instructions()) {
      if (!I.isCopy())
        continue;
      ++S.Total;
      S.WeightedTotal += Freq;
      int DstColor = Assignment[I.def().id()];
      int SrcColor = Assignment[I.use(0).id()];
      if (DstColor >= 0 && DstColor == SrcColor) {
        ++S.Eliminated;
        S.WeightedEliminated += Freq;
      }
    }
  }
  return S;
}

unsigned pdgc::countSpillInstructions(const Function &F) {
  unsigned N = 0;
  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B)
    for (const Instruction &I : F.block(B)->instructions())
      if (I.isSpillCode())
        ++N;
  return N;
}
