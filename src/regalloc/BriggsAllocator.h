//===- regalloc/BriggsAllocator.h - Briggs optimistic coloring --*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Briggs-style optimistic coloring (Figure 1(b) of the paper): aggressive
/// coalescing as in Chaitin, but a blocked simplification pushes the spill
/// candidate optimistically; only the select phase, on finding no free
/// color, turns it into a real spill. This is the paper's
/// "Briggs + aggressive" comparison point in Figures 9–11.
///
/// An optional biased-coloring mode makes select prefer, among the
/// available colors, one already given to a copy-related partner
/// (Briggs' deferred coalescing; Section 3.2).
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_REGALLOC_BRIGGSALLOCATOR_H
#define PDGC_REGALLOC_BRIGGSALLOCATOR_H

#include "regalloc/AllocatorBase.h"

namespace pdgc {

/// Optimistic coloring with aggressive coalescing.
class BriggsAllocator : public AllocatorBase {
  bool Biased;
  bool NonVolatileFirst;

public:
  explicit BriggsAllocator(bool BiasedColoring = false,
                           bool NonVolatileFirstIn = false)
      : Biased(BiasedColoring), NonVolatileFirst(NonVolatileFirstIn) {}

  const char *name() const override {
    return Biased ? "briggs+biased" : "briggs+aggressive";
  }
  RoundResult allocateRound(AllocContext &Ctx) override;
};

} // namespace pdgc

#endif // PDGC_REGALLOC_BRIGGSALLOCATOR_H
