//===- regalloc/Simplifier.h - Graph simplification -------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chaitin- and Briggs-style simplification of the interference graph
/// (Figure 1 of the paper). Simplification repeatedly removes a node with
/// fewer than K same-class neighbors and pushes it onto a stack; when only
/// significant-degree nodes remain it either removes a spill candidate
/// outright (Chaitin: pessimistic) or pushes it optimistically and lets the
/// select phase discover whether a color is available (Briggs).
///
/// The spill candidate is the node minimizing spill-metric / degree, the
/// classic heuristic; all allocators in this repository share it (the paper
/// likewise uses one heuristic for every compared algorithm).
///
/// An optional removal-priority hook orders the removal of low-degree nodes
/// so that higher-priority nodes are *popped* earlier in select — this is
/// Lueh–Gross benefit-driven simplification.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_REGALLOC_SIMPLIFIER_H
#define PDGC_REGALLOC_SIMPLIFIER_H

#include "analysis/CostModel.h"
#include "analysis/InterferenceGraph.h"
#include "machine/TargetDesc.h"

#include <functional>
#include <vector>

namespace pdgc {

/// Result of simplifying the interference graph.
struct SimplifyResult {
  /// Nodes in push order; select pops from the back. Contains every
  /// non-precolored, non-merged node except Chaitin-mode definite spills.
  std::vector<unsigned> Stack;
  /// Per-node flag: pushed as an optimistic (potential-spill) node.
  std::vector<char> OptimisticallySpilled;
  /// Chaitin mode only: nodes removed as definite spills (never stacked).
  std::vector<unsigned> DefiniteSpills;
};

/// Simplifies \p IG down to the empty graph.
///
/// \p Optimistic selects Briggs behaviour (potential spills are stacked)
/// versus Chaitin behaviour (they are spilled outright).
/// \p SpillMetric maps a node to its estimated spill cost; when the graph
/// blocks, the node minimizing SpillMetric(N) / degree(N) is chosen. Use a
/// metric that aggregates over coalesced members when nodes were merged.
/// \p RemovalPriority, when provided, picks which of the currently
/// low-degree nodes is removed next: the node with the *smallest* priority
/// is removed (pushed) first and therefore colored last.
SimplifyResult
simplifyGraph(const InterferenceGraph &IG, const TargetDesc &Target,
              const std::function<double(unsigned)> &SpillMetric,
              bool Optimistic,
              const std::function<double(unsigned)> &RemovalPriority = {});

} // namespace pdgc

#endif // PDGC_REGALLOC_SIMPLIFIER_H
