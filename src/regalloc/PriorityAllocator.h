//===- regalloc/PriorityAllocator.h - Chow-Hennessy style -------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A priority-based coloring allocator in the style of Chow and Hennessy
/// (TOPLAS 1990) — the *other* school of coloring allocators, which the
/// paper contrasts with Chaitin's in Section 7: "the former favors packing
/// live ranges while the latter favors allocating more live ranges with
/// higher priority though that may use more colors."
///
/// This implementation keeps the defining structure and omits Chow's
/// live-range splitting (our framework spills whole ranges and iterates,
/// like the rest of the repository):
///
///  * unconstrained live ranges (fewer interferences than registers) are
///    set aside — they can always be colored;
///  * constrained ranges are colored in decreasing priority order, where
///    priority is the estimated memory-residence penalty normalized by
///    live-range size (occurrences);
///  * a constrained range with no available register is spilled — higher
///    priority ranges therefore never lose their register to lower
///    priority ones, at the price of using more registers than Chaitin
///    (the paper's point about IA-64's register stack).
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_REGALLOC_PRIORITYALLOCATOR_H
#define PDGC_REGALLOC_PRIORITYALLOCATOR_H

#include "regalloc/AllocatorBase.h"

namespace pdgc {

/// Chow–Hennessy-style priority-based coloring.
class PriorityAllocator : public AllocatorBase {
public:
  const char *name() const override { return "priority"; }
  RoundResult allocateRound(AllocContext &Ctx) override;
};

} // namespace pdgc

#endif // PDGC_REGALLOC_PRIORITYALLOCATOR_H
