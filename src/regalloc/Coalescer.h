//===- regalloc/Coalescer.h - Graph coalescing ------------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Coalescing machinery shared by the baseline allocators (Section 3.2 of
/// the paper): aggressive coalescing (Chaitin), the Briggs and George
/// conservative tests, and a conservative coalescing pass. Coalescing
/// merges copy-related, non-interfering nodes in the interference graph;
/// membership is tracked in a union-find whose representatives are the
/// surviving graph nodes.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_REGALLOC_COALESCER_H
#define PDGC_REGALLOC_COALESCER_H

#include "analysis/InterferenceGraph.h"
#include "machine/TargetDesc.h"
#include "support/UnionFind.h"

namespace pdgc {

/// Returns true when nodes \p A and \p B (representatives) may legally be
/// merged: distinct, same register class, non-interfering, at most one
/// precolored, and — when one is precolored — the other must not interfere
/// with any node carrying that color.
bool canMergePair(const InterferenceGraph &IG, unsigned A, unsigned B);

/// Merges \p A and \p B, returning the surviving representative (the
/// precolored one if any, otherwise \p A). Updates \p IG and \p UF.
unsigned mergePair(InterferenceGraph &IG, UnionFind &UF, unsigned A,
                   unsigned B);

/// Briggs conservative criterion: the merged node has fewer than K
/// neighbors of significant degree, so coalescing cannot turn a K-colorable
/// graph uncolorable.
bool briggsTestOk(const InterferenceGraph &IG, const TargetDesc &Target,
                  unsigned A, unsigned B);

/// George criterion (used when \p A is precolored or of very high degree):
/// every neighbor of \p B already interferes with \p A or has insignificant
/// degree.
bool georgeTestOk(const InterferenceGraph &IG, const TargetDesc &Target,
                  unsigned A, unsigned B);

/// Chaitin-style aggressive coalescing: merges every legally mergeable
/// copy-related pair, iterating until no more merges apply. Returns the
/// number of merges performed.
unsigned aggressiveCoalesce(InterferenceGraph &IG, UnionFind &UF);

/// Briggs-style conservative coalescing: merges copy-related pairs only
/// when the Briggs test (or the George test, for precolored pairs) passes.
/// Returns the number of merges performed.
unsigned conservativeCoalesce(InterferenceGraph &IG, UnionFind &UF,
                              const TargetDesc &Target);

} // namespace pdgc

#endif // PDGC_REGALLOC_COALESCER_H
