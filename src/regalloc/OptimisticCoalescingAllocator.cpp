//===- regalloc/OptimisticCoalescingAllocator.cpp - Park-Moon --------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "regalloc/OptimisticCoalescingAllocator.h"

#include "regalloc/CoalescedCosts.h"
#include "regalloc/Coalescer.h"
#include "regalloc/SelectState.h"
#include "regalloc/Simplifier.h"
#include "support/Deadline.h"
#include "support/Debug.h"
#include "support/FaultInjection.h"
#include "support/Tracing.h"

#include <algorithm>
#include <deque>

using namespace pdgc;

RoundResult
OptimisticCoalescingAllocator::allocateRound(AllocContext &Ctx) {
  const unsigned N = Ctx.F.numVRegs();
  RoundResult RR = RoundResult::make(N);

  // Keep the pre-coalesce graph: undoing a coalescence must consult the
  // primitives' original neighborhoods. The snapshot's rows live in the
  // round arena and die with it.
  InterferenceGraph Pristine = Ctx.IG.snapshot(Ctx.Mem);

  UnionFind UF(N);
  {
    ScopedTimer Timer("optimistic.coalesce", "allocator");
    PDGC_FAULT_POINT("optimistic.coalesce");
    aggressiveCoalesce(Ctx.IG, UF);
  }
  CoalescedCosts CC(Ctx.Costs, UF);

  // Member lists per representative.
  std::vector<std::vector<unsigned>> Members(N);
  for (unsigned V = 0; V != N; ++V)
    Members[UF.find(V)].push_back(V);

  ScopedTimer SimplifyTimer("optimistic.simplify", "allocator");
  PDGC_FAULT_POINT("optimistic.simplify");
  SimplifyResult SR =
      simplifyGraph(Ctx.IG, Ctx.Target,
                    [&](unsigned Node) { return CC.spillMetric(Node); },
                    /*Optimistic=*/true);
  SimplifyTimer.finish();

  // Colors are tracked per *primitive* node over the pristine graph, so
  // that split nodes can be colored independently.
  ScopedTimer SelectTimer("optimistic.select", "allocator");
  PDGC_FAULT_POINT("optimistic.select");
  SelectState SS(Pristine, Ctx.Target);

  // A class merged into a precolored representative occupies that register
  // as a whole; reflect it on every member up front so neighbors see it.
  for (unsigned V = 0; V != N; ++V) {
    unsigned Rep = UF.find(V);
    if (V != Rep && Pristine.isPrecolored(Rep))
      SS.setColor(V, Pristine.precolor(Rep));
  }

  // Registers a whole class may take: the intersection of what its members
  // tolerate.
  auto AvailForClass = [&](const std::vector<unsigned> &Prims) {
    assert(!Prims.empty() && "empty coalescing class");
    BitVector Avail = SS.availableFor(Prims.front());
    for (unsigned I = 1, E = Prims.size(); I != E; ++I)
      Avail &= SS.availableFor(Prims[I]);
    return Avail;
  };

  // Work queue: consumed from the back (stack order); deferred primitives
  // of an undone coalescence go to the front — "inserted at the bottom of
  // the stack" — and are processed individually.
  std::deque<unsigned> Work(SR.Stack.begin(), SR.Stack.end());
  std::vector<char> AsPrimitive(N, 0);
  std::vector<unsigned> Spills;

  while (!Work.empty()) {
    pollDeadline();
    unsigned Node = Work.back();
    Work.pop_back();

    if (AsPrimitive[Node]) {
      // A deferred primitive: color it alone or spill it.
      int Color =
          pickAvailable(SS.availableFor(Node), Ctx.Target, NonVolatileFirst);
      if (Color >= 0)
        SS.setColor(Node, Color);
      else
        Spills.push_back(Node);
      continue;
    }

    const std::vector<unsigned> &Prims = Members[Node];
    BitVector Avail = AvailForClass(Prims);
    int Color = pickAvailable(Avail, Ctx.Target, NonVolatileFirst);
    if (Color >= 0) {
      for (unsigned P : Prims)
        SS.setColor(P, Color);
      continue;
    }

    if (Prims.size() == 1) {
      assert(!Ctx.Costs.isInfinite(VReg(Node)) &&
             "unspillable primitive found no color");
      Spills.push_back(Node);
      continue;
    }

    // Undo the coalescence. Color the most valuable colorable primitive
    // now; defer the others to the bottom of the stack.
    std::vector<unsigned> Order = Prims;
    std::sort(Order.begin(), Order.end(), [&](unsigned A, unsigned B) {
      double CA = Ctx.Costs.spillMetric(VReg(A));
      double CB = Ctx.Costs.spillMetric(VReg(B));
      if (CA != CB)
        return CA > CB;
      return A < B;
    });
    bool ColoredOne = false;
    for (unsigned P : Order) {
      if (!ColoredOne) {
        int PC = pickAvailable(SS.availableFor(P), Ctx.Target,
                               NonVolatileFirst);
        if (PC >= 0) {
          SS.setColor(P, PC);
          ColoredOne = true;
          continue;
        }
      }
      AsPrimitive[P] = 1;
      Work.push_front(P);
    }
    if (!ColoredOne) {
      // Not even one primitive fits right now; the deferred entries will
      // each retry at the bottom of the stack, so nothing else to do.
    }
  }

  if (!Spills.empty()) {
    // Spills are primitive live ranges; the next round re-coalesces from
    // scratch (no IR rewrite — the undo already invalidated this round's
    // merges).
    RR.Spilled = std::move(Spills);
    return RR;
  }

  // Success: every primitive carries its own color; the coalesce map stays
  // the identity.
  RR.Color = SS.colors();
  return RR;
}
