//===- regalloc/AssignmentChecker.cpp - Allocation validity ----------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "regalloc/AssignmentChecker.h"

#include "analysis/Liveness.h"
#include "ir/IRPrinter.h"

using namespace pdgc;

std::vector<std::string>
pdgc::checkAssignment(const Function &F, const TargetDesc &Target,
                      const std::vector<int> &Assignment) {
  std::vector<std::string> Errors;
  auto Error = [&](const std::string &Msg) { Errors.push_back(Msg); };

  auto ColorOf = [&](VReg V) -> int {
    if (V.id() >= Assignment.size())
      return -1;
    return Assignment[V.id()];
  };

  // Every register that appears in the code must be colored consistently
  // with its class and pinning.
  auto CheckOperand = [&](VReg V) {
    int C = ColorOf(V);
    if (C < 0) {
      Error("register v" + std::to_string(V.id()) + " has no color");
      return;
    }
    if (static_cast<unsigned>(C) >= Target.numRegs()) {
      Error("color out of range for v" + std::to_string(V.id()));
      return;
    }
    if (Target.regClass(static_cast<PhysReg>(C)) != F.regClass(V))
      Error("class mismatch for v" + std::to_string(V.id()));
    if (F.isPinned(V) && C != F.pinnedReg(V))
      Error("pinned register v" + std::to_string(V.id()) +
            " not assigned its pinned color");
  };

  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B) {
    for (const Instruction &I : F.block(B)->instructions()) {
      if (I.hasDef())
        CheckOperand(I.def());
      for (unsigned U = 0, UE = I.numUses(); U != UE; ++U)
        CheckOperand(I.use(U));
    }
  }
  if (!Errors.empty())
    return Errors;

  // No two simultaneously live registers may share a color. The same
  // walk the interference builder uses, including Chaitin's copy rule: at
  // `d = move s`, d sharing s's register is a no-op copy, not a conflict.
  Liveness LV = Liveness::compute(F);
  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B) {
    const BasicBlock *BB = F.block(B);
    LV.forEachInstReverse(BB, [&](unsigned I, const BitVector &LiveAfter) {
      const Instruction &Inst = BB->inst(I);
      if (!Inst.hasDef())
        return;
      VReg D = Inst.def();
      for (unsigned L : LiveAfter.setBits()) {
        if (L == D.id())
          continue;
        if (Inst.isCopy() && L == Inst.use(0).id())
          continue;
        if (ColorOf(D) == ColorOf(VReg(L)))
          Error("clobber in " + BB->name() + ": " +
                printInstruction(F, Inst) + " overwrites live v" +
                std::to_string(L) + " (both in " +
                Target.regName(static_cast<PhysReg>(ColorOf(D))) + ")");
      }
    });
  }
  return Errors;
}
