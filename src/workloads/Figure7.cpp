//===- workloads/Figure7.cpp - The paper's running example -------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "workloads/Figure7.h"

#include "ir/IRBuilder.h"

using namespace pdgc;

TargetDesc pdgc::makeFigure7Target() {
  // 3 GPRs (2 volatile, 1 non-volatile), 2 parameter registers; the FPR
  // side exists but is unused by the example.
  return TargetDesc("fig7", /*GPRs=*/3, /*FPRs=*/3, /*VolatilePerClass=*/2,
                    /*MaxParamRegs=*/2, PairingRule::Adjacent);
}

std::unique_ptr<Function>
pdgc::makeFigure7Function(const TargetDesc &Target, Figure7Regs *Regs) {
  auto F = std::make_unique<Function>("figure7");
  IRBuilder B(*F);

  VReg Arg0 = F->addParam(RegClass::GPR,
                          static_cast<int>(Target.paramReg(RegClass::GPR, 0)));

  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *L1 = F->createBlock("L1");
  BasicBlock *Out = F->createBlock("out");

  // i0: v0 = [arg0]
  B.setInsertBlock(Entry);
  VReg V0 = B.emitLoad(Arg0, 0);
  B.emitBranch(L1);

  // L1 body. The paired load i1/i2 reads [v0] and [v0+1].
  B.setInsertBlock(L1);
  auto [V1, V2] = B.emitPairedLoad(V0, 0);
  VReg V3 = B.emitMove(V0);                       // i3: v3 = v0
  VReg V4 = B.emitBinary(Opcode::Add, V1, V2);    // i4: v4 = v1 + v2
  VReg CallArg = F->createPinnedVReg(
      RegClass::GPR, static_cast<int>(Target.paramReg(RegClass::GPR, 0)));
  B.emitMoveTo(CallArg, V3);                      // i5: arg0 = v3
  B.emitCall(/*Callee=*/1, {CallArg}, VReg());    // i6: call
  // i7: v0 = v4 + 1 — the same live range as i0's v0, as in the paper.
  L1->append(Instruction(Opcode::AddImm, V0, {V4}, 1));
  // i8: if v0 != 0 goto L1
  L1->append(Instruction(Opcode::CondBranch, VReg(), {V0}));
  F->setEdges(L1, {L1, Out});

  // i9: ret
  B.setInsertBlock(Out);
  B.emitRet();

  if (Regs)
    *Regs = Figure7Regs{Arg0, V0, V1, V2, V3, V4, CallArg};
  return F;
}
