//===- workloads/Suites.cpp - SPECjvm98-like workload suites ----------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "workloads/Suites.h"

#include "support/Debug.h"

using namespace pdgc;

namespace {

/// Builds one suite of \p NumFunctions variations of \p Base.
WorkloadSuite makeSuite(const char *Name, unsigned NumFunctions,
                        GeneratorParams Base, std::uint64_t SeedBase) {
  WorkloadSuite S;
  S.Name = Name;
  for (unsigned I = 0; I != NumFunctions; ++I) {
    GeneratorParams P = Base;
    P.Name = std::string(Name) + "_f" + std::to_string(I);
    P.Seed = SeedBase + 0x9E3779B97F4A7C15ULL * (I + 1);
    // Vary the size a little across the suite.
    P.FragmentBudget = Base.FragmentBudget + (I % 3) * 6;
    S.Functions.push_back(std::move(P));
  }
  return S;
}

} // namespace

std::vector<WorkloadSuite> pdgc::specJvmLikeSuites() {
  std::vector<WorkloadSuite> Suites;

  // compress: tight nested integer loops over buffers; few calls.
  {
    GeneratorParams P;
    P.FragmentBudget = 26;
    P.LoopPercent = 45;
    P.MaxLoopDepth = 3;
    P.BranchPercent = 15;
    P.CallPercent = 6;
    P.CopyPercent = 15;
    P.PairedLoadPercent = 12;
    P.StorePercent = 25;
    P.FpPercent = 5;
    P.Accumulators = 3;
    P.PressureValues = 7;
    Suites.push_back(makeSuite("compress", 10, P, 0xC0317E55ULL));
  }

  // jess: rule-engine style — call-saturated, branchy, shallow loops.
  {
    GeneratorParams P;
    P.FragmentBudget = 24;
    P.LoopPercent = 12;
    P.MaxLoopDepth = 1;
    P.BranchPercent = 30;
    P.CallPercent = 48;
    P.CopyPercent = 25;
    P.PairedLoadPercent = 0;
    P.StorePercent = 12;
    P.FpPercent = 4;
    P.Accumulators = 2;
    P.PressureValues = 8;
    Suites.push_back(makeSuite("jess", 12, P, 0x1E55ULL));
  }

  // db: database shell — many calls and copies, light loops.
  {
    GeneratorParams P;
    P.FragmentBudget = 24;
    P.LoopPercent = 18;
    P.MaxLoopDepth = 1;
    P.BranchPercent = 25;
    P.CallPercent = 38;
    P.CopyPercent = 32;
    P.PairedLoadPercent = 0;
    P.NarrowLoadPercent = 30; // String/byte handling: narrow loads.
    P.StorePercent = 18;
    P.FpPercent = 0;
    P.Accumulators = 2;
    P.PressureValues = 7;
    Suites.push_back(makeSuite("db", 10, P, 0xDBDBULL));
  }

  // javac: large branchy methods, calls, high pressure.
  {
    GeneratorParams P;
    P.FragmentBudget = 30;
    P.LoopPercent = 18;
    P.MaxLoopDepth = 2;
    P.BranchPercent = 35;
    P.CallPercent = 32;
    P.CopyPercent = 25;
    P.PairedLoadPercent = 4;
    P.NarrowLoadPercent = 15; // Token/character scanning.
    P.StorePercent = 15;
    P.FpPercent = 0;
    P.Accumulators = 2;
    P.PressureValues = 10;
    Suites.push_back(makeSuite("javac", 12, P, 0x7A9ACULL));
  }

  // mpegaudio: floating-point kernels, deep loops, many paired loads.
  {
    GeneratorParams P;
    P.FragmentBudget = 26;
    P.LoopPercent = 45;
    P.MaxLoopDepth = 3;
    P.BranchPercent = 10;
    P.CallPercent = 8;
    P.CopyPercent = 15;
    P.PairedLoadPercent = 40;
    P.StorePercent = 20;
    P.FpPercent = 60;
    P.Accumulators = 3;
    P.PressureValues = 8;
    Suites.push_back(makeSuite("mpegaudio", 10, P, 0x3E6ULL));
  }

  // mtrt: ray tracing — floating point plus calls, moderate loops.
  {
    GeneratorParams P;
    P.FragmentBudget = 26;
    P.LoopPercent = 25;
    P.MaxLoopDepth = 2;
    P.BranchPercent = 20;
    P.CallPercent = 26;
    P.CopyPercent = 20;
    P.PairedLoadPercent = 22;
    P.StorePercent = 15;
    P.FpPercent = 55;
    P.Accumulators = 3;
    P.PressureValues = 8;
    Suites.push_back(makeSuite("mtrt", 10, P, 0x307D7ULL));
  }

  // jack: parser generator — call heavy, branchy.
  {
    GeneratorParams P;
    P.FragmentBudget = 24;
    P.LoopPercent = 15;
    P.MaxLoopDepth = 1;
    P.BranchPercent = 28;
    P.CallPercent = 42;
    P.CopyPercent = 24;
    P.PairedLoadPercent = 0;
    P.NarrowLoadPercent = 25; // Parser input handling: byte loads.
    P.StorePercent = 14;
    P.FpPercent = 5;
    P.Accumulators = 2;
    P.PressureValues = 6;
    Suites.push_back(makeSuite("jack", 12, P, 0x7ACCULL));
  }

  return Suites;
}

GeneratorParams pdgc::megaFunctionProfile() {
  // javac-like mix scaled ~50x: branchy, call-heavy, enough pressure that
  // live sets stay wide. FragmentBudget is calibrated so the generated
  // function lands at ~10^4 virtual registers.
  GeneratorParams P;
  P.Name = "mega";
  P.Seed = 0x3E6AULL;
  P.FragmentBudget = 2400;
  P.LoopPercent = 18;
  P.MaxLoopDepth = 2;
  P.BranchPercent = 35;
  P.CallPercent = 32;
  P.CopyPercent = 25;
  P.PairedLoadPercent = 4;
  P.NarrowLoadPercent = 15;
  P.StorePercent = 15;
  P.FpPercent = 0;
  P.Accumulators = 2;
  P.PressureValues = 10;
  return P;
}

WorkloadSuite pdgc::suiteByName(const std::string &Name) {
  if (Name == "mega") {
    WorkloadSuite S;
    S.Name = "mega";
    S.Functions.push_back(megaFunctionProfile());
    return S;
  }
  for (WorkloadSuite &S : specJvmLikeSuites())
    if (S.Name == Name)
      return S;
  pdgc_check(false, ("unknown workload suite: " + Name).c_str());
  return {};
}
