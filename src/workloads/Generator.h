//===- workloads/Generator.h - Synthetic SSA workloads ----------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic generator of SSA-form IR functions. The paper evaluates
/// on SPECjvm98 compiled by IBM's IA-64 Java JIT, which is unavailable; the
/// generator produces functions with the structural features the allocators
/// actually consume — loop nests with induction variables and accumulators
/// (long live ranges, high frequencies), if/else diamonds with phi merges
/// (copy-related live ranges after SSA lowering), call sites with pinned
/// argument/return registers (dedicated preferences, call-crossing
/// liveness), paired-load candidates (sequential preferences), and tunable
/// register pressure.
///
/// Generation is structured (loops are counted), so every generated
/// function terminates, and fully seeded, so the corpus is reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_WORKLOADS_GENERATOR_H
#define PDGC_WORKLOADS_GENERATOR_H

#include "ir/Function.h"
#include "machine/TargetDesc.h"

#include <cstdint>
#include <memory>
#include <string>

namespace pdgc {

/// Shape knobs for one generated function.
struct GeneratorParams {
  std::string Name = "synth";
  std::uint64_t Seed = 1;

  unsigned NumParams = 2;      ///< Integer parameters (pinned registers).
  unsigned FragmentBudget = 24;///< Code fragments to emit at the top level.
  unsigned OpsPerFragment = 4; ///< Straight-line ops per plain fragment.

  unsigned LoopPercent = 20;   ///< Chance a fragment is a counted loop.
  unsigned MaxLoopDepth = 2;   ///< Loop nesting bound.
  unsigned BranchPercent = 20; ///< Chance a fragment is an if/else diamond.
  unsigned CallPercent = 20;   ///< Chance a fragment is a call site.
  unsigned CopyPercent = 20;   ///< Chance a straight-line op is a copy.
  unsigned PairedLoadPercent = 10; ///< Chance a fragment emits a paired
                                   ///< load.
  unsigned NarrowLoadPercent = 0;  ///< Chance a load is narrow (limited
                                   ///< register usage, e.g. byte loads).
  unsigned StorePercent = 15;  ///< Chance a fragment stores a value.
  unsigned FpPercent = 10;     ///< Portion of values in the FPR class.
  unsigned Accumulators = 2;   ///< Live-through values updated per loop.
  unsigned PressureValues = 6; ///< Long-lived values created at entry and
                               ///< kept live to the end.
};

/// Generates a function. The result is in SSA form (phis present); run it
/// through an allocator driver (which lowers phis) or eliminatePhis().
std::unique_ptr<Function> generateFunction(const GeneratorParams &Params,
                                           const TargetDesc &Target);

} // namespace pdgc

#endif // PDGC_WORKLOADS_GENERATOR_H
