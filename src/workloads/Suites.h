//===- workloads/Suites.h - SPECjvm98-like workload suites ------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark corpus: seven suites named after the SPECjvm98 tests the
/// paper evaluates on (compress, jess, db, javac, mpegaudio, mtrt, jack),
/// each a set of generated functions whose structural profile follows the
/// paper's characterization of that test — compress and mpegaudio are
/// loop-dominated (mpegaudio floating-point heavy with many paired-load
/// candidates), jess/db/javac/jack "make frequent function calls"
/// (Section 6.2), mtrt mixes floating-point work with calls. This is a
/// substitution for the unavailable Java workloads; see DESIGN.md.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_WORKLOADS_SUITES_H
#define PDGC_WORKLOADS_SUITES_H

#include "workloads/Generator.h"

#include <vector>

namespace pdgc {

/// A named set of generator configurations.
struct WorkloadSuite {
  std::string Name;
  std::vector<GeneratorParams> Functions;

  /// Generates function \p I of the suite fresh (allocation mutates
  /// functions, so benchmarks regenerate per allocator).
  std::unique_ptr<Function> generate(unsigned I,
                                     const TargetDesc &Target) const {
    return generateFunction(Functions.at(I), Target);
  }
};

/// Returns the seven SPECjvm98-like suites with deterministic seeds.
std::vector<WorkloadSuite> specJvmLikeSuites();

/// A single "mega-function" profile (~10^4 virtual registers): the
/// JIT-server outlier the per-function graphs must survive — where
/// quadratic construction or per-node heap churn actually hurts, unlike
/// the ~190-vreg suite functions. Not part of specJvmLikeSuites() (it
/// would dominate every sweep); reachable as suiteByName("mega") and as
/// the BM_BuildCpg/mega benchmark.
GeneratorParams megaFunctionProfile();

/// Returns one suite by name ("mega" included); aborts on an unknown name.
WorkloadSuite suiteByName(const std::string &Name);

} // namespace pdgc

#endif // PDGC_WORKLOADS_SUITES_H
