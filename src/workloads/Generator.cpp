//===- workloads/Generator.cpp - Synthetic SSA workloads --------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "workloads/Generator.h"

#include "ir/IRBuilder.h"
#include "support/Debug.h"
#include "support/Rng.h"

using namespace pdgc;

namespace {

/// Stateful generator walking the function under construction.
class Generator {
  const GeneratorParams &P;
  const TargetDesc &T;
  Function &F;
  IRBuilder B;
  Rng R;

  std::vector<VReg> IntScope; ///< Values valid at the insertion point.
  std::vector<VReg> FpScope;
  std::vector<VReg> IntPressure; ///< Long-lived values, used again at exit.
  std::vector<VReg> FpPressure;
  unsigned LoopDepth = 0;
  unsigned NextCallee = 1;

  static constexpr unsigned ScopeCap = 24;

public:
  Generator(const GeneratorParams &PIn, const TargetDesc &TIn, Function &Fn)
      : P(PIn), T(TIn), F(Fn), B(Fn), R(PIn.Seed) {}

  RegClass rollClass() {
    return R.roll(P.FpPercent) ? RegClass::FPR : RegClass::GPR;
  }

  std::vector<VReg> &scope(RegClass RC) {
    return RC == RegClass::GPR ? IntScope : FpScope;
  }
  std::vector<VReg> &pressure(RegClass RC) {
    return RC == RegClass::GPR ? IntPressure : FpPressure;
  }

  /// Publishes a freshly defined value into the scope.
  void publish(VReg V) {
    std::vector<VReg> &S = scope(F.regClass(V));
    S.push_back(V);
    if (S.size() > ScopeCap)
      S.erase(S.begin());
  }

  /// Picks a value of class \p RC valid at the insertion point; pressure
  /// values are sampled occasionally to keep their ranges busy.
  VReg pick(RegClass RC) {
    std::vector<VReg> &Press = pressure(RC);
    if (!Press.empty() && R.roll(25))
      return Press[R.nextBelow(Press.size())];
    std::vector<VReg> &S = scope(RC);
    if (S.empty()) {
      VReg V = B.emitLoadImm(static_cast<std::int64_t>(R.nextBelow(64)), RC);
      publish(V);
      return V;
    }
    return S[R.nextBelow(S.size())];
  }

  VReg pickInt() { return pick(RegClass::GPR); }

  //===------------------------------------------------------------------===
  // Fragments
  //===------------------------------------------------------------------===

  void emitStraightOp() {
    if (R.roll(P.CopyPercent)) {
      // Copies model SSA renames and convention glue: the old name
      // retires at the copy (so the pair is coalescible), as in the
      // paper's JIT where a naive SSA program has many such copies.
      RegClass RC = rollClass();
      std::vector<VReg> &S = scope(RC);
      if (!S.empty()) {
        unsigned Idx = static_cast<unsigned>(R.nextBelow(S.size()));
        VReg Src = S[Idx];
        S.erase(S.begin() + Idx);
        publish(B.emitMove(Src));
        return;
      }
      publish(B.emitMove(pick(RC)));
      return;
    }
    switch (R.nextBelow(6)) {
    case 0: {
      RegClass RC = rollClass();
      publish(B.emitBinary(Opcode::Add, pick(RC), pick(RC)));
      break;
    }
    case 1: {
      RegClass RC = rollClass();
      publish(B.emitBinary(R.roll(50) ? Opcode::Sub : Opcode::Mul, pick(RC),
                           pick(RC)));
      break;
    }
    case 2:
      publish(B.emitAddImm(pick(rollClass()),
                           static_cast<std::int64_t>(R.nextBelow(16))));
      break;
    case 3: {
      std::int64_t Off = static_cast<std::int64_t>(R.nextBelow(64));
      RegClass RC = rollClass();
      publish(R.roll(P.NarrowLoadPercent)
                  ? B.emitNarrowLoad(pickInt(), Off, RC)
                  : B.emitLoad(pickInt(), Off, RC));
      break;
    }
    case 4: {
      RegClass RC = rollClass();
      publish(B.emitCompare(R.roll(50) ? Opcode::CmpLT : Opcode::CmpEQ,
                            pick(RC), pick(RC)));
      break;
    }
    case 5:
      publish(
          B.emitLoadImm(static_cast<std::int64_t>(R.nextBelow(256)),
                        rollClass()));
      break;
    }
  }

  void emitCallSite() {
    unsigned MaxArgs = T.maxParamRegs() < 3 ? T.maxParamRegs() : 3;
    unsigned NumArgs = 1 + static_cast<unsigned>(R.nextBelow(MaxArgs));
    unsigned GprIdx = 0, FprIdx = 0;
    std::vector<VReg> Args;
    for (unsigned I = 0; I != NumArgs; ++I) {
      RegClass RC = rollClass();
      unsigned &Idx = RC == RegClass::GPR ? GprIdx : FprIdx;
      if (Idx >= T.maxParamRegs())
        RC = RC == RegClass::GPR ? RegClass::FPR : RegClass::GPR;
      unsigned &Idx2 = RC == RegClass::GPR ? GprIdx : FprIdx;
      VReg Val = pick(RC);
      VReg Pinned =
          F.createPinnedVReg(RC, static_cast<int>(T.paramReg(RC, Idx2++)));
      B.emitMoveTo(Pinned, Val);
      Args.push_back(Pinned);
    }
    unsigned Callee = NextCallee++;
    if (R.roll(70)) {
      RegClass RetRC = rollClass();
      VReg Ret =
          F.createPinnedVReg(RetRC, static_cast<int>(T.returnReg(RetRC)));
      B.emitCall(Callee, Args, Ret);
      publish(B.emitMove(Ret));
    } else {
      B.emitCall(Callee, Args, VReg());
    }
  }

  void emitPairedLoadFragment() {
    RegClass RC = rollClass();
    auto [First, Second] = B.emitPairedLoad(
        pickInt(), static_cast<std::int64_t>(R.nextBelow(32)) * 2, RC);
    publish(First);
    publish(Second);
    // Consume the pair so both ranges matter.
    publish(B.emitBinary(Opcode::Add, First, Second));
  }

  void emitStoreFragment() {
    RegClass RC = rollClass();
    B.emitStore(pick(RC), pickInt(),
                static_cast<std::int64_t>(R.nextBelow(64)));
  }

  /// An if/else diamond merged with phis.
  void emitDiamond(unsigned Budget) {
    VReg Cond = B.emitCompare(Opcode::CmpLT, pickInt(), pickInt());
    BasicBlock *Then = F.createBlock();
    BasicBlock *Else = F.createBlock();
    BasicBlock *Join = F.createBlock();
    B.emitCondBranch(Cond, Then, Else);

    std::vector<VReg> SavedInt = IntScope, SavedFp = FpScope;

    B.setInsertBlock(Then);
    emitFragments(Budget);
    // Candidate merge values from this arm, one per class.
    VReg ThenInt = pickInt();
    VReg ThenFp = FpScope.empty() ? VReg() : pick(RegClass::FPR);
    B.emitBranch(Join);

    IntScope = SavedInt;
    FpScope = SavedFp;
    B.setInsertBlock(Else);
    emitFragments(Budget);
    VReg ElseInt = pickInt();
    VReg ElseFp = FpScope.empty() ? VReg() : pick(RegClass::FPR);
    B.emitBranch(Join);

    // Only dominating values stay in scope past the join; phi merges
    // reintroduce one value per class.
    IntScope = std::move(SavedInt);
    FpScope = std::move(SavedFp);
    B.setInsertBlock(Join);
    publish(B.emitPhi(RegClass::GPR, {ThenInt, ElseInt}));
    if (ThenFp.isValid() && ElseFp.isValid())
      publish(B.emitPhi(RegClass::FPR, {ThenFp, ElseFp}));
  }

  /// A counted do-while loop with an induction variable and accumulators.
  void emitLoop(unsigned Budget) {
    VReg Init = B.emitLoadImm(0);
    VReg Trip = B.emitLoadImm(
        2 + static_cast<std::int64_t>(R.nextBelow(6)));

    // Pre-pick accumulator initial values while still in the preheader:
    // pick() may have to materialize a constant, which must not land
    // between the header phis.
    std::vector<std::pair<RegClass, VReg>> AccInits;
    for (unsigned A = 0; A != P.Accumulators; ++A) {
      RegClass RC = rollClass();
      AccInits.push_back({RC, pick(RC)});
    }

    BasicBlock *Header = F.createBlock();
    BasicBlock *Exit = F.createBlock();
    B.emitBranch(Header);

    // Header phis: incoming use 0 is the preheader value; use 1 (the
    // latch value) is patched once the latch exists.
    B.setInsertBlock(Header);
    VReg Ind = B.emitPhi(RegClass::GPR, {Init, Init});
    unsigned IndPhiIdx = Header->size() - 1;

    std::vector<std::pair<VReg, unsigned>> AccPhis;
    for (auto &[RC, InitVal] : AccInits) {
      VReg Acc = B.emitPhi(RC, {InitVal, InitVal});
      AccPhis.push_back({Acc, Header->size() - 1});
      publish(Acc);
    }
    publish(Ind);

    ++LoopDepth;
    emitFragments(Budget);
    --LoopDepth;

    // Latch: update accumulators and the induction variable, then branch.
    for (auto &[Acc, PhiIdx] : AccPhis) {
      RegClass RC = F.regClass(Acc);
      VReg Next = B.emitBinary(Opcode::Add, Acc, pick(RC));
      Header->inst(PhiIdx).setUse(1, Next);
    }
    VReg IndNext = B.emitAddImm(Ind, 1);
    Header->inst(IndPhiIdx).setUse(1, IndNext);
    VReg Cond = B.emitCompare(Opcode::CmpLT, IndNext, Trip);
    B.emitCondBranch(Cond, Header, Exit);

    B.setInsertBlock(Exit);
    // The latch dominates the exit, so the current scope remains valid.
  }

  /// Emits \p Budget fragments at the insertion point.
  void emitFragments(unsigned Budget) {
    while (Budget > 0) {
      if (LoopDepth < P.MaxLoopDepth && Budget >= 6 &&
          R.roll(P.LoopPercent)) {
        emitLoop(Budget >= 12 ? 6 : Budget / 2);
        Budget -= 6;
        continue;
      }
      if (Budget >= 4 && R.roll(P.BranchPercent)) {
        emitDiamond(Budget >= 8 ? 3 : Budget / 2);
        Budget -= 4;
        continue;
      }
      if (R.roll(P.CallPercent)) {
        emitCallSite();
        Budget -= Budget >= 2 ? 2 : 1;
        continue;
      }
      if (R.roll(P.PairedLoadPercent)) {
        emitPairedLoadFragment();
        --Budget;
        continue;
      }
      if (R.roll(P.StorePercent)) {
        emitStoreFragment();
        --Budget;
        continue;
      }
      for (unsigned I = 0; I != P.OpsPerFragment; ++I)
        emitStraightOp();
      --Budget;
    }
  }

  void run() {
    BasicBlock *Entry = F.createBlock("entry");
    B.setInsertBlock(Entry);

    // Parameters arrive in pinned registers; copy them into ordinary
    // ranges immediately (the copies are coalescing fodder).
    unsigned NumParams = P.NumParams < T.maxParamRegs() ? P.NumParams
                                                        : T.maxParamRegs();
    for (unsigned I = 0; I != NumParams; ++I) {
      VReg Param =
          F.addParam(RegClass::GPR,
                     static_cast<int>(T.paramReg(RegClass::GPR, I)));
      publish(B.emitMove(Param));
    }

    // Long-lived pressure values.
    for (unsigned I = 0; I != P.PressureValues; ++I) {
      RegClass RC = rollClass();
      VReg V;
      if (RC == RegClass::GPR && !IntScope.empty() && R.roll(50))
        V = B.emitLoad(pickInt(), static_cast<std::int64_t>(I));
      else
        V = B.emitLoadImm(static_cast<std::int64_t>(R.nextBelow(1024)), RC);
      pressure(RC).push_back(V);
      publish(V);
    }

    emitFragments(P.FragmentBudget);

    // Fold the pressure values into the result so their ranges span the
    // whole function, store a value, and return.
    VReg Result = pickInt();
    for (VReg V : IntPressure)
      Result = B.emitBinary(Opcode::Add, Result, V);
    if (!FpPressure.empty()) {
      VReg FpSum = FpPressure.front();
      for (unsigned I = 1; I < FpPressure.size(); ++I)
        FpSum = B.emitBinary(Opcode::Add, FpSum, FpPressure[I]);
      VReg AsFlag = B.emitCompare(Opcode::CmpLT, FpSum, FpSum);
      Result = B.emitBinary(Opcode::Add, Result, AsFlag);
    }
    B.emitStore(Result, pickInt(), 7);
    VReg Ret = F.createPinnedVReg(
        RegClass::GPR, static_cast<int>(T.returnReg(RegClass::GPR)));
    B.emitMoveTo(Ret, Result);
    B.emitRet(Ret);
  }
};

} // namespace

std::unique_ptr<Function> pdgc::generateFunction(const GeneratorParams &P,
                                                 const TargetDesc &T) {
  auto F = std::make_unique<Function>(P.Name);
  Generator(P, T, *F).run();
  return F;
}
