//===- workloads/Figure7.h - The paper's running example --------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worked example of Figure 7: the sample loop (a), whose interference
/// graph (b), Register Preference Graph (c), simplification stack (d),
/// Coloring Precedence Graphs (e)/(f) and final assignment (g)/(h) the
/// paper walks through. Used by the figure-7 benchmark, an example program
/// and the exact-structure unit tests.
///
///   i0:      v0 = [arg0]
///   i1: L1:  v1 = [v0]        ; paired-load head
///   i2:      v2 = [v0+1]      ; paired-load mate
///   i3:      v3 = v0
///   i4:      v4 = v1 + v2
///   i5:      arg0' = v3
///   i6:      call f(arg0')
///   i7:      v0 = v4 + 1
///   i8:      if v0 != 0 goto L1
///   i9:      ret
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_WORKLOADS_FIGURE7_H
#define PDGC_WORKLOADS_FIGURE7_H

#include "ir/Function.h"
#include "machine/TargetDesc.h"

#include <memory>

namespace pdgc {

/// The registers of interest in the Figure 7 function.
struct Figure7Regs {
  VReg Arg0;    ///< Parameter, pinned to r0 (the paper's r1).
  VReg V0, V1, V2, V3, V4;
  VReg CallArg; ///< arg0' of i5/i6, pinned to r0.
};

/// Builds the Figure 7 function (no phis; v0 is multiply defined exactly
/// as in the paper's code).
std::unique_ptr<Function> makeFigure7Function(const TargetDesc &Target,
                                              Figure7Regs *Regs = nullptr);

/// The paper's machine for the example: three integer registers, r0 and r1
/// volatile (r0 doubles as the argument/return register), r2 non-volatile;
/// adjacent-register paired loads. Matches the paper's r1/r2/r3 up to
/// renaming.
TargetDesc makeFigure7Target();

} // namespace pdgc

#endif // PDGC_WORKLOADS_FIGURE7_H
