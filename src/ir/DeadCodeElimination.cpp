//===- ir/DeadCodeElimination.cpp - Dead code removal ------------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "ir/DeadCodeElimination.h"

#include "support/BitVector.h"

using namespace pdgc;

namespace {

/// An instruction with observable behaviour must stay regardless of
/// whether its result is used.
bool hasSideEffects(const Instruction &I) {
  switch (I.opcode()) {
  case Opcode::Store:
  case Opcode::SpillStore:
  case Opcode::Call:
  case Opcode::Branch:
  case Opcode::CondBranch:
  case Opcode::Ret:
    return true;
  default:
    return false;
  }
}

} // namespace

DceStats pdgc::eliminateDeadCode(Function &F) {
  DceStats Stats;
  const unsigned N = F.numVRegs();

  // Fixed point: a register is live if a side-effecting instruction uses
  // it, or a live definition uses it.
  BitVector LiveReg(N);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Stats.Iterations;
    for (unsigned B = 0, E = F.numBlocks(); B != E; ++B) {
      for (const Instruction &I : F.block(B)->instructions()) {
        bool Needed =
            hasSideEffects(I) || (I.hasDef() && LiveReg.test(I.def().id()));
        if (!Needed)
          continue;
        for (unsigned U = 0, UE = I.numUses(); U != UE; ++U) {
          if (!LiveReg.test(I.use(U).id())) {
            LiveReg.set(I.use(U).id());
            Changed = true;
          }
        }
      }
    }
  }

  // Parameters stay visible to callers of params() even if unused; their
  // defining "instruction" is the convention, not IR, so nothing to do.

  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B) {
    BasicBlock *BB = F.block(B);
    std::vector<Instruction> Kept;
    Kept.reserve(BB->size());
    for (Instruction &I : BB->instructions()) {
      bool Needed =
          hasSideEffects(I) || (I.hasDef() && LiveReg.test(I.def().id()));
      if (!Needed) {
        ++Stats.InstructionsRemoved;
        continue;
      }
      Kept.push_back(std::move(I));
    }
    BB->instructions() = std::move(Kept);

    // Deleting a pair mate (dead second load) breaks the candidate.
    for (unsigned I = 0, IE = BB->size(); I != IE; ++I) {
      Instruction &Head = BB->inst(I);
      if (Head.isPairHead() &&
          (I + 1 == IE || BB->inst(I + 1).opcode() != Opcode::Load))
        Head.setPairHead(false);
    }
  }
  return Stats;
}
