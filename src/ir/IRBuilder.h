//===- ir/IRBuilder.h - Convenience instruction emitter ---------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small builder that appends instructions to a current block and manages
/// CFG edges when terminators are emitted. Used by the examples, tests and
/// the workload generator.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_IR_IRBUILDER_H
#define PDGC_IR_IRBUILDER_H

#include "ir/Function.h"

namespace pdgc {

/// Appends instructions to a current insertion block.
class IRBuilder {
  Function &F;
  BasicBlock *BB = nullptr;

public:
  explicit IRBuilder(Function &Fn) : F(Fn) {}

  Function &function() { return F; }

  void setInsertBlock(BasicBlock *Block) { BB = Block; }
  BasicBlock *insertBlock() { return BB; }

  /// def = imm
  VReg emitLoadImm(std::int64_t Imm, RegClass RC = RegClass::GPR);

  /// def = src; returns def.
  VReg emitMove(VReg Src);

  /// dst = src with a caller-chosen destination (calling-convention glue).
  void emitMoveTo(VReg Dst, VReg Src);

  /// def = memory[base + offset]
  VReg emitLoad(VReg Base, std::int64_t Offset, RegClass RC = RegClass::GPR);

  /// def = memory[base + offset], marked narrow: the definition avoids a
  /// fixup only in the target's narrow-capable registers (Section 3.1,
  /// limited register usage).
  VReg emitNarrowLoad(VReg Base, std::int64_t Offset,
                      RegClass RC = RegClass::GPR);

  /// Emits two loads off the same base at \p Offset and \p Offset + 1 and
  /// marks them as a paired-load candidate. Returns both defined registers.
  std::pair<VReg, VReg> emitPairedLoad(VReg Base, std::int64_t Offset,
                                       RegClass RC = RegClass::GPR);

  /// memory[base + offset] = value
  void emitStore(VReg Value, VReg Base, std::int64_t Offset);

  /// def = lhs <op> rhs for Add/Sub/Mul.
  VReg emitBinary(Opcode Op, VReg LHS, VReg RHS);

  /// def = src + imm
  VReg emitAddImm(VReg Src, std::int64_t Imm);

  /// def = (lhs < rhs) or (lhs == rhs); def is a GPR.
  VReg emitCompare(Opcode Op, VReg LHS, VReg RHS);

  /// Unconditional branch; declares the CFG edge.
  void emitBranch(BasicBlock *Target);

  /// Conditional branch; declares both CFG edges (taken first).
  void emitCondBranch(VReg Cond, BasicBlock *Taken, BasicBlock *NotTaken);

  /// call callee(args...); \p Args and \p Ret must be pinned registers (or
  /// Ret invalid for a void call).
  void emitCall(unsigned Callee, const std::vector<VReg> &Args, VReg Ret);

  /// Function return; \p Value must be a pinned register or invalid.
  void emitRet(VReg Value = VReg());

  /// def = phi(incoming...); must precede all non-phi instructions of the
  /// block; \p Incoming is parallel to the block's final predecessor list.
  VReg emitPhi(RegClass RC, const std::vector<VReg> &Incoming);
};

} // namespace pdgc

#endif // PDGC_IR_IRBUILDER_H
