//===- ir/Function.h - IR function ------------------------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A function of the register-transfer IR: a CFG of basic blocks plus the
/// virtual-register table. Virtual registers carry their register class, an
/// optional pinning to a physical register (used for calling-convention
/// glue: parameter, argument and return registers), and a spill-temp marker.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_IR_FUNCTION_H
#define PDGC_IR_FUNCTION_H

#include "ir/BasicBlock.h"
#include "ir/VReg.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace pdgc {

/// Per-virtual-register attributes.
struct VRegInfo {
  RegClass Class = RegClass::GPR;
  /// Physical register this virtual register is pinned to, or -1. Pinned
  /// registers become precolored interference-graph nodes; they model the
  /// paper's "dedicated register usage" (parameters, returns).
  int PinnedReg = -1;
  /// True for the short-lived fragments created by spill-code insertion;
  /// they get effectively infinite spill cost so a spilled value is never
  /// re-spilled indefinitely.
  bool SpillTemp = false;
  /// A block-granular spill fragment: long enough that re-spilling it
  /// (which downgrades it to per-use fragments) is still legal and
  /// strictly shrinks live ranges, so it stays a spill candidate.
  bool RespillableTemp = false;

  bool isPinned() const { return PinnedReg >= 0; }
};

/// A function: CFG, virtual-register table, and parameter list.
class Function {
  std::string Name;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  std::vector<VRegInfo> VRegs;
  /// Pinned virtual registers holding the incoming parameters, in argument
  /// order. They are live from the function entry until copied into
  /// ordinary virtual registers.
  std::vector<VReg> Params;
  unsigned NextBlockId = 0;

public:
  explicit Function(std::string NameIn) : Name(std::move(NameIn)) {}

  Function(const Function &) = delete;
  Function &operator=(const Function &) = delete;

  const std::string &name() const { return Name; }

  //===--------------------------------------------------------------------===
  // Blocks
  //===--------------------------------------------------------------------===

  /// Creates a new block appended to the block list. The first block
  /// created is the entry block.
  BasicBlock *createBlock(const std::string &BlockName = "");

  unsigned numBlocks() const { return static_cast<unsigned>(Blocks.size()); }
  BasicBlock *block(unsigned I) {
    assert(I < Blocks.size() && "block index out of range");
    return Blocks[I].get();
  }
  const BasicBlock *block(unsigned I) const {
    assert(I < Blocks.size() && "block index out of range");
    return Blocks[I].get();
  }
  BasicBlock *entry() {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front().get();
  }
  const BasicBlock *entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front().get();
  }

  /// Declares the successor edges of \p BB (called once, when its
  /// terminator is appended) and registers \p BB as predecessor of each.
  void setEdges(BasicBlock *BB, const std::vector<BasicBlock *> &Succs);

  /// Splits the CFG edge \p From -> \p To by inserting a fresh block with
  /// an unconditional branch. \p To's predecessor slot (and therefore its
  /// phi-operand indexing) is updated in place. Returns the new block.
  BasicBlock *splitEdge(BasicBlock *From, BasicBlock *To);

  /// Replaces \p BB's predecessor order with \p Order (a permutation of
  /// the current list). Phi operands index the predecessor list, so the
  /// textual parser uses this to restore the annotated order.
  void reorderPredecessors(BasicBlock *BB,
                           const std::vector<BasicBlock *> &Order);

  /// Returns block ids in reverse post order from the entry; unreachable
  /// blocks are appended at the end in id order so analyses still cover
  /// them.
  std::vector<unsigned> reversePostOrder() const;

  //===--------------------------------------------------------------------===
  // Virtual registers
  //===--------------------------------------------------------------------===

  /// Creates a fresh virtual register of class \p RC.
  VReg createVReg(RegClass RC);

  /// Creates a virtual register pinned to physical register \p PhysReg.
  VReg createPinnedVReg(RegClass RC, int PhysReg);

  unsigned numVRegs() const { return static_cast<unsigned>(VRegs.size()); }

  const VRegInfo &vregInfo(VReg R) const {
    assert(R.isValid() && R.id() < VRegs.size() && "invalid vreg");
    return VRegs[R.id()];
  }
  VRegInfo &vregInfo(VReg R) {
    assert(R.isValid() && R.id() < VRegs.size() && "invalid vreg");
    return VRegs[R.id()];
  }

  RegClass regClass(VReg R) const { return vregInfo(R).Class; }
  bool isPinned(VReg R) const { return vregInfo(R).isPinned(); }
  int pinnedReg(VReg R) const { return vregInfo(R).PinnedReg; }
  bool isSpillTemp(VReg R) const { return vregInfo(R).SpillTemp; }
  bool isRespillableTemp(VReg R) const {
    return vregInfo(R).RespillableTemp;
  }

  /// Marks \p R as a spill-code fragment; \p Respillable for the longer
  /// block-granular fragments that may legally be spilled again.
  void markSpillTemp(VReg R, bool Respillable = false) {
    vregInfo(R).SpillTemp = true;
    vregInfo(R).RespillableTemp = Respillable;
  }

  //===--------------------------------------------------------------------===
  // Parameters
  //===--------------------------------------------------------------------===

  /// Appends a parameter: a virtual register pinned to \p PhysReg that is
  /// live-in at the entry block.
  VReg addParam(RegClass RC, int PhysReg);

  /// Registers an existing pinned virtual register as a parameter (used by
  /// the textual parser, which creates registers before it knows their
  /// roles).
  void registerParam(VReg R) {
    assert(isPinned(R) && "parameters must be pinned");
    Params.push_back(R);
  }

  const std::vector<VReg> &params() const { return Params; }
  unsigned numParams() const { return static_cast<unsigned>(Params.size()); }

  //===--------------------------------------------------------------------===
  // Whole-body exchange
  //===--------------------------------------------------------------------===

  /// Swaps the entire contents (blocks, registers, parameters, name) with
  /// \p Other. The fallback-chain driver allocates on a clone and swaps the
  /// winning clone in, so a failed tier never leaves this function
  /// half-rewritten. Invalidates BasicBlock pointers held by callers.
  void swapWith(Function &Other) {
    std::swap(Name, Other.Name);
    Blocks.swap(Other.Blocks);
    VRegs.swap(Other.VRegs);
    Params.swap(Other.Params);
    std::swap(NextBlockId, Other.NextBlockId);
  }
};

} // namespace pdgc

#endif // PDGC_IR_FUNCTION_H
