//===- ir/DeadCodeElimination.h - Dead code removal -------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Removes side-effect-free instructions whose results are never used.
/// The paper's JIT runs "many advanced optimizations" before register
/// allocation (Section 6); this pass is the slice of that pipeline that
/// matters for allocation studies — dead definitions still occupy
/// registers at their definition point and distort pressure, so
/// experiments comparing allocators should run it first when the input
/// comes from a source (like the workload generator) that can leave
/// unused values behind.
///
/// Stores, spill stores, calls, and terminators are roots (kept
/// unconditionally); everything reachable from their uses stays; phis
/// participate in the usual fixed point.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_IR_DEADCODEELIMINATION_H
#define PDGC_IR_DEADCODEELIMINATION_H

#include "ir/Function.h"

namespace pdgc {

/// Statistics from one DCE run.
struct DceStats {
  unsigned InstructionsRemoved = 0;
  unsigned Iterations = 0;
};

/// Deletes dead instructions from \p F (works on SSA and phi-free IR
/// alike). Returns statistics.
DceStats eliminateDeadCode(Function &F);

} // namespace pdgc

#endif // PDGC_IR_DEADCODEELIMINATION_H
