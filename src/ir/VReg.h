//===- ir/VReg.h - Virtual register handle ----------------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A typed handle for virtual registers. After the renaming phase every
/// virtual register corresponds to exactly one live range, so the allocators
/// use VReg ids directly as live-range ids.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_IR_VREG_H
#define PDGC_IR_VREG_H

#include <cstdint>
#include <functional>

namespace pdgc {

/// Register class of a virtual or physical register.
enum class RegClass : std::uint8_t {
  GPR, ///< General-purpose (integer) registers.
  FPR, ///< Floating-point registers.
};

/// Returns "gpr" or "fpr".
inline const char *regClassName(RegClass RC) {
  return RC == RegClass::GPR ? "gpr" : "fpr";
}

/// Lightweight handle identifying a virtual register within a Function.
class VReg {
  unsigned Id;

public:
  /// Constructs the invalid sentinel handle.
  VReg() : Id(~0u) {}
  explicit VReg(unsigned IdIn) : Id(IdIn) {}

  bool isValid() const { return Id != ~0u; }
  unsigned id() const { return Id; }

  friend bool operator==(VReg A, VReg B) { return A.Id == B.Id; }
  friend bool operator!=(VReg A, VReg B) { return A.Id != B.Id; }
  friend bool operator<(VReg A, VReg B) { return A.Id < B.Id; }
};

} // namespace pdgc

template <> struct std::hash<pdgc::VReg> {
  size_t operator()(pdgc::VReg R) const noexcept {
    return std::hash<unsigned>()(R.id());
  }
};

#endif // PDGC_IR_VREG_H
