//===- ir/Verifier.h - IR structural checks ---------------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural well-formedness checks for IR functions. The verifier runs in
/// tests after every transformation (phi elimination, spill insertion,
/// rewriting) to catch malformed IR early.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_IR_VERIFIER_H
#define PDGC_IR_VERIFIER_H

#include "ir/Function.h"

#include <string>
#include <vector>

namespace pdgc {

/// Checks \p F for structural errors and appends human-readable messages to
/// \p Errors. Returns true when no errors were found.
///
/// Checked invariants:
///  * every block ends with exactly one terminator, and no terminator
///    appears earlier;
///  * Branch/CondBranch successor counts match the edge lists, Ret has none;
///  * predecessor/successor lists are mutually consistent;
///  * phis appear only at the start of a block and have one incoming value
///    per predecessor;
///  * every use refers to a created virtual register of a compatible class
///    (compares/conditions are GPRs, operand classes agree);
///  * call arguments / returns and Ret values are pinned registers;
///  * two pinned registers mapped to the same physical register are never
///    simultaneously live (checked structurally: no block defines one while
///    the other is live — left to the interference builder, which asserts).
bool verifyFunction(const Function &F, std::vector<std::string> &Errors);

/// Convenience wrapper that aborts with the first error message.
void verifyFunctionOrAbort(const Function &F);

} // namespace pdgc

#endif // PDGC_IR_VERIFIER_H
