//===- ir/PhiElimination.cpp - SSA lowering to copies ----------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "ir/PhiElimination.h"

#include "support/Debug.h"

using namespace pdgc;

bool pdgc::hasPhis(const Function &F) {
  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B)
    for (const Instruction &I : F.block(B)->instructions())
      if (I.isPhi())
        return true;
  return false;
}

PhiEliminationStats pdgc::eliminatePhis(Function &F) {
  PhiEliminationStats Stats;

  // Split critical edges into blocks that contain phis, so that the
  // per-predecessor copies execute only on the corresponding edge.
  // Iterate over a snapshot: splitting appends new blocks.
  unsigned NumOriginalBlocks = F.numBlocks();
  for (unsigned B = 0; B != NumOriginalBlocks; ++B) {
    BasicBlock *BB = F.block(B);
    bool HasPhi = !BB->empty() && BB->inst(0).isPhi();
    if (!HasPhi || BB->numPredecessors() < 2)
      continue;
    // Copy the predecessor list: splitEdge rewrites it in place.
    std::vector<BasicBlock *> Preds = BB->predecessors();
    for (BasicBlock *Pred : Preds) {
      if (Pred->numSuccessors() < 2)
        continue;
      F.splitEdge(Pred, BB);
      ++Stats.EdgesSplit;
    }
  }

  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B) {
    BasicBlock *BB = F.block(B);
    if (BB->empty() || !BB->inst(0).isPhi())
      continue;

    unsigned NumPhis = 0;
    while (NumPhis < BB->size() && BB->inst(NumPhis).isPhi())
      ++NumPhis;

    // Give each phi a shuttle register and patch the predecessors.
    std::vector<VReg> Shuttles(NumPhis);
    for (unsigned P = 0; P != NumPhis; ++P) {
      const Instruction &Phi = BB->inst(P);
      assert(Phi.numUses() == BB->numPredecessors() &&
             "phi operands must match predecessors");
      Shuttles[P] = F.createVReg(F.regClass(Phi.def()));
    }

    const std::vector<BasicBlock *> &Preds = BB->predecessors();
    for (unsigned PredIdx = 0, NP = Preds.size(); PredIdx != NP; ++PredIdx) {
      BasicBlock *Pred = Preds[PredIdx];
      assert(Pred->hasTerminator() && "predecessor lacks a terminator");
      // After critical-edge splitting every predecessor of a phi block has
      // this block as its only successor, so copies before the terminator
      // execute exactly on this edge.
      assert((Pred->numSuccessors() == 1 || BB->numPredecessors() == 1) &&
             "critical edge survived splitting");
      unsigned InsertAt = Pred->size() - 1;
      for (unsigned P = 0; P != NumPhis; ++P) {
        VReg Src = BB->inst(P).use(PredIdx);
        Pred->insertBefore(InsertAt++,
                           Instruction(Opcode::Move, Shuttles[P], {Src}));
        ++Stats.CopiesInserted;
      }
    }

    // Replace each phi with `def = move shuttle`.
    for (unsigned P = 0; P != NumPhis; ++P) {
      Instruction &Phi = BB->inst(P);
      VReg Def = Phi.def();
      Phi = Instruction(Opcode::Move, Def, {Shuttles[P]});
      ++Stats.PhisLowered;
      ++Stats.CopiesInserted;
    }
  }
  return Stats;
}
