//===- ir/Opcode.h - Instruction opcodes ------------------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The opcode set of the PDGC register-transfer IR. It is intentionally
/// small: just enough to express the live-range structure the paper's
/// allocators consume — straight-line arithmetic, loads/stores (including
/// paired-load candidates), copies produced by SSA phi lowering and by
/// calling-convention glue, calls, and control flow.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_IR_OPCODE_H
#define PDGC_IR_OPCODE_H

namespace pdgc {

/// Opcodes of the register-transfer IR.
enum class Opcode {
  LoadImm,    ///< def = imm
  Move,       ///< def = use0 (register-to-register copy)
  Load,       ///< def = memory[use0 + imm]
  Store,      ///< memory[use1 + imm] = use0
  Add,        ///< def = use0 + use1
  Sub,        ///< def = use0 - use1
  Mul,        ///< def = use0 * use1
  AddImm,     ///< def = use0 + imm
  CmpLT,      ///< def = (use0 < use1) ? 1 : 0, def is always GPR
  CmpEQ,      ///< def = (use0 == use1) ? 1 : 0, def is always GPR
  Branch,     ///< unconditional jump to successor 0
  CondBranch, ///< if (use0 != 0) goto successor 0 else successor 1
  Call,       ///< call external function `imm`; uses pinned argument
              ///< registers, optionally defines a pinned return register
  Ret,        ///< function return; optionally uses the pinned return value
  Phi,        ///< SSA merge: def = value of use_i when entered from pred i
  SpillLoad,  ///< def = stack_slot[imm]; inserted by the spiller
  SpillStore, ///< stack_slot[imm] = use0; inserted by the spiller
};

/// Returns a stable mnemonic for \p Op ("add", "phi", ...).
const char *opcodeName(Opcode Op);

/// Returns true if \p Op terminates a basic block.
inline bool isTerminator(Opcode Op) {
  return Op == Opcode::Branch || Op == Opcode::CondBranch || Op == Opcode::Ret;
}

/// Returns true if \p Op may define a register.
inline bool opcodeMayDefine(Opcode Op) {
  switch (Op) {
  case Opcode::Store:
  case Opcode::Branch:
  case Opcode::CondBranch:
  case Opcode::Ret:
  case Opcode::SpillStore:
    return false;
  case Opcode::LoadImm:
  case Opcode::Move:
  case Opcode::Load:
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::AddImm:
  case Opcode::CmpLT:
  case Opcode::CmpEQ:
  case Opcode::Call:
  case Opcode::Phi:
  case Opcode::SpillLoad:
    return true;
  }
  return false;
}

/// Returns the fixed number of register uses of \p Op, or -1 when variable
/// (Phi takes one use per predecessor, Call one per pinned argument, Ret
/// zero or one).
inline int opcodeNumUses(Opcode Op) {
  switch (Op) {
  case Opcode::LoadImm:
  case Opcode::Branch:
  case Opcode::SpillLoad:
    return 0;
  case Opcode::Move:
  case Opcode::Load:
  case Opcode::AddImm:
  case Opcode::CondBranch:
  case Opcode::SpillStore:
    return 1;
  case Opcode::Store:
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::CmpLT:
  case Opcode::CmpEQ:
    return 2;
  case Opcode::Call:
  case Opcode::Ret:
  case Opcode::Phi:
    return -1;
  }
  return -1;
}

} // namespace pdgc

#endif // PDGC_IR_OPCODE_H
