//===- ir/PhiElimination.h - SSA lowering to copies -------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers SSA phi functions to register-to-register copies. The paper's
/// motivating observation (Section 1) is that a naive SSA-lowered program
/// contains many such copies, and a good register selection — coalescing in
/// the baselines, coalesce preferences in the preference-directed allocator
/// — must remove them. This pass is therefore the source of most of the
/// copy-related live ranges the allocators compete on.
///
/// Lowering scheme (safe for the lost-copy and swap problems):
///  * critical edges are split;
///  * each phi `d = phi(a_1..a_n)` gets a fresh shuttle register `d'`;
///    every predecessor `i` receives `d' = move a_i` before its terminator
///    (the shuttles are fresh names, never phi sources, so the batch of
///    copies at a predecessor forms a trivially serializable parallel copy);
///  * the phi is replaced by `d = move d'` at the head of its block.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_IR_PHIELIMINATION_H
#define PDGC_IR_PHIELIMINATION_H

#include "ir/Function.h"

namespace pdgc {

/// Statistics returned by phi elimination.
struct PhiEliminationStats {
  unsigned PhisLowered = 0;
  unsigned CopiesInserted = 0;
  unsigned EdgesSplit = 0;
};

/// Rewrites every phi in \p F into copies. Returns statistics.
PhiEliminationStats eliminatePhis(Function &F);

/// Returns true if \p F contains any phi instruction.
bool hasPhis(const Function &F);

} // namespace pdgc

#endif // PDGC_IR_PHIELIMINATION_H
