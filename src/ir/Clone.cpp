//===- ir/Clone.cpp - Deep function copy -----------------------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "ir/Clone.h"

using namespace pdgc;

std::unique_ptr<Function> pdgc::cloneFunction(const Function &F) {
  auto Copy = std::make_unique<Function>(F.name());

  // Virtual registers, attributes included.
  for (unsigned V = 0, E = F.numVRegs(); V != E; ++V) {
    VReg R = Copy->createVReg(RegClass::GPR);
    Copy->vregInfo(R) = F.vregInfo(VReg(V));
  }
  for (VReg P : F.params())
    Copy->registerParam(P);

  // Blocks in id order, so ids match. Instructions are value types.
  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B) {
    const BasicBlock *BB = F.block(B);
    BasicBlock *NewBB = Copy->createBlock(BB->name());
    for (const Instruction &I : BB->instructions())
      NewBB->append(I);
  }

  // Edges in id order, then restore each block's predecessor ordering
  // (phi operands are parallel to it).
  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B) {
    const BasicBlock *BB = F.block(B);
    if (BB->successors().empty())
      continue;
    std::vector<BasicBlock *> Succs;
    for (const BasicBlock *S : BB->successors())
      Succs.push_back(Copy->block(S->id()));
    Copy->setEdges(Copy->block(B), Succs);
  }
  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B) {
    const BasicBlock *BB = F.block(B);
    if (BB->numPredecessors() < 2)
      continue;
    std::vector<BasicBlock *> Order;
    for (const BasicBlock *P : BB->predecessors())
      Order.push_back(Copy->block(P->id()));
    Copy->reorderPredecessors(Copy->block(B), Order);
  }
  return Copy;
}
