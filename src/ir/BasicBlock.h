//===- ir/BasicBlock.h - Basic block ----------------------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A basic block: a label, an instruction list whose last entry is the
/// terminator, and explicit successor edges. Predecessor lists are
/// maintained by Function when edges change.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_IR_BASICBLOCK_H
#define PDGC_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <string>
#include <vector>

namespace pdgc {

class Function;

/// A basic block of the register-transfer IR.
class BasicBlock {
  friend class Function;

  unsigned Id;
  std::string Name;
  std::vector<Instruction> Insts;
  std::vector<BasicBlock *> Succs;
  std::vector<BasicBlock *> Preds;

  BasicBlock(unsigned IdIn, std::string NameIn)
      : Id(IdIn), Name(std::move(NameIn)) {}

public:
  unsigned id() const { return Id; }
  const std::string &name() const { return Name; }

  std::vector<Instruction> &instructions() { return Insts; }
  const std::vector<Instruction> &instructions() const { return Insts; }

  bool empty() const { return Insts.empty(); }
  unsigned size() const { return static_cast<unsigned>(Insts.size()); }

  Instruction &inst(unsigned I) {
    assert(I < Insts.size() && "instruction index out of range");
    return Insts[I];
  }
  const Instruction &inst(unsigned I) const {
    assert(I < Insts.size() && "instruction index out of range");
    return Insts[I];
  }

  /// Appends an instruction. Nothing may follow a terminator.
  void append(Instruction I) {
    assert((Insts.empty() || !Insts.back().isTerminatorInst()) &&
           "appending past a terminator");
    Insts.push_back(std::move(I));
  }

  /// Inserts \p I before position \p Pos.
  void insertBefore(unsigned Pos, Instruction I) {
    assert(Pos <= Insts.size() && "insert position out of range");
    Insts.insert(Insts.begin() + Pos, std::move(I));
  }

  /// Returns true when the block ends in a terminator.
  bool hasTerminator() const {
    return !Insts.empty() && Insts.back().isTerminatorInst();
  }

  /// Returns the terminator; the block must have one.
  const Instruction &terminator() const {
    assert(hasTerminator() && "block has no terminator");
    return Insts.back();
  }

  const std::vector<BasicBlock *> &successors() const { return Succs; }
  const std::vector<BasicBlock *> &predecessors() const { return Preds; }

  unsigned numSuccessors() const {
    return static_cast<unsigned>(Succs.size());
  }
  unsigned numPredecessors() const {
    return static_cast<unsigned>(Preds.size());
  }

  /// Returns the index of \p Pred in the predecessor list; the block must
  /// actually be a predecessor. Phi uses are parallel to this list.
  unsigned predecessorIndex(const BasicBlock *Pred) const {
    for (unsigned I = 0, E = Preds.size(); I != E; ++I)
      if (Preds[I] == Pred)
        return I;
    pdgc_unreachable("block is not a predecessor");
  }
};

} // namespace pdgc

#endif // PDGC_IR_BASICBLOCK_H
