//===- ir/IRPrinter.h - Textual IR dump -------------------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders functions and instructions as text, e.g.
///
///   func @sample(v0)
///   bb0:                                  ; preds:
///     v1 = load v0, 0
///     br bb1
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_IR_IRPRINTER_H
#define PDGC_IR_IRPRINTER_H

#include "ir/Function.h"

#include <string>

namespace pdgc {

/// Returns "vN" for ordinary registers and "vN(pinned:rK)" for pinned ones.
std::string printVReg(const Function &F, VReg R);

/// Returns a one-line rendering of \p I.
std::string printInstruction(const Function &F, const Instruction &I);

/// Returns the full textual form of \p F.
std::string printFunction(const Function &F);

} // namespace pdgc

#endif // PDGC_IR_IRPRINTER_H
