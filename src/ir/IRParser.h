//===- ir/IRParser.h - Textual IR parser ------------------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual form produced by ir/IRPrinter.h back into a
/// Function, so that test cases and the pdgc-alloc command-line tool can
/// work from readable fixtures. The grammar is exactly the printer's
/// output:
///
///   func @name(v0(pinned:r0), v1(pinned:r1))
///   entry:    ; preds: ...            <- predecessor comments are ignored
///     v2 = move v0(pinned:r0)
///     v3 = load v2, 0  ; pair-head
///     v4 = load v2, 1
///     condbr v3  -> loop exit
///   ...
///
/// Register classes come from the `f` suffix of register tokens (`v5f` is
/// an FPR); pinnings from the `(pinned:rK)` annotation; parameters from
/// the func-line list. `; pair-head`, `; spill` and `; narrow`
/// annotations restore the corresponding instruction flags.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_IR_IRPARSER_H
#define PDGC_IR_IRPARSER_H

#include "ir/Function.h"

#include <memory>
#include <string>

namespace pdgc {

/// Parses \p Text. On success returns the function; on failure returns
/// null and sets \p Error to a message with a line number.
std::unique_ptr<Function> parseFunction(const std::string &Text,
                                        std::string &Error);

} // namespace pdgc

#endif // PDGC_IR_IRPARSER_H
