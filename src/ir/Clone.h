//===- ir/Clone.h - Deep function copy --------------------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural deep copy of a Function. The fallback-chain driver allocates
/// each tier on a fresh clone so a failed tier cannot leave the caller's
/// function half-rewritten, and the differential fuzzer allocates the same
/// input with every registered allocator.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_IR_CLONE_H
#define PDGC_IR_CLONE_H

#include "ir/Function.h"

#include <memory>

namespace pdgc {

/// Returns a structurally identical copy of \p F: same block names and
/// ids, same instructions (flags included), same virtual-register table
/// (classes, pins, spill-temp markers), same parameter list, and the same
/// predecessor ordering (phi operands stay aligned).
std::unique_ptr<Function> cloneFunction(const Function &F);

} // namespace pdgc

#endif // PDGC_IR_CLONE_H
