//===- ir/IRParser.cpp - Textual IR parser -----------------------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "ir/IRParser.h"

#include "support/Debug.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <limits>
#include <map>
#include <sstream>
#include <vector>

using namespace pdgc;

namespace {

/// A parsed operand: a register token or an integer immediate.
struct Operand {
  bool IsReg = false;
  VReg Reg;
  std::int64_t Imm = 0;
};

/// Largest register id the parser accepts. Malformed or adversarial input
/// (the fuzzer's bread and butter) must not be able to request a
/// multi-gigabyte register table via `v99999999999`.
constexpr unsigned MaxVRegId = 1u << 20;

/// Parses the decimal digits starting at \p Pos into \p Out without ever
/// throwing; advances \p Pos past them. Fails on no digits or overflow of
/// \p Max.
bool parseDigits(const std::string &S, size_t &Pos, std::uint64_t Max,
                 std::uint64_t &Out) {
  size_t Start = Pos;
  std::uint64_t V = 0;
  while (Pos < S.size() && std::isdigit(static_cast<unsigned char>(S[Pos]))) {
    unsigned D = static_cast<unsigned>(S[Pos] - '0');
    if (V > (Max - D) / 10)
      return false;
    V = V * 10 + D;
    ++Pos;
  }
  if (Pos == Start)
    return false;
  Out = V;
  return true;
}

class Parser {
  std::vector<std::string> Lines;
  std::unique_ptr<Function> F;
  std::map<std::string, BasicBlock *> BlocksByName;
  /// Successor names per block id, filled when terminators are parsed.
  /// Keyed by id so edge creation order is deterministic.
  std::map<unsigned, std::vector<std::string>> SuccNames;
  /// Predecessor names per block id from the header comments, used to
  /// restore the phi-relevant ordering.
  std::map<unsigned, std::vector<std::string>> PredNames;
  std::string Error;
  unsigned LineNo = 0;
  /// Register ids whose class annotation has been seen; a later token
  /// naming a different class is a conflict, not a silent overwrite.
  std::vector<char> SeenClass;

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = "line " + std::to_string(LineNo) + ": " + Msg;
    return false;
  }

  static std::string trim(const std::string &S) {
    size_t B = S.find_first_not_of(" \t\r");
    if (B == std::string::npos)
      return "";
    size_t E = S.find_last_not_of(" \t\r");
    return S.substr(B, E - B + 1);
  }

  /// Ensures register id \p Id exists with the given class (and optional
  /// pin). Conflicting annotations are an error.
  bool ensureVReg(unsigned Id, RegClass RC, int Pin) {
    while (F->numVRegs() <= Id) {
      F->createVReg(RegClass::GPR);
      SeenClass.push_back(0);
    }
    if (SeenClass.size() < F->numVRegs())
      SeenClass.resize(F->numVRegs(), 0);
    VRegInfo &Info = F->vregInfo(VReg(Id));
    if (SeenClass[Id] && Info.Class != RC)
      return fail("conflicting register class for v" + std::to_string(Id));
    SeenClass[Id] = 1;
    Info.Class = RC;
    if (Pin >= 0) {
      if (Info.PinnedReg >= 0 && Info.PinnedReg != Pin)
        return fail("conflicting pin for v" + std::to_string(Id));
      Info.PinnedReg = Pin;
    }
    return true;
  }

  /// Parses a register token `v<id>[(pinned:r<k>)][f]` starting at \p Pos
  /// of \p S; advances \p Pos past it.
  bool parseVReg(const std::string &S, size_t &Pos, VReg &Out) {
    if (Pos >= S.size() || S[Pos] != 'v')
      return fail("expected register token in '" + S + "'");
    size_t P = Pos + 1;
    std::uint64_t Id64 = 0;
    if (!parseDigits(S, P, MaxVRegId, Id64))
      return fail("malformed or out-of-range register token in '" + S + "'");
    unsigned Id = static_cast<unsigned>(Id64);
    int Pin = -1;
    if (S.compare(P, 9, "(pinned:r") == 0) {
      size_t Close = S.find(')', P);
      if (Close == std::string::npos)
        return fail("unterminated pin annotation");
      size_t PinPos = P + 9;
      std::uint64_t Pin64 = 0;
      if (!parseDigits(S, PinPos, 100000, Pin64) || PinPos != Close)
        return fail("malformed pin annotation in '" + S + "'");
      Pin = static_cast<int>(Pin64);
      P = Close + 1;
    }
    RegClass RC = RegClass::GPR;
    if (P < S.size() && S[P] == 'f') {
      RC = RegClass::FPR;
      ++P;
    }
    if (!ensureVReg(Id, RC, Pin))
      return false;
    Out = VReg(Id);
    Pos = P;
    return true;
  }

  /// Splits a comma-separated operand list (registers and integers).
  bool parseOperands(const std::string &S, std::vector<Operand> &Ops,
                     int &Callee) {
    std::string Rest = trim(S);
    while (!Rest.empty()) {
      if (Rest[0] == '@') {
        if (Rest.compare(0, 2, "@f") != 0)
          return fail("malformed callee token '" + Rest + "'");
        size_t Pos = 2;
        std::uint64_t Callee64 = 0;
        if (!parseDigits(Rest, Pos, 1u << 30, Callee64) ||
            (Pos < Rest.size() && Rest[Pos] != ',' && Rest[Pos] != ' '))
          return fail("malformed callee token '" + Rest + "'");
        Callee = static_cast<int>(Callee64);
        size_t Comma = Rest.find(',');
        Rest = Comma == std::string::npos ? "" : trim(Rest.substr(Comma + 1));
        continue;
      }
      if (Rest[0] == 'v') {
        Operand Op;
        Op.IsReg = true;
        size_t Pos = 0;
        if (!parseVReg(Rest, Pos, Op.Reg))
          return false;
        Ops.push_back(Op);
        Rest = trim(Rest.substr(Pos));
      } else if (Rest[0] == '-' ||
                 std::isdigit(static_cast<unsigned char>(Rest[0]))) {
        Operand Op;
        bool Negative = Rest[0] == '-';
        size_t Pos = Negative ? 1 : 0;
        std::uint64_t Mag = 0;
        if (!parseDigits(Rest, Pos,
                         static_cast<std::uint64_t>(
                             std::numeric_limits<std::int64_t>::max()),
                         Mag))
          return fail("malformed or out-of-range immediate in '" + Rest +
                      "'");
        Op.Imm = Negative ? -static_cast<std::int64_t>(Mag)
                          : static_cast<std::int64_t>(Mag);
        Ops.push_back(Op);
        Rest = trim(Rest.substr(Pos));
      } else {
        return fail("unexpected operand text '" + Rest + "'");
      }
      if (!Rest.empty()) {
        if (Rest[0] == ',')
          Rest = trim(Rest.substr(1));
        else if (Rest[0] != '@') // The callee token follows a space.
          return fail("expected ',' in operand list at '" + Rest + "'");
      }
    }
    return true;
  }

  static Opcode *opcodeByName(const std::string &Name) {
    static std::map<std::string, Opcode> Table = {
        {"loadimm", Opcode::LoadImm},   {"move", Opcode::Move},
        {"load", Opcode::Load},         {"store", Opcode::Store},
        {"add", Opcode::Add},           {"sub", Opcode::Sub},
        {"mul", Opcode::Mul},           {"addimm", Opcode::AddImm},
        {"cmplt", Opcode::CmpLT},       {"cmpeq", Opcode::CmpEQ},
        {"br", Opcode::Branch},         {"condbr", Opcode::CondBranch},
        {"call", Opcode::Call},         {"ret", Opcode::Ret},
        {"phi", Opcode::Phi},           {"spillload", Opcode::SpillLoad},
        {"spillstore", Opcode::SpillStore}};
    auto It = Table.find(Name);
    return It == Table.end() ? nullptr : &It->second;
  }

  bool parseInstruction(BasicBlock *BB, std::string Body) {
    // Flags ride in the comment tail.
    bool PairHead = false, Spill = false, Narrow = false;
    if (size_t C = Body.find("  ;"); C != std::string::npos) {
      std::string Comment = Body.substr(C);
      PairHead = Comment.find("pair-head") != std::string::npos;
      Spill = Comment.find("; spill") != std::string::npos;
      Narrow = Comment.find("narrow") != std::string::npos;
      Body = trim(Body.substr(0, C));
    }

    // Successor names after "->".
    std::vector<std::string> Succs;
    if (size_t Arrow = Body.find("->"); Arrow != std::string::npos) {
      std::istringstream SS(Body.substr(Arrow + 2));
      std::string Name;
      while (SS >> Name)
        Succs.push_back(Name);
      Body = trim(Body.substr(0, Arrow));
    }

    // Optional "def = ".
    VReg Def;
    if (size_t Eq = Body.find(" = "); Eq != std::string::npos) {
      size_t Pos = 0;
      std::string DefTok = trim(Body.substr(0, Eq));
      if (!parseVReg(DefTok, Pos, Def) || Pos != DefTok.size())
        return fail("malformed definition '" + DefTok + "'");
      Body = trim(Body.substr(Eq + 3));
    }

    size_t Space = Body.find_first_of(" \t");
    std::string OpName =
        Space == std::string::npos ? Body : Body.substr(0, Space);
    std::string Tail =
        Space == std::string::npos ? "" : trim(Body.substr(Space));
    Opcode *Op = opcodeByName(OpName);
    if (!Op)
      return fail("unknown opcode '" + OpName + "'");

    int Callee = -1;
    std::vector<Operand> Ops;
    if (!parseOperands(Tail, Ops, Callee))
      return false;

    // Assemble: registers become uses, a trailing integer the immediate.
    std::vector<VReg> Uses;
    std::int64_t Imm = 0;
    bool SawImm = false;
    for (const Operand &O : Ops) {
      if (O.IsReg) {
        if (SawImm)
          return fail("register operand after immediate");
        Uses.push_back(O.Reg);
      } else {
        if (SawImm)
          return fail("multiple immediates");
        SawImm = true;
        Imm = O.Imm;
      }
    }
    if (*Op == Opcode::Call) {
      if (Callee < 0)
        return fail("call without a callee");
      Imm = Callee;
    } else if (Callee >= 0) {
      return fail("callee token on a non-call");
    }

    if (Def.isValid() != opcodeMayDefine(*Op) &&
        !(*Op == Opcode::Call && !Def.isValid()))
      return fail("definition arity mismatch for '" + OpName + "'");
    int WantUses = opcodeNumUses(*Op);
    if (WantUses >= 0 && static_cast<int>(Uses.size()) != WantUses)
      return fail("operand count mismatch for '" + OpName + "'");

    Instruction I(*Op, Def, std::move(Uses), Imm);
    I.setPairHead(PairHead);
    I.setSpillCode(Spill);
    I.setNarrowDef(Narrow);
    if (!BB->empty() && BB->instructions().back().isTerminatorInst())
      return fail("instruction after terminator");
    BB->append(std::move(I));

    if (isTerminator(*Op) && *Op != Opcode::Ret) {
      unsigned Want = *Op == Opcode::Branch ? 1 : 2;
      if (Succs.size() != Want)
        return fail("successor count mismatch for '" + OpName + "'");
      SuccNames[BB->id()] = Succs;
    }
    return true;
  }

public:
  std::unique_ptr<Function> run(const std::string &Text, std::string &Err) {
    std::istringstream In(Text);
    std::string Line;
    while (std::getline(In, Line))
      Lines.push_back(Line);

    // Pass 1: the function header and the block labels, in order.
    for (LineNo = 1; LineNo <= Lines.size(); ++LineNo) {
      std::string L = trim(Lines[LineNo - 1]);
      if (L.empty())
        continue;
      if (L.compare(0, 6, "func @") == 0) {
        if (F) {
          fail("multiple func headers");
          break;
        }
        size_t Paren = L.find('(');
        if (Paren == std::string::npos) {
          fail("malformed func header");
          break;
        }
        F = std::make_unique<Function>(L.substr(6, Paren - 6));
        continue;
      }
      // Block label: "name:" optionally followed by a preds comment.
      if (!F || Lines[LineNo - 1].compare(0, 2, "  ") == 0)
        continue;
      size_t Colon = L.find(':');
      if (Colon == std::string::npos)
        continue;
      std::string Name = L.substr(0, Colon);
      if (Name.empty()) {
        fail("empty block label");
        break;
      }
      if (BlocksByName.count(Name)) {
        fail("duplicate block label '" + Name + "'");
        break;
      }
      BasicBlock *BB = F->createBlock(Name);
      BlocksByName[Name] = BB;
      if (size_t P = L.find("preds:"); P != std::string::npos) {
        std::istringstream SS(L.substr(P + 6));
        std::string PredName;
        while (SS >> PredName)
          PredNames[BB->id()].push_back(PredName);
      }
    }
    if (!F && Error.empty())
      fail("no func header found");
    if (!Error.empty()) {
      Err = Error;
      return nullptr;
    }

    // Pass 2: parameters and instructions.
    BasicBlock *Current = nullptr;
    for (LineNo = 1; LineNo <= Lines.size(); ++LineNo) {
      const std::string &Raw = Lines[LineNo - 1];
      std::string L = trim(Raw);
      if (L.empty())
        continue;
      if (L.compare(0, 6, "func @") == 0) {
        size_t Paren = L.find('(');
        size_t Close = L.rfind(')');
        if (Close == std::string::npos || Close < Paren) {
          fail("malformed func header");
          break;
        }
        std::string ParamList = L.substr(Paren + 1, Close - Paren - 1);
        std::vector<Operand> Params;
        int Callee = -1;
        if (!parseOperands(ParamList, Params, Callee))
          break;
        for (const Operand &P : Params) {
          if (!P.IsReg || !F->isPinned(P.Reg)) {
            fail("parameters must be pinned registers");
            break;
          }
          F->registerParam(P.Reg);
        }
        continue;
      }
      if (Raw.compare(0, 2, "  ") != 0) {
        // Block label line.
        size_t Colon = L.find(':');
        if (Colon != std::string::npos) {
          auto It = BlocksByName.find(L.substr(0, Colon));
          if (It != BlocksByName.end())
            Current = It->second;
        }
        continue;
      }
      if (!Current) {
        fail("instruction before any block label");
        break;
      }
      if (!parseInstruction(Current, L))
        break;
    }
    if (!Error.empty()) {
      Err = Error;
      return nullptr;
    }

    // Wire the CFG in block-id order, then restore the annotated
    // predecessor order (phis index into it).
    for (auto &[Id, Names] : SuccNames) {
      BasicBlock *BB = F->block(Id);
      std::vector<BasicBlock *> Succs;
      for (const std::string &Name : Names) {
        auto It = BlocksByName.find(Name);
        if (It == BlocksByName.end()) {
          Err = "unknown successor block '" + Name + "'";
          return nullptr;
        }
        Succs.push_back(It->second);
      }
      F->setEdges(BB, Succs);
    }
    for (auto &[Id, Names] : PredNames) {
      if (Names.empty())
        continue;
      BasicBlock *BB = F->block(Id);
      std::vector<BasicBlock *> Order;
      for (const std::string &Name : Names) {
        auto It = BlocksByName.find(Name);
        if (It == BlocksByName.end()) {
          Err = "unknown predecessor block '" + Name + "'";
          return nullptr;
        }
        Order.push_back(It->second);
      }
      const std::vector<BasicBlock *> &Existing = BB->predecessors();
      if (!std::is_permutation(Order.begin(), Order.end(),
                               Existing.begin(), Existing.end())) {
        Err = "preds annotation of '" + BB->name() +
              "' disagrees with the CFG";
        return nullptr;
      }
      F->reorderPredecessors(BB, Order);
    }
    return std::move(F);
  }
};

} // namespace

std::unique_ptr<Function> pdgc::parseFunction(const std::string &Text,
                                              std::string &Error) {
  Error.clear();
  // The parser validates before it converts, so it should never throw; the
  // guard turns any residual exception (and fatal checks fired while an
  // error trap is active) into the documented error-string contract
  // instead of tearing down the process on adversarial input.
  try {
    ScopedErrorTrap Trap;
    return Parser().run(Text, Error);
  } catch (const std::exception &E) {
    Error = std::string("internal parser error: ") + E.what();
    return nullptr;
  }
}
