//===- ir/Instruction.h - IR instruction ------------------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single register-transfer instruction: an opcode, at most one defined
/// virtual register, a use list, an immediate, and a couple of attributes
/// the allocators care about (paired-load candidacy, spill provenance).
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_IR_INSTRUCTION_H
#define PDGC_IR_INSTRUCTION_H

#include "ir/Opcode.h"
#include "ir/VReg.h"
#include "support/Debug.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace pdgc {

/// One IR instruction.
///
/// Phi instructions keep their uses parallel to the owning block's
/// predecessor list: use `i` is the incoming value from predecessor `i`.
class Instruction {
  Opcode Op;
  VReg DefReg;             ///< Invalid when the opcode defines nothing.
  std::vector<VReg> Uses;
  std::int64_t Imm = 0;    ///< LoadImm value, AddImm addend, Load/Store
                           ///< offset, Call callee id.
  bool PairHeadFlag = false; ///< First load of a paired-load candidate; the
                             ///< next instruction in the block is its mate.
  bool SpillFlag = false;    ///< Inserted by the spiller (spill load/store or
                             ///< rematerialized copy); counted by Figure 9.
  bool NarrowFlag = false;   ///< "Limited register usage" (Section 3.1,
                             ///< second preference kind): the definition
                             ///< works without fixup only in the target's
                             ///< narrow-capable registers, like x86
                             ///< quarter-word loads.

public:
  Instruction(Opcode OpIn, VReg Def, std::vector<VReg> UsesIn,
              std::int64_t ImmIn = 0)
      : Op(OpIn), DefReg(Def), Uses(std::move(UsesIn)), Imm(ImmIn) {
    assert((Def.isValid() ? opcodeMayDefine(Op) : true) &&
           "opcode cannot define a register");
    assert((opcodeNumUses(Op) < 0 ||
            static_cast<int>(this->Uses.size()) == opcodeNumUses(Op)) &&
           "wrong number of uses for opcode");
  }

  Opcode opcode() const { return Op; }

  bool hasDef() const { return DefReg.isValid(); }
  VReg def() const { return DefReg; }
  void setDef(VReg R) { DefReg = R; }

  unsigned numUses() const { return static_cast<unsigned>(Uses.size()); }
  VReg use(unsigned I) const {
    assert(I < Uses.size() && "use index out of range");
    return Uses[I];
  }
  void setUse(unsigned I, VReg R) {
    assert(I < Uses.size() && "use index out of range");
    Uses[I] = R;
  }
  const std::vector<VReg> &uses() const { return Uses; }

  std::int64_t imm() const { return Imm; }
  void setImm(std::int64_t V) { Imm = V; }

  /// For Call instructions: the external callee id (stored in the
  /// immediate field).
  unsigned callee() const {
    assert(Op == Opcode::Call && "callee() on a non-call");
    return static_cast<unsigned>(Imm);
  }

  bool isCopy() const { return Op == Opcode::Move; }
  bool isCall() const { return Op == Opcode::Call; }
  bool isPhi() const { return Op == Opcode::Phi; }
  bool isTerminatorInst() const { return isTerminator(Op); }

  /// True for the first load of a paired-load candidate. The candidate can
  /// be fused into a single machine operation when the two destination
  /// registers satisfy the target's pairing rule (Section 3.1, "dependent
  /// register usage").
  bool isPairHead() const { return PairHeadFlag; }
  void setPairHead(bool V) { PairHeadFlag = V; }

  /// True for instructions materialized by spill-code insertion; these are
  /// the "generated spill instructions" counted in Figure 9(b)/(d).
  bool isSpillCode() const { return SpillFlag; }
  void setSpillCode(bool V) { SpillFlag = V; }

  /// True when the defined register should come from the target's
  /// narrow-capable subset; any other register costs a fixup instruction
  /// (e.g. the zero-extension after an x86 quarter-word load).
  bool isNarrowDef() const { return NarrowFlag; }
  void setNarrowDef(bool V) { NarrowFlag = V; }

  /// Appends a use (used when splitting phi operands or building calls).
  void addUse(VReg R) { Uses.push_back(R); }

  /// Removes use \p I, shifting later uses down.
  void removeUse(unsigned I) {
    assert(I < Uses.size() && "use index out of range");
    Uses.erase(Uses.begin() + I);
  }
};

} // namespace pdgc

#endif // PDGC_IR_INSTRUCTION_H
