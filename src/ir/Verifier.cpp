//===- ir/Verifier.cpp - IR structural checks ------------------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/IRPrinter.h"
#include "support/Debug.h"

#include <algorithm>

using namespace pdgc;

namespace {

class VerifierImpl {
  const Function &F;
  std::vector<std::string> &Errors;

public:
  VerifierImpl(const Function &F, std::vector<std::string> &Errors)
      : F(F), Errors(Errors) {}

  void error(const BasicBlock *BB, const std::string &Msg) {
    Errors.push_back(F.name() + "/" + (BB ? BB->name() : "<func>") + ": " +
                     Msg);
  }

  bool checkVReg(const BasicBlock *BB, VReg R, const char *What) {
    if (R.isValid() && R.id() < F.numVRegs())
      return true;
    error(BB, std::string("invalid ") + What + " register");
    return false;
  }

  void checkBlock(const BasicBlock *BB) {
    if (BB->empty() || !BB->hasTerminator()) {
      error(BB, "block lacks a terminator");
      return;
    }
    bool SeenNonPhi = false;
    for (unsigned I = 0, E = BB->size(); I != E; ++I) {
      const Instruction &Inst = BB->inst(I);
      if (Inst.isTerminatorInst() && I + 1 != E)
        error(BB, "terminator in the middle of a block");
      if (Inst.isPhi()) {
        if (SeenNonPhi)
          error(BB, "phi after a non-phi instruction");
        if (Inst.numUses() != BB->numPredecessors())
          error(BB, "phi operand count does not match predecessors");
      } else {
        SeenNonPhi = true;
      }
      checkInstruction(BB, Inst);
    }

    // Successor count must match the terminator kind.
    unsigned WantSuccs = 0;
    switch (BB->terminator().opcode()) {
    case Opcode::Branch:
      WantSuccs = 1;
      break;
    case Opcode::CondBranch:
      WantSuccs = 2;
      break;
    case Opcode::Ret:
      WantSuccs = 0;
      break;
    default:
      pdgc_unreachable("non-terminator classified as terminator");
    }
    if (BB->numSuccessors() != WantSuccs)
      error(BB, "successor count does not match terminator");
    // Parallel edges would make a predecessor appear twice in a phi
    // block's list, breaking phi-operand indexing and edge splitting.
    if (BB->numSuccessors() == 2 &&
        BB->successors()[0] == BB->successors()[1])
      error(BB, "conditional branch with identical targets");

    // Edge symmetry.
    for (const BasicBlock *S : BB->successors()) {
      const auto &P = S->predecessors();
      if (std::count(P.begin(), P.end(), BB) !=
          std::count(BB->successors().begin(), BB->successors().end(), S))
        error(BB, "successor/predecessor lists disagree with " + S->name());
    }
  }

  void checkInstruction(const BasicBlock *BB, const Instruction &I) {
    if (I.hasDef())
      checkVReg(BB, I.def(), "def");
    for (unsigned U = 0, E = I.numUses(); U != E; ++U)
      checkVReg(BB, I.use(U), "use");

    switch (I.opcode()) {
    case Opcode::Move:
      if (F.regClass(I.def()) != F.regClass(I.use(0)))
        error(BB, "move across register classes: " + printInstruction(F, I));
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
      if (F.regClass(I.use(0)) != F.regClass(I.use(1)) ||
          F.regClass(I.def()) != F.regClass(I.use(0)))
        error(BB, "operand class mismatch: " + printInstruction(F, I));
      break;
    case Opcode::CmpLT:
    case Opcode::CmpEQ:
      if (F.regClass(I.def()) != RegClass::GPR)
        error(BB, "compare result must be a GPR");
      if (F.regClass(I.use(0)) != F.regClass(I.use(1)))
        error(BB, "compare operand class mismatch");
      break;
    case Opcode::CondBranch:
      if (F.regClass(I.use(0)) != RegClass::GPR)
        error(BB, "branch condition must be a GPR");
      break;
    case Opcode::Load:
      if (F.regClass(I.use(0)) != RegClass::GPR)
        error(BB, "load base must be a GPR");
      break;
    case Opcode::Store:
      if (F.regClass(I.use(1)) != RegClass::GPR)
        error(BB, "store base must be a GPR");
      break;
    case Opcode::Call:
      for (unsigned U = 0, E = I.numUses(); U != E; ++U)
        if (!F.isPinned(I.use(U)))
          error(BB, "call argument is not pinned");
      if (I.hasDef() && !F.isPinned(I.def()))
        error(BB, "call return is not pinned");
      break;
    case Opcode::Ret:
      if (I.numUses() > 1)
        error(BB, "ret takes at most one value");
      if (I.numUses() == 1 && !F.isPinned(I.use(0)))
        error(BB, "ret value is not pinned");
      break;
    default:
      break;
    }
  }

  bool run() {
    if (F.numBlocks() == 0) {
      error(nullptr, "function has no blocks");
      return false;
    }
    size_t Before = Errors.size();
    for (unsigned B = 0, E = F.numBlocks(); B != E; ++B)
      checkBlock(F.block(B));
    if (!F.entry()->predecessors().empty())
      error(F.entry(), "entry block must not have predecessors");
    for (VReg P : F.params())
      if (!F.isPinned(P))
        error(nullptr, "parameter is not pinned");
    return Errors.size() == Before;
  }
};

} // namespace

bool pdgc::verifyFunction(const Function &F,
                          std::vector<std::string> &Errors) {
  return VerifierImpl(F, Errors).run();
}

void pdgc::verifyFunctionOrAbort(const Function &F) {
  std::vector<std::string> Errors;
  if (verifyFunction(F, Errors))
    return;
  pdgc_check(false, Errors.front().c_str());
}
