//===- ir/Verifier.cpp - IR structural checks ------------------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/IRPrinter.h"
#include "support/BitVector.h"
#include "support/Debug.h"

#include <algorithm>

using namespace pdgc;

namespace {

class VerifierImpl {
  const Function &F;
  std::vector<std::string> &Errors;

public:
  VerifierImpl(const Function &Fn, std::vector<std::string> &ErrorsIn)
      : F(Fn), Errors(ErrorsIn) {}

  void error(const BasicBlock *BB, const std::string &Msg) {
    Errors.push_back(F.name() + "/" + (BB ? BB->name() : "<func>") + ": " +
                     Msg);
  }

  bool checkVReg(const BasicBlock *BB, VReg R, const char *What) {
    if (R.isValid() && R.id() < F.numVRegs())
      return true;
    error(BB, std::string("invalid ") + What + " register");
    return false;
  }

  void checkBlock(const BasicBlock *BB) {
    if (BB->empty() || !BB->hasTerminator()) {
      error(BB, "block lacks a terminator");
      return;
    }
    bool SeenNonPhi = false;
    for (unsigned I = 0, E = BB->size(); I != E; ++I) {
      const Instruction &Inst = BB->inst(I);
      if (Inst.isTerminatorInst() && I + 1 != E)
        error(BB, "terminator in the middle of a block");
      if (Inst.isPhi()) {
        if (SeenNonPhi)
          error(BB, "phi after a non-phi instruction");
        if (Inst.numUses() != BB->numPredecessors())
          error(BB, "phi operand count does not match predecessors");
      } else {
        SeenNonPhi = true;
      }
      // A paired-load candidate is the head Load immediately followed by
      // its mate Load; the preference graph and the cost simulator read
      // the mate at I + 1 without re-checking, so the invariant must hold
      // for any function that reaches them (the parser accepts a
      // `pair-head` annotation anywhere).
      if (Inst.isPairHead()) {
        if (Inst.opcode() != Opcode::Load)
          error(BB, "pair-head annotation on a non-load instruction");
        else if (I + 1 == E || BB->inst(I + 1).opcode() != Opcode::Load)
          error(BB, "pair-head load is not followed by its mate load");
      }
      checkInstruction(BB, Inst);
    }

    // Successor count must match the terminator kind.
    unsigned WantSuccs = 0;
    switch (BB->terminator().opcode()) {
    case Opcode::Branch:
      WantSuccs = 1;
      break;
    case Opcode::CondBranch:
      WantSuccs = 2;
      break;
    case Opcode::Ret:
      WantSuccs = 0;
      break;
    default:
      pdgc_unreachable("non-terminator classified as terminator");
    }
    if (BB->numSuccessors() != WantSuccs)
      error(BB, "successor count does not match terminator");
    // Parallel edges would make a predecessor appear twice in a phi
    // block's list, breaking phi-operand indexing and edge splitting.
    if (BB->numSuccessors() == 2 &&
        BB->successors()[0] == BB->successors()[1])
      error(BB, "conditional branch with identical targets");

    // Edge symmetry.
    for (const BasicBlock *S : BB->successors()) {
      const auto &P = S->predecessors();
      if (std::count(P.begin(), P.end(), BB) !=
          std::count(BB->successors().begin(), BB->successors().end(), S))
        error(BB, "successor/predecessor lists disagree with " + S->name());
    }
  }

  void checkInstruction(const BasicBlock *BB, const Instruction &I) {
    if (I.hasDef())
      checkVReg(BB, I.def(), "def");
    for (unsigned U = 0, E = I.numUses(); U != E; ++U)
      checkVReg(BB, I.use(U), "use");

    switch (I.opcode()) {
    case Opcode::Move:
      if (F.regClass(I.def()) != F.regClass(I.use(0)))
        error(BB, "move across register classes: " + printInstruction(F, I));
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
      if (F.regClass(I.use(0)) != F.regClass(I.use(1)) ||
          F.regClass(I.def()) != F.regClass(I.use(0)))
        error(BB, "operand class mismatch: " + printInstruction(F, I));
      break;
    case Opcode::CmpLT:
    case Opcode::CmpEQ:
      if (F.regClass(I.def()) != RegClass::GPR)
        error(BB, "compare result must be a GPR");
      if (F.regClass(I.use(0)) != F.regClass(I.use(1)))
        error(BB, "compare operand class mismatch");
      break;
    case Opcode::CondBranch:
      if (F.regClass(I.use(0)) != RegClass::GPR)
        error(BB, "branch condition must be a GPR");
      break;
    case Opcode::Load:
      if (F.regClass(I.use(0)) != RegClass::GPR)
        error(BB, "load base must be a GPR");
      break;
    case Opcode::Store:
      if (F.regClass(I.use(1)) != RegClass::GPR)
        error(BB, "store base must be a GPR");
      break;
    case Opcode::Call:
      for (unsigned U = 0, E = I.numUses(); U != E; ++U)
        if (!F.isPinned(I.use(U)))
          error(BB, "call argument is not pinned");
      if (I.hasDef() && !F.isPinned(I.def()))
        error(BB, "call return is not pinned");
      break;
    case Opcode::Ret:
      if (I.numUses() > 1)
        error(BB, "ret takes at most one value");
      if (I.numUses() == 1 && !F.isPinned(I.use(0)))
        error(BB, "ret value is not pinned");
      break;
    default:
      break;
    }
  }

  /// Every use must be reached by a definition (or a parameter) on every
  /// path from entry. Without this, a value with no def slips through to
  /// allocation, where a pinned undefined call operand that is live across
  /// its own call produces an unsatisfiable instance no allocator can
  /// color — found by fuzzing mutated fixtures. Standard backward liveness
  /// with phi operand k treated as live out of predecessor k; anything
  /// live into entry besides the parameters is a possibly-undefined use.
  void checkDefinedUses() {
    const unsigned NumBlocks = F.numBlocks();
    const unsigned NumRegs = F.numVRegs();
    std::vector<BitVector> Gen(NumBlocks, BitVector(NumRegs));
    std::vector<BitVector> Kill(NumBlocks, BitVector(NumRegs));
    std::vector<BitVector> PhiOut(NumBlocks, BitVector(NumRegs));
    for (unsigned B = 0; B != NumBlocks; ++B) {
      const BasicBlock *BB = F.block(B);
      for (unsigned I = BB->size(); I-- > 0;) {
        const Instruction &Inst = BB->inst(I);
        if (Inst.hasDef()) {
          Gen[B].reset(Inst.def().id());
          Kill[B].set(Inst.def().id());
        }
        if (Inst.isPhi()) {
          // Operand U is consumed on the edge from predecessor U, not
          // upward-exposed here.
          for (unsigned U = 0, E = Inst.numUses(); U != E; ++U)
            PhiOut[BB->predecessors()[U]->id()].set(Inst.use(U).id());
        } else {
          for (unsigned U = 0, E = Inst.numUses(); U != E; ++U)
            Gen[B].set(Inst.use(U).id());
        }
      }
    }

    std::vector<BitVector> LiveIn(NumBlocks, BitVector(NumRegs));
    std::vector<unsigned> RPO = F.reversePostOrder();
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned It = RPO.size(); It-- > 0;) {
        unsigned B = RPO[It];
        BitVector Out = PhiOut[B];
        for (const BasicBlock *S : F.block(B)->successors())
          Out |= LiveIn[S->id()];
        Out.resetAll(Kill[B]);
        Out |= Gen[B];
        if (Out != LiveIn[B]) {
          LiveIn[B] = std::move(Out);
          Changed = true;
        }
      }
    }

    BitVector Undefined = LiveIn[F.entry()->id()];
    for (VReg P : F.params())
      Undefined.reset(P.id());
    for (unsigned R : Undefined.setBits())
      error(nullptr,
            "use of undefined value v" + std::to_string(R) +
                " (no definition reaches it)");
  }

  bool run() {
    if (F.numBlocks() == 0) {
      error(nullptr, "function has no blocks");
      return false;
    }
    size_t Before = Errors.size();
    for (unsigned B = 0, E = F.numBlocks(); B != E; ++B)
      checkBlock(F.block(B));
    if (!F.entry()->predecessors().empty())
      error(F.entry(), "entry block must not have predecessors");
    for (VReg P : F.params())
      if (!F.isPinned(P))
        error(nullptr, "parameter is not pinned");
    // The dataflow check indexes phi operands by predecessor position and
    // walks the CFG; only run it on structurally sound functions.
    if (Errors.size() == Before)
      checkDefinedUses();
    return Errors.size() == Before;
  }
};

} // namespace

bool pdgc::verifyFunction(const Function &F,
                          std::vector<std::string> &Errors) {
  return VerifierImpl(F, Errors).run();
}

void pdgc::verifyFunctionOrAbort(const Function &F) {
  std::vector<std::string> Errors;
  if (verifyFunction(F, Errors))
    return;
  pdgc_check(false, Errors.front().c_str());
}
