//===- ir/Function.cpp - IR function --------------------------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

#include <algorithm>

using namespace pdgc;

BasicBlock *Function::createBlock(const std::string &BlockName) {
  unsigned Id = NextBlockId++;
  std::string N = BlockName.empty() ? "bb" + std::to_string(Id) : BlockName;
  Blocks.push_back(
      std::unique_ptr<BasicBlock>(new BasicBlock(Id, std::move(N))));
  return Blocks.back().get();
}

void Function::setEdges(BasicBlock *BB,
                        const std::vector<BasicBlock *> &Succs) {
  assert(BB->Succs.empty() && "edges already set for this block");
  BB->Succs = Succs;
  for (BasicBlock *S : Succs)
    S->Preds.push_back(BB);
}

BasicBlock *Function::splitEdge(BasicBlock *From, BasicBlock *To) {
  BasicBlock *Mid =
      createBlock(From->name() + "." + To->name() + ".split");
  Mid->append(Instruction(Opcode::Branch, VReg(), {}));

  // Redirect From's successor entry. A block may list the same successor
  // twice (both arms of a conditional branch); split only the first match.
  auto SuccIt = std::find(From->Succs.begin(), From->Succs.end(), To);
  assert(SuccIt != From->Succs.end() && "From is not a predecessor of To");
  *SuccIt = Mid;

  // Replace From with Mid in To's predecessor list, in place, so the
  // phi-operand indexing of To is preserved.
  auto PredIt = std::find(To->Preds.begin(), To->Preds.end(), From);
  assert(PredIt != To->Preds.end() && "edge to split does not exist");
  *PredIt = Mid;

  Mid->Succs = {To};
  Mid->Preds = {From};
  return Mid;
}

void Function::reorderPredecessors(BasicBlock *BB,
                                   const std::vector<BasicBlock *> &Order) {
  assert(std::is_permutation(Order.begin(), Order.end(), BB->Preds.begin(),
                             BB->Preds.end()) &&
         "new order must permute the existing predecessors");
  BB->Preds = Order;
}

std::vector<unsigned> Function::reversePostOrder() const {
  std::vector<unsigned> Order;
  if (Blocks.empty())
    return Order;

  std::vector<char> Visited(Blocks.size(), 0);
  std::vector<unsigned> PostOrder;
  // Iterative DFS carrying (block, next successor index) pairs.
  std::vector<std::pair<const BasicBlock *, unsigned>> Stack;
  Stack.push_back({entry(), 0});
  Visited[entry()->id()] = 1;
  while (!Stack.empty()) {
    auto &[BB, NextSucc] = Stack.back();
    if (NextSucc < BB->numSuccessors()) {
      const BasicBlock *S = BB->successors()[NextSucc++];
      if (!Visited[S->id()]) {
        Visited[S->id()] = 1;
        Stack.push_back({S, 0});
      }
      continue;
    }
    PostOrder.push_back(BB->id());
    Stack.pop_back();
  }

  Order.assign(PostOrder.rbegin(), PostOrder.rend());
  // Append unreachable blocks deterministically.
  for (unsigned I = 0, E = numBlocks(); I != E; ++I)
    if (!Visited[Blocks[I]->id()])
      Order.push_back(Blocks[I]->id());
  return Order;
}

VReg Function::createVReg(RegClass RC) {
  VRegs.push_back(VRegInfo{RC, -1, false});
  return VReg(static_cast<unsigned>(VRegs.size()) - 1);
}

VReg Function::createPinnedVReg(RegClass RC, int PhysReg) {
  assert(PhysReg >= 0 && "pinned register must be valid");
  VRegs.push_back(VRegInfo{RC, PhysReg, false});
  return VReg(static_cast<unsigned>(VRegs.size()) - 1);
}

VReg Function::addParam(RegClass RC, int PhysReg) {
  VReg R = createPinnedVReg(RC, PhysReg);
  Params.push_back(R);
  return R;
}
