//===- ir/Opcode.cpp - Instruction opcodes --------------------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "ir/Opcode.h"

#include "support/Debug.h"

using namespace pdgc;

const char *pdgc::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::LoadImm:
    return "loadimm";
  case Opcode::Move:
    return "move";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::AddImm:
    return "addimm";
  case Opcode::CmpLT:
    return "cmplt";
  case Opcode::CmpEQ:
    return "cmpeq";
  case Opcode::Branch:
    return "br";
  case Opcode::CondBranch:
    return "condbr";
  case Opcode::Call:
    return "call";
  case Opcode::Ret:
    return "ret";
  case Opcode::Phi:
    return "phi";
  case Opcode::SpillLoad:
    return "spillload";
  case Opcode::SpillStore:
    return "spillstore";
  }
  pdgc_unreachable("unknown opcode");
}
