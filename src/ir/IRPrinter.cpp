//===- ir/IRPrinter.cpp - Textual IR dump ---------------------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"

using namespace pdgc;

std::string pdgc::printVReg(const Function &F, VReg R) {
  if (!R.isValid())
    return "<invalid>";
  std::string S = "v" + std::to_string(R.id());
  if (F.isPinned(R))
    S += "(pinned:r" + std::to_string(F.pinnedReg(R)) + ")";
  if (F.regClass(R) == RegClass::FPR)
    S += "f";
  return S;
}

std::string pdgc::printInstruction(const Function &F, const Instruction &I) {
  std::string S;
  if (I.hasDef())
    S += printVReg(F, I.def()) + " = ";
  S += opcodeName(I.opcode());
  for (unsigned U = 0, E = I.numUses(); U != E; ++U)
    S += (U == 0 ? " " : ", ") + printVReg(F, I.use(U));
  switch (I.opcode()) {
  case Opcode::LoadImm:
  case Opcode::AddImm:
  case Opcode::Load:
  case Opcode::Store:
  case Opcode::SpillLoad:
  case Opcode::SpillStore:
    S += (I.numUses() ? ", " : " ") + std::to_string(I.imm());
    break;
  case Opcode::Call:
    S += " @f" + std::to_string(I.callee());
    break;
  default:
    break;
  }
  if (I.isPairHead())
    S += "  ; pair-head";
  if (I.isSpillCode())
    S += "  ; spill";
  if (I.isNarrowDef())
    S += "  ; narrow";
  return S;
}

std::string pdgc::printFunction(const Function &F) {
  std::string S = "func @" + F.name() + "(";
  for (unsigned I = 0, E = F.numParams(); I != E; ++I)
    S += (I ? ", " : "") + printVReg(F, F.params()[I]);
  S += ")\n";
  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B) {
    const BasicBlock *BB = F.block(B);
    S += BB->name() + ":";
    S += "    ; preds:";
    for (const BasicBlock *P : BB->predecessors())
      S += " " + P->name();
    S += "\n";
    for (const Instruction &I : BB->instructions()) {
      S += "  " + printInstruction(F, I);
      if (I.isTerminatorInst() && I.opcode() != Opcode::Ret) {
        S += "  ->";
        for (const BasicBlock *Succ : BB->successors())
          S += " " + Succ->name();
      }
      S += "\n";
    }
  }
  return S;
}
