//===- ir/IRBuilder.cpp - Convenience instruction emitter -----------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"

using namespace pdgc;

VReg IRBuilder::emitLoadImm(std::int64_t Imm, RegClass RC) {
  assert(BB && "no insertion block");
  VReg Def = F.createVReg(RC);
  BB->append(Instruction(Opcode::LoadImm, Def, {}, Imm));
  return Def;
}

VReg IRBuilder::emitMove(VReg Src) {
  assert(BB && "no insertion block");
  VReg Def = F.createVReg(F.regClass(Src));
  BB->append(Instruction(Opcode::Move, Def, {Src}));
  return Def;
}

void IRBuilder::emitMoveTo(VReg Dst, VReg Src) {
  assert(BB && "no insertion block");
  assert(F.regClass(Dst) == F.regClass(Src) && "move across register classes");
  BB->append(Instruction(Opcode::Move, Dst, {Src}));
}

VReg IRBuilder::emitLoad(VReg Base, std::int64_t Offset, RegClass RC) {
  assert(BB && "no insertion block");
  assert(F.regClass(Base) == RegClass::GPR && "load base must be a GPR");
  VReg Def = F.createVReg(RC);
  BB->append(Instruction(Opcode::Load, Def, {Base}, Offset));
  return Def;
}

VReg IRBuilder::emitNarrowLoad(VReg Base, std::int64_t Offset,
                               RegClass RC) {
  assert(BB && "no insertion block");
  assert(F.regClass(Base) == RegClass::GPR && "load base must be a GPR");
  VReg Def = F.createVReg(RC);
  Instruction Load(Opcode::Load, Def, {Base}, Offset);
  Load.setNarrowDef(true);
  BB->append(std::move(Load));
  return Def;
}

std::pair<VReg, VReg> IRBuilder::emitPairedLoad(VReg Base,
                                                std::int64_t Offset,
                                                RegClass RC) {
  assert(BB && "no insertion block");
  VReg First = F.createVReg(RC);
  VReg Second = F.createVReg(RC);
  Instruction Head(Opcode::Load, First, {Base}, Offset);
  Head.setPairHead(true);
  BB->append(std::move(Head));
  BB->append(Instruction(Opcode::Load, Second, {Base}, Offset + 1));
  return {First, Second};
}

void IRBuilder::emitStore(VReg Value, VReg Base, std::int64_t Offset) {
  assert(BB && "no insertion block");
  assert(F.regClass(Base) == RegClass::GPR && "store base must be a GPR");
  BB->append(Instruction(Opcode::Store, VReg(), {Value, Base}, Offset));
}

VReg IRBuilder::emitBinary(Opcode Op, VReg LHS, VReg RHS) {
  assert(BB && "no insertion block");
  assert((Op == Opcode::Add || Op == Opcode::Sub || Op == Opcode::Mul) &&
         "emitBinary expects Add/Sub/Mul");
  assert(F.regClass(LHS) == F.regClass(RHS) &&
         "binary operands must share a register class");
  VReg Def = F.createVReg(F.regClass(LHS));
  BB->append(Instruction(Op, Def, {LHS, RHS}));
  return Def;
}

VReg IRBuilder::emitAddImm(VReg Src, std::int64_t Imm) {
  assert(BB && "no insertion block");
  VReg Def = F.createVReg(F.regClass(Src));
  BB->append(Instruction(Opcode::AddImm, Def, {Src}, Imm));
  return Def;
}

VReg IRBuilder::emitCompare(Opcode Op, VReg LHS, VReg RHS) {
  assert(BB && "no insertion block");
  assert((Op == Opcode::CmpLT || Op == Opcode::CmpEQ) &&
         "emitCompare expects CmpLT/CmpEQ");
  assert(F.regClass(LHS) == F.regClass(RHS) &&
         "compare operands must share a register class");
  VReg Def = F.createVReg(RegClass::GPR);
  BB->append(Instruction(Op, Def, {LHS, RHS}));
  return Def;
}

void IRBuilder::emitBranch(BasicBlock *Target) {
  assert(BB && "no insertion block");
  BB->append(Instruction(Opcode::Branch, VReg(), {}));
  F.setEdges(BB, {Target});
}

void IRBuilder::emitCondBranch(VReg Cond, BasicBlock *Taken,
                               BasicBlock *NotTaken) {
  assert(BB && "no insertion block");
  assert(F.regClass(Cond) == RegClass::GPR && "condition must be a GPR");
  BB->append(Instruction(Opcode::CondBranch, VReg(), {Cond}));
  F.setEdges(BB, {Taken, NotTaken});
}

void IRBuilder::emitCall(unsigned Callee, const std::vector<VReg> &Args,
                         VReg Ret) {
  assert(BB && "no insertion block");
#ifndef NDEBUG
  for (VReg A : Args)
    assert(F.isPinned(A) && "call arguments must be pinned registers");
  assert((!Ret.isValid() || F.isPinned(Ret)) &&
         "call return must be a pinned register");
#endif
  BB->append(Instruction(Opcode::Call, Ret, Args,
                         static_cast<std::int64_t>(Callee)));
}

void IRBuilder::emitRet(VReg Value) {
  assert(BB && "no insertion block");
  std::vector<VReg> Uses;
  if (Value.isValid()) {
    assert(F.isPinned(Value) && "return value must be a pinned register");
    Uses.push_back(Value);
  }
  BB->append(Instruction(Opcode::Ret, VReg(), std::move(Uses)));
  F.setEdges(BB, {});
}

VReg IRBuilder::emitPhi(RegClass RC, const std::vector<VReg> &Incoming) {
  assert(BB && "no insertion block");
  assert((BB->empty() || BB->instructions().back().isPhi()) &&
         "phis must precede all other instructions");
  VReg Def = F.createVReg(RC);
  BB->append(Instruction(Opcode::Phi, Def, Incoming));
  return Def;
}
