//===- analysis/CostModel.h - Appendix cost model ---------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Appendix cost model, computed per live range:
///
///   Str(V, P)        = Mem_Cost(V) - Ideal_Cost(V, P)
///   Mem_Cost(V)      = Spill_Cost(V) + Op_Cost(V)
///   Spill_Cost(V)    = sum(Load_Cost * Freq(uses)) +
///                      sum(Store_Cost * Freq(defs))
///   Op_Cost(V)       = sum(Inst_Cost * Freq(uses and defs))
///   Ideal_Cost(V, P) = Call_Cost(V) + Ideal_Op_Cost(V, P)
///   Call_Cost(V)     = sum(Save_Restore_Cost * Freq(crossed calls))  if the
///                      preferred register is volatile, else
///                      Callee_Save_Cost (flat)
///
/// with Load_Cost = 2, Store_Cost = 1, Inst_Cost = 2 for loads and 1
/// otherwise (undefined for calls), Save_Restore_Cost = 3,
/// Callee_Save_Cost = 2, and Freq_Fact from loop analysis.
///
/// These same constants drive the cost simulator (src/sim), so the
/// allocator optimizes exactly the metric the evaluation measures — as in
/// the paper, where the strength functions estimate operation cycles.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_ANALYSIS_COSTMODEL_H
#define PDGC_ANALYSIS_COSTMODEL_H

#include "analysis/LoopInfo.h"
#include "analysis/Liveness.h"
#include "ir/Function.h"

#include <limits>
#include <vector>

namespace pdgc {

/// Tunable constants of the Appendix cost model.
struct CostParams {
  double LoadCost = 2.0;        ///< Cost of an inserted spill load.
  double StoreCost = 1.0;       ///< Cost of an inserted spill store.
  double LoadInstCost = 2.0;    ///< Inst_Cost of a Load.
  double DefaultInstCost = 1.0; ///< Inst_Cost of everything else.
  double SaveRestoreCost = 3.0; ///< Caller save/restore around one call.
  double CalleeSaveCost = 2.0;  ///< Flat prologue/epilogue save of one
                                ///< non-volatile register.
  double LoopFreqFactor = 10.0; ///< Freq_Fact per loop-nesting level.
};

/// Returns the Appendix Inst_Cost of \p I under \p P (calls excluded).
double instCost(const Instruction &I, const CostParams &P);

/// Per-live-range aggregates of the Appendix cost model.
class LiveRangeCosts {
  CostParams Params;
  std::vector<double> SpillCosts;    ///< Spill_Cost(V)
  std::vector<double> OpCosts;       ///< Op_Cost(V)
  std::vector<double> CallCross;     ///< sum Freq over calls V is live
                                     ///< across
  std::vector<unsigned> NumDefs;
  std::vector<unsigned> NumUses;
  std::vector<char> InfiniteFlag;    ///< Spill temps and pinned registers
                                     ///< must never be spill candidates.

  LiveRangeCosts() = default;

public:
  /// Computes costs for every virtual register of \p F (phi-free).
  static LiveRangeCosts compute(const Function &F, const Liveness &LV,
                                const LoopInfo &LI,
                                const CostParams &Params = CostParams());

  /// Recomputes in place for (a possibly mutated) \p F, reusing the
  /// per-register vectors' capacity. The spill-round driver calls this
  /// every round after the first instead of building a fresh object.
  void recompute(const Function &F, const Liveness &LV, const LoopInfo &LI,
                 const CostParams &Params);

  const CostParams &params() const { return Params; }

  /// Spill_Cost(V): the weighted cost of the loads/stores spilling V would
  /// insert.
  double spillCost(VReg V) const { return SpillCosts[V.id()]; }

  /// Op_Cost(V): the weighted cost of the instructions touching V.
  double opCost(VReg V) const { return OpCosts[V.id()]; }

  /// Mem_Cost(V) = Spill_Cost(V) + Op_Cost(V).
  double memCost(VReg V) const {
    return SpillCosts[V.id()] + OpCosts[V.id()];
  }

  /// Sum of execution frequencies of the calls V is live across.
  double callCrossWeight(VReg V) const { return CallCross[V.id()]; }

  /// True if V is live across at least one call.
  bool crossesCall(VReg V) const { return CallCross[V.id()] > 0.0; }

  /// Call_Cost(V) when V resides in a register of the given volatility.
  double callCost(VReg V, bool VolatileReg) const {
    if (VolatileReg)
      return Params.SaveRestoreCost * CallCross[V.id()];
    return Params.CalleeSaveCost;
  }

  /// The register-residence cost of V in a register of the given
  /// volatility, with no instruction savings: Call_Cost + Op_Cost.
  double idealCost(VReg V, bool VolatileReg) const {
    return callCost(V, VolatileReg) + OpCosts[V.id()];
  }

  /// The benefit of keeping V in a register of the given volatility versus
  /// memory: Mem_Cost - Ideal_Cost (no instruction savings). Negative
  /// means V prefers memory.
  double registerBenefit(VReg V, bool VolatileReg) const {
    return memCost(V) - idealCost(V, VolatileReg);
  }

  unsigned numDefs(VReg V) const { return NumDefs[V.id()]; }
  unsigned numUses(VReg V) const { return NumUses[V.id()]; }

  /// True for live ranges that must never be chosen as spill candidates
  /// (spill-code fragments and pinned registers).
  bool isInfinite(VReg V) const { return InfiniteFlag[V.id()] != 0; }

  /// Spill cost used when ranking spill candidates: spillCost for ordinary
  /// ranges, +inf for unspillable ones.
  double spillMetric(VReg V) const {
    if (isInfinite(V))
      return std::numeric_limits<double>::infinity();
    return SpillCosts[V.id()];
  }
};

} // namespace pdgc

#endif // PDGC_ANALYSIS_COSTMODEL_H
