//===- analysis/AnalysisContext.cpp - Cross-round analysis cache -----------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisContext.h"

#include "ir/PhiElimination.h"
#include "support/FaultInjection.h"
#include "support/Stats.h"
#include "support/Tracing.h"

using namespace pdgc;

namespace {

/// Runs \p Compute under a ScopedTimer — usable from a constructor's
/// member-init list, where a scope cannot be opened by hand.
template <typename Fn>
auto timedCompute(const char *Phase, Fn &&Compute) {
  ScopedTimer Timer(Phase, "analysis");
  return Compute();
}

} // namespace

Arena *AnalysisContext::initArena(std::unique_ptr<Arena> &Owned,
                                  Arena *Reuse) {
  if (Reuse) {
    // A reused arena still holds the previous tier's graphs; rewind it so
    // this context starts carving from the front of the warm chunks.
    Reuse->reset();
    return Reuse;
  }
  Owned = std::make_unique<Arena>();
  return Owned.get();
}

AnalysisContext::AnalysisContext(const Function &F,
                                 const CostParams &ParamsIn, Arena *ReuseMem)
    : Func(&F), Params(ParamsIn), Mem(initArena(OwnedMem, ReuseMem)),
      RPO(timedCompute("analysis.rpo.cold",
                       [&] {
                         PDGC_FAULT_POINT("analysis.cold_build");
                         return F.reversePostOrder();
                       })),
      LI(timedCompute("analysis.loopinfo.cold",
                      [&] {
                        return LoopInfo::compute(F, Params.LoopFreqFactor);
                      })),
      LV(timedCompute("analysis.liveness.cold",
                      [&] { return Liveness::compute(F, RPO); })),
      Costs(timedCompute("analysis.costs.cold",
                         [&] {
                           return LiveRangeCosts::compute(F, LV, LI, Params);
                         })),
      IG(timedCompute("analysis.interference.cold",
                      [&] {
                        return InterferenceGraph::build(F, LV, LI, *Mem);
                      })) {
  assert(!hasPhis(F) && "analysis context requires phi-free IR");
  PDGC_STAT("analysis", "cold_builds").inc();
}

void AnalysisContext::refresh() {
  assert(RPO.size() == Func->numBlocks() &&
         "CFG changed under an AnalysisContext; only spill-round "
         "instruction insertion is allowed during its lifetime");
  PDGC_STAT("analysis", "warm_refreshes").inc();
  PDGC_FAULT_POINT("analysis.refresh");
  // Every graph row carved last round (IG adjacency, RPG/CPG edges) dies
  // here; the rebuild below re-carves from the front of the warm chunks.
  Mem->reset();
  {
    ScopedTimer Timer("analysis.liveness.warm", "analysis");
    LV.recompute(*Func, RPO);
  }
  {
    ScopedTimer Timer("analysis.costs.warm", "analysis");
    Costs.recompute(*Func, LV, LI, Params);
  }
  {
    ScopedTimer Timer("analysis.interference.warm", "analysis");
    IG.rebuild(*Func, LV, LI, *Mem);
  }
}
