//===- analysis/AnalysisContext.cpp - Cross-round analysis cache -----------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisContext.h"

#include "ir/PhiElimination.h"

using namespace pdgc;

AnalysisContext::AnalysisContext(const Function &F, const CostParams &Params)
    : Func(&F), Params(Params), RPO(F.reversePostOrder()),
      LI(LoopInfo::compute(F, Params.LoopFreqFactor)),
      LV(Liveness::compute(F, RPO)),
      Costs(LiveRangeCosts::compute(F, LV, LI, Params)),
      IG(InterferenceGraph::build(F, LV, LI)) {
  assert(!hasPhis(F) && "analysis context requires phi-free IR");
}

void AnalysisContext::refresh() {
  assert(RPO.size() == Func->numBlocks() &&
         "CFG changed under an AnalysisContext; only spill-round "
         "instruction insertion is allowed during its lifetime");
  LV.recompute(*Func, RPO);
  Costs.recompute(*Func, LV, LI, Params);
  IG.rebuild(*Func, LV, LI);
}
