//===- analysis/Liveness.cpp - Live-variable analysis ----------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"

#include "ir/PhiElimination.h"
#include "support/Deadline.h"
#include "support/Debug.h"

using namespace pdgc;

Liveness Liveness::compute(const Function &F) {
  return compute(F, F.reversePostOrder());
}

Liveness Liveness::compute(const Function &F,
                           const std::vector<unsigned> &RPO) {
  Liveness L;
  L.recompute(F, RPO);
  return L;
}

void Liveness::recompute(const Function &F,
                         const std::vector<unsigned> &RPO) {
  assert(!hasPhis(F) && "liveness requires phi-free IR");
  assert(RPO.size() == F.numBlocks() && "stale reverse post order");

  const unsigned NumBlocks = F.numBlocks();
  const unsigned NumRegs = F.numVRegs();

  // Reuse the vector-of-sets shells and every set's word storage; spill
  // rounds only grow the register count, so after the first round these
  // resizes are cheap no-ops on warm buffers.
  LiveInSets.resize(NumBlocks);
  LiveOutSets.resize(NumBlocks);
  GenScratch.resize(NumBlocks);
  KillScratch.resize(NumBlocks);
  for (unsigned B = 0; B != NumBlocks; ++B) {
    LiveInSets[B].clearAndResize(NumRegs);
    LiveOutSets[B].clearAndResize(NumRegs);
    GenScratch[B].clearAndResize(NumRegs);
    KillScratch[B].clearAndResize(NumRegs);
  }

  // Per-block gen (upward-exposed uses) and kill (defs) sets.
  for (unsigned B = 0; B != NumBlocks; ++B) {
    const BasicBlock *BB = F.block(B);
    for (unsigned I = BB->size(); I-- > 0;) {
      const Instruction &Inst = BB->inst(I);
      if (Inst.hasDef()) {
        GenScratch[B].reset(Inst.def().id());
        KillScratch[B].set(Inst.def().id());
      }
      for (unsigned U = 0, E = Inst.numUses(); U != E; ++U)
        GenScratch[B].set(Inst.use(U).id());
    }
  }

  // Iterate to a fixed point in post order (reverse RPO) for fast
  // convergence of this backward problem.
  BitVector Out;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned It = RPO.size(); It-- > 0;) {
      pollDeadline();
      unsigned B = RPO[It];
      const BasicBlock *BB = F.block(B);
      Out.clearAndResize(NumRegs);
      for (const BasicBlock *S : BB->successors())
        Out |= LiveInSets[S->id()];
      BitVector In = Out;
      In.resetAll(KillScratch[B]);
      In |= GenScratch[B];
      if (Out != LiveOutSets[B] || In != LiveInSets[B]) {
        LiveOutSets[B] = std::move(Out);
        LiveInSets[B] = std::move(In);
        Changed = true;
      }
    }
  }
}

BitVector Liveness::liveBefore(const BasicBlock *BB, unsigned Index) const {
  assert(Index < BB->size() && "instruction index out of range");
  InstIterator It(*this, BB);
  return It.liveBefore(Index);
}

BitVector Liveness::liveAfter(const BasicBlock *BB, unsigned Index) const {
  assert(Index < BB->size() && "instruction index out of range");
  InstIterator It(*this, BB);
  return It.liveAfter(Index);
}
