//===- analysis/Liveness.cpp - Live-variable analysis ----------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"

#include "ir/PhiElimination.h"
#include "support/Debug.h"

using namespace pdgc;

Liveness Liveness::compute(const Function &F) {
  assert(!hasPhis(F) && "liveness requires phi-free IR");

  const unsigned NumBlocks = F.numBlocks();
  const unsigned NumRegs = F.numVRegs();
  Liveness L;
  L.LiveInSets.assign(NumBlocks, BitVector(NumRegs));
  L.LiveOutSets.assign(NumBlocks, BitVector(NumRegs));

  // Per-block gen (upward-exposed uses) and kill (defs) sets.
  std::vector<BitVector> Gen(NumBlocks, BitVector(NumRegs));
  std::vector<BitVector> Kill(NumBlocks, BitVector(NumRegs));
  for (unsigned B = 0; B != NumBlocks; ++B) {
    const BasicBlock *BB = F.block(B);
    for (unsigned I = BB->size(); I-- > 0;) {
      const Instruction &Inst = BB->inst(I);
      if (Inst.hasDef()) {
        Gen[B].reset(Inst.def().id());
        Kill[B].set(Inst.def().id());
      }
      for (unsigned U = 0, E = Inst.numUses(); U != E; ++U)
        Gen[B].set(Inst.use(U).id());
    }
  }

  // Iterate to a fixed point in post order (reverse RPO) for fast
  // convergence of this backward problem.
  std::vector<unsigned> RPO = F.reversePostOrder();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned It = RPO.size(); It-- > 0;) {
      unsigned B = RPO[It];
      const BasicBlock *BB = F.block(B);
      BitVector Out(NumRegs);
      for (const BasicBlock *S : BB->successors())
        Out |= L.LiveInSets[S->id()];
      BitVector In = Out;
      In.resetAll(Kill[B]);
      In |= Gen[B];
      if (Out != L.LiveOutSets[B] || In != L.LiveInSets[B]) {
        L.LiveOutSets[B] = std::move(Out);
        L.LiveInSets[B] = std::move(In);
        Changed = true;
      }
    }
  }
  return L;
}

BitVector Liveness::liveBefore(const BasicBlock *BB, unsigned Index) const {
  assert(Index < BB->size() && "instruction index out of range");
  BitVector Live = liveOut(BB);
  for (unsigned I = BB->size(); I-- > Index;) {
    const Instruction &Inst = BB->inst(I);
    if (Inst.hasDef())
      Live.reset(Inst.def().id());
    for (unsigned U = 0, E = Inst.numUses(); U != E; ++U)
      Live.set(Inst.use(U).id());
  }
  return Live;
}

BitVector Liveness::liveAfter(const BasicBlock *BB, unsigned Index) const {
  assert(Index < BB->size() && "instruction index out of range");
  if (Index + 1 == BB->size())
    return liveOut(BB);
  return liveBefore(BB, Index + 1);
}
