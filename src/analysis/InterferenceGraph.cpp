//===- analysis/InterferenceGraph.cpp - Interference graph -----------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "analysis/InterferenceGraph.h"

#include "ir/PhiElimination.h"
#include "support/Debug.h"

#include <algorithm>

using namespace pdgc;

void InterferenceGraph::addEdgeInternal(unsigned A, unsigned B) {
  if (A == B || Matrix[A].test(B))
    return;
  Matrix[A].set(B);
  Matrix[B].set(A);
  Adj[A].push_back(B);
  Adj[B].push_back(A);
}

void InterferenceGraph::addEdge(unsigned A, unsigned B) {
  assert(A < numNodes() && B < numNodes() && "node out of range");
  if (regClass(A) != regClass(B))
    return; // Different classes draw from disjoint register files.
  assert(!(isPrecolored(A) && isPrecolored(B) && precolor(A) == precolor(B)) &&
         "two nodes pinned to one physical register interfere; the IR placed "
         "conflicting calling-convention values");
  addEdgeInternal(A, B);
}

InterferenceGraph InterferenceGraph::build(const Function &F,
                                           const Liveness &LV,
                                           const LoopInfo &LI) {
  assert(!hasPhis(F) && "interference requires phi-free IR");

  InterferenceGraph G;
  G.F = &F;
  const unsigned N = F.numVRegs();
  G.Matrix.assign(N, BitVector(N));
  G.Adj.assign(N, {});
  G.Merged.assign(N, 0);

  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B) {
    const BasicBlock *BB = F.block(B);
    const double Freq = LI.frequency(BB);

    LV.forEachInstReverse(BB, [&](unsigned I, const BitVector &LiveAfter) {
      const Instruction &Inst = BB->inst(I);
      if (Inst.isCopy())
        G.Moves.push_back(MoveRecord{Inst.def().id(), Inst.use(0).id(), Freq,
                                     BB->id(), I});
      if (!Inst.hasDef())
        return;
      const unsigned D = Inst.def().id();
      for (unsigned L : LiveAfter.setBits()) {
        if (L == D)
          continue;
        // Chaitin's copy exception: `d = move s` does not make d and s
        // interfere; if s is otherwise live past the copy a separate
        // def/liveness pair adds the edge.
        if (Inst.isCopy() && L == Inst.use(0).id())
          continue;
        G.addEdge(D, L);
      }
    });
  }

  // Parameters are live-in at the entry: they interfere with each other and
  // with anything live-in (they occupy their registers from function entry).
  const BitVector &EntryLive = LV.liveIn(F.entry());
  const std::vector<VReg> &Params = F.params();
  for (unsigned I = 0, E = Params.size(); I != E; ++I) {
    for (unsigned J = I + 1; J != E; ++J)
      G.addEdge(Params[I].id(), Params[J].id());
    for (unsigned L : EntryLive.setBits())
      if (L != Params[I].id())
        G.addEdge(Params[I].id(), L);
  }

  return G;
}

void InterferenceGraph::merge(unsigned A, unsigned B) {
  assert(A != B && "merging a node with itself");
  assert(!isMerged(A) && !isMerged(B) && "merging a dead node");
  assert(!interferes(A, B) && "merging interfering nodes");
  assert(regClass(A) == regClass(B) && "merging across register classes");
  assert(!isPrecolored(B) &&
         "precolored node must be the merge representative");

  // A inherits B's neighbors.
  for (unsigned N : Adj[B]) {
    Matrix[N].reset(B);
    auto It = std::find(Adj[N].begin(), Adj[N].end(), B);
    assert(It != Adj[N].end() && "asymmetric adjacency");
    Adj[N].erase(It);
    addEdge(A, N);
  }
  Adj[B].clear();
  Matrix[B].reset();
  Merged[B] = 1;
}

bool InterferenceGraph::conflictsWithColor(unsigned A, int R) const {
  for (unsigned N : Adj[A])
    if (isPrecolored(N) && precolor(N) == R)
      return true;
  return false;
}
