//===- analysis/InterferenceGraph.cpp - Interference graph -----------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "analysis/InterferenceGraph.h"

#include "ir/PhiElimination.h"
#include "support/Deadline.h"
#include "support/Debug.h"
#include "support/Stats.h"

#include <limits>

using namespace pdgc;

void InterferenceGraph::addEdgeInternal(unsigned A, unsigned B) {
  if (A == B)
    return;
  const unsigned Idx = static_cast<unsigned>(pairIndex(A, B));
  if (PairBits.test(Idx))
    return;
  PairBits.set(Idx);
  const unsigned PosInA = static_cast<unsigned>(Adj[A].size());
  const unsigned PosInB = static_cast<unsigned>(Adj[B].size());
  Adj[A].push_back(B);
  MirrorPos[A].push_back(PosInB);
  Adj[B].push_back(A);
  MirrorPos[B].push_back(PosInA);
}

void InterferenceGraph::removeArc(unsigned N, unsigned Pos) {
  const unsigned Last = static_cast<unsigned>(Adj[N].size()) - 1;
  if (Pos != Last) {
    Adj[N][Pos] = Adj[N][Last];
    MirrorPos[N][Pos] = MirrorPos[N][Last];
    // The moved entry's counterpart must point back at its new slot.
    MirrorPos[Adj[N][Pos]][MirrorPos[N][Pos]] = Pos;
  }
  Adj[N].pop_back();
  MirrorPos[N].pop_back();
}

void InterferenceGraph::addEdge(unsigned A, unsigned B) {
  assert(A < numNodes() && B < numNodes() && "node out of range");
  if (regClass(A) != regClass(B)) {
    // Different classes draw from disjoint register files. (This entry
    // point is off the builder's hot loop, so the registry is hit
    // directly; rebuild() batches its rejections instead.)
    PDGC_STAT("interference", "wasted_edge_attempts").inc();
    return;
  }
  assert(!(isPrecolored(A) && isPrecolored(B) && precolor(A) == precolor(B)) &&
         "two nodes pinned to one physical register interfere; the IR placed "
         "conflicting calling-convention values");
  addEdgeInternal(A, B);
}

void InterferenceGraph::rebuild(const Function &Fn, const Liveness &LV,
                                const LoopInfo &LI) {
  assert(!hasPhis(Fn) && "interference requires phi-free IR");

  F = &Fn;
  const unsigned N = Fn.numVRegs();
  const std::size_t Pairs = N < 2 ? 0 : std::size_t(N) * (N - 1) / 2;
  pdgc_check(Pairs <= std::numeric_limits<unsigned>::max(),
             "interference half-matrix exceeds 2^32 pairs");
  PairBits.clearAndResize(static_cast<unsigned>(Pairs));
  // Clearing the inner vectors one by one (instead of assign(N, {}))
  // preserves their heap blocks, so round 2+ appends into warm storage.
  if (Adj.size() > N) {
    Adj.resize(N);
    MirrorPos.resize(N);
  }
  for (std::size_t I = 0, E = Adj.size(); I != E; ++I) {
    Adj[I].clear();
    MirrorPos[I].clear();
  }
  Adj.resize(N);
  MirrorPos.resize(N);
  Merged.assign(N, 0);
  Moves.clear();

  // Cross-class rejections are counted into a local and flushed to the
  // statistics registry once per rebuild: one atomic add instead of one
  // per rejected pair keeps the hot loop free of shared-cache traffic
  // under the batch pipeline's worker fan-out.
  std::uint64_t WastedEdgeAttempts = 0;

  for (unsigned B = 0, E = Fn.numBlocks(); B != E; ++B) {
    // Cooperative cancellation: one (decimated) deadline poll per block
    // bounds how far a huge rebuild can overshoot an expired budget.
    pollDeadline();
    const BasicBlock *BB = Fn.block(B);
    const double Freq = LI.frequency(BB);

    LV.forEachInstReverse(BB, [&](unsigned I, const BitVector &LiveAfter) {
      const Instruction &Inst = BB->inst(I);
      if (Inst.isCopy())
        Moves.push_back(MoveRecord{Inst.def().id(), Inst.use(0).id(), Freq,
                                   BB->id(), I});
      if (!Inst.hasDef())
        return;
      const unsigned D = Inst.def().id();
      // Hot loop: the def's register class and copy-source are loop
      // invariants, so hoist them and go straight to addEdgeInternal
      // instead of paying addEdge's per-pair def-side lookups.
      const RegClass DC = Fn.regClass(VReg(D));
      const unsigned CopySrc =
          Inst.isCopy() ? Inst.use(0).id() : ~0u;
      for (unsigned L : LiveAfter.setBits()) {
        if (L == D)
          continue;
        // Chaitin's copy exception: `d = move s` does not make d and s
        // interfere; if s is otherwise live past the copy a separate
        // def/liveness pair adds the edge.
        if (L == CopySrc)
          continue;
        if (Fn.regClass(VReg(L)) != DC) {
          // Different classes draw from disjoint register files.
          ++WastedEdgeAttempts;
          continue;
        }
        assert(!(Fn.isPinned(VReg(D)) && Fn.isPinned(VReg(L)) &&
                 Fn.pinnedReg(VReg(D)) == Fn.pinnedReg(VReg(L))) &&
               "two nodes pinned to one physical register interfere; the IR "
               "placed conflicting calling-convention values");
        addEdgeInternal(D, L);
      }
    });
  }

  // Parameters are live-in at the entry: they interfere with each other and
  // with anything live-in (they occupy their registers from function entry).
  const BitVector &EntryLive = LV.liveIn(Fn.entry());
  const std::vector<VReg> &Params = Fn.params();
  for (unsigned I = 0, E = Params.size(); I != E; ++I) {
    for (unsigned J = I + 1; J != E; ++J)
      addEdge(Params[I].id(), Params[J].id());
    for (unsigned L : EntryLive.setBits())
      if (L != Params[I].id())
        addEdge(Params[I].id(), L);
  }

  if (WastedEdgeAttempts != 0)
    PDGC_STAT("interference", "wasted_edge_attempts")
        .add(WastedEdgeAttempts);
}

InterferenceGraph InterferenceGraph::build(const Function &F,
                                           const Liveness &LV,
                                           const LoopInfo &LI) {
  InterferenceGraph G;
  G.rebuild(F, LV, LI);
  return G;
}

void InterferenceGraph::merge(unsigned A, unsigned B) {
  assert(A != B && "merging a node with itself");
  assert(!isMerged(A) && !isMerged(B) && "merging a dead node");
  assert(!interferes(A, B) && "merging interfering nodes");
  assert(regClass(A) == regClass(B) && "merging across register classes");
  assert(!isPrecolored(B) &&
         "precolored node must be the merge representative");

  // A inherits B's neighbors. Each arc B->N knows where its mirror N->B
  // sits, so unlinking from N is a constant-time swap-pop.
  for (unsigned I = 0, E = static_cast<unsigned>(Adj[B].size()); I != E;
       ++I) {
    const unsigned N = Adj[B][I];
    const unsigned Pos = MirrorPos[B][I];
    assert(Adj[N][Pos] == B && "mirror index out of sync");
    PairBits.reset(static_cast<unsigned>(pairIndex(B, N)));
    removeArc(N, Pos);
    addEdge(A, N);
  }
  Adj[B].clear();
  MirrorPos[B].clear();
  Merged[B] = 1;
}

bool InterferenceGraph::conflictsWithColor(unsigned A, int R) const {
  for (unsigned N : Adj[A])
    if (isPrecolored(N) && precolor(N) == R)
      return true;
  return false;
}
