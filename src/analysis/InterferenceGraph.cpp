//===- analysis/InterferenceGraph.cpp - Interference graph -----------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "analysis/InterferenceGraph.h"

#include "ir/PhiElimination.h"
#include "support/Deadline.h"
#include "support/Debug.h"
#include "support/Stats.h"

#include <limits>
#include <utility>

using namespace pdgc;

void InterferenceGraph::removeArc(unsigned N, unsigned Pos) {
  const unsigned Last = Adj.size(N) - 1;
  if (Pos != Last) {
    Span<unsigned> AdjN = Adj.mutableRow(N);
    Span<unsigned> MirN = Mir.mutableRow(N);
    AdjN[Pos] = AdjN[Last];
    MirN[Pos] = MirN[Last];
    // The moved entry's counterpart must point back at its new slot.
    Mir.mutableRow(AdjN[Pos])[MirN[Pos]] = Pos;
  }
  Adj.swapPop(N, Last);
  Mir.swapPop(N, Last);
}

void InterferenceGraph::addEdge(unsigned A, unsigned B) {
  assert(A < numNodes() && B < numNodes() && "node out of range");
  if (regClass(A) != regClass(B)) {
    // Different classes draw from disjoint register files. (This entry
    // point is off the builder's hot loop, so the registry is hit
    // directly; rebuild() batches its rejections instead.)
    PDGC_STAT("interference", "wasted_edge_attempts").inc();
    return;
  }
  assert(!(isPrecolored(A) && isPrecolored(B) && precolor(A) == precolor(B)) &&
         "two nodes pinned to one physical register interfere; the IR placed "
         "conflicting calling-convention values");
  addEdgeInternal(A, B);
}

namespace {

/// The canonical backward scan: one callback per (unfiltered) candidate
/// pair, in discovery order, plus the entry-block parameter edges. Both
/// rebuild paths (cold two-pass and warm in-place) walk this exact
/// sequence, which is what keeps their row contents identical entry for
/// entry.
template <typename PairFn>
void forEachCandidatePair(const Function &Fn, const Liveness &LV,
                          const LoopInfo &LI,
                          std::vector<MoveRecord> *Moves,
                          std::uint64_t &WastedEdgeAttempts, PairFn Pair) {
  // One live-set scratch for the whole sweep: the per-block walks assign
  // into it instead of heap-copying each block's live-out vector.
  BitVector LiveScratch;
  for (unsigned B = 0, E = Fn.numBlocks(); B != E; ++B) {
    // Cooperative cancellation: one (decimated) deadline poll per block
    // bounds how far a huge rebuild can overshoot an expired budget.
    pollDeadline();
    const BasicBlock *BB = Fn.block(B);
    const double Freq = LI.frequency(BB);

    LV.forEachInstReverse(BB, LiveScratch, [&](unsigned I,
                                               const BitVector &LiveAfter) {
      const Instruction &Inst = BB->inst(I);
      if (Moves && Inst.isCopy())
        Moves->push_back(MoveRecord{Inst.def().id(), Inst.use(0).id(), Freq,
                                    BB->id(), I});
      if (!Inst.hasDef())
        return;
      const unsigned D = Inst.def().id();
      // Hot loop: the def's register class and copy-source are loop
      // invariants, so hoist them and go straight to Pair instead of
      // paying addEdge's per-pair def-side lookups.
      const RegClass DC = Fn.regClass(VReg(D));
      const unsigned CopySrc =
          Inst.isCopy() ? Inst.use(0).id() : ~0u;
      for (unsigned L : LiveAfter.setBits()) {
        if (L == D)
          continue;
        // Chaitin's copy exception: `d = move s` does not make d and s
        // interfere; if s is otherwise live past the copy a separate
        // def/liveness pair adds the edge.
        if (L == CopySrc)
          continue;
        if (Fn.regClass(VReg(L)) != DC) {
          // Different classes draw from disjoint register files.
          ++WastedEdgeAttempts;
          continue;
        }
        assert(!(Fn.isPinned(VReg(D)) && Fn.isPinned(VReg(L)) &&
                 Fn.pinnedReg(VReg(D)) == Fn.pinnedReg(VReg(L))) &&
               "two nodes pinned to one physical register interfere; the IR "
               "placed conflicting calling-convention values");
        Pair(D, L);
      }
    });
  }

  // Parameters are live-in at the entry: they interfere with each other and
  // with anything live-in (they occupy their registers from function entry).
  const BitVector &EntryLive = LV.liveIn(Fn.entry());
  const std::vector<VReg> &Params = Fn.params();
  const auto ParamPair = [&](unsigned A, unsigned B) {
    if (Fn.regClass(VReg(A)) != Fn.regClass(VReg(B))) {
      ++WastedEdgeAttempts;
      return;
    }
    assert(!(Fn.isPinned(VReg(A)) && Fn.isPinned(VReg(B)) &&
             Fn.pinnedReg(VReg(A)) == Fn.pinnedReg(VReg(B))) &&
           "two nodes pinned to one physical register interfere; the IR "
           "placed conflicting calling-convention values");
    Pair(A, B);
  };
  for (unsigned I = 0, E = Params.size(); I != E; ++I) {
    for (unsigned J = I + 1; J != E; ++J)
      ParamPair(Params[I].id(), Params[J].id());
    for (unsigned L : EntryLive.setBits())
      if (L != Params[I].id())
        ParamPair(Params[I].id(), L);
  }
}

} // namespace

void InterferenceGraph::rebuild(const Function &Fn, const Liveness &LV,
                                const LoopInfo &LI, Arena &Scratch) {
  assert(!hasPhis(Fn) && "interference requires phi-free IR");

  F = &Fn;
  const unsigned N = Fn.numVRegs();
  const std::size_t Pairs = N < 2 ? 0 : std::size_t(N) * (N - 1) / 2;
  pdgc_check(Pairs <= std::numeric_limits<unsigned>::max(),
             "interference half-matrix exceeds 2^32 pairs");

  // The adjacency rows always live in the graph-owned arena, so a warm
  // rebuild can push into capacities retained from the previous round.
  // \p Scratch only ever holds the cold path's transient count/replay
  // buffers (dead the moment rebuild returns).
  const bool Warm =
      NumNodes == N && N != 0 && OwnedMem != nullptr && Adj.numNodes() == N;
  if (!OwnedMem)
    OwnedMem = std::make_unique<Arena>();
  Mem = OwnedMem.get();

  PairBits.clearAndResize(static_cast<unsigned>(Pairs));
  Merged.assign(N, 0);
  Moves.clear();

  // Cross-class rejections are counted into a local and flushed to the
  // statistics registry once per rebuild: one atomic add instead of one
  // per rejected pair keeps the hot loop free of shared-cache traffic
  // under the batch pipeline's worker fan-out.
  std::uint64_t WastedEdgeAttempts = 0;

  if (Warm) {
    // Warm path (same node count, e.g. re-analysis of an unchanged
    // function): empty the rows, keep their regions, and push pairs
    // directly — every push lands in retained capacity, so the rebuild
    // allocates nothing at all. The row arrays are hoisted into locals
    // (registers): going through the members instead, the loop's
    // unsigned-typed element stores would force a metadata reload on
    // every push (see CsrRows::rawRows).
    Adj.resetCounts();
    Mir.resetCounts();
    Arena &RowMem = *OwnedMem;
    unsigned *const *AdjRows = Adj.rawRows();
    unsigned *const *MirRows = Mir.rawRows();
    unsigned *AdjCnt = Adj.rawCounts();
    unsigned *MirCnt = Mir.rawCounts();
    const unsigned *AdjCap = Adj.rawCaps();
    unsigned Edges = 0;
    forEachCandidatePair(
        Fn, LV, LI, &Moves, WastedEdgeAttempts,
        [&](unsigned A, unsigned B) {
          const unsigned Idx = static_cast<unsigned>(pairIndex(A, B));
          if (PairBits.test(Idx))
            return;
          PairBits.set(Idx);
          const unsigned CA = AdjCnt[A], CB = AdjCnt[B];
          if (__builtin_expect(CA == AdjCap[A] || CB == AdjCap[B], 0)) {
            // A row outgrew its retained capacity (the function changed
            // shape under the same node count): take the growing path.
            Adj.push(RowMem, A, B);
            Mir.push(RowMem, A, CB);
            Adj.push(RowMem, B, A);
            Mir.push(RowMem, B, CA);
          } else {
            AdjRows[A][CA] = B;
            MirRows[A][CA] = CB;
            AdjRows[B][CB] = A;
            MirRows[B][CB] = CA;
            AdjCnt[A] = CA + 1;
            MirCnt[A] = CA + 1;
            AdjCnt[B] = CB + 1;
            MirCnt[B] = CB + 1;
          }
          ++Edges;
        });
    NumEdges = Edges;
  } else {
    // Cold path, pass 1 (count): dedup pairs through the half-matrix and
    // record each unique edge in discovery order while tallying per-node
    // degrees. The replay list lives in the scratch arena; reserving from
    // the previous round's edge count makes spill-round rebuilds
    // growth-free.
    using PairVec =
        std::vector<std::pair<unsigned, unsigned>,
                    ArenaAllocator<std::pair<unsigned, unsigned>>>;
    PairVec EdgePairs{ArenaAllocator<std::pair<unsigned, unsigned>>(Scratch)};
    EdgePairs.reserve(NumEdges + 32);
    unsigned *Deg = Scratch.allocateZeroed<unsigned>(N);

    forEachCandidatePair(Fn, LV, LI, &Moves, WastedEdgeAttempts,
                         [&](unsigned A, unsigned B) {
                           const unsigned Idx =
                               static_cast<unsigned>(pairIndex(A, B));
                           if (PairBits.test(Idx))
                             return;
                           PairBits.set(Idx);
                           EdgePairs.emplace_back(A, B);
                           ++Deg[A];
                           ++Deg[B];
                         });

    // Pass 2 (fill): size each row exactly (plus overflow slack for
    // coalescing-time inserts) and replay the pairs in discovery order,
    // so row contents match the former push_back construction entry for
    // entry.
    constexpr unsigned RowSlack = 4;
    Arena &RowMem = *OwnedMem;
    // The self-owned-arena overload passes OwnedMem as the scratch arena;
    // resetting it would clobber the live EdgePairs/Deg buffers. Distinct
    // scratch (the AnalysisContext round arena) means the old rows can be
    // recycled before the fill pass carves the new ones.
    if (&RowMem != &Scratch)
      RowMem.reset();
    NumNodes = N;
    NumEdges = 0;
    Adj.init(RowMem, N, Deg, RowSlack);
    Mir.init(RowMem, N, Deg, RowSlack);
    for (const std::pair<unsigned, unsigned> &P : EdgePairs) {
      const unsigned PosInA = Adj.size(P.first);
      const unsigned PosInB = Adj.size(P.second);
      Adj.push(RowMem, P.first, P.second);
      Mir.push(RowMem, P.first, PosInB);
      Adj.push(RowMem, P.second, P.first);
      Mir.push(RowMem, P.second, PosInA);
    }
    NumEdges = static_cast<unsigned>(EdgePairs.size());
  }

  if (WastedEdgeAttempts != 0)
    PDGC_STAT("interference", "wasted_edge_attempts")
        .add(WastedEdgeAttempts);
}

void InterferenceGraph::rebuild(const Function &Fn, const Liveness &LV,
                                const LoopInfo &LI) {
  if (!OwnedMem)
    OwnedMem = std::make_unique<Arena>();
  rebuild(Fn, LV, LI, *OwnedMem);
}

InterferenceGraph InterferenceGraph::build(const Function &F,
                                           const Liveness &LV,
                                           const LoopInfo &LI, Arena &Mem) {
  InterferenceGraph G;
  G.rebuild(F, LV, LI, Mem);
  return G;
}

InterferenceGraph InterferenceGraph::build(const Function &F,
                                           const Liveness &LV,
                                           const LoopInfo &LI) {
  InterferenceGraph G;
  G.rebuild(F, LV, LI);
  return G;
}

InterferenceGraph InterferenceGraph::snapshot(Arena &MemIn) const {
  InterferenceGraph G;
  G.F = F;
  G.PairBits = PairBits;
  G.NumNodes = NumNodes;
  G.NumEdges = NumEdges;
  G.Merged = Merged;
  G.Moves = Moves;
  G.Mem = &MemIn;
  unsigned *Deg = MemIn.allocateArray<unsigned>(NumNodes);
  for (unsigned N = 0; N != NumNodes; ++N)
    Deg[N] = Adj.size(N);
  G.Adj.init(MemIn, NumNodes, Deg, /*Slack=*/0);
  G.Mir.init(MemIn, NumNodes, Deg, /*Slack=*/0);
  for (unsigned N = 0; N != NumNodes; ++N) {
    for (unsigned V : Adj.row(N))
      G.Adj.push(MemIn, N, V);
    for (unsigned P : Mir.row(N))
      G.Mir.push(MemIn, N, P);
  }
  return G;
}

void InterferenceGraph::merge(unsigned A, unsigned B) {
  assert(A != B && "merging a node with itself");
  assert(!isMerged(A) && !isMerged(B) && "merging a dead node");
  assert(!interferes(A, B) && "merging interfering nodes");
  assert(regClass(A) == regClass(B) && "merging across register classes");
  assert(!isPrecolored(B) &&
         "precolored node must be the merge representative");

  // A inherits B's neighbors. Each arc B->N knows where its mirror N->B
  // sits, so unlinking from N is a constant-time swap-pop. Row B is only
  // read (addEdge pushes into rows A and N), so the row view stays valid
  // across the loop's arena pushes.
  for (unsigned I = 0, E = Adj.size(B); I != E; ++I) {
    const unsigned N = Adj.row(B)[I];
    const unsigned Pos = Mir.row(B)[I];
    assert(Adj.row(N)[Pos] == B && "mirror index out of sync");
    PairBits.reset(static_cast<unsigned>(pairIndex(B, N)));
    removeArc(N, Pos);
    addEdge(A, N);
  }
  Adj.clearRow(B);
  Mir.clearRow(B);
  Merged[B] = 1;
}

bool InterferenceGraph::conflictsWithColor(unsigned A, int R) const {
  for (unsigned N : Adj.row(A))
    if (isPrecolored(N) && precolor(N) == R)
      return true;
  return false;
}
