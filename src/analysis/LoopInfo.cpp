//===- analysis/LoopInfo.cpp - Loops and block frequencies -----------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"

#include "support/Debug.h"

#include <algorithm>
#include <cmath>

using namespace pdgc;

std::vector<unsigned> pdgc::computeImmediateDominators(const Function &F) {
  const unsigned N = F.numBlocks();
  const unsigned Invalid = ~0u;
  std::vector<unsigned> IDom(N, Invalid);
  if (N == 0)
    return IDom;

  std::vector<unsigned> RPO = F.reversePostOrder();
  // Position of each block in the RPO sequence, for the intersect walk.
  std::vector<unsigned> RPOIndex(N, Invalid);
  for (unsigned I = 0; I != RPO.size(); ++I)
    RPOIndex[RPO[I]] = I;

  unsigned EntryId = F.entry()->id();
  IDom[EntryId] = EntryId;

  auto Intersect = [&](unsigned A, unsigned B) {
    while (A != B) {
      while (RPOIndex[A] > RPOIndex[B])
        A = IDom[A];
      while (RPOIndex[B] > RPOIndex[A])
        B = IDom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned Id : RPO) {
      if (Id == EntryId)
        continue;
      const BasicBlock *BB = F.block(Id);
      unsigned NewIDom = Invalid;
      for (const BasicBlock *Pred : BB->predecessors()) {
        unsigned P = Pred->id();
        if (IDom[P] == Invalid)
          continue; // Unreachable predecessor.
        NewIDom = NewIDom == Invalid ? P : Intersect(P, NewIDom);
      }
      if (NewIDom != Invalid && IDom[Id] != NewIDom) {
        IDom[Id] = NewIDom;
        Changed = true;
      }
    }
  }
  return IDom;
}

LoopInfo LoopInfo::compute(const Function &F, double FreqFactor) {
  const unsigned N = F.numBlocks();
  LoopInfo LI;
  LI.Depth.assign(N, 0);
  LI.Freq.assign(N, 1.0);
  if (N == 0)
    return LI;

  std::vector<unsigned> IDom = computeImmediateDominators(F);
  unsigned EntryId = F.entry()->id();

  auto Dominates = [&](unsigned A, unsigned B) {
    // Walk the dominator tree from B up to the entry.
    if (IDom[B] == ~0u)
      return false; // B unreachable.
    while (true) {
      if (B == A)
        return true;
      if (B == EntryId)
        return false;
      B = IDom[B];
    }
  };

  // For every back edge Tail -> Head (Head dominates Tail), the natural
  // loop body is Head plus all blocks reaching Tail without passing Head.
  for (unsigned B = 0; B != N; ++B) {
    const BasicBlock *Tail = F.block(B);
    for (const BasicBlock *Head : Tail->successors()) {
      if (!Dominates(Head->id(), Tail->id()))
        continue;
      std::vector<char> InLoop(N, 0);
      InLoop[Head->id()] = 1;
      std::vector<unsigned> Work;
      if (Tail->id() != Head->id()) {
        InLoop[Tail->id()] = 1;
        Work.push_back(Tail->id());
      }
      while (!Work.empty()) {
        unsigned Cur = Work.back();
        Work.pop_back();
        for (const BasicBlock *Pred : F.block(Cur)->predecessors()) {
          unsigned P = Pred->id();
          if (!InLoop[P]) {
            InLoop[P] = 1;
            Work.push_back(P);
          }
        }
      }
      for (unsigned I = 0; I != N; ++I)
        if (InLoop[I])
          ++LI.Depth[I];
    }
  }

  // Nested natural loops sharing a header would be double counted; clamp
  // the depth so pathological CFGs cannot overflow the frequency weights.
  for (unsigned I = 0; I != N; ++I) {
    if (LI.Depth[I] > 8)
      LI.Depth[I] = 8;
    LI.Freq[I] = std::pow(FreqFactor, static_cast<double>(LI.Depth[I]));
  }
  return LI;
}
