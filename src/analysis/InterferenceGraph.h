//===- analysis/InterferenceGraph.h - Interference graph --------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interference graph shared by every allocator in this repository.
/// Nodes are virtual registers (one per live range after renaming); edges
/// connect simultaneously live registers of the same register class. Pinned
/// registers appear as precolored nodes. The graph supports the coalescing
/// merge operation used by the baseline allocators, and records the list of
/// copy (move) instructions with their execution weights.
///
/// Representation: membership tests go through a *triangular half-matrix* —
/// one bit per unordered node pair, half the memory of the former dense
/// symmetric matrix — while iteration goes through adjacency lists. Each
/// adjacency entry additionally records the position of its mirror entry in
/// the neighbor's list, so merge() unlinks an edge in O(1) (swap-pop)
/// instead of a linear find-erase.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_ANALYSIS_INTERFERENCEGRAPH_H
#define PDGC_ANALYSIS_INTERFERENCEGRAPH_H

#include "analysis/LoopInfo.h"
#include "analysis/Liveness.h"
#include "ir/Function.h"
#include "support/BitVector.h"

#include <cstdint>
#include <vector>

namespace pdgc {

class TargetDesc;

/// A copy instruction relating two live ranges.
struct MoveRecord {
  unsigned Dst;    ///< Destination virtual-register id.
  unsigned Src;    ///< Source virtual-register id.
  double Weight;   ///< Execution frequency of the copy.
  unsigned Block;  ///< Owning block id.
  unsigned Index;  ///< Instruction index within the block.
};

/// Undirected interference graph with precolored nodes and merge support.
class InterferenceGraph {
  const Function *F = nullptr;
  /// One bit per unordered pair {A, B}, A != B, at triangular index
  /// pairIndex(A, B). Half the footprint of a dense symmetric matrix.
  BitVector PairBits;
  std::vector<std::vector<unsigned>> Adj; ///< Neighbor lists (no duplicates).
  /// MirrorPos[A][I] is the position of A inside Adj[Adj[A][I]]. Kept in
  /// lockstep with Adj so an edge can be unlinked from the far side in
  /// O(1); the invariant is Adj[Adj[A][I]][MirrorPos[A][I]] == A.
  std::vector<std::vector<unsigned>> MirrorPos;
  std::vector<char> Merged;               ///< Node was coalesced away.
  std::vector<MoveRecord> Moves;

  /// Triangular index of the unordered pair {A, B}; requires A != B.
  static std::size_t pairIndex(unsigned A, unsigned B) {
    assert(A != B && "no self pairs in the half-matrix");
    const std::size_t Hi = A > B ? A : B;
    const std::size_t Lo = A > B ? B : A;
    return Hi * (Hi - 1) / 2 + Lo;
  }

  bool testPair(unsigned A, unsigned B) const {
    return PairBits.test(static_cast<unsigned>(pairIndex(A, B)));
  }

  void addEdgeInternal(unsigned A, unsigned B);

  /// Unlinks the adjacency entry at position \p Pos of node \p N by
  /// swap-pop, repairing the mirror index of the entry moved into the gap.
  void removeArc(unsigned N, unsigned Pos);

public:
  InterferenceGraph() = default;

  /// Builds the graph for phi-free \p F using the classic backward scan.
  /// The source of a copy does not interfere with its destination at the
  /// copy itself (Chaitin's rule), which is what enables coalescing.
  static InterferenceGraph build(const Function &F, const Liveness &LV,
                                 const LoopInfo &LI);

  /// Rebuilds this graph in place for (a possibly mutated) \p F, reusing
  /// the half-matrix words and per-node adjacency capacity from the
  /// previous build. The spill-round driver calls this every round; after
  /// the first round the buffers are warm and construction allocates
  /// little to nothing.
  void rebuild(const Function &F, const Liveness &LV, const LoopInfo &LI);

  const Function &function() const {
    assert(F && "graph not built");
    return *F;
  }

  unsigned numNodes() const { return static_cast<unsigned>(Adj.size()); }

  /// Adds an interference edge (same-class nodes only).
  void addEdge(unsigned A, unsigned B);

  bool interferes(unsigned A, unsigned B) const {
    assert(A < numNodes() && B < numNodes() && "node out of range");
    return A != B && testPair(A, B);
  }

  /// Neighbors of \p A. May contain merged-away nodes only if the caller
  /// merged through a stale handle — merge() keeps lists clean.
  const std::vector<unsigned> &neighbors(unsigned A) const {
    assert(A < numNodes() && "node out of range");
    return Adj[A];
  }

  unsigned degree(unsigned A) const {
    assert(A < numNodes() && "node out of range");
    return static_cast<unsigned>(Adj[A].size());
  }

  /// True when the node is pinned to a physical register.
  bool isPrecolored(unsigned A) const {
    return function().isPinned(VReg(A));
  }

  /// The physical register of a precolored node.
  int precolor(unsigned A) const { return function().pinnedReg(VReg(A)); }

  RegClass regClass(unsigned A) const {
    return function().regClass(VReg(A));
  }

  /// True when \p A has been coalesced into another node.
  bool isMerged(unsigned A) const { return Merged[A] != 0; }

  /// Coalesces node \p B into node \p A: A inherits B's edges and B leaves
  /// the graph. \p A and \p B must not interfere and must share a register
  /// class; at most one of them may be precolored (and then it must be A).
  /// Runs in O(degree(B)) — each of B's edges is unlinked from the far
  /// side in constant time through the mirror index.
  void merge(unsigned A, unsigned B);

  /// Returns true if \p A interferes with any node precolored to \p R.
  /// Guards register-to-live-range coalescing and select-phase screening.
  bool conflictsWithColor(unsigned A, int R) const;

  /// All copy instructions found at build time. Records are not updated by
  /// merge(); coalescers resolve endpoints through their own union-find.
  ///
  /// Edge attempts rejected because the endpoints draw from disjoint
  /// register files (wasted work in the builder loop) are reported through
  /// the statistics registry as `interference.wasted_edge_attempts`
  /// (support/Stats.h) — diff StatRegistry snapshots around a build to
  /// attribute them.
  const std::vector<MoveRecord> &moves() const { return Moves; }
};

} // namespace pdgc

#endif // PDGC_ANALYSIS_INTERFERENCEGRAPH_H
