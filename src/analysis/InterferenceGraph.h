//===- analysis/InterferenceGraph.h - Interference graph --------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interference graph shared by every allocator in this repository.
/// Nodes are virtual registers (one per live range after renaming); edges
/// connect simultaneously live registers of the same register class. Pinned
/// registers appear as precolored nodes. The graph supports the coalescing
/// merge operation used by the baseline allocators, and records the list of
/// copy (move) instructions with their execution weights.
///
/// Representation: membership tests go through a *triangular half-matrix* —
/// one bit per unordered node pair, half the memory of the former dense
/// symmetric matrix — while iteration goes through CSR adjacency rows
/// packed into an Arena (support/CsrGraph.h). The rows are sized by a
/// count pass and filled by a replay pass, with a small per-row overflow
/// slack so coalescing-time edge inserts stay in place; a row that
/// outgrows its slack relocates to the arena tail. Each adjacency entry
/// additionally records the position of its mirror entry in the neighbor's
/// row, so merge() unlinks an edge in O(1) (swap-pop) instead of a linear
/// find-erase.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_ANALYSIS_INTERFERENCEGRAPH_H
#define PDGC_ANALYSIS_INTERFERENCEGRAPH_H

#include "analysis/LoopInfo.h"
#include "analysis/Liveness.h"
#include "ir/Function.h"
#include "support/Arena.h"
#include "support/BitVector.h"
#include "support/CsrGraph.h"
#include "support/Span.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace pdgc {

class TargetDesc;

/// A copy instruction relating two live ranges.
struct MoveRecord {
  unsigned Dst;    ///< Destination virtual-register id.
  unsigned Src;    ///< Source virtual-register id.
  double Weight;   ///< Execution frequency of the copy.
  unsigned Block;  ///< Owning block id.
  unsigned Index;  ///< Instruction index within the block.
};

/// Undirected interference graph with precolored nodes and merge support.
class InterferenceGraph {
  const Function *F = nullptr;
  /// One bit per unordered pair {A, B}, A != B, at triangular index
  /// pairIndex(A, B). Half the footprint of a dense symmetric matrix.
  BitVector PairBits;
  CsrRows<unsigned> Adj; ///< Neighbor rows (no duplicates), arena-backed.
  /// Mir row I entry J is the position of I inside Adj row Adj[I][J]. Kept
  /// in lockstep with Adj (paired pushes, identical capacities) so an edge
  /// can be unlinked from the far side in O(1); the invariant is
  /// Adj[Adj[A][I]][Mir[A][I]] == A.
  CsrRows<unsigned> Mir;
  unsigned NumNodes = 0;
  unsigned NumEdges = 0; ///< Sizes the next rebuild's pair-replay scratch.
  std::vector<char> Merged; ///< Node was coalesced away.
  std::vector<MoveRecord> Moves;

  /// Storage for the adjacency rows: always a graph-owned arena, so row
  /// regions survive across rebuilds and a same-size rebuild can push into
  /// retained capacities (the warm path). The arena a caller passes to
  /// build()/rebuild() is scratch for the cold path's transient buffers
  /// only. Mem caches OwnedMem.get() for the mutators' push calls.
  std::unique_ptr<Arena> OwnedMem;
  Arena *Mem = nullptr;

  /// Triangular index of the unordered pair {A, B}; requires A != B.
  static std::size_t pairIndex(unsigned A, unsigned B) {
    assert(A != B && "no self pairs in the half-matrix");
    const std::size_t Hi = A > B ? A : B;
    const std::size_t Lo = A > B ? B : A;
    return Hi * (Hi - 1) / 2 + Lo;
  }

  bool testPair(unsigned A, unsigned B) const {
    return PairBits.test(static_cast<unsigned>(pairIndex(A, B)));
  }

  /// Adds the edge unchecked (class/pin screening is the caller's job).
  /// Defined here so the rebuild hot loop inlines it — together with the
  /// CsrRows::push fast path this is the difference between five calls
  /// per edge and none.
  void addEdgeInternal(unsigned A, unsigned B) {
    if (A == B)
      return;
    const unsigned Idx = static_cast<unsigned>(pairIndex(A, B));
    if (PairBits.test(Idx))
      return;
    PairBits.set(Idx);
    const unsigned PosInA = Adj.size(A);
    const unsigned PosInB = Adj.size(B);
    Adj.push(*Mem, A, B);
    Mir.push(*Mem, A, PosInB);
    Adj.push(*Mem, B, A);
    Mir.push(*Mem, B, PosInA);
    ++NumEdges;
  }

  /// Unlinks the adjacency entry at position \p Pos of node \p N by
  /// swap-pop, repairing the mirror index of the entry moved into the gap.
  void removeArc(unsigned N, unsigned Pos);

public:
  InterferenceGraph() = default;

  /// Builds the graph for phi-free \p F using the classic backward scan.
  /// The source of a copy does not interfere with its destination at the
  /// copy itself (Chaitin's rule), which is what enables coalescing. The
  /// adjacency rows live in a graph-owned arena; \p Mem only holds the
  /// build's transient count/replay buffers and may be reset the moment
  /// this returns (AnalysisContext resets it once per spill round).
  static InterferenceGraph build(const Function &F, const Liveness &LV,
                                 const LoopInfo &LI, Arena &Mem);

  /// Convenience overload for standalone uses (tests, one-shot builds):
  /// the graph owns a private arena.
  static InterferenceGraph build(const Function &F, const Liveness &LV,
                                 const LoopInfo &LI);

  /// Rebuilds this graph in place for (a possibly mutated) \p F, using
  /// \p Mem for the cold path's transient count/replay buffers. When the
  /// node count is unchanged the rebuild goes warm: rows are emptied but
  /// keep their regions and capacities, pairs are pushed directly in the
  /// same discovery order the cold replay would produce, and nothing is
  /// allocated at all. Spill rounds grow the node count and take the cold
  /// two-pass path into the (reset, chunk-warm) row arena.
  void rebuild(const Function &F, const Liveness &LV, const LoopInfo &LI,
               Arena &Mem);

  /// Scratch-free overload: the private row arena doubles as cold-path
  /// scratch.
  void rebuild(const Function &F, const Liveness &LV, const LoopInfo &LI);

  const Function &function() const {
    assert(F && "graph not built");
    return *F;
  }

  unsigned numNodes() const { return NumNodes; }

  /// Adds an interference edge (same-class nodes only).
  void addEdge(unsigned A, unsigned B);

  bool interferes(unsigned A, unsigned B) const {
    assert(A < numNodes() && B < numNodes() && "node out of range");
    return A != B && testPair(A, B);
  }

  /// Neighbors of \p A, as a view over the arena-backed row. Invalidated
  /// by merge()/addEdge() on any node (row relocation) and by the next
  /// rebuild or arena reset. May contain merged-away nodes only if the
  /// caller merged through a stale handle — merge() keeps rows clean.
  Span<const unsigned> neighbors(unsigned A) const {
    assert(A < numNodes() && "node out of range");
    return Adj.row(A);
  }

  unsigned degree(unsigned A) const {
    assert(A < numNodes() && "node out of range");
    return Adj.size(A);
  }

  /// True when the node is pinned to a physical register.
  bool isPrecolored(unsigned A) const {
    return function().isPinned(VReg(A));
  }

  /// The physical register of a precolored node.
  int precolor(unsigned A) const { return function().pinnedReg(VReg(A)); }

  RegClass regClass(unsigned A) const {
    return function().regClass(VReg(A));
  }

  /// True when \p A has been coalesced into another node.
  bool isMerged(unsigned A) const { return Merged[A] != 0; }

  /// Deep copy into \p Mem: rows are packed exactly (no overflow slack),
  /// so the snapshot is meant to be read, not merged into. The optimistic
  /// allocator snapshots the pre-coalesce graph this way; carving from the
  /// round arena keeps the copy's lifetime tied to the round. (The copy
  /// constructor is deleted — a default copy would alias the arena rows.)
  InterferenceGraph snapshot(Arena &Mem) const;

  /// Coalesces node \p B into node \p A: A inherits B's edges and B leaves
  /// the graph. \p A and \p B must not interfere and must share a register
  /// class; at most one of them may be precolored (and then it must be A).
  /// Runs in O(degree(B)) — each of B's edges is unlinked from the far
  /// side in constant time through the mirror index.
  void merge(unsigned A, unsigned B);

  /// Returns true if \p A interferes with any node precolored to \p R.
  /// Guards register-to-live-range coalescing and select-phase screening.
  bool conflictsWithColor(unsigned A, int R) const;

  /// All copy instructions found at build time. Records are not updated by
  /// merge(); coalescers resolve endpoints through their own union-find.
  ///
  /// Edge attempts rejected because the endpoints draw from disjoint
  /// register files (wasted work in the builder loop) are reported through
  /// the statistics registry as `interference.wasted_edge_attempts`
  /// (support/Stats.h) — diff StatRegistry snapshots around a build to
  /// attribute them.
  const std::vector<MoveRecord> &moves() const { return Moves; }
};

} // namespace pdgc

#endif // PDGC_ANALYSIS_INTERFERENCEGRAPH_H
