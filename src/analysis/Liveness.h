//===- analysis/Liveness.h - Live-variable analysis -------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic backward iterative live-variable analysis over virtual
/// registers. Runs on phi-free IR (run eliminatePhis first); the allocators
/// and the interference builder both consume it.
///
/// For the spill-round driver the analysis supports warm recomputation:
/// `recompute` reuses the per-block set storage (and an externally cached
/// reverse post order, which spill insertion cannot invalidate) instead of
/// reallocating everything per round.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_ANALYSIS_LIVENESS_H
#define PDGC_ANALYSIS_LIVENESS_H

#include "ir/Function.h"
#include "support/BitVector.h"

#include <vector>

namespace pdgc {

/// Per-block live-in/live-out sets over virtual-register ids.
class Liveness {
  std::vector<BitVector> LiveInSets;
  std::vector<BitVector> LiveOutSets;
  /// Gen/kill scratch sets, kept between recomputations so a warm rerun
  /// performs no per-block allocations.
  std::vector<BitVector> GenScratch;
  std::vector<BitVector> KillScratch;

  Liveness() = default;

public:
  /// Computes liveness for \p F, which must contain no phis.
  static Liveness compute(const Function &F);

  /// As above, but iterates over a caller-provided reverse post order
  /// instead of recomputing one (the CFG — and therefore its RPO — is
  /// stable across spill rounds).
  static Liveness compute(const Function &F, const std::vector<unsigned> &RPO);

  /// Recomputes liveness for (a possibly mutated) \p F in place, reusing
  /// the existing set storage. \p RPO must be a reverse post order of
  /// \p F's CFG.
  void recompute(const Function &F, const std::vector<unsigned> &RPO);

  const BitVector &liveIn(const BasicBlock *BB) const {
    assert(BB->id() < LiveInSets.size() && "unknown block");
    return LiveInSets[BB->id()];
  }

  const BitVector &liveOut(const BasicBlock *BB) const {
    assert(BB->id() < LiveOutSets.size() && "unknown block");
    return LiveOutSets[BB->id()];
  }

  /// Walks \p BB backwards maintaining the live set, invoking
  /// `Visit(InstIndex, LiveAfterInst)` for each instruction with the set of
  /// registers live immediately *after* it. The callback sees the live set
  /// before the instruction's own kill/gen are applied.
  template <typename CallbackT>
  void forEachInstReverse(const BasicBlock *BB, CallbackT Visit) const {
    BitVector Scratch;
    forEachInstReverse(BB, Scratch, Visit);
  }

  /// As above, but the working live set is built in \p Scratch, whose
  /// storage is reused across calls. Callers sweeping many blocks (the
  /// interference builder visits every block every spill round) hoist one
  /// scratch vector outside their loop and walk heap-free.
  template <typename CallbackT>
  void forEachInstReverse(const BasicBlock *BB, BitVector &Scratch,
                          CallbackT Visit) const {
    Scratch = liveOut(BB);
    for (unsigned I = BB->size(); I-- > 0;) {
      const Instruction &Inst = BB->inst(I);
      Visit(I, Scratch);
      if (Inst.hasDef())
        Scratch.reset(Inst.def().id());
      for (unsigned U = 0, E = Inst.numUses(); U != E; ++U)
        Scratch.set(Inst.use(U).id());
    }
  }

  /// Incremental reverse-walk cursor over one block's instruction-level
  /// live sets. Where `liveBefore`/`liveAfter` rescan the whole block
  /// suffix on every call — quadratic when a caller queries each
  /// instruction — the cursor walks backward once, answering a descending
  /// (or repeated) sequence of queries in amortized O(1) per instruction.
  /// Querying a higher index than the cursor has passed transparently
  /// rewinds to the block end, so any query order is *correct*; only
  /// descending consecutive queries are fast.
  class InstIterator {
    const Liveness *LV;
    const BasicBlock *BB;
    BitVector Live; ///< Live before instruction Cursor (== after Cursor-1).
    unsigned Cursor; ///< In [0, BB->size()]; size() means "at block end".

    /// Steps the cursor down over instruction Cursor-1.
    void stepDown() {
      assert(Cursor > 0 && "stepping below the block start");
      const Instruction &Inst = BB->inst(--Cursor);
      if (Inst.hasDef())
        Live.reset(Inst.def().id());
      for (unsigned U = 0, E = Inst.numUses(); U != E; ++U)
        Live.set(Inst.use(U).id());
    }

    /// Moves the cursor to \p Target (restarting from the block end when
    /// the walk already passed it).
    void rewindTo(unsigned Target) {
      if (Target > Cursor) {
        Live = LV->liveOut(BB);
        Cursor = BB->size();
      }
      while (Cursor > Target)
        stepDown();
    }

  public:
    InstIterator(const Liveness &LVIn, const BasicBlock *BBIn)
        : LV(&LVIn), BB(BBIn), Live(LVIn.liveOut(BBIn)),
          Cursor(BBIn->size()) {}

    /// Registers live immediately after instruction \p Index. The returned
    /// reference is invalidated by the next query.
    const BitVector &liveAfter(unsigned Index) {
      assert(Index < BB->size() && "instruction index out of range");
      rewindTo(Index + 1);
      return Live;
    }

    /// Registers live immediately before instruction \p Index. The
    /// returned reference is invalidated by the next query.
    const BitVector &liveBefore(unsigned Index) {
      assert(Index < BB->size() && "instruction index out of range");
      rewindTo(Index);
      return Live;
    }
  };

  /// Returns a fresh reverse-walk cursor for \p BB.
  InstIterator instIterator(const BasicBlock *BB) const {
    return InstIterator(*this, BB);
  }

  /// Returns the registers live immediately before instruction \p Index of
  /// \p BB. One-shot convenience — O(block suffix); callers querying many
  /// indices of one block should use instIterator() instead.
  BitVector liveBefore(const BasicBlock *BB, unsigned Index) const;

  /// Returns the registers live immediately after instruction \p Index.
  /// Same complexity note as liveBefore.
  BitVector liveAfter(const BasicBlock *BB, unsigned Index) const;
};

} // namespace pdgc

#endif // PDGC_ANALYSIS_LIVENESS_H
