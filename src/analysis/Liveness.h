//===- analysis/Liveness.h - Live-variable analysis -------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic backward iterative live-variable analysis over virtual
/// registers. Runs on phi-free IR (run eliminatePhis first); the allocators
/// and the interference builder both consume it.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_ANALYSIS_LIVENESS_H
#define PDGC_ANALYSIS_LIVENESS_H

#include "ir/Function.h"
#include "support/BitVector.h"

#include <vector>

namespace pdgc {

/// Per-block live-in/live-out sets over virtual-register ids.
class Liveness {
  std::vector<BitVector> LiveInSets;
  std::vector<BitVector> LiveOutSets;

  Liveness() = default;

public:
  /// Computes liveness for \p F, which must contain no phis.
  static Liveness compute(const Function &F);

  const BitVector &liveIn(const BasicBlock *BB) const {
    assert(BB->id() < LiveInSets.size() && "unknown block");
    return LiveInSets[BB->id()];
  }

  const BitVector &liveOut(const BasicBlock *BB) const {
    assert(BB->id() < LiveOutSets.size() && "unknown block");
    return LiveOutSets[BB->id()];
  }

  /// Walks \p BB backwards maintaining the live set, invoking
  /// `Visit(InstIndex, LiveAfterInst)` for each instruction with the set of
  /// registers live immediately *after* it. The callback sees the live set
  /// before the instruction's own kill/gen are applied.
  template <typename CallbackT>
  void forEachInstReverse(const BasicBlock *BB, CallbackT Visit) const {
    BitVector Live = liveOut(BB);
    for (unsigned I = BB->size(); I-- > 0;) {
      const Instruction &Inst = BB->inst(I);
      Visit(I, Live);
      if (Inst.hasDef())
        Live.reset(Inst.def().id());
      for (unsigned U = 0, E = Inst.numUses(); U != E; ++U)
        Live.set(Inst.use(U).id());
    }
  }

  /// Returns the registers live immediately before instruction \p Index of
  /// \p BB (convenience for call-crossing queries; O(block size)).
  BitVector liveBefore(const BasicBlock *BB, unsigned Index) const;

  /// Returns the registers live immediately after instruction \p Index.
  BitVector liveAfter(const BasicBlock *BB, unsigned Index) const;
};

} // namespace pdgc

#endif // PDGC_ANALYSIS_LIVENESS_H
