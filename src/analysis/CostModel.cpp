//===- analysis/CostModel.cpp - Appendix cost model ------------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "analysis/CostModel.h"

#include "ir/PhiElimination.h"
#include "support/Debug.h"

using namespace pdgc;

double pdgc::instCost(const Instruction &I, const CostParams &P) {
  switch (I.opcode()) {
  case Opcode::Load:
  case Opcode::SpillLoad:
    return P.LoadInstCost;
  case Opcode::Call:
    // "Inst_Cost(I) is ... undefined for i6 [the call]": the call itself is
    // not attributed to any live range.
    return 0.0;
  default:
    return P.DefaultInstCost;
  }
}

LiveRangeCosts LiveRangeCosts::compute(const Function &F, const Liveness &LV,
                                       const LoopInfo &LI,
                                       const CostParams &Params) {
  LiveRangeCosts C;
  C.recompute(F, LV, LI, Params);
  return C;
}

void LiveRangeCosts::recompute(const Function &F, const Liveness &LV,
                               const LoopInfo &LI,
                               const CostParams &ParamsIn) {
  assert(!hasPhis(F) && "cost model requires phi-free IR");

  const unsigned N = F.numVRegs();
  LiveRangeCosts &C = *this;
  C.Params = ParamsIn;
  // assign() reuses the vectors' existing heap blocks.
  C.SpillCosts.assign(N, 0.0);
  C.OpCosts.assign(N, 0.0);
  C.CallCross.assign(N, 0.0);
  C.NumDefs.assign(N, 0);
  C.NumUses.assign(N, 0);
  C.InfiniteFlag.assign(N, 0);

  for (unsigned R = 0; R != N; ++R) {
    VReg V(R);
    // Block-granular fragments stay spillable (re-spilling them strictly
    // shrinks ranges); per-use fragments and pinned registers never are.
    if ((F.isSpillTemp(V) && !F.isRespillableTemp(V)) || F.isPinned(V))
      C.InfiniteFlag[R] = 1;
  }

  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B) {
    const BasicBlock *BB = F.block(B);
    const double Freq = LI.frequency(BB);

    LV.forEachInstReverse(BB, [&](unsigned I, const BitVector &LiveAfter) {
      const Instruction &Inst = BB->inst(I);
      const double IC = instCost(Inst, Params);

      if (Inst.hasDef()) {
        unsigned D = Inst.def().id();
        ++C.NumDefs[D];
        // Spilling V stores it after each definition.
        C.SpillCosts[D] += Params.StoreCost * Freq;
        C.OpCosts[D] += IC * Freq;
      }
      for (unsigned U = 0, UE = Inst.numUses(); U != UE; ++U) {
        unsigned S = Inst.use(U).id();
        ++C.NumUses[S];
        // Spilling V loads it before each use.
        C.SpillCosts[S] += Params.LoadCost * Freq;
        C.OpCosts[S] += IC * Freq;
      }

      if (Inst.isCall()) {
        // A register is live across the call when it is live after it and
        // not defined by it (the return-value def starts at the call).
        for (unsigned LiveReg : LiveAfter.setBits()) {
          if (Inst.hasDef() && Inst.def().id() == LiveReg)
            continue;
          C.CallCross[LiveReg] += Freq;
        }
      }
    });
  }
}
