//===- analysis/LoopInfo.h - Loops and block frequencies --------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection and static block-frequency estimation. The
/// Appendix of the paper weighs every cost by an execution frequency factor
/// "obtained by loop analysis" (10 inside a loop, 1 outside); we generalize
/// to 10^depth for nested loops, the standard Chaitin/Briggs heuristic.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_ANALYSIS_LOOPINFO_H
#define PDGC_ANALYSIS_LOOPINFO_H

#include "ir/Function.h"

#include <vector>

namespace pdgc {

/// Loop nesting depths and derived frequencies for every block.
class LoopInfo {
  std::vector<unsigned> Depth; ///< Loop nesting depth per block id.
  std::vector<double> Freq;    ///< FreqFactor^depth per block id.

  LoopInfo() = default;

public:
  /// Computes loop info for \p F. \p FreqFactor is the per-nesting-level
  /// frequency multiplier (the paper's Appendix uses 10).
  static LoopInfo compute(const Function &F, double FreqFactor = 10.0);

  unsigned loopDepth(const BasicBlock *BB) const {
    assert(BB->id() < Depth.size() && "unknown block");
    return Depth[BB->id()];
  }

  /// Estimated execution frequency of \p BB relative to the entry.
  double frequency(const BasicBlock *BB) const {
    assert(BB->id() < Freq.size() && "unknown block");
    return Freq[BB->id()];
  }
};

/// Computes immediate dominators for \p F using the iterative algorithm of
/// Cooper, Harvey and Kennedy. Returns, per block id, the id of the
/// immediate dominator; the entry maps to itself and unreachable blocks map
/// to ~0u. Exposed for testing and reused by LoopInfo.
std::vector<unsigned> computeImmediateDominators(const Function &F);

} // namespace pdgc

#endif // PDGC_ANALYSIS_LOOPINFO_H
