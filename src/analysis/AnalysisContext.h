//===- analysis/AnalysisContext.h - Cross-round analysis cache --*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-allocation cache of the analyses the spill-round driver consumes.
///
/// The reuse contract: spill-code insertion only *adds instructions and
/// virtual registers inside existing blocks* — it never creates, deletes,
/// or re-wires basic blocks. Everything derived purely from the CFG shape
/// is therefore stable across spill rounds and computed exactly once per
/// allocation:
///
///   * the reverse post order (block visitation order of the dataflow
///     solver), and
///   * LoopInfo (loop nesting depths and block frequencies).
///
/// Everything that reads instructions or the register table is recomputed
/// each round — Liveness, LiveRangeCosts, and the InterferenceGraph — but
/// *into the same buffers*, so rounds after the first run against warm
/// storage instead of reallocating every set and adjacency list.
///
/// The context also owns (or borrows) the graph Arena: the flat storage
/// the interference adjacency, the RPG and the CPG carve their rows from.
/// refresh() resets it once per spill round before the rebuild, so warm
/// rounds reuse the same chunks; the fallback driver passes one arena down
/// the whole tier chain for the same reason. Allocators must not hold
/// graph row views across refresh().
///
/// Anything that changes the CFG (phi elimination splits edges!) must
/// happen before the context is constructed.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_ANALYSIS_ANALYSISCONTEXT_H
#define PDGC_ANALYSIS_ANALYSISCONTEXT_H

#include "analysis/CostModel.h"
#include "analysis/InterferenceGraph.h"
#include "analysis/LoopInfo.h"
#include "analysis/Liveness.h"
#include "ir/Function.h"
#include "support/Arena.h"

#include <memory>
#include <vector>

namespace pdgc {

/// Owns one allocation's analyses; constructed once after phi elimination,
/// refreshed (cheaply) after every spill round.
class AnalysisContext {
  const Function *Func = nullptr;
  CostParams Params;
  /// Graph storage: self-owned unless the constructor was handed an arena
  /// to reuse (the fallback driver shares one across tiers). Declared
  /// before the analyses so it exists when IG is built.
  std::unique_ptr<Arena> OwnedMem;
  Arena *Mem = nullptr;
  std::vector<unsigned> RPO; ///< Stable across spill rounds.

  static Arena *initArena(std::unique_ptr<Arena> &Owned, Arena *Reuse);

public:
  LoopInfo LI;        ///< Stable across spill rounds.
  Liveness LV;        ///< Refreshed each round (buffers reused).
  LiveRangeCosts Costs; ///< Refreshed each round (buffers reused).
  InterferenceGraph IG; ///< Refreshed each round (buffers reused).

  /// Computes every analysis for \p F, which must be phi-free and keep its
  /// CFG shape for this context's lifetime. When \p ReuseMem is non-null
  /// the context carves graph storage from it (resetting it first) instead
  /// of allocating its own arena — the fallback chain threads one arena
  /// through every tier this way.
  AnalysisContext(const Function &F, const CostParams &Params,
                  Arena *ReuseMem = nullptr);

  /// Recomputes the instruction-dependent analyses (LV, Costs, IG) for the
  /// function after spill-code insertion, reusing their buffers. The
  /// cached RPO and LoopInfo are *not* recomputed — by the reuse contract
  /// they cannot have changed. The graph arena is reset first: every graph
  /// row from the previous round is dead after this call.
  void refresh();

  const Function &function() const { return *Func; }
  const CostParams &params() const { return Params; }
  const std::vector<unsigned> &rpo() const { return RPO; }

  /// The arena graph rows live in; RPG/CPG builds carve from it too, so
  /// their lifetime matches the round's interference graph.
  Arena &arena() { return *Mem; }
};

} // namespace pdgc

#endif // PDGC_ANALYSIS_ANALYSISCONTEXT_H
