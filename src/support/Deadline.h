//===- support/Deadline.h - Cooperative deadlines / cancellation -*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic deadlines checked cooperatively inside the allocator's hot
/// loops, so `DriverOptions::TimeBudgetMs` bounds wall time instead of
/// round count. Three pieces:
///
/// * `Deadline` — a value type wrapping a steady_clock time point (or
///   "none"). Cheap to copy; `sooner()` combines a caller deadline with a
///   stage budget.
/// * `ScopedDeadline` — RAII installer of the calling thread's *ambient*
///   deadline. The driver installs one around each tier; hot loops don't
///   need the token threaded through every signature.
/// * `pollDeadline()` — the per-iteration check. Samples the clock only
///   every 64th call (a thread-local decimation counter), so a worklist
///   loop pays an increment + compare almost always and a clock read
///   rarely. Throws `DeadlineExceeded` once the ambient deadline passes;
///   `tryAllocate` catches it and returns `BUDGET_EXCEEDED`.
///
/// Polls live in: the simplify worklist, the select walks, the optimal
/// search's node visits, and the interference/liveness rebuild loops. A
/// loop body that can run for more than ~a millisecond between polls
/// should add one.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SUPPORT_DEADLINE_H
#define PDGC_SUPPORT_DEADLINE_H

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace pdgc {

/// Thrown by pollDeadline()/checkDeadline() when the calling thread's
/// ambient deadline has passed. The hardened driver maps it to a
/// BUDGET_EXCEEDED Status; nothing else should swallow it.
class DeadlineExceeded : public std::runtime_error {
public:
  explicit DeadlineExceeded(const std::string &Msg)
      : std::runtime_error(Msg) {}
};

/// A point in monotonic time work must not run past, or "none".
class Deadline {
public:
  using Clock = std::chrono::steady_clock;
  // A wall clock here would let an NTP step or DST jump expire (or
  // un-expire) every in-flight budget at once.
  static_assert(Clock::is_steady,
                "deadlines must be measured on a monotonic clock");

  /// No deadline: expired() is always false, sooner() yields the other.
  Deadline() = default;

  explicit Deadline(Clock::time_point AtIn) : At(AtIn), Set(true) {}

  /// A deadline \p Ms milliseconds from now; Ms == 0 means none (the
  /// TimeBudgetMs convention: zero disables the budget).
  static Deadline afterMs(std::uint64_t Ms) {
    if (Ms == 0)
      return Deadline();
    return Deadline(Clock::now() + std::chrono::milliseconds(Ms));
  }

  bool isSet() const { return Set; }

  bool expired() const { return Set && Clock::now() >= At; }

  /// The earlier of two deadlines ("none" loses to anything).
  Deadline sooner(Deadline Other) const {
    if (!Set)
      return Other;
    if (!Other.Set || At <= Other.At)
      return *this;
    return Other;
  }

  Clock::time_point time() const { return At; }

private:
  Clock::time_point At{};
  bool Set = false;
};

namespace deadline_detail {

/// The calling thread's ambient deadline; unset-state is encoded as
/// !isSet() so the fast path is one thread-local bool load.
extern thread_local Deadline Ambient;
extern thread_local std::uint32_t PollTick;

/// Slow path of pollDeadline(): reads the clock, throws on expiry, and
/// bumps the deadline.* counters. Out of line so the inline poll stays
/// a handful of instructions.
void pollSlow();

} // namespace deadline_detail

/// Installs \p D as the calling thread's ambient deadline for this scope,
/// *tightened* against any enclosing scope's deadline (an inner stage
/// cannot outlive its caller's budget). Restores the previous ambient on
/// destruction.
class ScopedDeadline {
public:
  explicit ScopedDeadline(Deadline D) : Saved(deadline_detail::Ambient) {
    deadline_detail::Ambient = D.sooner(Saved);
    // An already-expired deadline must surface on the *first* poll, not
    // up to 63 calls into the decimation window — align the tick so the
    // next pollDeadline() takes the slow path. (Queued server requests
    // whose budget lapsed while waiting hit exactly this case.)
    if (deadline_detail::Ambient.expired())
      deadline_detail::PollTick = 63;
  }
  ~ScopedDeadline() { deadline_detail::Ambient = Saved; }

  ScopedDeadline(const ScopedDeadline &) = delete;
  ScopedDeadline &operator=(const ScopedDeadline &) = delete;

private:
  Deadline Saved;
};

/// The calling thread's current ambient deadline (unset when no
/// ScopedDeadline is live).
inline Deadline currentDeadline() { return deadline_detail::Ambient; }

/// Cheap per-iteration cancellation check for hot loops. No ambient
/// deadline: one bool load. With one: increments a thread-local tick and
/// samples the clock every 64th call, throwing DeadlineExceeded on
/// expiry. Worst-case overshoot is 63 iterations past the deadline plus
/// one loop body — bound your loop bodies accordingly.
inline void pollDeadline() {
  if (!deadline_detail::Ambient.isSet())
    return;
  if (++deadline_detail::PollTick % 64 == 0)
    deadline_detail::pollSlow();
}

/// Undecimated check for coarse boundaries (between phases, between
/// rounds) where the clock read is noise next to the work just done.
inline void checkDeadline() {
  if (!deadline_detail::Ambient.isSet())
    return;
  deadline_detail::pollSlow();
}

} // namespace pdgc

#endif // PDGC_SUPPORT_DEADLINE_H
