//===- support/Span.h - Contiguous read-only view ---------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal non-owning view over contiguous elements, in the spirit of
/// std::span (which this codebase predates using). The CSR-backed graphs
/// return these instead of `const std::vector<T>&`, so neighbor and edge
/// iteration keeps its range-for shape while the storage moved into flat
/// arena arrays.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SUPPORT_SPAN_H
#define PDGC_SUPPORT_SPAN_H

#include "support/Debug.h"

#include <cstddef>

namespace pdgc {

/// Non-owning pointer+length view. Cheap to copy; never outlive the
/// backing storage (for arena-backed rows: the next Arena::reset()).
template <typename T> class Span {
  T *Ptr = nullptr;
  std::size_t Len = 0;

public:
  Span() = default;
  Span(T *P, std::size_t N) : Ptr(P), Len(N) {}

  T *begin() const { return Ptr; }
  T *end() const { return Ptr + Len; }
  T *data() const { return Ptr; }

  std::size_t size() const { return Len; }
  bool empty() const { return Len == 0; }

  T &operator[](std::size_t I) const {
    assert(I < Len && "Span index out of range");
    return Ptr[I];
  }

  T &front() const {
    assert(Len != 0 && "front() on empty Span");
    return Ptr[0];
  }
  T &back() const {
    assert(Len != 0 && "back() on empty Span");
    return Ptr[Len - 1];
  }
};

} // namespace pdgc

#endif // PDGC_SUPPORT_SPAN_H
