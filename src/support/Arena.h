//===- support/Arena.h - Monotonic bump allocation arena -------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A monotonic bump arena for the allocation-rate-bound graph structures
/// (interference adjacency, RPG preference lists, CPG edges and builder
/// scratch). The arena hands out pointer-stable memory from large heap
/// chunks; individual allocations are never freed — `reset()` rewinds the
/// whole arena and *keeps the chunks*, so the next build round carves from
/// warm storage without touching malloc. This is the flat-memory idiom of
/// shasta's `MemoryAsContainer.hpp`, reduced to what the analyses need.
///
/// Ownership pattern: one arena per AnalysisContext (and thus per
/// allocation attempt). The spill-round driver resets it once per round,
/// before the analyses rebuild; everything carved during the previous
/// round — CSR rows, epoch scratch, preference lists — dies at once. The
/// arena is not thread-safe; batch items each own their context and so
/// their arena, which is what keeps `--jobs=N` runs race-free.
///
/// Observability (`mem.*` counters, docs/OBSERVABILITY.md):
///   * `mem.arena_bytes_reserved` — chunk bytes obtained from the heap;
///   * `mem.arena_bytes_used`     — bytes handed out by allocate(),
///                                   flushed at reset/destruction so the
///                                   hot path never touches an atomic;
///   * `mem.arena_resets`         — reset() calls (round/tier reuse);
///   * `mem.arena_heap_fallbacks` — allocations no existing chunk could
///                                   serve, i.e. actual malloc traffic.
///
/// Determinism: chunk growth and intra-chunk padding depend only on the
/// request sequence (offsets are aligned relative to the chunk base, which
/// is itself max-aligned), so for a fixed workload the counters sum to the
/// same values at any `--jobs` count.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SUPPORT_ARENA_H
#define PDGC_SUPPORT_ARENA_H

#include "support/Debug.h"
#include "support/Stats.h"

#include <cstddef>
#include <cstring>
#include <memory>
#include <vector>

namespace pdgc {

/// Monotonic bump allocator with chunk reuse across reset() cycles.
class Arena {
  struct Chunk {
    std::unique_ptr<char[]> Mem;
    std::size_t Size;
  };

  std::vector<Chunk> Chunks;
  std::size_t Cur = 0;    ///< Chunk currently being bumped.
  std::size_t Offset = 0; ///< Bump offset within chunk Cur.
  std::size_t InitialChunkBytes;
  std::size_t UsedSinceFlush = 0; ///< Batched into mem.arena_bytes_used.

  /// Largest alignment allocate() accepts: the guarantee `new char[]`
  /// gives the chunk base, so aligning the *offset* aligns the pointer.
  static constexpr std::size_t MaxAlign = alignof(std::max_align_t);

  static std::size_t alignUp(std::size_t V, std::size_t Align) {
    return (V + Align - 1) & ~(Align - 1);
  }

  void addChunk(std::size_t AtLeast) {
    std::size_t Size = Chunks.empty() ? InitialChunkBytes
                                      : Chunks.back().Size * 2;
    if (Size < AtLeast)
      Size = alignUp(AtLeast, MaxAlign);
    Chunks.push_back(Chunk{std::unique_ptr<char[]>(new char[Size]), Size});
    Cur = Chunks.size() - 1;
    Offset = 0;
    PDGC_STAT("mem", "arena_bytes_reserved").add(Size);
    PDGC_STAT("mem", "arena_heap_fallbacks").inc();
  }

  void flushUsed() {
    if (UsedSinceFlush != 0)
      PDGC_STAT("mem", "arena_bytes_used").add(UsedSinceFlush);
    UsedSinceFlush = 0;
  }

public:
  explicit Arena(std::size_t InitialBytes = 1u << 16)
      : InitialChunkBytes(alignUp(InitialBytes ? InitialBytes : 1, MaxAlign)) {
  }

  ~Arena() { flushUsed(); }

  Arena(Arena &&) = default;
  Arena &operator=(Arena &&) = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Returns \p Bytes of uninitialized, pointer-stable memory aligned to
  /// \p Align (a power of two, at most alignof(std::max_align_t)).
  void *allocate(std::size_t Bytes, std::size_t Align) {
    assert(Align != 0 && (Align & (Align - 1)) == 0 && Align <= MaxAlign &&
           "unsupported arena alignment");
    if (Bytes == 0)
      Bytes = 1; // Distinct non-null results keep callers simple.
    // Walk forward through already-reserved chunks before falling back to
    // the heap; reset() rewinds Cur so warm rounds reuse them in order.
    while (true) {
      if (Cur < Chunks.size()) {
        const std::size_t Aligned = alignUp(Offset, Align);
        if (Aligned + Bytes <= Chunks[Cur].Size) {
          Offset = Aligned + Bytes;
          UsedSinceFlush += Bytes;
          return Chunks[Cur].Mem.get() + Aligned;
        }
        if (Cur + 1 < Chunks.size()) {
          ++Cur;
          Offset = 0;
          continue;
        }
      }
      addChunk(Bytes);
    }
  }

  /// Typed array carve; elements are uninitialized.
  template <typename T> T *allocateArray(std::size_t Count) {
    return static_cast<T *>(allocate(Count * sizeof(T), alignof(T)));
  }

  /// Typed array carve; elements are zero-filled (the common case for the
  /// degree/epoch/flag scratch the graph builders start from).
  template <typename T> T *allocateZeroed(std::size_t Count) {
    T *P = allocateArray<T>(Count);
    std::memset(static_cast<void *>(P), 0, Count * sizeof(T));
    return P;
  }

  /// Rewinds the arena to empty while keeping every chunk, so subsequent
  /// allocations reuse warm storage. Everything previously carved is dead.
  void reset() {
    flushUsed();
    Cur = 0;
    Offset = 0;
    PDGC_STAT("mem", "arena_resets").inc();
  }

  /// Total chunk bytes currently held (reserved high-water mark).
  std::size_t bytesReserved() const {
    std::size_t Total = 0;
    for (const Chunk &C : Chunks)
      Total += C.Size;
    return Total;
  }

  /// Bytes handed out since the last reset (or construction).
  std::size_t bytesUsed() const { return UsedSinceFlush; }
};

/// Minimal STL-compatible allocator over an Arena, for scratch containers
/// that want vector semantics with arena lifetime (deallocation is a no-op;
/// the memory dies at the next reset). Growth leaves the abandoned copies
/// in the arena, so reserve() from a prior-round size estimate when the
/// container is hot.
template <typename T> class ArenaAllocator {
  Arena *A;

  template <typename U> friend class ArenaAllocator;

public:
  using value_type = T;

  explicit ArenaAllocator(Arena &ArenaIn) : A(&ArenaIn) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U> &RHS) : A(RHS.A) {}

  T *allocate(std::size_t Count) { return A->allocateArray<T>(Count); }
  void deallocate(T *, std::size_t) {}

  Arena &arena() const { return *A; }

  template <typename U> bool operator==(const ArenaAllocator<U> &RHS) const {
    return A == RHS.A;
  }
  template <typename U> bool operator!=(const ArenaAllocator<U> &RHS) const {
    return A != RHS.A;
  }
};

} // namespace pdgc

#endif // PDGC_SUPPORT_ARENA_H
