//===- support/Statistics.cpp - Aggregation helpers ----------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <cmath>
#include <cstdio>

using namespace pdgc;

double pdgc::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double pdgc::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    if (V < 1e-9)
      V = 1e-9;
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

std::string pdgc::formatDouble(double Value, unsigned Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}

std::string pdgc::formatPercent(double Value, unsigned Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f%%", Decimals, Value * 100.0);
  return Buf;
}
