//===- support/Statistics.h - Aggregation helpers --------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregation helpers used by the benchmark harness: arithmetic and
/// geometric means (the paper reports geometric means across the SPECjvm98
/// suites) and ratio formatting.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SUPPORT_STATISTICS_H
#define PDGC_SUPPORT_STATISTICS_H

#include <string>
#include <vector>

namespace pdgc {

/// Returns the arithmetic mean of \p Values; 0 for an empty input.
double mean(const std::vector<double> &Values);

/// Returns the geometric mean of \p Values; 0 for an empty input.
///
/// Entries below 1e-9 (zero and negative values included) are clamped to
/// 1e-9 so a single zero ratio (e.g. "all spills eliminated") does not
/// collapse the mean to exactly zero and hide the other entries.
double geomean(const std::vector<double> &Values);

/// Formats \p Value with \p Decimals fractional digits.
std::string formatDouble(double Value, unsigned Decimals);

/// Formats \p Value as a percentage string with \p Decimals digits,
/// e.g. formatPercent(0.125, 1) == "12.5%".
std::string formatPercent(double Value, unsigned Decimals);

} // namespace pdgc

#endif // PDGC_SUPPORT_STATISTICS_H
