//===- support/CsrGraph.h - Flat CSR graph storage --------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compressed-sparse-row building blocks for the graph hot paths, backed
/// by an Arena (support/Arena.h):
///
///  * `CsrRows<T>` — per-node rows carved from one packed slab by the
///    classic two-pass count-then-fill construction, plus bounded
///    mutability: O(1) append with per-node overflow slack, relocation to
///    a fresh arena region on overflow (the abandoned region dies at the
///    next arena reset), order-preserving erase, and swap-pop. This is
///    what the interference adjacency and the CPG builder use — graphs
///    that are mostly built once but take coalescing-time edge inserts
///    and transitive-reduction deletes.
///
///  * `CsrArray<T>` — the immutable end state: one offset array (N+1
///    entries) plus one packed edge array, compacted from `CsrRows` after
///    construction settles. O(degree) contiguous row spans with no
///    per-node pointer chasing; this is what the select phase iterates.
///
/// Everything is trivially-destructible-friendly: rows never run element
/// destructors, so T must be trivially destructible (checked below) —
/// true for node ids and the POD Preference records.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SUPPORT_CSRGRAPH_H
#define PDGC_SUPPORT_CSRGRAPH_H

#include "support/Arena.h"
#include "support/Span.h"

#include <cstring>
#include <type_traits>

namespace pdgc {

/// Mutable per-node rows over arena storage. Build with init() (counted
/// capacities, packed slab) or initEmpty() (row regions allocated lazily
/// on first push). Not thread-safe; one owner per arena.
template <typename T> class CsrRows {
  static_assert(std::is_trivially_destructible_v<T>,
                "CsrRows never runs element destructors");

  T **Rows = nullptr;       ///< Per-node region pointer (arena).
  unsigned *Counts = nullptr; ///< Live entries per node.
  unsigned *Caps = nullptr;   ///< Region capacity per node.
  unsigned N = 0;

  /// First region size for rows that start empty.
  static constexpr unsigned LazyInitialCap = 4;

public:
  CsrRows() = default;

  unsigned numNodes() const { return N; }

  /// Two-pass construction, fill phase capacity known: one packed slab of
  /// sum(RowCounts[i] + Slack) entries, rows pre-sliced. Entries are
  /// uninitialized; Counts start at zero and pushes fill in order.
  void init(Arena &A, unsigned NumNodes, const unsigned *RowCounts,
            unsigned Slack) {
    N = NumNodes;
    Rows = A.allocateArray<T *>(N);
    Counts = A.allocateZeroed<unsigned>(N);
    Caps = A.allocateArray<unsigned>(N);
    std::size_t Total = 0;
    for (unsigned I = 0; I != N; ++I) {
      Caps[I] = RowCounts[I] + Slack;
      Total += Caps[I];
    }
    T *Slab = A.allocateArray<T>(Total);
    for (unsigned I = 0; I != N; ++I) {
      Rows[I] = Slab;
      Slab += Caps[I];
    }
  }

  /// All rows empty with no storage; regions are carved on first push.
  /// For builders whose final counts are unknowable up front (the CPG's
  /// transitive-reduction loop).
  void initEmpty(Arena &A, unsigned NumNodes) {
    N = NumNodes;
    Rows = A.allocateZeroed<T *>(N);
    Counts = A.allocateZeroed<unsigned>(N);
    Caps = A.allocateZeroed<unsigned>(N);
  }

  unsigned size(unsigned Node) const {
    assert(Node < N && "CsrRows node out of range");
    return Counts[Node];
  }

  Span<const T> row(unsigned Node) const {
    assert(Node < N && "CsrRows node out of range");
    return Span<const T>(Rows[Node], Counts[Node]);
  }

  Span<T> mutableRow(unsigned Node) {
    assert(Node < N && "CsrRows node out of range");
    return Span<T>(Rows[Node], Counts[Node]);
  }

  /// Appends \p V to \p Node's row; amortized O(1). On overflow the row
  /// relocates to a doubled region at the arena tail (the old region is
  /// abandoned until the next reset). The overflow branch is kept out of
  /// line so the fast path stays small enough to inline into the graph
  /// builders' hot loops — that inlining is worth 2x on the warm
  /// interference rebuild.
  void push(Arena &A, unsigned Node, T V) {
    assert(Node < N && "CsrRows node out of range");
    if (__builtin_expect(Counts[Node] == Caps[Node], 0))
      growRow(A, Node);
    Rows[Node][Counts[Node]++] = V;
  }

private:
  __attribute__((noinline, cold)) void growRow(Arena &A, unsigned Node) {
    const unsigned NewCap = Caps[Node] ? Caps[Node] * 2 : LazyInitialCap;
    T *Fresh = A.allocateArray<T>(NewCap);
    if (Counts[Node] != 0)
      std::memcpy(static_cast<void *>(Fresh), Rows[Node],
                  Counts[Node] * sizeof(T));
    Rows[Node] = Fresh;
    Caps[Node] = NewCap;
    PDGC_STAT("mem", "csr_row_relocations").inc();
  }

public:

  /// Removes entry \p Idx preserving the order of the remainder (the CPG
  /// needs stable successor order for deterministic select tie-breaks).
  void eraseAt(unsigned Node, unsigned Idx) {
    assert(Node < N && Idx < Counts[Node] && "CsrRows erase out of range");
    T *R = Rows[Node];
    std::memmove(static_cast<void *>(R + Idx), R + Idx + 1,
                 (Counts[Node] - Idx - 1) * sizeof(T));
    --Counts[Node];
  }

  /// Removes entry \p Idx by swapping the last entry into its place.
  void swapPop(unsigned Node, unsigned Idx) {
    assert(Node < N && Idx < Counts[Node] && "CsrRows swapPop out of range");
    Rows[Node][Idx] = Rows[Node][Counts[Node] - 1];
    --Counts[Node];
  }

  void clearRow(unsigned Node) {
    assert(Node < N && "CsrRows node out of range");
    Counts[Node] = 0;
  }

  /// Empties every row while keeping the regions and their capacities: the
  /// warm-rebuild primitive. A rebuild over the same node set pushes into
  /// retained storage and relocates nothing.
  void resetCounts() {
    if (N != 0)
      std::memset(static_cast<void *>(Counts), 0, N * sizeof(unsigned));
  }

  /// \name Raw builder access
  /// The arrays behind the rows, for tight rebuild loops that hoist them
  /// into locals. Element stores through the returned pointers are
  /// unsigned-typed, so a loop that goes through the members instead
  /// makes the compiler assume each store may alias this class's own
  /// metadata and reload it per push — the reloads cost the warm
  /// interference rebuild ~40%. Callers own the invariants: never write
  /// past rawCaps()[I], keep rawCounts() in step with the entries
  /// written, and fall back to push() when a row is full. Invalidated by
  /// init()/initEmpty().
  /// @{
  T *const *rawRows() { return Rows; }
  unsigned *rawCounts() { return Counts; }
  const unsigned *rawCaps() const { return Caps; }
  /// @}
};

/// Immutable packed CSR: offsets[N+1] + edges[offsets[N]]. The read-side
/// shape of a settled CsrRows build.
template <typename T> class CsrArray {
  static_assert(std::is_trivially_destructible_v<T>,
                "CsrArray never runs element destructors");

  const T *Edges = nullptr;
  const unsigned *Offsets = nullptr; ///< N+1 entries.
  unsigned N = 0;

public:
  CsrArray() = default;

  /// Packs \p RowsIn into fresh offset+edge arrays carved from \p A.
  static CsrArray compact(Arena &A, const CsrRows<T> &RowsIn) {
    CsrArray G;
    G.N = RowsIn.numNodes();
    unsigned *Offs = A.allocateArray<unsigned>(G.N + 1);
    unsigned Total = 0;
    for (unsigned I = 0; I != G.N; ++I) {
      Offs[I] = Total;
      Total += RowsIn.size(I);
    }
    Offs[G.N] = Total;
    T *Packed = A.allocateArray<T>(Total);
    for (unsigned I = 0; I != G.N; ++I) {
      Span<const T> R = RowsIn.row(I);
      if (!R.empty())
        std::memcpy(static_cast<void *>(Packed + Offs[I]), R.data(),
                    R.size() * sizeof(T));
    }
    G.Offsets = Offs;
    G.Edges = Packed;
    return G;
  }

  unsigned numNodes() const { return N; }

  unsigned numEdges() const { return N == 0 ? 0 : Offsets[N]; }

  Span<const T> row(unsigned Node) const {
    assert(Node < N && "CsrArray node out of range");
    return Span<const T>(Edges + Offsets[Node],
                         Offsets[Node + 1] - Offsets[Node]);
  }
};

} // namespace pdgc

#endif // PDGC_SUPPORT_CSRGRAPH_H
