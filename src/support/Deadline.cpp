//===- support/Deadline.cpp - Cooperative deadlines / cancellation --------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "support/Deadline.h"

#include "support/Stats.h"

namespace pdgc {
namespace deadline_detail {

thread_local Deadline Ambient;
thread_local std::uint32_t PollTick = 0;

void pollSlow() {
  PDGC_STAT("deadline", "polls").inc();
  if (!Ambient.expired())
    return;
  PDGC_STAT("deadline", "expired").inc();
  throw DeadlineExceeded("deadline exceeded");
}

} // namespace deadline_detail
} // namespace pdgc
