//===- support/Debug.h - Assertions and unreachable markers ----*- C++ -*-===//
//
// Part of the PDGC project: a reproduction of "Preference-Directed Graph
// Coloring" (Koseki, Komatsu, Nakatani; PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small debugging helpers shared by every PDGC library: an `unreachable`
/// marker that aborts with a message in all build modes, and a lightweight
/// runtime check that is kept in release builds (unlike `assert`).
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SUPPORT_DEBUG_H
#define PDGC_SUPPORT_DEBUG_H

#include <cassert>

namespace pdgc {

/// Aborts the program, reporting \p Msg together with the source location.
///
/// Use this to mark control-flow points that program invariants make
/// impossible, e.g. the default arm of a fully covered switch. Unlike
/// `assert(false)` it also fires in release builds, so an invariant violation
/// never silently falls through into undefined behaviour.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

/// Aborts with \p Msg if \p Cond is false, in every build mode.
///
/// Reserved for cheap checks guarding memory safety (index bounds on
/// externally supplied data); hot-path invariants should use `assert`.
void checkInternal(bool Cond, const char *Msg, const char *File,
                   unsigned Line);

} // namespace pdgc

#define pdgc_unreachable(MSG)                                                  \
  ::pdgc::unreachableInternal(MSG, __FILE__, __LINE__)

#define pdgc_check(COND, MSG)                                                  \
  ::pdgc::checkInternal(static_cast<bool>(COND), MSG, __FILE__, __LINE__)

#endif // PDGC_SUPPORT_DEBUG_H
