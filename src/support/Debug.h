//===- support/Debug.h - Assertions and unreachable markers ----*- C++ -*-===//
//
// Part of the PDGC project: a reproduction of "Preference-Directed Graph
// Coloring" (Koseki, Komatsu, Nakatani; PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small debugging helpers shared by every PDGC library: an `unreachable`
/// marker that aborts with a message in all build modes, and a lightweight
/// runtime check that is kept in release builds (unlike `assert`).
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SUPPORT_DEBUG_H
#define PDGC_SUPPORT_DEBUG_H

#include <cassert>
#include <stdexcept>
#include <string>

namespace pdgc {

/// Exception thrown by `pdgc_check` / `pdgc_unreachable` while a
/// ScopedErrorTrap is active. The hardened allocation driver installs a
/// trap around each allocator round so an internal invariant violation is
/// converted into a structured AllocatorInternal error (and the next
/// fallback tier gets a chance) instead of aborting the process.
class FatalError : public std::runtime_error {
public:
  explicit FatalError(const std::string &Msg) : std::runtime_error(Msg) {}
};

/// While at least one instance is alive on this thread, failed
/// `pdgc_check`s and reached `pdgc_unreachable`s throw FatalError instead
/// of printing and aborting. Nests; restores the previous behaviour on
/// destruction.
class ScopedErrorTrap {
public:
  ScopedErrorTrap();
  ~ScopedErrorTrap();
  ScopedErrorTrap(const ScopedErrorTrap &) = delete;
  ScopedErrorTrap &operator=(const ScopedErrorTrap &) = delete;

  /// True when a trap is active on the calling thread.
  static bool active();
};

/// Aborts the program, reporting \p Msg together with the source location.
///
/// Use this to mark control-flow points that program invariants make
/// impossible, e.g. the default arm of a fully covered switch. Unlike
/// `assert(false)` it also fires in release builds, so an invariant violation
/// never silently falls through into undefined behaviour.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

/// Aborts with \p Msg if \p Cond is false, in every build mode.
///
/// Reserved for cheap checks guarding memory safety (index bounds on
/// externally supplied data); hot-path invariants should use `assert`.
void checkInternal(bool Cond, const char *Msg, const char *File,
                   unsigned Line);

} // namespace pdgc

#define pdgc_unreachable(MSG)                                                  \
  ::pdgc::unreachableInternal(MSG, __FILE__, __LINE__)

#define pdgc_check(COND, MSG)                                                  \
  ::pdgc::checkInternal(static_cast<bool>(COND), MSG, __FILE__, __LINE__)

#endif // PDGC_SUPPORT_DEBUG_H
