//===- support/Subprocess.h - Forked sandbox child processes ----*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal fork-without-exec subprocess abstraction for crash
/// containment (docs/ROBUSTNESS.md, "Crash containment"). The parent
/// forks a child that runs a caller-supplied function over a pipe pair
/// (requests flow parent→child, responses child→parent; the server layer
/// speaks FrameCodec frames over these fds) and never returns to the
/// caller's stack: the child exits via `_exit`, skipping atexit handlers,
/// static destructors, and sanitizer leak checks that are meaningless in
/// a forked copy.
///
/// Design constraints, all load-bearing:
///
///  - **No exec.** The child must run allocator code already linked into
///    the parent image, with the parent's registered allocators and any
///    fault plan armed at fork time (chaos plans propagate to children by
///    inheritance — see FaultInjection.h). Forking a multithreaded parent
///    is safe here because the child's main is async-signal-tame by
///    construction: glibc reinitializes its allocator locks across fork,
///    and the child never spawns threads.
///
///  - **rlimit sandbox.** Optional RLIMIT_AS / RLIMIT_CPU caps applied in
///    the child before user code runs, so a runaway allocation or a
///    wedged loop is terminated by the kernel (SIGKILL / SIGXCPU) even if
///    it never reaches a cooperative `pollDeadline()` site. Address-space
///    caps default to off: sanitizer runtimes reserve terabytes of shadow
///    and an AS cap breaks them.
///
///  - **Reaping is explicit and single-owner.** Exactly one caller thread
///    drives `tryWait()`/`wait()`; the result is cached so the status
///    outlives the zombie. `waitpid` loops on EINTR (the supervisor's
///    SIGCHLD handler deliberately lacks SA_RESTART).
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SUPPORT_SUBPROCESS_H
#define PDGC_SUPPORT_SUBPROCESS_H

#include <functional>
#include <string>
#include <sys/types.h>

namespace pdgc {

/// Resource caps applied inside the child before its main function runs.
/// Zero means "leave the inherited limit alone".
struct SubprocessLimits {
  /// RLIMIT_AS cap in MiB. Keep 0 under sanitizers (shadow reservations).
  unsigned AddressSpaceMb = 0;
  /// RLIMIT_CPU cap in seconds. The kernel delivers SIGXCPU at the soft
  /// limit and SIGKILL one second later, so a wedged worker dies even
  /// without the supervisor's watchdog.
  unsigned CpuSeconds = 0;
};

/// Terminal (or not-yet-terminal) state of a child, decoded from the
/// waitpid status word.
struct WaitStatus {
  enum Kind {
    Running,  ///< Not exited yet (tryWait with a live child).
    Exited,   ///< _exit(Code).
    Signaled, ///< Killed by signal Code (SIGSEGV, SIGABRT, SIGKILL, ...).
  };
  Kind State = Running;
  int Code = 0;

  bool alive() const { return State == Running; }

  /// Human-readable form for dossiers and typed CRASHED responses:
  /// "exit 10", "signal 11 (SIGSEGV)".
  std::string toString() const;
};

/// One forked child with a request pipe (parent writes) and a response
/// pipe (parent reads). Movable, not copyable; the destructor closes the
/// pipes but does NOT kill or reap a live child — supervisors own the
/// child lifecycle explicitly.
class Subprocess {
public:
  /// The child-side main. Receives the child ends of the two pipes
  /// (InFd: read requests, OutFd: write responses); its return value
  /// becomes the child's exit code. It must not return control flow to
  /// the forked copy of the caller — spawn() passes the result straight
  /// to `_exit`.
  using ChildMain = std::function<int(int InFd, int OutFd)>;

  Subprocess() = default;
  ~Subprocess();
  Subprocess(const Subprocess &) = delete;
  Subprocess &operator=(const Subprocess &) = delete;

  /// Forks the child. In the child: resets disposition of termination
  /// signals to default, closes every fd except the pipe ends and
  /// stderr, applies \p Limits, runs \p Main, and `_exit`s with its
  /// return value. Returns false (with \p Error set) if the pipes or the
  /// fork itself fail; the fault site `worker.spawn` is probed by the
  /// caller, not here — this layer is fault-free plumbing.
  bool spawn(const SubprocessLimits &Limits, const ChildMain &Main,
             std::string *Error = nullptr);

  /// Parent-side pipe ends. -1 when not running or already closed.
  int writeFd() const { return ReqWr; }
  int readFd() const { return RespRd; }
  pid_t pid() const { return Pid; }
  bool started() const { return Pid > 0; }

  /// Closes the parent-side pipe ends (EOF to the child; a well-behaved
  /// child main exits 0 on request-pipe EOF). Idempotent.
  void closePipes();

  /// Sends \p Signo to the child if it has not been reaped yet. Safe to
  /// call on an exited-but-unreaped zombie (the signal is discarded).
  void kill(int Signo);

  /// Non-blocking reap. Returns Running while the child is alive; once a
  /// terminal status is observed it is cached and returned forever (the
  /// pid must not be waited on again — it may be recycled).
  WaitStatus tryWait();

  /// Blocking reap with EINTR retry. Caches like tryWait().
  WaitStatus wait();

private:
  pid_t Pid = -1;
  int ReqWr = -1;  ///< Parent writes requests here.
  int RespRd = -1; ///< Parent reads responses here.
  bool Reaped = false;
  WaitStatus Cached;
};

} // namespace pdgc

#endif // PDGC_SUPPORT_SUBPROCESS_H
