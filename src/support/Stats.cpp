//===- support/Stats.cpp - Allocator-wide statistic counters ---------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <map>

using namespace pdgc;

StatRegistry &StatRegistry::get() {
  // Leaked on purpose: counters living in function-local statics may be
  // touched during static destruction; a destroyed registry would turn
  // that into use-after-free.
  static StatRegistry *Registry = new StatRegistry();
  return *Registry;
}

std::uint64_t StatsSnapshot::lookup(const std::string &Key) const {
  auto It = std::lower_bound(
      Counters.begin(), Counters.end(), Key,
      [](const auto &Entry, const std::string &K) { return Entry.first < K; });
  if (It != Counters.end() && It->first == Key)
    return It->second;
  return 0;
}

StatsSnapshot StatsSnapshot::diff(const StatsSnapshot &Baseline) const {
  StatsSnapshot Out;
  for (const auto &[Key, Value] : Counters) {
    const std::uint64_t Delta = Value - Baseline.lookup(Key);
    if (Delta != 0)
      Out.Counters.emplace_back(Key, Delta);
  }
  return Out;
}

std::string StatsSnapshot::toText(const std::string &LinePrefix) const {
  std::string Out;
  for (const auto &[Key, Value] : Counters)
    Out += LinePrefix + Key + " = " + std::to_string(Value) + "\n";
  return Out;
}

std::string StatsSnapshot::toJson() const {
  std::string Out = "{";
  bool First = true;
  for (const auto &[Key, Value] : Counters) {
    if (!First)
      Out += ",";
    First = false;
    // Keys are identifier-style ("group.name"); no escaping needed.
    Out += "\"" + Key + "\":" + std::to_string(Value);
  }
  Out += "}";
  return Out;
}

#ifndef PDGC_DISABLE_STATS

StatCounter::StatCounter(const char *GroupIn, const char *NameIn)
    : Group(GroupIn), Name(NameIn) {
  StatRegistry::get().registerCounter(this);
}

void StatRegistry::registerCounter(StatCounter *C) {
  MutexLock Lock(Mu);
  C->Next = Head;
  Head = C;
}

StatCounter &StatRegistry::counter(const std::string &Group,
                                   const std::string &Name) {
  MutexLock Lock(Mu);
  for (StatCounter *C = Head; C; C = C->Next)
    if (Group == C->Group && Name == C->Name)
      return *C;
  // Own the name strings alongside the counter so its const char* members
  // stay valid; the tag ctor skips self-registration (this thread already
  // holds Mutex) and the node is chained manually below.
  DynamicNames.push_back(
      std::make_unique<std::pair<std::string, std::string>>(Group, Name));
  const auto &Names = *DynamicNames.back();
  Dynamic.push_back(std::unique_ptr<StatCounter>(
      new StatCounter(Names.first.c_str(), Names.second.c_str(),
                      StatCounter::NoRegisterTag{})));
  StatCounter &Ref = *Dynamic.back();
  Ref.Next = Head;
  Head = &Ref;
  return Ref;
}

StatsSnapshot StatRegistry::snapshot() const {
  std::map<std::string, std::uint64_t> Merged;
  {
    MutexLock Lock(Mu);
    for (const StatCounter *C = Head; C; C = C->Next)
      Merged[std::string(C->group()) + "." + C->name()] += C->value();
  }
  StatsSnapshot Out;
  Out.Counters.assign(Merged.begin(), Merged.end());
  return Out;
}

void StatRegistry::reset() {
  MutexLock Lock(Mu);
  for (StatCounter *C = Head; C; C = C->Next)
    C->Value.store(0, std::memory_order_relaxed);
}

#else // PDGC_DISABLE_STATS

StatCounter &StatRegistry::counter(const std::string &, const std::string &) {
  static StatCounter Stub("", "");
  return Stub;
}

StatsSnapshot StatRegistry::snapshot() const { return StatsSnapshot(); }

void StatRegistry::reset() {}

#endif // PDGC_DISABLE_STATS
