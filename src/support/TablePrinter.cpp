//===- support/TablePrinter.cpp - Aligned text tables ---------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"

#include "support/Debug.h"

#include <cstdio>

using namespace pdgc;

void TablePrinter::setHeader(std::vector<std::string> Columns) {
  assert(Rows.empty() && "setHeader must precede addRow");
  Header = std::move(Columns);
}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  assert(!Header.empty() && "setHeader must be called first");
  Cells.resize(Header.size());
  Rows.push_back(std::move(Cells));
}

void TablePrinter::print() const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (unsigned I = 0, E = Header.size(); I != E; ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (unsigned I = 0, E = Row.size(); I != E; ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();

  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;

  std::printf("\n== %s ==\n", Title.c_str());
  auto PrintRule = [&] {
    for (size_t I = 0; I != Total; ++I)
      std::putchar('-');
    std::putchar('\n');
  };
  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (unsigned I = 0, E = Header.size(); I != E; ++I) {
      const std::string &Cell = I < Row.size() ? Row[I] : std::string();
      // First column left-aligned (labels), the rest right-aligned (numbers).
      if (I == 0)
        std::printf("%-*s  ", static_cast<int>(Widths[I]), Cell.c_str());
      else
        std::printf("%*s  ", static_cast<int>(Widths[I]), Cell.c_str());
    }
    std::putchar('\n');
  };

  PrintRule();
  PrintRow(Header);
  PrintRule();
  for (const auto &Row : Rows)
    PrintRow(Row);
  PrintRule();
}
