//===- support/FaultInjection.cpp - Deterministic fault injection ---------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include "support/Debug.h"
#include "support/Stats.h"
#include "support/ThreadAnnotations.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

namespace pdgc {
namespace fault {

// The spec parser is compiled unconditionally: a faults-off build still
// diagnoses a malformed PDGC_FAULTS value instead of silently accepting
// it (the resulting plan just installs nowhere).

namespace {

bool parseUInt64(const std::string &Text, std::uint64_t &Out) {
  if (Text.empty() || Text.size() > 18)
    return false;
  std::uint64_t Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    Value = Value * 10 + static_cast<std::uint64_t>(C - '0');
  }
  Out = Value;
  return true;
}

std::string parseOneRule(const std::string &Text, FaultRule &Rule) {
  std::size_t Colon = Text.find(':');
  if (Colon == std::string::npos || Colon == 0)
    return "rule '" + Text + "' is not site:action";
  Rule.SitePattern = Text.substr(0, Colon);

  std::string Rest = Text.substr(Colon + 1);
  std::string ActionText = Rest;
  std::string TriggerText;
  std::size_t At = Rest.find('@');
  if (At != std::string::npos) {
    ActionText = Rest.substr(0, At);
    TriggerText = Rest.substr(At + 1);
  }

  if (ActionText == "fatal") {
    Rule.Act = Action::Fatal;
  } else if (ActionText == "status") {
    Rule.Act = Action::Status;
  } else if (ActionText.compare(0, 6, "delay=") == 0) {
    Rule.Act = Action::Delay;
    std::uint64_t Ms = 0;
    if (!parseUInt64(ActionText.substr(6), Ms))
      return "bad delay in '" + Text + "'";
    // Cap so a typo'd plan cannot wedge a run; delays exist to trip
    // deadlines, and deadlines under test are tens of milliseconds.
    Rule.DelayMs = static_cast<unsigned>(std::min<std::uint64_t>(Ms, 1000));
  } else {
    return "unknown action '" + ActionText + "' (want fatal|status|delay=MS)";
  }

  bool SawTrigger = false;
  std::size_t Pos = 0;
  while (Pos < TriggerText.size()) {
    std::size_t Comma = TriggerText.find(',', Pos);
    std::string Item = TriggerText.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? TriggerText.size() : Comma + 1;

    std::size_t Eq = Item.find('=');
    if (Eq == std::string::npos)
      return "bad trigger '" + Item + "' (want key=value)";
    std::string Key = Item.substr(0, Eq);
    std::uint64_t Value = 0;
    if (!parseUInt64(Item.substr(Eq + 1), Value))
      return "bad number in trigger '" + Item + "'";

    if (Key == "n") {
      if (Value == 0)
        return "trigger n= must be >= 1";
      Rule.OnHit = Value;
      SawTrigger = true;
    } else if (Key == "every") {
      if (Value == 0)
        return "trigger every= must be >= 1";
      Rule.EveryHit = Value;
      SawTrigger = true;
    } else if (Key == "p") {
      if (Value == 0 || Value > 100)
        return "trigger p= must be 1..100";
      Rule.Percent = static_cast<unsigned>(Value);
      SawTrigger = true;
    } else if (Key == "seed") {
      Rule.Seed = Value;
    } else {
      return "unknown trigger '" + Key + "' (want n|every|p|seed)";
    }
  }

  if (!SawTrigger)
    Rule.OnHit = 1;
  return "";
}

} // namespace

std::string parseFaultSpec(const std::string &Spec, FaultPlan &Plan) {
  Plan.Rules.clear();
  std::size_t Pos = 0;
  while (Pos <= Spec.size()) {
    std::size_t Semi = Spec.find(';', Pos);
    std::string RuleText = Spec.substr(
        Pos, Semi == std::string::npos ? std::string::npos : Semi - Pos);
    Pos = Semi == std::string::npos ? Spec.size() + 1 : Semi + 1;
    if (RuleText.empty())
      continue;
    FaultRule Rule;
    std::string Error = parseOneRule(RuleText, Rule);
    if (!Error.empty())
      return Error;
    Plan.Rules.push_back(std::move(Rule));
  }
  if (Plan.Rules.empty())
    return "empty fault spec";
  return "";
}

bool installPlanFromEnv(std::string *Error) {
  const char *Spec = std::getenv("PDGC_FAULTS");
  if (!Spec || !*Spec)
    return true;
  FaultPlan Plan;
  std::string Diag = parseFaultSpec(Spec, Plan);
  if (!Diag.empty()) {
    if (Error)
      *Error = Diag;
    return false;
  }
  installPlan(std::move(Plan));
  return true;
}

#ifndef PDGC_DISABLE_FAULTS

namespace {

/// Registry of every site whose PDGC_FAULT_POINT has executed at least
/// once, plus the installed plan. Mirrors StatRegistry: a leaked
/// singleton, an intrusive chain under a mutex for registration, and a
/// relaxed atomic flag read on the hot path.
class FaultRegistry {
public:
  static FaultRegistry &get() {
    static FaultRegistry *Instance = new FaultRegistry();
    return *Instance;
  }

  void registerSite(FaultSite &Site) {
    MutexLock Lock(Mu);
    Site.Next = Head;
    Head = &Site;
  }

  void install(FaultPlan NewPlan) {
    MutexLock Lock(Mu);
    Plan = std::move(NewPlan);
    Armed.store(!Plan.Rules.empty(), std::memory_order_release);
  }

  void clear() {
    MutexLock Lock(Mu);
    Armed.store(false, std::memory_order_release);
    Plan.Rules.clear();
  }

  bool armed() const { return Armed.load(std::memory_order_acquire); }

  /// The installed plan. Only valid while armed; installPlan documents
  /// that plans change only at quiescent points, so the hot path reads
  /// without Mu. That contract lives outside the type system, hence the
  /// analysis opt-out (the canonical PDGC_NO_THREAD_SAFETY_ANALYSIS use;
  /// see docs/STATIC_ANALYSIS.md before adding another).
  const FaultPlan &plan() const PDGC_NO_THREAD_SAFETY_ANALYSIS {
    return Plan;
  }

  FaultSite *head() {
    MutexLock Lock(Mu);
    return Head;
  }

private:
  FaultRegistry() = default;

  mutable Mutex Mu;
  /// Head of the intrusive site chain; links (FaultSite::Next) are
  /// written only under Mu. Unlocked traversal from a head() snapshot is
  /// safe: registration only ever prepends.
  FaultSite *Head PDGC_GUARDED_BY(Mu) = nullptr;
  FaultPlan Plan PDGC_GUARDED_BY(Mu);
  std::atomic<bool> Armed{false};
};

bool matchesPattern(const std::string &Pattern, const char *Name) {
  if (!Pattern.empty() && Pattern.back() == '*')
    return std::string(Name).compare(0, Pattern.size() - 1, Pattern, 0,
                                     Pattern.size() - 1) == 0;
  return Pattern == Name;
}

/// SplitMix64 finalizer (same constants as support/Rng.h). Hashing
/// (seed, site name, hit index) instead of drawing from a shared stream
/// keeps probability triggers deterministic under any thread
/// interleaving: each (site, hit) pair rolls the same number always.
std::uint64_t mix64(std::uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

std::uint64_t hashName(const char *Name) {
  std::uint64_t H = 1469598103934665603ULL; // FNV-1a
  for (const char *P = Name; *P; ++P)
    H = (H ^ static_cast<unsigned char>(*P)) * 1099511628211ULL;
  return H;
}

bool ruleTriggers(const FaultRule &Rule, const char *SiteName,
                  std::uint64_t HitIndex) {
  if (Rule.OnHit != 0)
    return HitIndex == Rule.OnHit;
  if (Rule.EveryHit != 0)
    return HitIndex % Rule.EveryHit == 0;
  if (Rule.Percent != 0) {
    std::uint64_t Roll =
        mix64(mix64(Rule.Seed ^ hashName(SiteName)) ^ HitIndex) % 100;
    return Roll < Rule.Percent;
  }
  return false;
}

} // namespace

FaultSite::FaultSite(const char *NameIn) : Name(NameIn) {
  FaultRegistry::get().registerSite(*this);
}

bool armed() { return FaultRegistry::get().armed(); }

void hitImpl(FaultSite &Site) {
  // fetch_add returns the pre-increment value; +1 makes indices 1-based
  // so `n=1` means "the first time control reaches this site".
  std::uint64_t HitIndex =
      Site.Hits.fetch_add(1, std::memory_order_relaxed) + 1;

  const FaultPlan &Plan = FaultRegistry::get().plan();
  for (const FaultRule &Rule : Plan.Rules) {
    if (!matchesPattern(Rule.SitePattern, Site.Name) ||
        !ruleTriggers(Rule, Site.Name, HitIndex))
      continue;

    Site.Fires.fetch_add(1, std::memory_order_relaxed);
    switch (Rule.Act) {
    case Action::Fatal:
      PDGC_STAT("fault", "injected_fatal").inc();
      throw FatalError(std::string("injected fault: fatal at ") + Site.Name);
    case Action::Status:
      PDGC_STAT("fault", "injected_status").inc();
      throw InjectedFault(std::string("injected fault: status at ") +
                          Site.Name);
    case Action::Delay:
      PDGC_STAT("fault", "injected_delay").inc();
      std::this_thread::sleep_for(std::chrono::milliseconds(Rule.DelayMs));
      return; // A delay consumed this hit; later rules don't stack on it.
    }
  }
}

void installPlan(FaultPlan Plan) { FaultRegistry::get().install(std::move(Plan)); }

void clearPlan() { FaultRegistry::get().clear(); }

bool compiledIn() { return true; }

std::vector<SiteInfo> siteSnapshot() {
  std::vector<SiteInfo> Out;
  for (FaultSite *S = FaultRegistry::get().head(); S; S = S->Next) {
    SiteInfo Info;
    Info.Name = S->Name;
    Info.Hits = S->Hits.load(std::memory_order_relaxed);
    Info.Fires = S->Fires.load(std::memory_order_relaxed);
    Out.push_back(std::move(Info));
  }
  std::sort(Out.begin(), Out.end(),
            [](const SiteInfo &A, const SiteInfo &B) { return A.Name < B.Name; });
  return Out;
}

void resetSiteCounters() {
  for (FaultSite *S = FaultRegistry::get().head(); S; S = S->Next) {
    S->Hits.store(0, std::memory_order_relaxed);
    S->Fires.store(0, std::memory_order_relaxed);
  }
}

#else // PDGC_DISABLE_FAULTS

// Stubs so tools link unchanged in a faults-off build; a plan parses
// (and a malformed one is still diagnosed) but installs nowhere, and
// the site set is empty.

void installPlan(FaultPlan) {}
void clearPlan() {}

bool compiledIn() { return false; }

std::vector<SiteInfo> siteSnapshot() { return {}; }

void resetSiteCounters() {}

#endif // PDGC_DISABLE_FAULTS

} // namespace fault
} // namespace pdgc
