//===- support/Debug.cpp - Assertions and unreachable markers ------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "support/Debug.h"

#include <cstdio>
#include <cstdlib>

using namespace pdgc;

namespace {

/// Nesting depth of active error traps on this thread.
thread_local unsigned TrapDepth = 0;

[[noreturn]] void raise(const char *Msg, const char *File, unsigned Line,
                        const char *Kind) {
  if (TrapDepth > 0)
    throw FatalError(std::string(File) + ":" + std::to_string(Line) + ": " +
                     Kind + ": " + Msg);
  std::fprintf(stderr, "%s:%u: %s: %s\n", File, Line, Kind, Msg);
  std::abort();
}

} // namespace

ScopedErrorTrap::ScopedErrorTrap() { ++TrapDepth; }
ScopedErrorTrap::~ScopedErrorTrap() { --TrapDepth; }
bool ScopedErrorTrap::active() { return TrapDepth > 0; }

void pdgc::unreachableInternal(const char *Msg, const char *File,
                               unsigned Line) {
  raise(Msg, File, Line, "unreachable executed");
}

void pdgc::checkInternal(bool Cond, const char *Msg, const char *File,
                         unsigned Line) {
  if (Cond)
    return;
  raise(Msg, File, Line, "check failed");
}
