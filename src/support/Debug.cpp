//===- support/Debug.cpp - Assertions and unreachable markers ------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "support/Debug.h"

#include <cstdio>
#include <cstdlib>

using namespace pdgc;

void pdgc::unreachableInternal(const char *Msg, const char *File,
                               unsigned Line) {
  std::fprintf(stderr, "%s:%u: unreachable executed: %s\n", File, Line, Msg);
  std::abort();
}

void pdgc::checkInternal(bool Cond, const char *Msg, const char *File,
                         unsigned Line) {
  if (Cond)
    return;
  std::fprintf(stderr, "%s:%u: check failed: %s\n", File, Line, Msg);
  std::abort();
}
