//===- support/Tracing.cpp - Phase timers and Chrome tracing ---------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "support/Tracing.h"

#include "support/Stats.h"
#include "support/ThreadAnnotations.h"

#include <atomic>
#include <cstdio>
#include <map>

using namespace pdgc;

namespace {

using Clock = std::chrono::steady_clock;

/// Gate for ScopedTimer; relaxed because the flag only toggles between
/// measurement sections, never mid-scope on the hot path.
std::atomic<bool> TimersOn{false};

struct TimerAgg {
  std::uint64_t Count = 0;
  std::uint64_t TotalNs = 0;
};

struct TimerRegistry {
  Mutex Mu;
  std::map<std::string, TimerAgg> Phases PDGC_GUARDED_BY(Mu);
};

TimerRegistry &timers() {
  static TimerRegistry *R = new TimerRegistry(); // leaked, see StatRegistry
  return *R;
}

/// One collected trace event.
struct TraceEvent {
  std::string Name;
  const char *Category;
  char Phase;          ///< 'B', 'E' or 'i'.
  std::uint64_t TsNs;  ///< Since trace start.
  unsigned Tid;
  std::string ArgsJson;
};

struct TraceBuffer {
  Mutex Mu;
  std::vector<TraceEvent> Events PDGC_GUARDED_BY(Mu);
  Clock::time_point Epoch PDGC_GUARDED_BY(Mu);
};

TraceBuffer &buffer() {
  static TraceBuffer *B = new TraceBuffer(); // leaked, see StatRegistry
  return *B;
}

std::atomic<bool> Collecting{false};

thread_local unsigned ThreadLane = 0;

thread_local std::uint64_t ThreadRequestId = 0;

/// Folds the thread's request id into an event's args JSON so the span
/// can be joined against the flight recorder. "" stays "" when no
/// request is active; an existing object gains a leading "req" member.
std::string withRequestId(std::string ArgsJson) {
  if (ThreadRequestId == 0)
    return ArgsJson;
  const std::string Req = "\"req\":" + std::to_string(ThreadRequestId);
  if (ArgsJson.empty())
    return "{" + Req + "}";
  if (ArgsJson.size() >= 2 && ArgsJson.front() == '{' && ArgsJson[1] != '}')
    return "{" + Req + "," + ArgsJson.substr(1);
  return "{" + Req + "}";
}

void record(std::string Name, const char *Category, char Phase,
            std::string ArgsJson) {
  TraceBuffer &B = buffer();
  const Clock::time_point Now = Clock::now();
  // Epoch is read under the lock: start() writes it under the same lock,
  // so TSan sees a clean happens-before even if a trace is (ab)used
  // concurrently with start().
  MutexLock Lock(B.Mu);
  const std::uint64_t Ts = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Now - B.Epoch)
          .count());
  B.Events.push_back(TraceEvent{std::move(Name), Category, Phase, Ts,
                                ThreadLane, std::move(ArgsJson)});
}

void appendEventJson(std::string &Out, const TraceEvent &E) {
  char Ts[32];
  // Chrome's ts unit is microseconds; keep nanosecond precision as a
  // fraction.
  std::snprintf(Ts, sizeof(Ts), "%llu.%03u",
                static_cast<unsigned long long>(E.TsNs / 1000),
                static_cast<unsigned>(E.TsNs % 1000));
  Out += "{\"name\":\"";
  Out += trace::jsonEscape(E.Name);
  Out += "\",\"cat\":\"";
  Out += E.Category;
  Out += "\",\"ph\":\"";
  Out += E.Phase;
  Out += "\",\"ts\":";
  Out += Ts;
  Out += ",\"pid\":1,\"tid\":";
  Out += std::to_string(E.Tid);
  if (E.Phase == 'i')
    Out += ",\"s\":\"t\""; // thread-scoped instant
  if (!E.ArgsJson.empty())
    Out += ",\"args\":" + E.ArgsJson;
  Out += "}";
}

} // namespace

bool pdgc::timersEnabled() {
  return TimersOn.load(std::memory_order_relaxed);
}

void pdgc::setTimersEnabled(bool On) {
  TimersOn.store(On, std::memory_order_relaxed);
}

void pdgc::addTimerSample(const std::string &Phase, std::uint64_t Nanos) {
  TimerRegistry &R = timers();
  MutexLock Lock(R.Mu);
  TimerAgg &A = R.Phases[Phase];
  ++A.Count;
  A.TotalNs += Nanos;
}

std::vector<TimerStat> pdgc::timerSnapshot() {
  TimerRegistry &R = timers();
  std::vector<TimerStat> Out;
  MutexLock Lock(R.Mu);
  Out.reserve(R.Phases.size());
  for (const auto &[Phase, Agg] : R.Phases)
    Out.push_back(TimerStat{Phase, Agg.Count, Agg.TotalNs});
  return Out;
}

void pdgc::resetTimers() {
  TimerRegistry &R = timers();
  MutexLock Lock(R.Mu);
  R.Phases.clear();
}

std::string pdgc::timersToText(const std::string &LinePrefix) {
  std::string Out;
  for (const TimerStat &T : timerSnapshot()) {
    char Line[160];
    std::snprintf(Line, sizeof(Line), "%s count=%llu total-ms=%.3f\n",
                  T.Phase.c_str(),
                  static_cast<unsigned long long>(T.Count),
                  static_cast<double>(T.TotalNs) / 1e6);
    Out += LinePrefix + Line;
  }
  return Out;
}

#ifndef PDGC_DISABLE_STATS

void ScopedTimer::startTimer() {
  Start = Clock::now();
  if (trace::collecting())
    trace::begin(Phase, Category);
}

void ScopedTimer::stopTimer() {
  const std::uint64_t Ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           Start)
          .count());
  addTimerSample(Phase, Ns);
  if (trace::collecting())
    trace::end(Phase, Category);
}

#endif // PDGC_DISABLE_STATS

bool pdgc::trace::collecting() {
  return Collecting.load(std::memory_order_relaxed);
}

void pdgc::trace::start() {
  TraceBuffer &B = buffer();
  {
    MutexLock Lock(B.Mu);
    B.Events.clear();
    B.Epoch = Clock::now();
  }
  setTimersEnabled(true);
  Collecting.store(true, std::memory_order_relaxed);
}

void pdgc::trace::stop() {
  Collecting.store(false, std::memory_order_relaxed);
}

void pdgc::trace::clear() {
  TraceBuffer &B = buffer();
  MutexLock Lock(B.Mu);
  B.Events.clear();
}

void pdgc::trace::setThreadLane(unsigned Lane) { ThreadLane = Lane; }

unsigned pdgc::trace::threadLane() { return ThreadLane; }

void pdgc::trace::setRequestId(std::uint64_t Id) { ThreadRequestId = Id; }

std::uint64_t pdgc::trace::requestId() { return ThreadRequestId; }

void pdgc::trace::instant(const std::string &Name, const char *Category,
                          const std::string &ArgsJson) {
  if (!collecting())
    return;
  record(Name, Category, 'i', withRequestId(ArgsJson));
}

void pdgc::trace::begin(const std::string &Name, const char *Category) {
  if (!collecting())
    return;
  record(Name, Category, 'B', withRequestId(""));
}

void pdgc::trace::end(const std::string &Name, const char *Category) {
  if (!collecting())
    return;
  record(Name, Category, 'E', "");
}

std::string pdgc::trace::toJson() {
  TraceBuffer &B = buffer();
  std::vector<TraceEvent> Events;
  {
    MutexLock Lock(B.Mu);
    Events = B.Events;
  }
  // Chrome wants per-tid monotone B/E streams; events from one thread are
  // already in order (single mutex-serialized buffer preserves each
  // thread's program order).
  std::string Out = "{\"traceEvents\":[";
  bool First = true;
  unsigned MaxLane = 0;
  for (const TraceEvent &E : Events)
    MaxLane = E.Tid > MaxLane ? E.Tid : MaxLane;
  // Name the lanes so Perfetto shows "main"/"worker-N" tracks.
  for (unsigned Lane = 0; Lane <= MaxLane; ++Lane) {
    if (!First)
      Out += ",";
    First = false;
    Out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(Lane) + ",\"args\":{\"name\":\"" +
           (Lane == 0 ? std::string("main")
                      : "worker-" + std::to_string(Lane)) +
           "\"}}";
  }
  for (const TraceEvent &E : Events) {
    if (!First)
      Out += ",";
    First = false;
    appendEventJson(Out, E);
  }
  Out += "],\"displayTimeUnit\":\"ms\"}";
  return Out;
}

bool pdgc::trace::writeJson(const std::string &Path, std::string *Error) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  const std::string Json = toJson();
  const bool Ok = std::fwrite(Json.data(), 1, Json.size(), F) == Json.size();
  if (std::fclose(F) != 0 || !Ok) {
    if (Error)
      *Error = "short write to '" + Path + "'";
    return false;
  }
  return true;
}

std::string pdgc::trace::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string pdgc::observabilityReportJson() {
  std::string Json = "{\"counters\":";
  Json += StatRegistry::get().snapshot().toJson();
  Json += ",\"timers\":{";
  bool First = true;
  for (const TimerStat &T : timerSnapshot()) {
    if (!First)
      Json += ",";
    First = false;
    Json += "\"" + trace::jsonEscape(T.Phase) +
            "\":{\"count\":" + std::to_string(T.Count) +
            ",\"total_ns\":" + std::to_string(T.TotalNs) + "}";
  }
  Json += "}}";
  return Json;
}

bool pdgc::writeObservabilityReport(const std::string &Path,
                                    std::string *Error) {
  const std::string Json = observabilityReportJson();

  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  const bool Ok = std::fwrite(Json.data(), 1, Json.size(), F) == Json.size();
  if (std::fclose(F) != 0 || !Ok) {
    if (Error)
      *Error = "short write to '" + Path + "'";
    return false;
  }
  return true;
}
