//===- support/Rng.h - Deterministic random number generator ---*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, deterministic SplitMix64 generator. The workload generator and
/// property tests use this instead of <random> so the corpus is identical
/// across standard-library implementations.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SUPPORT_RNG_H
#define PDGC_SUPPORT_RNG_H

#include "support/Debug.h"

#include <cstdint>

namespace pdgc {

/// SplitMix64 pseudo-random generator with convenience samplers.
class Rng {
  std::uint64_t State;

public:
  explicit Rng(std::uint64_t Seed) : State(Seed) {}

  /// Returns the next raw 64-bit value.
  std::uint64_t next() {
    State += 0x9E3779B97F4A7C15ULL;
    std::uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be nonzero.
  std::uint64_t nextBelow(std::uint64_t Bound) {
    assert(Bound != 0 && "Rng::nextBelow requires a nonzero bound");
    // Multiply-shift rejection-free mapping; bias is negligible for the
    // small bounds used by the workload generator.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// Returns a uniform value in the inclusive range [Lo, Hi].
  std::int64_t nextInRange(std::int64_t Lo, std::int64_t Hi) {
    assert(Lo <= Hi && "Rng::nextInRange requires Lo <= Hi");
    return Lo + static_cast<std::int64_t>(
                    nextBelow(static_cast<std::uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability \p Percent / 100.
  bool roll(unsigned Percent) { return nextBelow(100) < Percent; }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
};

} // namespace pdgc

#endif // PDGC_SUPPORT_RNG_H
