//===- support/TablePrinter.h - Aligned text tables -------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders aligned plain-text tables. The benchmark binaries use this to
/// print the rows/series of each paper figure in a uniform format that
/// EXPERIMENTS.md can quote directly.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SUPPORT_TABLEPRINTER_H
#define PDGC_SUPPORT_TABLEPRINTER_H

#include <string>
#include <vector>

namespace pdgc {

/// Accumulates rows of strings and prints them with aligned columns.
class TablePrinter {
  std::string Title;
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;

public:
  explicit TablePrinter(std::string TitleIn) : Title(std::move(TitleIn)) {}

  /// Sets the column headers; must be called before addRow.
  void setHeader(std::vector<std::string> Columns);

  /// Appends a data row. Shorter rows are padded with empty cells.
  void addRow(std::vector<std::string> Cells);

  /// Prints the table to stdout: title, rule, header, rule, rows.
  void print() const;
};

} // namespace pdgc

#endif // PDGC_SUPPORT_TABLEPRINTER_H
