//===- support/UnionFind.cpp - Disjoint-set forest -----------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "support/UnionFind.h"

#include "support/Debug.h"

#include <numeric>

using namespace pdgc;

void UnionFind::reset(unsigned N) {
  Parent.resize(N);
  std::iota(Parent.begin(), Parent.end(), 0u);
  Rank.assign(N, 0);
}

void UnionFind::grow(unsigned N) {
  unsigned Old = size();
  if (N <= Old)
    return;
  Parent.resize(N);
  std::iota(Parent.begin() + Old, Parent.end(), Old);
  Rank.resize(N, 0);
}

unsigned UnionFind::find(unsigned X) const {
  assert(X < Parent.size() && "UnionFind::find out of range");
  unsigned Root = X;
  while (Parent[Root] != Root)
    Root = Parent[Root];
  // Path compression.
  while (Parent[X] != Root) {
    unsigned Next = Parent[X];
    Parent[X] = Root;
    X = Next;
  }
  return Root;
}

bool UnionFind::unionSets(unsigned A, unsigned B) {
  unsigned RA = find(A), RB = find(B);
  if (RA == RB)
    return false;
  // The caller expects RA to survive as representative, so always attach RB
  // under RA regardless of rank; rank is still tracked to keep find() cheap.
  Parent[RB] = RA;
  if (Rank[RA] <= Rank[RB])
    Rank[RA] = Rank[RB] + 1;
  return true;
}
