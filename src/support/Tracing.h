//===- support/Tracing.h - Phase timers and Chrome tracing -----*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wall-clock half of the observability layer (counters live in
/// support/Stats.h):
///
///  * **Phase timers** — `ScopedTimer T("liveness.cold");` aggregates the
///    scope's wall time into a process-wide (phase -> {count, total ns})
///    registry. Timers are gated behind a single relaxed atomic flag
///    (`setTimersEnabled`), so an un-instrumented run pays one load and a
///    predictable branch per scope; tools flip the flag on for `--stats`
///    and `--trace-json`. Timer *counts* are deterministic for a fixed
///    workload; *durations* are wall time and are reported separately
///    from the deterministic counters.
///
///  * **Trace events** — between `trace::start()` and `trace::stop()`,
///    every ScopedTimer additionally emits a B/E duration pair and code
///    can drop instant events (`trace::instant`) for point decisions:
///    spills, tier fallbacks, trapped fatal errors. Events carry a lane
///    id (`trace::setThreadLane`, set by ThreadPool for its workers) that
///    becomes the Chrome `tid`, so each pool worker renders as its own
///    track.
///
///  * **Export** — `trace::writeJson` serializes the buffer in the Chrome
///    trace-event format (the JSON consumed by `chrome://tracing` and
///    https://ui.perfetto.dev), and `writeObservabilityReport` writes a
///    machine-readable JSON report of counters + timers.
///
/// Everything here compiles to nothing under -DPDGC_DISABLE_STATS=ON.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SUPPORT_TRACING_H
#define PDGC_SUPPORT_TRACING_H

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace pdgc {

//===----------------------------------------------------------------------===//
// Phase timer registry
//===----------------------------------------------------------------------===//

/// Aggregated wall time of one phase.
struct TimerStat {
  std::string Phase;
  std::uint64_t Count = 0;   ///< Scopes entered.
  std::uint64_t TotalNs = 0; ///< Summed wall time.
};

/// True when ScopedTimer instances are live (one relaxed load).
bool timersEnabled();

/// Globally enables/disables phase timers. `trace::start()` enables them
/// implicitly — a trace without spans would be empty.
void setTimersEnabled(bool On);

/// Adds one explicit sample (e.g. ThreadPool queue-wait time, measured
/// across threads where a scope cannot sit).
void addTimerSample(const std::string &Phase, std::uint64_t Nanos);

/// Sorted copy of every phase's aggregate.
std::vector<TimerStat> timerSnapshot();

/// Zeroes the timer registry.
void resetTimers();

/// "PREFIXphase count=N total-ms=X.XXX\n" per phase, sorted.
std::string timersToText(const std::string &LinePrefix = "");

//===----------------------------------------------------------------------===//
// Trace-event collection
//===----------------------------------------------------------------------===//

namespace trace {

/// True while events are being collected.
bool collecting();

/// Clears the buffer and starts collecting; enables phase timers.
void start();

/// Stops collecting (the buffer is kept for export).
void stop();

/// Discards the buffer.
void clear();

/// Sets the calling thread's lane id (Chrome `tid`). Lane 0 is the main
/// thread; ThreadPool assigns its workers 1..N.
void setThreadLane(unsigned Lane);
unsigned threadLane();

/// Sets the calling thread's current request id (0 = none). While
/// nonzero, every span and instant the thread emits carries a
/// `"req": <id>` argument, so a Chrome trace of the daemon can be joined
/// against the flight recorder and `/requests` output on the same id.
/// pdgc-serve's workers set it around each allocation; single-threaded
/// driver work running inline (ThreadPool with <= 1 jobs) inherits it.
void setRequestId(std::uint64_t Id);
std::uint64_t requestId();

/// RAII guard: sets the thread's request id, restores 0 on destruction.
class RequestScope {
public:
  explicit RequestScope(std::uint64_t Id) { setRequestId(Id); }
  ~RequestScope() { setRequestId(0); }
  RequestScope(const RequestScope &) = delete;
  RequestScope &operator=(const RequestScope &) = delete;
};

/// Emits an instant event. \p ArgsJson, when non-empty, must be a
/// serialized JSON object (use jsonEscape for embedded strings).
void instant(const std::string &Name, const char *Category,
             const std::string &ArgsJson = "");

/// Emits a duration-begin / duration-end event on the calling thread's
/// lane. Prefer ScopedTimer, which pairs them exception-safely.
void begin(const std::string &Name, const char *Category);
void end(const std::string &Name, const char *Category);

/// Serializes the buffer as Chrome trace-event JSON.
std::string toJson();

/// Writes toJson() to \p Path; returns false (and fills \p Error) on I/O
/// failure.
bool writeJson(const std::string &Path, std::string *Error = nullptr);

/// Escapes \p S for embedding inside a JSON string literal.
std::string jsonEscape(const std::string &S);

} // namespace trace

/// {"counters": {...}, "timers": {...}} — the machine-readable process
/// report. Shared by writeObservabilityReport and pdgc-serve's /stats.
std::string observabilityReportJson();

/// Writes observabilityReportJson() to \p Path.
bool writeObservabilityReport(const std::string &Path,
                              std::string *Error = nullptr);

//===----------------------------------------------------------------------===//
// ScopedTimer
//===----------------------------------------------------------------------===//

#ifndef PDGC_DISABLE_STATS

/// RAII phase timer: aggregates the scope's wall time under \p Phase and,
/// while a trace is being collected, emits a matching B/E span.
class ScopedTimer {
public:
  explicit ScopedTimer(const char *PhaseIn, const char *CategoryIn = "phase")
      : Category(CategoryIn) {
    if (!timersEnabled())
      return;
    Active = true;
    Phase = PhaseIn;
    startTimer();
  }

  ScopedTimer(std::string PhaseIn, const char *CategoryIn = "phase")
      : Category(CategoryIn) {
    if (!timersEnabled())
      return;
    Active = true;
    Phase = std::move(PhaseIn);
    startTimer();
  }

  ~ScopedTimer() {
    if (Active)
      stopTimer();
  }

  /// Ends the phase before the scope closes (e.g. timing the first half
  /// of a function without introducing a block).
  void finish() {
    if (Active) {
      stopTimer();
      Active = false;
    }
  }

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  void startTimer();
  void stopTimer();

  std::string Phase;
  const char *Category;
  std::chrono::steady_clock::time_point Start;
  bool Active = false;
};

#else // PDGC_DISABLE_STATS

class ScopedTimer {
public:
  explicit ScopedTimer(const char *, const char * = "phase") {}
  ScopedTimer(std::string, const char * = "phase") {}
  void finish() {}
};

#endif // PDGC_DISABLE_STATS

} // namespace pdgc

#endif // PDGC_SUPPORT_TRACING_H
