//===- support/UnionFind.h - Disjoint-set forest ---------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Union-find over dense unsigned ids, used by the coalescing phases to
/// track which live ranges have been merged.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SUPPORT_UNIONFIND_H
#define PDGC_SUPPORT_UNIONFIND_H

#include <vector>

namespace pdgc {

/// Disjoint-set forest with union by rank and path compression.
///
/// `unionSets(A, B)` makes the representative of A the representative of the
/// merged class; coalescing relies on that to keep the surviving live range
/// deterministic.
class UnionFind {
  // Parent pointer per element; Rank bounds tree height.
  mutable std::vector<unsigned> Parent;
  std::vector<unsigned> Rank;

public:
  UnionFind() = default;
  explicit UnionFind(unsigned N) { reset(N); }

  /// Reinitializes to \p N singleton classes.
  void reset(unsigned N);

  unsigned size() const { return static_cast<unsigned>(Parent.size()); }

  /// Grows to hold ids up to \p N - 1; new elements form singleton classes.
  void grow(unsigned N);

  /// Returns the representative of \p X's class.
  unsigned find(unsigned X) const;

  /// Merges the classes of \p A and \p B; the representative of \p A becomes
  /// the representative of the merged class. Returns false if they were
  /// already in the same class.
  bool unionSets(unsigned A, unsigned B);

  bool connected(unsigned A, unsigned B) const { return find(A) == find(B); }
};

} // namespace pdgc

#endif // PDGC_SUPPORT_UNIONFIND_H
