//===- support/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named fault sites for deterministic failure testing. Code plants a site
/// at every stage boundary it wants testable:
///
/// \code
///   PDGC_FAULT_POINT("driver.spill_insert");
/// \endcode
///
/// A site is inert until a *fault plan* is installed (via the API or the
/// `PDGC_FAULTS` environment variable). An armed site consults the plan:
/// a matching rule can throw a `FatalError` (as if an internal invariant
/// broke), throw a `fault::InjectedFault` (converted by the hardened
/// driver into a structured `ALLOCATOR_INTERNAL` Status), or sleep for a
/// bounded delay (to exercise deadline enforcement). Triggers are
/// deterministic: fire on exactly the Nth hit of the site, on every Nth
/// hit, or with a probability hashed from (seed, site, hit index) — the
/// same plan over the same workload fires the same hits at any thread
/// count, because hit indices are per-site.
///
/// The spec grammar, for `PDGC_FAULTS` and `parseFaultSpec`:
///
///   spec    := rule (';' rule)*
///   rule    := site-pattern ':' action ['@' trigger (',' trigger)*]
///   action  := 'fatal' | 'status' | 'delay=<ms>'       (delay capped at 1000)
///   trigger := 'n=<N>' | 'every=<N>' | 'p=<percent>' | 'seed=<S>'
///
/// A site pattern is an exact name or a prefix ending in '*' ("driver.*",
/// "*"). A rule without a trigger means `n=1` (fire on the first hit).
/// Example: `PDGC_FAULTS='pdgc.select:fatal@n=3;driver.*:delay=20@p=5,seed=7'`.
///
/// Sites self-register (like `PDGC_STAT` counters) the first time control
/// passes over them, so `siteSnapshot()` enumerates every site the
/// workload can reach — the chaos fuzzer uses a fault-free discovery pass
/// to build its sweep list. Like the stats layer, the whole machinery
/// compiles to nothing under `-DPDGC_DISABLE_FAULTS=ON`; a disarmed site
/// in a default build costs one static-init guard check and one relaxed
/// atomic load.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SUPPORT_FAULTINJECTION_H
#define PDGC_SUPPORT_FAULTINJECTION_H

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace pdgc {
namespace fault {

/// Thrown by an armed site whose matching rule has action `status`. The
/// hardened driver maps it to an ALLOCATOR_INTERNAL Status (message
/// prefixed "injected fault:"), distinct from a FatalError so tests can
/// tell "invariant broke" from "dependency returned an error".
class InjectedFault : public std::runtime_error {
public:
  explicit InjectedFault(const std::string &Msg) : std::runtime_error(Msg) {}
};

/// What a firing rule does to the thread that hit the site.
enum class Action {
  Fatal,  ///< Throw FatalError, as if a pdgc_check failed here.
  Status, ///< Throw InjectedFault (a structured, expected-shape failure).
  Delay,  ///< Sleep for DelayMs (bounded), then continue normally.
};

/// One rule of a fault plan.
struct FaultRule {
  std::string SitePattern;    ///< Exact site name, or prefix ending in '*'.
  Action Act = Action::Fatal;
  unsigned DelayMs = 0;       ///< Action::Delay only; capped at 1000.
  std::uint64_t OnHit = 0;    ///< Fire on exactly this 1-based hit index.
  std::uint64_t EveryHit = 0; ///< Fire on every Nth hit.
  unsigned Percent = 0;       ///< Fire with this probability (0-100).
  std::uint64_t Seed = 0;     ///< Hash seed for the Percent trigger.
};

/// An immutable set of rules; the first matching rule that triggers fires.
struct FaultPlan {
  std::vector<FaultRule> Rules;
};

/// Parses the PDGC_FAULTS grammar into \p Plan. Returns an empty string on
/// success, a diagnostic otherwise (Plan is unspecified on failure).
std::string parseFaultSpec(const std::string &Spec, FaultPlan &Plan);

/// Installs \p Plan and arms every site. Call from a quiescent point (no
/// allocation in flight on another thread); the plan is read-only after.
void installPlan(FaultPlan Plan);

/// Disarms every site (hits are still counted while armed only).
void clearPlan();

/// Reads PDGC_FAULTS and installs the parsed plan; does nothing when the
/// variable is unset or empty. Returns false (and fills \p Error) when the
/// spec does not parse.
bool installPlanFromEnv(std::string *Error = nullptr);

/// True when this binary compiled the fault layer in (no
/// -DPDGC_DISABLE_FAULTS); tools use it to refuse chaos mode otherwise.
bool compiledIn();

/// Per-site observability: how often control passed an armed site and how
/// often a rule fired there.
struct SiteInfo {
  std::string Name;
  std::uint64_t Hits = 0;
  std::uint64_t Fires = 0;
};

/// Sorted copy of every registered site's counters. A site registers the
/// first time control reaches it, so run a workload first to populate.
std::vector<SiteInfo> siteSnapshot();

/// Zeroes every site's hit/fire counters (the registration set is kept).
/// The chaos sweep resets between plans so `n=` triggers count per run.
void resetSiteCounters();

#ifndef PDGC_DISABLE_FAULTS

/// One planted site. The PDGC_FAULT_POINT macro materializes a
/// function-local static instance, which self-registers on first
/// execution (thread-safe via the magic-static guarantee).
class FaultSite {
public:
  explicit FaultSite(const char *Name);

  FaultSite(const FaultSite &) = delete;
  FaultSite &operator=(const FaultSite &) = delete;

  // Registry internals (public like StatCounter's: the registry lives in
  // an anonymous namespace the friend system cannot name).
  const char *Name;
  std::atomic<std::uint64_t> Hits{0};
  std::atomic<std::uint64_t> Fires{0};
  FaultSite *Next = nullptr; ///< Intrusive registry chain.
};

/// True while a plan is installed (one relaxed load; the macro's guard).
bool armed();

/// Evaluates the installed plan against \p Site; called by the macro only
/// when armed. May throw FatalError / InjectedFault or sleep.
void hitImpl(FaultSite &Site);

#endif // PDGC_DISABLE_FAULTS

} // namespace fault
} // namespace pdgc

#ifndef PDGC_DISABLE_FAULTS
/// Plants a named fault site. SITE must be a string literal (or otherwise
/// outlive the program). Disarmed cost: a static-init guard check plus one
/// relaxed load and a predictable branch.
#define PDGC_FAULT_POINT(SITE)                                                 \
  do {                                                                         \
    static ::pdgc::fault::FaultSite PdgcFaultSite_(SITE);                      \
    if (::pdgc::fault::armed())                                                \
      ::pdgc::fault::hitImpl(PdgcFaultSite_);                                  \
  } while (0)
#else
#define PDGC_FAULT_POINT(SITE)                                                 \
  do {                                                                         \
  } while (0)
#endif

#endif // PDGC_SUPPORT_FAULTINJECTION_H
