//===- support/Status.h - Structured error propagation ----------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight `Status` / `StatusOr<T>` pair used by the hardened
/// allocation pipeline. Public entry points that face external input (the
/// textual parser, the allocation driver, the command-line tools) return
/// these instead of asserting or aborting, so a malformed function, a
/// buggy allocator round, or an exhausted budget degrades gracefully
/// instead of killing the process.
///
/// The error codes mirror the pipeline stages: ParseError (textual IR),
/// VerifyError (structural IR invariants), BudgetExceeded (spill-round or
/// wall-clock budgets), AllocatorInternal (an allocator violated its
/// contract or raised a fatal check), and CheckerMismatch (the independent
/// assignment checker rejected the result).
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SUPPORT_STATUS_H
#define PDGC_SUPPORT_STATUS_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace pdgc {

/// Failure category of a pipeline stage.
enum class ErrorCode {
  Ok = 0,
  ParseError,        ///< Textual IR could not be parsed.
  VerifyError,       ///< Parsed IR violates structural invariants.
  BudgetExceeded,    ///< Round or wall-clock budget ran out.
  AllocatorInternal, ///< An allocator broke its contract (bad result
                     ///< shape, fatal check, uncaught exception).
  CheckerMismatch,   ///< The independent checker rejected the assignment.
};

/// Stable printable name of \p Code ("OK", "PARSE_ERROR", ...).
inline const char *errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Ok:
    return "OK";
  case ErrorCode::ParseError:
    return "PARSE_ERROR";
  case ErrorCode::VerifyError:
    return "VERIFY_ERROR";
  case ErrorCode::BudgetExceeded:
    return "BUDGET_EXCEEDED";
  case ErrorCode::AllocatorInternal:
    return "ALLOCATOR_INTERNAL";
  case ErrorCode::CheckerMismatch:
    return "CHECKER_MISMATCH";
  }
  return "UNKNOWN";
}

/// An error code plus a human-readable message; `Ok` means success.
class Status {
  ErrorCode Code = ErrorCode::Ok;
  std::string Message;

public:
  Status() = default;
  Status(ErrorCode CodeIn, std::string MessageIn)
      : Code(CodeIn), Message(std::move(MessageIn)) {
    assert(Code != ErrorCode::Ok && "error status requires a non-Ok code");
  }

  static Status okStatus() { return Status(); }
  static Status error(ErrorCode Code, std::string Message) {
    return Status(Code, std::move(Message));
  }

  bool ok() const { return Code == ErrorCode::Ok; }
  ErrorCode code() const { return Code; }
  const std::string &message() const { return Message; }

  /// "BUDGET_EXCEEDED: register allocation did not converge..."
  std::string toString() const {
    if (ok())
      return "OK";
    return std::string(errorCodeName(Code)) + ": " + Message;
  }
};

/// Either a value of type \p T or an error Status. Accessing the value of
/// an errored StatusOr is a programming error (asserted).
template <typename T> class StatusOr {
  Status S;
  std::optional<T> Val;

public:
  /*implicit*/ StatusOr(T Value) : Val(std::move(Value)) {}
  /*implicit*/ StatusOr(Status Error) : S(std::move(Error)) {
    assert(!S.ok() && "StatusOr built from a non-error status");
  }

  bool ok() const { return S.ok(); }
  const Status &status() const { return S; }
  ErrorCode code() const { return S.code(); }

  T &value() {
    assert(ok() && "value() on an errored StatusOr");
    return *Val;
  }
  const T &value() const {
    assert(ok() && "value() on an errored StatusOr");
    return *Val;
  }

  T &operator*() { return value(); }
  const T &operator*() const { return value(); }
  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }
};

} // namespace pdgc

#endif // PDGC_SUPPORT_STATUS_H
