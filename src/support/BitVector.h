//===- support/BitVector.h - Dense resizable bit vector --------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense bit vector used throughout the analyses (liveness sets,
/// interference rows, register availability masks). The interface follows
/// llvm::BitVector where the two overlap so the code reads familiarly to
/// compiler engineers.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SUPPORT_BITVECTOR_H
#define PDGC_SUPPORT_BITVECTOR_H

#include "support/Debug.h"

#include <bit>
#include <cstdint>
#include <vector>

namespace pdgc {

/// Dense, resizable vector of bits with set-algebra operations.
class BitVector {
  using Word = std::uint64_t;
  static constexpr unsigned WordBits = 64;

  std::vector<Word> Words;
  unsigned NumBits = 0;

  static unsigned numWords(unsigned Bits) {
    return (Bits + WordBits - 1) / WordBits;
  }

  /// Clears any bits in the final word beyond NumBits so that whole-word
  /// operations (count, equality, any) stay exact.
  void clearUnusedBits() {
    if (NumBits % WordBits == 0 || Words.empty())
      return;
    Words.back() &= (Word(1) << (NumBits % WordBits)) - 1;
  }

public:
  BitVector() = default;

  /// Creates a vector of \p N bits, all initialized to \p Value.
  explicit BitVector(unsigned N, bool Value = false)
      : Words(numWords(N), Value ? ~Word(0) : Word(0)), NumBits(N) {
    clearUnusedBits();
  }

  unsigned size() const { return NumBits; }
  bool empty() const { return NumBits == 0; }

  /// Grows or shrinks to \p N bits; new bits are initialized to \p Value.
  void resize(unsigned N, bool Value = false) {
    unsigned OldBits = NumBits;
    Words.resize(numWords(N), Value ? ~Word(0) : Word(0));
    NumBits = N;
    if (Value && OldBits < N && OldBits % WordBits != 0) {
      // The partial word shared by old and new bits must get its new high
      // bits set by hand; resize() only fills whole new words.
      Words[OldBits / WordBits] |= ~((Word(1) << (OldBits % WordBits)) - 1);
    }
    clearUnusedBits();
  }

  bool test(unsigned Idx) const {
    assert(Idx < NumBits && "BitVector::test out of range");
    return (Words[Idx / WordBits] >> (Idx % WordBits)) & 1;
  }

  bool operator[](unsigned Idx) const { return test(Idx); }

  void set(unsigned Idx) {
    assert(Idx < NumBits && "BitVector::set out of range");
    Words[Idx / WordBits] |= Word(1) << (Idx % WordBits);
  }

  /// Sets every bit.
  void set() {
    for (Word &W : Words)
      W = ~Word(0);
    clearUnusedBits();
  }

  void reset(unsigned Idx) {
    assert(Idx < NumBits && "BitVector::reset out of range");
    Words[Idx / WordBits] &= ~(Word(1) << (Idx % WordBits));
  }

  /// Clears every bit.
  void reset() {
    for (Word &W : Words)
      W = 0;
  }

  /// Returns the number of set bits.
  unsigned count() const {
    unsigned N = 0;
    for (Word W : Words)
      N += static_cast<unsigned>(std::popcount(W));
    return N;
  }

  /// Returns true if any bit is set.
  bool any() const {
    for (Word W : Words)
      if (W)
        return true;
    return false;
  }

  bool none() const { return !any(); }

  /// Returns the index of the first set bit, or -1 if none.
  int findFirst() const { return findNext(0); }

  /// Returns the index of the first set bit at or after \p From, or -1.
  int findNext(unsigned From) const {
    if (From >= NumBits)
      return -1;
    unsigned WordIdx = From / WordBits;
    Word W = Words[WordIdx] & ~((Word(1) << (From % WordBits)) - 1);
    while (true) {
      if (W)
        return static_cast<int>(WordIdx * WordBits +
                                std::countr_zero(W));
      if (++WordIdx >= Words.size())
        return -1;
      W = Words[WordIdx];
    }
  }

  /// Set union; both operands must have the same size.
  BitVector &operator|=(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch in operator|=");
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      Words[I] |= RHS.Words[I];
    return *this;
  }

  /// Set intersection; both operands must have the same size.
  BitVector &operator&=(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch in operator&=");
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= RHS.Words[I];
    return *this;
  }

  /// Set difference (this \ RHS); both operands must have the same size.
  BitVector &resetAll(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch in resetAll");
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= ~RHS.Words[I];
    return *this;
  }

  bool operator==(const BitVector &RHS) const {
    return NumBits == RHS.NumBits && Words == RHS.Words;
  }

  bool operator!=(const BitVector &RHS) const { return !(*this == RHS); }

  /// Iterator over the indices of set bits, enabling range-based for loops:
  /// `for (unsigned Idx : BV.setBits())`.
  ///
  /// The iterator caches the remaining bits of the current word, so stepping
  /// clears one bit and only touches memory again at word boundaries — and
  /// whole zero words are skipped without per-bit work. On the sparse live
  /// sets the interference builder walks, this is markedly cheaper than
  /// re-running findNext (which re-divides and re-masks) per step.
  class SetBitIterator {
    const Word *Words;
    unsigned NumWords;
    unsigned WordIdx; ///< Word the cached bits came from; NumWords at end.
    Word Remaining;   ///< Still-unvisited bits of word WordIdx.

    /// Advances WordIdx past zero words until Remaining is non-zero or the
    /// vector is exhausted.
    void skipZeroWords() {
      while (Remaining == 0) {
        if (++WordIdx >= NumWords) {
          WordIdx = NumWords;
          return;
        }
        Remaining = Words[WordIdx];
      }
    }

  public:
    /// Begin iterator over \p BV.
    explicit SetBitIterator(const BitVector &BV)
        : Words(BV.Words.data()),
          NumWords(static_cast<unsigned>(BV.Words.size())), WordIdx(0),
          Remaining(NumWords ? Words[0] : 0) {
      if (NumWords)
        skipZeroWords();
      else
        WordIdx = NumWords;
    }

    /// End iterator over \p BV.
    SetBitIterator(const BitVector &BV, unsigned EndWord)
        : Words(BV.Words.data()), NumWords(static_cast<unsigned>(EndWord)),
          WordIdx(static_cast<unsigned>(EndWord)), Remaining(0) {}

    unsigned operator*() const {
      return WordIdx * WordBits +
             static_cast<unsigned>(std::countr_zero(Remaining));
    }

    SetBitIterator &operator++() {
      Remaining &= Remaining - 1; // Clear the lowest set bit.
      skipZeroWords();
      return *this;
    }

    bool operator!=(const SetBitIterator &RHS) const {
      return WordIdx != RHS.WordIdx || Remaining != RHS.Remaining;
    }
  };

  struct SetBitRange {
    const BitVector *BV;
    SetBitIterator begin() const { return SetBitIterator(*BV); }
    SetBitIterator end() const {
      return SetBitIterator(*BV, static_cast<unsigned>(BV->Words.size()));
    }
  };

  /// Returns a range over the indices of set bits, in increasing order.
  SetBitRange setBits() const { return {this}; }

  /// Resets to \p N bits, all zero, reusing the existing word storage
  /// (capacity is never released). The rebuild-heavy analyses use this to
  /// recycle their sets across spill rounds instead of reallocating.
  void clearAndResize(unsigned N) {
    Words.assign(numWords(N), 0);
    NumBits = N;
  }
};

} // namespace pdgc

#endif // PDGC_SUPPORT_BITVECTOR_H
