//===- support/BitVector.h - Dense resizable bit vector --------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense bit vector used throughout the analyses (liveness sets,
/// interference rows, register availability masks). The interface follows
/// llvm::BitVector where the two overlap so the code reads familiarly to
/// compiler engineers.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SUPPORT_BITVECTOR_H
#define PDGC_SUPPORT_BITVECTOR_H

#include "support/Debug.h"

#include <bit>
#include <cstdint>
#include <vector>

namespace pdgc {

/// Dense, resizable vector of bits with set-algebra operations.
class BitVector {
  using Word = std::uint64_t;
  static constexpr unsigned WordBits = 64;

  std::vector<Word> Words;
  unsigned NumBits = 0;

  static unsigned numWords(unsigned Bits) {
    return (Bits + WordBits - 1) / WordBits;
  }

  /// Clears any bits in the final word beyond NumBits so that whole-word
  /// operations (count, equality, any) stay exact.
  void clearUnusedBits() {
    if (NumBits % WordBits == 0 || Words.empty())
      return;
    Words.back() &= (Word(1) << (NumBits % WordBits)) - 1;
  }

public:
  BitVector() = default;

  /// Creates a vector of \p N bits, all initialized to \p Value.
  explicit BitVector(unsigned N, bool Value = false)
      : Words(numWords(N), Value ? ~Word(0) : Word(0)), NumBits(N) {
    clearUnusedBits();
  }

  unsigned size() const { return NumBits; }
  bool empty() const { return NumBits == 0; }

  /// Grows or shrinks to \p N bits; new bits are initialized to \p Value.
  void resize(unsigned N, bool Value = false) {
    unsigned OldBits = NumBits;
    Words.resize(numWords(N), Value ? ~Word(0) : Word(0));
    NumBits = N;
    if (Value && OldBits < N && OldBits % WordBits != 0) {
      // The partial word shared by old and new bits must get its new high
      // bits set by hand; resize() only fills whole new words.
      Words[OldBits / WordBits] |= ~((Word(1) << (OldBits % WordBits)) - 1);
    }
    clearUnusedBits();
  }

  bool test(unsigned Idx) const {
    assert(Idx < NumBits && "BitVector::test out of range");
    return (Words[Idx / WordBits] >> (Idx % WordBits)) & 1;
  }

  bool operator[](unsigned Idx) const { return test(Idx); }

  void set(unsigned Idx) {
    assert(Idx < NumBits && "BitVector::set out of range");
    Words[Idx / WordBits] |= Word(1) << (Idx % WordBits);
  }

  /// Sets every bit.
  void set() {
    for (Word &W : Words)
      W = ~Word(0);
    clearUnusedBits();
  }

  void reset(unsigned Idx) {
    assert(Idx < NumBits && "BitVector::reset out of range");
    Words[Idx / WordBits] &= ~(Word(1) << (Idx % WordBits));
  }

  /// Clears every bit.
  void reset() {
    for (Word &W : Words)
      W = 0;
  }

  /// Returns the number of set bits.
  unsigned count() const {
    unsigned N = 0;
    for (Word W : Words)
      N += static_cast<unsigned>(std::popcount(W));
    return N;
  }

  /// Returns true if any bit is set.
  bool any() const {
    for (Word W : Words)
      if (W)
        return true;
    return false;
  }

  bool none() const { return !any(); }

  /// Returns the index of the first set bit, or -1 if none.
  int findFirst() const { return findNext(0); }

  /// Returns the index of the first set bit at or after \p From, or -1.
  int findNext(unsigned From) const {
    if (From >= NumBits)
      return -1;
    unsigned WordIdx = From / WordBits;
    Word W = Words[WordIdx] & ~((Word(1) << (From % WordBits)) - 1);
    while (true) {
      if (W)
        return static_cast<int>(WordIdx * WordBits +
                                std::countr_zero(W));
      if (++WordIdx >= Words.size())
        return -1;
      W = Words[WordIdx];
    }
  }

  /// Set union; both operands must have the same size.
  BitVector &operator|=(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch in operator|=");
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      Words[I] |= RHS.Words[I];
    return *this;
  }

  /// Set intersection; both operands must have the same size.
  BitVector &operator&=(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch in operator&=");
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= RHS.Words[I];
    return *this;
  }

  /// Set difference (this \ RHS); both operands must have the same size.
  BitVector &resetAll(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch in resetAll");
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= ~RHS.Words[I];
    return *this;
  }

  bool operator==(const BitVector &RHS) const {
    return NumBits == RHS.NumBits && Words == RHS.Words;
  }

  bool operator!=(const BitVector &RHS) const { return !(*this == RHS); }

  /// Iterator over the indices of set bits, enabling range-based for loops:
  /// `for (unsigned Idx : BV.setBits())`.
  class SetBitIterator {
    const BitVector *BV;
    int Idx;

  public:
    SetBitIterator(const BitVector *BV, int Idx) : BV(BV), Idx(Idx) {}
    unsigned operator*() const { return static_cast<unsigned>(Idx); }
    SetBitIterator &operator++() {
      Idx = BV->findNext(static_cast<unsigned>(Idx) + 1);
      return *this;
    }
    bool operator!=(const SetBitIterator &RHS) const { return Idx != RHS.Idx; }
  };

  struct SetBitRange {
    const BitVector *BV;
    SetBitIterator begin() const { return {BV, BV->findFirst()}; }
    SetBitIterator end() const { return {BV, -1}; }
  };

  /// Returns a range over the indices of set bits, in increasing order.
  SetBitRange setBits() const { return {this}; }
};

} // namespace pdgc

#endif // PDGC_SUPPORT_BITVECTOR_H
