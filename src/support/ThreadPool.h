//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool used by the batch allocation pipeline.
/// Register allocation is embarrassingly parallel across functions — each
/// function owns its IR, analyses and allocator instance — so the pool only
/// needs a work queue, a `wait()` barrier, and an index-partitioned
/// `parallelFor`.
///
/// A pool constructed with zero or one thread spawns no workers at all:
/// `submit` runs the job inline on the calling thread. That makes
/// `--jobs 1` byte-for-byte identical to the sequential code path (same
/// thread, same execution order) rather than "parallel with one worker",
/// which is what the determinism tests compare against.
///
/// Exception safety: an exception escaping a job (or a `parallelFor`
/// item) is captured instead of reaching the worker loop (where it would
/// call std::terminate). The pool keeps the *first* captured exception
/// and rethrows it from the next `wait()` — after every job has
/// finished, so the barrier still holds; later exceptions are dropped.
/// A `parallelFor` item that throws is abandoned (its slot keeps
/// whatever default the caller initialized), but the remaining indices
/// still run. Callers that want per-item failures should still route
/// them through Status values (see regalloc/BatchDriver.h); the capture
/// is the backstop that keeps a stray throw from killing the process.
///
/// Observability: each worker claims trace lane `index + 1`
/// (trace::setThreadLane), so exported Chrome traces show one track per
/// worker; when phase timers are enabled, per-job queue-wait time is
/// aggregated under the "threadpool.queue_wait" phase.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SUPPORT_THREADPOOL_H
#define PDGC_SUPPORT_THREADPOOL_H

#include "support/ThreadAnnotations.h"

#include <atomic>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

namespace pdgc {

class ThreadPool {
public:
  /// Creates a pool of \p Threads workers. Values 0 and 1 both mean "no
  /// worker threads": jobs run inline on the submitting thread.
  explicit ThreadPool(unsigned Threads);

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  /// Enqueues \p Job. Runs it inline when the pool has no workers. An
  /// exception the job throws (inline or on a worker) is captured and
  /// surfaces from the next wait().
  void submit(std::function<void()> Job);

  /// Blocks until every submitted job has finished, then rethrows the
  /// first exception any of them threw (if any), clearing it.
  void wait();

  /// Runs \p Fn(0) ... \p Fn(Count - 1), distributing indices over the
  /// workers via an atomic cursor, and returns when all have finished.
  /// Index execution order is unspecified with 2+ threads; callers that
  /// need determinism must write results into per-index slots.
  void parallelFor(unsigned Count, const std::function<void(unsigned)> &Fn);

  /// Number of worker threads (0 when jobs run inline).
  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// A sensible default for --jobs flags: the hardware concurrency, or 1
  /// when the runtime cannot tell.
  static unsigned defaultJobs();

private:
  void workerLoop();
  void recordError(std::exception_ptr E);
  void rethrowPending();

  std::vector<std::thread> Workers;
  Mutex Mu;
  std::deque<std::function<void()>> Queue PDGC_GUARDED_BY(Mu);
  CondVar WorkAvailable;
  CondVar AllDone;
  /// Jobs submitted but not yet finished (queued + running).
  unsigned Pending PDGC_GUARDED_BY(Mu) = 0;
  bool Stopping PDGC_GUARDED_BY(Mu) = false;
  /// First exception a job threw since the last wait(); later ones are
  /// dropped (first-wins matches the sequential pipeline, where the first
  /// throw is the only one that happens).
  std::exception_ptr FirstError PDGC_GUARDED_BY(Mu);
};

} // namespace pdgc

#endif // PDGC_SUPPORT_THREADPOOL_H
