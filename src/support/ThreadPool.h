//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool used by the batch allocation pipeline.
/// Register allocation is embarrassingly parallel across functions — each
/// function owns its IR, analyses and allocator instance — so the pool only
/// needs a work queue, a `wait()` barrier, and an index-partitioned
/// `parallelFor`.
///
/// A pool constructed with zero or one thread spawns no workers at all:
/// `submit` runs the job inline on the calling thread. That makes
/// `--jobs 1` byte-for-byte identical to the sequential code path (same
/// thread, same execution order) rather than "parallel with one worker",
/// which is what the determinism tests compare against.
///
/// Jobs must not throw: an exception escaping a job on a worker thread
/// would call std::terminate. Callers route failures through Status values
/// instead (see regalloc/BatchDriver.h).
///
/// Observability: each worker claims trace lane `index + 1`
/// (trace::setThreadLane), so exported Chrome traces show one track per
/// worker; when phase timers are enabled, per-job queue-wait time is
/// aggregated under the "threadpool.queue_wait" phase.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SUPPORT_THREADPOOL_H
#define PDGC_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pdgc {

class ThreadPool {
public:
  /// Creates a pool of \p Threads workers. Values 0 and 1 both mean "no
  /// worker threads": jobs run inline on the submitting thread.
  explicit ThreadPool(unsigned Threads);

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  /// Enqueues \p Job. Runs it inline when the pool has no workers.
  void submit(std::function<void()> Job);

  /// Blocks until every submitted job has finished.
  void wait();

  /// Runs \p Fn(0) ... \p Fn(Count - 1), distributing indices over the
  /// workers via an atomic cursor, and returns when all have finished.
  /// Index execution order is unspecified with 2+ threads; callers that
  /// need determinism must write results into per-index slots.
  void parallelFor(unsigned Count, const std::function<void(unsigned)> &Fn);

  /// Number of worker threads (0 when jobs run inline).
  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// A sensible default for --jobs flags: the hardware concurrency, or 1
  /// when the runtime cannot tell.
  static unsigned defaultJobs();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  /// Jobs submitted but not yet finished (queued + running).
  unsigned Pending = 0;
  bool Stopping = false;
};

} // namespace pdgc

#endif // PDGC_SUPPORT_THREADPOOL_H
