//===- support/Stats.h - Allocator-wide statistic counters -----*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide statistics registry in the spirit of LLVM's `STATISTIC`
/// machinery. Any translation unit can bump a named counter:
///
/// \code
///   PDGC_STAT("interference", "wasted_edge_attempts").add(Rejected);
///   PDGC_STAT("driver", "rounds").inc();
/// \endcode
///
/// The macro materializes one function-local `StatCounter` per use site
/// (registered with the global `StatRegistry` on first execution, which is
/// thread-safe via the magic-static guarantee) and the increment itself is
/// a single relaxed atomic add — safe under the batch pipeline's worker
/// fan-out and cheap enough for per-round code. Truly hot loops should
/// accumulate into a local and flush once (see InterferenceGraph::rebuild).
///
/// Counters are *deterministic* observables: for a fixed workload they sum
/// to the same values at any `--jobs` count, because addition commutes.
/// That is the property `pdgc-alloc --stats` and the fuzzer's folded
/// chunk statistics rely on, and it is why wall-clock *timers* live in a
/// separate registry (support/Tracing.h) that tools report separately.
///
/// Reading happens through snapshots: `StatRegistry::get().snapshot()`
/// returns a sorted, duplicate-merged (group.name -> value) list that can
/// be diffed against an earlier snapshot, printed, or serialized. Tests
/// use snapshot/diff instead of reset() so they stay order-independent.
///
/// Configuring with `-DPDGC_DISABLE_STATS=ON` compiles every use site down
/// to nothing: the macro then yields a stub object whose members are empty
/// inline functions, so no atomic, no registration, and no code remain.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SUPPORT_STATS_H
#define PDGC_SUPPORT_STATS_H

#include "support/ThreadAnnotations.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace pdgc {

#ifndef PDGC_DISABLE_STATS

/// One named counter. Instances self-register with the StatRegistry on
/// construction and must outlive every increment (the PDGC_STAT macro
/// guarantees this with a function-local static; dynamically created
/// counters are owned by the registry itself).
class StatCounter {
public:
  StatCounter(const char *Group, const char *Name);

  void add(std::uint64_t N) { Value.fetch_add(N, std::memory_order_relaxed); }
  void inc() { add(1); }
  std::uint64_t value() const { return Value.load(std::memory_order_relaxed); }

  const char *group() const { return Group; }
  const char *name() const { return Name; }

  StatCounter(const StatCounter &) = delete;
  StatCounter &operator=(const StatCounter &) = delete;

private:
  friend class StatRegistry;
  /// Tag ctor used by the registry for dynamically created counters: the
  /// registry chains the node itself (it already holds its lock).
  struct NoRegisterTag {};
  StatCounter(const char *GroupIn, const char *NameIn, NoRegisterTag)
      : Group(GroupIn), Name(NameIn) {}

  std::atomic<std::uint64_t> Value{0};
  const char *Group;
  const char *Name;
  StatCounter *Next = nullptr; ///< Intrusive registry chain.
};

#else // PDGC_DISABLE_STATS

/// Zero-cost stub: every member is an empty inline function, so a
/// disabled-stats build compiles PDGC_STAT sites down to nothing.
class StatCounter {
public:
  constexpr StatCounter(const char *, const char *) {}
  void add(std::uint64_t) const {}
  void inc() const {}
  std::uint64_t value() const { return 0; }
};

#endif // PDGC_DISABLE_STATS

/// A point-in-time copy of every counter, merged by "group.name" key and
/// sorted, so two snapshots of the same state serialize byte-identically.
struct StatsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> Counters;

  /// Value for \p Key ("group.name"), or 0 when absent.
  std::uint64_t lookup(const std::string &Key) const;

  /// Per-key difference `this - Baseline`. Keys absent from \p Baseline
  /// count from zero; keys that did not move are dropped, so a diff shows
  /// exactly what the measured region touched.
  StatsSnapshot diff(const StatsSnapshot &Baseline) const;

  /// One "PREFIXgroup.name = value" line per counter, sorted.
  std::string toText(const std::string &LinePrefix = "") const;

  /// JSON object {"group.name": value, ...}, sorted keys.
  std::string toJson() const;
};

/// The process-wide counter registry.
class StatRegistry {
public:
  /// The singleton (leaked, so it survives static destruction of late
  /// counters at exit).
  static StatRegistry &get();

  /// Find-or-create a counter by dynamic names (tools folding per-run
  /// statistics); the registry owns counters created this way. Static use
  /// sites should prefer the PDGC_STAT macro.
  StatCounter &counter(const std::string &Group, const std::string &Name);

  /// Sorted, duplicate-merged copy of every counter's current value.
  StatsSnapshot snapshot() const;

  /// Zeroes every registered counter. Meant for tools that report several
  /// independent sections; tests should prefer snapshot/diff.
  void reset();

#ifndef PDGC_DISABLE_STATS
  /// Called by StatCounter's constructor; not for direct use.
  void registerCounter(StatCounter *C);
#endif

private:
  StatRegistry() = default;
#ifndef PDGC_DISABLE_STATS
  mutable Mutex Mu;
  /// Head of the intrusive counter chain. The chain links themselves
  /// (StatCounter::Next) are written only under Mu; readers that iterate
  /// do so holding Mu too (snapshot, reset, counter).
  StatCounter *Head PDGC_GUARDED_BY(Mu) = nullptr;
  /// Owns dynamically created counters (they are also chained via Head)
  /// and the strings their group/name pointers reference.
  std::vector<std::unique_ptr<StatCounter>> Dynamic PDGC_GUARDED_BY(Mu);
  std::vector<std::unique_ptr<std::pair<std::string, std::string>>>
      DynamicNames PDGC_GUARDED_BY(Mu);
#endif
};

} // namespace pdgc

#ifndef PDGC_DISABLE_STATS
/// Yields a reference to the (lazily registered) counter for this use
/// site. GROUP and NAME must be string literals or otherwise outlive the
/// program.
#define PDGC_STAT(GROUP, NAME)                                                 \
  ([]() -> ::pdgc::StatCounter & {                                             \
    static ::pdgc::StatCounter PdgcStatCounter_(GROUP, NAME);                  \
    return PdgcStatCounter_;                                                   \
  }())
#else
#define PDGC_STAT(GROUP, NAME) (::pdgc::StatCounter(GROUP, NAME))
#endif

#endif // PDGC_SUPPORT_STATS_H
