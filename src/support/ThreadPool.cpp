//===- support/ThreadPool.cpp - Fixed-size worker pool ---------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/Stats.h"
#include "support/Tracing.h"

#include <algorithm>
#include <chrono>
#include <memory>

using namespace pdgc;

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads <= 1)
    return; // Inline mode: submit() runs jobs on the calling thread.
  Workers.reserve(Threads);
  for (unsigned I = 0; I != Threads; ++I)
    Workers.emplace_back([this, I] {
      // Lane ids give each worker its own track in exported traces
      // (lane 0 is the submitting/main thread).
      trace::setThreadLane(I + 1);
      workerLoop();
    });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock Lock(Mu);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Job;
    {
      MutexLock Lock(Mu);
      while (!Stopping && Queue.empty())
        WorkAvailable.wait(Lock);
      if (Queue.empty())
        return; // Stopping with a drained queue.
      Job = std::move(Queue.front());
      Queue.pop_front();
    }
    try {
      Job();
    } catch (...) {
      recordError(std::current_exception());
    }
    {
      MutexLock Lock(Mu);
      if (--Pending == 0)
        AllDone.notify_all();
    }
  }
}

void ThreadPool::recordError(std::exception_ptr E) {
  PDGC_STAT("threadpool", "job_exceptions").inc();
  MutexLock Lock(Mu);
  if (!FirstError)
    FirstError = std::move(E);
}

void ThreadPool::rethrowPending() {
  std::exception_ptr E;
  {
    MutexLock Lock(Mu);
    E = FirstError;
    FirstError = nullptr;
  }
  if (E)
    std::rethrow_exception(E);
}

void ThreadPool::submit(std::function<void()> Job) {
  if (Workers.empty()) {
    // Inline mode captures too, so submit() has one contract at every
    // thread count: job exceptions surface from wait(), not here.
    try {
      Job();
    } catch (...) {
      recordError(std::current_exception());
    }
    return;
  }
  // Queue-wait attribution: how long the job sat behind the scheduler.
  // Only measured when timers are on — the wrapper costs an extra clock
  // read and a std::function hop per job.
  if (timersEnabled()) {
    Job = [Enqueued = std::chrono::steady_clock::now(),
           Inner = std::move(Job)] {
      addTimerSample("threadpool.queue_wait",
                     static_cast<std::uint64_t>(
                         std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - Enqueued)
                             .count()));
      Inner();
    };
  }
  {
    MutexLock Lock(Mu);
    Queue.push_back(std::move(Job));
    ++Pending;
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  if (!Workers.empty()) {
    MutexLock Lock(Mu);
    while (Pending != 0)
      AllDone.wait(Lock);
  }
  rethrowPending();
}

void ThreadPool::parallelFor(unsigned Count,
                             const std::function<void(unsigned)> &Fn) {
  if (Count == 0)
    return;
  // Items, not claiming jobs: the claim-job count depends on the worker
  // count, and the stats report promises jobs-independent counters.
  PDGC_STAT("threadpool", "parallel_items").add(Count);
  if (Workers.empty()) {
    for (unsigned I = 0; I != Count; ++I) {
      try {
        Fn(I);
      } catch (...) {
        recordError(std::current_exception());
      }
    }
    rethrowPending();
    return;
  }
  // One claiming job per worker (capped by Count); each drains the shared
  // cursor so a slow item does not leave the other workers idle. Items
  // are guarded individually — a throwing item must not kill its claimer,
  // or every index the claimer would have drained is silently skipped.
  auto Next = std::make_shared<std::atomic<unsigned>>(0);
  const unsigned Claimers =
      std::min(numThreads(), Count);
  for (unsigned I = 0; I != Claimers; ++I)
    submit([this, Next, Count, &Fn] {
      for (unsigned Idx = Next->fetch_add(1); Idx < Count;
           Idx = Next->fetch_add(1)) {
        try {
          Fn(Idx);
        } catch (...) {
          recordError(std::current_exception());
        }
      }
    });
  wait();
}

unsigned ThreadPool::defaultJobs() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}
