//===- support/ThreadPool.cpp - Fixed-size worker pool ---------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <memory>

using namespace pdgc;

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads <= 1)
    return; // Inline mode: submit() runs jobs on the calling thread.
  Workers.reserve(Threads);
  for (unsigned I = 0; I != Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping with a drained queue.
      Job = std::move(Queue.front());
      Queue.pop_front();
    }
    Job();
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      if (--Pending == 0)
        AllDone.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> Job) {
  if (Workers.empty()) {
    Job();
    return;
  }
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Job));
    ++Pending;
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  if (Workers.empty())
    return;
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return Pending == 0; });
}

void ThreadPool::parallelFor(unsigned Count,
                             const std::function<void(unsigned)> &Fn) {
  if (Count == 0)
    return;
  if (Workers.empty()) {
    for (unsigned I = 0; I != Count; ++I)
      Fn(I);
    return;
  }
  // One claiming job per worker (capped by Count); each drains the shared
  // cursor so a slow item does not leave the other workers idle.
  auto Next = std::make_shared<std::atomic<unsigned>>(0);
  const unsigned Claimers =
      std::min(numThreads(), Count);
  for (unsigned I = 0; I != Claimers; ++I)
    submit([Next, Count, &Fn] {
      for (unsigned Idx = Next->fetch_add(1); Idx < Count;
           Idx = Next->fetch_add(1))
        Fn(Idx);
    });
  wait();
}

unsigned ThreadPool::defaultJobs() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}
