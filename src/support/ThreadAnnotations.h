//===- support/ThreadAnnotations.h - Static lock-discipline proofs -*- C++ -*-===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Clang thread-safety annotations plus the annotated synchronization
/// wrappers the rest of the tree is required to use (`pdgc::Mutex`,
/// `pdgc::MutexLock`, `pdgc::CondVar`). Under
/// `clang++ -Wthread-safety -Werror=thread-safety-analysis` every
/// lock-discipline violation — touching a `PDGC_GUARDED_BY` member
/// without its mutex, calling a `PDGC_REQUIRES` function unlocked,
/// leaking a lock out of a scope — is a *compile error*; under GCC (and
/// any other compiler) every macro expands to nothing and the wrappers
/// compile down to plain `std::mutex` / `std::condition_variable`, so
/// there is zero runtime or codegen difference.
///
/// Usage pattern:
///
/// \code
///   class Registry {
///     void add(Entry E) {
///       MutexLock Lock(Mu);
///       Entries.push_back(std::move(E)); // OK: Mu held.
///     }
///   private:
///     mutable Mutex Mu;
///     std::vector<Entry> Entries PDGC_GUARDED_BY(Mu);
///   };
/// \endcode
///
/// Condition variables: `CondVar::wait(MutexLock&)` releases and
/// reacquires the lock internally, which the analysis cannot see; from
/// its point of view the `MutexLock` scope simply holds the capability
/// throughout. Predicate waits are therefore written as explicit loops
/// in the locked scope (`while (!pred) CV.wait(Lock);`) — a lambda
/// predicate would be analyzed as a separate unannotated function and
/// flag every guarded access it makes.
///
/// Escape hatches, in order of preference: restructure so the analysis
/// can see the discipline; `PDGC_REQUIRES(Mu)` on a helper that inherits
/// its caller's lock; `PDGC_NO_THREAD_SAFETY_ANALYSIS` on a function
/// whose safety argument lives outside the type system (document why at
/// the definition — see FaultRegistry::plan() for the canonical
/// example). `tools/pdgc-lint.py` bans raw `std::mutex` and friends
/// outside this header so the annotated wrappers stay load-bearing; see
/// docs/STATIC_ANALYSIS.md.
///
//===----------------------------------------------------------------------===//

#ifndef PDGC_SUPPORT_THREADANNOTATIONS_H
#define PDGC_SUPPORT_THREADANNOTATIONS_H

#include <condition_variable>
#include <mutex>

// The attribute spellings below are understood by clang only; GCC defines
// __GNUC__ but not __clang__ and gets empty expansions.
#if defined(__clang__) && !defined(SWIG)
#define PDGC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PDGC_THREAD_ANNOTATION(x) // no-op
#endif

/// Declares a type to be a lockable capability ("mutex" in diagnostics).
#define PDGC_CAPABILITY(x) PDGC_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability.
#define PDGC_SCOPED_CAPABILITY PDGC_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define PDGC_GUARDED_BY(x) PDGC_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given mutex.
#define PDGC_PT_GUARDED_BY(x) PDGC_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function callable only while already holding the listed mutexes.
#define PDGC_REQUIRES(...)                                                     \
  PDGC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the listed mutexes (held on return).
#define PDGC_ACQUIRE(...)                                                      \
  PDGC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the listed mutexes (held on entry).
#define PDGC_RELEASE(...)                                                      \
  PDGC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the mutex when it returns the given value.
#define PDGC_TRY_ACQUIRE(...)                                                  \
  PDGC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function that must NOT be called while holding the listed mutexes
/// (deadlock prevention: e.g. a callback-invoking function excluding the
/// registry lock the callback re-takes).
#define PDGC_EXCLUDES(...) PDGC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime, to the analysis) that the capability is held.
#define PDGC_ASSERT_CAPABILITY(x) PDGC_THREAD_ANNOTATION(assert_capability(x))

/// Function returning a reference to the given capability.
#define PDGC_RETURN_CAPABILITY(x) PDGC_THREAD_ANNOTATION(lock_returned(x))

/// Lock-ordering declarations.
#define PDGC_ACQUIRED_BEFORE(...)                                              \
  PDGC_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define PDGC_ACQUIRED_AFTER(...)                                               \
  PDGC_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Last resort: turns the analysis off for one function. Every use must
/// carry a comment explaining the out-of-band safety argument.
#define PDGC_NO_THREAD_SAFETY_ANALYSIS                                         \
  PDGC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace pdgc {

/// A `std::mutex` the analysis can track. Same size, same codegen; the
/// capability attribute exists only in clang's AST.
class PDGC_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  void lock() PDGC_ACQUIRE() { M.lock(); }
  void unlock() PDGC_RELEASE() { M.unlock(); }
  bool try_lock() PDGC_TRY_ACQUIRE(true) { return M.try_lock(); }

  /// The wrapped mutex, for CondVar only. Going through native() anywhere
  /// else bypasses the analysis — pdgc-lint's raw-mutex ban exists so the
  /// temptation stays visible in review.
  std::mutex &native() { return M; }

private:
  std::mutex M;
};

/// RAII lock; the only way the tree takes a Mutex. Scoped-capability
/// semantics: the analysis treats the capability as held from
/// construction to destruction.
class PDGC_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex &M) PDGC_ACQUIRE(M) : Lock(M.native()) {}
  ~MutexLock() PDGC_RELEASE() {}

  MutexLock(const MutexLock &) = delete;
  MutexLock &operator=(const MutexLock &) = delete;

  /// The wrapped lock, for CondVar::wait only (it must be able to
  /// release and reacquire around the blocking wait).
  std::unique_lock<std::mutex> &native() { return Lock; }

private:
  std::unique_lock<std::mutex> Lock;
};

/// Condition variable paired with MutexLock. No predicate overload on
/// purpose: a lambda predicate is analyzed as a separate unannotated
/// function, so guarded accesses inside it would be flagged — write the
/// loop in the locked scope instead, where the analysis can check it:
///
/// \code
///   MutexLock Lock(Mu);
///   while (!Ready)          // Ready is PDGC_GUARDED_BY(Mu): checked.
///     CV.wait(Lock);
/// \endcode
class CondVar {
public:
  CondVar() = default;
  CondVar(const CondVar &) = delete;
  CondVar &operator=(const CondVar &) = delete;

  /// Atomically releases \p Lock, blocks, reacquires before returning.
  /// Spurious wakeups happen; always wait in a predicate loop.
  void wait(MutexLock &Lock) { CV.wait(Lock.native()); }

  /// Timed wait: returns after a notification or once \p Ms milliseconds
  /// elapse, whichever is first (true = notified before the timeout).
  /// Same predicate-loop rule as wait() — the timeout exists for
  /// periodic scans (watchdogs, reapers), not for correctness.
  bool waitForMs(MutexLock &Lock, unsigned Ms) {
    return CV.wait_for(Lock.native(), std::chrono::milliseconds(Ms)) ==
           std::cv_status::no_timeout;
  }

  void notify_one() { CV.notify_one(); }
  void notify_all() { CV.notify_all(); }

private:
  std::condition_variable CV;
};

} // namespace pdgc

#endif // PDGC_SUPPORT_THREADANNOTATIONS_H
