//===- support/Subprocess.cpp - Forked sandbox child processes ------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "support/Subprocess.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace pdgc;

std::string WaitStatus::toString() const {
  switch (State) {
  case Running:
    return "running";
  case Exited:
    return "exit " + std::to_string(Code);
  case Signaled: {
    const char *Name = nullptr;
    switch (Code) {
    case SIGSEGV:
      Name = "SIGSEGV";
      break;
    case SIGABRT:
      Name = "SIGABRT";
      break;
    case SIGKILL:
      Name = "SIGKILL";
      break;
    case SIGXCPU:
      Name = "SIGXCPU";
      break;
    case SIGBUS:
      Name = "SIGBUS";
      break;
    case SIGFPE:
      Name = "SIGFPE";
      break;
    case SIGILL:
      Name = "SIGILL";
      break;
    case SIGTERM:
      Name = "SIGTERM";
      break;
    default:
      break;
    }
    std::string S = "signal " + std::to_string(Code);
    if (Name)
      S += std::string(" (") + Name + ")";
    return S;
  }
  }
  return "unknown";
}

namespace {

WaitStatus decodeWait(int Raw) {
  WaitStatus WS;
  if (WIFEXITED(Raw)) {
    WS.State = WaitStatus::Exited;
    WS.Code = WEXITSTATUS(Raw);
  } else if (WIFSIGNALED(Raw)) {
    WS.State = WaitStatus::Signaled;
    WS.Code = WTERMSIG(Raw);
  }
  return WS;
}

// Child-side setup. Everything here must stay fork-safe: no locks, no
// heap allocation beyond what glibc's post-fork allocator state permits.
void prepareChild(int KeepIn, int KeepOut, const SubprocessLimits &Limits) {
  // Back to default dispositions so the real-abort chaos site and rlimit
  // overruns terminate the child the way a genuine bug would, regardless
  // of what handlers the parent (tests, the daemon) had installed.
  for (int Signo : {SIGTERM, SIGINT, SIGABRT, SIGSEGV, SIGBUS, SIGFPE,
                    SIGILL, SIGXCPU, SIGCHLD, SIGALRM, SIGPIPE})
    ::signal(Signo, SIG_DFL);

  sigset_t All;
  sigemptyset(&All);
  pthread_sigmask(SIG_SETMASK, &All, nullptr);

  // Drop every inherited descriptor except the pipe pair and stderr
  // (diagnostics from a crashing child are worth keeping). This includes
  // the parent's listening socket and any accepted connections.
  long MaxFd = ::sysconf(_SC_OPEN_MAX);
  if (MaxFd <= 0 || MaxFd > 65536)
    MaxFd = 65536;
  for (int Fd = 3; Fd < static_cast<int>(MaxFd); ++Fd)
    if (Fd != KeepIn && Fd != KeepOut)
      ::close(Fd);

  if (Limits.AddressSpaceMb) {
    struct rlimit RL;
    RL.rlim_cur = RL.rlim_max =
        static_cast<rlim_t>(Limits.AddressSpaceMb) * 1024 * 1024;
    (void)::setrlimit(RLIMIT_AS, &RL);
  }
  if (Limits.CpuSeconds) {
    struct rlimit RL;
    RL.rlim_cur = static_cast<rlim_t>(Limits.CpuSeconds);
    RL.rlim_max = static_cast<rlim_t>(Limits.CpuSeconds) + 1;
    (void)::setrlimit(RLIMIT_CPU, &RL);
  }
}

} // namespace

Subprocess::~Subprocess() { closePipes(); }

bool Subprocess::spawn(const SubprocessLimits &Limits, const ChildMain &Main,
                       std::string *Error) {
  if (started() && !Reaped) {
    if (Error)
      *Error = "subprocess already running";
    return false;
  }
  closePipes();
  Reaped = false;
  Cached = WaitStatus();

  int Req[2] = {-1, -1};  // parent writes Req[1], child reads Req[0]
  int Resp[2] = {-1, -1}; // child writes Resp[1], parent reads Resp[0]
  if (::pipe(Req) != 0) {
    if (Error)
      *Error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  if (::pipe(Resp) != 0) {
    if (Error)
      *Error = std::string("pipe: ") + std::strerror(errno);
    ::close(Req[0]);
    ::close(Req[1]);
    return false;
  }

  pid_t Child = ::fork();
  if (Child < 0) {
    if (Error)
      *Error = std::string("fork: ") + std::strerror(errno);
    ::close(Req[0]);
    ::close(Req[1]);
    ::close(Resp[0]);
    ::close(Resp[1]);
    return false;
  }

  if (Child == 0) {
    // Child. Never return: _exit skips atexit handlers, static dtors and
    // sanitizer leak reports, all of which belong to the parent image.
    prepareChild(Req[0], Resp[1], Limits);
    int Rc = 70; // EX_SOFTWARE if Main itself is broken enough to throw
    try {
      Rc = Main(Req[0], Resp[1]);
    } catch (...) {
    }
    ::_exit(Rc);
  }

  // Parent.
  ::close(Req[0]);
  ::close(Resp[1]);
  Pid = Child;
  ReqWr = Req[1];
  RespRd = Resp[0];
  return true;
}

void Subprocess::closePipes() {
  if (ReqWr >= 0) {
    ::close(ReqWr);
    ReqWr = -1;
  }
  if (RespRd >= 0) {
    ::close(RespRd);
    RespRd = -1;
  }
}

void Subprocess::kill(int Signo) {
  if (started() && !Reaped)
    (void)::kill(Pid, Signo);
}

WaitStatus Subprocess::tryWait() {
  if (!started())
    return WaitStatus();
  if (Reaped)
    return Cached;
  for (;;) {
    int Raw = 0;
    pid_t Got = ::waitpid(Pid, &Raw, WNOHANG);
    if (Got == Pid) {
      Cached = decodeWait(Raw);
      if (!Cached.alive())
        Reaped = true;
      return Cached;
    }
    if (Got == 0)
      return WaitStatus(); // still running
    if (errno == EINTR)
      continue; // SIGCHLD handler has no SA_RESTART; retry
    // ECHILD or another hard error: treat as exited-unknowably.
    Cached.State = WaitStatus::Exited;
    Cached.Code = 127;
    Reaped = true;
    return Cached;
  }
}

WaitStatus Subprocess::wait() {
  if (!started())
    return WaitStatus();
  if (Reaped)
    return Cached;
  for (;;) {
    int Raw = 0;
    pid_t Got = ::waitpid(Pid, &Raw, 0);
    if (Got == Pid) {
      Cached = decodeWait(Raw);
      Reaped = true;
      return Cached;
    }
    if (Got < 0 && errno == EINTR)
      continue;
    Cached.State = WaitStatus::Exited;
    Cached.Code = 127;
    Reaped = true;
    return Cached;
  }
}
