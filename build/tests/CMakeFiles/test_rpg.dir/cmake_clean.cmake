file(REMOVE_RECURSE
  "CMakeFiles/test_rpg.dir/test_rpg.cpp.o"
  "CMakeFiles/test_rpg.dir/test_rpg.cpp.o.d"
  "test_rpg"
  "test_rpg.pdb"
  "test_rpg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
