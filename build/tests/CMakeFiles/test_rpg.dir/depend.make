# Empty dependencies file for test_rpg.
# This may be replaced when dependencies are built.
