# Empty dependencies file for test_figure7.
# This may be replaced when dependencies are built.
