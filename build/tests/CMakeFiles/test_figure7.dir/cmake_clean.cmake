file(REMOVE_RECURSE
  "CMakeFiles/test_figure7.dir/test_figure7.cpp.o"
  "CMakeFiles/test_figure7.dir/test_figure7.cpp.o.d"
  "test_figure7"
  "test_figure7.pdb"
  "test_figure7[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_figure7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
