file(REMOVE_RECURSE
  "CMakeFiles/test_restricted.dir/test_restricted.cpp.o"
  "CMakeFiles/test_restricted.dir/test_restricted.cpp.o.d"
  "test_restricted"
  "test_restricted.pdb"
  "test_restricted[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_restricted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
