# Empty compiler generated dependencies file for test_restricted.
# This may be replaced when dependencies are built.
