file(REMOVE_RECURSE
  "CMakeFiles/test_loopinfo.dir/test_loopinfo.cpp.o"
  "CMakeFiles/test_loopinfo.dir/test_loopinfo.cpp.o.d"
  "test_loopinfo"
  "test_loopinfo.pdb"
  "test_loopinfo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loopinfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
