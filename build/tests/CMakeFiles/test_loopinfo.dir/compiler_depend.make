# Empty compiler generated dependencies file for test_loopinfo.
# This may be replaced when dependencies are built.
