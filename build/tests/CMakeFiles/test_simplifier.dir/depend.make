# Empty dependencies file for test_simplifier.
# This may be replaced when dependencies are built.
