file(REMOVE_RECURSE
  "CMakeFiles/test_simplifier.dir/test_simplifier.cpp.o"
  "CMakeFiles/test_simplifier.dir/test_simplifier.cpp.o.d"
  "test_simplifier"
  "test_simplifier.pdb"
  "test_simplifier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simplifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
