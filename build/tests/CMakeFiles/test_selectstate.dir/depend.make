# Empty dependencies file for test_selectstate.
# This may be replaced when dependencies are built.
