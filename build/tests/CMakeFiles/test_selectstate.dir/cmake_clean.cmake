file(REMOVE_RECURSE
  "CMakeFiles/test_selectstate.dir/test_selectstate.cpp.o"
  "CMakeFiles/test_selectstate.dir/test_selectstate.cpp.o.d"
  "test_selectstate"
  "test_selectstate.pdb"
  "test_selectstate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selectstate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
