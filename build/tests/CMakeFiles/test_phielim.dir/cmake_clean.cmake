file(REMOVE_RECURSE
  "CMakeFiles/test_phielim.dir/test_phielim.cpp.o"
  "CMakeFiles/test_phielim.dir/test_phielim.cpp.o.d"
  "test_phielim"
  "test_phielim.pdb"
  "test_phielim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phielim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
