# Empty compiler generated dependencies file for test_phielim.
# This may be replaced when dependencies are built.
