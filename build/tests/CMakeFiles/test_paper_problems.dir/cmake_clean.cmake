file(REMOVE_RECURSE
  "CMakeFiles/test_paper_problems.dir/test_paper_problems.cpp.o"
  "CMakeFiles/test_paper_problems.dir/test_paper_problems.cpp.o.d"
  "test_paper_problems"
  "test_paper_problems.pdb"
  "test_paper_problems[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
