# Empty dependencies file for test_paper_problems.
# This may be replaced when dependencies are built.
