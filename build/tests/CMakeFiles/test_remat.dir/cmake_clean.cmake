file(REMOVE_RECURSE
  "CMakeFiles/test_remat.dir/test_remat.cpp.o"
  "CMakeFiles/test_remat.dir/test_remat.cpp.o.d"
  "test_remat"
  "test_remat.pdb"
  "test_remat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
