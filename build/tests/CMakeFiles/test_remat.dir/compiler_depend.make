# Empty compiler generated dependencies file for test_remat.
# This may be replaced when dependencies are built.
