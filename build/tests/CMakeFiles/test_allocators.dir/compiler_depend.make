# Empty compiler generated dependencies file for test_allocators.
# This may be replaced when dependencies are built.
