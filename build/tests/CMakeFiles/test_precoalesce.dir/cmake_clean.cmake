file(REMOVE_RECURSE
  "CMakeFiles/test_precoalesce.dir/test_precoalesce.cpp.o"
  "CMakeFiles/test_precoalesce.dir/test_precoalesce.cpp.o.d"
  "test_precoalesce"
  "test_precoalesce.pdb"
  "test_precoalesce[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_precoalesce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
