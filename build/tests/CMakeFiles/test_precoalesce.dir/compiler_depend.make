# Empty compiler generated dependencies file for test_precoalesce.
# This may be replaced when dependencies are built.
