file(REMOVE_RECURSE
  "CMakeFiles/test_costsim.dir/test_costsim.cpp.o"
  "CMakeFiles/test_costsim.dir/test_costsim.cpp.o.d"
  "test_costsim"
  "test_costsim.pdb"
  "test_costsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_costsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
