# Empty compiler generated dependencies file for test_costsim.
# This may be replaced when dependencies are built.
