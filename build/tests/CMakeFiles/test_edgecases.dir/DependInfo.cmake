
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_edgecases.cpp" "tests/CMakeFiles/test_edgecases.dir/test_edgecases.cpp.o" "gcc" "tests/CMakeFiles/test_edgecases.dir/test_edgecases.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pdgc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/regalloc/CMakeFiles/pdgc_regalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pdgc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pdgc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pdgc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/pdgc_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pdgc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pdgc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
