# Empty dependencies file for test_pdgc.
# This may be replaced when dependencies are built.
