file(REMOVE_RECURSE
  "CMakeFiles/test_pdgc.dir/test_pdgc.cpp.o"
  "CMakeFiles/test_pdgc.dir/test_pdgc.cpp.o.d"
  "test_pdgc"
  "test_pdgc.pdb"
  "test_pdgc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pdgc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
