# Empty compiler generated dependencies file for test_spill_granularity.
# This may be replaced when dependencies are built.
