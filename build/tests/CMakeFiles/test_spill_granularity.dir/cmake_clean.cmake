file(REMOVE_RECURSE
  "CMakeFiles/test_spill_granularity.dir/test_spill_granularity.cpp.o"
  "CMakeFiles/test_spill_granularity.dir/test_spill_granularity.cpp.o.d"
  "test_spill_granularity"
  "test_spill_granularity.pdb"
  "test_spill_granularity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spill_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
