# Empty compiler generated dependencies file for test_cpg.
# This may be replaced when dependencies are built.
