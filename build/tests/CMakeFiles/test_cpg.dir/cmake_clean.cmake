file(REMOVE_RECURSE
  "CMakeFiles/test_cpg.dir/test_cpg.cpp.o"
  "CMakeFiles/test_cpg.dir/test_cpg.cpp.o.d"
  "test_cpg"
  "test_cpg.pdb"
  "test_cpg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
