file(REMOVE_RECURSE
  "CMakeFiles/irregular_registers.dir/irregular_registers.cpp.o"
  "CMakeFiles/irregular_registers.dir/irregular_registers.cpp.o.d"
  "irregular_registers"
  "irregular_registers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irregular_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
