# Empty compiler generated dependencies file for irregular_registers.
# This may be replaced when dependencies are built.
