file(REMOVE_RECURSE
  "CMakeFiles/figure7_walkthrough.dir/figure7_walkthrough.cpp.o"
  "CMakeFiles/figure7_walkthrough.dir/figure7_walkthrough.cpp.o.d"
  "figure7_walkthrough"
  "figure7_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure7_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
