# Empty compiler generated dependencies file for figure7_walkthrough.
# This may be replaced when dependencies are built.
