# Empty compiler generated dependencies file for callcost_tuning.
# This may be replaced when dependencies are built.
