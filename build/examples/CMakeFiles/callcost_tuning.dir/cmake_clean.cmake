file(REMOVE_RECURSE
  "CMakeFiles/callcost_tuning.dir/callcost_tuning.cpp.o"
  "CMakeFiles/callcost_tuning.dir/callcost_tuning.cpp.o.d"
  "callcost_tuning"
  "callcost_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/callcost_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
