# Empty dependencies file for pdgc_support.
# This may be replaced when dependencies are built.
