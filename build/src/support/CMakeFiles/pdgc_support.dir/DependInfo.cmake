
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/Debug.cpp" "src/support/CMakeFiles/pdgc_support.dir/Debug.cpp.o" "gcc" "src/support/CMakeFiles/pdgc_support.dir/Debug.cpp.o.d"
  "/root/repo/src/support/Statistics.cpp" "src/support/CMakeFiles/pdgc_support.dir/Statistics.cpp.o" "gcc" "src/support/CMakeFiles/pdgc_support.dir/Statistics.cpp.o.d"
  "/root/repo/src/support/TablePrinter.cpp" "src/support/CMakeFiles/pdgc_support.dir/TablePrinter.cpp.o" "gcc" "src/support/CMakeFiles/pdgc_support.dir/TablePrinter.cpp.o.d"
  "/root/repo/src/support/UnionFind.cpp" "src/support/CMakeFiles/pdgc_support.dir/UnionFind.cpp.o" "gcc" "src/support/CMakeFiles/pdgc_support.dir/UnionFind.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
