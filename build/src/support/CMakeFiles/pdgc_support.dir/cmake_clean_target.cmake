file(REMOVE_RECURSE
  "libpdgc_support.a"
)
