file(REMOVE_RECURSE
  "CMakeFiles/pdgc_support.dir/Debug.cpp.o"
  "CMakeFiles/pdgc_support.dir/Debug.cpp.o.d"
  "CMakeFiles/pdgc_support.dir/Statistics.cpp.o"
  "CMakeFiles/pdgc_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/pdgc_support.dir/TablePrinter.cpp.o"
  "CMakeFiles/pdgc_support.dir/TablePrinter.cpp.o.d"
  "CMakeFiles/pdgc_support.dir/UnionFind.cpp.o"
  "CMakeFiles/pdgc_support.dir/UnionFind.cpp.o.d"
  "libpdgc_support.a"
  "libpdgc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdgc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
