# Empty dependencies file for pdgc_core.
# This may be replaced when dependencies are built.
