file(REMOVE_RECURSE
  "libpdgc_core.a"
)
