file(REMOVE_RECURSE
  "CMakeFiles/pdgc_core.dir/ColoringPrecedenceGraph.cpp.o"
  "CMakeFiles/pdgc_core.dir/ColoringPrecedenceGraph.cpp.o.d"
  "CMakeFiles/pdgc_core.dir/PreferenceDirectedAllocator.cpp.o"
  "CMakeFiles/pdgc_core.dir/PreferenceDirectedAllocator.cpp.o.d"
  "CMakeFiles/pdgc_core.dir/RegisterPreferenceGraph.cpp.o"
  "CMakeFiles/pdgc_core.dir/RegisterPreferenceGraph.cpp.o.d"
  "libpdgc_core.a"
  "libpdgc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdgc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
