# Empty compiler generated dependencies file for pdgc_ir.
# This may be replaced when dependencies are built.
