file(REMOVE_RECURSE
  "libpdgc_ir.a"
)
