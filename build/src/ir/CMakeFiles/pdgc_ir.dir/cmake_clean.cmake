file(REMOVE_RECURSE
  "CMakeFiles/pdgc_ir.dir/DeadCodeElimination.cpp.o"
  "CMakeFiles/pdgc_ir.dir/DeadCodeElimination.cpp.o.d"
  "CMakeFiles/pdgc_ir.dir/Function.cpp.o"
  "CMakeFiles/pdgc_ir.dir/Function.cpp.o.d"
  "CMakeFiles/pdgc_ir.dir/IRBuilder.cpp.o"
  "CMakeFiles/pdgc_ir.dir/IRBuilder.cpp.o.d"
  "CMakeFiles/pdgc_ir.dir/IRParser.cpp.o"
  "CMakeFiles/pdgc_ir.dir/IRParser.cpp.o.d"
  "CMakeFiles/pdgc_ir.dir/IRPrinter.cpp.o"
  "CMakeFiles/pdgc_ir.dir/IRPrinter.cpp.o.d"
  "CMakeFiles/pdgc_ir.dir/Opcode.cpp.o"
  "CMakeFiles/pdgc_ir.dir/Opcode.cpp.o.d"
  "CMakeFiles/pdgc_ir.dir/PhiElimination.cpp.o"
  "CMakeFiles/pdgc_ir.dir/PhiElimination.cpp.o.d"
  "CMakeFiles/pdgc_ir.dir/Verifier.cpp.o"
  "CMakeFiles/pdgc_ir.dir/Verifier.cpp.o.d"
  "libpdgc_ir.a"
  "libpdgc_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdgc_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
