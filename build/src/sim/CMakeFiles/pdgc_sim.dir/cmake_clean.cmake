file(REMOVE_RECURSE
  "CMakeFiles/pdgc_sim.dir/CostSimulator.cpp.o"
  "CMakeFiles/pdgc_sim.dir/CostSimulator.cpp.o.d"
  "CMakeFiles/pdgc_sim.dir/Interpreter.cpp.o"
  "CMakeFiles/pdgc_sim.dir/Interpreter.cpp.o.d"
  "libpdgc_sim.a"
  "libpdgc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdgc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
