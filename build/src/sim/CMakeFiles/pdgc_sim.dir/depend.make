# Empty dependencies file for pdgc_sim.
# This may be replaced when dependencies are built.
