file(REMOVE_RECURSE
  "libpdgc_sim.a"
)
