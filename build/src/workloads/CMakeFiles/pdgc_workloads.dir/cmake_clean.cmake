file(REMOVE_RECURSE
  "CMakeFiles/pdgc_workloads.dir/Figure7.cpp.o"
  "CMakeFiles/pdgc_workloads.dir/Figure7.cpp.o.d"
  "CMakeFiles/pdgc_workloads.dir/Generator.cpp.o"
  "CMakeFiles/pdgc_workloads.dir/Generator.cpp.o.d"
  "CMakeFiles/pdgc_workloads.dir/Suites.cpp.o"
  "CMakeFiles/pdgc_workloads.dir/Suites.cpp.o.d"
  "libpdgc_workloads.a"
  "libpdgc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdgc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
