
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Figure7.cpp" "src/workloads/CMakeFiles/pdgc_workloads.dir/Figure7.cpp.o" "gcc" "src/workloads/CMakeFiles/pdgc_workloads.dir/Figure7.cpp.o.d"
  "/root/repo/src/workloads/Generator.cpp" "src/workloads/CMakeFiles/pdgc_workloads.dir/Generator.cpp.o" "gcc" "src/workloads/CMakeFiles/pdgc_workloads.dir/Generator.cpp.o.d"
  "/root/repo/src/workloads/Suites.cpp" "src/workloads/CMakeFiles/pdgc_workloads.dir/Suites.cpp.o" "gcc" "src/workloads/CMakeFiles/pdgc_workloads.dir/Suites.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/pdgc_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pdgc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pdgc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
