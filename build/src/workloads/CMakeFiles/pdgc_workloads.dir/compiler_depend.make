# Empty compiler generated dependencies file for pdgc_workloads.
# This may be replaced when dependencies are built.
