file(REMOVE_RECURSE
  "libpdgc_workloads.a"
)
