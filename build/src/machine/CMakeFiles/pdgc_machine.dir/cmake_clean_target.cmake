file(REMOVE_RECURSE
  "libpdgc_machine.a"
)
