file(REMOVE_RECURSE
  "CMakeFiles/pdgc_machine.dir/TargetDesc.cpp.o"
  "CMakeFiles/pdgc_machine.dir/TargetDesc.cpp.o.d"
  "libpdgc_machine.a"
  "libpdgc_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdgc_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
