# Empty dependencies file for pdgc_machine.
# This may be replaced when dependencies are built.
