
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regalloc/AllocatorBase.cpp" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/AllocatorBase.cpp.o" "gcc" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/AllocatorBase.cpp.o.d"
  "/root/repo/src/regalloc/AssignmentChecker.cpp" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/AssignmentChecker.cpp.o" "gcc" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/AssignmentChecker.cpp.o.d"
  "/root/repo/src/regalloc/BriggsAllocator.cpp" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/BriggsAllocator.cpp.o" "gcc" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/BriggsAllocator.cpp.o.d"
  "/root/repo/src/regalloc/CallCostAllocator.cpp" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/CallCostAllocator.cpp.o" "gcc" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/CallCostAllocator.cpp.o.d"
  "/root/repo/src/regalloc/ChaitinAllocator.cpp" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/ChaitinAllocator.cpp.o" "gcc" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/ChaitinAllocator.cpp.o.d"
  "/root/repo/src/regalloc/CoalescedCosts.cpp" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/CoalescedCosts.cpp.o" "gcc" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/CoalescedCosts.cpp.o.d"
  "/root/repo/src/regalloc/Coalescer.cpp" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/Coalescer.cpp.o" "gcc" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/Coalescer.cpp.o.d"
  "/root/repo/src/regalloc/Driver.cpp" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/Driver.cpp.o" "gcc" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/Driver.cpp.o.d"
  "/root/repo/src/regalloc/IteratedCoalescingAllocator.cpp" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/IteratedCoalescingAllocator.cpp.o" "gcc" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/IteratedCoalescingAllocator.cpp.o.d"
  "/root/repo/src/regalloc/Metrics.cpp" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/Metrics.cpp.o" "gcc" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/Metrics.cpp.o.d"
  "/root/repo/src/regalloc/OptimalAllocator.cpp" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/OptimalAllocator.cpp.o" "gcc" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/OptimalAllocator.cpp.o.d"
  "/root/repo/src/regalloc/OptimisticCoalescingAllocator.cpp" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/OptimisticCoalescingAllocator.cpp.o" "gcc" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/OptimisticCoalescingAllocator.cpp.o.d"
  "/root/repo/src/regalloc/PriorityAllocator.cpp" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/PriorityAllocator.cpp.o" "gcc" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/PriorityAllocator.cpp.o.d"
  "/root/repo/src/regalloc/Rewriter.cpp" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/Rewriter.cpp.o" "gcc" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/Rewriter.cpp.o.d"
  "/root/repo/src/regalloc/Simplifier.cpp" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/Simplifier.cpp.o" "gcc" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/Simplifier.cpp.o.d"
  "/root/repo/src/regalloc/SpillCodeInserter.cpp" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/SpillCodeInserter.cpp.o" "gcc" "src/regalloc/CMakeFiles/pdgc_regalloc.dir/SpillCodeInserter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pdgc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pdgc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/pdgc_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pdgc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pdgc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
