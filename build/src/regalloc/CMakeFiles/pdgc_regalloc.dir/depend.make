# Empty dependencies file for pdgc_regalloc.
# This may be replaced when dependencies are built.
