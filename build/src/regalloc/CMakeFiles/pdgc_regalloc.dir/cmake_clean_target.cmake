file(REMOVE_RECURSE
  "libpdgc_regalloc.a"
)
