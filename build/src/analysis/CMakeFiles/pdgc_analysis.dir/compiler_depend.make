# Empty compiler generated dependencies file for pdgc_analysis.
# This may be replaced when dependencies are built.
