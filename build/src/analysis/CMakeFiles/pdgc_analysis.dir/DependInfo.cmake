
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/CostModel.cpp" "src/analysis/CMakeFiles/pdgc_analysis.dir/CostModel.cpp.o" "gcc" "src/analysis/CMakeFiles/pdgc_analysis.dir/CostModel.cpp.o.d"
  "/root/repo/src/analysis/InterferenceGraph.cpp" "src/analysis/CMakeFiles/pdgc_analysis.dir/InterferenceGraph.cpp.o" "gcc" "src/analysis/CMakeFiles/pdgc_analysis.dir/InterferenceGraph.cpp.o.d"
  "/root/repo/src/analysis/Liveness.cpp" "src/analysis/CMakeFiles/pdgc_analysis.dir/Liveness.cpp.o" "gcc" "src/analysis/CMakeFiles/pdgc_analysis.dir/Liveness.cpp.o.d"
  "/root/repo/src/analysis/LoopInfo.cpp" "src/analysis/CMakeFiles/pdgc_analysis.dir/LoopInfo.cpp.o" "gcc" "src/analysis/CMakeFiles/pdgc_analysis.dir/LoopInfo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pdgc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/pdgc_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pdgc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
