file(REMOVE_RECURSE
  "libpdgc_analysis.a"
)
