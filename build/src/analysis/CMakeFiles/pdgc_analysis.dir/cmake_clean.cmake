file(REMOVE_RECURSE
  "CMakeFiles/pdgc_analysis.dir/CostModel.cpp.o"
  "CMakeFiles/pdgc_analysis.dir/CostModel.cpp.o.d"
  "CMakeFiles/pdgc_analysis.dir/InterferenceGraph.cpp.o"
  "CMakeFiles/pdgc_analysis.dir/InterferenceGraph.cpp.o.d"
  "CMakeFiles/pdgc_analysis.dir/Liveness.cpp.o"
  "CMakeFiles/pdgc_analysis.dir/Liveness.cpp.o.d"
  "CMakeFiles/pdgc_analysis.dir/LoopInfo.cpp.o"
  "CMakeFiles/pdgc_analysis.dir/LoopInfo.cpp.o.d"
  "libpdgc_analysis.a"
  "libpdgc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdgc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
