file(REMOVE_RECURSE
  "CMakeFiles/fig9_coalescing.dir/fig9_coalescing.cpp.o"
  "CMakeFiles/fig9_coalescing.dir/fig9_coalescing.cpp.o.d"
  "fig9_coalescing"
  "fig9_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
