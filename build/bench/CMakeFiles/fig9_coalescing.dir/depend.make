# Empty dependencies file for fig9_coalescing.
# This may be replaced when dependencies are built.
