file(REMOVE_RECURSE
  "CMakeFiles/fig11_integration.dir/fig11_integration.cpp.o"
  "CMakeFiles/fig11_integration.dir/fig11_integration.cpp.o.d"
  "fig11_integration"
  "fig11_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
