# Empty compiler generated dependencies file for fig11_integration.
# This may be replaced when dependencies are built.
