# Empty dependencies file for ablation_pdgc.
# This may be replaced when dependencies are built.
