file(REMOVE_RECURSE
  "CMakeFiles/ablation_pdgc.dir/ablation_pdgc.cpp.o"
  "CMakeFiles/ablation_pdgc.dir/ablation_pdgc.cpp.o.d"
  "ablation_pdgc"
  "ablation_pdgc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pdgc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
