file(REMOVE_RECURSE
  "CMakeFiles/fig10_preferences.dir/fig10_preferences.cpp.o"
  "CMakeFiles/fig10_preferences.dir/fig10_preferences.cpp.o.d"
  "fig10_preferences"
  "fig10_preferences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_preferences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
