# Empty dependencies file for fig10_preferences.
# This may be replaced when dependencies are built.
