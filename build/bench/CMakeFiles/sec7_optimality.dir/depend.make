# Empty dependencies file for sec7_optimality.
# This may be replaced when dependencies are built.
