file(REMOVE_RECURSE
  "CMakeFiles/sec7_optimality.dir/sec7_optimality.cpp.o"
  "CMakeFiles/sec7_optimality.dir/sec7_optimality.cpp.o.d"
  "sec7_optimality"
  "sec7_optimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
