file(REMOVE_RECURSE
  "CMakeFiles/pdgc_benchcommon.dir/BenchCommon.cpp.o"
  "CMakeFiles/pdgc_benchcommon.dir/BenchCommon.cpp.o.d"
  "libpdgc_benchcommon.a"
  "libpdgc_benchcommon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdgc_benchcommon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
