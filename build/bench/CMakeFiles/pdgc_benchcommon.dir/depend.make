# Empty dependencies file for pdgc_benchcommon.
# This may be replaced when dependencies are built.
