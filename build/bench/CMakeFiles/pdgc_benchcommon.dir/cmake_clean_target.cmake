file(REMOVE_RECURSE
  "libpdgc_benchcommon.a"
)
