file(REMOVE_RECURSE
  "CMakeFiles/fig7_example.dir/fig7_example.cpp.o"
  "CMakeFiles/fig7_example.dir/fig7_example.cpp.o.d"
  "fig7_example"
  "fig7_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
