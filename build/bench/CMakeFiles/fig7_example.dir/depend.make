# Empty dependencies file for fig7_example.
# This may be replaced when dependencies are built.
