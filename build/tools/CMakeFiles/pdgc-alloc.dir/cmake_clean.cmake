file(REMOVE_RECURSE
  "CMakeFiles/pdgc-alloc.dir/pdgc-alloc.cpp.o"
  "CMakeFiles/pdgc-alloc.dir/pdgc-alloc.cpp.o.d"
  "pdgc-alloc"
  "pdgc-alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdgc-alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
