# Empty dependencies file for pdgc-alloc.
# This may be replaced when dependencies are built.
