# Empty compiler generated dependencies file for pdgc-alloc.
# This may be replaced when dependencies are built.
