//===- examples/callcost_tuning.cpp - Volatile vs non-volatile -----------------===//
//
// Part of the PDGC project.
//
// Demonstrates the paper's third preference category, "preferred register
// usage": distributing live ranges between volatile (caller-saved) and
// non-volatile (callee-saved) registers. A call-saturated function is
// allocated by four allocators; the simulated cost breakdown shows where
// each loses — surviving copies, caller-side save/restore around calls, or
// callee-side prologue saves.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "regalloc/Driver.h"
#include "sim/CostSimulator.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"
#include "workloads/Generator.h"

#include <cstdio>

using namespace pdgc;

int main() {
  std::printf(
      "A call-saturated workload (jess-like) on the 24-register model.\n"
      "Watch the caller-save column: preference-unaware allocators leave\n"
      "call-crossing values in volatile registers and pay save/restore at\n"
      "every call; the preference-directed allocator moves them to\n"
      "non-volatile registers or memory, whichever the Appendix cost model\n"
      "says is cheaper.\n");

  TargetDesc Target = makeTarget(24);

  GeneratorParams P;
  P.Name = "callheavy";
  P.Seed = 2026;
  P.FragmentBudget = 28;
  P.CallPercent = 50;
  P.BranchPercent = 25;
  P.LoopPercent = 15;
  P.CopyPercent = 25;
  P.PressureValues = 9;
  WorkloadSuite Suite;
  Suite.Name = "callheavy";
  for (unsigned I = 0; I != 8; ++I) {
    GeneratorParams Q = P;
    Q.Seed += I * 77;
    Suite.Functions.push_back(Q);
  }

  TablePrinter Table("Cost breakdown on a call-saturated workload");
  Table.setHeader({"allocator", "total", "ops", "moves", "spill",
                   "caller-save", "callee-save"});
  for (const char *Name :
       {"briggs+aggressive#nvf", "optimistic#nvf", "aggressive+volatility",
        "full-preferences"}) {
    std::unique_ptr<AllocatorBase> Alloc = makeAllocatorByName(Name);
    SuiteResult Res = runSuiteAllocation(Suite, Target, *Alloc);
    const SimulatedCost &C = Res.Cost;
    Table.addRow({Name, formatDouble(C.total(), 0),
                  formatDouble(C.OpCost, 0), formatDouble(C.MoveCost, 0),
                  formatDouble(C.SpillCost, 0),
                  formatDouble(C.CallerSaveCost, 0),
                  formatDouble(C.CalleeSaveCost, 0)});
  }
  Table.print();
  return 0;
}
