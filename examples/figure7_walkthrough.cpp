//===- examples/figure7_walkthrough.cpp - Annotated paper example --------------===//
//
// Part of the PDGC project.
//
// The paper's Figure 7 example, step by step, with commentary: what the
// Register Preference Graph records, how the Coloring Precedence Graph
// relaxes the simplification stack into a partial order, and why the
// preference-directed select phase recovers the paper's hand-derived
// assignment (both copies eliminated, the paired load fused, the
// call-crossing sum in a non-volatile register).
//
//===----------------------------------------------------------------------===//

#include "analysis/CostModel.h"
#include "analysis/InterferenceGraph.h"
#include "core/ColoringPrecedenceGraph.h"
#include "core/PreferenceDirectedAllocator.h"
#include "core/RegisterPreferenceGraph.h"
#include "ir/IRPrinter.h"
#include "regalloc/Driver.h"
#include "regalloc/Simplifier.h"
#include "workloads/Figure7.h"

#include <cstdio>

using namespace pdgc;

int main() {
  TargetDesc Target = makeFigure7Target();
  Figure7Regs R;
  auto F = makeFigure7Function(Target, &R);

  std::printf(
      "The sample loop of Figure 7(a) — a load off the argument, a paired\n"
      "load, a copy, an add whose result lives across a call, and a\n"
      "backedge. Three integer registers: r0 (argument+return, volatile),\n"
      "r1 (volatile), r2 (non-volatile).\n\n%s\n",
      printFunction(*F).c_str());

  Liveness LV = Liveness::compute(*F);
  LoopInfo LI = LoopInfo::compute(*F);
  LiveRangeCosts Costs = LiveRangeCosts::compute(*F, LV, LI);

  std::printf(
      "Step 1 — the Appendix cost model. Loop instructions weigh 10; the\n"
      "strength of honoring a preference is Mem_Cost - Ideal_Cost. The\n"
      "paper quotes v3's coalesce edge to v0 at 40 (volatile) / 38\n"
      "(non-volatile), and v4's non-volatile preference at 28:\n\n");

  RegisterPreferenceGraph RPG =
      RegisterPreferenceGraph::build(*F, LV, LI, Costs, Target);
  for (const Preference &P : RPG.preferencesOf(R.V3))
    if (P.Kind == PrefKind::Coalesce &&
        P.Target == PrefTarget::liveRange(R.V0.id()))
      std::printf("  Str(v3, coalesce v0) = %.0f volatile / %.0f "
                  "non-volatile\n",
                  RPG.strength(P, 1), RPG.strength(P, 2));
  for (const Preference &P : RPG.preferencesOf(R.V4))
    if (P.Kind == PrefKind::Prefers &&
        P.Target.Kind == PrefTarget::NonVolatileClass)
      std::printf("  Str(v4, prefers non-volatile) = %.0f\n",
                  RPG.bestStrength(P));

  InterferenceGraph IG = InterferenceGraph::build(*F, LV, LI);
  SimplifyResult SR = simplifyGraph(
      IG, Target, [&](unsigned N) { return Costs.spillMetric(VReg(N)); },
      /*Optimistic=*/true);

  std::printf(
      "\nStep 2 — simplification (Figure 7(d)) removes v0 and v4 first\n"
      "(low degree), then v1, v2, v3. Chaitin would color in strict\n"
      "reverse: v3, v2, v1, v4, v0. The CPG (Figure 7(e)) keeps only the\n"
      "orderings colorability needs:\n\n");

  ColoringPrecedenceGraph CPG =
      ColoringPrecedenceGraph::build(IG, Target, SR);
  auto Name = [&](unsigned Id) {
    if (Id == R.V0.id()) return "v0";
    if (Id == R.V1.id()) return "v1";
    if (Id == R.V2.id()) return "v2";
    if (Id == R.V3.id()) return "v3";
    if (Id == R.V4.id()) return "v4";
    return "??";
  };
  for (unsigned N : SR.Stack)
    for (unsigned S : CPG.successors(N))
      std::printf("  %s before %s\n", Name(N), Name(S));
  std::printf(
      "\nso v1, v2 and v3 are all *ready* at once — the freedom the\n"
      "preference-directed select phase exploits (Chaitin's stack forced\n"
      "v3 first, v2 second, with no way to give v1 and v2 the pairable\n"
      "registers once they were reached).\n");

  PreferenceDirectedAllocator Alloc(pdgcFullOptions());
  AllocationOutcome Out = allocate(*F, Target, Alloc);

  std::printf(
      "\nStep 3 — the preference-directed selection (Figure 7(g)):\n\n");
  for (VReg V : {R.V0, R.V1, R.V2, R.V3, R.V4})
    std::printf("  %s -> %s\n", Name(V.id()),
                Target.regName(static_cast<PhysReg>(Out.Assignment[V.id()]))
                    .c_str());
  std::printf(
      "\n  * v3 and v0 share r0 with the argument: both copies vanish\n"
      "    (%u of %u moves eliminated);\n"
      "  * v1, v2 take the adjacent pair r1, r2: the paired load fuses;\n"
      "  * v4, live across the call, takes the non-volatile r2.\n"
      "\nThat is exactly the paper's final code of Figure 7(h).\n",
      Out.Moves.Eliminated, Out.Moves.Total);
  return 0;
}
