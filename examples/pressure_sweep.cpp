//===- examples/pressure_sweep.cpp - Spills vs. register count -----------------===//
//
// Part of the PDGC project.
//
// Sweeps one workload across register files from luxurious to starved and
// shows how each allocator's spill behaviour and simulated cost respond —
// the axis along which the paper's three register usage models (16/24/32)
// sit. Also demonstrates rematerialization: with `--remat`-style options
// the spilled constants are recomputed instead of reloaded.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "regalloc/Driver.h"
#include "sim/CostSimulator.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"
#include "workloads/Suites.h"

#include <cstdio>

using namespace pdgc;

int main() {
  std::printf(
      "One javac-like workload under shrinking register files. Watch the\n"
      "spill columns grow as pressure rises, and the cost gap between the\n"
      "preference-directed allocator and Chaitin widen with call "
      "traffic.\n");

  for (const char *Name : {"chaitin", "optimistic", "full-preferences"}) {
    TablePrinter Table(std::string(Name) + " across register files");
    Table.setHeader({"regs/class", "rounds", "spilled ranges",
                     "spill instrs", "slots", "slots w/ remat",
                     "simulated cost"});
    for (unsigned Regs : {32u, 24u, 16u, 8u, 4u}) {
      TargetDesc Target = makeTarget(Regs);
      WorkloadSuite Suite = suiteByName("javac");

      unsigned Rounds = 0, Ranges = 0, Insts = 0, Slots = 0,
               SlotsRemat = 0;
      double Cost = 0;
      for (unsigned I = 0; I != 4; ++I) {
        {
          std::unique_ptr<Function> F = Suite.generate(I, Target);
          std::unique_ptr<AllocatorBase> Alloc = makeAllocatorByName(Name);
          AllocationOutcome Out = allocate(*F, Target, *Alloc);
          Rounds += Out.Rounds;
          Ranges += Out.SpilledRanges;
          Insts += Out.SpillInstructions;
          Slots += Out.StackSlots;
          Cost += simulateCost(*F, Target, Out.Assignment).total();
        }
        {
          // The same run with constant rematerialization.
          std::unique_ptr<Function> F = Suite.generate(I, Target);
          std::unique_ptr<AllocatorBase> Alloc = makeAllocatorByName(Name);
          DriverOptions Options;
          Options.Rematerialize = true;
          AllocationOutcome Out = allocate(*F, Target, *Alloc, Options);
          SlotsRemat += Out.StackSlots;
        }
      }
      Table.addRow({std::to_string(Regs), std::to_string(Rounds),
                    std::to_string(Ranges), std::to_string(Insts),
                    std::to_string(Slots), std::to_string(SlotsRemat),
                    formatDouble(Cost, 0)});
    }
    Table.print();
  }
  return 0;
}
