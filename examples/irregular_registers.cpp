//===- examples/irregular_registers.cpp - Dependent register usage -------------===//
//
// Part of the PDGC project.
//
// Demonstrates the paper's fourth preference category, "dependent register
// usage": paired loads that fuse into a single machine operation only when
// their two destination registers satisfy the target's pairing rule
// (adjacent registers a la Power/S390, or different parity a la IA-64).
//
// Part 1 runs a small complex-filter kernel and shows the assignment the
// sequential preferences produce. Part 2 aggregates over the
// mpegaudio-like suite (the paper's paired-load-heavy test) and reports
// how many paired-load candidates each allocator's register selection
// fuses.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "core/PreferenceDirectedAllocator.h"
#include "ir/IRBuilder.h"
#include "regalloc/Driver.h"
#include "sim/CostSimulator.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace pdgc;

namespace {

/// A loop that paired-loads 4 complex samples per iteration and folds
/// them into an accumulator.
void buildFilterKernel(Function &F, const TargetDesc &Target) {
  IRBuilder B(F);
  VReg P = F.addParam(RegClass::GPR,
                      static_cast<int>(Target.paramReg(RegClass::GPR, 0)));

  BasicBlock *Entry = F.createBlock("entry");
  BasicBlock *Loop = F.createBlock("loop");
  BasicBlock *Done = F.createBlock("done");

  B.setInsertBlock(Entry);
  VReg Base = B.emitMove(P);
  VReg I0 = B.emitLoadImm(0);
  VReg Limit = B.emitLoadImm(64);
  VReg Acc0 = B.emitLoadImm(0, RegClass::FPR);
  B.emitBranch(Loop);

  B.setInsertBlock(Loop);
  VReg Acc = B.emitPhi(RegClass::FPR, {Acc0, Acc0});
  VReg I = B.emitPhi(RegClass::GPR, {I0, I0});
  VReg Sum = Acc;
  std::vector<std::pair<VReg, VReg>> Pairs;
  for (unsigned K = 0; K != 4; ++K) {
    // Each pair is a complex sample: (re, im) at consecutive addresses.
    auto [Re, Im] = B.emitPairedLoad(Base, 2 * K, RegClass::FPR);
    Pairs.push_back({Re, Im});
    VReg Mag = B.emitBinary(Opcode::Mul, Re, Im);
    Sum = B.emitBinary(Opcode::Add, Sum, Mag);
  }
  VReg INext = B.emitAddImm(I, 1);
  Loop->inst(0).setUse(1, Sum);
  Loop->inst(1).setUse(1, INext);
  VReg Cond = B.emitCompare(Opcode::CmpLT, INext, Limit);
  B.emitCondBranch(Cond, Loop, Done);

  B.setInsertBlock(Done);
  VReg Flag = B.emitCompare(Opcode::CmpLT, Acc, Acc);
  VReg Ret = F.createPinnedVReg(
      RegClass::GPR, static_cast<int>(Target.returnReg(RegClass::GPR)));
  B.emitMoveTo(Ret, Flag);
  B.emitRet(Ret);
}

void runKernel(const char *RuleName, PairingRule Rule) {
  TargetDesc Target = makeTarget(16, Rule);
  Function F("filter");
  buildFilterKernel(F, Target);
  PreferenceDirectedAllocator Allocator(pdgcFullOptions());
  AllocationOutcome Out = allocate(F, Target, Allocator);
  SimulatedCost Cost = simulateCost(F, Target, Out.Assignment);
  std::printf("  %-40s fused %u of %u candidate pairs, cost %.0f\n",
              RuleName, Cost.FusedPairs, Cost.FusedPairs + Cost.MissedPairs,
              Cost.total());
}

void runSuiteComparison(PairingRule Rule, const char *RuleName) {
  TargetDesc Target = makeTarget(16, Rule);
  WorkloadSuite Suite = suiteByName("mpegaudio");
  TablePrinter Table(std::string("Paired-load fusion on mpegaudio, 16 "
                                 "registers, rule: ") +
                     RuleName);
  Table.setHeader({"allocator", "fused", "missed", "fuse rate",
                   "simulated cost"});
  for (const char *Name :
       {"briggs+aggressive#nvf", "optimistic#nvf", "aggressive+volatility",
        "pdgc-no-sequential", "full-preferences"}) {
    std::unique_ptr<AllocatorBase> Alloc = makeAllocatorByName(Name);
    SuiteResult Res = runSuiteAllocation(Suite, Target, *Alloc);
    unsigned Total = Res.Cost.FusedPairs + Res.Cost.MissedPairs;
    Table.addRow({Name, std::to_string(Res.Cost.FusedPairs),
                  std::to_string(Res.Cost.MissedPairs),
                  formatPercent(Total ? double(Res.Cost.FusedPairs) / Total
                                      : 1.0,
                                1),
                  formatDouble(Res.Cost.total(), 0)});
  }
  Table.print();
}

} // namespace

int main() {
  std::printf(
      "Paired loads fuse only when the two destination registers satisfy\n"
      "the machine's pairing rule (Section 3.1, dependent register "
      "usage).\nSequential+/- preferences teach the allocator to pick such "
      "pairs.\n\nPart 1 — a complex-filter kernel under the full "
      "allocator:\n");
  runKernel("adjacent registers (Power/S390 style)", PairingRule::Adjacent);
  runKernel("odd/even parity (IA-64 style)", PairingRule::OddEven);

  std::printf("\nPart 2 — fusion rates across the mpegaudio-like suite:\n");
  runSuiteComparison(PairingRule::Adjacent, "adjacent");
  runSuiteComparison(PairingRule::OddEven, "odd/even");
  return 0;
}
