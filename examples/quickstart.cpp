//===- examples/quickstart.cpp - Five-minute tour ------------------------------===//
//
// Part of the PDGC project.
//
// Builds a small function with the IR builder, runs the preference-
// directed allocator on the paper's middle-pressure machine model, and
// prints the code before and after allocation together with the register
// assignment. Start here.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/PreferenceDirectedAllocator.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "machine/TargetDesc.h"
#include "regalloc/Driver.h"
#include "sim/CostSimulator.h"

#include <cstdio>

using namespace pdgc;

int main() {
  // A machine: 24 GPRs + 24 FPRs, half volatile, 8 parameter registers.
  TargetDesc Target = makeMiddlePressureTarget();

  // int f(int *p, int n) {
  //   int acc = n;
  //   for (int i = 0; i < 8; ++i) acc += p[i] * external(acc);
  //   return acc;
  // }
  Function F("quickstart");
  IRBuilder B(F);
  VReg P = F.addParam(RegClass::GPR,
                      static_cast<int>(Target.paramReg(RegClass::GPR, 0)));
  VReg N = F.addParam(RegClass::GPR,
                      static_cast<int>(Target.paramReg(RegClass::GPR, 1)));

  BasicBlock *Entry = F.createBlock("entry");
  BasicBlock *Loop = F.createBlock("loop");
  BasicBlock *Done = F.createBlock("done");

  B.setInsertBlock(Entry);
  VReg Base = B.emitMove(P);  // copies off the parameter registers —
  VReg Acc0 = B.emitMove(N);  // classic coalescing candidates
  VReg I0 = B.emitLoadImm(0);
  VReg Limit = B.emitLoadImm(8);
  B.emitBranch(Loop);

  B.setInsertBlock(Loop);
  VReg Acc = B.emitPhi(RegClass::GPR, {Acc0, Acc0}); // patched below
  VReg I = B.emitPhi(RegClass::GPR, {I0, I0});
  VReg Elem = B.emitLoad(Base, 0);
  // Call an external function: the argument must sit in the first
  // parameter register, the result arrives in the return register.
  VReg ArgPinned = F.createPinnedVReg(
      RegClass::GPR, static_cast<int>(Target.paramReg(RegClass::GPR, 0)));
  B.emitMoveTo(ArgPinned, Acc);
  VReg RetPinned = F.createPinnedVReg(
      RegClass::GPR, static_cast<int>(Target.returnReg(RegClass::GPR)));
  B.emitCall(/*Callee=*/7, {ArgPinned}, RetPinned);
  VReg External = B.emitMove(RetPinned);
  VReg Prod = B.emitBinary(Opcode::Mul, Elem, External);
  VReg AccNext = B.emitBinary(Opcode::Add, Acc, Prod);
  VReg INext = B.emitAddImm(I, 1);
  Loop->inst(0).setUse(1, AccNext); // close the phi cycle
  Loop->inst(1).setUse(1, INext);
  VReg Cond = B.emitCompare(Opcode::CmpLT, INext, Limit);
  B.emitCondBranch(Cond, Loop, Done);

  B.setInsertBlock(Done);
  VReg RetVal = F.createPinnedVReg(
      RegClass::GPR, static_cast<int>(Target.returnReg(RegClass::GPR)));
  B.emitMoveTo(RetVal, Acc);
  B.emitRet(RetVal);

  std::printf("=== SSA input ===\n%s\n", printFunction(F).c_str());

  // Allocate. The driver lowers phis, iterates build/color/spill, and
  // verifies the result against an independent checker.
  PreferenceDirectedAllocator Allocator(pdgcFullOptions());
  AllocationOutcome Out = allocate(F, Target, Allocator);

  std::printf("=== after allocation (moves whose operands share a register "
              "disappear) ===\n%s\n",
              printFunction(F).c_str());

  std::printf("=== assignment ===\n");
  for (unsigned V = 0, E = F.numVRegs(); V != E; ++V)
    if (Out.Assignment[V] >= 0)
      std::printf("  v%-3u -> %-4s %s\n", V,
                  Target.regName(static_cast<PhysReg>(Out.Assignment[V]))
                      .c_str(),
                  Target.isVolatile(static_cast<PhysReg>(Out.Assignment[V]))
                      ? "(volatile)"
                      : "(non-volatile)");

  SimulatedCost Cost = simulateCost(F, Target, Out.Assignment);
  std::printf("\nmoves: %u total, %u eliminated; spill instructions: %u\n",
              Out.Moves.Total, Out.Moves.Eliminated, Out.SpillInstructions);
  std::printf("simulated cost: %.0f (ops %.0f, moves %.0f, caller-save "
              "%.0f, callee-save %.0f)\n",
              Cost.total(), Cost.OpCost, Cost.MoveCost, Cost.CallerSaveCost,
              Cost.CalleeSaveCost);
  std::printf("\nNote how the loop-carried accumulator, which lives across "
              "the call,\nlands in a non-volatile register, while "
              "short-lived temporaries use\nvolatile ones.\n");
  return 0;
}
