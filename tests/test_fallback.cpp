//===- tests/test_fallback.cpp - Graceful-degradation pipeline tests ------------===//
//
// Part of the PDGC project.
//
// The hardened pipeline's contract: allocateWithFallback always terminates
// with a checker-valid assignment as long as at least one tier works, the
// input function is only mutated on success, and the Degradation record
// says exactly which tier served and why the earlier ones failed. The
// failing tiers here are deliberately broken mock allocators (and the
// failure-injection hook), covering each structured failure mode the
// driver can report.
//
//===----------------------------------------------------------------------===//

#include "core/PDGCRegistration.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "regalloc/AllocatorRegistry.h"
#include "regalloc/AssignmentChecker.h"
#include "regalloc/Driver.h"
#include "support/Debug.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

#include <stdexcept>

using namespace pdgc;

namespace {

// The default chain's first tier ("full-preferences") resolves through the
// allocator registry, which only knows the core allocators after explicit
// registration.
[[maybe_unused]] const bool AllocatorsRegistered = [] {
  registerPDGCAllocators();
  return true;
}();

std::unique_ptr<Function> makeWorkload(const TargetDesc &Target,
                                       std::uint64_t Seed = 42) {
  GeneratorParams P;
  P.Seed = Seed;
  P.Name = "fallback";
  P.CallPercent = 30;
  P.PressureValues = 8;
  return generateFunction(P, Target);
}

/// A tier-1 allocator that violates its contract in a configurable way.
class BrokenAllocator : public AllocatorBase {
public:
  enum Mode {
    WrongColorSize,   ///< Returns a short color vector.
    InvalidAssignment,///< Colors every register r0: guaranteed clobbers.
    Throws,           ///< Raises an exception mid-round.
    FatalCheck,       ///< Trips a pdgc_check like a real internal bug.
  };

  explicit BrokenAllocator(Mode MIn) : M(MIn) {}
  const char *name() const override { return "broken"; }

  RoundResult allocateRound(AllocContext &Ctx) override {
    switch (M) {
    case WrongColorSize: {
      RoundResult RR = RoundResult::make(Ctx.F.numVRegs());
      RR.Color.resize(1);
      return RR;
    }
    case InvalidAssignment: {
      RoundResult RR = RoundResult::make(Ctx.F.numVRegs());
      for (int &C : RR.Color)
        C = 0;
      return RR;
    }
    case Throws:
      throw std::runtime_error("synthetic allocator explosion");
    case FatalCheck:
      pdgc_check(false, "synthetic fatal check");
    }
    pdgc_unreachable("covered above");
  }

private:
  Mode M;
};

FallbackTier brokenTier(BrokenAllocator::Mode M) {
  return {"broken", [M] { return std::make_unique<BrokenAllocator>(M); }};
}

/// Chains a broken tier before the stock briggs and spill-everything
/// tiers and asserts graceful degradation to tier 1.
void expectDegradesPast(BrokenAllocator::Mode M, ErrorCode ExpectTierCode) {
  TargetDesc Target = makeTarget(16);
  std::unique_ptr<Function> F = makeWorkload(Target);

  DriverOptions Options;
  Options.FallbackChain = {brokenTier(M),
                           {"briggs+aggressive", nullptr},
                           {"spill-everything", nullptr}};
  StatusOr<AllocationOutcome> Result =
      allocateWithFallback(*F, Target, Options);
  ASSERT_TRUE(Result.ok()) << Result.status().toString();

  const DegradationInfo &D = Result->Degradation;
  EXPECT_TRUE(D.Degraded);
  EXPECT_EQ(D.ServedBy, "briggs+aggressive");
  EXPECT_EQ(D.TierIndex, 1u);
  ASSERT_EQ(D.FailedTiers.size(), 1u);
  EXPECT_NE(D.FailedTiers[0].find("broken"), std::string::npos)
      << D.FailedTiers[0];
  EXPECT_NE(D.FailedTiers[0].find(errorCodeName(ExpectTierCode)),
            std::string::npos)
      << D.FailedTiers[0];

  // The served assignment must satisfy the independent checker on the
  // rewritten function.
  std::vector<std::string> Errors =
      checkAssignment(*F, Target, Result->Assignment);
  EXPECT_TRUE(Errors.empty()) << Errors.front();
}

TEST(Fallback, DegradesPastWrongResultShape) {
  expectDegradesPast(BrokenAllocator::WrongColorSize,
                     ErrorCode::AllocatorInternal);
}

TEST(Fallback, DegradesPastInvalidAssignment) {
  expectDegradesPast(BrokenAllocator::InvalidAssignment,
                     ErrorCode::CheckerMismatch);
}

TEST(Fallback, DegradesPastThrowingAllocator) {
  expectDegradesPast(BrokenAllocator::Throws, ErrorCode::AllocatorInternal);
}

TEST(Fallback, DegradesPastFatalCheck) {
  expectDegradesPast(BrokenAllocator::FatalCheck,
                     ErrorCode::AllocatorInternal);
}

TEST(Fallback, HealthyTierOneDoesNotDegrade) {
  TargetDesc Target = makeTarget(16);
  std::unique_ptr<Function> F = makeWorkload(Target);
  StatusOr<AllocationOutcome> Result =
      allocateWithFallback(*F, Target, DriverOptions());
  ASSERT_TRUE(Result.ok()) << Result.status().toString();
  EXPECT_FALSE(Result->Degradation.Degraded);
  EXPECT_EQ(Result->Degradation.ServedBy, "full-preferences");
  EXPECT_EQ(Result->Degradation.TierIndex, 0u);
  EXPECT_TRUE(Result->Degradation.FailedTiers.empty());
}

TEST(Fallback, FailTierHookKillsTierOne) {
  TargetDesc Target = makeTarget(16);
  std::unique_ptr<Function> F = makeWorkload(Target);

  DriverOptions Options;
  Options.FailTierHook = [](const std::string &Tier) {
    return Tier == "full-preferences";
  };
  StatusOr<AllocationOutcome> Result =
      allocateWithFallback(*F, Target, Options);
  ASSERT_TRUE(Result.ok()) << Result.status().toString();
  EXPECT_TRUE(Result->Degradation.Degraded);
  EXPECT_EQ(Result->Degradation.ServedBy, "briggs+aggressive");
  ASSERT_EQ(Result->Degradation.FailedTiers.size(), 1u);
  EXPECT_NE(Result->Degradation.FailedTiers[0].find("failure injected"),
            std::string::npos)
      << Result->Degradation.FailedTiers[0];

  std::vector<std::string> Errors =
      checkAssignment(*F, Target, Result->Assignment);
  EXPECT_TRUE(Errors.empty()) << Errors.front();
}

TEST(Fallback, InputUntouchedUntilSuccess) {
  // When every tier up to the serving one fails, the caller's function
  // must reflect exactly one allocation, not a pile-up of partial spill
  // rewrites from failed tiers.
  TargetDesc Target = makeTarget(16);
  std::unique_ptr<Function> Reference = makeWorkload(Target);
  std::unique_ptr<Function> F = makeWorkload(Target);

  DriverOptions Failing;
  Failing.FallbackChain = {brokenTier(BrokenAllocator::Throws),
                           brokenTier(BrokenAllocator::FatalCheck)};
  StatusOr<AllocationOutcome> Error =
      allocateWithFallback(*F, Target, Failing);
  ASSERT_FALSE(Error.ok());
  EXPECT_EQ(Error.code(), ErrorCode::AllocatorInternal);
  // Total failure: F is byte-identical to the untouched reference.
  EXPECT_EQ(printFunction(*F), printFunction(*Reference));
}

TEST(Fallback, AllTiersFailingReportsEveryTier) {
  TargetDesc Target = makeTarget(16);
  std::unique_ptr<Function> F = makeWorkload(Target);

  DriverOptions Options;
  Options.FallbackChain = {brokenTier(BrokenAllocator::Throws),
                           brokenTier(BrokenAllocator::InvalidAssignment),
                           {"no-such-allocator", nullptr}};
  StatusOr<AllocationOutcome> Result =
      allocateWithFallback(*F, Target, Options);
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.code(), ErrorCode::AllocatorInternal);
  const std::string Message = Result.status().message();
  EXPECT_NE(Message.find("all fallback tiers failed"), std::string::npos)
      << Message;
  EXPECT_NE(Message.find("no-such-allocator"), std::string::npos) << Message;
}

TEST(Fallback, EmptyChainIsAnError) {
  TargetDesc Target = makeTarget(16);
  std::unique_ptr<Function> F = makeWorkload(Target);
  DriverOptions Options;
  Options.FallbackChain.clear();
  StatusOr<AllocationOutcome> Result =
      allocateWithFallback(*F, Target, Options);
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.code(), ErrorCode::AllocatorInternal);
}

TEST(Fallback, UnverifiableInputIsRejected) {
  TargetDesc Target = makeTarget(16);
  // A use with no reaching definition: structurally parseable, but the
  // verifier (and therefore the pipeline) must reject it.
  std::string Error;
  std::unique_ptr<Function> F = parseFunction("func @bad()\n"
                                              "entry:\n"
                                              "  condbr v7  -> a b\n"
                                              "a:\n"
                                              "  ret\n"
                                              "b:\n"
                                              "  ret\n",
                                              Error);
  ASSERT_NE(F, nullptr) << Error;
  StatusOr<AllocationOutcome> Result =
      allocateWithFallback(*F, Target, DriverOptions());
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.code(), ErrorCode::VerifyError);
}

TEST(Fallback, TargetIncompatiblePinIsRejected) {
  // Pins r40, which only exists on wider targets; an 8-regs-per-class
  // target has 16 physical registers. Without the up-front check every
  // tier would fail with a misleading "color out of range".
  TargetDesc Target = makeTarget(8);
  std::string Error;
  std::unique_ptr<Function> F = parseFunction("func @wide(v0(pinned:r40))\n"
                                              "entry:\n"
                                              "  ret v0\n",
                                              Error);
  ASSERT_NE(F, nullptr) << Error;
  StatusOr<AllocationOutcome> Result =
      allocateWithFallback(*F, Target, DriverOptions());
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.code(), ErrorCode::VerifyError);
  EXPECT_NE(Result.status().toString().find("pinned to r40"),
            std::string::npos)
      << Result.status().toString();
}

TEST(Fallback, TryAllocateReportsRoundBudget) {
  TargetDesc Target = makeTarget(16);
  std::unique_ptr<Function> F = makeWorkload(Target);
  // An allocator that spills one live range per round but never finishes
  // would trip MaxRounds; simpler: give the real allocator zero rounds.
  std::unique_ptr<AllocatorBase> Allocator =
      createRegisteredAllocator("briggs+aggressive");
  ASSERT_NE(Allocator, nullptr);
  DriverOptions Options;
  Options.MaxRounds = 0;
  StatusOr<AllocationOutcome> Result =
      tryAllocate(*F, Target, *Allocator, Options);
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.code(), ErrorCode::BudgetExceeded);
  EXPECT_NE(Result.status().message().find("did not converge"),
            std::string::npos)
      << Result.status().message();
}

} // namespace
