//===- tests/test_dce.cpp - Dead code elimination tests -------------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "ir/DeadCodeElimination.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "sim/Interpreter.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

using namespace pdgc;

namespace {

TEST(Dce, RemovesUnusedDefinitions) {
  Function F("d");
  IRBuilder B(F);
  BasicBlock *BB = F.createBlock();
  B.setInsertBlock(BB);
  VReg Live = B.emitLoadImm(1);
  B.emitLoadImm(2);              // Dead.
  VReg DeadChainA = B.emitLoadImm(3);
  B.emitAddImm(DeadChainA, 1);   // Dead, and so is its input.
  B.emitStore(Live, Live, 0);
  B.emitRet();

  DceStats Stats = eliminateDeadCode(F);
  EXPECT_EQ(Stats.InstructionsRemoved, 3u);
  EXPECT_EQ(BB->size(), 3u); // loadimm, store, ret.
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyFunction(F, Errors)) << Errors.front();
}

TEST(Dce, KeepsSideEffectsAndTheirInputs) {
  Function F("keep");
  IRBuilder B(F);
  BasicBlock *BB = F.createBlock();
  B.setInsertBlock(BB);
  VReg V = B.emitLoadImm(1);
  VReg Arg = F.createPinnedVReg(RegClass::GPR, 0);
  B.emitMoveTo(Arg, V);
  B.emitCall(1, {Arg}, VReg()); // Calls are roots.
  B.emitRet();

  DceStats Stats = eliminateDeadCode(F);
  EXPECT_EQ(Stats.InstructionsRemoved, 0u);
}

TEST(Dce, DeadPhiCyclesDisappear) {
  // A classic: two phis feeding only each other around a loop are dead,
  // even though each has a "use".
  Function F("cycle");
  IRBuilder B(F);
  BasicBlock *Entry = F.createBlock();
  BasicBlock *Loop = F.createBlock();
  BasicBlock *Done = F.createBlock();

  B.setInsertBlock(Entry);
  VReg A0 = B.emitLoadImm(1);
  VReg N = B.emitLoadImm(3);
  VReg I0 = B.emitLoadImm(0);
  B.emitBranch(Loop);

  B.setInsertBlock(Loop);
  VReg DeadPhi = B.emitPhi(RegClass::GPR, {A0, A0});
  VReg I = B.emitPhi(RegClass::GPR, {I0, I0});
  VReg DeadNext = B.emitAddImm(DeadPhi, 1);
  Loop->inst(0).setUse(1, DeadNext); // Cycle: phi <-> add, no other use.
  VReg INext = B.emitAddImm(I, 1);
  Loop->inst(1).setUse(1, INext);
  VReg C = B.emitCompare(Opcode::CmpLT, INext, N);
  B.emitCondBranch(C, Loop, Done);

  B.setInsertBlock(Done);
  VReg Ret = F.createPinnedVReg(RegClass::GPR, 0);
  B.emitMoveTo(Ret, INext);
  B.emitRet(Ret);

  ExecutionResult Before = runVirtual(F, {});
  DceStats Stats = eliminateDeadCode(F);
  // The dead phi, its increment, and its entry initializer all vanish.
  EXPECT_GE(Stats.InstructionsRemoved, 3u);
  std::vector<std::string> Errors;
  ASSERT_TRUE(verifyFunction(F, Errors)) << Errors.front();
  ExecutionResult After = runVirtual(F, {});
  EXPECT_EQ(Before.ReturnValue, After.ReturnValue);
  EXPECT_EQ(Before.StoreDigest, After.StoreDigest);
}

TEST(Dce, BrokenPairCandidatesLoseTheFlag) {
  Function F("pair");
  IRBuilder B(F);
  BasicBlock *BB = F.createBlock();
  B.setInsertBlock(BB);
  VReg Base = B.emitLoadImm(0);
  auto [First, Second] = B.emitPairedLoad(Base, 2);
  (void)Second; // Second is dead; First is stored.
  B.emitStore(First, Base, 0);
  B.emitRet();

  eliminateDeadCode(F);
  for (const Instruction &I : BB->instructions())
    EXPECT_FALSE(I.isPairHead());
}

TEST(Dce, GeneratedFunctionsKeepTheirBehaviour) {
  TargetDesc Target = makeTarget(24);
  for (std::uint64_t Seed : {2100ull, 2101ull, 2102ull, 2103ull}) {
    GeneratorParams P;
    P.Seed = Seed;
    P.FragmentBudget = 18;
    P.CallPercent = 25;
    P.FpPercent = 25;
    std::unique_ptr<Function> F = generateFunction(P, Target);
    ExecutionResult Before = runVirtual(*F, {4, 9});
    ASSERT_TRUE(Before.Completed);
    DceStats Stats = eliminateDeadCode(*F);
    std::vector<std::string> Errors;
    ASSERT_TRUE(verifyFunction(*F, Errors)) << Errors.front();
    ExecutionResult After = runVirtual(*F, {4, 9});
    EXPECT_EQ(Before.ReturnValue, After.ReturnValue) << Seed;
    EXPECT_EQ(Before.StoreDigest, After.StoreDigest) << Seed;
    (void)Stats;
  }
}

TEST(Dce, IdempotentOnCleanCode) {
  Function F("clean");
  IRBuilder B(F);
  BasicBlock *BB = F.createBlock();
  B.setInsertBlock(BB);
  VReg A = B.emitLoadImm(1);
  B.emitStore(A, A, 0);
  B.emitRet();
  eliminateDeadCode(F);
  DceStats Second = eliminateDeadCode(F);
  EXPECT_EQ(Second.InstructionsRemoved, 0u);
}

} // namespace
