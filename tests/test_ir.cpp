//===- tests/test_ir.cpp - IR structure unit tests ---------------------------===//
//
// Part of the PDGC project.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace pdgc;

namespace {

TEST(Opcode, TerminatorClassification) {
  EXPECT_TRUE(isTerminator(Opcode::Branch));
  EXPECT_TRUE(isTerminator(Opcode::CondBranch));
  EXPECT_TRUE(isTerminator(Opcode::Ret));
  EXPECT_FALSE(isTerminator(Opcode::Move));
  EXPECT_FALSE(isTerminator(Opcode::Call));
}

TEST(Opcode, DefAndUseArity) {
  EXPECT_TRUE(opcodeMayDefine(Opcode::Load));
  EXPECT_TRUE(opcodeMayDefine(Opcode::SpillLoad));
  EXPECT_FALSE(opcodeMayDefine(Opcode::Store));
  EXPECT_FALSE(opcodeMayDefine(Opcode::SpillStore));
  EXPECT_EQ(opcodeNumUses(Opcode::Add), 2);
  EXPECT_EQ(opcodeNumUses(Opcode::Move), 1);
  EXPECT_EQ(opcodeNumUses(Opcode::LoadImm), 0);
  EXPECT_EQ(opcodeNumUses(Opcode::Phi), -1);
  EXPECT_EQ(opcodeNumUses(Opcode::Call), -1);
}

TEST(Opcode, NamesAreStable) {
  EXPECT_STREQ(opcodeName(Opcode::Move), "move");
  EXPECT_STREQ(opcodeName(Opcode::CondBranch), "condbr");
  EXPECT_STREQ(opcodeName(Opcode::SpillStore), "spillstore");
}

TEST(VRegHandle, InvalidSentinel) {
  VReg Invalid;
  EXPECT_FALSE(Invalid.isValid());
  VReg Valid(3);
  EXPECT_TRUE(Valid.isValid());
  EXPECT_EQ(Valid.id(), 3u);
  EXPECT_NE(Invalid, Valid);
}

TEST(FunctionStructure, BlocksAndVRegs) {
  Function F("f");
  BasicBlock *B0 = F.createBlock("start");
  BasicBlock *B1 = F.createBlock();
  EXPECT_EQ(F.numBlocks(), 2u);
  EXPECT_EQ(F.entry(), B0);
  EXPECT_EQ(B0->name(), "start");
  EXPECT_EQ(B1->name(), "bb1");

  VReg A = F.createVReg(RegClass::GPR);
  VReg B = F.createVReg(RegClass::FPR);
  VReg P = F.createPinnedVReg(RegClass::GPR, 5);
  EXPECT_EQ(F.numVRegs(), 3u);
  EXPECT_EQ(F.regClass(A), RegClass::GPR);
  EXPECT_EQ(F.regClass(B), RegClass::FPR);
  EXPECT_FALSE(F.isPinned(A));
  EXPECT_TRUE(F.isPinned(P));
  EXPECT_EQ(F.pinnedReg(P), 5);
  EXPECT_FALSE(F.isSpillTemp(A));
  F.markSpillTemp(A);
  EXPECT_TRUE(F.isSpillTemp(A));
}

/// entry -> (then | else) -> join; then also loops back to itself? No:
/// a diamond used by several tests below.
struct Diamond {
  Function F{"diamond"};
  BasicBlock *Entry, *Then, *Else, *Join;
  VReg Cond, T, E;

  Diamond() {
    IRBuilder B(F);
    Entry = F.createBlock("entry");
    Then = F.createBlock("then");
    Else = F.createBlock("else");
    Join = F.createBlock("join");

    B.setInsertBlock(Entry);
    Cond = B.emitLoadImm(1);
    B.emitCondBranch(Cond, Then, Else);

    B.setInsertBlock(Then);
    T = B.emitLoadImm(10);
    B.emitBranch(Join);

    B.setInsertBlock(Else);
    E = B.emitLoadImm(20);
    B.emitBranch(Join);

    B.setInsertBlock(Join);
    VReg M = B.emitPhi(RegClass::GPR, {T, E});
    (void)M;
    B.emitRet();
  }
};

TEST(FunctionStructure, EdgesAreSymmetric) {
  Diamond D;
  EXPECT_EQ(D.Entry->numSuccessors(), 2u);
  EXPECT_EQ(D.Join->numPredecessors(), 2u);
  EXPECT_EQ(D.Join->predecessorIndex(D.Then), 0u);
  EXPECT_EQ(D.Join->predecessorIndex(D.Else), 1u);
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyFunction(D.F, Errors)) << Errors.front();
}

TEST(FunctionStructure, ReversePostOrderVisitsBeforeSuccessors) {
  Diamond D;
  std::vector<unsigned> RPO = D.F.reversePostOrder();
  ASSERT_EQ(RPO.size(), 4u);
  EXPECT_EQ(RPO.front(), D.Entry->id());
  EXPECT_EQ(RPO.back(), D.Join->id());
}

TEST(FunctionStructure, SplitEdgePreservesPhiIndexing) {
  Diamond D;
  BasicBlock *Mid = D.F.splitEdge(D.Then, D.Join);
  // The predecessor slot of Then is replaced in place by Mid.
  EXPECT_EQ(D.Join->predecessorIndex(Mid), 0u);
  EXPECT_EQ(D.Join->predecessorIndex(D.Else), 1u);
  EXPECT_EQ(Mid->numPredecessors(), 1u);
  EXPECT_EQ(Mid->successors()[0], D.Join);
  EXPECT_EQ(D.Then->successors()[0], Mid);
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyFunction(D.F, Errors)) << Errors.front();
}

TEST(Printer, RendersInstructionsReadably) {
  Function F("p");
  IRBuilder B(F);
  BasicBlock *BB = F.createBlock("entry");
  B.setInsertBlock(BB);
  VReg A = B.emitLoadImm(42);
  VReg C = B.emitAddImm(A, 7);
  B.emitStore(C, A, 3);
  B.emitRet();

  std::string Text = printFunction(F);
  EXPECT_NE(Text.find("v0 = loadimm 42"), std::string::npos) << Text;
  EXPECT_NE(Text.find("v1 = addimm v0, 7"), std::string::npos) << Text;
  EXPECT_NE(Text.find("store v1, v0, 3"), std::string::npos) << Text;
  EXPECT_NE(Text.find("ret"), std::string::npos) << Text;
}

TEST(Printer, MarksPairHeadsAndSpillCode) {
  Function F("p2");
  IRBuilder B(F);
  BasicBlock *BB = F.createBlock("entry");
  B.setInsertBlock(BB);
  VReg Base = B.emitLoadImm(0);
  B.emitPairedLoad(Base, 4);
  Instruction SL(Opcode::SpillLoad, F.createVReg(RegClass::GPR), {}, 2);
  SL.setSpillCode(true);
  BB->append(std::move(SL));
  B.emitRet();
  std::string Text = printFunction(F);
  EXPECT_NE(Text.find("pair-head"), std::string::npos);
  EXPECT_NE(Text.find("spillload 2  ; spill"), std::string::npos) << Text;
}

TEST(Verifier, AcceptsWellFormed) {
  Diamond D;
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyFunction(D.F, Errors));
  EXPECT_TRUE(Errors.empty());
}

TEST(Verifier, RejectsMissingTerminator) {
  Function F("bad");
  BasicBlock *BB = F.createBlock();
  (void)BB;
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(F, Errors));
  EXPECT_NE(Errors.front().find("terminator"), std::string::npos);
}

TEST(Verifier, RejectsPhiAfterNonPhi) {
  Diamond D;
  // Insert a phi after the existing (phi, ret) pair's ret... easier: add
  // a second phi after a loadimm in Join.
  Instruction Imm(Opcode::LoadImm, D.F.createVReg(RegClass::GPR), {}, 1);
  D.Join->insertBefore(1, std::move(Imm));
  Instruction Phi(Opcode::Phi, D.F.createVReg(RegClass::GPR),
                  {D.T, D.E});
  D.Join->insertBefore(2, std::move(Phi));
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(D.F, Errors));
}

TEST(Verifier, RejectsPhiOperandCountMismatch) {
  Diamond D;
  D.Join->inst(0).removeUse(1);
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(D.F, Errors));
}

TEST(Verifier, RejectsCrossClassMove) {
  Function F("bad2");
  IRBuilder B(F);
  BasicBlock *BB = F.createBlock();
  B.setInsertBlock(BB);
  VReg G = B.emitLoadImm(1, RegClass::GPR);
  VReg D = F.createVReg(RegClass::FPR);
  BB->append(Instruction(Opcode::Move, D, {G}));
  B.emitRet();
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(F, Errors));
  EXPECT_NE(Errors.front().find("class"), std::string::npos);
}

TEST(Verifier, RejectsUnpinnedCallArgument) {
  Function F("bad3");
  IRBuilder B(F);
  BasicBlock *BB = F.createBlock();
  B.setInsertBlock(BB);
  VReg V = B.emitLoadImm(1);
  BB->append(Instruction(Opcode::Call, VReg(), {V}, 0));
  B.emitRet();
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(F, Errors));
  EXPECT_NE(Errors.front().find("pinned"), std::string::npos);
}

TEST(Verifier, RejectsParallelCondBranchEdges) {
  Function F("par");
  IRBuilder B(F);
  BasicBlock *Entry = F.createBlock();
  BasicBlock *Next = F.createBlock();
  B.setInsertBlock(Entry);
  VReg C = B.emitLoadImm(1);
  Entry->append(Instruction(Opcode::CondBranch, VReg(), {C}));
  F.setEdges(Entry, {Next, Next});
  B.setInsertBlock(Next);
  B.emitRet();
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(F, Errors));
  EXPECT_NE(Errors.front().find("identical targets"), std::string::npos);
}

TEST(Verifier, RejectsEntryWithPredecessors) {
  Function F("bad4");
  IRBuilder B(F);
  BasicBlock *Entry = F.createBlock();
  B.setInsertBlock(Entry);
  B.emitBranch(Entry);
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(F, Errors));
}

} // namespace
